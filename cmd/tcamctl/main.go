// Command tcamctl is a TCAM microbenchmark tool: it drives a single
// switch model (raw or Hermes-managed) with a configurable rule stream and
// prints latency statistics — the workhorse behind the §8.5/§8.6
// microbenchmarks, usable interactively for exploring parameters.
//
// Usage:
//
//	tcamctl -switch "Dell 8132F" -rate 1000 -overlap 1.0 -rules 5000 -hermes
//	tcamctl -switch "Pica8 P-3290" -occupancy 2000       # Table-1 style probe
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/predict"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/trace"
	"hermes/internal/workload"
)

func main() {
	profName := flag.String("switch", "Pica8 P-3290", "switch profile name")
	rules := flag.Int("rules", 5000, "rules to insert")
	rate := flag.Float64("rate", 1000, "insertion rate (rules/second)")
	overlap := flag.Float64("overlap", 0, "overlap fraction [0,1]")
	useHermes := flag.Bool("hermes", false, "manage the switch with Hermes")
	guarantee := flag.Duration("guarantee", 5*time.Millisecond, "Hermes guarantee")
	slack := flag.Float64("slack", 1.0, "Hermes slack factor")
	occupancy := flag.Int("occupancy", 0, "probe update rate at a fixed occupancy instead (Table 1 mode)")
	seed := flag.Int64("seed", 1, "random seed")
	saveTrace := flag.String("save", "", "save the generated rule stream to this file and exit")
	loadTrace := flag.String("load", "", "replay a rule stream from this file instead of generating one")
	flag.Parse()

	profile, ok := tcam.ProfileByName(*profName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tcamctl: unknown switch %q\n", *profName)
		os.Exit(1)
	}

	if *occupancy > 0 {
		probeOccupancy(profile, *occupancy)
		return
	}

	var stream []workload.TimedRule
	if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
			os.Exit(1)
		}
		stream, err = trace.LoadRuleStream(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
			os.Exit(1)
		}
	} else {
		stream = workload.MicroBench(rand.New(rand.NewSource(*seed)), workload.MicroBenchConfig{
			Rules: *rules, RatePerSec: *rate, OverlapFrac: *overlap, MaxPriority: 64,
		})
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
			os.Exit(1)
		}
		if err := trace.SaveRuleStream(f, stream); err != nil {
			fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved %d rules to %s\n", len(stream), *saveTrace)
		return
	}

	if *useHermes {
		runHermes(profile, stream, *guarantee, *slack)
		return
	}
	runRaw(profile, stream)
}

// probeOccupancy reproduces one Table-1 cell interactively.
func probeOccupancy(profile *tcam.Profile, occ int) {
	tbl := tcam.NewTable("probe", profile.Capacity, profile)
	for i := 0; i < occ; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8, 24)),
			Priority: 10,
		}
		if _, err := tbl.Insert(r); err != nil {
			fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
			os.Exit(1)
		}
	}
	cost := tbl.InsertCost(1000)
	fmt.Printf("%s at occupancy %d: top-priority insert costs %v (%.0f updates/s)\n",
		profile.Name, occ, cost, 1/cost.Seconds())
}

func runRaw(profile *tcam.Profile, stream []workload.TimedRule) {
	sw := tcam.NewSwitch("raw", profile)
	tbl := sw.Table()
	var lats []float64
	errors := 0
	for _, tr := range stream {
		cost, err := tbl.Insert(tr.Rule)
		if err != nil {
			errors++
			continue
		}
		done := sw.Submit(tr.At, cost)
		lats = append(lats, (done-tr.At).Seconds()*1e3)
	}
	fmt.Printf("raw %s: %d rules inserted, %d rejected\n", profile.Name, len(lats), errors)
	printStats(lats)
}

func runHermes(profile *tcam.Profile, stream []workload.TimedRule, guarantee time.Duration, slack float64) {
	sw := tcam.NewSwitch("hermes", profile)
	agent, err := core.New(sw, core.Config{
		Guarantee:        guarantee,
		Corrector:        predict.Slack{Factor: slack},
		DisableRateLimit: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcamctl: %v\n", err)
		os.Exit(1)
	}
	tick := 10 * time.Millisecond
	nextTick := tick
	var lats []float64
	for _, tr := range stream {
		for tr.At >= nextTick {
			if end := agent.Tick(nextTick); end != 0 {
				agent.Advance(end)
			}
			nextTick += tick
		}
		res, err := agent.Insert(tr.At, tr.Rule)
		if err != nil {
			continue
		}
		lats = append(lats, (res.Completed-tr.At).Seconds()*1e3)
	}
	m := agent.Metrics()
	fmt.Printf("hermes on %s (guarantee %v, shadow %d entries = %.1f%% overhead)\n",
		profile.Name, guarantee, agent.ShadowSize(), agent.OverheadFraction()*100)
	printStats(lats)
	fmt.Printf("paths: shadow=%d bypass=%d main=%d redundant=%d | violations=%d migrations=%d partitions=%d\n",
		m.ShadowInserts, m.Bypasses, m.MainInserts, m.Redundant,
		m.Violations, m.Migrations, m.PartitionsInstalled)
}

func printStats(lats []float64) {
	if len(lats) == 0 {
		fmt.Println("no samples")
		return
	}
	s := stats.Summarize(lats)
	fmt.Printf("insert latency (ms): median=%.3f mean=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		s.Median(), s.Mean(), s.P95(), s.P99(), s.Max())
}
