// Command hermes-fleetd demonstrates the fleet control plane end to end:
// it spawns K in-process Hermes agent daemons (one modeled switch each, as
// cmd/hermes-agentd runs standalone), connects an internal/fleet manager
// to all of them, replays a workload routed consistently across the fleet,
// and prints the aggregated telemetry — ops/sec, per-switch counters, and
// fleet-wide guaranteed-latency percentiles.
//
// Usage:
//
//	hermes-fleetd -switches 8 -rules 20000
//	hermes-fleetd -switches 4 -rules 5000 -ratelimit -retry
//	hermes-fleetd -switches 4 -rules 5000 -kill 1   # trip a circuit breaker
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"net/http"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/fleet"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hermes-fleetd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	switches := flag.Int("switches", 4, "number of in-process agent daemons")
	rules := flag.Int("rules", 10000, "flow-mods to replay across the fleet")
	profName := flag.String("switch", "Pica8 P-3290", "switch profile name")
	guarantee := flag.Duration("guarantee", 5*time.Millisecond, "per-switch insertion guarantee")
	overlap := flag.Float64("overlap", 0.2, "workload overlap fraction [0,1]")
	batch := flag.Int("batch", 16, "per-worker dispatch batch size")
	queue := flag.Int("queue", 128, "per-worker queue depth")
	rateLimit := flag.Bool("ratelimit", false, "enable Gate Keeper admission control")
	retry := flag.Bool("retry", false, "retry diverted insertions with backoff")
	kill := flag.Int("kill", -1, "kill this switch index mid-replay (circuit-breaker demo)")
	declarative := flag.Bool("declarative", false,
		"drive the fleet through the intent reconciler instead of imperative replay")
	resync := flag.Duration("resync", 2*time.Second, "declarative-mode periodic resync interval")
	wait := flag.Duration("wait", 15*time.Second, "declarative-mode convergence deadline")
	seed := flag.Int64("seed", 1, "workload and jitter seed")
	obsAddr := flag.String("obs-addr", "",
		"serve fleet /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	flag.Parse()

	profile, ok := tcam.ProfileByName(*profName)
	if !ok {
		fatalf("unknown switch %q", *profName)
	}
	if *kill >= *switches {
		fatalf("-kill %d out of range for %d switches", *kill, *switches)
	}

	// Switch side: K agent daemons on loopback.
	specs := make([]fleet.SwitchSpec, *switches)
	servers := make([]*ofwire.AgentServer, *switches)
	for i := range specs {
		name := fmt.Sprintf("sw-%d", i)
		srv, err := ofwire.NewAgentServer(name, profile, core.Config{
			Guarantee:        *guarantee,
			DisableRateLimit: !*rateLimit,
		})
		if err != nil {
			fatalf("agent %s: %v", name, err)
		}
		srv.Logf = func(string, ...interface{}) {} // killed-switch noise
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("listen: %v", err)
		}
		go srv.Serve(lis) //nolint:errcheck
		defer srv.Close()
		specs[i] = fleet.SwitchSpec{ID: name, Addr: lis.Addr().String()}
		servers[i] = srv
	}

	// Controller side: the fleet manager, optionally exposed over HTTP.
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	hook := &reconnectHook{}
	f, err := fleet.New(fleet.Config{
		QueueDepth:    *queue,
		BatchSize:     *batch,
		ProbeInterval: 25 * time.Millisecond,
		Breaker:       fleet.BreakerConfig{FailureThreshold: 3, OpenTimeout: 250 * time.Millisecond},
		RetryDiverted: *retry,
		Seed:          *seed,
		Obs:           reg,
		OnReconnect:   hook.call,
	}, specs)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if reg != nil {
		obsLis, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fatalf("obs listener: %v", err)
		}
		go http.Serve(obsLis, obs.NewMux(reg, nil)) //nolint:errcheck
		fmt.Printf("fleet observability on http://%s/metrics\n", obsLis.Addr())
	}
	fmt.Printf("fleet of %d × %s agents up (guarantee %v, batch %d, queue %d)\n",
		*switches, profile.Name, *guarantee, *batch, *queue)

	stream := workload.MicroBench(rand.New(rand.NewSource(*seed)), workload.MicroBenchConfig{
		Rules: *rules, RatePerSec: 1e9, OverlapFrac: *overlap, MaxPriority: 64,
	})

	if *declarative {
		var killFn func()
		if *kill >= 0 {
			killFn = func() {
				fmt.Printf("... killing %s mid-churn\n", specs[*kill].ID)
				servers[*kill].Close() //nolint:errcheck
			}
		}
		runDeclarative(f, reg, hook, stream, *resync, *seed, killFn, *wait)
		return
	}

	// Replay at full speed; a collector drains results as they complete so
	// the whole stream stays in flight against the workers' queues.
	type tally struct{ ok, failed, guaranteed, retried int }
	results := make(chan (<-chan fleet.OpResult), 4*(*queue))
	doneCollect := make(chan tally)
	go func() {
		var tl tally
		for ch := range results {
			res := <-ch
			switch {
			case res.Err != nil:
				tl.failed++
			default:
				tl.ok++
				if res.Result.Guaranteed {
					tl.guaranteed++
				}
				if res.Attempts > 1 {
					tl.retried++
				}
			}
		}
		doneCollect <- tl
	}()

	start := time.Now()
	for i, tr := range stream {
		if *kill >= 0 && i == len(stream)/2 {
			fmt.Printf("... killing %s mid-replay\n", specs[*kill].ID)
			servers[*kill].Close() //nolint:errcheck
		}
		r := tr.Rule
		r.ID = classifier.RuleID(i + 1)
		ch, err := f.InsertRoutedAsync(r)
		if err != nil {
			fatalf("submit: %v", err)
		}
		results <- ch
	}
	close(results)
	tl := <-doneCollect
	if err := f.Barrier(); err != nil {
		fmt.Printf("barrier (expected on a killed switch): %v\n", err)
	}
	elapsed := time.Since(start)

	snap := f.Snapshot()
	fmt.Println()
	fmt.Print(snap.Table().String())
	fmt.Println()
	fmt.Printf("replayed %d flow-mods in %v — %.0f ops/s end-to-end (%d ok, %d failed, %d guaranteed, %d retried)\n",
		len(stream), elapsed.Round(time.Millisecond),
		float64(tl.ok)/elapsed.Seconds(), tl.ok, tl.failed, tl.guaranteed, tl.retried)
	fmt.Printf("fleet guaranteed latency: p50=%.3fms p95=%.3fms p99=%.3fms over %d samples\n",
		snap.Guaranteed.Median(), snap.Guaranteed.P95(), snap.Guaranteed.P99(), snap.Guaranteed.N())
}
