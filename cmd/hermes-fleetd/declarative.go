package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/fleet"
	"hermes/internal/intent"
	"hermes/internal/obs"
	"hermes/internal/workload"
)

// Declarative mode: instead of replaying the workload as imperative
// flow-mods, pour it into an intent.Store and let the level-triggered
// reconciler drive the fleet to match — reconnects, faults, and resync
// ticks all funnel into the same per-switch queues, so a killed switch
// simply stays pending while the rest of the fleet converges.

// fleetTarget adapts a fleet manager to the reconciler's Target seam. An
// open breaker reads as not-ready, which the controller turns into a
// rate-limited requeue instead of a doomed RPC burst.
type fleetTarget struct{ f *fleet.Fleet }

func (t fleetTarget) Ready(sw string) bool {
	st, err := t.f.BreakerState(sw)
	return err == nil && st != fleet.BreakerOpen
}

func (t fleetTarget) Observe(sw string) ([]classifier.Rule, error) {
	return t.f.ObservedRules(sw)
}

func (t fleetTarget) Apply(sw string, op intent.Op) error {
	var res fleet.OpResult
	switch op.Kind {
	case intent.OpInsert:
		res = t.f.Insert(sw, op.Rule)
	case intent.OpModify:
		res = t.f.Modify(sw, op.Rule)
	case intent.OpDelete:
		res = t.f.Delete(sw, op.Rule.ID)
	}
	return res.Err
}

// reconnectHook lets the fleet's OnReconnect callback be bound to a
// controller that is constructed after the fleet. Unset, it is a no-op.
type reconnectHook struct {
	mu sync.Mutex
	fn func(switchID string)
}

func (h *reconnectHook) set(fn func(string)) {
	h.mu.Lock()
	h.fn = fn
	h.mu.Unlock()
}

func (h *reconnectHook) call(sw string) {
	h.mu.Lock()
	fn := h.fn
	h.mu.Unlock()
	if fn != nil {
		fn(sw)
	}
}

// runDeclarative feeds the workload into the desired-state store, runs
// the reconciler in goroutine mode against the live fleet, and reports
// per-switch convergence. kill, when >= 0, closes that agent's server
// halfway through the churn, demonstrating that the rest of the fleet
// converges while the dead switch stays pending.
func runDeclarative(f *fleet.Fleet, reg *obs.Registry, hook *reconnectHook,
	stream []workload.TimedRule, resync time.Duration, seed int64,
	kill func(), wait time.Duration) {

	start := time.Now()
	store := intent.NewStore(f.Route)
	shards := f.Size()
	if shards > 4 {
		shards = 4
	}
	ctrl, err := intent.New(intent.Config{
		Switches: f.Switches(),
		Shards:   shards,
		ID:       "fleetd",
		Store:    store,
		Target:   fleetTarget{f},
		Now:      func() time.Duration { return time.Since(start) },
		Resync:   resync,
		Seed:     seed,
		Obs:      reg,
		Permanent: func(err error) bool {
			return errors.Is(err, fleet.ErrFleetClosed)
		},
	})
	if err != nil {
		fatalf("controller: %v", err)
	}
	hook.set(func(sw string) { ctrl.MarkDirty(sw, intent.DirtyReconnect) })
	ctrl.Run()
	defer ctrl.Close()
	fmt.Printf("declarative mode: reconciling %d rules across %d switches (%d shards, resync %v)\n",
		len(stream), f.Size(), shards, resync)

	for i, tr := range stream {
		if kill != nil && i == len(stream)/2 {
			kill()
		}
		r := tr.Rule
		r.ID = classifier.RuleID(i + 1)
		store.Set(r)
	}

	// Wait for the fleet to settle: every switch either converged at the
	// final generation or visibly stuck (killed / halted).
	gen := store.Generation()
	deadline := time.Now().Add(wait)
	settled := func() bool {
		for _, sw := range f.Switches() {
			if _, dead := ctrl.Halted(sw); dead {
				continue
			}
			if g, ok := ctrl.ConvergedGeneration(sw); !ok || g != gen {
				return false
			}
		}
		return true
	}
	for !settled() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	elapsed := time.Since(start)

	fmt.Println()
	converged := 0
	for _, sw := range f.Switches() {
		st, _ := f.BreakerState(sw)
		if herr, dead := ctrl.Halted(sw); dead {
			fmt.Printf("  %-8s HALTED (%v)\n", sw, herr)
			continue
		}
		if g, ok := ctrl.ConvergedGeneration(sw); ok && g == gen {
			converged++
			fmt.Printf("  %-8s converged at generation %d (breaker %v)\n", sw, g, st)
		} else {
			fmt.Printf("  %-8s PENDING at generation %d/%d (breaker %v) — expected with -kill\n",
				sw, g, gen, st)
		}
	}
	fmt.Println()
	fmt.Printf("declared %d rules (store generation %d) — %d/%d switches converged in %v\n",
		store.Len(), gen, converged, f.Size(), elapsed.Round(time.Millisecond))
}
