// Command varys runs the flow-level network simulator standalone: one
// workload, one topology, one installation strategy, and prints the
// resulting rule-installation, flow-completion and job-completion
// statistics.
//
// Usage:
//
//	varys -topology fattree8 -workload facebook -installer hermes [-jobs N] [-seed S]
//
// Topologies: fattree4, fattree8, fattree16, abilene, geant, quest.
// Installers: zero, direct, espres, tango, hermes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hermes/internal/core"
	"hermes/internal/netsim"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/trace"
	"hermes/internal/workload"
)

func main() {
	topoName := flag.String("topology", "fattree8", "fattree4|fattree8|fattree16|abilene|geant|quest")
	instName := flag.String("installer", "hermes", "zero|direct|espres|tango|hermes")
	profName := flag.String("switch", "Pica8 P-3290", "switch profile name")
	workloadName := flag.String("workload", "facebook", "facebook|tm (traffic-matrix)")
	jobs := flag.Int("jobs", 400, "number of jobs (facebook workload)")
	seconds := flag.Int("seconds", 30, "trace duration in seconds")
	guarantee := flag.Duration("guarantee", 5*time.Millisecond, "Hermes insertion guarantee")
	prefill := flag.Int("prefill", 300, "background rules per switch")
	seed := flag.Int64("seed", 1, "random seed")
	saveTrace := flag.String("savetrace", "", "save the generated job trace to this file and exit")
	loadTrace := flag.String("loadtrace", "", "replay a job trace from this file (must match the topology)")
	flag.Parse()

	g, err := buildTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	profile, ok := tcam.ProfileByName(*profName)
	if !ok {
		fatal(fmt.Errorf("unknown switch profile %q (known: Pica8 P-3290, Dell 8132F, HP 5406zl)", *profName))
	}
	kind, err := parseInstaller(*instName)
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	var jobTrace []workload.Job
	if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			fatal(err)
		}
		jobTrace, err = trace.LoadJobs(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		switch *workloadName {
		case "facebook":
			jobTrace = workload.FacebookJobs(rng, workload.FacebookConfig{
				Jobs:     *jobs,
				Duration: time.Duration(*seconds) * time.Second,
				Hosts:    g.Hosts(),
			})
		case "tm":
			tm := workload.GravityTM(rng, g.Hosts(), 12e9)
			jobTrace = workload.FlowsFromTM(rng, tm, time.Duration(*seconds)*time.Second, 40e6)
		default:
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := trace.SaveJobs(f, jobTrace); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("saved %d jobs to %s\n", len(jobTrace), *saveTrace)
		return
	}

	sim := netsim.New(netsim.Config{
		Graph:        g,
		Profile:      profile,
		Kind:         kind,
		HermesConfig: hermesConfig(*guarantee),
		PrefillRules: *prefill,
		Seed:         *seed,
	})
	start := time.Now()
	m := sim.Run(jobTrace)
	elapsed := time.Since(start)

	fmt.Printf("varys: %s on %s, %s switches (%s installer), %d jobs\n",
		*workloadName, *topoName, profile.Name, kind, len(jobTrace))
	printSummary("rule installation time (ms)", m.RITms)
	printSummary("flow completion time (s)", mapValues(m.FCTs))
	printSummary("job completion time (s)", mapValues(m.JCTs))
	fmt.Printf("TE moves: %d  install errors: %d\n", m.Moves, m.InstallErrors)
	if agents := sim.Agents(); len(agents) > 0 {
		var violations, migrations int
		for _, a := range agents {
			am := a.Metrics()
			violations += am.Violations
			migrations += am.Migrations
		}
		fmt.Printf("hermes: %d agents, %d violations, %d migrations, %.1f%% TCAM overhead\n",
			len(agents), violations, migrations, agents[0].OverheadFraction()*100)
	}
	fmt.Printf("simulated in %v wall-clock\n", elapsed.Round(time.Millisecond))
}

func buildTopology(name string) (*topo.Graph, error) {
	switch name {
	case "fattree4":
		return topo.FatTree(4, 1e9, 10*time.Microsecond), nil
	case "fattree8":
		return topo.FatTree(8, 10e9, 10*time.Microsecond), nil
	case "fattree16":
		return topo.FatTree(16, 40e9, 10*time.Microsecond), nil
	case "abilene":
		return topo.Abilene(), nil
	case "geant":
		return topo.Geant(), nil
	case "quest":
		return topo.Quest(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func parseInstaller(name string) (netsim.InstallerKind, error) {
	switch name {
	case "zero":
		return netsim.InstallZero, nil
	case "direct":
		return netsim.InstallDirect, nil
	case "espres":
		return netsim.InstallESPRES, nil
	case "tango":
		return netsim.InstallTango, nil
	case "hermes":
		return netsim.InstallHermes, nil
	default:
		return 0, fmt.Errorf("unknown installer %q", name)
	}
}

func hermesConfig(guarantee time.Duration) core.Config {
	return core.Config{Guarantee: guarantee}
}

func printSummary(title string, vals []float64) {
	if len(vals) == 0 {
		fmt.Printf("%s: no samples\n", title)
		return
	}
	s := stats.Summarize(vals)
	fmt.Printf("%s: n=%d median=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		title, s.N(), s.Median(), s.P95(), s.P99(), s.Max())
}

func mapValues(m map[int]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "varys:", err)
	os.Exit(1)
}
