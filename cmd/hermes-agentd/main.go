// Command hermes-agentd runs the switch-side Hermes agent as a network
// daemon: it models one switch's TCAM, carves it for the configured
// guarantee, and serves the ofwire control channel (the deployment of the
// paper's Fig. 2, with the modeled ASIC standing in for hardware).
//
// Usage:
//
//	hermes-agentd -listen 127.0.0.1:6653 -switch "Pica8 P-3290" -guarantee 5ms
//
// Pair it with examples/remote-controller, or any program speaking
// internal/ofwire.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hermes/internal/core"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
	"hermes/internal/rulecache"
	"hermes/internal/tcam"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:6653", "address to listen on")
	profName := flag.String("switch", "Pica8 P-3290", "switch profile name")
	guarantee := flag.Duration("guarantee", 5*time.Millisecond, "insertion guarantee")
	name := flag.String("name", "hermes-sw", "switch name")
	rateLimit := flag.Bool("ratelimit", true, "enable Gate Keeper admission control")
	cacheSize := flag.Int("cache", 0,
		"enable the FDRC caching hierarchy with this many hardware-resident rules (0 disables; the software tier below is unbounded)")
	cachePolicy := flag.String("cache-policy", "cost", "cache promotion policy: lru, lfu, or cost")
	obsAddr := flag.String("obs-addr", "",
		"serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (empty disables)")
	flag.Parse()

	profile, ok := tcam.ProfileByName(*profName)
	if !ok {
		fmt.Fprintf(os.Stderr, "hermes-agentd: unknown switch %q\n", *profName)
		os.Exit(1)
	}
	var (
		reg      *obs.Registry
		observer *core.Observer
	)
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		observer = core.NewObserver(reg, 4096)
	}
	cfg := core.Config{
		Guarantee:        *guarantee,
		DisableRateLimit: !*rateLimit,
		Observer:         observer,
	}
	if *cacheSize > 0 {
		policy, err := rulecache.ParsePolicy(*cachePolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-agentd: %v\n", err)
			os.Exit(1)
		}
		cfg.Cache = &rulecache.Config{Capacity: *cacheSize, Policy: policy}
	}
	srv, err := ofwire.NewAgentServer(*name, profile, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hermes-agentd: %v\n", err)
		os.Exit(1)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hermes-agentd: %v\n", err)
		os.Exit(1)
	}
	agent := srv.Agent()
	fmt.Printf("hermes-agentd: %s (%s) on %s — guarantee %v, shadow %d entries (%.1f%% overhead), max rate %.0f rules/s\n",
		*name, profile.Name, lis.Addr(), *guarantee,
		agent.ShadowSize(), agent.OverheadFraction()*100, agent.MaxRate())

	if *cacheSize > 0 {
		fmt.Printf("hermes-agentd: FDRC cache enabled — %d hardware slots, policy %s\n",
			*cacheSize, *cachePolicy)
	}

	if *obsAddr != "" {
		srv.RegisterObs(reg)
		if *cacheSize > 0 {
			agent.RegisterCacheMetrics(reg)
		}
		obsLis, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-agentd: obs listener: %v\n", err)
			os.Exit(1)
		}
		go http.Serve(obsLis, obs.NewMux(reg, observer.Tracer)) //nolint:errcheck
		fmt.Printf("hermes-agentd: observability on http://%s/metrics (plus /debug/vars /debug/trace /debug/pprof)\n",
			obsLis.Addr())
	}

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		fmt.Println("hermes-agentd: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(lis); err != nil {
		fmt.Fprintf(os.Stderr, "hermes-agentd: %v\n", err)
		os.Exit(1)
	}
}
