// Command hermes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hermes-bench [-scale F] [-list] [experiment ...]
//
// With no experiment arguments it runs the full suite (Table 1, Figures 1
// and 8–15, the §8.6 predictor sweep, the §8.4 BGP study, and the design
// ablations) and prints paper-style rows for each. Scale 1 is the default
// laptop-sized configuration; -scale 4 runs the paper-sized fat-tree
// (k=16, 1024 hosts) where applicable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hermes/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (0.1 = smoke test, 4 = paper-sized)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hermes-bench [-scale F] [-list] [experiment ...]\n\nexperiments: %v\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Order()
	}
	start := time.Now()
	for _, id := range ids {
		res, err := experiments.Run(id, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(res)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	fmt.Printf("completed in %v (scale %g)\n", time.Since(start).Round(time.Millisecond), *scale)
}

// writeCSVs dumps each of the result's tables as <dir>/<id>-<n>.csv.
func writeCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
