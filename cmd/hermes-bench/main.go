// Command hermes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hermes-bench [-scale F] [-list] [-gomaxprocs 1,2,4,8] [experiment ...]
//
// With no experiment arguments it runs the full suite (Table 1, Figures 1
// and 8–15, the §8.6 predictor sweep, the §8.4 BGP study, and the design
// ablations) and prints paper-style rows for each. Scale 1 is the default
// laptop-sized configuration; -scale 4 runs the paper-sized fat-tree
// (k=16, 1024 hosts) where applicable.
//
// -gomaxprocs runs the sharded parallel-lookup scaling sweep instead: for
// each requested GOMAXPROCS value it drives the agent's lock-free lookup
// snapshot (plain and sharded) from that many goroutines and prints a
// throughput/scaling table, then exits.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/experiments"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (0.1 = smoke test, 4 = paper-sized)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")
	gmp := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8): run the sharded parallel-lookup scaling sweep and exit")
	cacheJSON := flag.String("cache-json", "", "run the cache experiment plus the lookup-overhead pair and write the JSON report to this file, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hermes-bench [-scale F] [-list] [-gomaxprocs 1,2,4,8] [experiment ...]\n\nexperiments: %v\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *gmp != "" {
		if err := runLookupSweep(*gmp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *cacheJSON != "" {
		if err := runCacheJSON(*cacheJSON, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Order()
	}
	start := time.Now()
	for _, id := range ids {
		res, err := experiments.Run(id, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(res)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	fmt.Printf("completed in %v (scale %g)\n", time.Since(start).Round(time.Millisecond), *scale)
}

// sweepRules is the lookup-sweep working set: enough rules that the trie
// has real depth, small enough that the table fits a single TCAM slice.
const sweepRules = 1024

// sweepAgent builds an agent preloaded with sweepRules rules (sharded
// snapshot when shards > 1) and warms the lock-free view past its rebuild
// hysteresis, so the sweep measures the steady-state published-index path.
func sweepAgent(shards int) (*core.Agent, []uint32, error) {
	sw := tcam.NewSwitch("sweep", tcam.Pica8P3290)
	a, err := core.New(sw, core.Config{
		Guarantee:        5 * time.Millisecond,
		DisableRateLimit: true,
		LookupShards:     shards,
	})
	if err != nil {
		return nil, nil, err
	}
	rules := make([]classifier.Rule, sweepRules)
	for i := range rules {
		rules[i] = classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12, 20)),
			Priority: int32(i%10 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
	}
	for _, res := range a.InsertBatch(0, rules, nil) {
		if res.Err != nil {
			return nil, nil, res.Err
		}
	}
	addrs := make([]uint32, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range addrs {
		addrs[i] = uint32(rng.Intn(sweepRules)) << 12
	}
	for i := 0; i < 64; i++ {
		a.Lookup(addrs[i%len(addrs)], 0)
	}
	return a, addrs, nil
}

// sweepCell drives the agent's lookup path from p goroutines for dur and
// returns aggregate throughput in lookups/s.
func sweepCell(a *core.Agent, addrs []uint32, p int, dur time.Duration) float64 {
	prev := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(prev)

	var (
		ops  int64
		stop int32
		wg   sync.WaitGroup
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i, local := w*997, int64(0)
			for atomic.LoadInt32(&stop) == 0 {
				for k := 0; k < 1024; k++ {
					a.Lookup(addrs[i&(len(addrs)-1)], 0)
					i++
				}
				local += 1024
			}
			atomic.AddInt64(&ops, local)
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(atomic.LoadInt64(&ops)) / elapsed.Seconds()
}

// runLookupSweep measures parallel lookup scaling: plain vs sharded
// snapshot, each driven at every requested GOMAXPROCS value, reported as
// per-lookup latency, aggregate throughput, and speedup over the first
// (lowest) GOMAXPROCS column of the same configuration.
func runLookupSweep(spec string) error {
	var procs []int
	for _, f := range strings.Split(spec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("hermes-bench: bad -gomaxprocs value %q", f)
		}
		procs = append(procs, p)
	}

	tab := &stats.Table{
		Title:   fmt.Sprintf("Parallel lookup scaling (%d rules, %d probe addrs)", sweepRules, 4096),
		Headers: []string{"config", "GOMAXPROCS", "ns/op", "Mlookups/s", "speedup"},
	}
	const dur = 200 * time.Millisecond
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 0},
		{"shards=4", 4},
		{"shards=8", 8},
	} {
		a, addrs, err := sweepAgent(cfg.shards)
		if err != nil {
			return fmt.Errorf("hermes-bench: lookup sweep %s: %w", cfg.name, err)
		}
		base := 0.0
		for _, p := range procs {
			tput := sweepCell(a, addrs, p, dur)
			if base == 0 {
				base = tput
			}
			tab.AddRow(cfg.name,
				strconv.Itoa(p),
				fmt.Sprintf("%.1f", float64(p)*1e9/tput),
				fmt.Sprintf("%.2f", tput/1e6),
				fmt.Sprintf("%.2fx", tput/base))
		}
	}
	fmt.Println(tab)
	fmt.Printf("(host has %d CPUs; columns beyond that measure scheduler oversubscription, not scaling)\n", runtime.NumCPU())
	return nil
}

// writeCSVs dumps each of the result's tables as <dir>/<id>-<n>.csv.
func writeCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
