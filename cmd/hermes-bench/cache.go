package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/experiments"
	"hermes/internal/rulecache"
	"hermes/internal/tcam"
)

// cacheReport is the BENCH_cache.json document: the deterministic
// virtual-time sweep (hit ratios, modeled latency quantiles, the policy
// verdict booleans scripts/check.sh gates on) plus one wall-clock
// measurement — the cached-vs-plain lookup overhead, taken as min-of-k
// ns/op per mode so scheduler noise (which is strictly additive) cancels.
type cacheReport struct {
	GeneratedAt string  `json:"generated_at"`
	Scale       float64 `json:"scale"`
	experiments.CacheData
	NoCacheNSOp     float64 `json:"nocache_ns_per_op"`
	CachedNSOp      float64 `json:"cached_ns_per_op"`
	OverheadPercent float64 `json:"lookup_overhead_percent"`
}

// runCacheJSON runs the cache sweep plus the overhead pair and writes the
// combined report to path.
func runCacheJSON(path string, scale float64) error {
	res, data := experiments.CacheSweepData(scale)
	fmt.Println(res)

	plain, cached := measureCacheOverhead()
	rep := cacheReport{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Scale:           scale,
		CacheData:       data,
		NoCacheNSOp:     plain,
		CachedNSOp:      cached,
		OverheadPercent: (cached - plain) / plain * 100,
	}
	fmt.Printf("lookup overhead: nocache %.1fns/op, cached %.1fns/op (%.1f%%)\n",
		plain, cached, rep.OverheadPercent)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// overheadRules mirrors BenchmarkCachedLookup: the working set matches the
// cache experiment's operating scale and every rule is hardware-resident,
// so the pair isolates the cost the sampling hooks add to a hardware-tier
// hit — the hierarchy's common case.
const overheadRules = 2048

// overheadAgent builds an agent with overheadRules resident rules, cached
// or plain, and warms the lock-free snapshot.
func overheadAgent(cache bool) (*core.Agent, error) {
	sw := tcam.NewSwitch("overhead", tcam.Pica8P3290)
	cfg := core.Config{
		Guarantee:        5 * time.Millisecond,
		DisableRateLimit: true,
	}
	if cache {
		cfg.Cache = &rulecache.Config{Capacity: overheadRules + 64, Policy: rulecache.PolicyLFU}
	}
	a, err := core.New(sw, cfg)
	if err != nil {
		return nil, err
	}
	rules := make([]classifier.Rule, overheadRules)
	for i := range rules {
		rules[i] = classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12, 20)),
			Priority: int32(i%50 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
	}
	for _, res := range a.InsertBatch(0, rules, nil) {
		if res.Err != nil {
			return nil, res.Err
		}
	}
	if cache {
		// Promote everything so the measured loop stays on the hardware tier.
		for t := time.Duration(0); t < 200*time.Millisecond; t += 10 * time.Millisecond {
			if end := a.Tick(t); end != 0 {
				a.Advance(end)
			}
		}
	}
	for i := 0; i < 64; i++ {
		a.Lookup(uint32(i%overheadRules)<<12, 0)
	}
	return a, nil
}

// measureCacheOverhead returns (plain, cached) min-of-k ns/op over the
// same lookup loop.
func measureCacheOverhead() (float64, float64) {
	const (
		rounds = 7
		loops  = 2_000_000
	)
	run := func(a *core.Agent) float64 {
		best := 0.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < loops; i++ {
				a.Lookup(uint32(i%overheadRules)<<12, 0)
			}
			ns := float64(time.Since(start).Nanoseconds()) / loops
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	plain, err := overheadAgent(false)
	if err != nil {
		panic(err)
	}
	cached, err := overheadAgent(true)
	if err != nil {
		panic(err)
	}
	return run(plain), run(cached)
}
