// Command hermes-lint is the front end of hermes-vet, the project's
// static analysis engine (DESIGN.md §13): per-function control-flow
// graphs, a module-wide call graph, and a forward-dataflow framework that
// the analyzers share. The suite mechanically enforces Hermes's
// invariants — deterministic simulation (intra- and interprocedural),
// zero-alloc hot paths (including allocations laundered through helper
// calls), lock discipline, snapshot immutability after atomic
// publication, blocking channel operations inside critical sections,
// wire-codec bounds safety, error-chain preservation, test-goroutine
// hygiene, and the hygiene of the //lint:ignore escape hatch itself.
//
// Usage:
//
//	hermes-lint [-json | -sarif] [-list] [pattern ...]
//
// Patterns are directories or "dir/..." trees; the default is "./...".
// -json emits findings as a JSON array stable-sorted by position;
// -sarif emits a SARIF 2.1.0 log for code-scanning upload (paths
// relative to the current directory). Exit status is 0 when clean, 1
// when findings are reported, and 2 on a usage, load, or type-check
// failure. Findings can be suppressed at a specific line with
// "//lint:ignore <analyzer> <reason>" — the reason is mandatory and the
// analyzer name is checked (lintdirective flags violations).
package main

import (
	"flag"
	"fmt"
	"os"

	"hermes/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one lint invocation and returns the process exit code:
// 0 clean, 1 findings, 2 usage/load error.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hermes-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (stable-sorted by position)")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 for code-scanning upload")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "hermes-lint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "hermes-lint:", err)
		return 2
	}
	findings := lint.Run(analyzers, pkgs, fset)

	switch {
	case *jsonOut:
		err = lint.WriteJSON(stdout, findings)
	case *sarifOut:
		root, rootErr := os.Getwd()
		if rootErr != nil {
			root = ""
		}
		err = lint.WriteSARIF(stdout, analyzers, findings, root)
	default:
		lint.WriteText(stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hermes-lint:", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
