// Command hermes-lint runs the project-specific static analyzers that
// enforce Hermes's invariants (DESIGN.md §8): deterministic simulation,
// wire-codec bounds safety, lock discipline, error-chain preservation and
// test-goroutine hygiene.
//
// Usage:
//
//	hermes-lint [-json] [-list] [pattern ...]
//
// Patterns are directories or "dir/..." trees; the default is "./...".
// Exit status is 0 when clean, 1 when findings are reported, 2 on a load
// or type-check failure. Findings can be suppressed at a specific line
// with "//lint:ignore <analyzer> <reason>".
package main

import (
	"flag"
	"fmt"
	"os"

	"hermes/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lint:", err)
		os.Exit(2)
	}
	findings := lint.Run(analyzers, pkgs, fset)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lint:", err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, findings)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
