// Command hermes-loadgen is the open-loop load driver: it generates a
// deterministic arrival schedule (millions of flows if asked), replays
// it against live Hermes agents — in-process daemons by default, or any
// reachable agent addresses — and renders a machine-readable SLO verdict
// CI can gate on.
//
// The schedule is a pure function of the seed and the shape flags: two
// runs with the same seed replay byte-identical schedules (compare
// -dump-schedule outputs, or the schedule_digest in the verdict). The
// measured latencies and the verdict's pass bit are then about the
// target, not the generator.
//
// Usage:
//
//	hermes-loadgen -flows 100000 -rate 50000 -switches 4
//	hermes-loadgen -flows 1000000 -rate 200000 -hold 20ms -p99-budget 50ms
//	hermes-loadgen -schedule bgp:Equinix-Chicago -p99-budget 100ms
//	hermes-loadgen -targets 10.0.0.1:6653,10.0.0.2:6653 -fleet
//	hermes-loadgen -flows 1000 -schedule-only -dump-schedule sched.bin
//
// Exit status: 0 when the SLO passes, 1 on breach, 2 on operational
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/core"
	"hermes/internal/fleet"
	"hermes/internal/loadgen"
	"hermes/internal/loadgen/driver"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hermes-loadgen: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	// Schedule shape.
	scheduleKind := flag.String("schedule", "synthetic",
		"schedule source: synthetic, bgp:<profile> (see hermes-agentd profiles), shuffle")
	flows := flag.Int("flows", 100000, "flow arrivals to schedule (synthetic)")
	rate := flag.Float64("rate", 50000, "mean arrival rate, flows/second (synthetic)")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson, constant, flash-crowd")
	burstFactor := flag.Float64("burst-factor", 10, "flash-crowd peak rate multiplier")
	distinct := flag.Uint64("distinct", 0, "flow-universe size for Zipf popularity (0: = flows)")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf skew exponent (>1)")
	hold := flag.Duration("hold", 50*time.Millisecond,
		"rule lifetime before deletion; bounds the installed working set (0 disables deletes)")
	classes := flag.String("classes", "1",
		"comma-separated class weights, e.g. 3,1 = 75% class 0, 25% class 1")
	seed := flag.Int64("seed", 1, "schedule seed; same seed = byte-identical schedule")
	jobs := flag.Int("jobs", 200, "job count for -schedule shuffle")

	// Target.
	switches := flag.Int("switches", 4, "in-process agent daemons to spawn")
	targets := flag.String("targets", "",
		"comma-separated external agent addresses (skips in-process daemons)")
	batch := flag.Bool("batch", false,
		"coalesce flow-mods into vectored flow-mod-batch frames (implies -fleet; one wire write per batch)")
	batchSize := flag.Int("batch-size", 64, "max flow-mods per wire batch frame (with -batch)")
	batchLinger := flag.Duration("batch-linger", 500*time.Microsecond,
		"how long a non-full batch lingers for stragglers before flushing (with -batch)")
	useFleet := flag.Bool("fleet", false,
		"drive through the fleet layer (queues, batching, breakers) instead of raw wire clients")
	profName := flag.String("switch", "Pica8 P-3290", "switch profile for in-process agents")
	guarantee := flag.Duration("guarantee", 5*time.Millisecond, "per-switch insertion guarantee")
	rateLimit := flag.Bool("ratelimit", false, "enable Gate Keeper admission control on in-process agents")

	// Executor.
	workers := flag.Int("workers", 32, "applier goroutines (flow-mods in flight)")
	queueDepth := flag.Int("queue-depth", 4096, "per-worker pending queue; overflow is shed as lost")
	timeScale := flag.Float64("timescale", 1, "replay speed multiplier (2 = twice as fast)")
	reqTimeout := flag.Duration("request-timeout", 5*time.Second,
		"per-flow-mod deadline before it is abandoned and counted lost")

	// SLO budgets. Zero durations and negative rates are unchecked.
	p50Budget := flag.Duration("p50-budget", 0, "per-class p50 setup-latency budget (0: unchecked)")
	p99Budget := flag.Duration("p99-budget", 0, "per-class p99 setup-latency budget (0: unchecked)")
	p999Budget := flag.Duration("p999-budget", 0, "per-class p999 setup-latency budget (0: unchecked)")
	maxViolation := flag.Float64("max-violation-rate", -1,
		"max guarantee violations per submitted op (negative: unchecked)")
	maxLoss := flag.Float64("max-loss-rate", -1,
		"max lost ops per submitted op (negative: unchecked)")

	// Output.
	out := flag.String("out", "", "write the verdict JSON here as well as stdout")
	dumpSchedule := flag.String("dump-schedule", "",
		"write the canonical binary schedule here (byte-identical across same-seed runs)")
	scheduleOnly := flag.Bool("schedule-only", false, "generate (and dump) the schedule, don't drive")
	obsAddr := flag.String("obs-addr", "",
		"serve the loadgen ledger on /metrics at this address during the run (empty disables)")
	flag.Parse()

	weights, err := parseWeights(*classes)
	if err != nil {
		fatalf("%v", err)
	}

	sched, err := buildSchedule(scheduleSpec{
		kind: *scheduleKind, flows: *flows, rate: *rate, arrival: *arrival,
		burstFactor: *burstFactor, distinct: *distinct, zipfS: *zipfS,
		hold: *hold, weights: weights, seed: *seed, jobs: *jobs,
	})
	if err != nil {
		fatalf("%v", err)
	}
	ins, mods, dels := sched.Counts()
	fmt.Printf("schedule %s: %d events (%d inserts, %d modifies, %d deletes) over %v, digest %016x\n",
		sched.Name, len(sched.Events), ins, mods, dels, sched.Duration().Round(time.Millisecond), sched.Digest())

	if *dumpSchedule != "" {
		if err := os.WriteFile(*dumpSchedule, sched.MarshalBinary(), 0o644); err != nil {
			fatalf("dump schedule: %v", err)
		}
		fmt.Printf("wrote %s\n", *dumpSchedule)
	}
	if *scheduleOnly {
		return
	}

	// Target side: external addresses, or spawn in-process agents.
	addrs := splitList(*targets)
	if len(addrs) == 0 {
		profile, ok := tcam.ProfileByName(*profName)
		if !ok {
			fatalf("unknown switch %q", *profName)
		}
		if *switches <= 0 {
			fatalf("-switches %d, need > 0", *switches)
		}
		for i := 0; i < *switches; i++ {
			name := fmt.Sprintf("sw-%d", i)
			srv, err := ofwire.NewAgentServer(name, profile, core.Config{
				Guarantee:        *guarantee,
				DisableRateLimit: !*rateLimit,
			})
			if err != nil {
				fatalf("agent %s: %v", name, err)
			}
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatalf("listen: %v", err)
			}
			go srv.Serve(lis) //nolint:errcheck
			defer srv.Close() //nolint:errcheck
			addrs = append(addrs, lis.Addr().String())
		}
		fmt.Printf("spawned %d in-process agents (%s, guarantee %v, ratelimit %v)\n",
			*switches, *profName, *guarantee, *rateLimit)
	}

	led := loadgen.NewLedger(len(weights))
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		led.Register(reg)
		obsLis, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fatalf("obs listen: %v", err)
		}
		go http.Serve(obsLis, obs.NewMux(reg, nil)) //nolint:errcheck
		fmt.Printf("loadgen metrics on http://%s/metrics\n", obsLis.Addr())
	}

	// Batching rides on the fleet's worker queues: the coalescer is the
	// fleet worker, so -batch implies the fleet target.
	if *batch {
		*useFleet = true
	}
	var tgt driver.Target
	targetName := "wire"
	if *useFleet {
		targetName = "fleet"
		specs := make([]fleet.SwitchSpec, len(addrs))
		for i, a := range addrs {
			specs[i] = fleet.SwitchSpec{ID: fmt.Sprintf("sw-%d", i), Addr: a}
		}
		fcfg := fleet.Config{}
		if *batch {
			targetName = "fleet-batch"
			fcfg.WireBatch = true
			fcfg.BatchSize = *batchSize
			fcfg.BatchLinger = *batchLinger
		}
		f, err := fleet.New(fcfg, specs)
		if err != nil {
			fatalf("fleet: %v", err)
		}
		defer f.Close() //nolint:errcheck
		tgt = driver.NewFleetTarget(f)
	} else {
		w, err := driver.DialWire(addrs, 5*time.Second, *reqTimeout)
		if err != nil {
			fatalf("%v", err)
		}
		defer w.Close() //nolint:errcheck
		tgt = w
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := driver.Run(ctx, sched, tgt, led, driver.Config{
		Workers: *workers, QueueDepth: *queueDepth, TimeScale: *timeScale,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("replayed %d events in %v: offered %.0f/s, achieved %.0f/s, shed %d, max pacer lag %v\n",
		rep.Events, rep.Wall.Round(time.Millisecond), rep.OfferedRate, rep.AchievedRate,
		rep.Shed, rep.MaxLag.Round(time.Microsecond))

	slo := loadgen.Uniform(len(weights), loadgen.ClassSLO{
		P50: *p50Budget, P99: *p99Budget, P999: *p999Budget,
		MaxViolationRate: *maxViolation, ViolationRateSet: *maxViolation >= 0,
		MaxLossRate: *maxLoss, LossRateSet: *maxLoss >= 0,
	})
	verdict := loadgen.Evaluate(led, slo, rep.RunInfo(sched, targetName, tgt.Switches()))
	js, err := verdict.JSON()
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(js) //nolint:errcheck
	if *out != "" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if !verdict.Pass {
		fmt.Fprintf(os.Stderr, "hermes-loadgen: SLO breached:\n")
		for _, b := range verdict.Breaches {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		os.Exit(1)
	}
	fmt.Println("SLO met")
}

// scheduleSpec bundles the schedule flags.
type scheduleSpec struct {
	kind, arrival      string
	flows, jobs        int
	rate               float64
	burstFactor, zipfS float64
	distinct           uint64
	hold               time.Duration
	weights            []int
	seed               int64
}

func buildSchedule(s scheduleSpec) (*loadgen.Schedule, error) {
	switch {
	case s.kind == "synthetic":
		kind, err := loadgen.ParseArrival(s.arrival)
		if err != nil {
			return nil, err
		}
		return loadgen.Generate(loadgen.Config{
			Flows: s.flows, Rate: s.rate, Arrival: kind, BurstFactor: s.burstFactor,
			Distinct: s.distinct, ZipfS: s.zipfS, Hold: s.hold,
			ClassWeights: s.weights, Seed: s.seed,
		})
	case strings.HasPrefix(s.kind, "bgp:"):
		name := strings.TrimPrefix(s.kind, "bgp:")
		for _, p := range bgp.Profiles() {
			if p.Name == name {
				return loadgen.FromBGP(s.seed, p.Name, p.Cfg, 0), nil
			}
		}
		return nil, fmt.Errorf("unknown BGP profile %q", name)
	case s.kind == "shuffle":
		rng := workload.SubStream(s.seed, 0)
		hosts := make([]topo.NodeID, 64)
		for i := range hosts {
			hosts[i] = topo.NodeID(i)
		}
		js := workload.FacebookJobs(rng, workload.FacebookConfig{
			Jobs: s.jobs, Duration: 30 * time.Second, Hosts: hosts,
		})
		return loadgen.FromJobs(js, s.hold, 0, uint8(len(s.weights)-1), 1), nil
	default:
		return nil, fmt.Errorf("unknown schedule kind %q", s.kind)
	}
}

func parseWeights(s string) ([]int, error) {
	var weights []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad class weight %q", part)
		}
		weights = append(weights, w)
	}
	return weights, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
