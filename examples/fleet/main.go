// Fleet controller: drive several Hermes agent daemons concurrently.
//
// Spawns three in-process agent servers on loopback TCP ports, then lets
// internal/fleet act as the multi-switch SDN controller: rules route
// consistently to their home switch, each switch's worker keeps multiple
// flow-mods in flight over its pipelined control channel, and a single
// Snapshot merges every agent's counters with fleet-wide latency
// percentiles. Finally one agent is killed to show the circuit breaker
// isolating the failure while the rest of the fleet keeps working.
//
// The controller also serves the always-on observability surface the way
// hermes-fleetd does with -obs-addr: per-switch queue depth, breaker state,
// retry counters, and control-channel RTT histograms on /metrics.
//
//	go run ./examples/fleet
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/fleet"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
)

func main() {
	// Switch side: three agent daemons (normally separate hermes-agentd
	// processes on three switches).
	var specs []fleet.SwitchSpec
	var servers []*ofwire.AgentServer
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("tor-%d", i)
		srv, err := ofwire.NewAgentServer(name, tcam.Pica8P3290, core.Config{
			Guarantee:        5 * time.Millisecond,
			DisableRateLimit: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.Logf = func(string, ...interface{}) {}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(lis) //nolint:errcheck
		defer srv.Close()
		specs = append(specs, fleet.SwitchSpec{ID: name, Addr: lis.Addr().String()})
		servers = append(servers, srv)
	}

	// Controller side: one fleet manager over all three, with its metrics
	// exposed over HTTP (what hermes-fleetd's -obs-addr flag does).
	reg := obs.NewRegistry()
	f, err := fleet.New(fleet.Config{
		ProbeInterval: 20 * time.Millisecond,
		Breaker:       fleet.BreakerConfig{FailureThreshold: 2, OpenTimeout: 200 * time.Millisecond},
		Obs:           reg,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	obsLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(obsLis, obs.NewMux(reg, nil)) //nolint:errcheck
	fmt.Printf("fleet up: %v — metrics on http://%s/metrics\n", f.Switches(), obsLis.Addr())

	// Install 300 rules, routed by rule ID; the async API keeps every
	// switch's pipeline full.
	var chans []<-chan fleet.OpResult
	for i := 1; i <= 300; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<14|0x0A000000, 26)),
			Priority: int32(i%16 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
		ch, err := f.InsertRoutedAsync(r)
		if err != nil {
			log.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			log.Fatalf("insert %d on %s: %v", res.RuleID, res.Switch, res.Err)
		}
	}
	if err := f.Barrier(); err != nil {
		log.Fatal(err)
	}

	snap := f.Snapshot()
	fmt.Print(snap.Table().String())
	fmt.Printf("guaranteed p99 across the fleet: %.3fms\n\n", snap.Guaranteed.P99())

	// Kill tor-1; its circuit opens and the fleet fails fast on it while
	// the other switches keep accepting flow-mods.
	fmt.Println("killing tor-1 ...")
	servers[1].Close() //nolint:errcheck
	for {
		res := f.Insert("tor-1", classifier.Rule{ID: 1000,
			Match: classifier.DstMatch(classifier.MustParsePrefix("192.168.0.0/16"))})
		var open *fleet.CircuitOpenError
		if errors.As(res.Err, &open) {
			fmt.Printf("tor-1: %v (fail-fast)\n", res.Err)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if res := f.Insert("tor-0", classifier.Rule{ID: 1001,
		Match: classifier.DstMatch(classifier.MustParsePrefix("192.168.0.0/16"))}); res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Println("tor-0 still accepting flow-mods — outage contained")

	// Scrape our own /metrics: the breaker trip and the per-switch traffic
	// split are visible to any Prometheus-compatible collector.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", obsLis.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	fmt.Println("\nfleet metrics (breaker + RTT excerpts):")
	for _, line := range strings.Split(string(buf[:n]), "\n") {
		if strings.HasPrefix(line, "hermes_fleet_breaker_state") ||
			strings.HasPrefix(line, "hermes_fleet_ops_ok_total") ||
			strings.HasPrefix(line, "hermes_ofwire_rtt_ns_count") {
			fmt.Println("  " + line)
		}
	}
}
