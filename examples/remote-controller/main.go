// Remote controller: drive a Hermes agent daemon over the wire.
//
// Spawns an in-process hermes agent server on a loopback TCP port (exactly
// what `cmd/hermes-agentd` runs standalone), then acts as the SDN
// controller: negotiates a guarantee with the QoS extension, installs a
// burst of rules, fences with a barrier, and reads back the agent's
// counters — the full controller↔switch loop of the paper's Fig. 2 over a
// real socket.
//
//	go run ./examples/remote-controller
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
)

func main() {
	// Switch side (normally a separate hermes-agentd process).
	srv, err := ofwire.NewAgentServer("tor-1", tcam.Pica8P3290, core.Config{
		Guarantee:        5 * time.Millisecond,
		DisableRateLimit: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	fmt.Printf("agent daemon listening on %s\n", lis.Addr())

	// Controller side.
	c, err := ofwire.Dial(lis.Addr().String(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Probe liveness, then negotiate a tighter guarantee over the wire.
	if _, err := c.Echo([]byte("are-you-there")); err != nil {
		log.Fatal(err)
	}
	qos, err := c.RequestQoS(2 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated %v guarantee: shadow=%d entries, overhead=%.2f%%, max rate=%.0f rules/s\n",
		time.Duration(qos.GuaranteeNS), qos.ShadowEntries,
		float64(qos.OverheadPPM)/1e4, float64(qos.MaxRateMilli)/1e3)

	// Install rules, pacing to the negotiated rate — the contract of §7:
	// the returned max burst rate is what the controller must respect for
	// the guarantee to hold.
	gap := time.Duration(float64(time.Second) / (float64(qos.MaxRateMilli) / 1e3))
	start := time.Now()
	var worst time.Duration
	for i := 0; i < 200; i++ {
		time.Sleep(gap)
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16|0x0A000000, 24)),
			Priority: int32(i%10 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
		res, err := c.Insert(r)
		if err != nil {
			log.Fatal(err)
		}
		if res.Latency > worst {
			worst = res.Latency
		}
	}
	if err := c.Barrier(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("200 rules installed over the wire in %v at the negotiated rate (worst modeled TCAM latency %v)\n",
		time.Since(start).Round(time.Millisecond), worst)

	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent counters: inserts=%d shadow=%d bypass=%d violations=%d migrations=%d shadow-occ=%d/%d\n",
		st.Inserts, st.ShadowInserts, st.Bypasses, st.Violations, st.Migrations,
		st.ShadowOcc, st.ShadowSize)
}
