// BGP router: Hermes under a traditional control plane (§2.3, §8.4).
//
// A synthetic BGPStream-shaped update trace (calm base rate, bursty
// session resets beyond 1000 updates/second) runs through a real best-path
// selection pipeline; only FIB-visible changes reach the forwarding table.
// The resulting insert/modify/delete stream drives a raw Dell 8132F and a
// Hermes-managed one side by side.
//
//	go run ./examples/bgp-router
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hermes"
	"hermes/internal/bgp"
	"hermes/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	cfg := bgp.TraceConfig{
		Duration: 20 * time.Second, Peers: 8, Prefixes: 3000,
		BaseRate: 40, BurstRate: 1800, BurstProb: 0.1,
		BurstLen: 2 * time.Second, WithdrawFrac: 0.3,
	}
	trace := bgp.GenerateTrace(rng, cfg)

	router := bgp.NewRouter("edge-1")
	var ops []bgp.FIBOp
	for _, u := range trace {
		ops = append(ops, router.Process(u)...)
	}
	fmt.Printf("BGP: %d updates -> %d FIB operations (%d RIB-only), final FIB %d routes\n",
		len(trace), len(ops), len(trace)-len(ops), router.FIBSize())

	// Raw switch.
	raw := hermes.NewSwitch("raw-dell", hermes.Dell8132F)
	var rawLat []float64
	for _, op := range ops {
		if op.Type != bgp.FIBInsert {
			continue
		}
		cost, err := raw.Table().Insert(op.Rule())
		if err != nil {
			continue
		}
		done := raw.Submit(op.At, cost)
		rawLat = append(rawLat, (done-op.At).Seconds()*1e3)
	}

	// Hermes-managed switch with its admission control active: admitted
	// insertions carry the 5ms guarantee; burst overruns use the main
	// table best-effort.
	sw := hermes.NewSwitch("hermes-dell", hermes.Dell8132F)
	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	tick := 10 * time.Millisecond
	nextTick := tick
	var guaranteed []float64
	for _, op := range ops {
		for op.At >= nextTick {
			if end := agent.Tick(nextTick); end != 0 {
				agent.Advance(end)
			}
			nextTick += tick
		}
		switch op.Type {
		case bgp.FIBInsert:
			res, err := agent.Insert(op.At, op.Rule())
			if err == nil && res.Guaranteed {
				guaranteed = append(guaranteed, (res.Completed-op.At).Seconds()*1e3)
			}
		case bgp.FIBDelete:
			agent.Delete(op.At, bgp.PrefixRuleID(op.Prefix)) //nolint:errcheck
		case bgp.FIBModify:
			agent.Modify(op.At, op.Rule()) //nolint:errcheck
		}
	}

	r := stats.Summarize(rawLat)
	h := stats.Summarize(guaranteed)
	m := agent.Metrics()
	fmt.Printf("raw Dell 8132F:  insert median %.2fms p99 %.2fms max %.2fms\n",
		r.Median(), r.P99(), r.Max())
	fmt.Printf("Hermes (5ms):    insert median %.2fms p99 %.2fms max %.2fms (admitted path)\n",
		h.Median(), h.P99(), h.Max())
	fmt.Printf("Hermes counters: violations=%d rate-limited=%d migrations=%d overhead=%.1f%%\n",
		m.Violations, m.RateLimited, m.Migrations, agent.OverheadFraction()*100)
}
