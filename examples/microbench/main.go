// Microbench: explore Hermes's parameter space interactively (§8.5, §8.6).
//
// Sweeps the slack factor against two arrival rates at a fixed overlap
// rate on the Dell 8132F — a condensed version of the paper's Figure 13 —
// and prints how prediction slack trades migration aggressiveness for
// insertion-latency headroom.
//
//	go run ./examples/microbench
package main

import (
	"fmt"
	"math/rand"
	"time"

	"hermes"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func main() {
	fmt.Println("Hermes slack sweep on Dell 8132F (overlap 60%)")
	fmt.Printf("%8s  %14s  %14s  %12s  %12s\n", "slack", "p95 @200/s", "p95 @1000/s", "migr/s @200", "migr/s @1000")
	for _, slack := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		var p95 [2]float64
		var migr [2]float64
		for i, rate := range []float64{200, 1000} {
			p95[i], migr[i] = run(rate, 0.6, slack)
		}
		fmt.Printf("%7.0f%%  %12.3fms  %12.3fms  %12.1f  %12.1f\n",
			slack*100, p95[0], p95[1], migr[0], migr[1])
	}
	fmt.Println("\nexpected: higher slack buys lower tail latency at high rates, at the cost of more migrations")
}

// run replays a microbench stream and returns (p95 latency ms, migrations/s).
func run(rate, overlap, slack float64) (float64, float64) {
	stream := workload.MicroBench(rand.New(rand.NewSource(3)), workload.MicroBenchConfig{
		Rules: int(rate * 4), RatePerSec: rate, OverlapFrac: overlap, MaxPriority: 64,
	})
	sw := hermes.NewSwitch("dell", hermes.Dell8132F)
	agent, err := hermes.NewAgent(sw, hermes.Config{
		Guarantee:        5 * time.Millisecond,
		Corrector:        hermes.Slack{Factor: slack},
		DisableRateLimit: true,
	})
	if err != nil {
		panic(err)
	}
	tick := 10 * time.Millisecond
	nextTick := tick
	var lats []float64
	for _, tr := range stream {
		for tr.At >= nextTick {
			if end := agent.Tick(nextTick); end != 0 {
				agent.Advance(end)
			}
			nextTick += tick
		}
		res, err := agent.Insert(tr.At, tr.Rule)
		if err != nil {
			continue
		}
		lats = append(lats, (res.Completed-tr.At).Seconds()*1e3)
	}
	elapsed := stream[len(stream)-1].At
	return stats.Summarize(lats).P95(), agent.Metrics().MigrationsPerSecond(elapsed)
}
