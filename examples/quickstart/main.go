// Quickstart: configure a 5ms insertion guarantee on a modeled switch,
// insert rules through the Hermes agent, and observe the guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"hermes"
)

func main() {
	// A Pica8 P-3290 switch, modeled with the update-rate behaviour of the
	// paper's Table 1.
	sw := hermes.NewSwitch("tor-1", hermes.Pica8P3290)

	// Ask the operator API what a 5ms guarantee costs before committing.
	overhead := hermes.QoSOverheads(hermes.Pica8P3290, 5*time.Millisecond)
	fmt.Printf("a 5ms guarantee on %s costs %.1f%% of the TCAM\n",
		sw.Name(), overhead*100)

	// Configure the guarantee: this carves the TCAM into shadow + main
	// slices and returns the admissible burst rate (Equation 2).
	reg := hermes.NewRegistry()
	id, info, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QoS descriptor %d: shadow=%d entries, max burst rate=%.0f rules/s\n",
		id, info.ShadowEntries, info.MaxBurstRate)

	agent, _ := reg.Agent(id)

	// Insert a batch of rules; virtual time advances per insertion.
	now := time.Duration(0)
	var worst time.Duration
	for i := 0; i < 200; i++ {
		rule := hermes.Rule{
			ID:       hermes.RuleID(i + 1),
			Match:    hermes.DstMatch(hermes.NewPrefix(0x0A000000|uint32(i)<<8, 24)),
			Priority: int32(i % 10),
			Action:   hermes.Action{Type: hermes.ActionForward, Port: i % 48},
		}
		res, err := agent.Insert(now, rule)
		if err != nil {
			log.Fatal(err)
		}
		if lat := res.Completed - now; lat > worst {
			worst = lat
		}
		now += 2 * time.Millisecond

		// Drive the Rule Manager tick every 10ms so migration keeps the
		// shadow table empty.
		if i%5 == 4 {
			if end := agent.Tick(now); end != 0 {
				agent.Advance(end)
			}
		}
	}

	m := agent.Metrics()
	fmt.Printf("inserted %d rules: worst latency %v (guarantee %v), violations %d\n",
		m.Inserts, worst, agent.Guarantee(), m.Violations)
	fmt.Printf("paths: shadow=%d bypass=%d main=%d | migrations=%d\n",
		m.ShadowInserts, m.Bypasses, m.MainInserts, m.Migrations)

	// The carved pipeline answers lookups like one monolithic table.
	dst := hermes.MustParsePrefix("10.0.7.1/32").Addr
	if r, ok := agent.Lookup(dst, 0); ok {
		fmt.Printf("lookup 10.0.7.1 -> %s\n", r.Action)
	}
}
