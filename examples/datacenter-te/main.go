// Datacenter traffic engineering: the paper's motivating scenario (§2.2).
//
// A Facebook-like MapReduce workload runs on a fat-tree while a proactive
// TE application periodically moves flows off congested links. Every path
// reconfiguration installs per-flow rules; slow TCAM control actions delay
// the switchover and keep flows on congested paths. The example runs the
// identical workload three times — idealized switches, raw Pica8 switches,
// and Hermes-managed Pica8 switches — and compares job completion times.
//
//	go run ./examples/datacenter-te
package main

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/netsim"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

func main() {
	g := topo.FatTree(8, 10e9, 10*time.Microsecond)
	fmt.Printf("fat-tree k=8: %d hosts, %d switches\n", g.NumHosts(), len(g.Switches()))

	jobs := workload.FacebookJobs(rand.New(rand.NewSource(7)), workload.FacebookConfig{
		Jobs:     300,
		Duration: 30 * time.Second,
		Hosts:    g.Hosts(),
	})
	fmt.Printf("workload: %d MapReduce jobs over 30s\n\n", len(jobs))

	run := func(kind netsim.InstallerKind) *netsim.Metrics {
		sim := netsim.New(netsim.Config{
			Graph:        topo.FatTree(8, 10e9, 10*time.Microsecond),
			Profile:      tcam.Pica8P3290,
			Kind:         kind,
			PrefillRules: 300,
			Seed:         7,
		})
		return sim.Run(jobs)
	}

	ideal := run(netsim.InstallZero)
	raw := run(netsim.InstallDirect)
	managed := run(netsim.InstallHermes)

	report := func(name string, m *netsim.Metrics) {
		jcts := make([]float64, 0, len(m.JCTs))
		for _, v := range m.JCTs {
			jcts = append(jcts, v)
		}
		s := stats.Summarize(jcts)
		var rit string
		if len(m.RITms) > 0 {
			r := stats.Summarize(m.RITms)
			rit = fmt.Sprintf("RIT median %.2fms p95 %.2fms", r.Median(), r.P95())
		} else {
			rit = "no rule installs"
		}
		fmt.Printf("%-22s JCT median %.3fs p95 %.3fs | moves %4d | %s\n",
			name, s.Median(), s.P95(), m.Moves, rit)
	}
	report("zero-latency (ideal)", ideal)
	report("raw Pica8 P-3290", raw)
	report("Hermes on Pica8", managed)

	// Headline comparison: how much JCT inflation does each incur vs the
	// ideal, for short jobs — the paper's most affected class (Fig. 1a).
	fmt.Println()
	for _, c := range []struct {
		name string
		m    *netsim.Metrics
	}{{"raw Pica8", raw}, {"Hermes", managed}} {
		var ratios []float64
		for job, base := range ideal.JCTs {
			if v, ok := c.m.JCTs[job]; ok && base > 0 && ideal.JobBytes[job] < 1e9 {
				ratios = append(ratios, v/base)
			}
		}
		if len(ratios) > 0 {
			s := stats.Summarize(ratios)
			fmt.Printf("short-job JCT increase vs ideal, %-10s median %.3fx p95 %.3fx\n",
				c.name+":", s.Median(), s.P95())
		}
	}
}
