// Service chaining over a multi-table pipeline (§6).
//
// The paper's introduction motivates Hermes with service-chaining SDN
// applications that need fast, correct reconfiguration. This example
// builds a two-table pipeline — an ACL table with a tight 1ms guarantee
// (security rules must land fast) ahead of a forwarding table with a
// relaxed 10ms guarantee — and reconfigures a service chain while packets
// are being classified.
//
//	go run ./examples/service-chain
package main

import (
	"fmt"
	"log"
	"time"

	"hermes"
)

func main() {
	pipe, err := hermes.NewPipeline("chain-sw", hermes.Pica8P3290, []hermes.TableSpec{
		{
			Name:     "acl",
			Capacity: 1024,
			Miss:     hermes.MissGotoNext,
			Config:   hermes.Config{Guarantee: time.Millisecond, DisableRateLimit: true},
		},
		{
			Name:     "forwarding",
			Capacity: 4096,
			Miss:     hermes.MissDrop,
			Config:   hermes.Config{Guarantee: 10 * time.Millisecond, DisableRateLimit: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range pipe.Tables() {
		fmt.Printf("table %-11s guarantee=%-5v shadow=%3d entries (%.1f%% of bank)\n",
			t.Spec.Name, t.Agent.Guarantee(), t.Agent.ShadowSize(),
			t.Agent.OverheadFraction()*100)
	}

	now := time.Duration(0)
	mustInsert := func(table string, r hermes.Rule) hermes.Result {
		res, err := pipe.Insert(now, table, r)
		if err != nil {
			log.Fatal(err)
		}
		now += time.Millisecond
		return res
	}

	// Service chain v1: tenant 10.7.0.0/16 traffic passes the firewall
	// (ACL goto-next) and is steered to the IDS on port 12.
	tenant := hermes.MustParsePrefix("10.7.0.0/16")
	mustInsert("acl", hermes.Rule{
		ID: 1, Match: hermes.DstMatch(tenant), Priority: 10,
		Action: hermes.Action{Type: hermes.ActionGotoNext},
	})
	mustInsert("forwarding", hermes.Rule{
		ID: 2, Match: hermes.DstMatch(tenant), Priority: 10,
		Action: hermes.Action{Type: hermes.ActionForward, Port: 12},
	})
	// Block a known-bad sub-block outright at the ACL.
	bad := hermes.MustParsePrefix("10.7.66.0/24")
	aclRes := mustInsert("acl", hermes.Rule{
		ID: 3, Match: hermes.DstMatch(bad), Priority: 20,
		Action: hermes.Action{Type: hermes.ActionDrop},
	})
	fmt.Printf("\nACL drop rule installed in %v (1ms guarantee)\n", aclRes.Latency)

	classify := func(addr string) {
		a := hermes.MustParsePrefix(addr + "/32").Addr
		r, table, v := pipe.Lookup(a, 0)
		switch v {
		case hermes.VerdictForward:
			fmt.Printf("%-12s -> forward port %d (matched %s in %q)\n", addr, r.Action.Port, r.Match, table)
		case hermes.VerdictDrop:
			fmt.Printf("%-12s -> dropped (by %q)\n", addr, table)
		case hermes.VerdictController:
			fmt.Printf("%-12s -> controller (miss in %q)\n", addr, table)
		}
	}
	fmt.Println()
	classify("10.7.1.5")  // chained to the IDS
	classify("10.7.66.9") // blocked
	classify("192.0.2.1") // off-chain: pipeline drop

	// Reconfigure the chain: steer the tenant to a scrubber on port 30.
	// A same-match, same-priority action change is a constant-time modify.
	fwd, ok := pipe.Table("forwarding")
	if !ok {
		log.Fatal("forwarding table missing")
	}
	modRes, merr := fwd.Agent.Modify(now, hermes.Rule{
		ID: 2, Match: hermes.DstMatch(tenant), Priority: 10,
		Action: hermes.Action{Type: hermes.ActionForward, Port: 30},
	})
	if merr != nil {
		log.Fatal(merr)
	}
	fmt.Printf("\nchain re-steered in %v (constant-time modify)\n", modRes.Latency)
	classify("10.7.1.5")
}
