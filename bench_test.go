package hermes_test

// One testing.B benchmark per paper artifact (Table 1, Figures 1 and 8–15,
// the §8.6 predictor sweep, the §8.4 BGP study) plus the design-choice
// ablations. Each bench drives the same experiment code the hermes-bench
// command uses, at a reduced scale so `go test -bench=.` completes in
// minutes; run `hermes-bench -scale 1` (or 4) for paper-sized output.
//
// Benchmarks report experiment-specific metrics (median/p95 latency,
// violation counts) via b.ReportMetric so regressions in the *shape* of a
// result are visible, not just its runtime.

import (
	"math/rand"
	"testing"
	"time"

	"fmt"
	"net"
	"sync/atomic"

	"hermes"
	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/experiments"
	"hermes/internal/fleet"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

// benchScale keeps the per-iteration cost of experiment benches bounded.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (rule update rate vs occupancy).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Fig. 1 (JCT increase ratio CDFs).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure8 regenerates Fig. 8 (rule installation time CDFs).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Fig. 9 (flow completion time CDFs).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Fig. 10 (Hermes vs Tango vs ESPRES RIT).
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates Fig. 11 (RIT time series).
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12 regenerates Fig. 12 (Hermes-SIMPLE threshold sweep).
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13 regenerates Fig. 13 (latency vs slack factor).
func BenchmarkFigure13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFigure14 regenerates Fig. 14 (ASIC overhead vs guarantee).
func BenchmarkFigure14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFigure15 regenerates Fig. 15 (algorithm runtime/memory).
func BenchmarkFigure15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkPredictorSweep regenerates the §8.6 sensitivity analysis.
func BenchmarkPredictorSweep(b *testing.B) { runExperiment(b, "predsweep") }

// BenchmarkBGP regenerates the §8.4 BGP study.
func BenchmarkBGP(b *testing.B) { runExperiment(b, "bgp") }

// --- ablation benches (DESIGN.md §6) ---------------------------------------

// BenchmarkAblationLowPriorityBypass, BenchmarkAblationMerge and
// BenchmarkAblationAtomicMigration run the full ablation suite; per-choice
// shape assertions live in internal/experiments tests.
func BenchmarkAblationLowPriorityBypass(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkAblationMerge measures Algorithm 1 with and without the merge
// step on the sibling-cut workload where merging halves the fragments.
func BenchmarkAblationMerge(b *testing.B) {
	for _, merge := range []struct {
		name    string
		disable bool
	}{{"merge", false}, {"no-merge", true}} {
		b.Run(merge.name, func(b *testing.B) {
			var perRule float64
			for i := 0; i < b.N; i++ {
				m := experiments.MergeAblationRun(60, merge.disable)
				if m.RulesCut > 0 {
					perRule = float64(m.PartitionsInstalled) / float64(m.RulesCut)
				}
			}
			b.ReportMetric(perRule, "partitions/rule")
		})
	}
}

// BenchmarkAblationAtomicMigration contrasts migration orderings by
// exposed rule-seconds.
func BenchmarkAblationAtomicMigration(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"atomic", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var exposed float64
			for i := 0; i < b.N; i++ {
				sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
				agent, err := hermes.NewAgent(sw, hermes.Config{
					Guarantee:        5 * time.Millisecond,
					DisableRateLimit: true,
					NaiveMigration:   mode.naive,
				})
				if err != nil {
					b.Fatal(err)
				}
				now := time.Duration(0)
				for j := 0; j < 50; j++ {
					r := hermes.Rule{
						ID:       hermes.RuleID(j + 1),
						Match:    hermes.DstMatch(hermes.NewPrefix(0x0A000000|uint32(j)<<8, 24)),
						Priority: int32(j + 1),
					}
					agent.Insert(now, r) //nolint:errcheck
					now += time.Millisecond
				}
				if end := agent.ForceMigration(now); end != 0 {
					agent.Advance(end)
				}
				exposed = agent.Metrics().ExposedRuleSeconds
			}
			b.ReportMetric(exposed, "exposed-rule-s")
		})
	}
}

// --- core hot-path microbenches ---------------------------------------------

// BenchmarkShadowInsert measures the guaranteed-path insertion, the
// latency-critical operation of the whole system.
func BenchmarkShadowInsert(b *testing.B) {
	sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Duration(0)
	// Steady-state churn: retire rules once the table carries a realistic
	// working set, so arbitrarily large b.N never exhausts the TCAM.
	const window = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := hermes.Rule{
			ID:       hermes.RuleID(i + 1),
			Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<8, 24)),
			Priority: int32(i%50 + 1),
		}
		if _, err := agent.Insert(now, r); err != nil {
			b.Fatal(err)
		}
		if i >= window {
			if _, err := agent.Delete(now, hermes.RuleID(i+1-window)); err != nil {
				b.Fatal(err)
			}
		}
		now += time.Millisecond
		if i%64 == 63 {
			if end := agent.Tick(now); end != 0 {
				agent.Advance(end)
			}
		}
	}
}

// benchObserver builds a fully instrumented Observer (registry, per-class
// histograms, tracer) for the obs-overhead comparison benches.
func benchObserver() *core.Observer {
	return core.NewObserver(obs.NewRegistry(), 4096)
}

// BenchmarkAgentInsert measures control-plane insertion with the obs
// subsystem disabled (noop) and fully enabled (obs: per-class histograms,
// TCAM shift histograms, lifecycle tracer). The budget is ≤5% throughput
// overhead and zero additional allocs/op — metric recording itself never
// touches the heap. scripts/bench_json.sh turns the pair into the
// BENCH_obs.json overhead report.
func BenchmarkAgentInsert(b *testing.B) {
	for _, mode := range []struct {
		name     string
		observed bool
	}{{"noop", false}, {"obs", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
			cfg := hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true}
			if mode.observed {
				cfg.Observer = benchObserver()
			}
			agent, err := hermes.NewAgent(sw, cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Duration(0)
			const window = 2000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := hermes.Rule{
					ID:       hermes.RuleID(i + 1),
					Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<8, 24)),
					Priority: int32(i%50 + 1),
				}
				if _, err := agent.Insert(now, r); err != nil {
					b.Fatal(err)
				}
				if i >= window {
					if _, err := agent.Delete(now, hermes.RuleID(i+1-window)); err != nil {
						b.Fatal(err)
					}
				}
				now += time.Millisecond
				if i%64 == 63 {
					if end := agent.Tick(now); end != 0 {
						agent.Advance(end)
					}
				}
			}
		})
	}
}

// BenchmarkAgentLookup measures the per-packet read path with and without
// the obs subsystem attached. Lookup is data plane — obs instruments only
// control-plane operations — so the two sub-benches must be
// indistinguishable; the pair pins that claim in BENCH_obs.json.
func BenchmarkAgentLookup(b *testing.B) {
	for _, mode := range []struct {
		name     string
		observed bool
	}{{"noop", false}, {"obs", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
			cfg := hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true}
			if mode.observed {
				cfg.Observer = benchObserver()
			}
			agent, err := hermes.NewAgent(sw, cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Duration(0)
			for i := 0; i < 500; i++ {
				agent.Insert(now, hermes.Rule{ //nolint:errcheck
					ID:       hermes.RuleID(i + 1),
					Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<12, 20)),
					Priority: int32(i % 50),
				})
				now += time.Millisecond
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Lookup(uint32(i)<<12, 0)
			}
		})
	}
}

// BenchmarkAgentLookupHits pins the per-rule hit-accounting satellite: the
// read path with TrackHits off (nohits) and on (hits) must both run at
// 0 allocs/op, and the sharded-counter bump should cost single-digit
// nanoseconds. scripts/bench_json.sh-style comparisons read the pair.
func BenchmarkAgentLookupHits(b *testing.B) {
	for _, mode := range []struct {
		name  string
		track bool
	}{{"nohits", false}, {"hits", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
			agent, err := hermes.NewAgent(sw, hermes.Config{
				Guarantee:        5 * time.Millisecond,
				DisableRateLimit: true,
				TrackHits:        mode.track,
			})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Duration(0)
			for i := 0; i < 500; i++ {
				agent.Insert(now, hermes.Rule{ //nolint:errcheck
					ID:       hermes.RuleID(i + 1),
					Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<12, 20)),
					Priority: int32(i % 50),
				})
				now += time.Millisecond
			}
			// Warm the snapshot past the rebuild hysteresis.
			for i := 0; i < 64; i++ {
				agent.Lookup(uint32(i)<<12, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Lookup(uint32(i%500)<<12, 0)
			}
		})
	}
}

// BenchmarkCachedLookup contrasts the two-tier caching hierarchy against
// the uncached pipeline on the same all-resident working set: every lookup
// hits the hardware tier, so the delta is the hierarchy's pure read-path
// overhead (the <5% budget BENCH_cache.json reports). The rule count
// matches the cache experiment's operating scale so the hierarchy's
// constant per-lookup cost (one sharded atomic add) is weighed against a
// realistically sized classifier, not a toy one.
func BenchmarkCachedLookup(b *testing.B) {
	const rules = 2048
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"nocache", false}, {"cached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
			cfg := hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true}
			if mode.cached {
				cfg.Cache = &hermes.CacheConfig{Capacity: rules + 64, Policy: hermes.CacheLFU}
			}
			agent, err := hermes.NewAgent(sw, cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Duration(0)
			for i := 0; i < rules; i++ {
				agent.Insert(now, hermes.Rule{ //nolint:errcheck
					ID:       hermes.RuleID(i + 1),
					Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<12, 20)),
					Priority: int32(i % 50),
				})
				now += time.Millisecond
			}
			for i := 0; i < 64; i++ {
				agent.Lookup(uint32(i)<<12, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Lookup(uint32(i%rules)<<12, 0)
			}
		})
	}
}

// BenchmarkPartitionNewRule measures Algorithm 1 against a populated main
// index.
func BenchmarkPartitionNewRule(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var idx classifier.Trie
	for i := 0; i < 5000; i++ {
		idx.Insert(classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), uint8(12+rng.Intn(13)))),
			Priority: int32(rng.Intn(64)),
		})
	}
	next := classifier.RuleID(1 << 20)
	mint := func() classifier.RuleID { next++; return next }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := classifier.Rule{
			ID:       classifier.RuleID(1<<19 + i),
			Match:    classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), 20)),
			Priority: 1,
		}
		classifier.PartitionNewRule(probe, &idx, mint)
	}
}

// BenchmarkTCAMInsert measures the raw table model at the paper's largest
// calibration occupancy.
func BenchmarkTCAMInsert(b *testing.B) {
	tbl := tcam.NewTable("bench", tcam.Pica8P3290.Capacity, tcam.Pica8P3290)
	for i := 0; i < 2000; i++ {
		tbl.Insert(classifier.Rule{ //nolint:errcheck
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8, 24)),
			Priority: 10,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := classifier.RuleID(1<<20 + i)
		if _, err := tbl.Insert(classifier.Rule{
			ID:       id,
			Match:    classifier.DstMatch(classifier.NewPrefix(0xF0000000|uint32(i)<<8, 24)),
			Priority: 1000,
		}); err != nil {
			b.Fatal(err)
		}
		tbl.Delete(id)
	}
}

// BenchmarkLookup measures the two-slice pipeline lookup.
func BenchmarkLookup(b *testing.B) {
	sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		agent.Insert(now, hermes.Rule{ //nolint:errcheck
			ID:       hermes.RuleID(i + 1),
			Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<12, 20)),
			Priority: int32(i % 50),
		})
		now += time.Millisecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Lookup(uint32(i)<<12, 0)
	}
}

// BenchmarkAgentLookupParallel measures the agent's concurrent read path:
// many goroutines doing Lookup against a populated agent. With the indexed
// default this hits the atomically-published snapshot (no lock, no
// allocations); the linear sub-bench is the full-scan oracle for
// comparison.
func BenchmarkAgentLookupParallel(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
			agent, err := hermes.NewAgent(sw, hermes.Config{
				Guarantee:        5 * time.Millisecond,
				DisableRateLimit: true,
				LinearLookup:     mode.linear,
			})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Duration(0)
			for i := 0; i < 500; i++ {
				agent.Insert(now, hermes.Rule{ //nolint:errcheck
					ID:       hermes.RuleID(i + 1),
					Match:    hermes.DstMatch(hermes.NewPrefix(uint32(i)<<12, 20)),
					Priority: int32(i % 50),
				})
				now += time.Millisecond
			}
			// Warm the snapshot past the rebuild hysteresis so the
			// measurement is steady-state reads, not the first build.
			for i := 0; i < 64; i++ {
				agent.Lookup(uint32(i)<<12, 0)
			}
			var ctr atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					agent.Lookup(uint32(i%500)<<12, 0)
				}
			})
		})
	}
}

// BenchmarkMigration measures a full shadow→main migration cycle.
func BenchmarkMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sw := hermes.NewSwitch("bench", hermes.Pica8P3290)
		agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
		if err != nil {
			b.Fatal(err)
		}
		now := time.Duration(0)
		for j := 0; j < 100; j++ {
			agent.Insert(now, hermes.Rule{ //nolint:errcheck
				ID:       hermes.RuleID(j + 1),
				Match:    hermes.DstMatch(hermes.NewPrefix(uint32(j)<<8, 24)),
				Priority: int32(j + 1),
			})
			now += time.Millisecond
		}
		b.StartTimer()
		if end := agent.ForceMigration(now); end != 0 {
			agent.Advance(end)
		}
	}
}

// BenchmarkVarysSimulation measures a small end-to-end simulation.
func BenchmarkVarysSimulation(b *testing.B) {
	res, err := experiments.Run("fig14", 1) // warm sanity check
	if err != nil || res == nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("fig1", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatsSummaries guards the reporting layer's cost.
func BenchmarkStatsSummaries(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stats.Summarize(vals)
		_ = s.Median()
		_ = s.P99()
	}
}

// BenchmarkAutoTune runs the self-tuning slack experiment (§8.6 future
// work, implemented as an extension).
func BenchmarkAutoTune(b *testing.B) { runExperiment(b, "autotune") }

// BenchmarkShadowSwitchComparison runs the §9 software-vs-hardware shadow
// design-space experiment.
func BenchmarkShadowSwitchComparison(b *testing.B) { runExperiment(b, "shadowswitch") }

// --- fleet control plane benchmarks -------------------------------------

// startBenchAgents spawns n in-process agent daemons on loopback for the
// wire and fleet benchmarks.
func startBenchAgents(b *testing.B, n int) []fleet.SwitchSpec {
	b.Helper()
	specs := make([]fleet.SwitchSpec, n)
	for i := 0; i < n; i++ {
		srv, err := ofwire.NewAgentServer(fmt.Sprintf("bench-sw-%d", i), tcam.Pica8P3290,
			core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
		if err != nil {
			b.Fatal(err)
		}
		srv.Logf = func(string, ...interface{}) {}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(lis) //nolint:errcheck
		b.Cleanup(func() { srv.Close() })
		specs[i] = fleet.SwitchSpec{ID: fmt.Sprintf("bench-sw-%d", i), Addr: lis.Addr().String()}
	}
	return specs
}

// BenchmarkWireSerializedRPC measures one-at-a-time round trips on a
// single control channel — the behaviour of the pre-pipelining client,
// where every caller waited for the previous caller's reply.
func BenchmarkWireSerializedRPC(b *testing.B) {
	specs := startBenchAgents(b, 1)
	c, err := ofwire.Dial(specs[0].Addr, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Echo(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWirePipelinedRPC measures the same round trips issued from
// concurrent callers over the SAME connection: the pipelined client keeps
// several requests in flight per connection, so throughput should exceed
// the serialized benchmark's.
func BenchmarkWirePipelinedRPC(b *testing.B) {
	specs := startBenchAgents(b, 1)
	c, err := ofwire.Dial(specs[0].Addr, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("bench")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Echo(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFleetThroughput measures end-to-end flow-mod throughput
// (insert + delete pairs, consistently routed) against fleets of growing
// size. Each switch has its own worker, queue, and pipelined connection;
// note the in-process agents share this host's CPUs with the controller,
// so the interesting signal is that throughput does NOT degrade as the
// fleet grows, not linear speedup.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("switches=%d", size), func(b *testing.B) {
			specs := startBenchAgents(b, size)
			f, err := fleet.New(fleet.Config{BatchSize: 16}, specs)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			var ctr atomic.Uint64
			// Keep well more in-flight ops than switches so every worker's
			// pipeline stays busy; otherwise fleet size cannot matter.
			b.SetParallelism(8)
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := classifier.RuleID(ctr.Add(1))
					r := classifier.Rule{
						ID:       id,
						Match:    classifier.DstMatch(classifier.NewPrefix(uint32(id)<<12|0x0A000000, 28)),
						Priority: int32(uint64(id)%16 + 1),
						Action:   classifier.Action{Type: classifier.ActionForward},
					}
					sw := f.Route(id)
					if res := f.Insert(sw, r); res.Err != nil {
						b.Fatal(res.Err)
					}
					if res := f.Delete(sw, id); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			})
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(2*b.N)/elapsed, "flowmods/s")
			}
		})
	}
}
