package hermes_test

import (
	"testing"
	"time"

	"hermes"
)

// TestPublicAPIQuickstart exercises the doc-comment quickstart end to end
// through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sw := hermes.NewSwitch("tor-1", hermes.Pica8P3290)
	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	rule := hermes.Rule{
		ID:       1,
		Match:    hermes.DstMatch(hermes.MustParsePrefix("10.1.0.0/16")),
		Priority: 10,
		Action:   hermes.Action{Type: hermes.ActionForward, Port: 3},
	}
	res, err := agent.Insert(now, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Guaranteed {
		t.Errorf("first insert not guaranteed: %+v", res)
	}
	if res.Completed-now > 5*time.Millisecond {
		t.Errorf("guarantee exceeded: %v", res.Completed-now)
	}
	got, ok := agent.Lookup(hermes.MustParsePrefix("10.1.2.3/32").Addr, 0)
	if !ok || got.ID != 1 {
		t.Errorf("lookup = %v, %v", got, ok)
	}
	if _, err := agent.Delete(now+time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicQoSAPI(t *testing.T) {
	reg := hermes.NewRegistry()
	sw := hermes.NewSwitch("s1", hermes.Dell8132F)
	id, info, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxBurstRate <= 0 || info.ShadowEntries <= 0 {
		t.Errorf("info = %+v", info)
	}
	if o := hermes.QoSOverheads(hermes.Dell8132F, 5*time.Millisecond); o <= 0 || o > 0.5 {
		t.Errorf("overhead = %v", o)
	}
	if !reg.ModQoSConfig(id, 10*time.Millisecond) {
		t.Error("ModQoSConfig failed")
	}
	if !reg.DeleteQoS(id) {
		t.Error("DeleteQoS failed")
	}
}

func TestPublicProfiles(t *testing.T) {
	if len(hermes.Profiles()) != 3 {
		t.Error("profiles")
	}
	if _, ok := hermes.ProfileByName("Pica8 P-3290"); !ok {
		t.Error("ProfileByName")
	}
	for _, p := range hermes.Profiles() {
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestPublicPredictors(t *testing.T) {
	preds := []hermes.Predictor{
		hermes.NewEWMA(0.3), hermes.NewCubicSpline(8), hermes.NewARMA(2, 16),
	}
	for _, p := range preds {
		p.Observe(10)
		p.Observe(20)
		if p.Predict() < 0 {
			t.Errorf("%s: negative prediction", p.Name())
		}
	}
	var c hermes.Corrector = hermes.Slack{Factor: 0.4}
	if c.Correct(1000) != 1400 {
		t.Error("Slack")
	}
	c = hermes.Deadzone{Delta: 100}
	if c.Correct(1000) != 1100 {
		t.Error("Deadzone")
	}
}

// TestPublicVerifyAgent runs the exact equivalence proof through the
// public surface.
func TestPublicVerifyAgent(t *testing.T) {
	sw := hermes.NewSwitch("v", hermes.Pica8P3290)
	agent, err := hermes.NewAgent(sw, hermes.Config{
		Guarantee:        5 * time.Millisecond,
		DisableRateLimit: true,
		TrackLogical:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 60; i++ {
		r := hermes.Rule{
			ID:       hermes.RuleID(i + 1),
			Match:    hermes.DstMatch(hermes.NewPrefix(0xC0A80000|uint32(i*37)<<4, uint8(20+i%12))),
			Priority: int32(i % 15),
			Action:   hermes.Action{Type: hermes.ActionForward, Port: i},
		}
		if _, err := agent.Insert(now, r); err != nil {
			t.Fatal(err)
		}
		now += 2 * time.Millisecond
	}
	if end := agent.ForceMigration(now); end != 0 {
		agent.Advance(end)
	}
	ce, err := hermes.VerifyAgent(agent)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("pipeline not equivalent: %v", ce)
	}
	// Without tracking, verification refuses.
	plain, _ := hermes.NewAgent(hermes.NewSwitch("v2", hermes.Dell8132F), hermes.Config{Guarantee: 5 * time.Millisecond})
	if _, err := hermes.VerifyAgent(plain); err == nil {
		t.Error("verification without TrackLogical must error")
	}
}
