#!/bin/sh
# Runs the lookup-path microbenchmarks (plus the agent read-path bench)
# with -benchmem and renders the results as JSON, one object per
# benchmark: {"name", "runs", "ns_per_op", "bytes_per_op", "allocs_per_op",
# and any b.ReportMetric extras keyed by unit}.
#
# Usage: scripts/bench_json.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_lookup.json in the repo root (committed
#                as the tracked perf baseline).
#   benchtime    defaults to 0.2s; scripts/check.sh passes a short budget
#                for its smoke run.
#
# Stdlib awk only; no jq, no module downloads.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_lookup.json}"
benchtime="${2:-0.2s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Table-level lookup + reset benches live in internal/tcam; the agent
# read-path bench lives in the root package.
go test -run '^$' -bench 'BenchmarkTableLookup|BenchmarkTableReset' \
	-benchmem -benchtime "$benchtime" ./internal/tcam | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkAgentLookupParallel|BenchmarkLookup$' \
	-benchmem -benchtime "$benchtime" . | tee -a "$raw"

awk '
/^Benchmark/ {
	# Benchmark lines: name  runs  value unit  value unit ...
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"runs\": %s", $1, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		key = unit
		if (unit == "ns/op") key = "ns_per_op"
		else if (unit == "B/op") key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else { gsub(/[^A-Za-z0-9]/, "_", key) }
		printf ", \"%s\": %s", key, $i
	}
	printf "}"
}
END { printf "\n" }
' "$raw" > "$out.tmp"

{
	echo "{"
	echo "\"benchtime\": \"$benchtime\","
	echo "\"benchmarks\": ["
	cat "$out.tmp"
	echo "]"
	echo "}"
} > "$out"
rm -f "$out.tmp"

echo "wrote $out"
