#!/bin/sh
# Runs the lookup-path microbenchmarks (plus the agent read-path bench)
# with -benchmem and renders the results as JSON, one object per
# benchmark: {"name", "runs", "ns_per_op", "bytes_per_op", "allocs_per_op",
# and any b.ReportMetric extras keyed by unit}.
#
# Usage: scripts/bench_json.sh [output.json] [benchtime] [obs_output.json] [loadgen_output.json] [batch_output.json]
#   output.json      defaults to BENCH_lookup.json in the repo root
#                    (committed as the tracked perf baseline).
#   benchtime        defaults to 0.2s; scripts/check.sh passes a short
#                    budget for its smoke run.
#   obs_output.json  defaults to BENCH_obs.json: the obs-overhead report —
#                    instrumented vs. no-op agent insert+lookup plus the
#                    obs record-path microbenches, with the computed
#                    insert overhead percentage (budget: ≤5%).
#   loadgen_output.json  defaults to BENCH_loadgen.json: the open-loop
#                    load-driver verdict — offered vs achieved rate and
#                    per-class p50/p99/p999 setup latency + violation and
#                    loss rates against the declared SLO budgets. The
#                    script fails if the smoke SLO breaches.
#   batch_output.json  defaults to BENCH_batch.json: the batched wire-path
#                    report — per-op vs vectored batch ingest over TCP
#                    loopback (with the computed ingest_speedup; floor:
#                    10x committed, 5x CI smoke), the agent-core batch
#                    insert (steady-state 0 allocs/op), and the sharded
#                    parallel lookup grid across GOMAXPROCS 1/2/4/8.
#
# BATCH_ONLY=1 runs just the batch section (the `make bench-batch` entry
# point), skipping the lookup/obs/loadgen artifacts.
#
# Stdlib awk only; no jq, no module downloads.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_lookup.json}"
benchtime="${2:-0.2s}"
obs_out="${3:-BENCH_obs.json}"
loadgen_out="${4:-BENCH_loadgen.json}"
batch_out="${5:-BENCH_batch.json}"

raw="$(mktemp)"
raw_obs="$(mktemp)"
raw_batch="$(mktemp)"
trap 'rm -f "$raw" "$raw_obs" "$raw_batch"' EXIT

# to_json renders `go test -bench` output as a JSON benchmark array.
to_json() {
	awk '
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"runs\": %s", $1, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		key = unit
		if (unit == "ns/op") key = "ns_per_op"
		else if (unit == "B/op") key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else { gsub(/[^A-Za-z0-9]/, "_", key) }
		printf ", \"%s\": %s", key, $i
	}
	printf "}"
}
END { printf "\n" }
' "$1"
}

# --- batch wire path: per-op vs vectored ingest + sharded lookup grid --------
run_batch() {
	go test -run '^$' -bench 'BenchmarkWireInsertPerOp|BenchmarkWireInsertBatch64' \
		-benchmem -benchtime "$benchtime" ./internal/ofwire | tee -a "$raw_batch"
	go test -run '^$' -bench 'BenchmarkAgentInsertPerOp$|BenchmarkAgentInsertBatch$' \
		-benchmem -benchtime "$benchtime" ./internal/core | tee -a "$raw_batch"
	go test -run '^$' -bench 'BenchmarkAgentLookupParallel' -cpu 1,2,4,8 \
		-benchmem -benchtime "$benchtime" ./internal/core | tee -a "$raw_batch"

	to_json "$raw_batch" > "$batch_out.tmp"

	# Ingest speedup: per-op wire ns/op over batched ns/op. Both benches do
	# the same work per iteration (64 inserts + 64 deletes over TCP
	# loopback), so the ratio is the end-to-end amortization factor.
	speedup="$(awk '
	$1 ~ /^BenchmarkWireInsertPerOp/   { perop = $3 }
	$1 ~ /^BenchmarkWireInsertBatch64/ { batch = $3 }
	END {
		if (perop > 0 && batch > 0) printf "%.2f", perop / batch
		else printf "null"
	}
	' "$raw_batch")"

	{
		echo "{"
		echo "\"benchtime\": \"$benchtime\","
		echo "\"ingest_speedup\": $speedup,"
		echo "\"ingest_speedup_floor\": 10,"
		echo "\"benchmarks\": ["
		cat "$batch_out.tmp"
		echo "]"
		echo "}"
	} > "$batch_out"
	rm -f "$batch_out.tmp"

	echo "wrote $batch_out (batched ingest speedup: ${speedup}x)"
}

if [ "${BATCH_ONLY:-0}" = "1" ]; then
	run_batch
	exit 0
fi

# Table-level lookup + reset benches live in internal/tcam; the agent
# read-path bench lives in the root package.
go test -run '^$' -bench 'BenchmarkTableLookup|BenchmarkTableReset' \
	-benchmem -benchtime "$benchtime" ./internal/tcam | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkAgentLookupParallel|BenchmarkLookup$' \
	-benchmem -benchtime "$benchtime" . | tee -a "$raw"

to_json "$raw" > "$out.tmp"

{
	echo "{"
	echo "\"benchtime\": \"$benchtime\","
	echo "\"benchmarks\": ["
	cat "$out.tmp"
	echo "]"
	echo "}"
} > "$out"
rm -f "$out.tmp"

echo "wrote $out"

# --- obs overhead: instrumented vs no-op agent insert+lookup -----------------
# The agent pair benches live in the root package; the record-path
# microbenches (0 allocs/op) in internal/obs.
go test -run '^$' -bench 'BenchmarkAgentInsert/|BenchmarkAgentLookup/' \
	-benchmem -benchtime "$benchtime" . | tee -a "$raw_obs"
go test -run '^$' -bench 'BenchmarkHistogramRecord|BenchmarkCounterAddParallel|BenchmarkTracerRecord' \
	-benchmem -benchtime "$benchtime" ./internal/obs | tee -a "$raw_obs"

to_json "$raw_obs" > "$obs_out.tmp"

# Insert overhead percentage: (obs - noop) / noop * 100, from the agent pair.
overhead="$(awk '
$1 ~ /^BenchmarkAgentInsert\/noop/ { noop = $3 }
$1 ~ /^BenchmarkAgentInsert\/obs/  { obs = $3 }
END {
	if (noop > 0 && obs > 0) printf "%.2f", (obs - noop) / noop * 100
	else printf "null"
}
' "$raw_obs")"

{
	echo "{"
	echo "\"benchtime\": \"$benchtime\","
	echo "\"insert_overhead_percent\": $overhead,"
	echo "\"overhead_budget_percent\": 5,"
	echo "\"benchmarks\": ["
	cat "$obs_out.tmp"
	echo "]"
	echo "}"
} > "$obs_out"
rm -f "$obs_out.tmp"

echo "wrote $obs_out (insert overhead: ${overhead}%)"

# --- loadgen verdict: open-loop SLO smoke against live in-process agents ----
# The verdict JSON is the benchmark artifact: schedule digest, offered vs
# achieved rate, per-class latency quantiles and violation/loss rates
# against the declared budgets. Deterministic seed, so the offered
# schedule is identical run to run; a breach exits nonzero and fails the
# script.
go run ./cmd/hermes-loadgen -flows 4000 -rate 20000 -switches 2 -hold 20ms \
	-classes 3,1 -seed 42 -workers 16 -p99-budget 30s -max-loss-rate 0 \
	-out "$loadgen_out" >/dev/null

echo "wrote $loadgen_out"

run_batch
