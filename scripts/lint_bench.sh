#!/bin/sh
# lint_bench.sh: fail if the full-repo hermes-vet run exceeds its
# wall-time budget (seconds, default 120; first argument or LINT_BUDGET
# overrides). The linter binary is built once first so the measurement is
# analysis time, not toolchain compile time. POSIX sh: no arrays, integer
# arithmetic only — second-granularity timing is plenty for a 2x-headroom
# budget.
set -eu
cd "$(dirname "$0")/.."

budget="${1:-${LINT_BUDGET:-120}}"
case "$budget" in
  ''|*[!0-9]*) echo "lint-bench: budget must be an integer number of seconds, got '$budget'" >&2; exit 2 ;;
esac

bin="/tmp/hermes-lint-bench.$$"
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/hermes-lint

start=$(date +%s)
"$bin" ./...
end=$(date +%s)
elapsed=$((end - start))

echo "lint-bench: full-repo hermes-vet run took ${elapsed}s (budget ${budget}s)"
if [ "$elapsed" -gt "$budget" ]; then
  echo "lint-bench: FAIL — lint wall time ${elapsed}s exceeds budget ${budget}s" >&2
  exit 1
fi
