#!/bin/sh
# Repo-wide checks: static analysis plus the full test suite under the
# race detector. CI and `make check` both run this script.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo "OK"
