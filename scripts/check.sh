#!/bin/sh
# Repo-wide gate: static analysis (go vet + hermes-lint), build, the full
# test suite under the race detector, the linter's self-test against its
# known-bad corpus, and short-budget fuzz runs of the wire codec and the
# prefix parser. CI and `make check` both run this script. Everything is
# offline: no module downloads, stdlib only.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> hermes-lint ./... (hermes-vet invariants, DESIGN.md §13)"
go run ./cmd/hermes-lint ./...

echo ">> hermes-lint self-test: the known-bad corpus must produce findings"
corpus_status=0
go run ./cmd/hermes-lint ./internal/lint/testdata/src/... >/dev/null 2>&1 || corpus_status=$?
if [ "$corpus_status" -ne 1 ]; then
  echo "hermes-lint self-test failed: expected exit 1 on the corpus, got $corpus_status" >&2
  exit 1
fi

echo ">> hermes-vet corpus self-test under -race (exact want:-marker agreement)"
go test -race -count=1 -run 'TestCorpus|TestEveryAnalyzerCovered' ./internal/lint

echo ">> lint-bench: full-repo lint wall-time budget"
./scripts/lint_bench.sh "${LINT_BUDGET:-120}"

echo ">> go test -race ./..."
go test -race ./...

echo ">> chaos: seeded fault-injection verdict (hermes-bench chaos)"
go run ./cmd/hermes-bench -scale 0.5 chaos | tee /tmp/hermes-chaos.$$ | tail -3
if grep -Eq 'DIVERGED|FAILED' /tmp/hermes-chaos.$$; then
  rm -f /tmp/hermes-chaos.$$
  echo "chaos verdict not clean" >&2
  exit 1
fi
rm -f /tmp/hermes-chaos.$$

echo ">> reconcile: 40-seed level-triggered convergence verdict (hermes-bench reconcile)"
go run ./cmd/hermes-bench -scale 1 reconcile | tee /tmp/hermes-reconcile.$$ | tail -3
if grep -Eq 'DIVERGED|FAILED' /tmp/hermes-reconcile.$$; then
  rm -f /tmp/hermes-reconcile.$$
  echo "reconcile convergence verdict not clean" >&2
  exit 1
fi
rm -f /tmp/hermes-reconcile.$$

echo ">> bench-json smoke: lookup + obs-overhead benches run and produce parseable JSON"
bench_json="/tmp/hermes-bench-lookup.$$"
bench_obs="/tmp/hermes-bench-obs.$$"
./scripts/bench_json.sh "$bench_json" 20x "$bench_obs" >/dev/null
if ! grep -q 'BenchmarkTableLookup/indexed' "$bench_json"; then
  rm -f "$bench_json" "$bench_obs"
  echo "bench-json smoke failed: no TableLookup results in output" >&2
  exit 1
fi
if ! grep -q 'BenchmarkAgentInsert/obs' "$bench_obs" ||
   ! grep -q 'insert_overhead_percent' "$bench_obs"; then
  rm -f "$bench_json" "$bench_obs"
  echo "bench-json smoke failed: no obs-overhead comparison in output" >&2
  exit 1
fi
rm -f "$bench_json" "$bench_obs"

echo ">> bench-batch smoke: batched wire ingest speedup floor (>=5x)"
bench_batch="/tmp/hermes-bench-batch.$$"
BATCH_ONLY=1 ./scripts/bench_json.sh BENCH_lookup.json 20x BENCH_obs.json \
  BENCH_loadgen.json "$bench_batch" >/dev/null
speedup="$(awk -F': ' '/"ingest_speedup"/ { gsub(/,/, "", $2); print $2 }' "$bench_batch")"
if ! awk "BEGIN { exit !($speedup >= 5) }" 2>/dev/null; then
  rm -f "$bench_batch"
  echo "bench-batch smoke failed: ingest speedup ${speedup}x below the 5x floor" >&2
  exit 1
fi
if ! grep -q 'BenchmarkAgentLookupParallel' "$bench_batch"; then
  rm -f "$bench_batch"
  echo "bench-batch smoke failed: no parallel lookup grid in output" >&2
  exit 1
fi
rm -f "$bench_batch"

echo ">> bench-cache smoke: FDRC policy verdicts + hit-ratio floor"
cache_json="/tmp/hermes-bench-cache.$$"
# The sweep is deterministic (virtual time, seeded workload), so the policy
# orderings and hit ratios are exact gates; the wall-clock overhead pair is
# machine-dependent and reported but not gated here.
go run ./cmd/hermes-bench -cache-json "$cache_json" -scale 0.5 >/dev/null
for verdict in lfu_beats_lru cost_beats_lru; do
  if ! grep -q "\"$verdict\": true" "$cache_json"; then
    rm -f "$cache_json"
    echo "bench-cache smoke failed: $verdict is not true" >&2
    exit 1
  fi
done
min_ratio="$(awk -F': ' '/"min_hit_ratio"/ { gsub(/,/, "", $2); print $2 }' "$cache_json")"
if ! awk "BEGIN { exit !($min_ratio >= 0.6) }" 2>/dev/null; then
  rm -f "$cache_json"
  echo "bench-cache smoke failed: min {lfu,cost} hit ratio $min_ratio below the 0.6 floor" >&2
  exit 1
fi
rm -f "$cache_json"

echo ">> loadgen smoke: open-loop schedule determinism + SLO verdict gate"
lg="/tmp/hermes-loadgen.$$"
# Same seed must dump byte-identical schedules.
go run ./cmd/hermes-loadgen -flows 4000 -seed 42 -classes 3,1 -schedule-only \
  -dump-schedule "$lg.a" >/dev/null
go run ./cmd/hermes-loadgen -flows 4000 -seed 42 -classes 3,1 -schedule-only \
  -dump-schedule "$lg.b" >/dev/null
if ! cmp -s "$lg.a" "$lg.b"; then
  rm -f "$lg.a" "$lg.b"
  echo "loadgen smoke failed: same-seed schedules are not byte-identical" >&2
  exit 1
fi
# A normal budget must pass (exit 0) with a machine-readable verdict.
go run ./cmd/hermes-loadgen -flows 4000 -rate 20000 -switches 2 -hold 20ms \
  -classes 3,1 -seed 42 -workers 16 -p99-budget 30s -max-loss-rate 0 \
  -out "$lg.json" >/dev/null
if ! grep -q '"pass": true' "$lg.json"; then
  rm -f "$lg.a" "$lg.b" "$lg.json"
  echo "loadgen smoke failed: passing run did not report pass=true" >&2
  exit 1
fi
# An injected impossible budget must breach with exit status exactly 1.
breach_status=0
go run ./cmd/hermes-loadgen -flows 2000 -rate 20000 -switches 2 -hold 20ms \
  -seed 42 -workers 16 -p99-budget 1ns >/dev/null 2>&1 || breach_status=$?
rm -f "$lg.a" "$lg.b" "$lg.json"
if [ "$breach_status" -ne 1 ]; then
  echo "loadgen smoke failed: expected exit 1 on injected breach, got $breach_status" >&2
  exit 1
fi

echo ">> fuzz: codec round-trip (5s)"
go test -run='^$' -fuzz=FuzzCodecRoundTrip -fuzztime=5s ./internal/ofwire

echo ">> fuzz: prefix parser (5s)"
go test -run='^$' -fuzz=FuzzParsePrefix -fuzztime=5s ./internal/classifier

echo "OK"
