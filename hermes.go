// Package hermes is the public API of the Hermes reproduction: a framework
// that provides tight performance guarantees for SDN switch control-plane
// actions (rule insertion, modification, deletion) by partitioning a
// switch's TCAM into a small, bounded shadow table — which services all
// guaranteed insertions and therefore bounds entry-shift counts and
// latency — and a large main table that holds the steady-state rule set.
//
// The package re-exports the building blocks a downstream user needs:
//
//   - switch and TCAM models calibrated against published measurements
//     (NewSwitch, the Pica8P3290 / Dell8132F / HP5406zl profiles);
//   - the Hermes agent itself (NewAgent), combining the Gate Keeper
//     (admission control, Algorithm-1 partitioning, the lowest-priority
//     bypass) and the Rule Manager (predictive shadow→main migration);
//   - the operator-facing QoS API of the paper's §7 (Registry with
//     CreateTCAMQoS / DeleteQoS / ModQoSConfig / ModQoSMatch, and
//     QoSOverheads for exploring the latency/TCAM-space trade-off);
//   - rule algebra (Rule, Match, Prefix) and the workload predictors
//     (NewEWMA, NewCubicSpline, NewARMA with Slack/Deadzone correctors).
//
// # Quickstart
//
//	sw := hermes.NewSwitch("tor-1", hermes.Pica8P3290)
//	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond})
//	if err != nil { ... }
//	rule := hermes.Rule{
//		ID:       1,
//		Match:    hermes.DstMatch(hermes.MustParsePrefix("10.1.0.0/16")),
//		Priority: 10,
//		Action:   hermes.Action{Type: hermes.ActionForward, Port: 3},
//	}
//	res, err := agent.Insert(now, rule) // res.Completed-now ≤ 5ms on the guaranteed path
//
// Time is virtual (time.Duration offsets) so the library composes with the
// included discrete-event simulator; wall-clock users simply pass
// monotonically increasing offsets.
package hermes

import (
	"time"

	"hermes/internal/classifier"
	"hermes/internal/controller"
	"hermes/internal/core"
	"hermes/internal/predict"
	"hermes/internal/rulecache"
	"hermes/internal/tcam"
	"hermes/internal/verify"
)

// Rule algebra types (see internal/classifier for full documentation).
type (
	// Rule is one logical flow-table entry.
	Rule = classifier.Rule
	// RuleID identifies a rule across the logical table.
	RuleID = classifier.RuleID
	// Match is a rule's header-space region (dst and src prefixes).
	Match = classifier.Match
	// Prefix is an IPv4 prefix.
	Prefix = classifier.Prefix
	// Action is what a matching rule does with a packet.
	Action = classifier.Action
	// ActionType enumerates forwarding actions.
	ActionType = classifier.ActionType
)

// Forwarding actions.
const (
	ActionForward    = classifier.ActionForward
	ActionDrop       = classifier.ActionDrop
	ActionController = classifier.ActionController
	ActionGotoNext   = classifier.ActionGotoNext
)

// Prefix and match constructors.
var (
	// ParsePrefix parses "a.b.c.d/len" notation.
	ParsePrefix = classifier.ParsePrefix
	// MustParsePrefix is ParsePrefix that panics on error.
	MustParsePrefix = classifier.MustParsePrefix
	// NewPrefix masks addr to plen bits.
	NewPrefix = classifier.NewPrefix
	// DstMatch builds a destination-only match.
	DstMatch = classifier.DstMatch
)

// Switch and TCAM modeling types.
type (
	// Switch models one SDN switch: TCAM slices plus a serial
	// control-plane processor.
	Switch = tcam.Switch
	// Table is one TCAM slice.
	Table = tcam.Table
	// Profile describes a switch model's control-plane performance.
	Profile = tcam.Profile
	// CalPoint is one (occupancy, updates/s) calibration measurement.
	CalPoint = tcam.CalPoint
)

// Built-in switch profiles, calibrated against the paper's Table 1.
var (
	Pica8P3290 = tcam.Pica8P3290
	Dell8132F  = tcam.Dell8132F
	HP5406zl   = tcam.HP5406zl
)

// NewSwitch creates a switch with a monolithic TCAM table.
func NewSwitch(name string, profile *Profile) *Switch { return tcam.NewSwitch(name, profile) }

// Profiles returns the built-in switch profiles.
func Profiles() []*Profile { return tcam.Profiles() }

// ProfileByName looks up a built-in switch profile.
func ProfileByName(name string) (*Profile, bool) { return tcam.ProfileByName(name) }

// Hermes agent types.
type (
	// Agent is one switch's Hermes instance (Gate Keeper + Rule Manager).
	Agent = core.Agent
	// Config tunes an agent; only Guarantee is mandatory.
	Config = core.Config
	// Result describes one control-plane action's outcome.
	Result = core.Result
	// InsertPath reports the route an insertion took.
	InsertPath = core.InsertPath
	// Metrics are an agent's cumulative counters.
	Metrics = core.Metrics
	// Predicate selects guaranteed rules.
	Predicate = core.Predicate
	// MigrationMode selects predictive Hermes or Hermes-SIMPLE.
	MigrationMode = core.MigrationMode
)

// Insertion paths.
const (
	PathShadow    = core.PathShadow
	PathBypass    = core.PathBypass
	PathMain      = core.PathMain
	PathRedundant = core.PathRedundant
	PathSoft      = core.PathSoft
)

// Flow-driven rule caching hierarchy (Config.Cache): the carved TCAM
// becomes the top tier of a two-tier lookup pipeline backed by an unbounded
// switch-CPU software table, with popularity-driven promotion/demotion and
// dependency-safe eviction via cover rules.
type (
	// CacheConfig tunes the caching hierarchy.
	CacheConfig = rulecache.Config
	// CachePolicy selects the promotion/eviction policy.
	CachePolicy = rulecache.Policy
	// CacheSnapshot is a point-in-time copy of the hierarchy's metrics.
	CacheSnapshot = rulecache.Snapshot
	// SoftProfile models the software tier's per-operation latencies.
	SoftProfile = rulecache.SoftProfile
)

// Cache policies.
const (
	CacheLRU       = rulecache.PolicyLRU
	CacheLFU       = rulecache.PolicyLFU
	CacheCostAware = rulecache.PolicyCostAware
)

// ParseCachePolicy parses a policy name ("lru", "lfu", "cost").
var ParseCachePolicy = rulecache.ParsePolicy

// Migration modes.
const (
	MigrationPredictive = core.MigrationPredictive
	MigrationThreshold  = core.MigrationThreshold
)

// NewAgent creates a Hermes agent on an un-carved, empty switch: it sizes
// the shadow table from cfg.Guarantee, carves the TCAM, and computes the
// admissible insertion rate (Equation 2).
func NewAgent(sw *Switch, cfg Config) (*Agent, error) { return core.New(sw, cfg) }

// Operator-facing QoS API (§7).
type (
	// Registry manages Hermes agents across a switch fleet and implements
	// CreateTCAMQoS / DeleteQoS / ModQoSConfig / ModQoSMatch.
	Registry = core.Registry
	// ShadowID is the descriptor CreateTCAMQoS returns.
	ShadowID = core.ShadowID
	// QoSInfo summarizes one guarantee's configuration and cost.
	QoSInfo = core.QoSInfo
)

// NewRegistry returns an empty QoS registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// QoSOverheads previews the TCAM fraction a guarantee would cost on a
// switch profile without configuring anything.
func QoSOverheads(profile *Profile, guarantee time.Duration) float64 {
	return core.QoSOverheads(profile, guarantee)
}

// Workload predictors and correctors (§5.1).
type (
	// Predictor forecasts the next value of a time series.
	Predictor = predict.Predictor
	// Corrector inflates predictions to absorb forecast error.
	Corrector = predict.Corrector
	// Slack inflates predictions by a constant factor.
	Slack = predict.Slack
	// Deadzone inflates predictions by a constant count.
	Deadzone = predict.Deadzone
)

// Predictor constructors.
var (
	// NewEWMA returns an exponentially weighted moving average predictor.
	NewEWMA = predict.NewEWMA
	// NewCubicSpline returns the paper's preferred spline predictor.
	NewCubicSpline = predict.NewCubicSpline
	// NewARMA returns an ARMA(p,1) predictor.
	NewARMA = predict.NewARMA
)

// Multi-table pipeline support (§6: Supporting Multiple TCAM Tables).
type (
	// Pipeline is a multi-table switch under per-table Hermes management.
	Pipeline = core.Pipeline
	// TableSpec configures one logical table of a pipeline.
	TableSpec = core.TableSpec
	// PipelineTable is one logical table at runtime.
	PipelineTable = core.PipelineTable
	// MissBehavior is a logical table's action on lookup miss.
	MissBehavior = core.MissBehavior
	// PacketVerdict is the outcome of a pipeline lookup.
	PacketVerdict = core.PacketVerdict
)

// Table-miss behaviours.
const (
	MissGotoNext   = core.MissGotoNext
	MissController = core.MissController
	MissDrop       = core.MissDrop
)

// Pipeline lookup verdicts.
const (
	VerdictForward    = core.VerdictForward
	VerdictController = core.VerdictController
	VerdictDrop       = core.VerdictDrop
)

// NewPipeline builds a multi-table pipeline on a switch profile, carving
// each logical table independently (different tables may carry different
// guarantees).
func NewPipeline(name string, profile *Profile, specs []TableSpec) (*Pipeline, error) {
	return core.NewPipeline(name, profile, specs)
}

// Exact pipeline verification (§4's correctness guarantee, proven rather
// than sampled).
type (
	// Counterexample is a packet on which two classifiers disagree.
	Counterexample = verify.Counterexample
)

// VerifyAgent proves an agent's shadow/main pipeline equivalent to its
// logical reference table by exhaustive region decomposition. The agent
// must have been created with Config.TrackLogical. A nil Counterexample
// means provable equivalence.
func VerifyAgent(a *Agent) (*Counterexample, error) { return verify.Agent(a) }

// Controller-side pacing (the §7 contract's other half: respect the
// advertised max burst rate).
type (
	// Pacer schedules controller→switch flow-mods under per-switch limits.
	Pacer = controller.Pacer
	// SwitchLimit is one switch's advertised admission contract.
	SwitchLimit = controller.SwitchLimit
	// PacedUpdate is one pending flow-mod addressed to a switch.
	PacedUpdate = controller.Update
	// PacedSend is one scheduled transmission.
	PacedSend = controller.Send
)

// NewPacer returns an empty controller-side pacer.
func NewPacer() *Pacer { return controller.NewPacer() }
