package hermes_test

// Godoc-visible examples for the public API: run with `go test -run Example`.

import (
	"fmt"
	"time"

	"hermes"
)

// Example demonstrates the minimal Hermes flow: model a switch, request a
// guarantee, insert a rule, look it up.
func Example() {
	sw := hermes.NewSwitch("tor-1", hermes.Pica8P3290)
	agent, err := hermes.NewAgent(sw, hermes.Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	res, err := agent.Insert(0, hermes.Rule{
		ID:       1,
		Match:    hermes.DstMatch(hermes.MustParsePrefix("10.1.0.0/16")),
		Priority: 10,
		Action:   hermes.Action{Type: hermes.ActionForward, Port: 3},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("guaranteed:", res.Guaranteed, "within bound:", res.Completed <= 5*time.Millisecond)

	rule, ok := agent.Lookup(hermes.MustParsePrefix("10.1.2.3/32").Addr, 0)
	fmt.Println("lookup:", ok, rule.Action)
	// Output:
	// guaranteed: true within bound: true
	// lookup: true fwd:3
}

// ExampleQoSOverheads previews the TCAM cost of a guarantee before
// configuring anything — the operator-facing trade-off explorer of §7.
func ExampleQoSOverheads() {
	for _, g := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		fmt.Printf("%v guarantee costs %.1f%% of the Pica8 TCAM\n",
			g, hermes.QoSOverheads(hermes.Pica8P3290, g)*100)
	}
	// Output:
	// 1ms guarantee costs 1.3% of the Pica8 TCAM
	// 5ms guarantee costs 3.1% of the Pica8 TCAM
	// 10ms guarantee costs 5.6% of the Pica8 TCAM
}

// ExampleRegistry_CreateTCAMQoS shows the full §7 operator API.
func ExampleRegistry_CreateTCAMQoS() {
	reg := hermes.NewRegistry()
	sw := hermes.NewSwitch("edge-1", hermes.Dell8132F)
	id, info, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("descriptor %d: shadow=%d entries, rate>0=%v\n",
		id, info.ShadowEntries, info.MaxBurstRate > 0)
	fmt.Println("modify ok:", reg.ModQoSConfig(id, 10*time.Millisecond))
	fmt.Println("delete ok:", reg.DeleteQoS(id))
	// Output:
	// descriptor 1: shadow=284 entries, rate>0=true
	// modify ok: true
	// delete ok: true
}

// ExampleNewPacer schedules a controller's updates under the advertised
// per-switch rate.
func ExampleNewPacer() {
	p := hermes.NewPacer()
	p.Register("s1", hermes.SwitchLimit{Rate: 100, Burst: 2})
	updates := []hermes.PacedUpdate{
		{Switch: "s1", Rule: hermes.Rule{ID: 1}},
		{Switch: "s1", Rule: hermes.Rule{ID: 2}},
		{Switch: "s1", Rule: hermes.Rule{ID: 3}},
	}
	sends, end, err := p.Plan(0, updates)
	if err != nil {
		panic(err)
	}
	for _, s := range sends {
		fmt.Printf("rule %d at %v\n", s.Rule.ID, s.At)
	}
	fmt.Println("done by", end)
	// Output:
	// rule 1 at 0s
	// rule 2 at 0s
	// rule 3 at 10ms
	// done by 10ms
}
