package topo

import (
	"fmt"
	"time"
)

// FatTree builds a k-ary fat-tree [Al-Fares et al., SIGCOMM'08] with
// (k/2)² core switches, k pods of k/2 aggregation and k/2 edge switches,
// and (k/2)² hosts per pod — k=16 yields the paper's 1024-server topology
// (§2.2, §8.1.3). linkBps is the uniform link speed (the paper uses
// 40 Gbps); delay is the per-hop propagation delay (small in a data
// center).
func FatTree(k int, linkBps float64, delay time.Duration) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d must be even and >= 2", k))
	}
	g := NewGraph()
	half := k / 2

	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddNode(fmt.Sprintf("core%d", i), KindSwitch)
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(fmt.Sprintf("agg%d-%d", pod, i), KindSwitch)
			edges[i] = g.AddNode(fmt.Sprintf("edge%d-%d", pod, i), KindSwitch)
		}
		// Aggregation i connects to cores [i*half, (i+1)*half).
		for i, agg := range aggs {
			for j := 0; j < half; j++ {
				g.AddLink(agg, cores[i*half+j], linkBps, delay)
			}
		}
		// Full bipartite agg<->edge inside the pod.
		for _, agg := range aggs {
			for _, edge := range edges {
				g.AddLink(agg, edge, linkBps, delay)
			}
		}
		// half hosts per edge switch.
		for i, edge := range edges {
			for h := 0; h < half; h++ {
				host := g.AddNode(fmt.Sprintf("host%d-%d-%d", pod, i, h), KindHost)
				g.AddLink(edge, host, linkBps, delay)
			}
		}
	}
	return g
}

// ispNode is one PoP of an ISP topology: a switch with one attached
// aggregate host (traffic source/sink for the traffic matrix).
func ispBuild(name string, nodes []string, links [][2]string, linkBps float64, delay time.Duration) *Graph {
	g := NewGraph()
	sw := make(map[string]NodeID, len(nodes))
	for _, n := range nodes {
		sw[n] = g.AddNode(name+"/"+n, KindSwitch)
		host := g.AddNode(name+"/"+n+"/host", KindHost)
		g.AddLink(sw[n], host, linkBps*4, delay/10) // access links are not the bottleneck
	}
	for _, l := range links {
		a, oka := sw[l[0]]
		b, okb := sw[l[1]]
		if !oka || !okb {
			panic(fmt.Sprintf("topo: %s: bad link %v", name, l))
		}
		g.AddLink(a, b, linkBps, delay)
	}
	return g
}

// Abilene builds the 11-PoP Internet2/Abilene backbone used with the
// Abilene traffic matrices [§8.1.3]. Links are 10 Gbps with wide-area
// delays.
func Abilene() *Graph {
	nodes := []string{
		"NYC", "CHI", "WAS", "ATL", "IND", "KSC", "HOU", "DEN", "SNV", "SEA", "LAX",
	}
	links := [][2]string{
		{"NYC", "CHI"}, {"NYC", "WAS"},
		{"CHI", "IND"}, {"WAS", "ATL"},
		{"ATL", "IND"}, {"ATL", "HOU"},
		{"IND", "KSC"}, {"KSC", "DEN"}, {"KSC", "HOU"},
		{"HOU", "LAX"}, {"DEN", "SNV"}, {"DEN", "SEA"},
		{"SNV", "SEA"}, {"SNV", "LAX"},
	}
	return ispBuild("abilene", nodes, links, 10e9, 8*time.Millisecond)
}

// Geant builds the European research backbone (GÉANT, Internet Topology
// Zoo) at PoP granularity — 23 PoPs in the 2004 snapshot the tomo-gravity
// matrices model (§8.1.3).
func Geant() *Graph {
	nodes := []string{
		"AT", "BE", "CH", "CZ", "DE", "DK", "ES", "FR", "GR", "HR", "HU",
		"IE", "IL", "IT", "LU", "NL", "PL", "PT", "SE", "SI", "SK", "UK", "NO",
	}
	links := [][2]string{
		{"UK", "IE"}, {"UK", "NL"}, {"UK", "FR"}, {"UK", "BE"},
		{"NL", "DE"}, {"NL", "BE"}, {"NL", "DK"}, {"NL", "LU"},
		{"DE", "CZ"}, {"DE", "AT"}, {"DE", "CH"}, {"DE", "DK"}, {"DE", "IL"},
		{"FR", "CH"}, {"FR", "ES"}, {"FR", "LU"},
		{"CH", "IT"}, {"AT", "HU"}, {"AT", "SI"}, {"AT", "IT"}, {"AT", "SK"},
		{"CZ", "SK"}, {"CZ", "PL"}, {"DK", "SE"}, {"DK", "NO"}, {"SE", "NO"},
		{"SE", "PL"}, {"HU", "HR"}, {"HU", "SK"}, {"SI", "HR"},
		{"IT", "GR"}, {"ES", "PT"}, {"UK", "PT"}, {"DE", "GR"}, {"IL", "IT"},
	}
	return ispBuild("geant", nodes, links, 10e9, 5*time.Millisecond)
}

// Quest builds the Quest ISP topology (Internet Topology Zoo), a ~20-node
// North American network, at PoP granularity (§8.1.3).
func Quest() *Graph {
	nodes := []string{
		"SEA", "PDX", "SFO", "LAX", "PHX", "SLC", "DEN", "MSP", "CHI", "STL",
		"DAL", "HOU", "ATL", "MIA", "DCA", "NYC", "BOS", "CLE", "DET", "KSC",
	}
	links := [][2]string{
		{"SEA", "PDX"}, {"PDX", "SFO"}, {"SEA", "MSP"}, {"SEA", "SLC"},
		{"SFO", "LAX"}, {"SFO", "SLC"}, {"LAX", "PHX"}, {"PHX", "DAL"},
		{"SLC", "DEN"}, {"DEN", "KSC"}, {"DEN", "DAL"}, {"KSC", "STL"},
		{"MSP", "CHI"}, {"CHI", "CLE"}, {"CHI", "STL"}, {"CHI", "DET"},
		{"STL", "ATL"}, {"DAL", "HOU"}, {"HOU", "ATL"}, {"ATL", "MIA"},
		{"ATL", "DCA"}, {"DCA", "NYC"}, {"NYC", "BOS"}, {"CLE", "NYC"},
		{"DET", "CLE"}, {"MIA", "HOU"},
	}
	return ispBuild("quest", nodes, links, 10e9, 6*time.Millisecond)
}
