// Package topo builds the network topologies the paper evaluates on
// (§8.1.3): a k-ary fat-tree data center (Facebook workload), the Abilene
// and Geant backbone ISPs, and the Quest topology from the Internet
// Topology Zoo — plus shortest-path and k-shortest-path routing used by the
// traffic-engineering SDNApp.
package topo

import (
	"container/heap"
	"fmt"
	"time"
)

// NodeID indexes a node in a Graph.
type NodeID int

// NodeKind distinguishes traffic endpoints from forwarding elements.
type NodeKind uint8

const (
	// KindHost is a traffic source/sink.
	KindHost NodeKind = iota
	// KindSwitch is a forwarding element with a TCAM.
	KindSwitch
)

// Node is one vertex of the topology.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// LinkID indexes a directed link in a Graph.
type LinkID int

// Link is one directed edge. AddLink creates both directions, so a
// full-duplex cable is two Links with independent capacity.
type Link struct {
	ID       LinkID
	From, To NodeID
	// CapacityBps is the link speed in bits per second.
	CapacityBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
}

// Graph is a directed multigraph with named nodes. The zero value is empty
// and ready to use.
type Graph struct {
	Nodes []Node
	Links []Link
	out   map[NodeID][]LinkID
	names map[string]NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{out: make(map[NodeID][]LinkID), names: make(map[string]NodeID)}
}

// AddNode inserts a node and returns its ID. Names must be unique.
func (g *Graph) AddNode(name string, kind NodeKind) NodeID {
	if _, dup := g.names[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node %q", name))
	}
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Kind: kind})
	g.names[name] = id
	return id
}

// NodeByName resolves a node name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.names[name]
	return id, ok
}

// AddLink inserts a full-duplex link (two directed edges) between a and b.
func (g *Graph) AddLink(a, b NodeID, capacityBps float64, delay time.Duration) (ab, ba LinkID) {
	ab = g.addDirected(a, b, capacityBps, delay)
	ba = g.addDirected(b, a, capacityBps, delay)
	return ab, ba
}

func (g *Graph) addDirected(from, to NodeID, capacityBps float64, delay time.Duration) LinkID {
	id := LinkID(len(g.Links))
	g.Links = append(g.Links, Link{ID: id, From: from, To: to, CapacityBps: capacityBps, Delay: delay})
	g.out[from] = append(g.out[from], id)
	return id
}

// Out returns the outgoing link IDs of a node.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// NumHosts counts host nodes.
func (g *Graph) NumHosts() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == KindHost {
			n++
		}
	}
	return n
}

// Hosts returns all host node IDs.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for _, nd := range g.Nodes {
		if nd.Kind == KindHost {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Switches returns all switch node IDs.
func (g *Graph) Switches() []NodeID {
	var out []NodeID
	for _, nd := range g.Nodes {
		if nd.Kind == KindSwitch {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Path is a sequence of directed links from a source to a destination.
type Path struct {
	Links []LinkID
}

// Nodes expands a path to its node sequence, starting at the source.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Links) == 0 {
		return nil
	}
	out := []NodeID{g.Links[p.Links[0]].From}
	for _, l := range p.Links {
		out = append(out, g.Links[l].To)
	}
	return out
}

// SwitchNodes returns the switches a path traverses, in order.
func (p Path) SwitchNodes(g *Graph) []NodeID {
	var out []NodeID
	for _, n := range p.Nodes(g) {
		if g.Nodes[n].Kind == KindSwitch {
			out = append(out, n)
		}
	}
	return out
}

// Delay sums the propagation delays along the path.
func (p Path) Delay(g *Graph) time.Duration {
	var d time.Duration
	for _, l := range p.Links {
		d += g.Links[l].Delay
	}
	return d
}

// Equal reports whether two paths traverse identical links.
func (p Path) Equal(q Path) bool {
	if len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// dijkstra computes a min-hop path (ties broken by lower link IDs, making
// routing deterministic) from src to dst, skipping the links in banned and
// the nodes in bannedNodes. Returns ok=false when dst is unreachable.
func (g *Graph) dijkstra(src, dst NodeID, banned map[LinkID]bool, bannedNodes map[NodeID]bool) (Path, bool) {
	const inf = int(1) << 30
	dist := make([]int, len(g.Nodes))
	prev := make([]LinkID, len(g.Nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.dist > dist[cur.node] {
			continue
		}
		if cur.node == dst {
			break
		}
		for _, lid := range g.out[cur.node] {
			if banned != nil && banned[lid] {
				continue
			}
			l := g.Links[lid]
			if bannedNodes != nil && bannedNodes[l.To] && l.To != dst {
				continue
			}
			nd := cur.dist + 1
			if nd < dist[l.To] {
				dist[l.To] = nd
				prev[l.To] = lid
				heap.Push(pq, nodeDist{node: l.To, dist: nd})
			}
		}
	}
	if prev[dst] == -1 {
		return Path{}, false
	}
	var rev []LinkID
	for at := dst; at != src; {
		l := prev[at]
		rev = append(rev, l)
		at = g.Links[l].From
	}
	links := make([]LinkID, len(rev))
	for i := range rev {
		links[i] = rev[len(rev)-1-i]
	}
	return Path{Links: links}, true
}

// ShortestPath returns a deterministic min-hop path from src to dst.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, bool) {
	return g.dijkstra(src, dst, nil, nil)
}

// KShortestPaths returns up to k loopless min-hop paths (Yen's algorithm).
// The first is ShortestPath; the rest are the TE application's alternative
// paths for moving flows off congested links.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		last := paths[len(paths)-1]
		lastNodes := last.Nodes(g)
		for i := 0; i < len(last.Links); i++ {
			spurNode := lastNodes[i]
			rootLinks := append([]LinkID(nil), last.Links[:i]...)

			banned := make(map[LinkID]bool)
			for _, p := range paths {
				if hasPrefix(p.Links, rootLinks) && len(p.Links) > i {
					banned[p.Links[i]] = true
				}
			}
			bannedNodes := make(map[NodeID]bool)
			for _, n := range lastNodes[:i] {
				bannedNodes[n] = true
			}

			spur, ok := g.dijkstra(spurNode, dst, banned, bannedNodes)
			if !ok {
				continue
			}
			total := Path{Links: append(append([]LinkID(nil), rootLinks...), spur.Links...)}
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if pathLess(candidates[i], candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func hasPrefix(links, prefix []LinkID) bool {
	if len(links) < len(prefix) {
		return false
	}
	for i := range prefix {
		if links[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

func pathLess(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return len(a.Links) < len(b.Links)
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return a.Links[i] < b.Links[i]
		}
	}
	return false
}

type nodeDist struct {
	node NodeID
	dist int
}

type nodeQueue []nodeDist

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeDist)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
