package topo

import (
	"testing"
	"time"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a", KindSwitch)
	b := g.AddNode("b", KindHost)
	ab, ba := g.AddLink(a, b, 1e9, time.Millisecond)
	if g.Links[ab].From != a || g.Links[ab].To != b {
		t.Error("forward link endpoints")
	}
	if g.Links[ba].From != b || g.Links[ba].To != a {
		t.Error("reverse link endpoints")
	}
	if id, ok := g.NodeByName("a"); !ok || id != a {
		t.Error("NodeByName")
	}
	if _, ok := g.NodeByName("zzz"); ok {
		t.Error("NodeByName on missing name")
	}
	if len(g.Out(a)) != 1 || len(g.Out(b)) != 1 {
		t.Error("adjacency")
	}
	if g.NumHosts() != 1 || len(g.Hosts()) != 1 || len(g.Switches()) != 1 {
		t.Error("node-kind accounting")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode must panic")
		}
	}()
	g.AddNode("a", KindHost)
}

func lineGraph() (*Graph, []NodeID) {
	g := NewGraph()
	var ids []NodeID
	for _, n := range []string{"a", "b", "c", "d"} {
		ids = append(ids, g.AddNode(n, KindSwitch))
	}
	g.AddLink(ids[0], ids[1], 1e9, time.Millisecond)
	g.AddLink(ids[1], ids[2], 1e9, time.Millisecond)
	g.AddLink(ids[2], ids[3], 1e9, time.Millisecond)
	return g, ids
}

func TestShortestPathLine(t *testing.T) {
	g, ids := lineGraph()
	p, ok := g.ShortestPath(ids[0], ids[3])
	if !ok || len(p.Links) != 3 {
		t.Fatalf("path = %v, ok=%v", p, ok)
	}
	nodes := p.Nodes(g)
	if len(nodes) != 4 || nodes[0] != ids[0] || nodes[3] != ids[3] {
		t.Errorf("nodes = %v", nodes)
	}
	if p.Delay(g) != 3*time.Millisecond {
		t.Errorf("delay = %v", p.Delay(g))
	}
	if len(p.SwitchNodes(g)) != 4 {
		t.Errorf("switch nodes = %v", p.SwitchNodes(g))
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a", KindSwitch)
	b := g.AddNode("b", KindSwitch)
	if _, ok := g.ShortestPath(a, b); ok {
		t.Error("disconnected nodes must be unreachable")
	}
}

func diamondGraph() (*Graph, NodeID, NodeID) {
	// a -> {b, c} -> d plus a longer detour a->e->f->d.
	g := NewGraph()
	a := g.AddNode("a", KindSwitch)
	b := g.AddNode("b", KindSwitch)
	c := g.AddNode("c", KindSwitch)
	d := g.AddNode("d", KindSwitch)
	e := g.AddNode("e", KindSwitch)
	f := g.AddNode("f", KindSwitch)
	g.AddLink(a, b, 1e9, time.Millisecond)
	g.AddLink(b, d, 1e9, time.Millisecond)
	g.AddLink(a, c, 1e9, time.Millisecond)
	g.AddLink(c, d, 1e9, time.Millisecond)
	g.AddLink(a, e, 1e9, time.Millisecond)
	g.AddLink(e, f, 1e9, time.Millisecond)
	g.AddLink(f, d, 1e9, time.Millisecond)
	return g, a, d
}

func TestKShortestPaths(t *testing.T) {
	g, a, d := diamondGraph()
	paths := g.KShortestPaths(a, d, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	if len(paths[0].Links) != 2 || len(paths[1].Links) != 2 || len(paths[2].Links) != 3 {
		t.Errorf("path lengths = %d,%d,%d", len(paths[0].Links), len(paths[1].Links), len(paths[2].Links))
	}
	// All loopless and distinct.
	for i := range paths {
		seen := map[NodeID]bool{}
		for _, n := range paths[i].Nodes(g) {
			if seen[n] {
				t.Errorf("path %d has a loop", i)
			}
			seen[n] = true
		}
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
	// Asking for more than exist returns what exists.
	if got := g.KShortestPaths(a, d, 10); len(got) != 3 {
		t.Errorf("k=10 returned %d paths", len(got))
	}
	if got := g.KShortestPaths(a, d, 0); got != nil {
		t.Error("k=0 must return nil")
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 8} {
		g := FatTree(k, 40e9, 10*time.Microsecond)
		half := k / 2
		wantHosts := k * half * half
		wantSwitches := half*half + k*half*2
		if g.NumHosts() != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d", k, g.NumHosts(), wantHosts)
		}
		if got := len(g.Switches()); got != wantSwitches {
			t.Errorf("k=%d: switches = %d, want %d", k, got, wantSwitches)
		}
		// Any two hosts in different pods are 6 links apart (host-edge-agg-
		// core-agg-edge-host); same edge pair is 2.
		hosts := g.Hosts()
		p, ok := g.ShortestPath(hosts[0], hosts[len(hosts)-1])
		if !ok || len(p.Links) != 6 {
			t.Errorf("k=%d: cross-pod path = %d links, want 6", k, len(p.Links))
		}
		p, ok = g.ShortestPath(hosts[0], hosts[1])
		if !ok || len(p.Links) != 2 {
			t.Errorf("k=%d: same-edge path = %d links, want 2", k, len(p.Links))
		}
	}
}

func TestFatTree16MatchesPaper(t *testing.T) {
	g := FatTree(16, 40e9, 10*time.Microsecond)
	if g.NumHosts() != 1024 {
		t.Errorf("k=16 hosts = %d, want 1024 (paper §2.2)", g.NumHosts())
	}
}

func TestFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FatTree(%d) must panic", k)
				}
			}()
			FatTree(k, 1e9, time.Millisecond)
		}()
	}
}

func TestISPTopologies(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		nodes int
	}{
		{"abilene", Abilene(), 11},
		{"geant", Geant(), 23},
		{"quest", Quest(), 20},
	}
	for _, c := range cases {
		if got := len(c.g.Switches()); got != c.nodes {
			t.Errorf("%s: %d switches, want %d", c.name, got, c.nodes)
		}
		if got := c.g.NumHosts(); got != c.nodes {
			t.Errorf("%s: %d hosts, want %d (one per PoP)", c.name, got, c.nodes)
		}
		// Fully connected: every host reaches every other host.
		hosts := c.g.Hosts()
		for _, h := range hosts[1:] {
			if _, ok := c.g.ShortestPath(hosts[0], h); !ok {
				t.Errorf("%s: host %d unreachable from host %d", c.name, h, hosts[0])
			}
		}
		// TE needs alternatives: at least 2 paths between some PoP pair.
		sw := c.g.Switches()
		if got := c.g.KShortestPaths(sw[0], sw[len(sw)-1], 2); len(got) < 2 {
			t.Errorf("%s: no alternative paths", c.name)
		}
	}
}
