package tokenbucket

import (
	"testing"
	"time"
)

func TestStartsFull(t *testing.T) {
	b := New(100, 10)
	if got := b.Tokens(0); got != 10 {
		t.Errorf("initial tokens = %v, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if !b.Allow(0, 1) {
			t.Fatalf("burst consume %d failed", i)
		}
	}
	if b.Allow(0, 1) {
		t.Error("11th token at t=0 must be denied")
	}
}

func TestRefill(t *testing.T) {
	b := New(100, 10) // 100 tokens/s
	for i := 0; i < 10; i++ {
		b.Allow(0, 1)
	}
	// After 50ms, 5 tokens accrued.
	if got := b.Tokens(50 * time.Millisecond); got < 4.999 || got > 5.001 {
		t.Errorf("tokens after 50ms = %v, want 5", got)
	}
	if !b.Allow(50*time.Millisecond, 5) {
		t.Error("5 tokens must be available after 50ms")
	}
	if b.Allow(50*time.Millisecond, 1) {
		t.Error("bucket must be empty again")
	}
}

func TestCapAtBurst(t *testing.T) {
	b := New(1000, 10)
	if got := b.Tokens(time.Hour); got != 10 {
		t.Errorf("tokens after 1h = %v, want burst cap 10", got)
	}
}

func TestClockNeverRunsBackward(t *testing.T) {
	b := New(100, 10)
	b.Allow(time.Second, 10)
	// An earlier timestamp must not refill or error.
	if got := b.Tokens(500 * time.Millisecond); got != 0 {
		t.Errorf("tokens at earlier time = %v, want 0", got)
	}
}

func TestSetRate(t *testing.T) {
	b := New(100, 100)
	b.Allow(0, 100)
	b.SetRate(time.Second, 200) // credits 100 tokens at the old rate first
	if got := b.Tokens(time.Second); got != 100 {
		t.Errorf("tokens after SetRate = %v, want 100", got)
	}
	if got := b.Tokens(time.Second + 250*time.Millisecond); got != 100 {
		// 100 + 200*0.25 = 150 but capped at burst 100... wait: burst is
		// 100, so tokens stay at 100.
		t.Errorf("tokens = %v, want cap 100", got)
	}
	if b.Rate() != 200 {
		t.Errorf("Rate = %v", b.Rate())
	}
	if b.Burst() != 100 {
		t.Errorf("Burst = %v", b.Burst())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero rate", func() { New(0, 1) })
	assertPanics("negative burst", func() { New(1, -1) })
	assertPanics("SetRate zero", func() { New(1, 1).SetRate(0, 0) })
}

func TestRateEnforcedOverTime(t *testing.T) {
	// Consuming 1 token per request at 1000 req/s against a 100/s bucket
	// must admit roughly 100/s plus the initial burst.
	b := New(100, 20)
	admitted := 0
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * time.Millisecond // 1 req/ms for 1s
		if b.Allow(now, 1) {
			admitted++
		}
	}
	// Expect ~ burst (20) + rate (100) * 1s = 120, with small edge effects.
	if admitted < 115 || admitted > 125 {
		t.Errorf("admitted = %d, want ≈120", admitted)
	}
}
