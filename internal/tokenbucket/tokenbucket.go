// Package tokenbucket implements a virtual-clock token bucket.
//
// Hermes's Gate Keeper uses a token bucket for admission control: the
// controller may not send control-plane actions faster than the rate Hermes
// has agreed to guarantee (paper §3, §5.2). Actions arriving faster than the
// approved rate are diverted to the main table instead of the shadow table.
//
// The bucket is driven by explicit timestamps rather than the wall clock so
// it composes with the discrete-event simulator.
package tokenbucket

import (
	"fmt"
	"time"
)

// Bucket is a token bucket with a fill rate in tokens/second and a burst
// capacity. It is not safe for concurrent use; the simulator is
// single-threaded by design.
type Bucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration
}

// New returns a bucket that refills at rate tokens/second up to burst
// tokens, starting full. It panics if rate or burst is not positive, since a
// zero-rate guarantee is a configuration error the caller must surface.
func New(rate, burst float64) *Bucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("tokenbucket: invalid rate=%v burst=%v", rate, burst))
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Rate returns the configured fill rate in tokens/second.
func (b *Bucket) Rate() float64 { return b.rate }

// Burst returns the configured capacity.
func (b *Bucket) Burst() float64 { return b.burst }

// SetRate changes the fill rate, crediting tokens accrued so far at the old
// rate first.
func (b *Bucket) SetRate(now time.Duration, rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("tokenbucket: invalid rate=%v", rate))
	}
	b.refill(now)
	b.rate = rate
}

// Allow consumes n tokens if available at virtual time now and reports
// whether the request was admitted.
func (b *Bucket) Allow(now time.Duration, n float64) bool {
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// Tokens reports the number of tokens available at virtual time now.
func (b *Bucket) Tokens(now time.Duration) float64 {
	b.refill(now)
	return b.tokens
}

func (b *Bucket) refill(now time.Duration) {
	if now <= b.last {
		return
	}
	elapsed := (now - b.last).Seconds()
	b.last = now
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
