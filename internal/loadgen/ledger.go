package loadgen

import (
	"fmt"
	"sync/atomic"
	"time"

	"hermes/internal/obs"
)

// Outcome classifies the terminal state of one scheduled operation.
type Outcome uint8

// Outcomes.
const (
	// OutcomeInstalled: the operation was applied on its intended path.
	OutcomeInstalled Outcome = iota
	// OutcomeDiverted: applied, but the Gate Keeper pushed the insert off
	// the guaranteed path (admitted best-effort).
	OutcomeDiverted
	// OutcomeRejected: the switch answered with a typed error — table
	// full, duplicate, unknown rule. The switch is alive; the operation
	// was refused.
	OutcomeRejected
	// OutcomeLost: no answer — wire failure, abandoned deadline, or a
	// reset with the operation in flight.
	OutcomeLost
)

func (o Outcome) String() string {
	switch o {
	case OutcomeInstalled:
		return "installed"
	case OutcomeDiverted:
		return "diverted"
	case OutcomeRejected:
		return "rejected"
	case OutcomeLost:
		return "lost"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// classLedger accumulates one class's outcome totals. Counters are
// atomics: driver workers complete operations concurrently.
type classLedger struct {
	submitted  atomic.Uint64
	installed  atomic.Uint64
	diverted   atomic.Uint64
	rejected   atomic.Uint64
	lost       atomic.Uint64
	violations atomic.Uint64
	setup      *obs.Histogram // end-to-end rule-setup latency, ns
}

// Ledger tracks per-class operation outcomes and setup-latency
// distributions. It holds no clock — callers measure latency and report
// it — so it stays inside the deterministic package boundary.
type Ledger struct {
	classes []classLedger
}

// NewLedger returns a ledger for the given number of service classes
// (minimum 1).
func NewLedger(classes int) *Ledger {
	if classes < 1 {
		classes = 1
	}
	l := &Ledger{classes: make([]classLedger, classes)}
	for i := range l.classes {
		l.classes[i].setup = obs.NewHistogram()
	}
	return l
}

// Classes is the number of service classes tracked.
func (l *Ledger) Classes() int { return len(l.classes) }

// clamp folds out-of-range classes into the last one rather than
// panicking mid-run.
func (l *Ledger) clamp(class uint8) *classLedger {
	if int(class) >= len(l.classes) {
		return &l.classes[len(l.classes)-1]
	}
	return &l.classes[class]
}

// Submitted counts one operation handed to the target.
func (l *Ledger) Submitted(class uint8) {
	l.clamp(class).submitted.Add(1)
}

// Finished counts one completed operation. Setup is the measured
// end-to-end rule-setup latency (recorded only for applied operations);
// violation marks an agent-reported guarantee violation.
func (l *Ledger) Finished(class uint8, out Outcome, setup time.Duration, violation bool) {
	c := l.clamp(class)
	switch out {
	case OutcomeInstalled:
		c.installed.Add(1)
	case OutcomeDiverted:
		c.diverted.Add(1)
	case OutcomeRejected:
		c.rejected.Add(1)
	case OutcomeLost:
		c.lost.Add(1)
	}
	if out == OutcomeInstalled || out == OutcomeDiverted {
		c.setup.RecordDuration(setup)
	}
	if violation {
		c.violations.Add(1)
	}
}

// Register exposes the ledger on an obs registry: per-class outcome
// counters and the setup-latency histograms, so a live run's /metrics
// shows loadgen progress alongside the agent's own telemetry.
func (l *Ledger) Register(reg *obs.Registry) {
	for i := range l.classes {
		c := &l.classes[i]
		labels := obs.Labels("class", fmt.Sprintf("%d", i))
		reg.RegisterHistogram("loadgen_setup_latency", labels, "ns",
			"end-to-end rule-setup latency", c.setup)
		for _, m := range []struct {
			name string
			v    *atomic.Uint64
		}{
			{"loadgen_submitted_total", &c.submitted},
			{"loadgen_installed_total", &c.installed},
			{"loadgen_diverted_total", &c.diverted},
			{"loadgen_rejected_total", &c.rejected},
			{"loadgen_lost_total", &c.lost},
			{"loadgen_violations_total", &c.violations},
		} {
			v := m.v
			reg.CounterFunc(m.name, labels, "loadgen outcome count", v.Load)
		}
	}
}

// ClassStats is a point-in-time snapshot of one class's ledger.
type ClassStats struct {
	Submitted  uint64
	Installed  uint64
	Diverted   uint64
	Rejected   uint64
	Lost       uint64
	Violations uint64
	Setup      *obs.HistogramSnapshot
}

// Completed is the number of operations that reached any terminal state.
func (s ClassStats) Completed() uint64 {
	return s.Installed + s.Diverted + s.Rejected + s.Lost
}

// ViolationRate is violations per submitted operation.
func (s ClassStats) ViolationRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Violations) / float64(s.Submitted)
}

// LossRate is lost operations per submitted operation.
func (s ClassStats) LossRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Submitted)
}

// Class snapshots one class.
func (l *Ledger) Class(class int) ClassStats {
	if class < 0 || class >= len(l.classes) {
		return ClassStats{Setup: obs.NewHistogram().Snapshot()}
	}
	c := &l.classes[class]
	return ClassStats{
		Submitted:  c.submitted.Load(),
		Installed:  c.installed.Load(),
		Diverted:   c.diverted.Load(),
		Rejected:   c.rejected.Load(),
		Lost:       c.lost.Load(),
		Violations: c.violations.Load(),
		Setup:      c.setup.Snapshot(),
	}
}

// Totals merges every class into one snapshot.
func (l *Ledger) Totals() ClassStats {
	total := ClassStats{Setup: obs.NewHistogram().Snapshot()}
	for i := range l.classes {
		s := l.Class(i)
		total.Submitted += s.Submitted
		total.Installed += s.Installed
		total.Diverted += s.Diverted
		total.Rejected += s.Rejected
		total.Lost += s.Lost
		total.Violations += s.Violations
		total.Setup.Merge(s.Setup)
	}
	return total
}
