package loadgen

import (
	"encoding/json"
	"fmt"
	"time"
)

// ClassSLO is the budget one service class must meet. Zero-valued fields
// are unchecked, so an SLO can pin only the quantiles it cares about.
// The latency budgets are the paper's per-class insertion guarantees
// (Eq. 1: every guaranteed insertion completes within its budget; Eq. 2
// bounds the admissible rate for that to hold).
type ClassSLO struct {
	Class uint8 `json:"class"`
	// P50, P99, P999 bound the setup-latency quantiles.
	P50  time.Duration `json:"p50_budget_ns,omitempty"`
	P99  time.Duration `json:"p99_budget_ns,omitempty"`
	P999 time.Duration `json:"p999_budget_ns,omitempty"`
	// MaxViolationRate bounds agent-reported guarantee violations per
	// submitted operation. Negative disables the check; zero means "no
	// violations tolerated" only when ViolationRateSet is true.
	MaxViolationRate float64 `json:"max_violation_rate"`
	ViolationRateSet bool    `json:"violation_rate_set,omitempty"`
	// MaxLossRate bounds lost operations per submitted operation.
	MaxLossRate float64 `json:"max_loss_rate"`
	LossRateSet bool    `json:"loss_rate_set,omitempty"`
}

// SLO is the full declared objective: one budget per class, applied to
// every class whose index it names. Classes without a budget always
// pass.
type SLO struct {
	Classes []ClassSLO `json:"classes"`
}

// Uniform builds an SLO holding every one of n classes to the same
// budget.
func Uniform(n int, budget ClassSLO) SLO {
	s := SLO{Classes: make([]ClassSLO, n)}
	for i := range s.Classes {
		b := budget
		b.Class = uint8(i)
		s.Classes[i] = b
	}
	return s
}

// RunInfo is the measured context of one run, supplied by the driver
// (the deterministic core holds no clock and cannot compute rates).
type RunInfo struct {
	Seed           int64   `json:"seed"`
	ScheduleName   string  `json:"schedule"`
	ScheduleDigest string  `json:"schedule_digest"` // %016x of Schedule.Digest
	Target         string  `json:"target"`          // "wire" or "fleet"
	Switches       int     `json:"switches"`
	Arrivals       int     `json:"arrivals"`
	OfferedRate    float64 `json:"offered_rate_per_sec"`
	AchievedRate   float64 `json:"achieved_rate_per_sec"`
	WallSeconds    float64 `json:"wall_seconds"`
}

// ClassReport is the measured outcome of one class next to its budget.
type ClassReport struct {
	Class         uint8   `json:"class"`
	Submitted     uint64  `json:"submitted"`
	Installed     uint64  `json:"installed"`
	Diverted      uint64  `json:"diverted"`
	Rejected      uint64  `json:"rejected"`
	Lost          uint64  `json:"lost"`
	Violations    uint64  `json:"violations"`
	P50ms         float64 `json:"p50_ms"`
	P99ms         float64 `json:"p99_ms"`
	P999ms        float64 `json:"p999_ms"`
	ViolationRate float64 `json:"violation_rate"`
	LossRate      float64 `json:"loss_rate"`
	// Breaches lists this class's budget failures, human-readable.
	Breaches []string `json:"breaches,omitempty"`
}

// Verdict is the machine-readable outcome CI gates on: pass/fail, the
// reasons, and the full per-class evidence.
type Verdict struct {
	Pass     bool          `json:"pass"`
	Breaches []string      `json:"breaches,omitempty"`
	Run      RunInfo       `json:"run"`
	Classes  []ClassReport `json:"classes"`
}

// ms renders a quantile in milliseconds.
func ms(ns float64) float64 { return ns / 1e6 }

// checkQuantile appends a breach when a measured quantile exceeds its
// budget.
func checkQuantile(breaches []string, class uint8, name string, got float64, budget time.Duration) []string {
	if budget <= 0 {
		return breaches
	}
	if got > float64(budget) {
		breaches = append(breaches, fmt.Sprintf(
			"class %d: %s setup latency %s > budget %s",
			class, name, time.Duration(got), budget))
	}
	return breaches
}

// Evaluate compares a ledger against the SLO and produces the verdict.
// A class breaches when a bounded quantile of its setup-latency
// distribution exceeds its budget, or its violation or loss rate
// exceeds the declared maximum. A class that saw no traffic never
// breaches (its quantiles are vacuous), but an overall run with zero
// submitted operations fails — a driver that sent nothing must not pass
// the gate.
func Evaluate(l *Ledger, slo SLO, run RunInfo) *Verdict {
	v := &Verdict{Pass: true, Run: run}
	budgets := make(map[uint8]ClassSLO, len(slo.Classes))
	for _, b := range slo.Classes {
		budgets[b.Class] = b
	}
	var submittedTotal uint64
	for i := 0; i < l.Classes(); i++ {
		s := l.Class(i)
		submittedTotal += s.Submitted
		rep := ClassReport{
			Class:         uint8(i),
			Submitted:     s.Submitted,
			Installed:     s.Installed,
			Diverted:      s.Diverted,
			Rejected:      s.Rejected,
			Lost:          s.Lost,
			Violations:    s.Violations,
			P50ms:         ms(s.Setup.Quantile(0.50)),
			P99ms:         ms(s.Setup.Quantile(0.99)),
			P999ms:        ms(s.Setup.Quantile(0.999)),
			ViolationRate: s.ViolationRate(),
			LossRate:      s.LossRate(),
		}
		if b, ok := budgets[uint8(i)]; ok && s.Submitted > 0 {
			rep.Breaches = checkQuantile(rep.Breaches, b.Class, "p50", s.Setup.Quantile(0.50), b.P50)
			rep.Breaches = checkQuantile(rep.Breaches, b.Class, "p99", s.Setup.Quantile(0.99), b.P99)
			rep.Breaches = checkQuantile(rep.Breaches, b.Class, "p999", s.Setup.Quantile(0.999), b.P999)
			if (b.ViolationRateSet || b.MaxViolationRate > 0) && b.MaxViolationRate >= 0 &&
				rep.ViolationRate > b.MaxViolationRate {
				rep.Breaches = append(rep.Breaches, fmt.Sprintf(
					"class %d: violation rate %.4f > budget %.4f",
					b.Class, rep.ViolationRate, b.MaxViolationRate))
			}
			if (b.LossRateSet || b.MaxLossRate > 0) && b.MaxLossRate >= 0 &&
				rep.LossRate > b.MaxLossRate {
				rep.Breaches = append(rep.Breaches, fmt.Sprintf(
					"class %d: loss rate %.4f > budget %.4f",
					b.Class, rep.LossRate, b.MaxLossRate))
			}
		}
		v.Breaches = append(v.Breaches, rep.Breaches...)
		v.Classes = append(v.Classes, rep)
	}
	if submittedTotal == 0 {
		v.Breaches = append(v.Breaches, "no operations submitted")
	}
	v.Pass = len(v.Breaches) == 0
	return v
}

// JSON renders the verdict with stable field order and indentation —
// the BENCH_loadgen.json artifact CI archives and gates on.
func (v *Verdict) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encode verdict: %w", err)
	}
	return append(b, '\n'), nil
}
