package loadgen

import (
	"bytes"
	"testing"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/workload"
)

func baseConfig() Config {
	return Config{
		Flows:    5000,
		Rate:     10000,
		Arrival:  ArrivalPoisson,
		Distinct: 2000,
		Hold:     50 * time.Millisecond,
		Seed:     42,
	}
}

// TestGenerateDeterministic is the reproducibility contract: same seed,
// same config ⇒ byte-identical schedule; different seed ⇒ different
// stream.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same-seed digests diverge: %016x vs %016x", a.Digest(), b.Digest())
	}
	if !bytes.Equal(a.MarshalBinary(), b.MarshalBinary()) {
		t.Fatal("same-seed schedules are not byte-identical")
	}

	cfg := baseConfig()
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateShape checks the structural invariants every synthetic
// schedule must hold: time-ordered events, exactly Flows arrivals, every
// modify preceded by a live insert, every delete matched to one, and the
// hold bounding the installed working set.
func TestGenerateShape(t *testing.T) {
	cfg := baseConfig()
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Arrivals(); got != cfg.Flows {
		t.Fatalf("arrivals = %d, want %d", got, cfg.Flows)
	}
	installed := map[uint64]bool{}
	maxLive, live := 0, 0
	var prev time.Duration
	for i, e := range s.Events {
		if e.At < prev {
			t.Fatalf("event %d out of order: %v after %v", i, e.At, prev)
		}
		prev = e.At
		id := uint64(e.Rule.ID)
		switch e.Op {
		case OpInsert:
			if installed[id] {
				t.Fatalf("event %d: insert of live rule %d", i, id)
			}
			installed[id] = true
			live++
			if live > maxLive {
				maxLive = live
			}
		case OpModify:
			if !installed[id] {
				t.Fatalf("event %d: modify of absent rule %d", i, id)
			}
		case OpDelete:
			if !installed[id] {
				t.Fatalf("event %d: delete of absent rule %d", i, id)
			}
			delete(installed, id)
			live--
		}
	}
	// A full replay ends with an empty table.
	if len(installed) != 0 {
		t.Fatalf("%d rules still installed after the final flush", len(installed))
	}
	// The hold bounds the working set: at 10k flows/s with a 50 ms hold,
	// ~500 concurrent rules; anywhere near the flow universe means holds
	// are not expiring.
	if maxLive >= int(cfg.Distinct) {
		t.Fatalf("working set peaked at %d, the whole universe", maxLive)
	}

	// Zipf popularity makes hot flows re-arrive: a healthy share of
	// arrivals must be modifies.
	_, mods, _ := s.Counts()
	if mods == 0 {
		t.Fatal("no modifies: flow popularity is not skewed")
	}
}

// TestGenerateArrivalProcesses: constant spacing is exact; the flash
// crowd packs more arrivals into its window than the calm Poisson
// baseline does.
func TestGenerateArrivalProcesses(t *testing.T) {
	cfg := baseConfig()
	cfg.Arrival = ArrivalConstant
	cfg.Hold = 0
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(time.Second) / cfg.Rate)
	for i := 1; i < 100; i++ {
		if gap := s.Events[i].At - s.Events[i-1].At; gap != want {
			t.Fatalf("constant arrival gap %v, want %v", gap, want)
		}
	}

	count := func(s *Schedule, from, to time.Duration) int {
		n := 0
		for _, e := range s.Events {
			if e.Op != OpDelete && e.At >= from && e.At < to {
				n++
			}
		}
		return n
	}
	pois := baseConfig()
	pois.Hold = 0
	base, err := Generate(pois)
	if err != nil {
		t.Fatal(err)
	}
	crowd := pois
	crowd.Arrival = ArrivalFlashCrowd
	crowd.BurstFactor = 10
	burst, err := Generate(crowd)
	if err != nil {
		t.Fatal(err)
	}
	// The window is positioned on the nominal run length.
	nominal := time.Duration(float64(pois.Flows) / pois.Rate * float64(time.Second))
	from := time.Duration(crowd.BurstStart * float64(nominal))
	to := from + time.Duration(crowd.BurstLen*float64(nominal))
	if b, p := count(burst, from, to), count(base, from, to); b < 2*p {
		t.Fatalf("flash crowd put %d arrivals in the window vs %d calm — no crowd", b, p)
	}
}

// TestGenerateClassesAndIDs: class assignment is a stable per-flow
// function honoring the weights, and rule IDs stay in the configured
// range (below the agent's reserved partition space).
func TestGenerateClassesAndIDs(t *testing.T) {
	cfg := baseConfig()
	cfg.ClassWeights = []int{3, 1}
	cfg.FirstID = 1000
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	classByRule := map[uint64]uint8{}
	counts := map[uint8]int{}
	for _, e := range s.Events {
		id := uint64(e.Rule.ID)
		if id < 1000 || id > 1000+cfg.Distinct {
			t.Fatalf("rule ID %d outside [1000, %d]", id, 1000+cfg.Distinct)
		}
		if c, seen := classByRule[id]; seen && c != e.Class {
			t.Fatalf("rule %d changed class %d→%d", id, c, e.Class)
		}
		classByRule[id] = e.Class
		if e.Op != OpDelete {
			counts[e.Class]++
		}
	}
	if len(counts) != 2 {
		t.Fatalf("saw %d classes, want 2", len(counts))
	}
	// 3:1 weighting with generous slack.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("class ratio %.2f nowhere near 3:1 (%d vs %d)", ratio, counts[0], counts[1])
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Flows: 0, Rate: 1}); err == nil {
		t.Fatal("zero flows accepted")
	}
	if _, err := Generate(Config{Flows: 1, Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Generate(Config{Flows: 1, Rate: 1, ClassWeights: []int{0, 0}}); err == nil {
		t.Fatal("all-zero class weights accepted")
	}
	if _, err := ParseArrival("fibonacci"); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

// TestFromBGP: the adapter replays FIB churn deterministically and every
// delete/modify references a previously inserted prefix rule.
func TestFromBGP(t *testing.T) {
	cfg := bgp.TraceConfig{
		Duration: 5 * time.Second, Peers: 4, Prefixes: 500,
		BaseRate: 200, BurstRate: 1000, BurstProb: 0.2,
		BurstLen: time.Second, WithdrawFrac: 0.3,
	}
	a := FromBGP(7, "test", cfg, 1)
	b := FromBGP(7, "test", cfg, 1)
	if a.Digest() != b.Digest() {
		t.Fatal("same-seed BGP schedules diverge")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty BGP schedule")
	}
	installed := map[uint64]bool{}
	for i, e := range a.Events {
		if e.Class != 1 {
			t.Fatalf("event %d class = %d, want 1", i, e.Class)
		}
		id := uint64(e.Rule.ID)
		switch e.Op {
		case OpInsert:
			if installed[id] {
				t.Fatalf("event %d: duplicate FIB insert for rule %d", i, id)
			}
			installed[id] = true
		case OpModify, OpDelete:
			if !installed[id] {
				t.Fatalf("event %d: %v of absent rule %d", i, e.Op, id)
			}
			if e.Op == OpDelete {
				delete(installed, id)
			}
		}
	}
}

// TestFromJobs: shuffle storms become bursts of inserts classed by job
// size, each with a matching delete one hold later, in time order.
func TestFromJobs(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Flows: []workload.FlowSpec{
			{Src: 1, Dst: 2, Bytes: 1e6}, {Src: 1, Dst: 3, Bytes: 1e6},
		}},
		{ID: 2, Arrival: 10 * time.Millisecond, Flows: []workload.FlowSpec{
			{Src: 2, Dst: 3, Bytes: 2e9},
		}},
	}
	const hold = 100 * time.Millisecond
	s := FromJobs(jobs, hold, 0, 1, 1)
	ins, _, dels := s.Counts()
	if ins != 3 || dels != 3 {
		t.Fatalf("inserts/deletes = %d/%d, want 3/3", ins, dels)
	}
	var prev time.Duration
	short, long := 0, 0
	for i, e := range s.Events {
		if e.At < prev {
			t.Fatalf("event %d out of order", i)
		}
		prev = e.At
		if e.Op != OpInsert {
			continue
		}
		switch e.Class {
		case 0:
			short++
		case 1:
			long++
		}
	}
	if short != 2 || long != 1 {
		t.Fatalf("short/long inserts = %d/%d, want 2/1", short, long)
	}
	// Deterministic without any seed: same input, same digest.
	if s.Digest() != FromJobs(jobs, hold, 0, 1, 1).Digest() {
		t.Fatal("FromJobs is not deterministic")
	}
}
