// Package loadgen builds deterministic open-loop arrival schedules for
// driving Hermes agents at scale and turns the measured outcomes into
// machine-readable SLO verdicts.
//
// The package is split along the determinism boundary the repo's lint
// enforces: everything here — schedule generation, the outcome ledger,
// verdict evaluation — is replayable (no wall clock, no global
// randomness; the same seed yields a byte-identical schedule). The
// wall-clock executor that paces a schedule against live agents lives in
// the loadgen/driver subpackage.
//
// A schedule is open-loop: event times are fixed up front, so arrivals
// fire on time whether or not earlier flow-mods have completed. That is
// what exposes guarantee violations — a closed-loop driver would slow
// down with the switch and hide the backlog the paper's Eq. 1/2 budgets
// are about.
package loadgen

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/workload"
)

// OpKind is the kind of one scheduled flow-table operation.
type OpKind uint8

// Operation kinds.
const (
	// OpInsert installs a new rule.
	OpInsert OpKind = iota + 1
	// OpModify rewrites the action of an installed rule.
	OpModify
	// OpDelete removes an installed rule.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Event is one scheduled operation: at virtual time At, apply Op to Rule.
// Class tags the event with its service class so the ledger and the SLO
// can hold different budgets for different traffic (paper Eq. 1/2:
// per-class insertion-latency guarantees).
type Event struct {
	At    time.Duration
	Op    OpKind
	Class uint8
	Rule  classifier.Rule
}

// Schedule is an ordered open-loop event stream plus the provenance
// needed to reproduce it.
type Schedule struct {
	Name   string
	Seed   int64
	Events []Event
}

// Duration is the virtual time of the last event.
func (s *Schedule) Duration() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Counts tallies the schedule by operation kind.
func (s *Schedule) Counts() (inserts, modifies, deletes int) {
	for _, e := range s.Events {
		switch e.Op {
		case OpInsert:
			inserts++
		case OpModify:
			modifies++
		case OpDelete:
			deletes++
		}
	}
	return
}

// Arrivals counts the flow arrivals (inserts + modifies) — the offered
// load; deletes are bookkeeping that bounds the working set.
func (s *Schedule) Arrivals() int {
	ins, mod, _ := s.Counts()
	return ins + mod
}

// appendEvent encodes one event into the canonical binary form shared by
// Digest and MarshalBinary: fixed-width little-endian fields, no padding,
// so two schedules are byte-identical iff their event streams are.
func appendEvent(b []byte, e Event) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(e.At))
	b = append(b, byte(e.Op), e.Class)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Rule.ID))
	b = binary.LittleEndian.AppendUint32(b, e.Rule.Match.Dst.Addr)
	b = append(b, e.Rule.Match.Dst.Len)
	b = binary.LittleEndian.AppendUint32(b, e.Rule.Match.Src.Addr)
	b = append(b, e.Rule.Match.Src.Len)
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Rule.Priority))
	b = append(b, byte(e.Rule.Action.Type))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Rule.Action.Port))
	return b
}

// eventSize is the encoded size of one event (see appendEvent).
const eventSize = 8 + 2 + 8 + 5 + 5 + 4 + 1 + 4

// MarshalBinary renders the whole schedule in the canonical encoding.
// Same seed, same config ⇒ byte-identical output.
func (s *Schedule) MarshalBinary() []byte {
	b := make([]byte, 0, len(s.Events)*eventSize)
	for _, e := range s.Events {
		b = appendEvent(b, e)
	}
	return b
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest is an FNV-64a hash over the canonical encoding, streamed so a
// million-event schedule digests without materializing the byte form.
// Two runs with equal digests replayed byte-identical schedules.
func (s *Schedule) Digest() uint64 {
	h := uint64(fnvOffset64)
	var buf [eventSize]byte
	for _, e := range s.Events {
		for _, c := range appendEvent(buf[:0], e) {
			h = (h ^ uint64(c)) * fnvPrime64
		}
	}
	return h
}

// ArrivalKind selects the arrival process shaping event times.
type ArrivalKind uint8

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps at the mean
	// rate — the microbenchmark arrival model (§8.1.1).
	ArrivalPoisson ArrivalKind = iota
	// ArrivalConstant spaces arrivals exactly 1/rate apart.
	ArrivalConstant
	// ArrivalFlashCrowd is Poisson at the base rate with a window during
	// which the instantaneous rate ramps up to BurstFactor× and back — a
	// flash-crowd / BGP-burst shape (§2.3 observes >1000 updates/s tails).
	ArrivalFlashCrowd
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalConstant:
		return "constant"
	case ArrivalFlashCrowd:
		return "flash-crowd"
	default:
		return fmt.Sprintf("arrival(%d)", uint8(k))
	}
}

// ParseArrival maps the CLI spelling of an arrival process to its kind.
func ParseArrival(s string) (ArrivalKind, error) {
	switch s {
	case "poisson":
		return ArrivalPoisson, nil
	case "constant":
		return ArrivalConstant, nil
	case "flash-crowd", "flashcrowd":
		return ArrivalFlashCrowd, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown arrival process %q", s)
	}
}

// Config shapes a synthetic schedule.
type Config struct {
	// Flows is the number of flow arrivals (inserts + modifies) to
	// schedule. Deletes generated by Hold come on top.
	Flows int
	// Rate is the mean arrival rate in flows/second.
	Rate float64
	// Arrival selects the arrival process.
	Arrival ArrivalKind
	// BurstFactor is the flash-crowd peak rate multiplier (default 10).
	BurstFactor float64
	// BurstStart and BurstLen position the flash-crowd window as
	// fractions of the nominal run length (defaults 0.4 and 0.2).
	BurstStart, BurstLen float64

	// Distinct is the flow-universe size; arrivals pick flows from it
	// with Zipf popularity, so hot flows re-arrive (modifies) while the
	// tail brings fresh inserts (default: Flows).
	Distinct uint64
	// ZipfS is the Zipf skew exponent, > 1 (default 1.1).
	ZipfS float64

	// Hold is how long an installed flow stays before its delete is
	// scheduled; it bounds the working set below TCAM capacity. A
	// re-arrival extends the hold. Zero disables deletes (the working set
	// then grows to Distinct).
	Hold time.Duration

	// ClassWeights splits arrivals across service classes by weight;
	// class i gets ClassWeights[i] shares. A flow's class is a stable
	// function of its identity. Default: one class.
	ClassWeights []int

	// Seed roots every random sub-stream; equal seeds (and configs)
	// produce byte-identical schedules.
	Seed int64

	// FirstID numbers flow rules starting here (default 1). Rule IDs
	// stay below the agent's reserved partition-ID space as long as
	// FirstID + Distinct does.
	FirstID classifier.RuleID
}

// withDefaults validates and fills defaults, returning the effective
// config.
func (c Config) withDefaults() (Config, error) {
	if c.Flows <= 0 {
		return c, fmt.Errorf("loadgen: Flows = %d, need > 0", c.Flows)
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("loadgen: Rate = %g, need > 0", c.Rate)
	}
	if c.Distinct == 0 {
		c.Distinct = uint64(c.Flows)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 10
	}
	if c.BurstStart == 0 {
		c.BurstStart = 0.4
	}
	if c.BurstLen == 0 {
		c.BurstLen = 0.2
	}
	if len(c.ClassWeights) == 0 {
		c.ClassWeights = []int{1}
	}
	if len(c.ClassWeights) > 256 {
		return c, fmt.Errorf("loadgen: %d classes, max 256", len(c.ClassWeights))
	}
	total := 0
	for i, w := range c.ClassWeights {
		if w < 0 {
			return c, fmt.Errorf("loadgen: ClassWeights[%d] = %d, need >= 0", i, w)
		}
		total += w
	}
	if total == 0 {
		return c, fmt.Errorf("loadgen: all class weights are zero")
	}
	if c.FirstID == 0 {
		c.FirstID = 1
	}
	return c, nil
}

// Sub-stream labels: each consumer of randomness gets an independent
// SplitMix64-derived stream so adding one consumer never perturbs the
// draws of another.
const (
	labelArrival uint64 = iota + 1
	labelPopularity
	labelFlowSalt
)

// pendingDelete is one scheduled rule expiry.
type pendingDelete struct {
	at   time.Duration
	flow uint64
}

type deleteHeap []pendingDelete

func (h deleteHeap) Len() int            { return len(h) }
func (h deleteHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h deleteHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deleteHeap) Push(x interface{}) { *h = append(*h, x.(pendingDelete)) }
func (h *deleteHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generate builds a synthetic schedule. The flow universe is Zipf-popular:
// a re-arrival of an installed flow becomes a modify (the cheap
// constant-time TCAM action), a first arrival or an arrival after expiry
// becomes an insert. With Hold set, expiries surface as deletes in event
// order, so replaying the schedule keeps the installed set bounded.
func Generate(cfg Config) (*Schedule, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	arr := workload.SubStream(cfg.Seed, labelArrival)
	pop := workload.NewZipf(workload.SubStream(cfg.Seed, labelPopularity), cfg.ZipfS, 1, cfg.Distinct)
	flowSalt := uint64(workload.SubSeed(cfg.Seed, labelFlowSalt))

	nominal := time.Duration(float64(cfg.Flows) / cfg.Rate * float64(time.Second))
	burstFrom := time.Duration(cfg.BurstStart * float64(nominal))
	burstTo := burstFrom + time.Duration(cfg.BurstLen*float64(nominal))

	events := make([]Event, 0, cfg.Flows+cfg.Flows/2)
	expiry := make(map[uint64]time.Duration) // flow → current delete time
	var pending deleteHeap

	flushDue := func(now time.Duration) {
		for pending.Len() > 0 && pending[0].at <= now {
			d := heap.Pop(&pending).(pendingDelete)
			if exp, ok := expiry[d.flow]; !ok || exp != d.at {
				continue // superseded by a re-arrival extending the hold
			}
			delete(expiry, d.flow)
			events = append(events, Event{
				At:    d.at,
				Op:    OpDelete,
				Class: classOf(d.flow, flowSalt, cfg.ClassWeights),
				Rule:  flowRule(cfg, d.flow, flowSalt, 0),
			})
		}
	}

	var now time.Duration
	for i := 0; i < cfg.Flows; i++ {
		rate := cfg.Rate
		if cfg.Arrival == ArrivalFlashCrowd && now >= burstFrom && now < burstTo {
			// Triangular ramp: peak at the window midpoint.
			mid := float64(burstFrom+burstTo) / 2
			half := float64(burstTo-burstFrom) / 2
			frac := 1 - math.Abs(float64(now)-mid)/half
			rate *= 1 + (cfg.BurstFactor-1)*frac
		}
		var gap time.Duration
		if cfg.Arrival == ArrivalConstant {
			gap = time.Duration(float64(time.Second) / rate)
		} else {
			gap = time.Duration(arr.ExpFloat64() / rate * float64(time.Second))
		}
		now += gap
		flushDue(now)

		flow := pop.Next()
		op := OpInsert
		if _, installed := expiry[flow]; installed {
			op = OpModify
		}
		if cfg.Hold == 0 {
			expiry[flow] = -1 // sentinel: installed, never expires
		} else {
			exp := now + cfg.Hold
			expiry[flow] = exp // a re-arrival extends the hold
			heap.Push(&pending, pendingDelete{at: exp, flow: flow})
		}
		events = append(events, Event{
			At:    now,
			Op:    op,
			Class: classOf(flow, flowSalt, cfg.ClassWeights),
			Rule:  flowRule(cfg, flow, flowSalt, uint32(i)),
		})
	}
	// Drain outstanding holds so a full replay ends with an empty table.
	flushDue(1 << 62)

	return &Schedule{Name: "synthetic-" + cfg.Arrival.String(), Seed: cfg.Seed, Events: events}, nil
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// classOf assigns a flow its stable service class by weighted hash.
func classOf(flow, salt uint64, weights []int) uint8 {
	if len(weights) == 1 {
		return 0
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	pick := int(mix64(flow^salt^0xC1A55) % uint64(total))
	for i, w := range weights {
		if pick < w {
			return uint8(i)
		}
		pick -= w
	}
	return uint8(len(weights) - 1)
}

// flowRule derives the TCAM rule for a flow: a /24 destination prefix and
// a priority that are stable functions of the flow identity (a modify
// must address the same entry), and a forwarding port that varies with
// the arrival ordinal (so modifies change something real).
func flowRule(cfg Config, flow, salt uint64, ordinal uint32) classifier.Rule {
	h := mix64(flow ^ salt)
	return classifier.Rule{
		ID:       cfg.FirstID + classifier.RuleID(flow),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(h), 24)),
		Priority: int32(h>>32)%16 + 1,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(ordinal % 48)},
	}
}
