package driver

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/fleet"
	"hermes/internal/loadgen"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
	"hermes/internal/testutil"
)

// startAgents launches n in-process Hermes agents on loopback and arms
// the goroutine-leak checker.
func startAgents(t *testing.T, n int) []string {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := ofwire.NewAgentServer(fmt.Sprintf("sw-%d", i), tcam.Pica8P3290,
			core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lis) //nolint:errcheck
		t.Cleanup(func() { srv.Close() })
		addrs[i] = lis.Addr().String()
	}
	return addrs
}

func smokeSchedule(t *testing.T, seed int64) *loadgen.Schedule {
	t.Helper()
	s, err := loadgen.Generate(loadgen.Config{
		Flows:        2000,
		Rate:         100000,
		Arrival:      loadgen.ArrivalPoisson,
		Distinct:     800,
		Hold:         10 * time.Millisecond,
		ClassWeights: []int{3, 1},
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunWireSmoke is the end-to-end contract: an open-loop replay over
// live wire clients completes every scheduled operation, conserves the
// ledger, drains every XID, and yields a verdict that passes a sane SLO
// and fails an absurd one.
func TestRunWireSmoke(t *testing.T) {
	addrs := startAgents(t, 2)
	tgt, err := DialWire(addrs, time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()

	s := smokeSchedule(t, 42)
	led := loadgen.NewLedger(2)
	rep, err := Run(context.Background(), s, tgt, led, Config{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}

	tot := led.Totals()
	if got, want := tot.Submitted, uint64(len(s.Events)); got != want {
		t.Fatalf("submitted = %d, want every scheduled op (%d)", got, want)
	}
	if tot.Completed() != tot.Submitted {
		t.Fatalf("completed %d != submitted %d: ops leaked", tot.Completed(), tot.Submitted)
	}
	if tot.Rejected != 0 || tot.Lost != 0 {
		t.Fatalf("rejected/lost = %d/%d on a healthy in-process target", tot.Rejected, tot.Lost)
	}
	if rep.Shed != 0 {
		t.Fatalf("shed %d ops at this modest rate", rep.Shed)
	}
	if tgt.Outstanding() != 0 {
		t.Fatalf("%d XIDs still open after drain", tgt.Outstanding())
	}
	if got, want := tgt.WireRTT().Count(), uint64(len(s.Events)); got != want {
		t.Fatalf("wire RTT samples = %d, want %d", got, want)
	}
	if rep.AchievedRate <= 0 || rep.OfferedRate <= 0 {
		t.Fatalf("rates not computed: %+v", rep)
	}

	run := rep.RunInfo(s, "wire", tgt.Switches())
	if run.ScheduleDigest != fmt.Sprintf("%016x", s.Digest()) || run.Switches != 2 {
		t.Fatalf("run info wrong: %+v", run)
	}
	// Loose SLO passes; an absurd 1 ns p99 budget must breach and the
	// verdict must say so machine-readably.
	if v := loadgen.Evaluate(led, loadgen.Uniform(2, loadgen.ClassSLO{P99: 5 * time.Second}), run); !v.Pass {
		t.Fatalf("loose SLO breached: %v", v.Breaches)
	}
	v := loadgen.Evaluate(led, loadgen.Uniform(2, loadgen.ClassSLO{P99: time.Nanosecond}), run)
	if v.Pass || len(v.Breaches) == 0 {
		t.Fatal("1 ns p99 budget did not breach")
	}
	b, err := v.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"pass": false`) {
		t.Fatalf("verdict JSON does not carry the gate bit:\n%s", b)
	}
}

// TestRunSameSeedSameSchedule: two runs from the same seed replay
// byte-identical schedules (the digest lands in both verdicts) and
// complete the same operation totals.
func TestRunSameSeedSameSchedule(t *testing.T) {
	addrs := startAgents(t, 1)
	digests := make([]string, 2)
	totals := make([]uint64, 2)
	for i := range digests {
		tgt, err := DialWire(addrs, time.Second, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		s := smokeSchedule(t, 7)
		led := loadgen.NewLedger(2)
		rep, err := Run(context.Background(), s, tgt, led, Config{Workers: 8, TimeScale: 4})
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = rep.RunInfo(s, "wire", 1).ScheduleDigest
		totals[i] = led.Totals().Submitted
		// Drain the table so the second replay starts from empty.
		if tgt.Outstanding() != 0 {
			t.Fatalf("run %d left XIDs open", i)
		}
		tgt.Close()
	}
	if digests[0] != digests[1] {
		t.Fatalf("same-seed digests diverge: %s vs %s", digests[0], digests[1])
	}
	if totals[0] != totals[1] {
		t.Fatalf("same-seed totals diverge: %d vs %d", totals[0], totals[1])
	}
}

// TestRunFleetTarget drives the same smoke through the fleet layer:
// queues, batching and breakers between the driver and the agents, with
// the fleet's completion hook feeding a second conservation check.
func TestRunFleetTarget(t *testing.T) {
	addrs := startAgents(t, 2)
	specs := make([]fleet.SwitchSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = fleet.SwitchSpec{ID: fmt.Sprintf("sw-%d", i), Addr: a}
	}
	var hookResults atomic.Uint64
	f, err := fleet.New(fleet.Config{
		BatchSize: 16,
		OnResult:  func(fleet.OpResult) { hookResults.Add(1) },
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	s := smokeSchedule(t, 11)
	led := loadgen.NewLedger(2)
	tgt := NewFleetTarget(f)
	if _, err := Run(context.Background(), s, tgt, led, Config{Workers: 16, TimeScale: 2}); err != nil {
		t.Fatal(err)
	}
	tot := led.Totals()
	if tot.Submitted != uint64(len(s.Events)) || tot.Completed() != tot.Submitted {
		t.Fatalf("fleet-mode conservation broken: submitted=%d completed=%d events=%d",
			tot.Submitted, tot.Completed(), len(s.Events))
	}
	if tot.Rejected != 0 || tot.Lost != 0 {
		t.Fatalf("fleet-mode rejected/lost = %d/%d", tot.Rejected, tot.Lost)
	}
	if got := hookResults.Load(); got != uint64(len(s.Events)) {
		t.Fatalf("fleet OnResult saw %d completions, want %d", got, len(s.Events))
	}
}

// TestRunCancelled: cancelling mid-run stops the pacer, drains what was
// queued, and reports the cancellation.
func TestRunCancelled(t *testing.T) {
	addrs := startAgents(t, 1)
	tgt, err := DialWire(addrs, time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()

	s, err := loadgen.Generate(loadgen.Config{
		Flows: 1000, Rate: 100, Arrival: loadgen.ArrivalConstant, Seed: 1,
	}) // 10 s of schedule; the cancel cuts it short
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	led := loadgen.NewLedger(1)
	rep, err := Run(ctx, s, tgt, led, Config{Workers: 4})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if rep.Wall >= 5*time.Second {
		t.Fatalf("cancelled run took %v", rep.Wall)
	}
	tot := led.Totals()
	if tot.Completed() != tot.Submitted {
		t.Fatalf("cancelled run leaked ops: %d/%d", tot.Completed(), tot.Submitted)
	}
	if tgt.Outstanding() != 0 {
		t.Fatalf("%d XIDs open after cancelled drain", tgt.Outstanding())
	}
}
