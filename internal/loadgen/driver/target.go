package driver

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/fleet"
	"hermes/internal/loadgen"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
)

// Target is where scheduled operations land: a set of raw wire clients or
// a fleet. Apply blocks until the operation completes and must be safe
// for concurrent use — the driver's workers call it in parallel.
type Target interface {
	// Apply performs one operation and returns the switch's result.
	Apply(op loadgen.OpKind, r classifier.Rule) (ofwire.FlowModResult, error)
	// Switches is the fan-out width, for reporting.
	Switches() int
	// Close releases connections. The driver does not call it; the
	// owner who dialed the target closes it.
	Close() error
}

// Tracker is the per-connection XID ledger: it implements
// ofwire.FlowLifecycle, timing every flow-mod from submission to
// completion and recording the wire-level setup latency into an obs
// histogram. XIDs are a per-connection namespace, so each client gets
// its own Tracker; trackers share the histogram and counters, which are
// connection-independent totals (the lesson of the ofwire lifecycle
// tests: never key cross-connection totals by XID).
type Tracker struct {
	wireRTT *obs.Histogram

	mu        sync.Mutex
	open      map[uint32]time.Time
	submitted uint64
	completed uint64
}

// NewTracker returns a tracker recording wire setup latency into rtt
// (shared across trackers when aggregating a whole target).
func NewTracker(rtt *obs.Histogram) *Tracker {
	return &Tracker{wireRTT: rtt, open: make(map[uint32]time.Time)}
}

// FlowSubmitted implements ofwire.FlowLifecycle.
func (t *Tracker) FlowSubmitted(xid uint32, _ classifier.RuleID) {
	now := time.Now()
	t.mu.Lock()
	t.submitted++
	t.open[xid] = now
	t.mu.Unlock()
}

// FlowCompleted implements ofwire.FlowLifecycle.
func (t *Tracker) FlowCompleted(xid uint32, _ classifier.RuleID, _ ofwire.FlowModResult, err error) {
	now := time.Now()
	t.mu.Lock()
	at, ok := t.open[xid]
	if ok {
		delete(t.open, xid)
		t.completed++
	}
	t.mu.Unlock()
	if ok && err == nil && t.wireRTT != nil {
		t.wireRTT.RecordDuration(now.Sub(at))
	}
}

// Outstanding is the number of submitted flow-mods not yet completed on
// this connection. Zero once a run has drained.
func (t *Tracker) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Counts returns the connection's submitted/completed totals.
func (t *Tracker) Counts() (submitted, completed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.submitted, t.completed
}

// WireTarget drives agents over raw pipelined ofwire clients, one per
// switch, routing each rule to a switch by identity hash — the same
// stable routing the fleet uses, so a rule's insert, modifies and delete
// all land on the same agent.
type WireTarget struct {
	clients  []*ofwire.Client
	trackers []*Tracker
	wireRTT  *obs.Histogram
}

// DialWire connects one client per address. The request timeout bounds
// how long a flow-mod may stay in flight before it is abandoned (and
// counted lost).
func DialWire(addrs []string, dialTimeout, requestTimeout time.Duration) (*WireTarget, error) {
	if len(addrs) == 0 {
		return nil, errors.New("driver: no switch addresses")
	}
	w := &WireTarget{wireRTT: obs.NewHistogram()}
	for _, addr := range addrs {
		c, err := ofwire.Dial(addr, dialTimeout)
		if err != nil {
			w.Close() //nolint:errcheck
			return nil, fmt.Errorf("driver: dial %s: %w", addr, err)
		}
		if requestTimeout > 0 {
			c.SetRequestTimeout(requestTimeout)
		}
		tr := NewTracker(w.wireRTT)
		c.SetLifecycle(tr)
		w.clients = append(w.clients, c)
		w.trackers = append(w.trackers, tr)
	}
	return w, nil
}

func (w *WireTarget) route(id classifier.RuleID) *ofwire.Client {
	return w.clients[mix64(uint64(id))%uint64(len(w.clients))]
}

// Apply implements Target.
func (w *WireTarget) Apply(op loadgen.OpKind, r classifier.Rule) (ofwire.FlowModResult, error) {
	c := w.route(r.ID)
	switch op {
	case loadgen.OpInsert:
		return c.Insert(r)
	case loadgen.OpModify:
		return c.Modify(r)
	case loadgen.OpDelete:
		return c.Delete(r.ID)
	default:
		return ofwire.FlowModResult{}, fmt.Errorf("driver: unknown op %v", op)
	}
}

// Switches implements Target.
func (w *WireTarget) Switches() int { return len(w.clients) }

// WireRTT is the aggregated wire-level setup-latency histogram across
// every connection.
func (w *WireTarget) WireRTT() *obs.Histogram { return w.wireRTT }

// Outstanding sums the open flow-mods across connections; zero once a
// run has drained.
func (w *WireTarget) Outstanding() int {
	n := 0
	for _, tr := range w.trackers {
		n += tr.Outstanding()
	}
	return n
}

// Close closes every client.
func (w *WireTarget) Close() error {
	var first error
	for _, c := range w.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return fmt.Errorf("driver: close wire target: %w", first)
	}
	return nil
}

// FleetTarget drives operations through a fleet — queues, batching,
// circuit breakers and retries included — exercising the whole
// controller-side stack rather than the bare protocol.
type FleetTarget struct {
	f *fleet.Fleet
}

// NewFleetTarget wraps an existing fleet. The caller keeps ownership
// (Close is a no-op); wire the ledger into fleet.Config.OnResult for
// completion-stream observation if desired.
func NewFleetTarget(f *fleet.Fleet) *FleetTarget { return &FleetTarget{f: f} }

// Apply implements Target, routing by the fleet's stable rule routing.
func (t *FleetTarget) Apply(op loadgen.OpKind, r classifier.Rule) (ofwire.FlowModResult, error) {
	sw := t.f.Route(r.ID)
	var res fleet.OpResult
	switch op {
	case loadgen.OpInsert:
		res = t.f.Insert(sw, r)
	case loadgen.OpModify:
		res = t.f.Modify(sw, r)
	case loadgen.OpDelete:
		res = t.f.Delete(sw, r.ID)
	default:
		return ofwire.FlowModResult{}, fmt.Errorf("driver: unknown op %v", op)
	}
	if res.Err != nil {
		return res.Result, fmt.Errorf("driver: fleet %s on %s: %w", op, sw, res.Err)
	}
	return res.Result, nil
}

// Switches implements Target.
func (t *FleetTarget) Switches() int { return t.f.Size() }

// Close implements Target; the fleet's owner closes the fleet.
func (t *FleetTarget) Close() error { return nil }

// Classify maps a completed operation to its ledger outcome. Only
// inserts can be diverted: the Gate Keeper's guaranteed/best-effort
// split applies to insertions; modifies and deletes hit installed state
// directly.
func Classify(op loadgen.OpKind, res ofwire.FlowModResult, err error) loadgen.Outcome {
	if err != nil {
		var remote *ofwire.ErrorBody
		if errors.As(err, &remote) {
			return loadgen.OutcomeRejected
		}
		return loadgen.OutcomeLost
	}
	if op == loadgen.OpInsert && !res.Guaranteed && res.Path == core.PathMain {
		return loadgen.OutcomeDiverted
	}
	return loadgen.OutcomeInstalled
}

// mix64 is the SplitMix64 finalizer (see loadgen): stable rule→switch
// routing.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
