// Package driver executes loadgen schedules against live Hermes agents
// in wall-clock time. It is the non-deterministic half of the load
// generator: the schedule it replays is deterministic, the pacing and
// measured latencies are real.
package driver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/loadgen"
)

// Config tunes the executor. The zero value is completed with defaults.
type Config struct {
	// Workers is the number of applier goroutines. Operations are
	// assigned to workers by rule identity, so each rule's insert →
	// modify → delete order is preserved even though workers run in
	// parallel. More workers = more flow-mods in flight. Default 32.
	Workers int
	// QueueDepth bounds each worker's pending-operation queue. The
	// driver is open-loop: when a worker's queue is full at fire time
	// the operation is shed and counted lost, never delayed — slowing
	// the arrival process to match the target would hide the backlog
	// the SLO exists to catch. Default 4096.
	QueueDepth int
	// TimeScale divides schedule time: 2 replays a schedule twice as
	// fast as generated, 0.5 half speed. Default 1.
	TimeScale float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	return c
}

// Report is the measured context of one run.
type Report struct {
	// Wall is the elapsed time from first fire to full drain.
	Wall time.Duration
	// Arrivals is the number of scheduled arrivals (inserts+modifies).
	Arrivals int
	// Events is the total operations dispatched, deletes included.
	Events int
	// Shed counts operations dropped at fire time because their
	// worker's queue was full (counted lost in the ledger too).
	Shed int
	// OfferedRate is arrivals over the schedule's virtual duration —
	// the load the schedule asked for, after TimeScale.
	OfferedRate float64
	// AchievedRate is completed arrivals over wall time.
	AchievedRate float64
	// MaxLag is the worst observed dispatch lag: how far behind its
	// scheduled fire time an operation left the pacer. Large lag means
	// the pacer itself (not the switch) was the bottleneck and the run
	// under-offered.
	MaxLag time.Duration
}

// RunInfo converts the report into the verdict's run block.
func (r *Report) RunInfo(s *loadgen.Schedule, target string, switches int) loadgen.RunInfo {
	return loadgen.RunInfo{
		Seed:           s.Seed,
		ScheduleName:   s.Name,
		ScheduleDigest: fmt.Sprintf("%016x", s.Digest()),
		Target:         target,
		Switches:       switches,
		Arrivals:       r.Arrivals,
		OfferedRate:    r.OfferedRate,
		AchievedRate:   r.AchievedRate,
		WallSeconds:    r.Wall.Seconds(),
	}
}

// queuedOp is one operation with its scheduled wall fire time.
type queuedOp struct {
	ev     loadgen.Event
	fireAt time.Time
}

// Run replays the schedule against the target open-loop: every event
// fires at start + At/TimeScale regardless of how earlier operations
// are faring. Outcomes and end-to-end setup latencies — scheduled fire
// time to completion, queueing included — land in the ledger. Run
// returns when every dispatched operation has completed, or with the
// context's error if cancelled mid-run (workers drain what was already
// queued either way).
func Run(ctx context.Context, s *loadgen.Schedule, tgt Target, led *loadgen.Ledger, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Events: len(s.Events), Arrivals: s.Arrivals()}

	queues := make([]chan queuedOp, cfg.Workers)
	var wg sync.WaitGroup
	var appliedArrivals atomic.Int64
	for i := range queues {
		queues[i] = make(chan queuedOp, cfg.QueueDepth)
		wg.Add(1)
		go func(q chan queuedOp) {
			defer wg.Done()
			for qo := range q {
				led.Submitted(qo.ev.Class)
				res, err := tgt.Apply(qo.ev.Op, qo.ev.Rule)
				out := Classify(qo.ev.Op, res, err)
				led.Finished(qo.ev.Class, out, time.Since(qo.fireAt), res.Violation)
				if qo.ev.Op != loadgen.OpDelete &&
					(out == loadgen.OutcomeInstalled || out == loadgen.OutcomeDiverted) {
					appliedArrivals.Add(1)
				}
			}
		}(queues[i])
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var maxLag time.Duration
	var runErr error
pace:
	for _, ev := range s.Events {
		fireAt := start.Add(time.Duration(float64(ev.At) / cfg.TimeScale))
		if wait := time.Until(fireAt); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				runErr = ctx.Err()
				break pace
			}
		} else if -wait > maxLag {
			maxLag = -wait
		}
		q := queues[mix64(uint64(ev.Rule.ID))%uint64(len(queues))]
		select {
		case q <- queuedOp{ev: ev, fireAt: fireAt}:
		default:
			// Open-loop shed: the worker is saturated; dropping preserves
			// the arrival process and the drop itself is the signal.
			rep.Shed++
			led.Submitted(ev.Class)
			led.Finished(ev.Class, loadgen.OutcomeLost, 0, false)
		}
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()

	rep.Wall = time.Since(start)
	rep.MaxLag = maxLag
	virtual := time.Duration(float64(s.Duration()) / cfg.TimeScale)
	if virtual > 0 {
		rep.OfferedRate = float64(rep.Arrivals) / virtual.Seconds()
	}
	if rep.Wall > 0 {
		rep.AchievedRate = float64(appliedArrivals.Load()) / rep.Wall.Seconds()
	}
	if runErr != nil {
		return rep, fmt.Errorf("driver: run cancelled: %w", runErr)
	}
	return rep, nil
}
