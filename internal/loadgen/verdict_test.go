package loadgen

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"hermes/internal/obs"
)

func feedLedger(l *Ledger) {
	for i := 0; i < 100; i++ {
		l.Submitted(0)
		l.Finished(0, OutcomeInstalled, 2*time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		l.Submitted(1)
		l.Finished(1, OutcomeDiverted, 40*time.Millisecond, true)
	}
	l.Submitted(1)
	l.Finished(1, OutcomeLost, 0, false)
}

func TestLedgerCountsAndTotals(t *testing.T) {
	l := NewLedger(2)
	feedLedger(l)

	c0, c1 := l.Class(0), l.Class(1)
	if c0.Submitted != 100 || c0.Installed != 100 || c0.Violations != 0 {
		t.Fatalf("class 0 = %+v", c0)
	}
	if c1.Submitted != 11 || c1.Diverted != 10 || c1.Lost != 1 || c1.Violations != 10 {
		t.Fatalf("class 1 = %+v", c1)
	}
	if got := c1.Setup.Count(); got != 10 {
		t.Fatalf("class 1 latency samples = %d, want 10 (lost ops record nothing)", got)
	}
	tot := l.Totals()
	if tot.Submitted != 111 || tot.Completed() != 111 || tot.Setup.Count() != 110 {
		t.Fatalf("totals = %+v", tot)
	}
	if r := c1.ViolationRate(); r < 0.9 || r > 0.92 {
		t.Fatalf("class 1 violation rate = %v, want 10/11", r)
	}

	// Out-of-range classes clamp into the last class, never panic.
	l.Submitted(9)
	l.Finished(9, OutcomeRejected, 0, false)
	if got := l.Class(1).Rejected; got != 1 {
		t.Fatalf("clamped rejected = %d, want 1", got)
	}
}

// TestLedgerConcurrent: driver workers hammer the ledger; counts must
// conserve.
func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger(3)
	var wg sync.WaitGroup
	const perWorker = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			class := uint8(w % 3)
			for i := 0; i < perWorker; i++ {
				l.Submitted(class)
				l.Finished(class, OutcomeInstalled, time.Millisecond, false)
			}
		}(w)
	}
	wg.Wait()
	tot := l.Totals()
	if tot.Submitted != 8*perWorker || tot.Installed != 8*perWorker {
		t.Fatalf("totals %d/%d, want %d each", tot.Submitted, tot.Installed, 8*perWorker)
	}
}

func TestLedgerRegister(t *testing.T) {
	l := NewLedger(2)
	feedLedger(l)
	reg := obs.NewRegistry()
	l.Register(reg)
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"loadgen_submitted_total", "loadgen_violations_total", "loadgen_setup_latency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, out)
		}
	}
}

func testRunInfo() RunInfo {
	return RunInfo{
		Seed: 42, ScheduleName: "synthetic-poisson", ScheduleDigest: "00000000deadbeef",
		Target: "wire", Switches: 2, Arrivals: 111,
		OfferedRate: 1000, AchievedRate: 990, WallSeconds: 0.112,
	}
}

// TestEvaluatePassAndBreach: the same measurements pass a loose SLO and
// fail a tight one, with the breach naming the class and the quantile.
func TestEvaluatePassAndBreach(t *testing.T) {
	l := NewLedger(2)
	feedLedger(l)

	loose := SLO{Classes: []ClassSLO{
		{Class: 0, P99: 50 * time.Millisecond},
		{Class: 1, P99: 200 * time.Millisecond, MaxViolationRate: 1, MaxLossRate: 0.5},
	}}
	if v := Evaluate(l, loose, testRunInfo()); !v.Pass || len(v.Breaches) != 0 {
		t.Fatalf("loose SLO failed: %v", v.Breaches)
	}

	tight := SLO{Classes: []ClassSLO{
		{Class: 0, P99: time.Nanosecond},
		{Class: 1, MaxViolationRate: 0.01},
	}}
	v := Evaluate(l, tight, testRunInfo())
	if v.Pass {
		t.Fatal("tight SLO passed")
	}
	joined := strings.Join(v.Breaches, "\n")
	if !strings.Contains(joined, "class 0: p99") || !strings.Contains(joined, "violation rate") {
		t.Fatalf("breaches missing expected entries:\n%s", joined)
	}
	// The per-class reports carry their own breaches.
	if len(v.Classes) != 2 || len(v.Classes[0].Breaches) == 0 || len(v.Classes[1].Breaches) == 0 {
		t.Fatalf("per-class breach attribution wrong: %+v", v.Classes)
	}

	// Zero tolerated violations must be expressible (Eq. 1 is absolute).
	zero := SLO{Classes: []ClassSLO{{Class: 1, MaxViolationRate: 0, ViolationRateSet: true}}}
	if v := Evaluate(l, zero, testRunInfo()); v.Pass {
		t.Fatal("zero-violation budget did not flag violations")
	}
}

// TestEvaluateEmptyRunFails: a run that submitted nothing must not pass
// the gate, while an unbudgeted idle class on a live run is fine.
func TestEvaluateEmptyRunFails(t *testing.T) {
	if v := Evaluate(NewLedger(1), SLO{}, RunInfo{}); v.Pass {
		t.Fatal("empty run passed")
	}
	l := NewLedger(2) // class 1 idle
	l.Submitted(0)
	l.Finished(0, OutcomeInstalled, time.Millisecond, false)
	slo := Uniform(2, ClassSLO{P99: time.Second})
	if v := Evaluate(l, slo, testRunInfo()); !v.Pass {
		t.Fatalf("idle budgeted class breached: %v", v.Breaches)
	}
}

// TestVerdictJSONStable: the artifact is machine-readable, carries the
// gate fields CI scripts key on, and round-trips.
func TestVerdictJSONStable(t *testing.T) {
	l := NewLedger(1)
	l.Submitted(0)
	l.Finished(0, OutcomeInstalled, 3*time.Millisecond, false)
	v := Evaluate(l, Uniform(1, ClassSLO{P99: time.Second}), testRunInfo())
	b, err := v.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"pass": true`, `"schedule_digest": "00000000deadbeef"`,
		`"offered_rate_per_sec"`, `"achieved_rate_per_sec"`, `"p99_ms"`,
		`"violation_rate"`, `"seed": 42`,
	} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("verdict JSON missing %s:\n%s", key, b)
		}
	}
	var back Verdict
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("verdict does not round-trip: %v", err)
	}
	if !back.Pass || back.Run.Seed != 42 || len(back.Classes) != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	// Same inputs, same bytes: CI can diff artifacts across runs.
	b2, err := v.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("verdict JSON is not stable")
	}
}
