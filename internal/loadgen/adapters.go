package loadgen

import (
	"sort"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/classifier"
	"hermes/internal/workload"
)

// Adapter sub-stream labels (see schedule.go).
const (
	labelBGPTrace uint64 = 100 + iota
	labelJobSalt
)

// FromBGP synthesizes a BGPStream-shaped update trace, replays it through
// a router's best-path selection, and converts the resulting FIB churn
// into a schedule: the §8.1.3 replay experiment as offered load. All
// events carry the given class — FIB updates are one traffic class from
// the switch's point of view.
func FromBGP(seed int64, name string, cfg bgp.TraceConfig, class uint8) *Schedule {
	rng := workload.SubStream(seed, labelBGPTrace)
	router := bgp.NewRouter(name)
	var events []Event
	for _, u := range bgp.GenerateTrace(rng, cfg) {
		for _, op := range router.Process(u) {
			var kind OpKind
			switch op.Type {
			case bgp.FIBInsert:
				kind = OpInsert
			case bgp.FIBDelete:
				kind = OpDelete
			case bgp.FIBModify:
				kind = OpModify
			default:
				continue
			}
			events = append(events, Event{At: op.At, Op: kind, Class: class, Rule: op.Rule()})
		}
	}
	return &Schedule{Name: "bgp-" + name, Seed: seed, Events: events}
}

// FromJobs converts shuffle-storm job arrivals into per-flow rule churn:
// every flow of a job inserts a rule at the job's arrival (plus the
// flow's start delay) and, when hold > 0, deletes it hold later — the
// flow completed and its rule is reclaimed. Short jobs (the
// latency-sensitive bulk of the trace, Fig. 1) are tagged shortClass,
// long jobs longClass, so an SLO can hold the short-job tail to a tight
// budget while bulk transfers get a loose one.
//
// Rule IDs are numbered from firstID in (job, flow) order, so the same
// jobs always yield the same schedule.
func FromJobs(jobs []workload.Job, hold time.Duration, shortClass, longClass uint8, firstID classifier.RuleID) *Schedule {
	if firstID == 0 {
		firstID = 1
	}
	var events []Event
	id := firstID
	for _, j := range jobs {
		class := longClass
		if j.Short() {
			class = shortClass
		}
		for fi, f := range j.Flows {
			at := j.Arrival + f.StartDelay
			// The flow's endpoints shape the match; the salt keeps
			// distinct (job, flow) pairs in distinct /24s even when
			// endpoints repeat.
			h := mix64(uint64(j.ID)<<20 ^ uint64(fi) ^ uint64(f.Src)<<42 ^ uint64(f.Dst)<<52 ^ labelJobSalt)
			r := classifier.Rule{
				ID:       id,
				Match:    classifier.DstMatch(classifier.NewPrefix(uint32(h), 24)),
				Priority: int32(h>>32)%16 + 1,
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(uint64(f.Dst) % 48)},
			}
			events = append(events, Event{At: at, Op: OpInsert, Class: class, Rule: r})
			if hold > 0 {
				events = append(events, Event{At: at + hold, Op: OpDelete, Class: class, Rule: r})
			}
			id++
		}
	}
	// Start delays and holds interleave across jobs; replay order is time
	// order. The sort is stable so simultaneous events keep (job, flow)
	// order and the schedule stays deterministic.
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Schedule{Name: "shuffle-storm", Events: events}
}
