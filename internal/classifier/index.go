package classifier

// RuleIndex is an immutable packet-classification snapshot over a rule list
// in first-match order (highest priority first, earlier-inserted wins ties —
// i.e. TCAM order). It is built once and never mutated, so any number of
// goroutines may call Lookup concurrently without locks; the Hermes agent
// publishes one behind an atomic pointer as its lock-free read path.
//
// Internally it is a binary trie over destination prefixes whose nodes hold
// ascending slot positions into the rule list. A packet lookup walks the
// ≤33 nodes on the destination address's bit path and keeps the smallest
// slot whose source prefix also matches — the smallest slot is by
// construction the rule hardware first-match would return.
type RuleIndex struct {
	rules []Rule
	root  *indexNode
}

type indexNode struct {
	children [2]*indexNode
	// slots are positions into rules, ascending, of the rules whose Dst
	// ends exactly at this node.
	slots []int32
}

// NewRuleIndex builds a snapshot index over rules, which must already be in
// first-match order. The index takes ownership of the slice: callers must
// not mutate it afterwards (Table.Rules already hands out a fresh copy).
func NewRuleIndex(rules []Rule) *RuleIndex {
	ix := &RuleIndex{rules: rules, root: &indexNode{}}
	for i := range rules {
		n := ix.root
		p := rules[i].Match.Dst
		for depth := uint8(0); depth < p.Len; depth++ {
			bit := (p.Addr >> (31 - depth)) & 1
			if n.children[bit] == nil {
				n.children[bit] = &indexNode{}
			}
			n = n.children[bit]
		}
		n.slots = append(n.slots, int32(i))
	}
	return ix
}

// Len reports the number of indexed rules.
func (ix *RuleIndex) Len() int { return len(ix.rules) }

// Rules returns the indexed rules in first-match order. The returned slice
// is the index's backing store: read-only.
func (ix *RuleIndex) Rules() []Rule { return ix.rules }

// Lookup returns the first-match rule for the packet, exactly as a linear
// scan of the underlying ordered rule list would. Zero allocations.
func (ix *RuleIndex) Lookup(dst, src uint32) (Rule, bool) {
	best := ix.lookupSlot(dst, src)
	if best < 0 {
		return Rule{}, false
	}
	return ix.rules[best], true
}

// lookupSlot returns the smallest matching slot for the packet, or -1. The
// slot is the rule's position in the index's first-match order; sharded
// indexes map it back to a global position to combine across shards.
func (ix *RuleIndex) lookupSlot(dst, src uint32) int32 {
	best := int32(-1)
	n := ix.root
	for depth := uint8(0); n != nil; depth++ {
		for _, s := range n.slots {
			if best >= 0 && s >= best {
				// Slots are ascending per node; nothing below improves.
				break
			}
			if ix.rules[s].Match.Src.MatchesAddr(src) {
				best = s
				break
			}
		}
		if depth == 32 {
			break
		}
		n = n.children[(dst>>(31-depth))&1]
	}
	return best
}
