package classifier

// This file implements Algorithm 1 of the paper (PartitionNewRule) and the
// bookkeeping needed to undo it.
//
// Hermes inserts new rules into the shadow table, which is looked up before
// the main table. A new rule that overlaps a *higher-priority* rule already
// in the main table would therefore shadow it incorrectly (Fig. 4b). To
// preserve monolithic-table semantics, the region of the new rule that
// collides with higher-priority main-table rules is cut away:
//
//  (i)   detect overlaps between the new rule and main-table rules with
//        higher priority (DetectOverlap, via the Trie);
//  (ii)  eliminate each overlap by recursively cutting the new rule's match
//        region (EliminateOverlap, via Match.Subtract);
//  (iii) merge the surviving fragments into a minimal rule set (Merge, via
//        MergeMatches).
//
// The three overlap cases of Fig. 5 fall out naturally: (a) a containing
// higher-priority rule leaves nothing, so the new rule is redundant and is
// not inserted; (b)/(c) partial overlaps leave fragments that are installed
// in the shadow table in place of the original rule.

// Partition is the result of PartitionNewRule for one new rule.
type Partition struct {
	// Original is the rule as requested by the controller.
	Original Rule
	// Parts are the rules actually installed in the shadow table. Each
	// carries the original action and priority but a cut-down match. When no
	// main-table rule overlapped, Parts is exactly {Original}. When a
	// higher-priority main-table rule subsumed the original (Fig. 5a), Parts
	// is empty and the rule is redundant.
	Parts []Rule
	// Cause lists the IDs of the higher-priority main-table rules whose
	// overlap forced the cut. Deleting any of them requires re-evaluating
	// this partition (Fig. 6).
	Cause []RuleID
	// Overflow reports that partitioning was abandoned because the
	// fragment count exceeded the caller's cap — the cheap detection
	// behind the paper's footnote-5 Gate Keeper escape hatch (rules like
	// a low-priority 0.0.0.0/0 would shatter against the whole table).
	Overflow bool
}

// Redundant reports whether the original rule was wholly subsumed and
// nothing needs to be installed.
func (p *Partition) Redundant() bool { return len(p.Parts) == 0 }

// WasCut reports whether the rule had to be fragmented (or dropped), i.e.
// whether Parts differs from {Original}.
func (p *Partition) WasCut() bool {
	return len(p.Cause) > 0
}

// PartitionNewRule implements Algorithm 1. mainIndex is the trie over the
// current main-table rules; nextID mints IDs for the generated partition
// rules (the original rule's ID is reused when no cut is needed, so the
// common fast path allocates nothing).
//
// Rules in the main table with priority >= the new rule's priority cut the
// new rule. Equal priority is treated as "existing rule wins" because in a
// monolithic TCAM the earlier-inserted rule sits higher and would match
// first. Callers that know the true insertion order (the Hermes agent) use
// PartitionAgainst with a seq-aware wins predicate instead.
func PartitionNewRule(newRule Rule, mainIndex *Trie, nextID func() RuleID) Partition {
	wins := func(existing Rule) bool { return existing.Priority >= newRule.Priority }
	return PartitionAgainst(newRule, mainIndex, wins, nextID, true, 0)
}

// PartitionAgainst is the generalized Algorithm 1: wins reports whether an
// existing main-table rule would beat newRule in a monolithic table (the
// caller encodes priority and insertion-order tie-breaking). merge controls
// the line-7 optimal merge; ablations disable it. maxRegions, when
// positive, abandons partitioning (setting Overflow) as soon as the
// working fragment set exceeds it, so the Gate Keeper can divert
// pathological rules to the main table without paying the full cutting
// cost first.
func PartitionAgainst(newRule Rule, mainIndex *Trie, wins func(existing Rule) bool, nextID func() RuleID, merge bool, maxRegions int) Partition {
	p := Partition{Original: newRule}
	regions := []Match{newRule.Match}
	for _, r := range mainIndex.Overlapping(newRule.Match) {
		if r.ID == newRule.ID || !wins(r) {
			continue // the new rule legitimately wins; shadow-first order is correct
		}
		p.Cause = append(p.Cause, r.ID)
		var next []Match
		for _, region := range regions {
			next = append(next, region.Subtract(r.Match)...)
		}
		regions = next
		if len(regions) == 0 {
			break
		}
		if maxRegions > 0 && len(regions) > maxRegions {
			p.Overflow = true
			return p
		}
	}
	if len(p.Cause) == 0 {
		// Fast path: untouched.
		p.Parts = []Rule{newRule}
		return p
	}
	if merge {
		regions = MergeMatches(regions)
	}
	for _, m := range regions {
		p.Parts = append(p.Parts, Rule{
			ID:       nextID(),
			Match:    m,
			Priority: newRule.Priority,
			Action:   newRule.Action,
		})
	}
	return p
}

// PartitionMap tracks, for every original rule that was cut, the partition
// that replaced it — the "mapping set M" of Algorithm 1. It answers the two
// questions rule deletion must ask (§4.1): "was this shadow rule
// partitioned?" and "which partitions depended on this main-table rule?".
type PartitionMap struct {
	byOriginal map[RuleID]*Partition // original rule ID -> its partition
	byCause    map[RuleID][]RuleID   // main rule ID -> original rule IDs cut by it
	byPart     map[RuleID]RuleID     // partition rule ID -> original rule ID
}

// NewPartitionMap returns an empty map.
func NewPartitionMap() *PartitionMap {
	return &PartitionMap{
		byOriginal: make(map[RuleID]*Partition),
		byCause:    make(map[RuleID][]RuleID),
		byPart:     make(map[RuleID]RuleID),
	}
}

// Record stores a partition that actually cut its rule. Partitions with no
// cause are not recorded (nothing to undo).
func (m *PartitionMap) Record(p Partition) {
	if !p.WasCut() {
		return
	}
	cp := p
	m.byOriginal[p.Original.ID] = &cp
	for _, c := range p.Cause {
		m.byCause[c] = append(m.byCause[c], p.Original.ID)
	}
	for _, part := range p.Parts {
		m.byPart[part.ID] = p.Original.ID
	}
}

// Lookup returns the partition recorded for an original rule ID.
func (m *PartitionMap) Lookup(original RuleID) (*Partition, bool) {
	p, ok := m.byOriginal[original]
	return p, ok
}

// OriginalOf maps a partition-rule ID back to the original rule ID. The
// second result is false when id is not a partition rule.
func (m *PartitionMap) OriginalOf(id RuleID) (RuleID, bool) {
	o, ok := m.byPart[id]
	return o, ok
}

// DependentsOf returns the original-rule IDs whose partitions were caused by
// the given main-table rule. Deleting that main-table rule requires
// un-partitioning each of them (delete the fragments, re-insert the
// original; Fig. 6).
func (m *PartitionMap) DependentsOf(mainRule RuleID) []RuleID {
	return append([]RuleID(nil), m.byCause[mainRule]...)
}

// Remove erases the record for an original rule (after its fragments have
// been deleted or the original restored).
func (m *PartitionMap) Remove(original RuleID) {
	p, ok := m.byOriginal[original]
	if !ok {
		return
	}
	delete(m.byOriginal, original)
	for _, c := range p.Cause {
		deps := m.byCause[c]
		for i, d := range deps {
			if d == original {
				m.byCause[c] = append(deps[:i], deps[i+1:]...)
				break
			}
		}
		if len(m.byCause[c]) == 0 {
			delete(m.byCause, c)
		}
	}
	for _, part := range p.Parts {
		delete(m.byPart, part.ID)
	}
}

// Len reports the number of recorded partitions.
func (m *PartitionMap) Len() int { return len(m.byOriginal) }
