package classifier

import (
	"strings"
	"testing"
)

// FuzzParsePrefix hammers the prefix parser with arbitrary strings:
// it must never panic (NewPrefix panics on plen > 32, so the parser's
// validation is load-bearing), and everything it accepts must be
// canonical and survive a String→Parse round trip.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "255.255.255.255/32", "0.0.0.0/0", "1.2.3.4",
		"192.168.1.7/24", "1.2.3.4/33", "256.1.1.1/5", "1.2.3/8",
		"a.b.c.d/8", "1.2.3.4/", "/8", "", "....", "1.2.3.4/08",
		"010.1.1.1/8", "-1.2.3.4/8", "1.2.3.4/-1", "1.2.3.4/999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Len > 32 {
			t.Fatalf("ParsePrefix(%q) accepted length %d", s, p.Len)
		}
		if p.Addr&^p.Mask() != 0 {
			t.Fatalf("ParsePrefix(%q) = %v: host bits set beyond /%d", s, p, p.Len)
		}
		rendered := p.String()
		q, err := ParsePrefix(rendered)
		if err != nil {
			t.Fatalf("String output %q of ParsePrefix(%q) does not re-parse: %v", rendered, s, err)
		}
		if q != p {
			t.Fatalf("round trip changed prefix: %v → %q → %v", p, rendered, q)
		}
		if !p.MatchesAddr(p.Addr) {
			t.Fatalf("prefix %v does not match its own base address", p)
		}
		if strings.Count(rendered, ".") != 3 {
			t.Fatalf("String() produced malformed dotted quad %q", rendered)
		}
	})
}
