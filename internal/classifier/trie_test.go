package classifier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieInsertGetDelete(t *testing.T) {
	var tr Trie
	r1 := Rule{ID: 1, Match: m("10.0.0.0/8", "0.0.0.0/0"), Priority: 10}
	r2 := Rule{ID: 2, Match: m("10.0.0.0/8", "0.0.0.0/0"), Priority: 20}
	r3 := Rule{ID: 3, Match: m("10.1.0.0/16", "0.0.0.0/0"), Priority: 5}
	tr.Insert(r1)
	tr.Insert(r2)
	tr.Insert(r3)

	if tr.Size() != 3 {
		t.Fatalf("Size = %d, want 3", tr.Size())
	}
	if got, ok := tr.Get(r2.Match.Dst, 2); !ok || got.Priority != 20 {
		t.Errorf("Get(2) = %v, %v", got, ok)
	}
	if !tr.Delete(r1.Match.Dst, 1) {
		t.Error("Delete(1) failed")
	}
	if tr.Delete(r1.Match.Dst, 1) {
		t.Error("double Delete(1) succeeded")
	}
	if tr.Size() != 2 {
		t.Errorf("Size after delete = %d, want 2", tr.Size())
	}
	if _, ok := tr.Get(r1.Match.Dst, 1); ok {
		t.Error("deleted rule still present")
	}
	// Deleting from a prefix that has no node.
	if tr.Delete(MustParsePrefix("172.16.0.0/12"), 99) {
		t.Error("Delete on absent prefix succeeded")
	}
}

func TestTrieOverlappingAncestorsAndDescendants(t *testing.T) {
	var tr Trie
	rules := []Rule{
		{ID: 1, Match: DstMatch(MustParsePrefix("0.0.0.0/0"))},
		{ID: 2, Match: DstMatch(MustParsePrefix("192.168.0.0/16"))},
		{ID: 3, Match: DstMatch(MustParsePrefix("192.168.1.0/24"))},
		{ID: 4, Match: DstMatch(MustParsePrefix("192.168.1.0/26"))},
		{ID: 5, Match: DstMatch(MustParsePrefix("192.168.2.0/24"))},
		{ID: 6, Match: DstMatch(MustParsePrefix("10.0.0.0/8"))},
	}
	for _, r := range rules {
		tr.Insert(r)
	}
	got := tr.Overlapping(DstMatch(MustParsePrefix("192.168.1.0/24")))
	ids := map[RuleID]bool{}
	for _, r := range got {
		ids[r.ID] = true
	}
	// Overlapping /24: ancestors 0/0, /16; itself /24; descendant /26.
	for _, want := range []RuleID{1, 2, 3, 4} {
		if !ids[want] {
			t.Errorf("missing overlap with rule %d", want)
		}
	}
	for _, not := range []RuleID{5, 6} {
		if ids[not] {
			t.Errorf("rule %d must not overlap", not)
		}
	}
}

func TestTrieOverlappingSrcFilter(t *testing.T) {
	var tr Trie
	tr.Insert(Rule{ID: 1, Match: m("192.168.1.0/24", "10.0.0.0/8")})
	tr.Insert(Rule{ID: 2, Match: m("192.168.1.0/24", "172.16.0.0/12")})
	got := tr.Overlapping(m("192.168.1.0/26", "10.1.0.0/16"))
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("Overlapping with src filter = %v", got)
	}
}

func TestTrieOverlappingBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trie
		n := 1 + r.Intn(40)
		rules := make([]Rule, n)
		for i := range rules {
			rules[i] = Rule{ID: RuleID(i + 1), Match: randomMatch(r)}
			tr.Insert(rules[i])
		}
		q := randomMatch(r)
		want := map[RuleID]bool{}
		for _, rr := range rules {
			if rr.Match.Overlaps(q) {
				want[rr.ID] = true
			}
		}
		got := tr.Overlapping(q)
		if len(got) != len(want) {
			return false
		}
		for _, rr := range got {
			if !want[rr.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTrieAllAndClear(t *testing.T) {
	var tr Trie
	for i := 0; i < 10; i++ {
		tr.Insert(Rule{ID: RuleID(i), Match: DstMatch(NewPrefix(uint32(i)<<24, 8))})
	}
	if got := tr.All(); len(got) != 10 {
		t.Errorf("All = %d rules, want 10", len(got))
	}
	tr.Clear()
	if tr.Size() != 0 || len(tr.All()) != 0 {
		t.Error("Clear did not empty trie")
	}
	// Overlapping on empty trie.
	if got := tr.Overlapping(DstMatch(MustParsePrefix("0.0.0.0/0"))); got != nil {
		t.Errorf("Overlapping on empty trie = %v", got)
	}
}
