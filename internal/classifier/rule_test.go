package classifier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func m(dst, src string) Match {
	return Match{Dst: MustParsePrefix(dst), Src: MustParsePrefix(src)}
}

func TestMatchOverlapContains(t *testing.T) {
	a := m("192.168.0.0/16", "10.0.0.0/8")
	b := m("192.168.1.0/24", "10.1.0.0/16")
	c := m("192.168.1.0/24", "172.16.0.0/12")

	if !a.Contains(b) {
		t.Error("a should contain b (both dims nest)")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested matches overlap")
	}
	if a.Overlaps(c) {
		t.Error("src dimensions disjoint: no overlap")
	}
	if b.Contains(a) {
		t.Error("smaller region cannot contain larger")
	}
}

func TestMatchSubtractDstOnly(t *testing.T) {
	// FIB-style: both src = 0/0. Falls back to pure dst subtraction; the
	// src-intersection branch contributes nothing because src\src = ∅.
	a := DstMatch(MustParsePrefix("192.168.1.0/24"))
	b := DstMatch(MustParsePrefix("192.168.1.0/26"))
	parts := a.Subtract(b)
	if len(parts) != 2 {
		t.Fatalf("Subtract = %v, want 2 parts", parts)
	}
	for _, p := range parts {
		if p.Src.Len != 0 {
			t.Errorf("src must remain 0/0, got %v", p.Src)
		}
		if p.Overlaps(b) {
			t.Errorf("part %v overlaps subtrahend", p)
		}
	}
}

func TestMatchSubtractTwoDimensional(t *testing.T) {
	a := m("192.168.0.0/16", "0.0.0.0/0")
	b := m("192.168.1.0/24", "10.0.0.0/8")
	parts := a.Subtract(b)
	if len(parts) == 0 {
		t.Fatal("partial overlap must leave fragments")
	}
	r := rand.New(rand.NewSource(7))
	for k := 0; k < 2000; k++ {
		dst := addrInside(r, a.Dst)
		src := r.Uint32()
		want := a.MatchesPacket(dst, src) && !b.MatchesPacket(dst, src)
		got := false
		for _, p := range parts {
			if p.MatchesPacket(dst, src) {
				got = true
				break
			}
		}
		if got != want {
			t.Fatalf("packet (%08x,%08x): got %v want %v", dst, src, got, want)
		}
	}
	// Fragments must be pairwise disjoint.
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Overlaps(parts[j]) {
				t.Fatalf("fragments %v and %v overlap", parts[i], parts[j])
			}
		}
	}
}

func randomMatch(r *rand.Rand) Match {
	// Cluster to force overlaps frequently.
	dst := NewPrefix(0xC0A80000|(r.Uint32()&0x0000FFFF), uint8(12+r.Intn(21)))
	src := Prefix{}
	if r.Intn(2) == 0 {
		src = NewPrefix(0x0A000000|(r.Uint32()&0x00FFFFFF), uint8(8+r.Intn(25)))
	}
	return Match{Dst: dst, Src: src}
}

func TestMatchSubtractProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomMatch(r), randomMatch(r)
		parts := a.Subtract(b)
		for i, p := range parts {
			if !a.Contains(p) {
				return false
			}
			if p.Overlaps(b) {
				return false
			}
			for j := i + 1; j < len(parts); j++ {
				if p.Overlaps(parts[j]) {
					return false
				}
			}
		}
		for k := 0; k < 128; k++ {
			dst := addrInside(r, a.Dst)
			src := addrInside(r, a.Src)
			want := a.MatchesPacket(dst, src) && !b.MatchesPacket(dst, src)
			got := false
			for _, p := range parts {
				if p.MatchesPacket(dst, src) {
					got = true
					break
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMergeMatches(t *testing.T) {
	in := []Match{
		m("192.168.1.0/26", "0.0.0.0/0"),
		m("192.168.1.64/26", "0.0.0.0/0"),
		m("192.168.1.128/25", "0.0.0.0/0"),
	}
	out := MergeMatches(in)
	if len(out) != 1 || out[0] != m("192.168.1.0/24", "0.0.0.0/0") {
		t.Errorf("MergeMatches = %v", out)
	}
}

func TestMergeMatchesMixedSrc(t *testing.T) {
	in := []Match{
		m("192.168.1.0/25", "10.0.0.0/9"),
		m("192.168.1.0/25", "10.128.0.0/9"),
		m("192.168.1.128/25", "10.0.0.0/8"),
	}
	out := MergeMatches(in)
	// First two merge on src into (.0/25, 10/8); then dst-merge with the
	// third into (192.168.1.0/24, 10/8).
	if len(out) != 1 || out[0] != m("192.168.1.0/24", "10.0.0.0/8") {
		t.Errorf("MergeMatches = %v", out)
	}
}

func TestMergeMatchesPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		in := make([]Match, n)
		for i := range in {
			in[i] = randomMatch(r)
		}
		out := MergeMatches(in)
		if len(out) > len(in) {
			return false
		}
		covers := func(set []Match, dst, src uint32) bool {
			for _, mm := range set {
				if mm.MatchesPacket(dst, src) {
					return true
				}
			}
			return false
		}
		for k := 0; k < 128; k++ {
			base := in[r.Intn(n)]
			dst := addrInside(r, base.Dst)
			src := addrInside(r, base.Src)
			if covers(in, dst, src) != covers(out, dst, src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActionString(t *testing.T) {
	if (Action{Type: ActionForward, Port: 3}).String() != "fwd:3" {
		t.Error("forward action string")
	}
	if (Action{Type: ActionDrop}).String() != "drop" {
		t.Error("drop action string")
	}
	if (Action{Type: ActionController}).String() != "ctrl" {
		t.Error("controller action string")
	}
	if (Action{Type: ActionGotoNext}).String() != "goto-next" {
		t.Error("goto action string")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{ID: 7, Match: m("10.0.0.0/8", "0.0.0.0/0"), Priority: 5, Action: Action{Type: ActionDrop}}
	if got := r.String(); got == "" {
		t.Error("empty rule string")
	}
}
