package classifier

import "fmt"

// ActionType enumerates the forwarding actions a rule can take. The set
// mirrors what the paper's examples use (forward to a port, drop, punt to
// the controller) plus the table-miss "goto next table" behaviour Hermes
// configures on shadow tables (§3, §6).
type ActionType uint8

const (
	// ActionForward sends matching packets out Action.Port.
	ActionForward ActionType = iota
	// ActionDrop discards matching packets.
	ActionDrop
	// ActionController punts matching packets to the SDN controller.
	ActionController
	// ActionGotoNext continues lookup in the next table in the pipeline.
	ActionGotoNext
)

func (t ActionType) String() string {
	switch t {
	case ActionForward:
		return "fwd"
	case ActionDrop:
		return "drop"
	case ActionController:
		return "ctrl"
	case ActionGotoNext:
		return "goto-next"
	default:
		return fmt.Sprintf("action(%d)", uint8(t))
	}
}

// Action is what a matching rule does with a packet.
type Action struct {
	Type ActionType
	Port int // output port for ActionForward
}

func (a Action) String() string {
	if a.Type == ActionForward {
		return fmt.Sprintf("fwd:%d", a.Port)
	}
	return a.Type.String()
}

// Match is the region of header space a rule covers: a destination prefix
// and a source prefix. FIB-style rules leave Src as the zero value (0/0).
// Two matches overlap iff both dimensions overlap.
type Match struct {
	Dst Prefix
	Src Prefix
}

// DstMatch is a convenience constructor for FIB-style destination-only
// matches.
func DstMatch(dst Prefix) Match { return Match{Dst: dst} }

func (m Match) String() string {
	if m.Src.Len == 0 {
		return "dst=" + m.Dst.String()
	}
	return "dst=" + m.Dst.String() + ",src=" + m.Src.String()
}

// Overlaps reports whether the two match regions share any packet.
func (m Match) Overlaps(o Match) bool {
	return m.Dst.Overlaps(o.Dst) && m.Src.Overlaps(o.Src)
}

// Contains reports whether m fully contains o.
func (m Match) Contains(o Match) bool {
	return m.Dst.Contains(o.Dst) && m.Src.Contains(o.Src)
}

// MatchesPacket reports whether the (dst, src) address pair falls in the
// region.
func (m Match) MatchesPacket(dst, src uint32) bool {
	return m.Dst.MatchesAddr(dst) && m.Src.MatchesAddr(src)
}

// Subtract returns a set of match regions exactly covering m minus o.
// The result is empty when o contains m and {m} when they do not overlap.
//
// For the two-dimensional case the difference decomposes into (i) the dst
// slices of m outside o's dst, each keeping m's full src range, and (ii) the
// dst intersection combined with m's src minus o's src. Because prefixes
// only nest, the intersection of two overlapping prefixes is simply the
// longer one.
func (m Match) Subtract(o Match) []Match {
	if !m.Overlaps(o) {
		return []Match{m}
	}
	if o.Contains(m) {
		return nil
	}
	var out []Match
	// Dst slices outside o.Dst.
	for _, d := range m.Dst.Subtract(o.Dst) {
		out = append(out, Match{Dst: d, Src: m.Src})
	}
	// Dst intersection: the longer of the two overlapping prefixes.
	dstInt := m.Dst
	if o.Dst.Len > dstInt.Len {
		dstInt = o.Dst
	}
	// Within the dst intersection, keep src slices outside o.Src.
	for _, s := range m.Src.Subtract(o.Src) {
		out = append(out, Match{Dst: dstInt, Src: s})
	}
	return out
}

// MergeMatches minimizes a set of match regions that all carry the same
// action and priority: regions with identical src merge their dst prefixes,
// regions with identical dst merge their src prefixes, and regions contained
// in other regions are dropped. The loop runs to a fixpoint.
func MergeMatches(in []Match) []Match {
	regions := append([]Match(nil), in...)
	for {
		changed := false
		// Group by src, merge dst.
		bySrc := make(map[Prefix][]Prefix)
		for _, r := range regions {
			bySrc[r.Src] = append(bySrc[r.Src], r.Dst)
		}
		var next []Match
		for src, dsts := range bySrc {
			merged := MergePrefixes(dsts)
			if len(merged) < len(dsts) {
				changed = true
			}
			for _, d := range merged {
				next = append(next, Match{Dst: d, Src: src})
			}
		}
		// Group by dst, merge src.
		byDst := make(map[Prefix][]Prefix)
		for _, r := range next {
			byDst[r.Dst] = append(byDst[r.Dst], r.Src)
		}
		next = next[:0]
		for dst, srcs := range byDst {
			merged := MergePrefixes(srcs)
			if len(merged) < len(srcs) {
				changed = true
			}
			for _, s := range merged {
				next = append(next, Match{Dst: dst, Src: s})
			}
		}
		// Drop regions contained in other regions.
		kept := make([]Match, 0, len(next))
		for i, r := range next {
			contained := false
			for j, o := range next {
				if i == j {
					continue
				}
				if o.Contains(r) && !(r.Contains(o) && i < j) {
					contained = true
					break
				}
			}
			if !contained {
				kept = append(kept, r)
			}
		}
		if len(kept) < len(next) {
			changed = true
		}
		regions = kept
		if !changed {
			return sortMatches(regions)
		}
	}
}

func sortMatches(ms []Match) []Match {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && matchLess(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	return ms
}

func matchLess(a, b Match) bool {
	if a.Dst != b.Dst {
		return less(a.Dst, b.Dst)
	}
	return less(a.Src, b.Src)
}

// RuleID uniquely identifies a rule across the logical table. IDs are
// assigned by the caller (the Hermes agent or the test harness).
type RuleID uint64

// Rule is one logical flow-table entry. Higher Priority wins; ties are
// broken by insertion order (the earlier rule wins), matching TCAM
// first-match semantics.
type Rule struct {
	ID       RuleID
	Match    Match
	Priority int32
	Action   Action
}

func (r Rule) String() string {
	return fmt.Sprintf("rule#%d{%s prio=%d %s}", r.ID, r.Match, r.Priority, r.Action)
}

// Overlaps reports whether two rules' match regions intersect.
func (r Rule) Overlaps(o Rule) bool { return r.Match.Overlaps(o.Match) }
