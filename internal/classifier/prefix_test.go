package classifier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in      string
		want    Prefix
		wantErr bool
	}{
		{"192.168.1.0/24", Prefix{0xC0A80100, 24}, false},
		{"10.0.0.0/8", Prefix{0x0A000000, 8}, false},
		{"0.0.0.0/0", Prefix{0, 0}, false},
		{"255.255.255.255/32", Prefix{0xFFFFFFFF, 32}, false},
		{"1.2.3.4", Prefix{0x01020304, 32}, false},
		// Non-canonical host bits must be masked away.
		{"192.168.1.5/24", Prefix{0xC0A80100, 24}, false},
		{"192.168.1.0/33", Prefix{}, true},
		{"192.168.1/24", Prefix{}, true},
		{"192.168.1.x/24", Prefix{}, true},
		{"300.0.0.1/8", Prefix{}, true},
	}
	for _, c := range cases {
		got, err := ParsePrefix(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePrefix(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrefix(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPrefixString(t *testing.T) {
	for _, s := range []string{"192.168.1.0/24", "0.0.0.0/0", "10.1.2.3/32"} {
		if got := MustParsePrefix(s).String(); got != s {
			t.Errorf("round trip %q = %q", s, got)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p24 := MustParsePrefix("192.168.1.0/24")
	p26 := MustParsePrefix("192.168.1.0/26")
	p26b := MustParsePrefix("192.168.1.64/26")
	other := MustParsePrefix("10.0.0.0/8")
	all := MustParsePrefix("0.0.0.0/0")

	if !p24.Contains(p26) || !p24.Contains(p26b) {
		t.Error("p24 should contain its /26 halves")
	}
	if p26.Contains(p24) {
		t.Error("/26 must not contain its /24 parent")
	}
	if !p24.Contains(p24) {
		t.Error("a prefix contains itself")
	}
	if p26.Contains(p26b) || p26b.Contains(p26) {
		t.Error("disjoint siblings must not contain each other")
	}
	if !all.Contains(other) || !all.Contains(p24) {
		t.Error("0/0 contains everything")
	}
	if p24.Overlaps(other) {
		t.Error("192.168.1.0/24 and 10/8 do not overlap")
	}
	if !p24.Overlaps(p26) || !p26.Overlaps(p24) {
		t.Error("nested prefixes overlap symmetrically")
	}
}

func TestPrefixChildrenParentSibling(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/24")
	lo, hi := p.Children()
	if lo != MustParsePrefix("192.168.1.0/25") || hi != MustParsePrefix("192.168.1.128/25") {
		t.Errorf("children = %v,%v", lo, hi)
	}
	if lo.Parent() != p || hi.Parent() != p {
		t.Error("parent of children must be original")
	}
	if lo.Sibling() != hi || hi.Sibling() != lo {
		t.Error("siblings must mirror")
	}
	defer func() {
		if recover() == nil {
			t.Error("Children on /32 must panic")
		}
	}()
	MustParsePrefix("1.2.3.4/32").Children()
}

func TestSubtractExamples(t *testing.T) {
	p24 := MustParsePrefix("192.168.1.0/24")
	p26 := MustParsePrefix("192.168.1.0/26")

	// The paper's Fig. 4c example: 192.168.1.0/24 minus 192.168.1.0/26 is
	// {192.168.1.64/26, 192.168.1.128/25}.
	got := p24.Subtract(p26)
	SortPrefixes(got)
	want := []Prefix{
		MustParsePrefix("192.168.1.64/26"),
		MustParsePrefix("192.168.1.128/25"),
	}
	if len(got) != len(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtract = %v, want %v", got, want)
		}
	}

	// Disjoint: unchanged.
	if r := p24.Subtract(MustParsePrefix("10.0.0.0/8")); len(r) != 1 || r[0] != p24 {
		t.Errorf("disjoint subtract = %v", r)
	}
	// Contained: empty.
	if r := p26.Subtract(p24); r != nil {
		t.Errorf("subtract of containing prefix = %v, want nil", r)
	}
	// Self: empty.
	if r := p24.Subtract(p24); r != nil {
		t.Errorf("self subtract = %v, want nil", r)
	}
}

// randomPrefix draws a prefix with length biased toward realistic FIB
// lengths.
func randomPrefix(r *rand.Rand) Prefix {
	plen := uint8(r.Intn(33))
	return NewPrefix(r.Uint32(), plen)
}

// addrInside returns a uniformly random address inside p.
func addrInside(r *rand.Rand, p Prefix) uint32 {
	return p.Addr | (r.Uint32() & ^p.Mask())
}

func TestSubtractProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p, q := randomPrefix(rr), randomPrefix(rr)
		pieces := p.Subtract(q)
		// Pieces must be inside p, disjoint from q, and mutually disjoint.
		for i, a := range pieces {
			if !p.Contains(a) {
				t.Logf("piece %v outside %v", a, p)
				return false
			}
			if a.Overlaps(q) {
				t.Logf("piece %v overlaps subtrahend %v", a, q)
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if a.Overlaps(pieces[j]) {
					t.Logf("pieces %v and %v overlap", a, pieces[j])
					return false
				}
			}
		}
		// Membership check on sampled addresses: addr ∈ p\q ⇔ addr in some
		// piece.
		for k := 0; k < 64; k++ {
			addr := addrInside(r, p)
			want := p.MatchesAddr(addr) && !q.MatchesAddr(addr)
			got := false
			for _, a := range pieces {
				if a.MatchesAddr(addr) {
					got = true
					break
				}
			}
			if got != want {
				t.Logf("addr %08x: got %v want %v (p=%v q=%v pieces=%v)", addr, got, want, p, q, pieces)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergePrefixesSiblings(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("192.168.1.0/26"),
		MustParsePrefix("192.168.1.64/26"),
		MustParsePrefix("192.168.1.128/25"),
	}
	got := MergePrefixes(in)
	if len(got) != 1 || got[0] != MustParsePrefix("192.168.1.0/24") {
		t.Errorf("MergePrefixes = %v, want [192.168.1.0/24]", got)
	}
}

func TestMergePrefixesContainment(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"), // covered
		MustParsePrefix("192.168.0.0/16"),
	}
	got := MergePrefixes(in)
	if len(got) != 2 {
		t.Fatalf("MergePrefixes = %v, want 2 prefixes", got)
	}
	if got[0] != MustParsePrefix("10.0.0.0/8") || got[1] != MustParsePrefix("192.168.0.0/16") {
		t.Errorf("MergePrefixes = %v", got)
	}
}

func TestMergePrefixesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		in := make([]Prefix, n)
		for i := range in {
			// Cluster prefixes so merges actually happen.
			in[i] = NewPrefix(0xC0A80000|rr.Uint32()&0xFFFF, uint8(16+rr.Intn(17)))
		}
		out := MergePrefixes(in)
		if len(out) > len(in) {
			return false
		}
		covers := func(set []Prefix, addr uint32) bool {
			for _, p := range set {
				if p.MatchesAddr(addr) {
					return true
				}
			}
			return false
		}
		// Coverage equivalence on sampled addresses.
		for k := 0; k < 128; k++ {
			addr := addrInside(r, in[rr.Intn(n)])
			if covers(in, addr) != covers(out, addr) {
				return false
			}
			addr = r.Uint32()
			if covers(in, addr) != covers(out, addr) {
				return false
			}
		}
		// Minimality: no two siblings, no containment.
		for i, a := range out {
			for j, b := range out {
				if i == j {
					continue
				}
				if a.Contains(b) {
					return false
				}
				if a.Len > 0 && b == a.Sibling() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumAddrs(t *testing.T) {
	if got := MustParsePrefix("0.0.0.0/0").NumAddrs(); got != 4294967296 {
		t.Errorf("/0 NumAddrs = %v", got)
	}
	if got := MustParsePrefix("1.2.3.4/32").NumAddrs(); got != 1 {
		t.Errorf("/32 NumAddrs = %v", got)
	}
	if got := MustParsePrefix("10.0.0.0/8").NumAddrs(); got != 1<<24 {
		t.Errorf("/8 NumAddrs = %v", got)
	}
}

func TestSortPrefixes(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("1.0.0.0/8"),
	}
	SortPrefixes(ps)
	if ps[0] != MustParsePrefix("1.0.0.0/8") || ps[1] != MustParsePrefix("10.0.0.0/8") || ps[2] != MustParsePrefix("10.0.0.0/16") {
		t.Errorf("SortPrefixes = %v", ps)
	}
}
