package classifier

// Trie is a binary trie over destination prefixes used by Hermes's Gate
// Keeper as the "efficient data structure to detect overlapping rules"
// (paper §3, Correctness). Rules are indexed by their destination prefix;
// because prefixes only nest, every rule whose destination overlaps a query
// lies either on the trie path down to the query prefix (ancestors, whose
// dst contains the query) or in the subtree rooted at it (descendants,
// contained by the query). Source-prefix overlap is then checked per
// candidate.
//
// The zero value is an empty trie.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	children [2]*trieNode
	rules    []Rule // rules whose Dst ends exactly at this node
}

// Size reports the number of rules in the trie.
func (t *Trie) Size() int { return t.size }

// Insert adds a rule to the index. Multiple rules may share a destination
// prefix.
func (t *Trie) Insert(r Rule) {
	if t.root == nil {
		t.root = &trieNode{}
	}
	n := t.root
	p := r.Match.Dst
	for depth := uint8(0); depth < p.Len; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{}
		}
		n = n.children[bit]
	}
	n.rules = append(n.rules, r)
	t.size++
}

// Delete removes the rule with the given ID from the node for prefix dst.
// It reports whether a rule was removed. Empty nodes are left in place;
// the trie is rebuilt wholesale on migration, which bounds garbage.
func (t *Trie) Delete(dst Prefix, id RuleID) bool {
	n := t.node(dst)
	if n == nil {
		return false
	}
	for i, r := range n.rules {
		if r.ID == id {
			n.rules = append(n.rules[:i], n.rules[i+1:]...)
			t.size--
			return true
		}
	}
	return false
}

// Get returns the rule with the given ID stored under dst, if present.
func (t *Trie) Get(dst Prefix, id RuleID) (Rule, bool) {
	n := t.node(dst)
	if n == nil {
		return Rule{}, false
	}
	for _, r := range n.rules {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

func (t *Trie) node(p Prefix) *trieNode {
	n := t.root
	for depth := uint8(0); n != nil && depth < p.Len; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		n = n.children[bit]
	}
	return n
}

// Overlapping returns every indexed rule whose match region overlaps m.
func (t *Trie) Overlapping(m Match) []Rule {
	if t.root == nil {
		return nil
	}
	var out []Rule
	collect := func(rules []Rule) {
		for _, r := range rules {
			if r.Match.Src.Overlaps(m.Src) {
				out = append(out, r)
			}
		}
	}
	// Walk the path to m.Dst: ancestors (dst contains m.Dst).
	n := t.root
	for depth := uint8(0); depth < m.Dst.Len; depth++ {
		collect(n.rules)
		bit := (m.Dst.Addr >> (31 - depth)) & 1
		n = n.children[bit]
		if n == nil {
			return out
		}
	}
	// Subtree at m.Dst: the node itself plus descendants (dst contained in
	// m.Dst).
	var walk func(*trieNode)
	walk = func(nd *trieNode) {
		collect(nd.rules)
		if nd.children[0] != nil {
			walk(nd.children[0])
		}
		if nd.children[1] != nil {
			walk(nd.children[1])
		}
	}
	walk(n)
	return out
}

// All returns every rule in the trie in depth-first order.
func (t *Trie) All() []Rule {
	var out []Rule
	var walk func(*trieNode)
	walk = func(nd *trieNode) {
		if nd == nil {
			return
		}
		out = append(out, nd.rules...)
		walk(nd.children[0])
		walk(nd.children[1])
	}
	walk(t.root)
	return out
}

// Clear empties the trie.
func (t *Trie) Clear() {
	t.root = nil
	t.size = 0
}
