package classifier

// Trie is a binary trie over destination prefixes used by Hermes's Gate
// Keeper as the "efficient data structure to detect overlapping rules"
// (paper §3, Correctness). Rules are indexed by their destination prefix;
// because prefixes only nest, every rule whose destination overlaps a query
// lies either on the trie path down to the query prefix (ancestors, whose
// dst contains the query) or in the subtree rooted at it (descendants,
// contained by the query). Source-prefix overlap is then checked per
// candidate.
//
// The zero value is an empty trie.
//
// Pruned nodes are recycled through a bounded freelist: churn-heavy tables
// (the TCAM match index deletes and reinserts on every migration, and the
// agent's batch path promises steady-state 0 allocs/op) would otherwise
// re-allocate the same path nodes — and their rules backing arrays — on
// every delete/insert cycle.
type Trie struct {
	root  *trieNode
	size  int
	free  *trieNode // freelist of pruned nodes, chained through children[0]
	nfree int
}

// maxFreeNodes bounds the freelist so one transient deep trie does not pin
// memory forever.
const maxFreeNodes = 8192

type trieNode struct {
	children [2]*trieNode
	rules    []Rule // rules whose Dst ends exactly at this node
}

// newNode pops a recycled node (keeping its rules capacity) or allocates a
// fresh one.
func (t *Trie) newNode() *trieNode {
	if n := t.free; n != nil {
		t.free = n.children[0]
		t.nfree--
		n.children[0] = nil
		return n
	}
	return &trieNode{}
}

// freeNode recycles a pruned node. The caller guarantees it is unlinked
// and empty (no rules, no children).
func (t *Trie) freeNode(n *trieNode) {
	if t.nfree >= maxFreeNodes {
		return
	}
	n.rules = n.rules[:0]
	n.children[0] = t.free
	n.children[1] = nil
	t.free = n
	t.nfree++
}

// Size reports the number of rules in the trie.
func (t *Trie) Size() int { return t.size }

// Insert adds a rule to the index. Multiple rules may share a destination
// prefix.
func (t *Trie) Insert(r Rule) {
	if t.root == nil {
		t.root = t.newNode()
	}
	n := t.root
	p := r.Match.Dst
	for depth := uint8(0); depth < p.Len; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		if n.children[bit] == nil {
			n.children[bit] = t.newNode()
		}
		n = n.children[bit]
	}
	n.rules = append(n.rules, r)
	t.size++
}

// Delete removes the rule with the given ID from the node for prefix dst.
// It reports whether a rule was removed. The delete is fully incremental:
// nodes left with no rules and no children are pruned bottom-up along the
// access path, so long-lived tables (the TCAM match index churns on every
// migration) do not accrete garbage nodes.
func (t *Trie) Delete(dst Prefix, id RuleID) bool {
	if t.root == nil {
		return false
	}
	// path[d] is the node at depth d; the walk fits a fixed array because
	// prefixes are at most 32 bits deep.
	var path [33]*trieNode
	n := t.root
	path[0] = n
	for depth := uint8(0); depth < dst.Len; depth++ {
		bit := (dst.Addr >> (31 - depth)) & 1
		n = n.children[bit]
		if n == nil {
			return false
		}
		path[depth+1] = n
	}
	removed := false
	for i, r := range n.rules {
		if r.ID == id {
			n.rules = append(n.rules[:i], n.rules[i+1:]...)
			t.size--
			removed = true
			break
		}
	}
	if !removed {
		return false
	}
	for depth := int(dst.Len); depth > 0; depth-- {
		nd := path[depth]
		if len(nd.rules) != 0 || nd.children[0] != nil || nd.children[1] != nil {
			break
		}
		bit := (dst.Addr >> (32 - depth)) & 1
		path[depth-1].children[bit] = nil
		t.freeNode(nd)
	}
	if t.size == 0 && t.root.children[0] == nil && t.root.children[1] == nil {
		t.freeNode(t.root)
		t.root = nil
	}
	return true
}

// Update replaces the stored copy of the rule with the given ID under dst
// (e.g. after an in-place action or priority rewrite that does not move the
// rule to another destination prefix). It reports whether the rule was
// found.
func (t *Trie) Update(dst Prefix, r Rule) bool {
	n := t.node(dst)
	if n == nil {
		return false
	}
	for i := range n.rules {
		if n.rules[i].ID == r.ID {
			n.rules[i] = r
			return true
		}
	}
	return false
}

// Get returns the rule with the given ID stored under dst, if present.
func (t *Trie) Get(dst Prefix, id RuleID) (Rule, bool) {
	n := t.node(dst)
	if n == nil {
		return Rule{}, false
	}
	for _, r := range n.rules {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

func (t *Trie) node(p Prefix) *trieNode {
	n := t.root
	for depth := uint8(0); n != nil && depth < p.Len; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		n = n.children[bit]
	}
	return n
}

// Overlapping returns every indexed rule whose match region overlaps m.
func (t *Trie) Overlapping(m Match) []Rule {
	if t.root == nil {
		return nil
	}
	var out []Rule
	collect := func(rules []Rule) {
		for _, r := range rules {
			if r.Match.Src.Overlaps(m.Src) {
				out = append(out, r)
			}
		}
	}
	// Walk the path to m.Dst: ancestors (dst contains m.Dst).
	n := t.root
	for depth := uint8(0); depth < m.Dst.Len; depth++ {
		collect(n.rules)
		bit := (m.Dst.Addr >> (31 - depth)) & 1
		n = n.children[bit]
		if n == nil {
			return out
		}
	}
	// Subtree at m.Dst: the node itself plus descendants (dst contained in
	// m.Dst).
	var walk func(*trieNode)
	walk = func(nd *trieNode) {
		collect(nd.rules)
		if nd.children[0] != nil {
			walk(nd.children[0])
		}
		if nd.children[1] != nil {
			walk(nd.children[1])
		}
	}
	walk(n)
	return out
}

// OverlapsWhere reports whether any indexed rule overlapping m satisfies
// pred. It is the allocation-free existence form of Overlapping — the Gate
// Keeper's batch fast path asks "would any main-table rule cut this one?"
// and needs the answer without collecting candidates. Callers that care
// about allocations must pass a preallocated (reused) pred.
func (t *Trie) OverlapsWhere(m Match, pred func(Rule) bool) bool {
	if t.root == nil {
		return false
	}
	// Ancestors on the path to m.Dst: their dst contains the query.
	n := t.root
	for depth := uint8(0); depth < m.Dst.Len; depth++ {
		if overlapIn(n.rules, m, pred) {
			return true
		}
		bit := (m.Dst.Addr >> (31 - depth)) & 1
		n = n.children[bit]
		if n == nil {
			return false
		}
	}
	// Subtree at m.Dst: the node itself plus descendants contained in it.
	return subtreeOverlaps(n, m, pred)
}

func overlapIn(rules []Rule, m Match, pred func(Rule) bool) bool {
	for _, r := range rules {
		if r.Match.Src.Overlaps(m.Src) && pred(r) {
			return true
		}
	}
	return false
}

func subtreeOverlaps(nd *trieNode, m Match, pred func(Rule) bool) bool {
	if nd == nil {
		return false
	}
	if overlapIn(nd.rules, m, pred) {
		return true
	}
	return subtreeOverlaps(nd.children[0], m, pred) || subtreeOverlaps(nd.children[1], m, pred)
}

// MatchIter iterates the rules whose destination prefix matches one packet
// address. It is a value type so a lookup can walk the trie with zero heap
// allocations — the packet fast path depends on that.
type MatchIter struct {
	node  *trieNode
	addr  uint32
	depth uint8
	i     int
}

// MatchCandidates starts a packet-query walk for a destination address:
// exactly the rules stored on the trie path that follows dst's bits from
// the root are yielded, because a rule's Dst matches the packet iff the
// packet address descends through the rule's node. This is the per-packet
// query, distinct from Overlapping's prefix-overlap query (which also has
// to visit the subtree below the query prefix).
func (t *Trie) MatchCandidates(addr uint32) MatchIter {
	return MatchIter{node: t.root, addr: addr}
}

// Next returns the next candidate rule, or ok=false when the walk is done.
// Candidates arrive in ascending destination-prefix-length order; callers
// needing first-match semantics must rank them (the TCAM table ranks by
// priority, tie rank, and arrival order).
func (it *MatchIter) Next() (Rule, bool) {
	for it.node != nil {
		if it.i < len(it.node.rules) {
			r := it.node.rules[it.i]
			it.i++
			return r, true
		}
		if it.depth == 32 {
			it.node = nil
			break
		}
		bit := (it.addr >> (31 - it.depth)) & 1
		it.node = it.node.children[bit]
		it.depth++
		it.i = 0
	}
	return Rule{}, false
}

// All returns every rule in the trie in depth-first order.
func (t *Trie) All() []Rule {
	var out []Rule
	var walk func(*trieNode)
	walk = func(nd *trieNode) {
		if nd == nil {
			return
		}
		out = append(out, nd.rules...)
		walk(nd.children[0])
		walk(nd.children[1])
	}
	walk(t.root)
	return out
}

// Clear empties the trie.
func (t *Trie) Clear() {
	t.root = nil
	t.size = 0
}
