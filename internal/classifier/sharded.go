package classifier

// ShardedRuleIndex is the parallel-pipeline form of RuleIndex: the rule
// list is partitioned across per-CPU shards by a deterministic hash of the
// destination prefix, each shard holds its own small RuleIndex in local
// first-match order, and a thin combining layer picks the best (smallest
// global slot) across shards. Because a shard's local order preserves the
// global relative order of its rules, the minimum local slot within a
// shard maps to that shard's minimum global slot, and the minimum across
// shards is exactly the rule a monolithic first-match scan would return —
// the combine is bit-identical to RuleIndex.Lookup by construction (and
// proven so by differential + fuzz tests).
//
// Like RuleIndex it is immutable after construction, so any number of
// goroutines may look up concurrently without locks; the per-shard tries
// are smaller and independent, emulating in software the parallel lookup
// pipelines an FPGA classifier gets in hardware.
type ShardedRuleIndex struct {
	rules  []Rule
	shards []indexShard
}

type indexShard struct {
	ix *RuleIndex
	// global maps a shard-local slot to the rule's position in the global
	// first-match order; ascending because shard assignment preserves
	// relative order.
	global []int32
}

// NewShardedRuleIndex builds a sharded snapshot over rules (already in
// first-match order) with n shards. Like NewRuleIndex it takes ownership
// of the slice. n < 2 degenerates to a single shard.
func NewShardedRuleIndex(rules []Rule, n int) *ShardedRuleIndex {
	if n < 1 {
		n = 1
	}
	s := &ShardedRuleIndex{rules: rules, shards: make([]indexShard, n)}
	locals := make([][]Rule, n)
	for i := range rules {
		h := shardOf(rules[i].Match.Dst, n)
		locals[h] = append(locals[h], rules[i])
		s.shards[h].global = append(s.shards[h].global, int32(i))
	}
	for i := range s.shards {
		s.shards[i].ix = NewRuleIndex(locals[i])
	}
	return s
}

// shardOf assigns a destination prefix to a shard: a SplitMix64 finalizer
// over (addr, len) so related prefixes spread instead of clustering.
func shardOf(p Prefix, n int) int {
	h := uint64(p.Addr)<<8 | uint64(p.Len)
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(n))
}

// Len reports the number of indexed rules.
func (s *ShardedRuleIndex) Len() int { return len(s.rules) }

// Shards reports the shard count.
func (s *ShardedRuleIndex) Shards() int { return len(s.shards) }

// Rules returns the indexed rules in first-match order (read-only backing
// store, like RuleIndex.Rules).
func (s *ShardedRuleIndex) Rules() []Rule { return s.rules }

// Lookup returns the first-match rule for the packet: each shard answers
// with its best local slot, the combine maps locals to global positions
// and keeps the smallest. Zero allocations.
func (s *ShardedRuleIndex) Lookup(dst, src uint32) (Rule, bool) {
	best := int32(-1)
	for i := range s.shards {
		sh := &s.shards[i]
		ls := sh.ix.lookupSlot(dst, src)
		if ls < 0 {
			continue
		}
		if g := sh.global[ls]; best < 0 || g < best {
			best = g
		}
	}
	if best < 0 {
		return Rule{}, false
	}
	return s.rules[best], true
}
