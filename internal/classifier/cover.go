package classifier

// Cover-rule synthesis for dependency-safe cache eviction (DESIGN.md §16).
//
// When a rule h lives only in the software tier while lower-priority rules
// it overlaps stay resident in the TCAM, the hardware tier would wrongly
// answer packets in h's region with the resident rule. The cache manager
// fixes this by installing *cover* rules: entries at h's priority whose
// union is exactly h's match region and whose action punts the packet to
// the software tier (ActionGotoNext). CoverFor computes that region set.

// Intersect returns the intersection of the two match regions. Because
// prefixes only nest, the intersection in each dimension is simply the
// longer of the two overlapping prefixes. ok is false when the regions are
// disjoint.
func (m Match) Intersect(o Match) (Match, bool) {
	if !m.Overlaps(o) {
		return Match{}, false
	}
	out := m
	if o.Dst.Len > out.Dst.Len {
		out.Dst = o.Dst
	}
	if o.Src.Len > out.Src.Len {
		out.Src = o.Src
	}
	return out, true
}

// CoverFor returns a set of match regions whose union is semantically equal
// to rule.Match: every packet rule.Match matches is matched by exactly the
// returned regions and no others. The regions are aligned to the boundaries
// of the dependency rules (the overlapping lower-priority residents the
// eviction must shield), which keeps each cover piece no wider than one
// dependency's footprint inside rule — useful when the caller wants to drop
// individual pieces as dependencies disappear. Dependencies that do not
// overlap rule are ignored; with no overlapping dependencies the result is
// the single region {rule.Match}.
//
// The decomposition is the same cut machinery PartitionNewRule uses
// (Subtract/Intersect over nested prefixes), run from the evicted rule's
// side: for each dependency, carve out the part of the remaining region set
// that intersects it; whatever survives all dependencies is the remainder.
// The pieces are then minimized with MergeMatches, which preserves the
// union exactly.
func CoverFor(rule Rule, deps []Rule) []Match {
	remaining := []Match{rule.Match}
	var pieces []Match
	for _, d := range deps {
		if !rule.Match.Overlaps(d.Match) {
			continue
		}
		var next []Match
		for _, reg := range remaining {
			if inter, ok := reg.Intersect(d.Match); ok {
				pieces = append(pieces, inter)
			}
			next = append(next, reg.Subtract(d.Match)...)
		}
		remaining = next
	}
	pieces = append(pieces, remaining...)
	return MergeMatches(pieces)
}
