// Package classifier implements the rule algebra Hermes relies on for its
// correctness guarantees (paper §4): IPv4 prefixes, ternary match rules, an
// overlap-detection trie, prefix subtraction ("EliminateOverlap"), optimal
// sibling merging, and Algorithm 1 (PartitionNewRule) together with the
// original-rule → partition mapping used to un-partition on deletion.
package classifier

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 prefix: the top Len bits of Addr are significant and the
// remaining bits must be zero (enforced by the constructors). The zero value
// is 0.0.0.0/0, which matches every address.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// NewPrefix masks addr to plen bits and returns the canonical prefix. It
// panics if plen > 32 because that is a programming error, never data.
func NewPrefix(addr uint32, plen uint8) Prefix {
	if plen > 32 {
		panic(fmt.Sprintf("classifier: prefix length %d out of range", plen))
	}
	return Prefix{Addr: addr & maskBits(plen), Len: plen}
}

// ParsePrefix parses dotted-quad "a.b.c.d/len" notation. A missing "/len"
// means a /32 host route.
func ParsePrefix(s string) (Prefix, error) {
	ipPart := s
	plen := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		ipPart = s[:i]
		v, err := strconv.Atoi(s[i+1:])
		if err != nil || v < 0 || v > 32 {
			return Prefix{}, fmt.Errorf("classifier: bad prefix length in %q", s)
		}
		plen = v
	}
	parts := strings.Split(ipPart, ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("classifier: bad IPv4 address in %q", s)
	}
	var addr uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Prefix{}, fmt.Errorf("classifier: bad IPv4 octet in %q", s)
		}
		addr = addr<<8 | uint32(v)
	}
	return NewPrefix(addr, uint8(plen)), nil
}

// MustParsePrefix is ParsePrefix that panics on error; for tests and
// literals.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskBits(plen uint8) uint32 {
	if plen == 0 {
		return 0
	}
	return ^uint32(0) << (32 - plen)
}

// Mask returns the netmask of the prefix as a uint32.
func (p Prefix) Mask() uint32 { return maskBits(p.Len) }

// String renders dotted-quad/len notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// MatchesAddr reports whether addr falls inside the prefix.
func (p Prefix) MatchesAddr(addr uint32) bool {
	return addr&p.Mask() == p.Addr
}

// Contains reports whether p fully contains q (p ⊇ q). A prefix contains
// itself.
func (p Prefix) Contains(q Prefix) bool {
	return p.Len <= q.Len && q.Addr&p.Mask() == p.Addr
}

// Overlaps reports whether the prefixes share any address. For prefixes this
// is true exactly when one contains the other.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// Children returns the two /Len+1 halves of the prefix. It panics on a /32,
// which has no children.
func (p Prefix) Children() (lo, hi Prefix) {
	if p.Len >= 32 {
		panic("classifier: /32 prefix has no children")
	}
	bit := uint32(1) << (31 - p.Len)
	return Prefix{Addr: p.Addr, Len: p.Len + 1},
		Prefix{Addr: p.Addr | bit, Len: p.Len + 1}
}

// Parent returns the /Len-1 prefix covering p. It panics on a /0.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		panic("classifier: /0 prefix has no parent")
	}
	return NewPrefix(p.Addr, p.Len-1)
}

// Sibling returns the other half of p's parent. It panics on a /0.
func (p Prefix) Sibling() Prefix {
	if p.Len == 0 {
		panic("classifier: /0 prefix has no sibling")
	}
	bit := uint32(1) << (32 - p.Len)
	return Prefix{Addr: p.Addr ^ bit, Len: p.Len}
}

// NumAddrs returns the number of addresses covered by the prefix as a
// float64 (a /0 covers 2^32 which overflows uint32).
func (p Prefix) NumAddrs() float64 {
	return float64(uint64(1) << (32 - p.Len))
}

// Subtract returns the set of maximal prefixes covering p minus q. If q does
// not overlap p the result is {p}; if q contains p the result is empty.
// Otherwise q is strictly inside p and the result is the q.Len-p.Len
// prefixes that peel off the path from p down to q — this is the classic
// prefix-subtraction step behind the paper's EliminateOverlap.
func (p Prefix) Subtract(q Prefix) []Prefix {
	if !p.Overlaps(q) {
		return []Prefix{p}
	}
	if q.Contains(p) {
		return nil
	}
	// q is strictly inside p: walk from p toward q, at each level emitting
	// the half that does NOT contain q.
	out := make([]Prefix, 0, q.Len-p.Len)
	cur := p
	for cur.Len < q.Len {
		lo, hi := cur.Children()
		if lo.Contains(q) {
			out = append(out, hi)
			cur = lo
		} else {
			out = append(out, lo)
			cur = hi
		}
	}
	return out
}

// MergePrefixes combines sibling prefixes into their parent repeatedly and
// removes prefixes contained in other prefixes, returning a minimal
// equivalent cover. This is the merge step of Algorithm 1 (line 7), used to
// minimize the number of partition rules inserted into the shadow table.
func MergePrefixes(in []Prefix) []Prefix {
	if len(in) <= 1 {
		return append([]Prefix(nil), in...)
	}
	set := make(map[Prefix]bool, len(in))
	for _, p := range in {
		set[p] = true
	}
	// Repeatedly merge siblings bottom-up.
	for {
		merged := false
		for p := range set {
			if !set[p] { // already removed this pass
				continue
			}
			if p.Len == 0 {
				continue
			}
			sib := p.Sibling()
			if set[sib] {
				delete(set, p)
				delete(set, sib)
				set[p.Parent()] = true
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	// Remove prefixes covered by another prefix in the set.
	out := make([]Prefix, 0, len(set))
	for p := range set {
		covered := false
		q := p
		for q.Len > 0 {
			q = q.Parent()
			if set[q] {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, p)
		}
	}
	SortPrefixes(out)
	return out
}

// SortPrefixes orders prefixes by address then length, giving deterministic
// output for tests and rendering.
func SortPrefixes(ps []Prefix) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b Prefix) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Len < b.Len
}
