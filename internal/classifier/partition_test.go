package classifier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func idMinter(start RuleID) func() RuleID {
	next := start
	return func() RuleID {
		next++
		return next
	}
}

// lookupShadowFirst emulates Hermes's two-table lookup: shadow first, then
// main on miss. Within a table, highest priority wins; ties go to the
// earlier rule.
func lookupShadowFirst(shadow, main []Rule, dst, src uint32) (Rule, bool) {
	if r, ok := lookupTable(shadow, dst, src); ok {
		return r, true
	}
	return lookupTable(main, dst, src)
}

func lookupTable(rules []Rule, dst, src uint32) (Rule, bool) {
	best := Rule{}
	found := false
	for _, r := range rules {
		if !r.Match.MatchesPacket(dst, src) {
			continue
		}
		if !found || r.Priority > best.Priority {
			best, found = r, true
		}
	}
	return best, found
}

func TestPartitionPaperExample(t *testing.T) {
	// Fig. 4: main table holds the higher-priority /26 -> port 1; the new
	// lower-priority /24 -> port 2 must be partitioned into
	// {192.168.1.64/26, 192.168.1.128/25}.
	var mainIdx Trie
	old := Rule{ID: 1, Match: DstMatch(MustParsePrefix("192.168.1.0/26")),
		Priority: 10, Action: Action{Type: ActionForward, Port: 1}}
	mainIdx.Insert(old)

	newRule := Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.0/24")),
		Priority: 5, Action: Action{Type: ActionForward, Port: 2}}
	p := PartitionNewRule(newRule, &mainIdx, idMinter(100))

	if p.Redundant() {
		t.Fatal("partial overlap must not be redundant")
	}
	if !p.WasCut() {
		t.Fatal("rule must be cut")
	}
	if len(p.Parts) != 2 {
		t.Fatalf("parts = %v, want 2", p.Parts)
	}
	wantDsts := map[Prefix]bool{
		MustParsePrefix("192.168.1.64/26"):  true,
		MustParsePrefix("192.168.1.128/25"): true,
	}
	for _, part := range p.Parts {
		if !wantDsts[part.Match.Dst] {
			t.Errorf("unexpected part %v", part)
		}
		if part.Action != newRule.Action || part.Priority != newRule.Priority {
			t.Errorf("part %v lost action/priority", part)
		}
	}
	// A lookup for 192.168.1.5 must hit the main-table /26 (port 1), and
	// 192.168.1.200 must hit a shadow partition (port 2) — the Fig. 4c
	// behaviour.
	addr5 := MustParsePrefix("192.168.1.5/32").Addr
	addr200 := MustParsePrefix("192.168.1.200/32").Addr
	if r, ok := lookupShadowFirst(p.Parts, []Rule{old}, addr5, 0); !ok || r.Action.Port != 1 {
		t.Errorf("lookup .5 = %v, want port 1", r)
	}
	if r, ok := lookupShadowFirst(p.Parts, []Rule{old}, addr200, 0); !ok || r.Action.Port != 2 {
		t.Errorf("lookup .200 = %v, want port 2", r)
	}
}

func TestPartitionSubsumedIsRedundant(t *testing.T) {
	// Fig. 5a: a larger, higher-priority main rule wholly subsumes the new
	// rule — nothing to insert.
	var mainIdx Trie
	mainIdx.Insert(Rule{ID: 1, Match: DstMatch(MustParsePrefix("192.168.0.0/16")), Priority: 50})
	p := PartitionNewRule(
		Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.0/24")), Priority: 5},
		&mainIdx, idMinter(100))
	if !p.Redundant() {
		t.Errorf("subsumed rule must be redundant, got parts %v", p.Parts)
	}
}

func TestPartitionNoOverlapFastPath(t *testing.T) {
	var mainIdx Trie
	mainIdx.Insert(Rule{ID: 1, Match: DstMatch(MustParsePrefix("10.0.0.0/8")), Priority: 50})
	orig := Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.0/24")), Priority: 5}
	p := PartitionNewRule(orig, &mainIdx, idMinter(100))
	if p.WasCut() || len(p.Parts) != 1 || p.Parts[0].ID != orig.ID {
		t.Errorf("no-overlap partition = %+v, want pass-through", p)
	}
}

func TestPartitionHigherPriorityNewRuleNotCut(t *testing.T) {
	// New rule has higher priority than the overlapping main rule: shadow
	// is consulted first, so the new rule correctly wins — no cut.
	var mainIdx Trie
	mainIdx.Insert(Rule{ID: 1, Match: DstMatch(MustParsePrefix("192.168.1.0/24")), Priority: 5})
	p := PartitionNewRule(
		Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.0/26")), Priority: 50},
		&mainIdx, idMinter(100))
	if p.WasCut() {
		t.Errorf("higher-priority new rule must not be cut: %+v", p)
	}
}

func TestPartitionEqualPriorityCuts(t *testing.T) {
	// Equal priority: the earlier (main) rule wins in a monolithic TCAM, so
	// the new rule must be cut.
	var mainIdx Trie
	mainIdx.Insert(Rule{ID: 1, Match: DstMatch(MustParsePrefix("192.168.1.0/26")), Priority: 5})
	p := PartitionNewRule(
		Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.0/24")), Priority: 5},
		&mainIdx, idMinter(100))
	if !p.WasCut() {
		t.Error("equal-priority overlap must cut")
	}
}

func TestPartitionMultipleOverlaps(t *testing.T) {
	// Fig. 5c: several higher-priority rules overlap in several places.
	var mainIdx Trie
	mainIdx.Insert(Rule{ID: 1, Match: DstMatch(MustParsePrefix("192.168.1.0/26")), Priority: 50})
	mainIdx.Insert(Rule{ID: 2, Match: DstMatch(MustParsePrefix("192.168.1.128/26")), Priority: 60})
	newRule := Rule{ID: 3, Match: DstMatch(MustParsePrefix("192.168.1.0/24")), Priority: 5,
		Action: Action{Type: ActionForward, Port: 9}}
	p := PartitionNewRule(newRule, &mainIdx, idMinter(100))
	if len(p.Cause) != 2 {
		t.Fatalf("cause = %v, want both main rules", p.Cause)
	}
	// Remaining region: /24 minus the two /26s = {.64/26, .192/26}, merged.
	wantDsts := map[Prefix]bool{
		MustParsePrefix("192.168.1.64/26"):  true,
		MustParsePrefix("192.168.1.192/26"): true,
	}
	if len(p.Parts) != 2 {
		t.Fatalf("parts = %v", p.Parts)
	}
	for _, part := range p.Parts {
		if !wantDsts[part.Match.Dst] {
			t.Errorf("unexpected part %v", part)
		}
	}
}

// TestPartitionEquivalenceProperty is the central correctness property of
// §4: for random main tables and a random new rule, a shadow-first lookup
// over (partitions, main) must agree with a monolithic-table lookup over
// (main + original rule) on every packet.
func TestPartitionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var mainIdx Trie
		n := r.Intn(30)
		mainRules := make([]Rule, 0, n)
		for i := 0; i < n; i++ {
			rule := Rule{
				ID:       RuleID(i + 1),
				Match:    randomMatch(r),
				Priority: int32(r.Intn(100)),
				Action:   Action{Type: ActionForward, Port: i + 1},
			}
			mainRules = append(mainRules, rule)
			mainIdx.Insert(rule)
		}
		newRule := Rule{
			ID:       RuleID(n + 1),
			Match:    randomMatch(r),
			Priority: int32(r.Intn(100)),
			Action:   Action{Type: ActionForward, Port: 999},
		}
		p := PartitionNewRule(newRule, &mainIdx, idMinter(1000))

		// Monolithic reference: main rules were inserted before the new
		// rule, so on equal priority they win. lookupTable prefers the
		// earlier rule on ties, so listing mainRules first is correct.
		mono := append(append([]Rule(nil), mainRules...), newRule)

		for k := 0; k < 200; k++ {
			var dst, src uint32
			if r.Intn(2) == 0 {
				dst = addrInside(r, newRule.Match.Dst)
				src = addrInside(r, newRule.Match.Src)
			} else if n > 0 {
				pick := mainRules[r.Intn(n)]
				dst = addrInside(r, pick.Match.Dst)
				src = addrInside(r, pick.Match.Src)
			} else {
				dst, src = r.Uint32(), r.Uint32()
			}
			want, wok := lookupTable(mono, dst, src)
			got, gok := lookupShadowFirst(p.Parts, mainRules, dst, src)
			if wok != gok {
				t.Logf("seed=%d pkt=(%08x,%08x): found %v want %v", seed, dst, src, gok, wok)
				return false
			}
			if wok && got.Action != want.Action {
				t.Logf("seed=%d pkt=(%08x,%08x): action %v want %v (newRule=%v)",
					seed, dst, src, got.Action, want.Action, newRule)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestPartitionMapRecordLookupRemove(t *testing.T) {
	pm := NewPartitionMap()
	p := Partition{
		Original: Rule{ID: 10},
		Parts:    []Rule{{ID: 100}, {ID: 101}},
		Cause:    []RuleID{1, 2},
	}
	pm.Record(p)
	if pm.Len() != 1 {
		t.Fatalf("Len = %d", pm.Len())
	}
	if got, ok := pm.Lookup(10); !ok || len(got.Parts) != 2 {
		t.Errorf("Lookup(10) = %v, %v", got, ok)
	}
	if o, ok := pm.OriginalOf(101); !ok || o != 10 {
		t.Errorf("OriginalOf(101) = %v, %v", o, ok)
	}
	if deps := pm.DependentsOf(1); len(deps) != 1 || deps[0] != 10 {
		t.Errorf("DependentsOf(1) = %v", deps)
	}
	pm.Remove(10)
	if pm.Len() != 0 {
		t.Errorf("Len after Remove = %d", pm.Len())
	}
	if deps := pm.DependentsOf(1); len(deps) != 0 {
		t.Errorf("DependentsOf after Remove = %v", deps)
	}
	if _, ok := pm.OriginalOf(101); ok {
		t.Error("OriginalOf survives Remove")
	}
	// Removing twice is a no-op.
	pm.Remove(10)
}

func TestPartitionMapIgnoresUncut(t *testing.T) {
	pm := NewPartitionMap()
	pm.Record(Partition{Original: Rule{ID: 1}, Parts: []Rule{{ID: 1}}})
	if pm.Len() != 0 {
		t.Error("uncut partitions must not be recorded")
	}
}
