package classifier

import (
	"math/rand"
	"testing"
)

// TestShardedRuleIndexMatchesLinearScan is the three-way differential:
// for every probe the sharded index, the plain index, and the linear
// first-match oracle must return the identical rule.
func TestShardedRuleIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		rules := randRules(rng, 1+rng.Intn(200))
		plain := NewRuleIndex(rules)
		for _, shards := range []int{1, 2, 3, 4, 8, len(rules) + 3} {
			sx := NewShardedRuleIndex(rules, shards)
			if sx.Len() != len(rules) {
				t.Fatalf("Len = %d, want %d", sx.Len(), len(rules))
			}
			for probe := 0; probe < 120; probe++ {
				var dst uint32
				if probe%2 == 0 {
					p := rules[rng.Intn(len(rules))].Match.Dst
					dst = p.Addr | (rng.Uint32() & ^p.Mask())
				} else {
					dst = rng.Uint32()
				}
				src := rng.Uint32()
				want, wok := linearFirstMatch(rules, dst, src)
				got, gok := sx.Lookup(dst, src)
				if wok != gok || got != want {
					t.Fatalf("trial %d shards %d: Lookup(%08x,%08x) = %v,%v want %v,%v",
						trial, shards, dst, src, got, gok, want, wok)
				}
				pg, pok := plain.Lookup(dst, src)
				if pok != gok || pg != got {
					t.Fatalf("trial %d shards %d: sharded %v,%v plain %v,%v",
						trial, shards, got, gok, pg, pok)
				}
			}
		}
	}
}

func TestShardedRuleIndexEmpty(t *testing.T) {
	sx := NewShardedRuleIndex(nil, 4)
	if r, ok := sx.Lookup(0x0A000001, 0); ok {
		t.Fatalf("empty sharded index returned %v", r)
	}
	if sx.Len() != 0 {
		t.Fatalf("Len = %d", sx.Len())
	}
}

func TestShardedRuleIndexLookupZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sx := NewShardedRuleIndex(randRules(rng, 512), 8)
	allocs := testing.AllocsPerRun(200, func() {
		sx.Lookup(0x0A0B0C0D, 0xC0A80101)
	})
	if allocs != 0 {
		t.Fatalf("ShardedRuleIndex.Lookup allocates %.1f/op, want 0", allocs)
	}
}

// FuzzShardedLookupEquivalence feeds arbitrary packed rule bytes and a
// probe packet through the sharded index, the plain index, and the linear
// oracle; any divergence is a bug regardless of input shape.
func FuzzShardedLookupEquivalence(f *testing.F) {
	f.Add([]byte{0x0a, 8, 0, 0, 1, 0xc0, 16, 1, 2, 3}, uint32(0x0a000001), uint32(0), uint8(4))
	f.Add([]byte{}, uint32(1), uint32(2), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, dst, src uint32, shards uint8) {
		// 5 bytes per rule: dst-addr-high, dst-len, priority, src-addr-high,
		// src-len. Coarse quantization keeps overlaps and ties frequent.
		var rules []Rule
		for i := 0; i+5 <= len(data) && len(rules) < 64; i += 5 {
			rules = append(rules, Rule{
				ID:       RuleID(len(rules) + 1),
				Match:    Match{Dst: NewPrefix(uint32(data[i])<<24, data[i+1]%33), Src: NewPrefix(uint32(data[i+3])<<24, data[i+4]%33)},
				Priority: int32(data[i+2] % 8),
			})
		}
		n := int(shards%12) + 1
		sx := NewShardedRuleIndex(rules, n)
		px := NewRuleIndex(rules)
		want, wok := linearFirstMatch(rules, dst, src)
		got, gok := sx.Lookup(dst, src)
		if wok != gok || got != want {
			t.Fatalf("shards %d: sharded %v,%v linear %v,%v", n, got, gok, want, wok)
		}
		pg, pok := px.Lookup(dst, src)
		if pok != gok || pg != got {
			t.Fatalf("shards %d: sharded %v,%v plain %v,%v", n, got, gok, pg, pok)
		}
	})
}

// TestOverlapsWhereMatchesOverlapping checks the allocation-free existence
// probe against the collecting query it replaces.
func TestOverlapsWhereMatchesOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		rules := randRules(rng, rng.Intn(120))
		var tr Trie
		for _, r := range rules {
			tr.Insert(r)
		}
		for probe := 0; probe < 80; probe++ {
			m := Match{
				Dst: NewPrefix(rng.Uint32(), uint8(rng.Intn(33))),
				Src: NewPrefix(rng.Uint32(), uint8(rng.Intn(17))),
			}
			prio := int32(rng.Intn(8))
			pred := func(r Rule) bool { return r.Priority >= prio }
			want := false
			for _, r := range tr.Overlapping(m) {
				if pred(r) {
					want = true
					break
				}
			}
			if got := tr.OverlapsWhere(m, pred); got != want {
				t.Fatalf("trial %d: OverlapsWhere(%v, prio>=%d) = %v, want %v",
					trial, m, prio, got, want)
			}
		}
	}
}

func TestOverlapsWhereZeroAllocs(t *testing.T) {
	var tr Trie
	rng := rand.New(rand.NewSource(3))
	for _, r := range randRules(rng, 256) {
		tr.Insert(r)
	}
	m := Match{Dst: NewPrefix(0x0A000000, 8)}
	pred := func(r Rule) bool { return r.Priority >= 4 }
	allocs := testing.AllocsPerRun(200, func() {
		tr.OverlapsWhere(m, pred)
	})
	if allocs != 0 {
		t.Fatalf("OverlapsWhere allocates %.1f/op, want 0", allocs)
	}
}

// TestTrieNodeRecycling proves a delete/insert churn cycle reuses pruned
// nodes instead of re-allocating the path — the steady-state 0 allocs/op
// contract of the agent's batch insert path depends on it.
func TestTrieNodeRecycling(t *testing.T) {
	var tr Trie
	r := Rule{ID: 1, Match: DstMatch(MustParsePrefix("10.1.2.3/32")), Priority: 1}
	// Warm-up: allocate the path once.
	tr.Insert(r)
	if !tr.Delete(r.Match.Dst, r.ID) {
		t.Fatal("warm-up delete failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Insert(r)
		if !tr.Delete(r.Match.Dst, r.ID) {
			t.Fatal("delete failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("churn cycle allocates %.1f/op, want 0 (freelist reuse)", allocs)
	}
	// The recycled trie still answers correctly.
	tr.Insert(r)
	if got, ok := tr.Get(r.Match.Dst, r.ID); !ok || got != r {
		t.Fatalf("recycled trie lost the rule: %v %v", got, ok)
	}
}
