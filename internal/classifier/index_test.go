package classifier

import (
	"math/rand"
	"testing"
)

// randRules builds a deterministic random rule list with deliberate
// priority ties and nested prefixes so tie-breaking and ancestor/descendant
// paths are all exercised.
func randRules(rng *rand.Rand, n int) []Rule {
	out := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		plen := uint8(rng.Intn(33))
		var src Prefix
		if rng.Intn(3) == 0 {
			src = NewPrefix(rng.Uint32(), uint8(8+rng.Intn(9)))
		}
		out = append(out, Rule{
			ID:       RuleID(i + 1),
			Match:    Match{Dst: NewPrefix(rng.Uint32(), plen), Src: src},
			Priority: int32(rng.Intn(8)),
			Action:   Action{Type: ActionForward, Port: i},
		})
	}
	return out
}

// linearFirstMatch is the oracle: first rule in slice order matching the
// packet.
func linearFirstMatch(rules []Rule, dst, src uint32) (Rule, bool) {
	for _, r := range rules {
		if r.Match.MatchesPacket(dst, src) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestRuleIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rules := randRules(rng, 1+rng.Intn(200))
		ix := NewRuleIndex(rules)
		if ix.Len() != len(rules) {
			t.Fatalf("Len = %d, want %d", ix.Len(), len(rules))
		}
		for probe := 0; probe < 200; probe++ {
			var dst uint32
			if probe%2 == 0 && len(rules) > 0 {
				// Bias half the probes inside an installed rule's region.
				p := rules[rng.Intn(len(rules))].Match.Dst
				dst = p.Addr | (rng.Uint32() & ^p.Mask())
			} else {
				dst = rng.Uint32()
			}
			src := rng.Uint32()
			want, wok := linearFirstMatch(rules, dst, src)
			got, gok := ix.Lookup(dst, src)
			if wok != gok || got != want {
				t.Fatalf("trial %d: Lookup(%08x,%08x) = %v,%v want %v,%v",
					trial, dst, src, got, gok, want, wok)
			}
		}
	}
}

func TestRuleIndexEmpty(t *testing.T) {
	ix := NewRuleIndex(nil)
	if r, ok := ix.Lookup(0x0A000001, 0); ok {
		t.Fatalf("empty index returned %v", r)
	}
}

func TestMatchCandidatesExactSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rules := randRules(rng, rng.Intn(120))
		var tr Trie
		for _, r := range rules {
			tr.Insert(r)
		}
		for probe := 0; probe < 60; probe++ {
			addr := rng.Uint32()
			if probe%2 == 0 && len(rules) > 0 {
				p := rules[rng.Intn(len(rules))].Match.Dst
				addr = p.Addr | (rng.Uint32() & ^p.Mask())
			}
			want := map[RuleID]bool{}
			for _, r := range rules {
				if r.Match.Dst.MatchesAddr(addr) {
					want[r.ID] = true
				}
			}
			got := map[RuleID]bool{}
			for it := tr.MatchCandidates(addr); ; {
				r, ok := it.Next()
				if !ok {
					break
				}
				if !r.Match.Dst.MatchesAddr(addr) {
					t.Fatalf("candidate %v does not match %08x", r, addr)
				}
				if got[r.ID] {
					t.Fatalf("candidate %d yielded twice", r.ID)
				}
				got[r.ID] = true
			}
			if len(got) != len(want) {
				t.Fatalf("addr %08x: got %d candidates, want %d", addr, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("addr %08x: missing candidate %d", addr, id)
				}
			}
		}
	}
}

// nodeCount walks the live trie nodes (for the pruning test).
func (t *Trie) nodeCount() int {
	var walk func(*trieNode) int
	walk = func(n *trieNode) int {
		if n == nil {
			return 0
		}
		return 1 + walk(n.children[0]) + walk(n.children[1])
	}
	return walk(t.root)
}

func TestTrieDeletePrunesEmptyNodes(t *testing.T) {
	var tr Trie
	r := Rule{ID: 1, Match: DstMatch(MustParsePrefix("10.1.2.3/32")), Priority: 1}
	tr.Insert(r)
	if n := tr.nodeCount(); n != 33 {
		t.Fatalf("after insert: %d nodes, want 33", n)
	}
	if !tr.Delete(r.Match.Dst, r.ID) {
		t.Fatal("Delete returned false")
	}
	if n := tr.nodeCount(); n != 0 {
		t.Fatalf("after delete: %d nodes left, want 0 (pruned)", n)
	}

	// A shared spine must survive a sibling's deletion.
	a := Rule{ID: 2, Match: DstMatch(MustParsePrefix("10.0.0.0/9")), Priority: 1}
	b := Rule{ID: 3, Match: DstMatch(MustParsePrefix("10.128.0.0/9")), Priority: 1}
	tr.Insert(a)
	tr.Insert(b)
	before := tr.nodeCount()
	if !tr.Delete(b.Match.Dst, b.ID) {
		t.Fatal("Delete(b) returned false")
	}
	if n := tr.nodeCount(); n != before-1 {
		t.Fatalf("after sibling delete: %d nodes, want %d", n, before-1)
	}
	if got, ok := tr.Get(a.Match.Dst, a.ID); !ok || got != a {
		t.Fatalf("surviving rule lost: %v %v", got, ok)
	}

	// Deleting a missing rule must not disturb the structure.
	if tr.Delete(MustParsePrefix("192.168.0.0/16"), 99) {
		t.Fatal("Delete of absent rule returned true")
	}
	if tr.Delete(a.Match.Dst, 99) {
		t.Fatal("Delete of absent ID returned true")
	}
}

func TestTrieDeleteKeepsNodeWithRemainingRules(t *testing.T) {
	var tr Trie
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(Rule{ID: 1, Match: DstMatch(p), Priority: 1})
	tr.Insert(Rule{ID: 2, Match: DstMatch(p), Priority: 2})
	if !tr.Delete(p, 1) {
		t.Fatal("Delete returned false")
	}
	if got, ok := tr.Get(p, 2); !ok || got.ID != 2 {
		t.Fatalf("co-resident rule lost: %v %v", got, ok)
	}
	if tr.Size() != 1 {
		t.Fatalf("Size = %d, want 1", tr.Size())
	}
}

func TestTrieUpdate(t *testing.T) {
	var tr Trie
	r := Rule{ID: 1, Match: DstMatch(MustParsePrefix("10.0.0.0/8")), Priority: 1,
		Action: Action{Type: ActionForward, Port: 1}}
	tr.Insert(r)
	r.Action = Action{Type: ActionDrop}
	r.Priority = 9
	if !tr.Update(r.Match.Dst, r) {
		t.Fatal("Update returned false")
	}
	if got, _ := tr.Get(r.Match.Dst, r.ID); got != r {
		t.Fatalf("Update not applied: %v", got)
	}
	if tr.Update(MustParsePrefix("11.0.0.0/8"), r) {
		t.Fatal("Update under wrong prefix returned true")
	}
	other := Rule{ID: 5, Match: DstMatch(MustParsePrefix("10.0.0.0/8"))}
	if tr.Update(other.Match.Dst, other) {
		t.Fatal("Update of absent ID returned true")
	}
}

func TestMatchCandidatesZeroAllocs(t *testing.T) {
	var tr Trie
	rng := rand.New(rand.NewSource(3))
	for _, r := range randRules(rng, 256) {
		tr.Insert(r)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for it := tr.MatchCandidates(0x0A0B0C0D); ; {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("MatchCandidates walk allocates %.1f/op, want 0", allocs)
	}
}

func TestRuleIndexLookupZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := NewRuleIndex(randRules(rng, 512))
	allocs := testing.AllocsPerRun(200, func() {
		ix.Lookup(0x0A0B0C0D, 0xC0A80101)
	})
	if allocs != 0 {
		t.Fatalf("RuleIndex.Lookup allocates %.1f/op, want 0", allocs)
	}
}
