package classifier

import (
	"math/rand"
	"testing"
)

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b Match
		want Match
		ok   bool
	}{
		{DstMatch(NewPrefix(0x10<<24, 8)), DstMatch(NewPrefix(0x10<<24|0x01<<16, 16)),
			DstMatch(NewPrefix(0x10<<24|0x01<<16, 16)), true},
		{DstMatch(NewPrefix(0x10<<24, 8)), DstMatch(NewPrefix(0x20<<24, 8)), Match{}, false},
		{
			Match{Dst: NewPrefix(0x0A<<24, 8), Src: NewPrefix(0, 0)},
			Match{Dst: NewPrefix(0, 0), Src: NewPrefix(0xC0<<24, 8)},
			Match{Dst: NewPrefix(0x0A<<24, 8), Src: NewPrefix(0xC0<<24, 8)}, true,
		},
		{DstMatch(Prefix{}), DstMatch(Prefix{}), DstMatch(Prefix{}), true},
	}
	for i, c := range cases {
		got, ok := c.a.Intersect(c.b)
		if ok != c.ok || got != c.want {
			t.Errorf("case %d: Intersect(%v, %v) = %v,%v; want %v,%v", i, c.a, c.b, got, ok, c.want, c.ok)
		}
	}
	// Intersection is commutative.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := randMatch(rng), randMatch(rng)
		ga, oka := a.Intersect(b)
		gb, okb := b.Intersect(a)
		if oka != okb || ga != gb {
			t.Fatalf("Intersect not commutative: %v vs %v", a, b)
		}
	}
}

func randMatch(rng *rand.Rand) Match {
	m := Match{Dst: NewPrefix(rng.Uint32(), uint8(rng.Intn(13)))}
	if rng.Intn(2) == 0 {
		m.Src = NewPrefix(rng.Uint32(), uint8(rng.Intn(9)))
	}
	return m
}

// samplePacket draws a packet inside m by fixing the prefix bits and
// randomizing the rest.
func samplePacket(rng *rand.Rand, m Match) (dst, src uint32) {
	dst = m.Dst.Addr | (rng.Uint32() &^ m.Dst.Mask())
	src = m.Src.Addr | (rng.Uint32() &^ m.Src.Mask())
	return dst, src
}

// TestCoverForUnion is the satellite property test: the cover set's union
// must be semantically equal to the evicted rule's match — every packet the
// rule matches is covered, and no cover piece matches a packet the rule does
// not.
func TestCoverForUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		rule := Rule{ID: 1, Match: randMatch(rng), Priority: 10}
		deps := make([]Rule, rng.Intn(6))
		for i := range deps {
			deps[i] = Rule{ID: RuleID(i + 2), Match: randMatch(rng), Priority: 1}
			if rng.Intn(2) == 0 {
				// Bias half the deps toward overlapping the rule so the cut
				// machinery is actually exercised.
				deps[i].Match, _ = func() (Match, bool) {
					sub := Match{
						Dst: NewPrefix(rule.Match.Dst.Addr|rng.Uint32()&^rule.Match.Dst.Mask(), minU8(rule.Match.Dst.Len+uint8(rng.Intn(8)), 32)),
						Src: NewPrefix(rule.Match.Src.Addr|rng.Uint32()&^rule.Match.Src.Mask(), minU8(rule.Match.Src.Len+uint8(rng.Intn(6)), 32)),
					}
					return sub, true
				}()
			}
		}
		covers := CoverFor(rule, deps)

		// Direction 1: every cover piece is contained in the rule's match.
		for _, c := range covers {
			if !rule.Match.Contains(c) {
				t.Fatalf("trial %d: cover piece %v escapes rule match %v", trial, c, rule.Match)
			}
		}
		// Direction 2: every packet in the rule's match hits some cover
		// piece (sampled).
		for i := 0; i < 64; i++ {
			dst, src := samplePacket(rng, rule.Match)
			hit := false
			for _, c := range covers {
				if c.MatchesPacket(dst, src) {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("trial %d: packet (%x,%x) in %v not covered by %v (deps %v)",
					trial, dst, src, rule.Match, covers, deps)
			}
		}
	}
}

// TestCoverForExhaustive checks union equality exhaustively on a small
// universe: /28 rules over a 4-bit address space embedded in the low bits.
func TestCoverForExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := uint32(0xC0A80000) // 192.168.0.0
	randSmall := func() Match {
		plen := uint8(16 + rng.Intn(17))
		return DstMatch(NewPrefix(base|rng.Uint32()&0xFFFF, plen))
	}
	for trial := 0; trial < 200; trial++ {
		rule := Rule{ID: 1, Match: randSmall(), Priority: 5}
		deps := make([]Rule, rng.Intn(5))
		for i := range deps {
			deps[i] = Rule{ID: RuleID(i + 2), Match: randSmall(), Priority: 1}
		}
		covers := CoverFor(rule, deps)
		// Walk every /32 host under 192.168.0.0/16 in strides that cover
		// all boundary structure: every address in a 1<<12 window around
		// the rule's own prefix plus coarse strides over the rest.
		check := func(addr uint32) {
			in := rule.Match.MatchesPacket(addr, 0)
			cov := false
			for _, c := range covers {
				if c.MatchesPacket(addr, 0) {
					cov = true
					break
				}
			}
			if in != cov {
				t.Fatalf("trial %d: addr %x: rule match=%v covered=%v (rule %v covers %v)",
					trial, addr, in, cov, rule.Match, covers)
			}
		}
		lo := rule.Match.Dst.Addr
		for off := uint32(0); off < 1<<12; off += 13 {
			check(lo + off)
		}
		for off := uint32(0); off < 1<<16; off += 251 {
			check(base + off)
		}
	}
}

// TestCoverForNoDeps: with no (overlapping) deps the cover is the rule's
// own match region.
func TestCoverForNoDeps(t *testing.T) {
	r := Rule{ID: 1, Match: DstMatch(NewPrefix(0x0A000000, 8)), Priority: 3}
	got := CoverFor(r, nil)
	if len(got) != 1 || got[0] != r.Match {
		t.Fatalf("CoverFor with no deps = %v; want [%v]", got, r.Match)
	}
	disjoint := []Rule{{ID: 2, Match: DstMatch(NewPrefix(0x14000000, 8))}}
	got = CoverFor(r, disjoint)
	if len(got) != 1 || got[0] != r.Match {
		t.Fatalf("CoverFor with disjoint deps = %v; want [%v]", got, r.Match)
	}
}

func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
