package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/faultinject"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

// The chaos harness: seeded fault schedules (switch crashes, truncated
// tables, silently dropped TCAM ops, migrations cut at Fig.-7 step
// boundaries) replayed against a live agent in virtual time, with a
// repair loop that Reconciles whenever the agent flags divergence. The
// verdict checks the recovery contract end to end: after quiescing and a
// final Reconcile, the agent's view must be byte-equivalent to the
// physical tables and every lookup must match the monolithic reference —
// and the same seed must reproduce the same schedule and verdict.

// chaosVerdict is the comparable outcome of one seeded run; equal seeds
// must produce equal verdicts (the determinism half of the contract).
type chaosVerdict struct {
	Seed        int64
	Ops         int
	Inserts     int
	Crashes     int
	Truncations int
	Interrupts  int
	Dropped     int
	Reconciles  int
	Stale       int
	Repaired    int
	Violations  int
	Mismatches  int
	Consistent  bool
}

// runChaosSeed replays one seeded fault schedule against a fresh agent and
// returns the verdict. Everything — the workload, the fault plans, the
// repair points, the equivalence probes — derives from the seed, so two
// calls with the same arguments must return identical verdicts.
func runChaosSeed(seed int64, ops int) chaosVerdict {
	v := chaosVerdict{Seed: seed, Ops: ops}
	rng := rand.New(rand.NewSource(seed))
	a := newAgent(tcam.Pica8P3290, core.Config{
		Guarantee:        5 * time.Millisecond,
		TickInterval:     10 * time.Millisecond,
		DisableRateLimit: true,
		TrackLogical:     true,
	})

	inter := faultinject.NewInterrupter(faultinject.InterruptConfig{Seed: seed, Prob: 0.15})
	a.SetMigrationInterrupt(inter.Hook())
	opf := faultinject.NewOpFaults(faultinject.OpFaultConfig{
		Seed: seed, DropProb: 0.04, SlowProb: 0.05, SlowBy: 50 * time.Microsecond,
	})
	tables := a.Switch().Slices()
	for _, tbl := range tables {
		tbl.SetFaultHook(opf.Hook())
	}
	horizon := time.Duration(ops) * time.Millisecond
	schedule := faultinject.SwitchSchedule(seed, horizon, 2+ops/50)
	pending := schedule

	var ids []classifier.RuleID
	nextID := classifier.RuleID(1)
	now := time.Duration(0)

	for i := 0; i < ops; i++ {
		now += time.Duration(rng.Intn(1500)+50) * time.Microsecond
		pending = faultinject.Apply(a, pending, now)
		switch k := rng.Intn(10); {
		case k < 6: // insert a fresh, possibly overlapping rule
			base := 0x0A000000 | (rng.Uint32() & 0x00FFFF00)
			r := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(base, uint8(16+rng.Intn(13)))),
				Priority: int32(rng.Intn(100) + 1),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: rng.Intn(48)},
			}
			nextID++
			if _, err := a.Insert(now, r); err == nil {
				v.Inserts++
				ids = append(ids, r.ID)
			}
		case k < 8: // delete a random live rule
			if len(ids) > 0 {
				j := rng.Intn(len(ids))
				id := ids[j]
				ids[j] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				a.Delete(now, id) //nolint:errcheck — a crash may have taken it already
			}
		default: // Rule Manager tick; sometimes let the migration complete
			if end := a.Tick(now); end != 0 && rng.Intn(2) == 0 {
				a.Advance(end)
				if end > now {
					now = end
				}
			}
		}
		// The repair loop: the agent flags divergence it can see (crashes,
		// truncations, interrupted migrations); repair it at seeded times
		// so faults also land on half-repaired state.
		if a.NeedsReconcile() && rng.Intn(4) == 0 {
			a.Reconcile(now)
		}
	}

	// Quiesce: stop injecting, drain any in-flight migration, then one
	// final Reconcile. The unconditional pass matters: silently dropped
	// ops ack success without applying, so nothing flags them — only a
	// desired-vs-physical sweep finds the holes.
	a.SetMigrationInterrupt(nil)
	for _, tbl := range tables {
		tbl.SetFaultHook(nil)
	}
	if end := a.MigrationEndsAt(); end != 0 {
		if end < now {
			end = now
		}
		a.Advance(end)
		now = end
	}
	a.Reconcile(now)

	v.Consistent = a.CheckConsistency() == nil
	logical := a.LogicalRules()
	for k := 0; k < 400; k++ {
		var dst uint32
		if len(logical) > 0 && rng.Intn(4) != 0 {
			pick := logical[rng.Intn(len(logical))].Match.Dst
			dst = pick.Addr | (rng.Uint32() & ^pick.Mask())
		} else {
			dst = rng.Uint32()
		}
		want, wok := a.LogicalLookup(dst, 0)
		got, gok := a.Lookup(dst, 0)
		if wok != gok || (wok && got.Action != want.Action) {
			v.Mismatches++
		}
	}

	m := a.Metrics()
	v.Crashes = m.SwitchRestarts
	v.Interrupts = m.MigrationInterrupts
	v.Reconciles = m.Reconciles
	v.Stale = m.ReconcileStale
	v.Repaired = m.ReconcileRepaired
	v.Violations = m.Violations
	v.Dropped = opf.Dropped()
	for _, ev := range schedule[:len(schedule)-len(pending)] {
		if ev.Kind == faultinject.EventTruncateShadow {
			v.Truncations++
		}
	}
	return v
}

// Chaos is the CLI face of the harness: a few seeds, each run twice so
// the rendered table carries its own determinism verdict alongside the
// consistency and lookup-equivalence ones.
func Chaos(scale float64) *Result {
	scale = clampScale(scale)
	seeds := scaleInt(6, scale, 3)
	ops := scaleInt(400, scale, 200)
	res := &Result{ID: "chaos", Title: "seeded fault injection + crash recovery (§4.2 invariants under faults)"}
	tab := &stats.Table{
		Title: fmt.Sprintf("%d seeds × %d ops, Pica8 P-3290: crash / truncate / drop / interrupt", seeds, ops),
		Headers: []string{"seed", "inserts", "crashes", "truncs", "interrupts", "dropped",
			"reconciles", "stale", "repaired", "mismatch", "consistent", "replay"},
	}
	clean := true
	for s := 0; s < seeds; s++ {
		seed := int64(101 + 37*s)
		v := runChaosSeed(seed, ops)
		replay := "ok"
		if v2 := runChaosSeed(seed, ops); v != v2 {
			replay = "DIVERGED"
		}
		if !v.Consistent || v.Mismatches > 0 || replay != "ok" {
			clean = false
		}
		tab.AddRow(fmt.Sprintf("%d", seed), fmt.Sprintf("%d", v.Inserts),
			fmt.Sprintf("%d", v.Crashes), fmt.Sprintf("%d", v.Truncations),
			fmt.Sprintf("%d", v.Interrupts), fmt.Sprintf("%d", v.Dropped),
			fmt.Sprintf("%d", v.Reconciles), fmt.Sprintf("%d", v.Stale),
			fmt.Sprintf("%d", v.Repaired), fmt.Sprintf("%d", v.Mismatches),
			fmt.Sprintf("%v", v.Consistent), replay)
	}
	res.Tables = append(res.Tables, tab)
	if clean {
		res.Notes = append(res.Notes,
			"verdict: every seed converged — post-Reconcile agent view byte-equivalent to the physical tables, all lookups match the monolithic reference, and schedules replay bit-identically")
	} else {
		res.Notes = append(res.Notes,
			"verdict: FAILED — at least one seed left divergent state or a non-reproducible schedule")
	}
	return res
}
