package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/netsim"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

// AppWorkload names one of the paper's application workloads (§8.1.3).
type AppWorkload string

// The four application workloads the paper evaluates (§8.2).
const (
	WorkloadFacebook AppWorkload = "facebook"
	WorkloadGeant    AppWorkload = "geant"
	WorkloadAbilene  AppWorkload = "abilene"
	WorkloadQuest    AppWorkload = "quest"
)

// buildApp constructs the topology and job trace for a workload. Fat-tree
// arity and job counts scale with the scale knob; mechanisms do not.
func buildApp(w AppWorkload, scale float64, seed int64) (*topo.Graph, []workload.Job) {
	rng := rand.New(rand.NewSource(seed))
	switch w {
	case WorkloadFacebook:
		k := 4
		if scale >= 1 {
			k = 8
		}
		if scale >= 4 {
			k = 16 // the paper's full 1024-host fabric
		}
		g := topo.FatTree(k, 1e9, 10*time.Microsecond)
		jobs := workload.FacebookJobs(rng, workload.FacebookConfig{
			Jobs:     scaleInt(400, scale, 60),
			Duration: time.Duration(scaleInt(60, scale, 20)) * time.Second,
			Hosts:    g.Hosts(),
		})
		return g, jobs
	case WorkloadGeant:
		g := topo.Geant()
		tm := workload.GravityTM(rng, g.Hosts(), 12e9)
		return g, workload.FlowsFromTM(rng, tm, time.Duration(scaleInt(20, scale, 6))*time.Second, 40e6)
	case WorkloadAbilene:
		g := topo.Abilene()
		tm := workload.AbileneTM(g.Hosts(), 10e9)
		return g, workload.FlowsFromTM(rng, tm, time.Duration(scaleInt(20, scale, 6))*time.Second, 40e6)
	case WorkloadQuest:
		g := topo.Quest()
		tm := workload.GravityTM(rng, g.Hosts(), 12e9)
		return g, workload.FlowsFromTM(rng, tm, time.Duration(scaleInt(20, scale, 6))*time.Second, 40e6)
	default:
		panic(fmt.Sprintf("experiments: unknown workload %q", w))
	}
}

// appRun is one simulated (workload, installer, switch profile) cell.
type appRun struct {
	kind    netsim.InstallerKind
	profile *tcam.Profile
	metrics *netsim.Metrics
}

func runApp(w AppWorkload, kind netsim.InstallerKind, profile *tcam.Profile, scale float64, seed int64) appRun {
	g, jobs := buildApp(w, scale, seed)
	sim := netsim.New(netsim.Config{
		Graph:        g,
		Profile:      profile,
		Kind:         kind,
		PrefillRules: 300,
		Seed:         seed,
	})
	return appRun{kind: kind, profile: profile, metrics: sim.Run(jobs)}
}

// Figure1 reproduces Fig. 1: CDFs of the JCT increase ratio (relative to a
// zero-control-latency network) for short and long jobs, comparing a raw
// switch against Hermes, Tango, and ESPRES.
func Figure1(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig1", Title: "JCT increase ratio vs zero-latency control plane (Fig. 1)"}
	const seed = 101
	base := runApp(WorkloadFacebook, netsim.InstallZero, tcam.Pica8P3290, scale, seed)

	systems := []netsim.InstallerKind{netsim.InstallDirect, netsim.InstallHermes, netsim.InstallTango, netsim.InstallESPRES}
	names := []string{tcam.Pica8P3290.Name, "Hermes", "Tango", "ESPRES"}

	short := map[string][]float64{}
	long := map[string][]float64{}
	for i, kind := range systems {
		run := runApp(WorkloadFacebook, kind, tcam.Pica8P3290, scale, seed)
		s, l := jctRatios(base.metrics, run.metrics)
		short[names[i]] = s
		long[names[i]] = l
	}
	res.Tables = append(res.Tables,
		quantileTable("(a) short jobs (<1GB): JCT increase ratio", "x", short),
		quantileTable("(b) long jobs: JCT increase ratio", "x", long))
	res.Notes = append(res.Notes,
		"expected shape: short jobs inflate far more than long jobs on raw switches; Hermes stays closest to 1.0 (§2.2)")
	return res
}

// jctRatios computes per-job JCT ratios (system / zero-latency), split
// into short (<1GB) and long jobs.
func jctRatios(base, sys *netsim.Metrics) (short, long []float64) {
	for job, baseJCT := range base.JCTs {
		sysJCT, ok := sys.JCTs[job]
		if !ok || baseJCT <= 0 {
			continue
		}
		ratio := sysJCT / baseJCT
		if base.JobBytes[job] < 1e9 {
			short = append(short, ratio)
		} else {
			long = append(long, ratio)
		}
	}
	return short, long
}

// Figure8 reproduces Fig. 8: CDFs of rule installation time for the three
// switch models and Hermes, on the Facebook and Geant workloads.
func Figure8(scale float64) *Result {
	return ritFigure("fig8",
		"Rule installation time CDFs (Fig. 8)",
		[]ritLine{
			{name: tcam.Pica8P3290.Name, kind: netsim.InstallDirect, profile: tcam.Pica8P3290},
			{name: tcam.Dell8132F.Name, kind: netsim.InstallDirect, profile: tcam.Dell8132F},
			{name: tcam.HP5406zl.Name, kind: netsim.InstallDirect, profile: tcam.HP5406zl},
			{name: "Hermes", kind: netsim.InstallHermes, profile: tcam.Pica8P3290},
		},
		"expected shape: Hermes's CDF rises sharply below its 5ms guarantee; raw switches spread to tens of ms (§8.2)",
		scale)
}

// Figure10 reproduces Fig. 10: rule installation time CDFs for Hermes
// versus Tango and ESPRES.
func Figure10(scale float64) *Result {
	return ritFigure("fig10",
		"Hermes vs Tango vs ESPRES rule installation time (Fig. 10)",
		[]ritLine{
			{name: "Tango", kind: netsim.InstallTango, profile: tcam.Pica8P3290},
			{name: "ESPRES", kind: netsim.InstallESPRES, profile: tcam.Pica8P3290},
			{name: "Hermes", kind: netsim.InstallHermes, profile: tcam.Pica8P3290},
		},
		"expected shape: Hermes beats both by >50% at the median; Tango edges out ESPRES at the tail (§8.3)",
		scale)
}

type ritLine struct {
	name    string
	kind    netsim.InstallerKind
	profile *tcam.Profile
}

func ritFigure(id, title string, lines []ritLine, note string, scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: id, Title: title}
	for _, w := range []AppWorkload{WorkloadFacebook, WorkloadGeant} {
		series := map[string][]float64{}
		for _, l := range lines {
			run := runApp(w, l.kind, l.profile, scale, 202)
			series[l.name] = run.metrics.RITms
		}
		res.Tables = append(res.Tables, quantileTable(fmt.Sprintf("%s: RIT quantiles", w), "ms", series))
	}
	res.Notes = append(res.Notes, note)
	return res
}

// Figure9 reproduces Fig. 9: flow completion time CDFs — Facebook all
// jobs, Facebook short jobs, and Geant.
func Figure9(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig9", Title: "Flow completion time CDFs (Fig. 9)"}
	lines := []ritLine{
		{name: tcam.Pica8P3290.Name, kind: netsim.InstallDirect, profile: tcam.Pica8P3290},
		{name: tcam.Dell8132F.Name, kind: netsim.InstallDirect, profile: tcam.Dell8132F},
		{name: tcam.HP5406zl.Name, kind: netsim.InstallDirect, profile: tcam.HP5406zl},
		{name: "Hermes", kind: netsim.InstallHermes, profile: tcam.Pica8P3290},
	}
	const seed = 303

	// Facebook: all jobs and short jobs.
	all := map[string][]float64{}
	shortOnly := map[string][]float64{}
	for _, l := range lines {
		run := runApp(WorkloadFacebook, l.kind, l.profile, scale, seed)
		var fa, fs []float64
		for flowID, fct := range run.metrics.FCTs {
			fa = append(fa, fct)
			if job, ok := run.metrics.FlowJob[flowID]; ok && run.metrics.JobBytes[job] < 1e9 {
				fs = append(fs, fct)
			}
		}
		all[l.name] = fa
		shortOnly[l.name] = fs
	}
	res.Tables = append(res.Tables,
		quantileTable("(a) Facebook, all jobs: FCT quantiles", "s", all),
		quantileTable("(b) Facebook, short jobs: FCT quantiles", "s", shortOnly))

	// Geant.
	geant := map[string][]float64{}
	for _, l := range lines {
		run := runApp(WorkloadGeant, l.kind, l.profile, scale, seed)
		var f []float64
		for _, fct := range run.metrics.FCTs {
			f = append(f, fct)
		}
		geant[l.name] = f
	}
	res.Tables = append(res.Tables, quantileTable("(c) Geant: FCT quantiles", "s", geant))
	res.Notes = append(res.Notes,
		"expected shape: Hermes improves tails most on short jobs, where transfer time cannot mask control latency (§8.2)")
	return res
}

// Figure11 reproduces Fig. 11: a time series of rule installation times
// for the first N rules, Hermes vs Tango vs ESPRES, on structured
// (Facebook-like) and unstructured (Geant-like) rule streams.
func Figure11(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig11", Title: "Time series of rule installation time (Fig. 11)"}
	n := scaleInt(1000, scale, 200)
	for _, structured := range []bool{true, false} {
		label := "(a) Facebook-like (structured prefixes)"
		if !structured {
			label = "(b) Geant-like (unstructured prefixes)"
		}
		series := installSeries(n, structured)
		tab := &stats.Table{Title: label, Headers: []string{"rule #", "Tango", "ESPRES", "Hermes"}}
		step := n / 10
		if step < 1 {
			step = 1
		}
		for i := step - 1; i < n; i += step {
			tab.AddRow(fmt.Sprintf("%d", i+1),
				fmtMS(series["Tango"][i]), fmtMS(series["ESPRES"][i]), fmtMS(series["Hermes"][i]))
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"expected shape: Tango/ESPRES grow with table occupancy (Tango slower to degrade on structured prefixes); Hermes stays flat under its guarantee (§8.3)")
	return res
}
