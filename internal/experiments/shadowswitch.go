package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/baseline"
	"hermes/internal/classifier"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

// ShadowSwitchComparison explores the design-space contrast §9 draws with
// the closest related work: ShadowSwitch's *software* shadow table versus
// Hermes's *hardware* shadow slice. Both bound insertion latency;
// ShadowSwitch pays with data-plane exposure (rules whose traffic is
// CPU-forwarded while they await promotion to TCAM), Hermes with a slice
// of TCAM capacity. The table reports, per arrival rate: insertion-latency
// quantiles, guarantee violations (>5ms), and the software-forwarding
// exposure in rule·seconds (zero for Hermes and Direct by construction).
func ShadowSwitchComparison(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "shadowswitch", Title: "Hermes vs ShadowSwitch (software shadow, §9)"}
	for _, rate := range []float64{200, 1000} {
		rules := scaleInt(int(rate*4), scale, 400)
		tab := &stats.Table{
			Title:   fmt.Sprintf("%.0f updates/s, Dell 8132F, 400 pre-installed rules", rate),
			Headers: []string{"system", "median", "p95", "p99", ">5ms", "soft rule-s", "TCAM overhead"},
		}
		stream := func() []workload.TimedRule {
			return workload.MicroBench(rand.New(rand.NewSource(23)), workload.MicroBenchConfig{
				Rules: rules, RatePerSec: rate, OverlapFrac: 0.3, MaxPriority: 64,
			})
		}

		// Direct.
		direct := tcam.NewSwitch("direct", tcam.Dell8132F)
		dInst := baseline.NewDirect(direct)
		dInst.Prefill(prefill400())
		dLat, dOver := replayInstaller(dInst, stream(), nil)
		tab.AddRow(rowFor("Dell 8132F (raw)", dLat, dOver, 0, "0%")...)

		// ShadowSwitch.
		ssw := tcam.NewSwitch("shadowswitch", tcam.Dell8132F)
		ss := baseline.NewShadowSwitch(ssw)
		ss.Prefill(prefill400())
		ssLat, ssOver := replayInstaller(ss, stream(), ss.Tick)
		soft := ss.SoftRuleSeconds(ssLat.end)
		tab.AddRow(rowFor("ShadowSwitch", ssLat, ssOver, soft, "0%")...)

		// Hermes.
		cfg := defaultHermesConfig()
		agent := newAgent(tcam.Dell8132F, cfg)
		hInst := baseline.NewHermes(agent)
		hInst.Prefill(prefill400())
		hLat, hOver := replayInstaller(hInst, stream(), hInst.Tick)
		tab.AddRow(rowFor("Hermes (5ms)", hLat, hOver,
			0, fmtPct(agent.OverheadFraction()*100))...)

		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"expected shape: ShadowSwitch's inserts are near-free but accumulate software-forwarding exposure; Hermes bounds latency with zero data-plane involvement, paying in TCAM space instead (§9)")
	return res
}

// prefill400 builds the steady-state background rules all three systems
// start with.
func prefill400() []classifier.Rule {
	out := make([]classifier.Rule, 0, 400)
	for i := 0; i < 400; i++ {
		out = append(out, classifier.Rule{
			ID:       classifier.RuleID(1<<30 + i),
			Match:    classifier.DstMatch(classifier.NewPrefix(0xAC100000|uint32(i)<<8, 24)),
			Priority: 1,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		})
	}
	return out
}

type latencyRun struct {
	ms  []float64
	end time.Duration
}

// replayInstaller drives a timed stream through an Installer, invoking
// tick (if non-nil) every 10ms.
func replayInstaller(inst baseline.Installer, stream []workload.TimedRule, tick func(time.Duration)) (latencyRun, int) {
	const interval = 10 * time.Millisecond
	next := interval
	run := latencyRun{}
	over := 0
	for _, tr := range stream {
		for tick != nil && tr.At >= next {
			tick(next)
			next += interval
		}
		res := inst.InsertBatch(tr.At, []classifier.Rule{tr.Rule})
		if res[0].Err != nil {
			continue
		}
		ms := (res[0].Completed - tr.At).Seconds() * 1e3
		run.ms = append(run.ms, ms)
		if ms > 5.0 {
			over++
		}
	}
	if len(stream) > 0 {
		run.end = stream[len(stream)-1].At
		if tick != nil {
			tick(run.end + interval)
		}
	}
	return run, over
}

func rowFor(name string, run latencyRun, over int, soft float64, overhead string) []string {
	s := stats.Summarize(run.ms)
	return []string{
		name,
		fmtMS(s.Median()), fmtMS(s.P95()), fmtMS(s.P99()),
		fmt.Sprintf("%d", over),
		fmt.Sprintf("%.2f", soft),
		overhead,
	}
}
