package experiments

import "testing"

// TestCacheSweepShape runs the FDRC sweep at test scale and checks the
// structural invariants plus the policy ordering the committed
// BENCH_cache.json gates at full scale: frequency- and cost-based
// promotion must beat recency under cold-scan pollution at s ≥ 1.1 with
// the cache at ≤ 25% of the rule set.
func TestCacheSweepShape(t *testing.T) {
	res, data := CacheSweepData(testScale)
	if res.ID != "cache" {
		t.Fatalf("ID = %q", res.ID)
	}
	wantCells := len(cacheFracSweep) * len(cacheZipfSweep) * len(cachePolicies)
	if len(data.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(data.Cells), wantCells)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != wantCells {
		t.Fatalf("table rows = %d, want %d", len(res.Tables[0].Rows), wantCells)
	}
	for _, c := range data.Cells {
		if c.HitRatio < 0 || c.HitRatio > 1 {
			t.Errorf("%s s=%.2f cap=%.2f: hit ratio %v out of range",
				c.Policy, c.ZipfS, c.CapFrac, c.HitRatio)
		}
		if c.LookupP99NS <= 0 {
			t.Errorf("%s s=%.2f cap=%.2f: p99 = %d", c.Policy, c.ZipfS, c.CapFrac, c.LookupP99NS)
		}
	}
	if !data.LFUBeatsLRU || !data.CostBeatsLR {
		t.Errorf("policy verdicts: lfu_beats_lru=%v cost_beats_lru=%v, want both true",
			data.LFUBeatsLRU, data.CostBeatsLR)
	}
	if data.MinHitRatio <= 0.3 {
		t.Errorf("min {lfu,cost} hit ratio = %v, want > 0.3", data.MinHitRatio)
	}
}

// TestCacheRegistered ensures the sweep is reachable through the registry
// and listed in presentation order.
func TestCacheRegistered(t *testing.T) {
	if _, ok := registry["cache"]; !ok {
		t.Fatal("cache not in registry")
	}
	found := false
	for _, id := range Order() {
		if id == "cache" {
			found = true
		}
	}
	if !found {
		t.Fatal("cache not in Order()")
	}
}
