package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/predict"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

// AutoTune evaluates the self-tuning slack controller (the future work
// §8.6 proposes) on a regime-shift workload: a calm phase at 200 updates/s
// followed by a hot phase at 1000 updates/s with full overlap. A fixed,
// calm-tuned slack (20%) under-provisions the hot phase; the auto-tuner
// starts from the same 20% and raises itself when violations appear.
func AutoTune(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "autotune", Title: "Self-tuning slack vs fixed slack (§8.6 future work)"}
	tab := &stats.Table{
		Headers: []string{"variant", "violations+diversions", "p95 RIT", "final slack", "migrations"},
	}
	calm := scaleInt(1000, scale, 200)
	hot := scaleInt(4000, scale, 800)

	type variant struct {
		name string
		cfg  core.Config
	}
	base := defaultHermesConfig()
	base.Corrector = predict.Slack{Factor: 0.2}
	auto := base
	auto.AutoTuneSlack = true
	paper := defaultHermesConfig() // fixed 100%, the paper's manual choice
	variants := []variant{
		{"fixed 20% (calm-tuned)", base},
		{"auto-tuned (seed 20%)", auto},
		{"fixed 100% (paper)", paper},
	}

	for _, v := range variants {
		a := newAgent(tcam.Dell8132F, v.cfg)
		stream := regimeShiftStream(calm, hot)
		run := replayThroughAgent(a, stream, v.cfg.TickInterval)
		bad := run.violations + run.metrics.ShadowFull
		tab.AddRow(v.name,
			fmt.Sprintf("%d", bad),
			fmtMS(stats.Summarize(run.latenciesMS).P95()),
			fmt.Sprintf("%.0f%%", a.CurrentSlack()*100),
			fmt.Sprintf("%d", run.metrics.Migrations))
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"expected shape: the auto-tuner matches the calm-tuned variant early and converges toward the paper's manual 100% setting after the regime shift")
	return res
}

// regimeShiftStream concatenates a calm 200/s zero-overlap phase with a
// hot 1000/s full-overlap phase.
func regimeShiftStream(calm, hot int) []workload.TimedRule {
	rng := rand.New(rand.NewSource(21))
	first := workload.MicroBench(rng, workload.MicroBenchConfig{
		Rules: calm, RatePerSec: 200, OverlapFrac: 0, MaxPriority: 64,
	})
	second := workload.MicroBench(rng, workload.MicroBenchConfig{
		Rules: hot, RatePerSec: 1000, OverlapFrac: 1.0, MaxPriority: 64,
		FirstID: classifier.RuleID(calm + 1),
	})
	offset := time.Duration(0)
	if len(first) > 0 {
		offset = first[len(first)-1].At
	}
	out := append([]workload.TimedRule(nil), first...)
	for _, tr := range second {
		tr.At += offset
		out = append(out, tr)
	}
	return out
}
