package experiments

import (
	"strings"
	"testing"
)

// TestChaosSeedsConvergeAndReplay: every seeded chaos run must end, after
// the final Reconcile, with the agent byte-equivalent to its physical
// tables and lookup-equivalent to the monolithic reference — and running
// the same seed twice must reproduce the identical schedule and verdict.
func TestChaosSeedsConvergeAndReplay(t *testing.T) {
	injected := 0
	for _, seed := range []int64{1, 7, 42} {
		a := runChaosSeed(seed, 250)
		b := runChaosSeed(seed, 250)
		if a != b {
			t.Fatalf("seed %d: verdict not reproducible:\n first %+v\nsecond %+v", seed, a, b)
		}
		if !a.Consistent {
			t.Errorf("seed %d: agent view diverged from physical tables after reconcile", seed)
		}
		if a.Mismatches != 0 {
			t.Errorf("seed %d: %d lookup mismatches vs the monolithic reference", seed, a.Mismatches)
		}
		if a.Reconciles == 0 {
			t.Errorf("seed %d: repair loop never ran", seed)
		}
		injected += a.Crashes + a.Truncations + a.Interrupts + a.Dropped
	}
	if injected == 0 {
		t.Fatal("no faults injected across any seed; the harness exercised nothing")
	}
	if runChaosSeed(1, 250) == runChaosSeed(2, 250) {
		t.Error("different seeds produced identical verdicts; schedules are not seed-dependent")
	}
}

// TestChaosRegistered: the harness is a first-class experiment — runnable
// by ID through the registry (and therefore from cmd/hermes-bench) — and
// its rendered verdict at a small scale must be clean.
func TestChaosRegistered(t *testing.T) {
	res, err := Run("chaos", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict note in output:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") || strings.Contains(out, "FAILED") {
		t.Fatalf("chaos verdict not clean:\n%s", out)
	}
}
