package experiments

import (
	"math/rand"
	"time"

	"hermes/internal/baseline"
	"hermes/internal/classifier"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

// quantileTable renders one CDF-style comparison: rows are quantiles,
// columns the named series.
func quantileTable(title, unit string, series map[string][]float64) *stats.Table {
	rendered := stats.RenderCDFs(title, unit, series)
	// RenderCDFs already returns aligned text; wrap it in a single-cell
	// table so Result.String composes uniformly.
	t := &stats.Table{Title: ""}
	t.AddRow(rendered)
	return t
}

// seriesBatch is one TE-cycle-like batch of rules arriving together.
type seriesBatch struct {
	at    time.Duration
	rules []classifier.Rule
}

// makeSeriesStream builds n rules in batches of batchSize every interval.
// Structured streams mimic data-center allocations: each batch covers
// sibling prefixes under one /24 with a common action, which Tango can
// aggregate. Unstructured streams mimic ISP prefixes: scattered lengths,
// actions, and priorities.
func makeSeriesStream(rng *rand.Rand, n int, structured bool) []seriesBatch {
	const batchSize = 10
	var out []seriesBatch
	id := classifier.RuleID(1)
	at := time.Duration(0)
	for len(out)*batchSize < n {
		b := seriesBatch{at: at}
		if structured {
			base := rng.Uint32() & 0xFFFFFF00
			prio := int32(10 + rng.Intn(40))
			action := classifier.Action{Type: classifier.ActionForward, Port: rng.Intn(48)}
			for i := 0; i < batchSize; i++ {
				// /27 slices of a shared /24 (8 siblings) plus extras.
				addr := base | uint32((i%8)*32)
				b.rules = append(b.rules, classifier.Rule{
					ID: id, Match: classifier.DstMatch(classifier.NewPrefix(addr, 27)),
					Priority: prio, Action: action,
				})
				id++
			}
		} else {
			for i := 0; i < batchSize; i++ {
				plen := uint8(16 + rng.Intn(15))
				b.rules = append(b.rules, classifier.Rule{
					ID: id, Match: classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), plen)),
					Priority: int32(rng.Intn(64)),
					Action:   classifier.Action{Type: classifier.ActionForward, Port: rng.Intn(48)},
				})
				id++
			}
		}
		out = append(out, b)
		at += 10 * time.Millisecond
	}
	return out
}

// installSeries replays the same stream through Tango, ESPRES and Hermes
// and returns per-rule installation latency (ms) in arrival order.
func installSeries(n int, structured bool) map[string][]float64 {
	out := make(map[string][]float64, 3)

	for _, name := range []string{"Tango", "ESPRES", "Hermes"} {
		rng := rand.New(rand.NewSource(77))
		batches := makeSeriesStream(rng, n, structured)
		var inst baseline.Installer
		switch name {
		case "Tango":
			inst = baseline.NewTango(tcam.NewSwitch("tango", tcam.Pica8P3290))
		case "ESPRES":
			inst = baseline.NewESPRES(tcam.NewSwitch("espres", tcam.Pica8P3290))
		case "Hermes":
			inst = baseline.NewHermes(newAgent(tcam.Pica8P3290, defaultHermesConfig()))
		}
		series := make([]float64, 0, n)
		for _, b := range batches {
			inst.Tick(b.at)
			results := inst.InsertBatch(b.at, b.rules)
			// Attribute latencies back to the original rules: strategies
			// may reorder or merge, so average the batch when the result
			// count differs (Tango) and map by ID otherwise.
			// Per-rule hardware service time: the paper's Fig. 11 plots the
			// per-rule installation cost as the table fills, not cumulative
			// batch queueing.
			if len(results) == len(b.rules) {
				byID := make(map[classifier.RuleID]float64, len(results))
				for _, r := range results {
					byID[r.ID] = r.Latency.Seconds() * 1e3
				}
				for _, r := range b.rules {
					series = append(series, byID[r.ID])
				}
			} else {
				var sum float64
				for _, r := range results {
					sum += r.Latency.Seconds() * 1e3
				}
				mean := 0.0
				if len(results) > 0 {
					mean = sum / float64(len(results))
				}
				for range b.rules {
					series = append(series, mean)
				}
			}
		}
		if len(series) > n {
			series = series[:n]
		}
		out[name] = series
	}
	return out
}
