package experiments

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/loadgen"
	"hermes/internal/rulecache"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// This file drives the flow-driven rule caching hierarchy (DESIGN.md §16)
// across its policy × workload design space: cache capacity as a fraction
// of the rule set crossed with Zipf traffic skew, for each promotion
// policy. The rule set and its churn come from a loadgen schedule; the
// packet stream is Zipf-popular over the installed rules with periodic
// sequential cold-scan bursts — the canonical adversary that pollutes
// recency-based caches while frequency- and cost-based ones hold their
// hot set.

// CacheCell is one point of the cache sweep, machine-readable for
// BENCH_cache.json.
type CacheCell struct {
	Policy      string  `json:"policy"`
	ZipfS       float64 `json:"zipf_s"`
	CapFrac     float64 `json:"cap_frac"`
	HitRatio    float64 `json:"hit_ratio"`
	LookupP50NS int64   `json:"lookup_p50_ns"`
	LookupP99NS int64   `json:"lookup_p99_ns"`
	Promotions  uint64  `json:"promotions"`
	Demotions   uint64  `json:"demotions"`
	Covers      uint64  `json:"cover_installs"`
}

// CacheData is the sweep's machine-readable summary. The booleans encode
// the acceptance claim: at Zipf s ≥ 1.1 with the cache at ≤ 25% of the
// rule set, LFU and cost-aware promotion beat LRU on hit ratio.
type CacheData struct {
	Rules       int         `json:"rules"`
	Lookups     int         `json:"lookups_per_cell"`
	Cells       []CacheCell `json:"cells"`
	MinHitRatio float64     `json:"min_hit_ratio"`
	LFUBeatsLRU bool        `json:"lfu_beats_lru"`
	CostBeatsLR bool        `json:"cost_beats_lru"`
}

// cacheZipfSweep and cacheFracSweep are the swept axes.
var (
	cacheZipfSweep = []float64{1.05, 1.1, 1.3}
	cacheFracSweep = []float64{0.10, 0.25}
	cachePolicies  = []rulecache.Policy{
		rulecache.PolicyLRU, rulecache.PolicyLFU, rulecache.PolicyCostAware,
	}
)

// cacheRun measures one cell: build the rule set through a cached agent via
// a loadgen schedule, then serve the packet stream and report the measured
// window's tier mix.
func cacheRun(sched *loadgen.Schedule, rules int, capacity int, policy rulecache.Policy,
	zipfS float64, lookups int) CacheCell {

	cfg := defaultHermesConfig()
	cfg.Cache = &rulecache.Config{Capacity: capacity, Policy: policy}
	a := newAgent(tcamPica(), cfg)

	// Install the rule set (with its churn: Zipf re-arrivals surface as
	// modifies) through the cached control path.
	now := replayCachedSchedule(a, sched, cfg.TickInterval)

	// Address book: flow index (== Zipf rank) → a packet inside the rule's
	// destination prefix.
	addr := make(map[classifier.RuleID]uint32, rules)
	for _, e := range sched.Events {
		if e.Op != loadgen.OpDelete {
			addr[e.Rule.ID] = e.Rule.Match.Dst.Addr | 1
		}
	}

	pop := workload.NewZipf(workload.SubStream(int64(777), uint64(len(sched.Events))+uint64(capacity)), zipfS, 1, uint64(rules))

	const (
		tickEvery = 2000  // lookups between Rule Manager ticks
		scanEvery = 10000 // lookups between cold scans
		scanLen   = 1000  // sequential rules touched per cold scan
	)
	lookupOne := func(flow uint64) {
		if dst, ok := addr[classifier.RuleID(flow)+1]; ok {
			a.Lookup(dst, 0)
		}
	}
	step := func(n int, scanPos *uint64) {
		for i := 0; i < n; i++ {
			lookupOne(pop.Next())
			if (i+1)%scanEvery == 0 {
				// Cold scan: a sequential sweep over the rule set (rank
				// order is popularity-agnostic here), polluting recency.
				for j := 0; j < scanLen; j++ {
					lookupOne((*scanPos + uint64(j)) % uint64(rules))
				}
				*scanPos += scanLen
			}
			if (i+1)%tickEvery == 0 {
				now += cfg.TickInterval
				if end := a.Tick(now); end != 0 {
					a.Advance(end)
				}
			}
		}
	}

	// Warm phase trains the policy, then the measured window starts from a
	// counter snapshot so warm-up misses don't dilute the verdict.
	var scanPos uint64
	step(lookups/2, &scanPos)
	before := a.CacheStats()
	step(lookups, &scanPos)
	after := a.CacheStats()

	served := float64(after.Lookups() - before.Lookups())
	hitRatio := 0.0
	if served > 0 {
		hitRatio = float64(after.HWHits-before.HWHits) / served
	}
	return CacheCell{
		Policy:      policy.String(),
		ZipfS:       zipfS,
		CapFrac:     float64(capacity) / float64(rules),
		HitRatio:    hitRatio,
		LookupP50NS: after.LookupP50.Nanoseconds(),
		LookupP99NS: after.LookupP99.Nanoseconds(),
		Promotions:  after.Promotions,
		Demotions:   after.Demotions,
		Covers:      after.CoverInstalls,
	}
}

// replayCachedSchedule applies a loadgen schedule's inserts / modifies /
// deletes to a cached agent, ticking at the configured interval, and
// returns the virtual time reached.
func replayCachedSchedule(a *core.Agent, sched *loadgen.Schedule, tick time.Duration) time.Duration {
	nextTick := tick
	var now time.Duration
	for _, e := range sched.Events {
		for e.At >= nextTick {
			if end := a.Tick(nextTick); end != 0 {
				a.Advance(end)
			}
			nextTick += tick
		}
		now = e.At
		switch e.Op {
		case loadgen.OpInsert:
			a.Insert(now, e.Rule) //nolint:errcheck
		case loadgen.OpModify:
			a.Modify(now, e.Rule) //nolint:errcheck
		case loadgen.OpDelete:
			a.Delete(now, e.Rule.ID) //nolint:errcheck
		}
	}
	if end := a.Tick(now + tick); end != 0 {
		a.Advance(end)
	}
	return now + tick
}

// CacheSweepData runs the sweep and returns both the rendered result and
// the machine-readable summary.
func CacheSweepData(scale float64) (*Result, CacheData) {
	scale = clampScale(scale)
	rules := scaleInt(2000, scale, 400)
	lookups := scaleInt(120000, scale, 24000)

	// The rule universe, with churn: Zipf re-arrivals become modifies, so
	// the control path (insertCached / modifyCached) is exercised too.
	sched, err := loadgen.Generate(loadgen.Config{
		Flows:    rules + rules/4,
		Rate:     500,
		Arrival:  loadgen.ArrivalPoisson,
		Distinct: uint64(rules),
		ZipfS:    1.1,
		Seed:     42,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: cache schedule: %v", err))
	}

	data := CacheData{Rules: rules, Lookups: lookups, MinHitRatio: 1}
	tbl := &stats.Table{
		Title: "cache",
		Headers: []string{"policy", "zipf s", "cache", "hit ratio", "p50", "p99",
			"promos", "demos", "covers"},
	}

	// hit[frac][s][policy] for the verdict booleans.
	type key struct {
		frac, s float64
		policy  string
	}
	hit := map[key]float64{}

	for _, frac := range cacheFracSweep {
		capacity := int(frac * float64(rules))
		for _, s := range cacheZipfSweep {
			for _, p := range cachePolicies {
				cell := cacheRun(sched, rules, capacity, p, s, lookups)
				data.Cells = append(data.Cells, cell)
				hit[key{frac, s, cell.Policy}] = cell.HitRatio
				tbl.AddRow(cell.Policy, fmt.Sprintf("%.2f", s),
					fmt.Sprintf("%d%%", int(frac*100)), fmt.Sprintf("%.3f", cell.HitRatio),
					fmt.Sprintf("%dns", cell.LookupP50NS), fmt.Sprintf("%dns", cell.LookupP99NS),
					fmt.Sprintf("%d", cell.Promotions), fmt.Sprintf("%d", cell.Demotions),
					fmt.Sprintf("%d", cell.Covers))
			}
		}
	}

	// Acceptance view: at s ≥ 1.1 with the cache ≤ 25% of the rule set,
	// frequency- and cost-based promotion must beat recency.
	data.LFUBeatsLRU, data.CostBeatsLR = true, true
	for _, frac := range cacheFracSweep {
		for _, s := range cacheZipfSweep {
			if s < 1.1 {
				continue
			}
			lru := hit[key{frac, s, "lru"}]
			if lfu := hit[key{frac, s, "lfu"}]; lfu <= lru {
				data.LFUBeatsLRU = false
			}
			if cost := hit[key{frac, s, "cost"}]; cost <= lru {
				data.CostBeatsLR = false
			}
			for _, p := range []string{"lfu", "cost"} {
				if h := hit[key{frac, s, p}]; h < data.MinHitRatio {
					data.MinHitRatio = h
				}
			}
		}
	}

	res := &Result{
		ID:     "cache",
		Title:  "FDRC caching hierarchy: policy × Zipf skew × cache size",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			fmt.Sprintf("%d rules, %d measured lookups per cell, cold scan every 10k lookups", rules, lookups),
			fmt.Sprintf("lfu beats lru at s>=1.1, cache<=25%%: %v", data.LFUBeatsLRU),
			fmt.Sprintf("cost-aware beats lru at s>=1.1, cache<=25%%: %v", data.CostBeatsLR),
			fmt.Sprintf("min {lfu,cost} hit ratio at s>=1.1, cache<=25%%: %.3f", data.MinHitRatio),
		},
	}
	return res, data
}

// CacheSweep is the registry entry point.
func CacheSweep(scale float64) *Result {
	res, _ := CacheSweepData(scale)
	return res
}
