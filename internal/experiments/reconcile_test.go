package experiments

import (
	"strings"
	"testing"
)

// TestReconcileSeedsConvergeAndReplay: every seeded reconcile chaos run
// must end with zero desired-vs-observed diff on every switch at the
// final store generation, and the same seed must reproduce an identical
// verdict AND an identical trace digest.
func TestReconcileSeedsConvergeAndReplay(t *testing.T) {
	injected := 0
	for _, seed := range []int64{3, 19, 77} {
		a := runReconcileSeed(seed, 40)
		b := runReconcileSeed(seed, 40)
		if a != b {
			t.Fatalf("seed %d: verdict not reproducible:\n first %+v\nsecond %+v", seed, a, b)
		}
		if !a.Converged {
			t.Errorf("seed %d: did not converge (final diff %d, gen %d)", seed, a.FinalDiff, a.Generation)
		}
		if a.FinalDiff != 0 {
			t.Errorf("seed %d: %d residual ops after final sweep", seed, a.FinalDiff)
		}
		if a.Converges == 0 || a.Requeues == 0 {
			t.Errorf("seed %d: reconcile loop barely exercised (%d converges, %d requeues)",
				seed, a.Converges, a.Requeues)
		}
		if a.Takeovers < 4 { // A takes 3 shards, B takes at least one over
			t.Errorf("seed %d: lease failover never happened (%d transfers)", seed, a.Takeovers)
		}
		injected += a.Crashes + a.Truncations + a.Resets + a.Partitions
	}
	if injected == 0 {
		t.Fatal("no faults injected across any seed; the harness exercised nothing")
	}
	if runReconcileSeed(3, 40).Digest == runReconcileSeed(4, 40).Digest {
		t.Error("different seeds produced identical trace digests; schedules are not seed-dependent")
	}
}

// TestReconcileRegistered: the harness is a first-class experiment —
// runnable by ID through the registry (and therefore from
// cmd/hermes-bench and make chaos) — and its rendered 40-seed verdict
// must be clean.
func TestReconcileRegistered(t *testing.T) {
	res, err := Run("reconcile", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict note in output:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") || strings.Contains(out, "FAILED") {
		t.Fatalf("reconcile verdict not clean:\n%s", out)
	}
}
