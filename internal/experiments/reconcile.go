package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/faultinject"
	"hermes/internal/intent"
	"hermes/internal/stats"
)

// The reconcile chaos harness: the level-triggered intent reconciler
// driven entirely in virtual time against a simulated fleet, under every
// fault class the real one faces — switch crashes (tables wiped, channel
// down), silent truncations (nothing flags them; only the resync sweep
// can), channel resets (one transient failure plus a reconnect trigger),
// bidirectional partitions (every observe/apply blackholed until the
// heal), desired-set churn throughout, and a controller-replica crash
// with lease-based takeover halfway in. The verdict checks the
// self-healing contract end to end: after the final resync sweep every
// switch must sit at zero diff against the desired store at its latest
// generation, and the same seed must reproduce a byte-identical trace
// digest — same triggers, same requeues, same handoffs, same instants.

var errSimPartitioned = errors.New("sim: channel partitioned")
var errSimReset = errors.New("sim: channel reset")

// simSwitch is one simulated switch: an in-memory rule table plus
// virtual-time fault state.
type simSwitch struct {
	rules     map[classifier.RuleID]classifier.Rule
	downUntil time.Duration // crashed: not Ready, tables already wiped
	partUntil time.Duration // partitioned: observe/apply blackholed
	resetNext bool          // next observe/apply fails once
}

// simFleet implements intent.Target over simSwitches on a virtual clock.
type simFleet struct {
	clk *intent.VirtualClock
	sw  map[string]*simSwitch
}

func newSimFleet(clk *intent.VirtualClock, names []string) *simFleet {
	f := &simFleet{clk: clk, sw: make(map[string]*simSwitch, len(names))}
	for _, n := range names {
		f.sw[n] = &simSwitch{rules: make(map[classifier.RuleID]classifier.Rule)}
	}
	return f
}

func (f *simFleet) Ready(name string) bool {
	return f.clk.Now() >= f.sw[name].downUntil
}

// fault returns the channel-level error for one RPC attempt, consuming a
// pending reset.
func (f *simFleet) fault(s *simSwitch) error {
	if f.clk.Now() < s.partUntil {
		return errSimPartitioned
	}
	if s.resetNext {
		s.resetNext = false
		return errSimReset
	}
	return nil
}

func (f *simFleet) Observe(name string) ([]classifier.Rule, error) {
	s := f.sw[name]
	if err := f.fault(s); err != nil {
		return nil, err
	}
	out := make([]classifier.Rule, 0, len(s.rules))
	for _, r := range s.rules {
		out = append(out, r)
	}
	return out, nil
}

func (f *simFleet) Apply(name string, op intent.Op) error {
	s := f.sw[name]
	if err := f.fault(s); err != nil {
		return err
	}
	switch op.Kind {
	case intent.OpInsert, intent.OpModify:
		s.rules[op.Rule.ID] = op.Rule
	case intent.OpDelete:
		delete(s.rules, op.Rule.ID)
	}
	return nil
}

// crash wipes the switch and takes it down until heal.
func (s *simSwitch) crash(until time.Duration) {
	s.rules = make(map[classifier.RuleID]classifier.Rule)
	if until > s.downUntil {
		s.downUntil = until
	}
}

// truncate silently keeps only the first keep rules by ascending ID — the
// fault no trigger ever reports.
func (s *simSwitch) truncate(keep int) {
	ids := make([]classifier.RuleID, 0, len(s.rules))
	for id := range s.rules {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if i >= keep {
			delete(s.rules, id)
		}
	}
}

// reconcileVerdict is the comparable outcome of one seeded run; equal
// seeds must produce equal verdicts AND equal trace digests.
type reconcileVerdict struct {
	Seed        int64
	Mutations   int
	Crashes     int
	Truncations int
	Resets      int
	Partitions  int
	Converges   int
	Requeues    int
	Takeovers   int
	Generation  uint64
	FinalDiff   int
	Converged   bool
	Digest      uint64
}

// tlEvent is one scheduled harness action on the virtual timeline.
type tlEvent struct {
	at    time.Duration
	apply func()
}

// runReconcileSeed replays one seeded chaos schedule against a fresh
// store, simulated fleet, and two controller replicas, and returns the
// verdict. Everything runs on one goroutine over a virtual clock, so two
// calls with the same arguments must return identical verdicts and
// digests.
func runReconcileSeed(seed int64, muts int) reconcileVerdict {
	const (
		nSw     = 6
		shards  = 3
		horizon = 8 * time.Second
		ttl     = 250 * time.Millisecond
		downFor = horizon / 20
	)
	failAt := horizon / 2 // replica A crashes here
	v := reconcileVerdict{Seed: seed, Mutations: muts}

	clk := intent.NewVirtualClock()
	names := make([]string, nSw)
	for i := range names {
		names[i] = fmt.Sprintf("sw-%d", i)
	}
	fleet := newSimFleet(clk, names)
	store := intent.NewStore(func(id classifier.RuleID) string {
		return names[uint64(id)%nSw]
	})
	leases := intent.NewLeaseTable(ttl)
	tr := intent.NewTrace()
	mk := func(id string) *intent.Controller {
		c, err := intent.New(intent.Config{
			Switches: names,
			Shards:   shards,
			ID:       id,
			Store:    store,
			Target:   fleet,
			Now:      clk.Now,
			After:    clk.After,
			Seed:     seed,
			Leases:   leases,
			Trace:    tr,
			RateLimit: intent.RateLimit{Base: 10 * time.Millisecond,
				Max: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		})
		if err != nil {
			panic(err) // config is static; a failure here is a harness bug
		}
		return c
	}
	a, b := mk("ctrl-a"), mk("ctrl-b")
	both := func(fn func(c *intent.Controller)) { fn(a); fn(b) }

	// Build the timeline: desired churn, switch faults, channel faults,
	// and resync ticks, all seeded.
	var tl []tlEvent
	rng := rand.New(rand.NewSource(seed))
	nextID := func() classifier.RuleID { return classifier.RuleID(rng.Intn(150) + 1) }
	for i := 0; i < muts; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)))
		if rng.Intn(100) < 65 {
			r := classifier.Rule{
				ID:       nextID(),
				Match:    classifier.DstMatch(classifier.NewPrefix(0x0A000000|rng.Uint32()&0x00FFFF00, uint8(16+rng.Intn(13)))),
				Priority: int32(rng.Intn(100) + 1),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: rng.Intn(48)},
			}
			tl = append(tl, tlEvent{at, func() { store.Set(r) }})
		} else {
			id := nextID()
			tl = append(tl, tlEvent{at, func() { store.Delete(id) }})
		}
	}
	maxHeal := horizon
	for i, name := range names {
		sw := fleet.sw[name]
		name := name
		for _, ev := range faultinject.SwitchSchedule(seed+int64(i)*101, horizon, 2) {
			switch ev.Kind {
			case faultinject.EventCrash:
				v.Crashes++
				heal := ev.At + downFor
				if heal > maxHeal {
					maxHeal = heal
				}
				tl = append(tl, tlEvent{ev.At, func() { sw.crash(heal) }})
				// The reconnect trigger: the channel comes back after the
				// restart and both replicas' fleet hooks fire.
				tl = append(tl, tlEvent{heal, func() {
					both(func(c *intent.Controller) { c.MarkDirty(name, intent.DirtyReconnect) })
				}})
			case faultinject.EventTruncateShadow:
				v.Truncations++
				keep := ev.Arg
				tl = append(tl, tlEvent{ev.At, func() { sw.truncate(keep) }})
			}
		}
		for _, ev := range faultinject.ChannelSchedule(seed+int64(i)*101, horizon, 3) {
			switch ev.Kind {
			case faultinject.ChannelReset:
				v.Resets++
				tl = append(tl, tlEvent{ev.At, func() {
					sw.resetNext = true
					both(func(c *intent.Controller) { c.MarkDirty(name, intent.DirtyReconnect) })
				}})
			case faultinject.ChannelPartition:
				v.Partitions++
				heal := ev.HealAt()
				if heal > maxHeal {
					maxHeal = heal
				}
				tl = append(tl, tlEvent{ev.At, func() {
					if heal > sw.partUntil {
						sw.partUntil = heal
					}
					both(func(c *intent.Controller) { c.MarkDirty(name, intent.DirtyFault) })
				}})
			}
		}
	}
	for k := time.Duration(1); k < 8; k++ {
		at := k * horizon / 8
		tl = append(tl, tlEvent{at, func() {
			both(func(c *intent.Controller) { c.MarkAll(intent.DirtyResync) })
		}})
	}
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].at < tl[j].at })

	// Drive: advance to whichever comes first — the next timeline event or
	// the next requeue timer — then let the live replicas drain. A steps
	// until its crash; B steps throughout but holds no lease until A's
	// expires.
	step := func() {
		if clk.Now() < failAt {
			a.RunUntilQuiesced()
		}
		b.RunUntilQuiesced()
	}
	for i, guard := 0, 0; i < len(tl) || func() bool { _, ok := clk.NextTimer(); return ok }(); guard++ {
		if guard > 1_000_000 {
			return v // non-terminating schedule: Converged stays false
		}
		next, hasTimer := clk.NextTimer()
		if i < len(tl) && (!hasTimer || tl[i].at <= next) {
			clk.AdvanceTo(tl[i].at)
			tl[i].apply()
			i++
		} else {
			clk.AdvanceTo(next)
		}
		step()
	}

	// Final sweep: past every heal and A's lease, one level-triggered
	// resync through B, drained to quiescence.
	clk.AdvanceTo(maxHeal + ttl + time.Millisecond)
	b.MarkAll(intent.DirtyResync)
	for {
		b.RunUntilQuiesced()
		next, ok := clk.NextTimer()
		if !ok {
			break
		}
		clk.AdvanceTo(next)
	}

	v.Generation = store.Generation()
	v.Converged = true
	for _, name := range names {
		desired, _ := store.Desired(name)
		observed, err := fleet.Observe(name)
		if err != nil {
			v.Converged = false
			continue
		}
		v.FinalDiff += len(intent.Diff(desired, observed))
		if gen, ok := b.ConvergedGeneration(name); !ok || gen != v.Generation {
			v.Converged = false
		}
	}
	if v.FinalDiff != 0 {
		v.Converged = false
	}
	for _, r := range tr.Records() {
		switch r.Kind {
		case intent.TraceConverge:
			v.Converges++
		case intent.TraceRequeue:
			v.Requeues++
		}
	}
	v.Takeovers = int(leases.Transfers())
	v.Digest = tr.Digest()
	return v
}

// Reconcile is the CLI face of the harness: 40 seeds, each run twice so
// the rendered table carries its own replay verdict (verdict equality AND
// trace-digest equality) alongside the zero-diff convergence one.
func Reconcile(scale float64) *Result {
	scale = clampScale(scale)
	seeds := scaleInt(40, scale, 40)
	muts := scaleInt(60, scale, 30)
	res := &Result{ID: "reconcile", Title: "level-triggered reconciler convergence under chaos (intent store, §4.2 self-healing)"}
	tab := &stats.Table{
		Title: fmt.Sprintf("%d seeds × %d mutations, 6 switches / 3 shards / 2 replicas: crash + truncate + reset + partition + churn + failover", seeds, muts),
		Headers: []string{"seed", "muts", "crashes", "truncs", "resets", "parts",
			"converges", "requeues", "takeovers", "gen", "finaldiff", "converged", "replay"},
	}
	clean := true
	for s := 0; s < seeds; s++ {
		seed := int64(211 + 53*s)
		v := runReconcileSeed(seed, muts)
		replay := "ok"
		if v2 := runReconcileSeed(seed, muts); v != v2 {
			replay = "DIVERGED"
		}
		if !v.Converged || replay != "ok" {
			clean = false
		}
		tab.AddRow(fmt.Sprintf("%d", seed), fmt.Sprintf("%d", v.Mutations),
			fmt.Sprintf("%d", v.Crashes), fmt.Sprintf("%d", v.Truncations),
			fmt.Sprintf("%d", v.Resets), fmt.Sprintf("%d", v.Partitions),
			fmt.Sprintf("%d", v.Converges), fmt.Sprintf("%d", v.Requeues),
			fmt.Sprintf("%d", v.Takeovers), fmt.Sprintf("%d", v.Generation),
			fmt.Sprintf("%d", v.FinalDiff), fmt.Sprintf("%v", v.Converged), replay)
	}
	res.Tables = append(res.Tables, tab)
	if clean {
		res.Notes = append(res.Notes,
			"verdict: every seed converged — zero desired-vs-observed diff on every switch at the final store generation, with byte-identical per-seed trace digests across replays")
	} else {
		res.Notes = append(res.Notes,
			"verdict: FAILED — at least one seed ended with a non-zero diff, an uncovered generation, or a non-reproducible trace")
	}
	return res
}
