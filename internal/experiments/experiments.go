// Package experiments contains one driver per table and figure of the
// paper's evaluation (§8), shared by the hermes-bench command and the
// testing.B benchmarks in the repository root. Each driver returns a
// Result whose String renders paper-style rows; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Every driver accepts a Scale knob so the same code runs as a quick bench
// (scale < 1) or at full size from the CLI. Scaling changes sample counts,
// never the mechanisms, so the *shape* of each result is preserved.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/predict"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

// Result is one experiment's rendered outcome.
type Result struct {
	// ID is the experiment identifier (e.g. "table1", "fig8").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Tables hold the rendered data.
	Tables []*stats.Table
	// Notes are free-form observations (e.g. which line wins where).
	Notes []string
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// clampScale keeps scales sane.
func clampScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	if s > 16 {
		return 16
	}
	return s
}

// scaleInt scales a count, keeping a floor.
func scaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// agentRun is the outcome of replaying a rule stream through one agent.
type agentRun struct {
	latenciesMS []float64
	violations  int
	elapsed     time.Duration
	metrics     core.Metrics
}

// violationPercent counts guarantee misses: guaranteed-path overruns plus
// inserts that were forced to the unguaranteed main table because the
// shadow was full.
func (r agentRun) violationPercent() float64 {
	total := r.metrics.Inserts
	if total == 0 {
		return 0
	}
	return 100 * float64(r.violations+r.metrics.ShadowFull) / float64(total)
}

// replayThroughAgent drives a timed rule stream into a Hermes agent,
// ticking the Rule Manager at the agent's configured interval.
func replayThroughAgent(a *core.Agent, stream []workload.TimedRule, tick time.Duration) agentRun {
	run := agentRun{}
	nextTick := tick
	for _, tr := range stream {
		for tr.At >= nextTick {
			if end := a.Tick(nextTick); end != 0 {
				a.Advance(end)
			}
			nextTick += tick
		}
		res, err := a.Insert(tr.At, tr.Rule)
		if err != nil {
			continue
		}
		run.latenciesMS = append(run.latenciesMS, (res.Completed-tr.At).Seconds()*1e3)
	}
	if len(stream) > 0 {
		run.elapsed = stream[len(stream)-1].At
		if end := a.Tick(run.elapsed + tick); end != 0 {
			a.Advance(end)
		}
	}
	run.metrics = a.Metrics()
	run.violations = run.metrics.Violations
	return run
}

// newAgent builds a Hermes agent on a fresh switch, panicking on
// configuration errors (experiment configs are static).
func newAgent(profile *tcam.Profile, cfg core.Config) *core.Agent {
	sw := tcam.NewSwitch("bench-"+profile.Name, profile)
	a, err := core.New(sw, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return a
}

// defaultHermesConfig is the paper's default: Cubic Spline prediction with
// 100% slack (§8.6) and a 5ms guarantee.
func defaultHermesConfig() core.Config {
	return core.Config{
		Guarantee:        5 * time.Millisecond,
		Predictor:        predict.NewCubicSpline(16),
		Corrector:        predict.Slack{Factor: 1.0},
		TickInterval:     10 * time.Millisecond,
		DisableRateLimit: true, // experiments shape their own arrival rates
	}
}

// newDisjointRule builds the i-th rule of a non-overlapping stream.
func newDisjointRule(i int, prio int32) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(i + 1),
		Match:    classifier.DstMatch(classifier.NewPrefix(0x0A000000|uint32(i)<<8, 24)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
	}
}

func fmtMS(v float64) string { return fmt.Sprintf("%.3fms", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// tcamPica returns the Pica8 profile (test convenience).
func tcamPica() *tcam.Profile { return tcam.Pica8P3290 }
