package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/classifier"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

// BGPExperiment reproduces §8.4/§2.3: four BGPStream-shaped update traces
// run through a real best-path/FIB pipeline; the resulting FIB operations
// drive a raw switch and a Hermes(5ms) switch. It reports per-router update
// rates (including the >1000 upd/s burst tails), FIB-visible operation
// counts, and installation latency with and without Hermes.
func BGPExperiment(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "bgp", Title: "Hermes on traditional BGP routers (§8.4, §2.3)"}

	rates := &stats.Table{
		Title:   "BGP update stream (per router)",
		Headers: []string{"router", "updates", "mean upd/s", "peak upd/s (100ms window)", "FIB ops", "RIB-only updates"},
	}
	install := &stats.Table{
		Title:   "FIB installation latency (raw switch vs Hermes 5ms, Dell 8132F; Hermes column covers admitted/guaranteed insertions)",
		Headers: []string{"router", "raw median", "raw p99", "hermes median", "hermes p99", "hermes violations", "rate-limited"},
	}

	for i, prof := range bgp.Profiles() {
		cfg := prof.Cfg
		cfg.Duration = time.Duration(float64(cfg.Duration) * scale / 4)
		if cfg.Duration < 5*time.Second {
			cfg.Duration = 5 * time.Second
		}
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		trace := bgp.GenerateTrace(rng, cfg)
		router := bgp.NewRouter(prof.Name)
		var ops []bgp.FIBOp
		for _, u := range trace {
			ops = append(ops, router.Process(u)...)
		}

		// Update-rate statistics.
		windows := map[int]int{}
		for _, u := range trace {
			windows[int(u.At/(100*time.Millisecond))]++
		}
		peak := 0
		for _, c := range windows {
			if c > peak {
				peak = c
			}
		}
		rates.AddRow(prof.Name,
			fmt.Sprintf("%d", len(trace)),
			fmt.Sprintf("%.0f", float64(len(trace))/cfg.Duration.Seconds()),
			fmt.Sprintf("%d", peak*10),
			fmt.Sprintf("%d", len(ops)),
			fmt.Sprintf("%d", len(trace)-len(ops)))

		raw := replayFIBRaw(tcam.Dell8132F, ops)
		hermes := replayFIBHermes(tcam.Dell8132F, ops)
		rawSum := stats.Summarize(raw)
		hSum := stats.Summarize(hermes.latenciesMS)
		install.AddRow(prof.Name,
			fmtMS(rawSum.Median()), fmtMS(rawSum.P99()),
			fmtMS(hSum.Median()), fmtMS(hSum.P99()),
			fmt.Sprintf("%d", hermes.violations+hermes.metrics.ShadowFull),
			fmt.Sprintf("%d", hermes.metrics.RateLimited))
	}
	res.Tables = append(res.Tables, rates, install)
	res.Notes = append(res.Notes,
		"expected shape: calm base rates with >1000 upd/s burst tails; Hermes caps installation latency through the bursts (§2.3, §8.4)")
	return res
}

// replayFIBRaw drives FIB operations into a monolithic switch table,
// returning per-insert latencies in ms.
func replayFIBRaw(profile *tcam.Profile, ops []bgp.FIBOp) []float64 {
	sw := tcam.NewSwitch("bgp-raw", profile)
	tbl := sw.Table()
	var out []float64
	for _, op := range ops {
		switch op.Type {
		case bgp.FIBInsert:
			cost, err := tbl.Insert(op.Rule())
			if err != nil {
				continue
			}
			done := sw.Submit(op.At, cost)
			out = append(out, (done-op.At).Seconds()*1e3)
		case bgp.FIBDelete:
			if cost, ok := tbl.Delete(bgp.PrefixRuleID(op.Prefix)); ok {
				sw.Submit(op.At, cost)
			}
		case bgp.FIBModify:
			if cost, ok := tbl.ModifyAction(bgp.PrefixRuleID(op.Prefix), op.Rule().Action); ok {
				sw.Submit(op.At, cost)
			}
		}
	}
	return out
}

// replayFIBHermes drives FIB operations through a Hermes agent.
func replayFIBHermes(profile *tcam.Profile, ops []bgp.FIBOp) agentRun {
	cfg := defaultHermesConfig()
	// The paper notes BGP needs high slack inflation (>80%) for zero
	// violations; the default 100% satisfies that. Unlike the paced
	// microbenchmarks, BGP bursts exceed the admissible rate, so the Gate
	// Keeper's token bucket is active: overruns go to the main table and
	// only admitted insertions carry the guarantee.
	cfg.DisableRateLimit = false
	a := newAgent(profile, cfg)
	run := agentRun{}
	tick := cfg.TickInterval
	nextTick := tick
	for _, op := range ops {
		for op.At >= nextTick {
			if end := a.Tick(nextTick); end != 0 {
				a.Advance(end)
			}
			nextTick += tick
		}
		switch op.Type {
		case bgp.FIBInsert:
			res, err := a.Insert(op.At, op.Rule())
			if err != nil {
				continue
			}
			if res.Guaranteed {
				run.latenciesMS = append(run.latenciesMS, (res.Completed-op.At).Seconds()*1e3)
			}
		case bgp.FIBDelete:
			a.Delete(op.At, bgp.PrefixRuleID(op.Prefix)) //nolint:errcheck // idempotent replay
		case bgp.FIBModify:
			a.Modify(op.At, op.Rule()) //nolint:errcheck // idempotent replay
		}
	}
	if n := len(ops); n > 0 {
		run.elapsed = ops[n-1].At
	}
	run.metrics = a.Metrics()
	run.violations = run.metrics.Violations
	return run
}

// Figure15 reproduces Fig. 15: the CPU cost of Hermes's own algorithms as
// the rule count grows — per-insert partitioning (≈ constant) versus
// migration optimization (superlinear) — plus memory footprint.
//
// Substitution note: the paper measures CPU% and memory% of a Python
// implementation on an Edge-Core AS5712's management CPU. We measure the Go
// implementation's wall-clock algorithm runtimes and heap usage directly,
// which preserves the growth-shape comparison the figure makes.
func Figure15(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig15", Title: "Algorithm runtime and memory vs rule count (Fig. 15)"}
	tab := &stats.Table{
		Headers: []string{"rules", "insert algo (µs/rule)", "migration algo (ms total)", "heap (MB)"},
	}
	sizes := []int{1000, 2000, 5000, 10000, 20000}
	if scale < 1 {
		sizes = []int{500, 1000, 2000, 4000}
	}
	for _, n := range sizes {
		insertPer, migTotal, heapMB := measureAlgorithms(n)
		tab.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", insertPer),
			fmt.Sprintf("%.1f", migTotal),
			fmt.Sprintf("%.1f", heapMB),
		)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"expected shape: insertion cost ≈ flat; migration cost grows superlinearly; both scale to 20k rules/s (§8.7)")
	return res
}

// measureAlgorithms measures (a) per-rule partitioning time against an
// n-rule main index, (b) total migration-optimization time for n rules,
// and (c) heap usage for the structures.
func measureAlgorithms(n int) (insertMicros, migrateMillis, heapMB float64) {
	rng := rand.New(rand.NewSource(int64(n)))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// Build an n-rule main index (the dominant live structure).
	var idx classifier.Trie
	rules := make([]classifier.Rule, 0, n)
	for i := 0; i < n; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), uint8(12+rng.Intn(13)))),
			Priority: int32(rng.Intn(64)),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
		rules = append(rules, r)
		idx.Insert(r)
	}
	runtime.ReadMemStats(&after)
	heapMB = float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20)
	if heapMB < 0 {
		heapMB = 0
	}

	// (a) insertion algorithm: partition a probe rule against the index.
	// Best of three rounds, so a GC pause in one round cannot masquerade
	// as algorithmic cost.
	const probes = 200
	nextID := classifier.RuleID(1 << 20)
	insertMicros = 0
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < probes; i++ {
			probe := classifier.Rule{
				ID:       classifier.RuleID(1<<19 + i),
				Match:    classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), 24)),
				Priority: 1,
			}
			classifier.PartitionNewRule(probe, &idx, func() classifier.RuleID {
				nextID++
				return nextID
			})
		}
		per := float64(time.Since(start).Microseconds()) / probes
		if round == 0 || per < insertMicros {
			insertMicros = per
		}
	}

	// (b) migration algorithm: group and merge the full rule set, the
	// optimize step of Fig. 7.
	start := time.Now()
	groups := make(map[int64][]classifier.Match)
	for _, r := range rules {
		key := int64(r.Priority)<<32 | int64(r.Action.Port)
		groups[key] = append(groups[key], r.Match)
	}
	for _, ms := range groups {
		classifier.MergeMatches(ms)
	}
	migrateMillis = float64(time.Since(start).Microseconds()) / 1e3
	return insertMicros, migrateMillis, heapMB
}
