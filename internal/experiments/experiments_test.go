package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"hermes/internal/stats"
)

// testScale keeps experiment tests fast while exercising the full drivers.
const testScale = 0.1

func TestTable1MatchesPaper(t *testing.T) {
	res := Table1()
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	// Every measured rate must be within 25% of the paper column (the
	// steady-state benchmark measures slightly off the exact calibration
	// point because the probe batch raises occupancy by one).
	for _, tab := range res.Tables {
		for _, row := range tab.Rows {
			measured := mustFloat(t, row[1])
			paper := mustFloat(t, row[2])
			if math.Abs(measured-paper)/paper > 0.25 {
				t.Errorf("%s occupancy %s: measured %v vs paper %v", tab.Title, row[0], measured, paper)
			}
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "ms"), "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFigure14Shape(t *testing.T) {
	res := Figure14()
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Overhead must increase with the guarantee for every switch column.
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for _, row := range rows {
			v := mustFloat(t, row[col])
			if v <= prev {
				t.Errorf("column %d not increasing: %v then %v", col, prev, v)
			}
			prev = v
		}
	}
	// Headline: Pica8 at 5ms under 5%.
	if v := mustFloat(t, rows[1][3]); v >= 5 {
		t.Errorf("Pica8 5ms overhead = %v%%, want <5%%", v)
	}
}

func TestFigure12Shape(t *testing.T) {
	res := Figure12(testScale)
	viol := res.Tables[0]
	// Violations at threshold 0 must be zero (constant migration), and the
	// highest threshold must have at least as many violations as the
	// lowest for each switch.
	first := viol.Rows[0]
	last := viol.Rows[len(viol.Rows)-1]
	for col := 1; col <= 3; col++ {
		if v := mustFloat(t, first[col]); v != 0 {
			t.Errorf("threshold 0%% violations = %v, want 0 (col %d)", v, col)
		}
		if lo, hi := mustFloat(t, first[col]), mustFloat(t, last[col]); hi < lo {
			t.Errorf("violations decreased with threshold (col %d): %v -> %v", col, lo, hi)
		}
	}
	// Migration frequency at threshold 0 must exceed predictive Hermes.
	freq := res.Tables[1]
	row0 := freq.Rows[0]
	for col := 1; col <= 3; col++ {
		simple := mustFloat(t, row0[col])
		hermes := mustFloat(t, row0[col+3])
		if simple <= hermes {
			t.Errorf("threshold-0 migration rate %v not above predictive %v (col %d)", simple, hermes, col)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	res := Figure13(testScale)
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	// At the high rate with 100% overlap, latency at slack 100% must not
	// exceed latency at slack 0% (slack helps under pressure).
	high := res.Tables[1]
	lastCol := len(high.Headers) - 1
	atSlack0 := mustFloat(t, high.Rows[0][lastCol])
	atSlack100 := mustFloat(t, high.Rows[len(high.Rows)-1][lastCol])
	if atSlack100 > atSlack0*1.5 {
		t.Errorf("100%% slack latency %v far above 0%% slack %v", atSlack100, atSlack0)
	}
}

func TestPredictorSweepRuns(t *testing.T) {
	res := PredictorSweep(testScale)
	if len(res.Tables[0].Rows) != 6 {
		t.Fatalf("rows = %d, want 6 combos", len(res.Tables[0].Rows))
	}
	for _, row := range res.Tables[0].Rows {
		if mustFloat(t, row[2]) <= 0 {
			t.Errorf("%s: non-positive p95", row[0])
		}
	}
}

func TestBGPExperimentShape(t *testing.T) {
	res := BGPExperiment(testScale)
	rates := res.Tables[0]
	if len(rates.Rows) != 4 {
		t.Fatalf("routers = %d, want 4", len(rates.Rows))
	}
	for _, row := range rates.Rows {
		peak := mustFloat(t, row[3])
		if peak < 1000 {
			t.Errorf("%s: peak rate %v, want >1000 upd/s tail (§2.3)", row[0], peak)
		}
		// Some updates must be RIB-only (never reach the FIB).
		if ribOnly := mustFloat(t, row[5]); ribOnly <= 0 {
			t.Errorf("%s: no RIB-only updates; FIB preprocessing missing", row[0])
		}
	}
	install := res.Tables[1]
	for _, row := range install.Rows {
		rawP99 := mustFloat(t, row[2])
		hermesP99 := mustFloat(t, row[4])
		if hermesP99 > 10.0 { // <= 2x guarantee even through bursts
			t.Errorf("%s: Hermes p99 %vms above 2x guarantee", row[0], hermesP99)
		}
		if rawP99 <= hermesP99 {
			t.Errorf("%s: raw p99 %v not above Hermes %v", row[0], rawP99, hermesP99)
		}
	}
}

func TestFigure15Shape(t *testing.T) {
	res := Figure15(testScale)
	rows := res.Tables[0].Rows
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Migration cost must grow with rule count; insertion cost must grow
	// far slower (≈ flat).
	migFirst := mustFloat(t, rows[0][2])
	migLast := mustFloat(t, rows[len(rows)-1][2])
	if migLast <= migFirst {
		t.Errorf("migration cost did not grow: %v -> %v", migFirst, migLast)
	}
	insFirst := mustFloat(t, rows[0][1])
	insLast := mustFloat(t, rows[len(rows)-1][1])
	rulesFirst := mustFloat(t, rows[0][0])
	rulesLast := mustFloat(t, rows[len(rows)-1][0])
	if insFirst > 0 && (insLast/insFirst) > (rulesLast/rulesFirst) {
		t.Errorf("insertion cost grew superlinearly: %v -> %v over %vx rules",
			insFirst, insLast, rulesLast/rulesFirst)
	}
}

func TestAblationsShape(t *testing.T) {
	res := Ablations(testScale)
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	// (a) bypass on must use fewer shadow inserts than bypass off.
	bypass := res.Tables[0]
	onShadow := mustFloat(t, bypass.Rows[0][2])
	offShadow := mustFloat(t, bypass.Rows[1][2])
	if onShadow >= offShadow {
		t.Errorf("bypass on shadow inserts %v not below off %v", onShadow, offShadow)
	}
	// (b) merge on must install fewer partitions per rule than merge off.
	merge := res.Tables[1]
	onPer := mustFloat(t, merge.Rows[0][2])
	offPer := mustFloat(t, merge.Rows[1][2])
	if onPer <= 0 || offPer <= 0 || onPer >= offPer {
		t.Errorf("merge-on partitions/rule %v not below merge-off %v", onPer, offPer)
	}
	// (c) atomic migration must expose zero rule-seconds; naive must not.
	atomic := res.Tables[2]
	if v := mustFloat(t, atomic.Rows[0][2]); v != 0 {
		t.Errorf("atomic migration exposed %v rule-seconds", v)
	}
	if v := mustFloat(t, atomic.Rows[1][2]); v <= 0 {
		t.Errorf("naive migration exposed %v rule-seconds, want > 0", v)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("registry size = %d", len(ids))
	}
	if len(Order()) != len(ids) {
		t.Fatalf("Order() lists %d experiments, registry has %d", len(Order()), len(ids))
	}
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown experiment must error")
	}
	res, err := Run("fig14", 1)
	if err != nil || res.ID != "fig14" {
		t.Errorf("Run(fig14) = %v, %v", res, err)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFigure11Shape(t *testing.T) {
	res := Figure11(testScale)
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if len(tab.Rows) == 0 {
			t.Fatal("empty series")
		}
		// Hermes's final point must stay under its 5ms guarantee while at
		// least one baseline exceeds it by the end of the stream.
		last := tab.Rows[len(tab.Rows)-1]
		hermes := mustFloat(t, last[3])
		if hermes > 5.0 {
			t.Errorf("%s: Hermes final RIT %vms above guarantee", tab.Title, hermes)
		}
		tango := mustFloat(t, last[1])
		espres := mustFloat(t, last[2])
		if tango <= hermes && espres <= hermes {
			t.Errorf("%s: both baselines at/below Hermes at the end (tango=%v espres=%v hermes=%v)",
				tab.Title, tango, espres, hermes)
		}
	}
}

func TestQuantileTableRenders(t *testing.T) {
	tab := quantileTable("x", "ms", map[string][]float64{"a": {1, 2, 3}})
	if !strings.Contains(tab.String(), "p50") {
		t.Error("missing quantile rows")
	}
}

func TestStatsSummaryIntegration(t *testing.T) {
	// Guard against stats regressions surfacing here: summary of the
	// latencies produced by an agent run is well-formed.
	run := replayDescendingStream(newAgent(tcamPica(), defaultHermesConfig()), 50, defaultHermesConfig().TickInterval)
	sum := stats.Summarize(run.latenciesMS)
	if sum.N() == 0 || sum.Min() < 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestAutoTuneShape(t *testing.T) {
	res := AutoTune(testScale)
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fixedBad := mustFloat(t, rows[0][1])
	autoBad := mustFloat(t, rows[1][1])
	if fixedBad > 0 && autoBad > fixedBad {
		t.Errorf("auto-tuner (%v) worse than the calm-tuned fixed slack (%v)", autoBad, fixedBad)
	}
	// The tuner must have moved off its 20%% seed if anything went wrong,
	// or stayed at/below it when nothing did.
	finalSlack := mustFloat(t, rows[1][3])
	if autoBad > 0 && finalSlack <= 20 {
		t.Errorf("violations occurred but slack stayed at %v%%", finalSlack)
	}
}

func TestShadowSwitchComparisonShape(t *testing.T) {
	res := ShadowSwitchComparison(testScale)
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if len(tab.Rows) != 3 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		raw, ss, hermes := tab.Rows[0], tab.Rows[1], tab.Rows[2]
		// ShadowSwitch inserts beat raw hardware at the median.
		if mustFloat(t, ss[1]) >= mustFloat(t, raw[1]) {
			t.Errorf("ShadowSwitch median %v not below raw %v", ss[1], raw[1])
		}
		// ShadowSwitch pays software exposure; Hermes and raw do not.
		if mustFloat(t, ss[5]) <= 0 {
			t.Errorf("ShadowSwitch soft rule-seconds = %v, want > 0", ss[5])
		}
		if mustFloat(t, hermes[5]) != 0 || mustFloat(t, raw[5]) != 0 {
			t.Error("Hermes/raw must have zero software exposure")
		}
		// Hermes pays TCAM overhead; ShadowSwitch does not.
		if mustFloat(t, hermes[6]) <= 0 {
			t.Errorf("Hermes overhead = %v, want > 0", hermes[6])
		}
	}
}

// TestFigure8Driver smoke-runs one full netsim figure driver end to end
// (the others share ritFigure/runApp, which this covers).
func TestFigure8Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("netsim figure driver is seconds-long")
	}
	res := Figure8(0.05)
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if len(tab.Rows) == 0 {
			t.Fatal("empty figure table")
		}
	}
}
