package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

// Ablations exercises the design choices DESIGN.md calls out, each with
// its corresponding agent flag:
//
//   - the §4.2 lowest-priority bypass (DisableLowPriorityBypass);
//   - the Algorithm-1 merge step (DisableMergeOptimization);
//   - the atomic migration ordering of §5.2 (NaiveMigration).
func Ablations(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "ablations", Title: "Design-choice ablations (§4.2, Alg. 1, §5.2)"}
	res.Tables = append(res.Tables,
		ablateBypass(scale),
		ablateMerge(scale),
		ablateAtomicMigration(scale))
	res.Notes = append(res.Notes,
		"each row pair contrasts the design choice enabled vs disabled; the enabled variant should dominate")
	return res
}

// ablateBypass measures the §4.2 optimization on a stream that appends
// many lowest-priority rules (the workload the optimization targets).
func ablateBypass(scale float64) *stats.Table {
	tab := &stats.Table{
		Title:   "(a) lowest-priority bypass (§4.2): descending-priority stream",
		Headers: []string{"variant", "median RIT", "shadow inserts", "migrations"},
	}
	n := scaleInt(2000, scale, 300)
	for _, disable := range []bool{false, true} {
		cfg := defaultHermesConfig()
		cfg.DisableLowPriorityBypass = disable
		a := newAgent(tcam.Pica8P3290, cfg)
		run := replayDescendingStream(a, n, cfg.TickInterval)
		name := "bypass on"
		if disable {
			name = "bypass off"
		}
		tab.AddRow(name,
			fmtMS(stats.Summarize(run.latenciesMS).Median()),
			fmt.Sprintf("%d", run.metrics.ShadowInserts),
			fmt.Sprintf("%d", run.metrics.Migrations))
	}
	return tab
}

// replayDescendingStream inserts rules in descending priority order so
// every rule is globally lowest on arrival.
func replayDescendingStream(a *core.Agent, n int, tick time.Duration) agentRun {
	run := agentRun{}
	now := time.Duration(0)
	nextTick := tick
	for i := 0; i < n; i++ {
		now += time.Millisecond
		for now >= nextTick {
			if end := a.Tick(nextTick); end != 0 {
				a.Advance(end)
			}
			nextTick += tick
		}
		r := newDisjointRule(i, int32(n-i)) // strictly descending priorities
		res, err := a.Insert(now, r)
		if err != nil {
			continue
		}
		run.latenciesMS = append(run.latenciesMS, (res.Completed-now).Seconds()*1e3)
	}
	run.elapsed = now
	run.metrics = a.Metrics()
	run.violations = run.metrics.Violations
	return run
}

// ablateMerge contrasts Algorithm 1 with and without the line-7 merge on a
// workload where merging provably matters: each new rule is cut by a pair
// of higher-priority main-table rules occupying sibling destination
// halves with a common source region. Without merging the fragments of the
// two cuts stay separate (16 per rule); the merge step recombines sibling
// destination fragments with identical sources (8 per rule), halving
// shadow-table pressure.
func ablateMerge(scale float64) *stats.Table {
	tab := &stats.Table{
		Title:   "(b) Algorithm 1 merge step: sibling-cut stream",
		Headers: []string{"variant", "partitions installed", "partitions/rule", "shadow-full diversions", "migrations"},
	}
	blocks := scaleInt(300, scale, 60)
	for _, disable := range []bool{false, true} {
		run := runMergeAblation(blocks, disable)
		name := "merge on"
		if disable {
			name = "merge off"
		}
		perRule := 0.0
		if run.metrics.RulesCut > 0 {
			perRule = float64(run.metrics.PartitionsInstalled) / float64(run.metrics.RulesCut)
		}
		tab.AddRow(name,
			fmt.Sprintf("%d", run.metrics.PartitionsInstalled),
			fmt.Sprintf("%.1f", perRule),
			fmt.Sprintf("%d", run.metrics.ShadowFull),
			fmt.Sprintf("%d", run.metrics.Migrations))
	}
	return tab
}

// MergeAblationRun executes the merge ablation workload and returns the
// agent metrics; exported for the BenchmarkAblationMerge shape metric.
func MergeAblationRun(blocks int, disableMerge bool) core.Metrics {
	return runMergeAblation(blocks, disableMerge).metrics
}

func runMergeAblation(blocks int, disableMerge bool) agentRun {
	cfg := defaultHermesConfig()
	cfg.DisableLowPriorityBypass = true
	cfg.DisableMergeOptimization = disableMerge
	a := newAgent(tcam.Dell8132F, cfg)
	src := classifier.MustParsePrefix("10.0.0.0/8")
	now := time.Duration(0)
	id := classifier.RuleID(1)

	// Phase 1: blockers — per block, two sibling /25s sharing a /8 source,
	// at high priority. They migrate into the main table.
	shadowCap := a.ShadowSize()
	for i := 0; i < blocks; i++ {
		dstBase := classifier.NewPrefix(0xC0000000|uint32(i)<<8, 24)
		lo, hi := dstBase.Children()
		for _, d := range []classifier.Prefix{lo, hi} {
			r := classifier.Rule{
				ID:       id,
				Match:    classifier.Match{Dst: d, Src: src},
				Priority: 100,
				Action:   classifier.Action{Type: classifier.ActionForward, Port: 1},
			}
			id++
			if _, err := a.Insert(now, r); err != nil {
				panic(err)
			}
			now += time.Millisecond
		}
		// Keep the shadow from overflowing while loading blockers.
		if a.ShadowOccupancy() > shadowCap-8 {
			if end := a.ForceMigration(now); end != 0 {
				a.Advance(end)
				now = end
			}
		}
	}
	if end := a.ForceMigration(now); end != 0 {
		a.Advance(end)
		now = end
	}

	// Phase 2: one low-priority /24-wide rule per block; each is cut by
	// both blockers.
	run := agentRun{}
	base := a.Metrics()
	for i := 0; i < blocks; i++ {
		r := classifier.Rule{
			ID:       id,
			Match:    classifier.DstMatch(classifier.NewPrefix(0xC0000000|uint32(i)<<8, 24)),
			Priority: 1,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: 2},
		}
		id++
		res, err := a.Insert(now, r)
		if err == nil {
			run.latenciesMS = append(run.latenciesMS, (res.Completed-now).Seconds()*1e3)
		}
		now += 5 * time.Millisecond
		if end := a.Tick(now); end != 0 {
			a.Advance(end)
			now = end
		}
	}
	run.elapsed = now
	m := a.Metrics()
	// Report phase-2 deltas only.
	m.PartitionsInstalled -= base.PartitionsInstalled
	m.RulesCut -= base.RulesCut
	m.ShadowFull -= base.ShadowFull
	m.Migrations -= base.Migrations
	run.metrics = m
	run.violations = m.Violations
	return run
}

// ablateAtomicMigration contrasts the §5.2 ordering (insert into main,
// then empty shadow) with the naive reverse ordering, measuring the
// rule·seconds during which rules were installed in neither table.
func ablateAtomicMigration(scale float64) *stats.Table {
	tab := &stats.Table{
		Title:   "(c) migration atomicity (§5.2)",
		Headers: []string{"variant", "migrations", "exposed rule-seconds"},
	}
	n := scaleInt(2000, scale, 300)
	for _, naive := range []bool{false, true} {
		cfg := defaultHermesConfig()
		cfg.NaiveMigration = naive
		a := newAgent(tcam.Pica8P3290, cfg)
		stream := workload.MicroBench(rand.New(rand.NewSource(17)), workload.MicroBenchConfig{
			Rules: n, RatePerSec: 600, OverlapFrac: 0.3, MaxPriority: 64,
		})
		run := replayThroughAgent(a, stream, cfg.TickInterval)
		name := "atomic (paper)"
		if naive {
			name = "naive delete-first"
		}
		tab.AddRow(name,
			fmt.Sprintf("%d", run.metrics.Migrations),
			fmt.Sprintf("%.4f", run.metrics.ExposedRuleSeconds))
	}
	return tab
}
