package experiments

import (
	"testing"

	"hermes/internal/netsim"
	"hermes/internal/stats"
	"hermes/internal/tcam"
)

// TestBuildAppAllWorkloads exercises every §8.1.3 workload end to end,
// including the two (Abilene, Quest) the paper evaluates but does not plot.
func TestBuildAppAllWorkloads(t *testing.T) {
	for _, w := range []AppWorkload{WorkloadFacebook, WorkloadGeant, WorkloadAbilene, WorkloadQuest} {
		g, jobs := buildApp(w, 0.05, 7)
		if g == nil || len(jobs) == 0 {
			t.Fatalf("%s: empty workload", w)
		}
		run := runApp(w, netsim.InstallHermes, tcam.Pica8P3290, 0.05, 7)
		if len(run.metrics.JCTs) != len(jobs) {
			t.Errorf("%s: completed %d/%d jobs", w, len(run.metrics.JCTs), len(jobs))
		}
	}
}

func TestBuildAppUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown workload must panic")
		}
	}()
	buildApp(AppWorkload("nope"), 1, 1)
}

// TestFigure8HermesDominates runs the fig8 cells at smoke scale and checks
// the central claim: Hermes's median RIT beats every raw switch by a wide
// margin (the paper reports 80–94%).
func TestFigure8HermesDominates(t *testing.T) {
	const seed = 202
	hermesRun := runApp(WorkloadFacebook, netsim.InstallHermes, tcam.Pica8P3290, testScale, seed)
	if len(hermesRun.metrics.RITms) == 0 {
		t.Skip("no installs at this scale")
	}
	hermesMed := stats.Summarize(hermesRun.metrics.RITms).Median()
	for _, p := range tcam.Profiles() {
		raw := runApp(WorkloadFacebook, netsim.InstallDirect, p, testScale, seed)
		if len(raw.metrics.RITms) == 0 {
			continue
		}
		rawMed := stats.Summarize(raw.metrics.RITms).Median()
		improvement := 1 - hermesMed/rawMed
		if improvement < 0.5 {
			t.Errorf("%s: Hermes median improvement only %.0f%% (hermes %.2fms vs raw %.2fms)",
				p.Name, improvement*100, hermesMed, rawMed)
		}
	}
}

// TestFigure10Shape verifies the §8.3 ordering on the Geant workload:
// Hermes < Tango ≤ ESPRES at the tail.
func TestFigure10Shape(t *testing.T) {
	const seed = 202
	tail := func(kind netsim.InstallerKind) float64 {
		run := runApp(WorkloadGeant, kind, tcam.Pica8P3290, testScale, seed)
		if len(run.metrics.RITms) == 0 {
			t.Skip("no installs")
		}
		return stats.Summarize(run.metrics.RITms).P95()
	}
	hermes := tail(netsim.InstallHermes)
	tango := tail(netsim.InstallTango)
	espres := tail(netsim.InstallESPRES)
	if hermes >= tango || hermes >= espres {
		t.Errorf("Hermes p95 %.2fms not below Tango %.2fms / ESPRES %.2fms", hermes, tango, espres)
	}
	if tango > espres {
		t.Errorf("Tango p95 %.2fms above ESPRES %.2fms on unstructured prefixes", tango, espres)
	}
}

// TestFigure1HermesStaysAtOne checks Fig. 1's Hermes property: the JCT
// increase ratio stays pinned near 1.0.
func TestFigure1HermesStaysAtOne(t *testing.T) {
	const seed = 101
	base := runApp(WorkloadFacebook, netsim.InstallZero, tcam.Pica8P3290, testScale, seed)
	hermes := runApp(WorkloadFacebook, netsim.InstallHermes, tcam.Pica8P3290, testScale, seed)
	short, long := jctRatios(base.metrics, hermes.metrics)
	all := append(short, long...)
	if len(all) == 0 {
		t.Skip("no comparable jobs")
	}
	s := stats.Summarize(all)
	if s.Quantile(0.9) > 1.1 {
		t.Errorf("Hermes p90 JCT ratio = %.3f, want ≈1.0", s.Quantile(0.9))
	}
}
