package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/predict"
	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/workload"
)

// Table1 reproduces Table 1: rule update rate versus flow-table occupancy
// for the Pica8 P-3290 and Dell 8132F. The harness fills a table to each
// occupancy and measures the sustained rate of top-priority insertions
// (each shifting the whole table), exactly the benchmark behind the
// published numbers.
func Table1() *Result {
	res := &Result{ID: "table1", Title: "Rule update rate vs. table occupancy (Table 1)"}
	cases := []struct {
		profile     *tcam.Profile
		occupancies []int
		paper       []float64
	}{
		{tcam.Pica8P3290, []int{50, 200, 1000, 2000}, []float64{1266, 114, 23, 12}},
		{tcam.Dell8132F, []int{50, 250, 500, 750}, []float64{970, 494, 42, 29}},
	}
	for _, c := range cases {
		tab := &stats.Table{
			Title:   fmt.Sprintf("%s (%s)", c.profile.Name, c.profile.ASIC),
			Headers: []string{"occupancy", "updates/s (measured)", "updates/s (paper)"},
		}
		for i, occ := range c.occupancies {
			measured := measureUpdateRate(c.profile, occ)
			tab.AddRow(
				fmt.Sprintf("%d", occ),
				fmt.Sprintf("%.0f", measured),
				fmt.Sprintf("%.0f", c.paper[i]),
			)
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"measured rates are produced by the TCAM shift-cost model; matching the paper column validates calibration")
	return res
}

// measureUpdateRate fills a table to the target occupancy and measures the
// update rate for inserting batchSize top-priority rules.
func measureUpdateRate(profile *tcam.Profile, occupancy int) float64 {
	tbl := tcam.NewTable("t1", profile.Capacity, profile)
	for i := 0; i < occupancy; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8, 24)),
			Priority: 10,
		}
		if _, err := tbl.Insert(r); err != nil {
			panic(err)
		}
	}
	const batch = 10
	var total time.Duration
	for i := 0; i < batch; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(100000 + i),
			Match:    classifier.DstMatch(classifier.NewPrefix(0xF0000000|uint32(i)<<8, 24)),
			Priority: 1000, // top priority: shifts the whole table
		}
		cost, err := tbl.Insert(r)
		if err != nil {
			panic(err)
		}
		total += cost
		// Keep occupancy constant for a steady-state rate.
		tbl.Delete(r.ID)
	}
	return float64(batch) / total.Seconds()
}

// Figure12 reproduces Fig. 12: Hermes-SIMPLE (threshold-triggered
// migration) swept over threshold values at 1000 updates/s with 100%
// overlap, against predictive Hermes — violations (a) and migration
// frequency (b).
func Figure12(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig12", Title: "Hermes-SIMPLE under different thresholds (Fig. 12)"}
	thresholds := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	rules := scaleInt(6000, scale, 800)

	viol := &stats.Table{
		Title:   "(a) percentage of violations vs threshold",
		Headers: []string{"threshold", tcam.Dell8132F.Name, tcam.Pica8P3290.Name, tcam.HP5406zl.Name},
	}
	freq := &stats.Table{
		Title:   "(b) migrations per second vs threshold",
		Headers: []string{"threshold", tcam.Dell8132F.Name, tcam.Pica8P3290.Name, tcam.HP5406zl.Name, "Hermes(Dell)", "Hermes(Pica8)", "Hermes(HP)"},
	}

	profiles := []*tcam.Profile{tcam.Dell8132F, tcam.Pica8P3290, tcam.HP5406zl}

	// Predictive Hermes reference rates (threshold-independent).
	hermesRates := make([]float64, len(profiles))
	for i, p := range profiles {
		stream := workload.MicroBench(rand.New(rand.NewSource(42)), workload.MicroBenchConfig{
			Rules: rules, RatePerSec: 1000, OverlapFrac: 1.0, MaxPriority: 64,
		})
		cfg := defaultHermesConfig()
		run := replayThroughAgent(newAgent(p, cfg), stream, cfg.TickInterval)
		hermesRates[i] = run.metrics.MigrationsPerSecond(run.elapsed)
	}

	for _, th := range thresholds {
		vrow := []string{fmtPct(th * 100)}
		frow := []string{fmtPct(th * 100)}
		for _, p := range profiles {
			stream := workload.MicroBench(rand.New(rand.NewSource(42)), workload.MicroBenchConfig{
				Rules: rules, RatePerSec: 1000, OverlapFrac: 1.0, MaxPriority: 64,
			})
			cfg := defaultHermesConfig()
			cfg.Mode = core.MigrationThreshold
			cfg.Threshold = th
			run := replayThroughAgent(newAgent(p, cfg), stream, cfg.TickInterval)
			vrow = append(vrow, fmtPct(run.violationPercent()))
			frow = append(frow, fmt.Sprintf("%.1f", run.metrics.MigrationsPerSecond(run.elapsed)))
		}
		viol.AddRow(vrow...)
		for _, hr := range hermesRates {
			frow = append(frow, fmt.Sprintf("%.1f", hr))
		}
		freq.AddRow(frow...)
	}
	res.Tables = append(res.Tables, viol, freq)
	res.Notes = append(res.Notes,
		"expected shape: zero violations only at low thresholds, at the cost of roughly double the migration rate of predictive Hermes (§8.5)")
	return res
}

// Figure13 reproduces Fig. 13: rule insertion latency versus slack factor
// at 200 and 1000 updates/s across overlap rates, on the Dell 8132F.
func Figure13(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "fig13", Title: "Insertion latency vs slack factor (Fig. 13, Dell 8132F)"}
	overlaps := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	slacks := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	for _, rate := range []float64{200, 1000} {
		rules := scaleInt(int(rate*4), scale, 400)
		tab := &stats.Table{
			Title:   fmt.Sprintf("p95 insertion latency at %.0f updates/s", rate),
			Headers: []string{"slack"},
		}
		for _, ov := range overlaps {
			tab.Headers = append(tab.Headers, fmtPct(ov*100)+" overlap")
		}
		for _, slack := range slacks {
			row := []string{fmtPct(slack * 100)}
			for _, ov := range overlaps {
				stream := workload.MicroBench(rand.New(rand.NewSource(7)), workload.MicroBenchConfig{
					Rules: rules, RatePerSec: rate, OverlapFrac: ov, MaxPriority: 64,
				})
				cfg := defaultHermesConfig()
				cfg.Corrector = predict.Slack{Factor: slack}
				run := replayThroughAgent(newAgent(tcam.Dell8132F, cfg), stream, cfg.TickInterval)
				row = append(row, fmtMS(stats.Summarize(run.latenciesMS).P95()))
			}
			tab.AddRow(row...)
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"expected shape: at 1000 updates/s high overlap needs aggressive (100%) slack; at 200 updates/s slack matters little (§8.6)")
	return res
}

// Figure14 reproduces Fig. 14: ASIC (TCAM space) overhead versus the
// requested performance guarantee, per switch.
func Figure14() *Result {
	res := &Result{ID: "fig14", Title: "ASIC overhead vs performance guarantee (Fig. 14)"}
	tab := &stats.Table{Headers: []string{"guarantee", tcam.Dell8132F.Name, tcam.HP5406zl.Name, tcam.Pica8P3290.Name}}
	for _, g := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		row := []string{g.String()}
		for _, p := range []*tcam.Profile{tcam.Dell8132F, tcam.HP5406zl, tcam.Pica8P3290} {
			row = append(row, fmtPct(core.QoSOverheads(p, g)*100))
		}
		tab.AddRow(row...)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"expected shape: overhead grows with the guarantee and stays small; a 5ms guarantee costs <5% on the Pica8 (§8.7)")
	return res
}

// PredictorSweep reproduces the §8.6 sensitivity analysis: predictors
// (EWMA, Cubic Spline, ARMA) crossed with correctors (Slack, Deadzone) on
// the MicroBench workload; Cubic Spline + Slack should dominate.
func PredictorSweep(scale float64) *Result {
	scale = clampScale(scale)
	res := &Result{ID: "predsweep", Title: "Prediction algorithm sensitivity (§8.6)"}
	rules := scaleInt(5000, scale, 600)
	tab := &stats.Table{Headers: []string{"predictor+corrector", "median RIT", "p95 RIT", "violations", "migrations/s"}}
	type combo struct {
		name string
		cfg  func() core.Config
	}
	mk := func(pname string, corr string) combo {
		return combo{
			name: pname + "+" + corr,
			cfg: func() core.Config {
				cfg := defaultHermesConfig()
				pr, err := predict.NewByName(pname)
				if err != nil {
					panic(err)
				}
				cfg.Predictor = pr
				if corr == "Slack" {
					cfg.Corrector = predict.Slack{Factor: 1.0}
				} else {
					cfg.Corrector = predict.Deadzone{Delta: 100}
				}
				return cfg
			},
		}
	}
	combos := []combo{
		mk("CubicSpline", "Slack"), mk("CubicSpline", "Deadzone"),
		mk("EWMA", "Slack"), mk("EWMA", "Deadzone"),
		mk("ARMA", "Slack"), mk("ARMA", "Deadzone"),
	}
	// "Best" balances the guarantee (violations) against the migration
	// bandwidth the combo burns: among combinations whose violations are
	// within 20% of the achievable minimum, the one migrating least wins —
	// the same trade-off Fig. 12 quantifies for Hermes-SIMPLE.
	type outcome struct {
		name string
		bad  int
		migr float64
	}
	var outcomes []outcome
	for _, c := range combos {
		stream := workload.MicroBench(rand.New(rand.NewSource(11)), workload.MicroBenchConfig{
			Rules: rules, RatePerSec: 800, OverlapFrac: 0.6, MaxPriority: 64,
		})
		run := replayThroughAgent(newAgent(tcam.Pica8P3290, c.cfg()), stream, 10*time.Millisecond)
		sum := stats.Summarize(run.latenciesMS)
		bad := run.violations + run.metrics.ShadowFull
		migr := run.metrics.MigrationsPerSecond(run.elapsed)
		tab.AddRow(c.name, fmtMS(sum.Median()), fmtMS(sum.P95()),
			fmt.Sprintf("%d", bad),
			fmt.Sprintf("%.1f", migr))
		outcomes = append(outcomes, outcome{c.name, bad, migr})
	}
	minBad := outcomes[0].bad
	for _, o := range outcomes {
		if o.bad < minBad {
			minBad = o.bad
		}
	}
	best := ""
	bestMigr := 0.0
	for _, o := range outcomes {
		if float64(o.bad) <= 1.2*float64(minBad)+1 {
			if best == "" || o.migr < bestMigr {
				best, bestMigr = o.name, o.migr
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		fmt.Sprintf("best (fewest migrations among lowest-violation combos): %s — the paper finds Cubic Spline + Slack most effective", best))
	return res
}
