package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a given scale.
type Runner func(scale float64) *Result

// registry maps experiment IDs to their drivers, in the order DESIGN.md
// lists them (E1–E12 plus the ablation suite).
var registry = map[string]Runner{
	"table1":       func(float64) *Result { return Table1() },
	"fig1":         Figure1,
	"fig8":         Figure8,
	"fig9":         Figure9,
	"fig10":        Figure10,
	"fig11":        Figure11,
	"fig12":        Figure12,
	"fig13":        Figure13,
	"fig14":        func(float64) *Result { return Figure14() },
	"fig15":        Figure15,
	"predsweep":    PredictorSweep,
	"bgp":          BGPExperiment,
	"ablations":    Ablations,
	"autotune":     AutoTune,
	"shadowswitch": ShadowSwitchComparison,
	"chaos":        Chaos,
	"reconcile":    Reconcile,
	"cache":        CacheSweep,
}

// IDs returns the known experiment IDs in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, scale float64) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(scale), nil
}

// Order returns the experiment IDs in presentation order (the order the
// paper's evaluation section walks its artifacts).
func Order() []string {
	return []string{
		"table1", "fig1", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "predsweep", "bgp",
		"ablations", "autotune", "shadowswitch", "chaos", "reconcile",
		"cache",
	}
}
