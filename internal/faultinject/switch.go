package faultinject

import (
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

// The switch seam: TCAM ops that are acked but dropped (or served slowly),
// migrations cut off at a Fig.-7 step boundary, and whole-switch
// crash/restart or truncation events on a virtual-time schedule. All three
// plug into hooks the production packages expose (tcam.OpFaultHook,
// core.Config.MigrationInterrupt, and the Agent's CrashRestart/Reconcile
// API); none of them require the production code to know about chaos.

// OpFaultConfig parameterizes TCAM-op fault injection. With a Script the
// listed faults are consumed in op order and probabilities are ignored.
type OpFaultConfig struct {
	Seed int64
	// DropProb acks the op without applying it (a lost update: the caller
	// sees success, the hardware disagrees until the next Reconcile).
	DropProb float64
	// SlowProb adds SlowBy to the op's modeled latency.
	SlowProb float64
	SlowBy   time.Duration
	// Script, when non-empty, replaces the seeded schedule.
	Script []tcam.OpFault
}

// OpFaults builds deterministic tcam.OpFaultHook values. One OpFaults may
// feed several tables; each Hook() call derives an independent stream.
type OpFaults struct {
	cfg     OpFaultConfig
	streams uint64
	dropped int
	slowed  int
	cursor  int
}

// NewOpFaults builds a plan from the config.
func NewOpFaults(cfg OpFaultConfig) *OpFaults { return &OpFaults{cfg: cfg} }

// Dropped and Slowed report the injected-fault tallies across all hooks.
func (o *OpFaults) Dropped() int { return o.dropped }

// Slowed reports how many ops were served with added latency.
func (o *OpFaults) Slowed() int { return o.slowed }

// Hook returns a deterministic fault hook for one table. The simulation is
// single-threaded, so the hook needs no locking; determinism comes from
// consuming one seeded stream in op order.
func (o *OpFaults) Hook() tcam.OpFaultHook {
	idx := o.streams
	o.streams++
	rng := newRand(o.cfg.Seed, idx)
	return func(op tcam.Op, id classifier.RuleID) tcam.OpFault {
		var f tcam.OpFault
		if len(o.cfg.Script) > 0 {
			if o.cursor < len(o.cfg.Script) {
				f = o.cfg.Script[o.cursor]
				o.cursor++
			}
		} else {
			drop := rng.Float64()
			slow := rng.Float64()
			if drop < o.cfg.DropProb {
				f.Drop = true
			}
			if slow < o.cfg.SlowProb {
				f.Extra = o.cfg.SlowBy
			}
		}
		if f.Drop {
			o.dropped++
		}
		if f.Extra > 0 {
			o.slowed++
		}
		return f
	}
}

// InterruptConfig parameterizes migration-step interruption. With a Script
// the listed steps fire in order: each boundary check matching the script
// head pops it and interrupts; checks for other steps pass. Without a
// script, every boundary check interrupts independently with Prob.
type InterruptConfig struct {
	Seed int64
	Prob float64
	// Script lists the step boundaries to cut, in the order they should
	// fire. Nil means use the seeded schedule.
	Script []core.MigrationStep
}

// Interrupter builds a deterministic core MigrationInterrupt hook.
type Interrupter struct {
	cfg    InterruptConfig
	rng    *rand.Rand
	cursor int
	fired  int
}

// NewInterrupter builds a plan from the config.
func NewInterrupter(cfg InterruptConfig) *Interrupter {
	return &Interrupter{cfg: cfg, rng: newRand(cfg.Seed, 0)}
}

// Fired reports how many interrupts the plan has injected.
func (i *Interrupter) Fired() int { return i.fired }

// Exhausted reports whether a scripted plan has consumed its whole script.
func (i *Interrupter) Exhausted() bool {
	return len(i.cfg.Script) > 0 && i.cursor >= len(i.cfg.Script)
}

// Hook returns the function to install via core.Config.MigrationInterrupt
// or (*core.Agent).SetMigrationInterrupt.
func (i *Interrupter) Hook() func(step core.MigrationStep, now time.Duration) bool {
	return func(step core.MigrationStep, _ time.Duration) bool {
		if len(i.cfg.Script) > 0 {
			if i.cursor < len(i.cfg.Script) && i.cfg.Script[i.cursor] == step {
				i.cursor++
				i.fired++
				return true
			}
			return false
		}
		if i.rng.Float64() < i.cfg.Prob {
			i.fired++
			return true
		}
		return false
	}
}

// SwitchEventKind names one whole-switch fault.
type SwitchEventKind uint8

// The switch-level fault kinds a schedule can carry.
const (
	// EventCrash power-cycles the switch: all physical entries vanish.
	EventCrash SwitchEventKind = iota
	// EventTruncateShadow keeps only the first Arg shadow entries, as a
	// crash during a bulk write would.
	EventTruncateShadow
)

func (k SwitchEventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventTruncateShadow:
		return "truncate-shadow"
	default:
		return "unknown"
	}
}

// SwitchEvent is one scheduled whole-switch fault in virtual time.
type SwitchEvent struct {
	At   time.Duration
	Kind SwitchEventKind
	// Arg is the kind-specific parameter (entries kept for truncation).
	Arg int
}

// SwitchSchedule generates n whole-switch fault events spread uniformly
// over (0, horizon], sorted by time. The same seed yields the same
// schedule.
func SwitchSchedule(seed int64, horizon time.Duration, n int) []SwitchEvent {
	rng := newRand(seed, 7)
	events := make([]SwitchEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := SwitchEvent{
			At: time.Duration(rng.Int63n(int64(horizon))) + 1,
		}
		if rng.Intn(2) == 0 {
			ev.Kind = EventCrash
		} else {
			ev.Kind = EventTruncateShadow
			ev.Arg = rng.Intn(8)
		}
		events = append(events, ev)
	}
	sortEvents(events)
	return events
}

func sortEvents(events []SwitchEvent) {
	// Insertion sort: schedules are short and the dependency footprint
	// stays minimal.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// Apply fires every event due at or before now against the agent and
// returns the rest. Truncation marks the agent divergent; the caller
// decides when to Reconcile (immediately for a repair-loop harness, later
// to widen the fault window).
func Apply(a *core.Agent, events []SwitchEvent, now time.Duration) []SwitchEvent {
	i := 0
	for ; i < len(events) && events[i].At <= now; i++ {
		switch events[i].Kind {
		case EventCrash:
			a.CrashRestart(events[i].At)
		case EventTruncateShadow:
			a.TruncateShadow(events[i].Arg)
		}
	}
	return events[i:]
}
