package faultinject

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestWirePartitionBlackhole: during a partition writes succeed without
// delivering, reads block until heal and then fail with
// ErrInjectedPartition on a closed connection; after heal a fresh
// connection passes traffic again.
func TestWirePartitionBlackhole(t *testing.T) {
	w := NewWire(WireConfig{Seed: 1})
	under := &memConn{}
	c := w.Wrap(under)

	w.Partition(50 * time.Millisecond)
	if !w.Partitioned() {
		t.Fatal("Partition did not take effect")
	}

	// Writes are swallowed: success to the caller, nothing on the wire.
	frame := []byte{1, 2, 0, 16, 0, 0, 0, 7}
	n, err := c.Write(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("partitioned write: n=%d err=%v, want clean success", n, err)
	}
	if under.out.Len() != 0 {
		t.Fatalf("partitioned write delivered %d bytes to the wire", under.out.Len())
	}

	// Reads block until the heal timer fires, then fail terminally. The
	// data sitting in the buffer must NOT be delivered early.
	under.in.Write(frame)
	done := make(chan error, 1)
	go func() {
		_, rerr := c.Read(make([]byte, 8))
		done <- rerr
	}()
	select {
	case rerr := <-done:
		t.Fatalf("read returned (%v) while the partition was in force", rerr)
	case <-time.After(20 * time.Millisecond):
		// Still blocked mid-partition, as required.
	}
	err = <-done
	if !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("partitioned read: err=%v, want ErrInjectedPartition", err)
	}
	if !under.closed {
		t.Fatal("partitioned read did not close the connection")
	}
	if w.Partitioned() {
		t.Fatal("partition still in force after heal")
	}
	if got := w.Counts().Partitions; got != 1 {
		t.Fatalf("Partitions count = %d, want 1", got)
	}

	// A re-dialed connection passes traffic after heal.
	under2 := &memConn{}
	c2 := w.Wrap(under2)
	if _, err := c2.Write(frame); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if under2.out.Len() != len(frame) {
		t.Fatalf("post-heal write delivered %d bytes, want %d", under2.out.Len(), len(frame))
	}
}

// TestWirePartitionScripted: a scripted Partition fault opens the
// blackhole from the wire schedule itself, and an in-force partition is
// not extended by a second trigger.
func TestWirePartitionScripted(t *testing.T) {
	w := NewWire(WireConfig{Script: []WireFault{
		{Partition: 40 * time.Millisecond},
		{Partition: 10 * time.Hour}, // must NOT extend the first
	}})
	under := &memConn{}
	c := w.Wrap(under)

	// Op 1 (write) trips the scripted partition; the write itself is then
	// swallowed by it.
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatalf("scripted partition write: %v", err)
	}
	if !w.Partitioned() {
		t.Fatal("scripted fault did not open the partition")
	}
	// Op 2 (read) consumes the second scripted fault, which must not
	// extend the existing partition — the read unblocks on the first
	// partition's 40ms heal, not after 10h.
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjectedPartition) {
			t.Fatalf("scripted partitioned read: err=%v, want ErrInjectedPartition", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked: in-force partition was extended")
	}
	if got := w.Counts().Partitions; got != 1 {
		t.Fatalf("Partitions count = %d, want 1 (no extension)", got)
	}
}

// TestWirePartitionSeededSchedulesStable: plans with PartitionProb == 0
// draw exactly the historical decision stream — adding the partition
// fault class must not perturb existing seeded chaos schedules.
func TestWirePartitionSeededSchedulesStable(t *testing.T) {
	cfg := WireConfig{Seed: 42, ResetProb: 0.1, CorruptProb: 0.1, PartialProb: 0.1}
	a := pump(NewWire(cfg), 64)
	cfg.PartitionProb = 0 // explicit: the default must not consume draws
	b := pump(NewWire(cfg), 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero PartitionProb changed the seeded fault schedule")
	}
}

// TestChannelScheduleDeterministic: same seed, same schedule; different
// seeds diverge; events are sorted, in (0, horizon], and partitions carry
// bounded positive durations.
func TestChannelScheduleDeterministic(t *testing.T) {
	const horizon = 10 * time.Second
	a := ChannelSchedule(7, horizon, 32)
	b := ChannelSchedule(7, horizon, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different channel schedules")
	}
	c := ChannelSchedule(8, horizon, 32)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical channel schedules")
	}
	if len(a) != 32 {
		t.Fatalf("schedule has %d events, want 32", len(a))
	}
	var partitions int
	for i, ev := range a {
		if ev.At <= 0 || ev.At > horizon {
			t.Fatalf("event %d at %v outside (0, %v]", i, ev.At, horizon)
		}
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("event %d at %v before predecessor %v", i, ev.At, a[i-1].At)
		}
		switch ev.Kind {
		case ChannelReset:
			if ev.For != 0 {
				t.Fatalf("reset event %d carries duration %v", i, ev.For)
			}
			if ev.HealAt() != ev.At {
				t.Fatalf("reset event %d heals at %v, want %v", i, ev.HealAt(), ev.At)
			}
		case ChannelPartition:
			partitions++
			if ev.For <= 0 || ev.For > horizon/8 {
				t.Fatalf("partition event %d duration %v outside (0, %v]", i, ev.For, horizon/8)
			}
			if ev.HealAt() != ev.At+ev.For {
				t.Fatalf("partition event %d heals at %v, want %v", i, ev.HealAt(), ev.At+ev.For)
			}
		default:
			t.Fatalf("event %d has unknown kind %v", i, ev.Kind)
		}
	}
	if partitions == 0 || partitions == 32 {
		t.Fatalf("schedule has %d/32 partitions, want a mix of kinds", partitions)
	}
	// The channel stream must be independent of the switch stream for the
	// same seed: SwitchSchedule(7, ...) and ChannelSchedule(7, ...) use
	// different sub-seed labels, so their event times must not coincide.
	sw := SwitchSchedule(7, horizon, 32)
	same := 0
	for i := range sw {
		if sw[i].At == a[i].At {
			same++
		}
	}
	if same == len(sw) {
		t.Fatal("channel schedule reuses the switch schedule's stream")
	}
}
