package faultinject

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by a connection the wire plan
// decided to reset. Callers treat it like any peer-initiated teardown.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// ErrInjectedPartition is the error a blocked reader surfaces once a
// network partition heals. The connection is closed alongside it, so the
// caller re-dials instead of resuming a stream whose framing it can no
// longer trust.
var ErrInjectedPartition = errors.New("faultinject: injected network partition")

// WireFault is one scripted decision for a single Read or Write call. The
// zero value passes the operation through untouched. At most one of Reset,
// Corrupt, and PartialWrite should be set; Delay composes with any of them.
type WireFault struct {
	// Delay sleeps before the operation proceeds (also how stalls are
	// expressed: a delay long enough to trip the caller's deadline).
	Delay time.Duration
	// Reset closes the underlying connection instead of performing the
	// operation, modeling a peer RST mid-exchange.
	Reset bool
	// Corrupt flips the high bit of the first byte of the buffer. On a
	// frame header that invalidates the version; on a body it produces an
	// unknown command — either way the peer *detects* the damage (bad
	// version, truncated frame, or an error reply) rather than silently
	// accepting a changed rule.
	Corrupt bool
	// PartialWrite, when > 0 on a write, transmits only that many bytes and
	// then closes the connection, modeling a crash mid-frame.
	PartialWrite int
	// PartialFrac, when in (0, 1), cuts a write at that fraction of the
	// buffer (at least one byte) and closes the connection. Unlike
	// PartialWrite it scales to the frame being written, so it reaches
	// into the body of a large vectored batch frame — modeling a crash
	// mid-batch rather than mid-header.
	PartialFrac float64
	// Partition, when > 0, opens a plan-wide bidirectional blackhole for
	// that interval: every wrapped connection swallows writes (reported as
	// successful, never delivered) and blocks reads until the partition
	// heals, at which point blocked readers get ErrInjectedPartition on a
	// closed connection. The triggering operation itself still proceeds.
	Partition time.Duration
}

func (f WireFault) active() bool {
	return f.Delay > 0 || f.Reset || f.Corrupt || f.PartialWrite > 0 ||
		f.PartialFrac > 0 || f.Partition > 0
}

// WireConfig parameterizes a Wire plan. With a Script the listed faults are
// consumed in operation order (shared by both directions) and the
// probability fields are ignored; otherwise each Read/Write draws
// independently from the seeded stream of its connection direction.
type WireConfig struct {
	// Seed roots every random stream the plan derives.
	Seed int64

	// DelayProb adds a uniform delay in (0, MaxDelay] to an operation.
	DelayProb float64
	MaxDelay  time.Duration
	// StallProb adds a fixed Stall delay — sized by the test to exceed the
	// client's request deadline.
	StallProb float64
	Stall     time.Duration
	// ResetProb closes the connection instead of performing the operation.
	ResetProb float64
	// CorruptProb damages the first byte of the buffer (writes only).
	CorruptProb float64
	// PartialProb truncates a write mid-frame and closes the connection.
	PartialProb float64
	// PartialMidFrame stretches a firing partial write across the whole
	// buffer instead of the first 8 (header) bytes: the cut lands at a
	// seeded fraction of the frame, so large vectored batch frames are
	// truncated mid-body. It reinterprets an existing draw rather than
	// consuming a new one, so enabling it does not perturb the schedule
	// of any other fault class.
	PartialMidFrame bool
	// PartitionProb opens a bidirectional blackhole lasting PartitionFor.
	// The extra decision draws are only consumed when PartitionProb > 0, so
	// plans that never partition keep their historical seeded schedules.
	PartitionProb float64
	PartitionFor  time.Duration

	// Script, when non-empty, replaces the probabilistic schedule with an
	// explicit one. Operations beyond the script's end pass through clean.
	Script []WireFault
}

// WireCounts tallies the faults a plan actually injected.
type WireCounts struct {
	Delays, Stalls, Resets, Corrupts, Partials, Partitions int
}

// Total is the number of operations the plan perturbed.
func (c WireCounts) Total() int {
	return c.Delays + c.Stalls + c.Resets + c.Corrupts + c.Partials + c.Partitions
}

// Wire is a fault plan for one or more connections. Wrap each accepted or
// dialed net.Conn; each wrapped connection gets independent decision
// streams per direction (derived from the root seed and the connection's
// wrap index), so schedules replay even when connections race each other.
type Wire struct {
	cfg WireConfig

	mu     sync.Mutex
	conns  uint64
	cursor int // script position
	counts WireCounts
	// healCh is non-nil while a partition is in force; it is closed (and
	// cleared) when the partition heals. Readers block on it without
	// holding mu.
	healCh chan struct{}
}

// NewWire builds a plan from the config.
func NewWire(cfg WireConfig) *Wire { return &Wire{cfg: cfg} }

// Counts returns the faults injected so far across all wrapped connections.
func (w *Wire) Counts() WireCounts {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.counts
}

// Partition opens a bidirectional blackhole across every connection the
// plan wraps, healing after d. While it is in force, writes are swallowed
// (reported successful, never delivered) and reads block; at heal, blocked
// readers get ErrInjectedPartition on a closed connection so callers
// re-dial cleanly. A partition already in force is not extended.
func (w *Wire) Partition(d time.Duration) {
	w.mu.Lock()
	if w.healCh != nil {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	w.healCh = ch
	w.counts.Partitions++
	w.mu.Unlock()
	time.AfterFunc(d, func() {
		w.mu.Lock()
		if w.healCh == ch {
			w.healCh = nil
		}
		w.mu.Unlock()
		close(ch)
	})
}

// Partitioned reports whether a partition is currently in force.
func (w *Wire) Partitioned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healCh != nil
}

// partitionCh returns the heal channel when a partition is in force, nil
// otherwise. Callers block on the channel without holding the plan lock.
func (w *Wire) partitionCh() chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healCh
}

// Wrap decorates a connection with the plan's fault schedule.
func (w *Wire) Wrap(c net.Conn) net.Conn {
	w.mu.Lock()
	idx := w.conns
	w.conns++
	w.mu.Unlock()
	return &conn{
		Conn:  c,
		plan:  w,
		read:  newRand(w.cfg.Seed, idx*2),
		write: newRand(w.cfg.Seed, idx*2+1),
	}
}

// Dial connects and wraps in one step — shaped to drop into a dial seam
// such as fleet's Config.Dial.
func (w *Wire) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return w.Wrap(c), nil
}

// next produces the decision for one operation. Scripted plans consume the
// shared cursor; seeded plans draw from the per-direction stream.
func (w *Wire) next(src interface{ Float64() float64 }, write bool) WireFault {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.cfg.Script) > 0 {
		if w.cursor >= len(w.cfg.Script) {
			return WireFault{}
		}
		f := w.cfg.Script[w.cursor]
		w.cursor++
		w.count(f)
		return f
	}
	var f WireFault
	// One draw per fault class keeps streams aligned regardless of which
	// faults fire.
	delay := src.Float64()
	stall := src.Float64()
	reset := src.Float64()
	corrupt := src.Float64()
	partial := src.Float64()
	frac := src.Float64()
	if w.cfg.PartitionProb > 0 && src.Float64() < w.cfg.PartitionProb {
		f.Partition = w.cfg.PartitionFor
	}
	switch {
	case reset < w.cfg.ResetProb:
		f.Reset = true
	case write && partial < w.cfg.PartialProb:
		if w.cfg.PartialMidFrame {
			f.PartialFrac = frac
		} else {
			f.PartialWrite = 1 + int(frac*7) // within the 8-byte header
		}
	case write && corrupt < w.cfg.CorruptProb:
		f.Corrupt = true
	}
	switch {
	case stall < w.cfg.StallProb:
		f.Delay = w.cfg.Stall
	case delay < w.cfg.DelayProb && w.cfg.MaxDelay > 0:
		f.Delay = time.Duration(frac*float64(w.cfg.MaxDelay)) + time.Microsecond
	}
	w.count(f)
	return f
}

func (w *Wire) count(f WireFault) {
	switch {
	case f.Reset:
		w.counts.Resets++
	case f.PartialWrite > 0 || f.PartialFrac > 0:
		w.counts.Partials++
	case f.Corrupt:
		w.counts.Corrupts++
	}
	switch {
	case f.Delay == w.cfg.Stall && f.Delay > 0:
		w.counts.Stalls++
	case f.Delay > 0:
		w.counts.Delays++
	}
}

// conn injects the plan's schedule around an underlying net.Conn.
type conn struct {
	net.Conn
	plan  *Wire
	read  interface{ Float64() float64 }
	write interface{ Float64() float64 }
}

func (c *conn) Read(b []byte) (int, error) {
	f := c.plan.next(c.read, false)
	if f.Partition > 0 {
		c.plan.Partition(f.Partition)
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	// A partitioned link delivers nothing: block until the heal timer
	// fires, then fail the connection so the caller re-dials rather than
	// resuming a stream whose framing may be mid-frame.
	if ch := c.plan.partitionCh(); ch != nil {
		<-ch
		c.Conn.Close()
		return 0, ErrInjectedPartition
	}
	if f.Reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	f := c.plan.next(c.write, true)
	if f.Partition > 0 {
		c.plan.Partition(f.Partition)
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	// During a partition, writes vanish into the blackhole: the local
	// stack accepts them (success) but the peer never sees the bytes, so
	// the caller's request deadline is what surfaces the outage.
	if c.plan.Partitioned() {
		return len(b), nil
	}
	if f.PartialFrac > 0 && f.PartialFrac < 1 {
		if cut := int(f.PartialFrac * float64(len(b))); cut > 0 && cut < len(b) {
			f.PartialWrite = cut
		}
	}
	switch {
	case f.Reset:
		c.Conn.Close()
		return 0, ErrInjectedReset
	case f.PartialWrite > 0 && f.PartialWrite < len(b):
		n, err := c.Conn.Write(b[:f.PartialWrite])
		c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: write cut short after %d/%d bytes: %w",
			n, len(b), ErrInjectedReset)
	case f.Corrupt && len(b) > 0:
		damaged := append([]byte(nil), b...)
		damaged[0] ^= 0x80
		return c.Conn.Write(damaged)
	default:
		return c.Conn.Write(b)
	}
}
