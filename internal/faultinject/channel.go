package faultinject

import "time"

// The channel seam in virtual time: while Wire injects faults into live
// net.Conn traffic, deterministic single-goroutine harnesses (the
// reconciler convergence experiment) model the control channel directly.
// ChannelSchedule gives them a seeded script of channel-level faults —
// transient resets and healing partitions — on the same virtual clock as
// SwitchSchedule, drawn from an independent stream so adding channel chaos
// to a harness never perturbs an existing switch schedule.

// ChannelEventKind names one control-channel fault.
type ChannelEventKind uint8

// The channel-level fault kinds a schedule can carry.
const (
	// ChannelReset fails exactly the operations issued at the event's
	// instant (a dropped TCP connection: the in-flight request errors,
	// the next attempt re-dials and proceeds).
	ChannelReset ChannelEventKind = iota
	// ChannelPartition blackholes the channel for [At, At+For): every
	// operation issued inside the window fails, and the harness may not
	// observe or program the switch until the partition heals.
	ChannelPartition
)

func (k ChannelEventKind) String() string {
	switch k {
	case ChannelReset:
		return "reset"
	case ChannelPartition:
		return "partition"
	default:
		return "unknown"
	}
}

// ChannelEvent is one scheduled control-channel fault in virtual time.
type ChannelEvent struct {
	At   time.Duration
	Kind ChannelEventKind
	// For is the partition duration; zero for resets.
	For time.Duration
}

// HealAt is the virtual instant the channel recovers: the event time for a
// reset, the end of the blackhole window for a partition.
func (e ChannelEvent) HealAt() time.Duration {
	return e.At + e.For
}

// ChannelSchedule generates n control-channel fault events spread over
// (0, horizon], sorted by time. Partition durations are drawn in
// (0, horizon/8] so a single outage never swallows the whole run. The
// same seed yields the same schedule, and the stream is independent of
// SwitchSchedule's for the same seed.
func ChannelSchedule(seed int64, horizon time.Duration, n int) []ChannelEvent {
	rng := newRand(seed, 11)
	events := make([]ChannelEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := ChannelEvent{
			At: time.Duration(rng.Int63n(int64(horizon))) + 1,
		}
		if rng.Intn(2) == 0 {
			ev.Kind = ChannelReset
		} else {
			ev.Kind = ChannelPartition
			ev.For = time.Duration(rng.Int63n(int64(horizon/8))) + 1
		}
		events = append(events, ev)
	}
	// Insertion sort, matching sortEvents: schedules are short.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	return events
}
