package faultinject

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

// memConn is an in-memory net.Conn: writes append to a buffer, reads drain
// another. Enough surface to drive the wrapper deterministically without
// sockets or goroutines.
type memConn struct {
	in, out bytes.Buffer
	closed  bool
}

func (m *memConn) Read(b []byte) (int, error)       { return m.in.Read(b) }
func (m *memConn) Write(b []byte) (int, error)      { return m.out.Write(b) }
func (m *memConn) Close() error                     { m.closed = true; return nil }
func (m *memConn) LocalAddr() net.Addr              { return nil }
func (m *memConn) RemoteAddr() net.Addr             { return nil }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// pump drives n writes and reads through a wrapped conn and records which
// operations errored — a deterministic fingerprint of the fault schedule.
func pump(w *Wire, n int) []bool {
	under := &memConn{}
	c := w.Wrap(under)
	var outcome []bool
	frame := []byte{1, 2, 0, 16, 0, 0, 0, 7} // header-shaped 8-byte chunk
	for i := 0; i < n; i++ {
		_, werr := c.Write(frame)
		under.in.Write(frame)
		buf := make([]byte, len(frame))
		_, rerr := c.Read(buf)
		outcome = append(outcome, werr != nil, rerr != nil)
	}
	return outcome
}

func TestWireSameSeedSameSchedule(t *testing.T) {
	cfg := WireConfig{Seed: 42, ResetProb: 0.1, CorruptProb: 0.1, PartialProb: 0.1}
	a := pump(NewWire(cfg), 64)
	b := pump(NewWire(cfg), 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	cfg.Seed = 43
	c := pump(NewWire(cfg), 64)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestWireScriptedFaults(t *testing.T) {
	w := NewWire(WireConfig{Script: []WireFault{
		{},              // write 1 passes
		{Corrupt: true}, // read 1... but reads don't corrupt; decision still consumed
		{PartialWrite: 3},
		{Reset: true},
	}})
	under := &memConn{}
	c := w.Wrap(under)
	if _, err := c.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("clean write failed: %v", err)
	}
	under.in.Write([]byte{9, 9})
	if _, err := c.Read(make([]byte, 2)); err != nil {
		t.Fatalf("read failed: %v", err)
	}
	n, err := c.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err == nil || n != 3 {
		t.Fatalf("partial write: n=%d err=%v, want 3 bytes and an error", n, err)
	}
	if !under.closed {
		t.Fatal("partial write must close the connection")
	}
	if _, err := c.Read(make([]byte, 1)); err != ErrInjectedReset {
		t.Fatalf("scripted reset: err=%v, want ErrInjectedReset", err)
	}
	counts := w.Counts()
	if counts.Partials != 1 || counts.Resets != 1 || counts.Corrupts != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestWireCorruptionIsDetectable(t *testing.T) {
	w := NewWire(WireConfig{Script: []WireFault{{Corrupt: true}}})
	under := &memConn{}
	c := w.Wrap(under)
	frame := []byte{1, 0, 0, 8, 0, 0, 0, 1} // version 1 header
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	got := under.out.Bytes()
	if got[0] == 1 {
		t.Fatal("corruption did not damage the version byte")
	}
	if frame[0] != 1 {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestOpFaultsDeterministicAndScripted(t *testing.T) {
	run := func(seed int64) (string, int) {
		o := NewOpFaults(OpFaultConfig{Seed: seed, DropProb: 0.3, SlowProb: 0.3, SlowBy: time.Millisecond})
		h := o.Hook()
		var sig []byte
		for i := 0; i < 200; i++ {
			f := h(tcam.OpInsert, classifier.RuleID(i))
			b := byte(0)
			if f.Drop {
				b |= 1
			}
			if f.Extra > 0 {
				b |= 2
			}
			sig = append(sig, b)
		}
		return string(sig), o.Dropped()
	}
	s1, d1 := run(5)
	s2, d2 := run(5)
	if s1 != s2 || d1 != d2 {
		t.Fatal("same seed produced different op-fault schedules")
	}
	if s3, _ := run(6); s3 == s1 {
		t.Fatal("different seeds produced identical op-fault schedules")
	}
	if d1 == 0 {
		t.Fatal("drop probability 0.3 never fired in 200 ops")
	}

	o := NewOpFaults(OpFaultConfig{Script: []tcam.OpFault{{Drop: true}, {Extra: time.Second}}})
	h := o.Hook()
	if f := h(tcam.OpInsert, 1); !f.Drop {
		t.Fatal("scripted drop did not fire")
	}
	if f := h(tcam.OpDelete, 2); f.Extra != time.Second {
		t.Fatal("scripted slow-op did not fire")
	}
	if f := h(tcam.OpModify, 3); f.Drop || f.Extra != 0 {
		t.Fatal("exhausted script must pass ops through")
	}
}

func TestInterrupterScriptFiresInOrder(t *testing.T) {
	i := NewInterrupter(InterruptConfig{Script: []core.MigrationStep{core.StepInsert, core.StepEmpty}})
	h := i.Hook()
	if h(core.StepCopy, 0) {
		t.Fatal("copy fired before its turn")
	}
	if !h(core.StepInsert, 0) {
		t.Fatal("scripted insert interrupt did not fire")
	}
	if h(core.StepInsert, 0) {
		t.Fatal("insert fired twice")
	}
	if !h(core.StepEmpty, 0) {
		t.Fatal("scripted empty interrupt did not fire")
	}
	if !i.Exhausted() || i.Fired() != 2 {
		t.Fatalf("exhausted=%v fired=%d", i.Exhausted(), i.Fired())
	}
}

func TestSwitchScheduleDeterministicAndSorted(t *testing.T) {
	a := SwitchSchedule(11, time.Second, 16)
	b := SwitchSchedule(11, time.Second, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v", i, a)
		}
	}
	if c := SwitchSchedule(12, time.Second, 16); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestApplyDrivesAgentFaults(t *testing.T) {
	sw := tcam.NewSwitch("chaos", tcam.Pica8P3290)
	a, err := core.New(sw, core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true, TrackLogical: true})
	if err != nil {
		t.Fatal(err)
	}
	rule := classifier.Rule{
		ID:       1,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")),
		Priority: 10,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 1},
	}
	if _, err := a.Insert(0, rule); err != nil {
		t.Fatal(err)
	}
	events := []SwitchEvent{
		{At: time.Millisecond, Kind: EventCrash},
		{At: time.Second, Kind: EventTruncateShadow, Arg: 0},
	}
	rest := Apply(a, events, 500*time.Millisecond)
	if len(rest) != 1 || rest[0].Kind != EventTruncateShadow {
		t.Fatalf("rest = %v, want the truncation event", rest)
	}
	if !a.NeedsReconcile() {
		t.Fatal("crash event did not mark the agent")
	}
	a.Reconcile(500 * time.Millisecond)
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after reconcile: %v", err)
	}
}

// TestWirePartialFracCutsMidFrame: a fractional partial write scales to
// the buffer being written, so a large vectored batch frame is cut in its
// body — not just inside the 8-byte header — and the connection dies with
// the injected-reset cause.
func TestWirePartialFracCutsMidFrame(t *testing.T) {
	w := NewWire(WireConfig{Script: []WireFault{{PartialFrac: 0.5}}})
	under := &memConn{}
	c := w.Wrap(under)
	frame := make([]byte, 1000) // a batch-frame-sized write
	n, err := c.Write(frame)
	if err == nil || n != 500 {
		t.Fatalf("mid-frame partial: n=%d err=%v, want 500 bytes and an error", n, err)
	}
	if !under.closed {
		t.Fatal("mid-frame partial must close the connection")
	}
	if got := w.Counts().Partials; got != 1 {
		t.Fatalf("Partials = %d, want 1", got)
	}
}

// TestWirePartialMidFrameSeeded: with PartialMidFrame set, a seeded
// partial cut lands somewhere inside the whole frame, and a cut that
// rounds to zero bytes passes the write through untouched instead of
// emitting an empty write.
func TestWirePartialMidFrameSeeded(t *testing.T) {
	w := NewWire(WireConfig{Seed: 9, PartialProb: 1, PartialMidFrame: true})
	under := &memConn{}
	c := w.Wrap(under)
	frame := make([]byte, 4096)
	n, err := c.Write(frame)
	if err == nil {
		t.Fatalf("seeded mid-frame partial did not fire (n=%d)", n)
	}
	if n <= 0 || n >= len(frame) {
		t.Fatalf("cut at %d bytes, want strictly inside (0, %d)", n, len(frame))
	}
	if n < 8 {
		t.Logf("cut landed in the header (%d bytes); body cuts need larger fracs", n)
	}
}
