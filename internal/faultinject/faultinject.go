// Package faultinject is the deterministic chaos layer: seeded or scripted
// fault schedules injected at the two seams the rest of the system already
// exposes — the wire (a net.Conn wrapper under the ofwire protocol) and the
// switch (TCAM op faults, crash/restart, and Fig.-7 migration-step
// interrupts).
//
// Determinism contract: every decision is drawn from a seeded *rand.Rand or
// consumed from an explicit script; the package never reads the wall clock
// (time.Sleep with pre-decided durations is the only timing primitive).
// Re-running a harness with the same seed therefore replays the same fault
// schedule, which is what makes chaos verdicts reproducible and regressions
// bisectable. The package depends on core and tcam for the hook types; the
// production packages never import it.
package faultinject

import (
	"math/rand"
)

// subSeed derives an independent stream seed from a root seed and a stream
// label, so that the read and write sides of a connection (or successive
// connections) consume decisions independently: progress on one stream
// never perturbs the schedule of another. SplitMix64 finalizer.
func subSeed(root int64, label uint64) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*(label+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func newRand(root int64, label uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(root, label)))
}
