package core

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

func TestCreateTCAMQoS(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	id, info, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxBurstRate <= 0 {
		t.Error("MaxBurstRate must be positive (Equation 2)")
	}
	if info.ShadowEntries <= 0 || info.OverheadFraction <= 0 {
		t.Errorf("info = %+v", info)
	}
	if info.SwitchName != "s1" || info.Guarantee != 5*time.Millisecond {
		t.Errorf("info = %+v", info)
	}
	if a, ok := reg.Agent(id); !ok || a == nil {
		t.Error("Agent lookup failed")
	}
	if got, ok := reg.Info(id); !ok || got != info {
		t.Error("Info lookup failed")
	}
	// Second QoS on the same switch fails.
	if _, _, err := reg.CreateTCAMQoS(sw, time.Millisecond, nil); err == nil {
		t.Error("duplicate QoS must fail")
	}
}

func TestCreateTCAMQoSInfeasible(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	if _, _, err := reg.CreateTCAMQoS(sw, time.Microsecond, nil); err == nil {
		t.Error("infeasible guarantee must fail")
	}
}

func TestDeleteQoS(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	id, _, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.DeleteQoS(id) {
		t.Error("DeleteQoS failed")
	}
	if reg.DeleteQoS(id) {
		t.Error("double DeleteQoS succeeded")
	}
	// The switch reverts to a monolithic table.
	if sw.Table().Capacity() != tcam.Pica8P3290.Capacity {
		t.Error("switch not uncarved")
	}
	// A new QoS can now be created.
	if _, _, err := reg.CreateTCAMQoS(sw, time.Millisecond, nil); err != nil {
		t.Errorf("re-create after delete: %v", err)
	}
}

func TestModQoSConfig(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	id, before, err := reg.CreateTCAMQoS(sw, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.ModQoSConfig(id, 10*time.Millisecond) {
		t.Fatal("ModQoSConfig failed")
	}
	after, _ := reg.Info(id)
	if after.Guarantee != 10*time.Millisecond {
		t.Errorf("guarantee = %v", after.Guarantee)
	}
	if after.ShadowEntries <= before.ShadowEntries {
		t.Errorf("looser guarantee must grow the shadow: %d -> %d",
			before.ShadowEntries, after.ShadowEntries)
	}
	if reg.ModQoSConfig(999, time.Millisecond) {
		t.Error("ModQoSConfig on unknown id succeeded")
	}
}

func TestModQoSMatch(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	id, _, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(r classifier.Rule) bool { return r.Priority > 10 }
	if !reg.ModQoSMatch(id, pred) {
		t.Error("ModQoSMatch failed")
	}
	a, _ := reg.Agent(id)
	if a.guarded(classifier.Rule{Priority: 5}) {
		t.Error("predicate not applied")
	}
	if !a.guarded(classifier.Rule{Priority: 50}) {
		t.Error("predicate rejects guarded rule")
	}
	if reg.ModQoSMatch(999, pred) {
		t.Error("ModQoSMatch on unknown id succeeded")
	}
}

func TestQoSOverheads(t *testing.T) {
	// Overhead grows with the guarantee and stays < 5% for 5ms on the
	// Pica8 (the paper's headline number; Figure 14's shape).
	var prev float64
	for _, g := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		o := QoSOverheads(tcam.Pica8P3290, g)
		if o <= prev {
			t.Errorf("overhead at %v = %v, not increasing", g, o)
		}
		prev = o
	}
	if o := QoSOverheads(tcam.Pica8P3290, 5*time.Millisecond); o >= 0.05 {
		t.Errorf("5ms overhead = %.3f, want < 5%%", o)
	}
	// Infeasible guarantees preview as zero.
	if o := QoSOverheads(tcam.Pica8P3290, time.Microsecond); o != 0 {
		t.Errorf("infeasible overhead = %v", o)
	}
	// Very loose guarantees are capped at half the TCAM.
	if o := QoSOverheads(tcam.Pica8P3290, time.Hour); o > 0.5 {
		t.Errorf("capped overhead = %v", o)
	}
}

func TestModQoSConfigInfeasibleRestores(t *testing.T) {
	reg := NewRegistry()
	sw := tcam.NewSwitch("s1", tcam.Pica8P3290)
	id, _, err := reg.CreateTCAMQoS(sw, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ModQoSConfig(id, time.Nanosecond) {
		t.Fatal("infeasible ModQoSConfig succeeded")
	}
	// The previous configuration must still be live and usable.
	a, ok := reg.Agent(id)
	if !ok {
		t.Fatal("agent gone after failed modify")
	}
	if _, err := a.Insert(0, classifier.Rule{
		ID:       1,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")),
		Priority: 1,
	}); err != nil {
		t.Errorf("agent unusable after failed modify: %v", err)
	}
	info, _ := reg.Info(id)
	if info.Guarantee != 5*time.Millisecond {
		t.Errorf("info mutated after failed modify: %+v", info)
	}
}
