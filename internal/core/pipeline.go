package core

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

// This file implements §6's "Supporting Multiple TCAM Tables": modern
// switches expose a pipeline of TCAM tables, and Hermes carves each one
// independently into a shadow and a main slice. Each logical table can
// carry a different guarantee — attractive when tables serve radically
// different functions (e.g. an ACL table needing 1ms updates next to a
// forwarding table content with 10ms).
//
// Pipeline semantics are preserved: each logical table keeps its original
// table-miss behaviour (goto-next / controller / drop), while every shadow
// slice uses "goto the paired main slice" on miss, exactly as in the
// single-table design.

// MissBehavior is a logical table's action when no rule matches.
type MissBehavior uint8

// Table-miss behaviours (§6).
const (
	// MissGotoNext continues at the next logical table.
	MissGotoNext MissBehavior = iota
	// MissController punts unmatched packets to the controller.
	MissController
	// MissDrop discards unmatched packets.
	MissDrop
)

// TableSpec configures one logical table of a pipeline.
type TableSpec struct {
	// Name identifies the table (e.g. "acl", "forwarding").
	Name string
	// Capacity is the logical table's TCAM entry budget.
	Capacity int
	// Miss is the original table-miss behaviour to preserve.
	Miss MissBehavior
	// Config tunes the table's Hermes agent; zero Guarantee leaves the
	// table unmanaged (a plain monolithic slice with no guarantees).
	Config Config
}

// PipelineTable is one logical table at runtime.
type PipelineTable struct {
	Spec  TableSpec
	Agent *Agent      // nil when unmanaged
	Raw   *tcam.Table // set when unmanaged
	sw    *tcam.Switch
}

// Managed reports whether the table runs under a Hermes guarantee.
func (t *PipelineTable) Managed() bool { return t.Agent != nil }

// Pipeline is a multi-table switch under per-table Hermes management.
type Pipeline struct {
	name    string
	profile *tcam.Profile
	tables  []*PipelineTable
}

// NewPipeline builds a pipeline on a switch model. Each spec gets its own
// hardware slice pair (or single slice when unmanaged). The per-table
// switches share the profile but have independent control-plane queues,
// mirroring hardware where each TCAM bank has its own update engine.
func NewPipeline(name string, profile *tcam.Profile, specs []TableSpec) (*Pipeline, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: pipeline %q has no tables", name)
	}
	p := &Pipeline{name: name, profile: profile}
	for i, spec := range specs {
		if spec.Capacity <= 0 || spec.Capacity > profile.Capacity {
			return nil, fmt.Errorf("core: pipeline %q table %q: capacity %d out of range",
				name, spec.Name, spec.Capacity)
		}
		// Each logical table is backed by a dedicated bank with the
		// spec's capacity.
		bankProfile := *profile
		bankProfile.Capacity = spec.Capacity
		sw := tcam.NewSwitch(fmt.Sprintf("%s/%s", name, spec.Name), &bankProfile)
		pt := &PipelineTable{Spec: spec, sw: sw}
		if spec.Config.Guarantee > 0 {
			agent, err := New(sw, spec.Config)
			if err != nil {
				return nil, fmt.Errorf("core: pipeline %q table %q: %w", name, spec.Name, err)
			}
			pt.Agent = agent
		} else {
			pt.Raw = sw.Table()
		}
		p.tables = append(p.tables, pt)
		_ = i
	}
	return p, nil
}

// Tables returns the pipeline's logical tables in match order.
func (p *Pipeline) Tables() []*PipelineTable { return p.tables }

// Table returns a logical table by name.
func (p *Pipeline) Table(name string) (*PipelineTable, bool) {
	for _, t := range p.tables {
		if t.Spec.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Insert routes a flow-mod to the named logical table.
func (p *Pipeline) Insert(now time.Duration, table string, r classifier.Rule) (Result, error) {
	t, ok := p.Table(table)
	if !ok {
		return Result{}, fmt.Errorf("core: pipeline %q: unknown table %q", p.name, table)
	}
	if t.Managed() {
		return t.Agent.Insert(now, r)
	}
	cost, err := t.Raw.Insert(r)
	if err != nil {
		return Result{}, err
	}
	return Result{Path: PathMain, Latency: cost, Completed: t.sw.Submit(now, cost)}, nil
}

// Delete routes a rule deletion to the named logical table.
func (p *Pipeline) Delete(now time.Duration, table string, id classifier.RuleID) (Result, error) {
	t, ok := p.Table(table)
	if !ok {
		return Result{}, fmt.Errorf("core: pipeline %q: unknown table %q", p.name, table)
	}
	if t.Managed() {
		return t.Agent.Delete(now, id)
	}
	cost, present := t.Raw.Delete(id)
	if !present {
		return Result{}, fmt.Errorf("%w: %d in %s", ErrUnknownRule, id, table)
	}
	return Result{Latency: cost, Completed: t.sw.Submit(now, cost)}, nil
}

// Tick drives every managed table's Rule Manager.
func (p *Pipeline) Tick(now time.Duration) {
	for _, t := range p.tables {
		if t.Managed() {
			if end := t.Agent.Tick(now); end != 0 {
				// Background migrations complete on their own; nothing to
				// do here, the agent advances on the next call.
				_ = end
			}
		}
	}
}

// PacketVerdict is the outcome of a pipeline lookup.
type PacketVerdict uint8

// Lookup outcomes.
const (
	// VerdictForward means a rule matched and forwards the packet.
	VerdictForward PacketVerdict = iota
	// VerdictController means the packet punts to the controller.
	VerdictController
	// VerdictDrop means the packet is discarded.
	VerdictDrop
)

// Lookup walks the pipeline: within each logical table the shadow slice is
// consulted before the main slice; on a logical-table miss the original
// miss behaviour applies (§6). Returns the matching rule (if any), which
// logical table matched, and the verdict.
func (p *Pipeline) Lookup(dst, src uint32) (classifier.Rule, string, PacketVerdict) {
	for _, t := range p.tables {
		var r classifier.Rule
		var ok bool
		if t.Managed() {
			r, ok = t.Agent.Lookup(dst, src)
		} else {
			r, ok = t.Raw.Lookup(dst, src)
		}
		if ok {
			switch r.Action.Type {
			case classifier.ActionGotoNext:
				continue // explicit goto-next rule: fall through
			case classifier.ActionDrop:
				return r, t.Spec.Name, VerdictDrop
			case classifier.ActionController:
				return r, t.Spec.Name, VerdictController
			default:
				return r, t.Spec.Name, VerdictForward
			}
		}
		switch t.Spec.Miss {
		case MissGotoNext:
			continue
		case MissController:
			return classifier.Rule{}, t.Spec.Name, VerdictController
		case MissDrop:
			return classifier.Rule{}, t.Spec.Name, VerdictDrop
		}
	}
	// Walked off the end of the pipeline: drop (OpenFlow default).
	return classifier.Rule{}, "", VerdictDrop
}
