package core

import (
	"fmt"
	"sort"
	"time"

	"hermes/internal/tokenbucket"
)

// This file implements the §10 "Other Control Plane Actions" direction the
// paper describes as ongoing work: flow-mods are not the only load on a
// switch's control CPU — packet-ins, stats polls, port/echo events all
// compete for it — and guarantees on one class are hollow if another class
// can starve it. The EventScheduler rate-limits each event class with its
// own token bucket and accounts per-class CPU budget, so the flow-mod
// class Hermes guarantees keeps its share no matter how noisy the others
// get.

// EventClass names one kind of control-plane action.
type EventClass string

// The control-plane event classes the paper's discussion enumerates.
const (
	EventFlowMod  EventClass = "flow-mod"
	EventPacketIn EventClass = "packet-in"
	EventStats    EventClass = "stats"
	EventPort     EventClass = "port"
	EventEcho     EventClass = "echo"
)

// ClassBudget configures one event class.
type ClassBudget struct {
	// Rate is the admitted events/second for the class.
	Rate float64
	// Burst is the class's burst budget.
	Burst float64
	// Cost is the CPU time one event of this class consumes.
	Cost time.Duration
}

// EventScheduler performs per-class admission control over a shared
// control CPU. Like the rest of the agent it runs on virtual time and is
// single-threaded.
type EventScheduler struct {
	classes map[EventClass]ClassBudget
	buckets map[EventClass]*tokenbucket.Bucket
	// busyUntil is when the shared CPU frees up.
	busyUntil time.Duration
	// accounting
	admitted map[EventClass]int
	rejected map[EventClass]int
	busy     map[EventClass]time.Duration
}

// NewEventScheduler builds a scheduler from per-class budgets. Every class
// needs a positive rate and cost.
func NewEventScheduler(budgets map[EventClass]ClassBudget) (*EventScheduler, error) {
	if len(budgets) == 0 {
		return nil, fmt.Errorf("core: event scheduler needs at least one class")
	}
	s := &EventScheduler{
		classes:  make(map[EventClass]ClassBudget, len(budgets)),
		buckets:  make(map[EventClass]*tokenbucket.Bucket, len(budgets)),
		admitted: make(map[EventClass]int),
		rejected: make(map[EventClass]int),
		busy:     make(map[EventClass]time.Duration),
	}
	for class, b := range budgets {
		if b.Rate <= 0 || b.Cost <= 0 {
			return nil, fmt.Errorf("core: class %q: rate %v cost %v", class, b.Rate, b.Cost)
		}
		if b.Burst < 1 {
			b.Burst = 1
		}
		s.classes[class] = b
		s.buckets[class] = tokenbucket.New(b.Rate, b.Burst)
	}
	return s, nil
}

// Admit decides whether an event of the class may run at now. Admitted
// events occupy the shared CPU for their class cost; the returned
// completion time includes queueing behind earlier admitted events of any
// class. Rejected events return ok=false (the caller drops or defers
// them — for packet-ins that is exactly the policing production switches
// apply).
func (s *EventScheduler) Admit(now time.Duration, class EventClass) (completion time.Duration, ok bool) {
	b, known := s.classes[class]
	if !known {
		s.rejected[class]++
		return 0, false
	}
	if !s.buckets[class].Allow(now, 1) {
		s.rejected[class]++
		return 0, false
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	completion = start + b.Cost
	s.busyUntil = completion
	s.admitted[class]++
	s.busy[class] += b.Cost
	return completion, true
}

// ClassStats reports one class's counters.
type ClassStats struct {
	Class    EventClass
	Admitted int
	Rejected int
	// CPUBusy is the cumulative CPU time the class consumed.
	CPUBusy time.Duration
}

// Stats returns per-class counters in stable order.
func (s *EventScheduler) Stats() []ClassStats {
	names := make([]EventClass, 0, len(s.classes))
	for c := range s.classes {
		names = append(names, c)
	}
	// Include rejected-only classes (unknown arrivals).
	for c := range s.rejected {
		if _, known := s.classes[c]; !known {
			names = append(names, c)
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	out := make([]ClassStats, 0, len(names))
	for _, c := range names {
		out = append(out, ClassStats{
			Class:    c,
			Admitted: s.admitted[c],
			Rejected: s.rejected[c],
			CPUBusy:  s.busy[c],
		})
	}
	return out
}

// DefaultEventBudgets is a guarantees-first switch-CPU split: flow-mods
// get the lion's share (they carry the Hermes guarantee), packet-ins are
// policed hard (they are attacker-controllable), stats and housekeeping
// take the remainder. Every non-flow-mod class keeps burst×cost small so
// that even a simultaneous burst of every class delays a flow-mod by only
// a few milliseconds.
func DefaultEventBudgets(flowModRate float64) map[EventClass]ClassBudget {
	return map[EventClass]ClassBudget{
		EventFlowMod:  {Rate: flowModRate, Burst: flowModRate / 10, Cost: 200 * time.Microsecond},
		EventPacketIn: {Rate: 500, Burst: 50, Cost: 100 * time.Microsecond},
		EventStats:    {Rate: 20, Burst: 2, Cost: 2 * time.Millisecond},
		EventPort:     {Rate: 50, Burst: 10, Cost: 100 * time.Microsecond},
		EventEcho:     {Rate: 10, Burst: 2, Cost: 50 * time.Microsecond},
	}
}
