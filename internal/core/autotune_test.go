package core

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/predict"
	"hermes/internal/tcam"
)

func TestAutoTunerIncreaseOnViolation(t *testing.T) {
	tu := newAutoTuner(1.0)
	f := tu.observe(0)
	if f != 1.0 {
		t.Errorf("initial factor = %v", f)
	}
	f = tu.observe(1) // one new violation
	if f <= 1.0 {
		t.Errorf("factor after violation = %v, want increase", f)
	}
	prev := f
	f = tu.observe(1) // no NEW violations: clean tick
	if f != prev {
		t.Errorf("factor changed on clean tick before streak: %v -> %v", prev, f)
	}
}

func TestAutoTunerDecayAfterStreak(t *testing.T) {
	tu := newAutoTuner(2.0)
	for i := 0; i < autoSlackStreak; i++ {
		tu.observe(0)
	}
	if tu.factor >= 2.0 {
		t.Errorf("factor did not decay after %d clean ticks: %v", autoSlackStreak, tu.factor)
	}
}

func TestAutoTunerBounds(t *testing.T) {
	tu := newAutoTuner(1.0)
	for i := 1; i < 40; i++ {
		tu.observe(i) // violation every tick
	}
	if tu.factor > autoSlackMax {
		t.Errorf("factor %v exceeds max", tu.factor)
	}
	tu2 := newAutoTuner(autoSlackMin)
	for i := 0; i < 40*autoSlackStreak; i++ {
		tu2.observe(0)
	}
	if tu2.factor < autoSlackMin {
		t.Errorf("factor %v below min", tu2.factor)
	}
	if newAutoTuner(-1).factor != 1.0 {
		t.Error("invalid seed must default to 1.0")
	}
}

func TestCurrentSlack(t *testing.T) {
	a := newTestAgent(t, Config{Corrector: predict.Slack{Factor: 0.4}})
	if got := a.CurrentSlack(); got != 0.4 {
		t.Errorf("static slack = %v", got)
	}
	a2 := newTestAgent(t, Config{AutoTuneSlack: true, Corrector: predict.Slack{Factor: 0.7}})
	if got := a2.CurrentSlack(); got != 0.7 {
		t.Errorf("seeded auto slack = %v", got)
	}
	a3 := newTestAgent(t, Config{Corrector: predict.Deadzone{Delta: 5}})
	if got := a3.CurrentSlack(); got != 0 {
		t.Errorf("deadzone slack = %v, want 0", got)
	}
}

// TestAutoTuneReactsToOverload drives an agent into violations and checks
// the controller raises slack in response.
func TestAutoTuneReactsToOverload(t *testing.T) {
	sw := tcam.NewSwitch("at", tcam.Dell8132F)
	a, err := New(sw, Config{
		Guarantee:                5 * time.Millisecond,
		AutoTuneSlack:            true,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := a.CurrentSlack()
	now := time.Duration(0)
	id := 1
	// Blast bursts: many inserts at the same instant queue on the
	// guaranteed lane and violate the bound, then tick.
	for round := 0; round < 10; round++ {
		for i := 0; i < 40; i++ {
			r := dstRule(classifier.RuleID(id), "10.0.0.0/8", int32(id%60+1), id)
			r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(id)<<8|0x0A000000, 28))
			a.Insert(now, r) //nolint:errcheck
			id++
		}
		now += 10 * time.Millisecond
		if end := a.Tick(now); end != 0 {
			a.Advance(end)
		}
	}
	if a.Metrics().Violations == 0 {
		t.Skip("workload did not violate; tuner untested")
	}
	if got := a.CurrentSlack(); got <= before {
		t.Errorf("slack %v did not increase from %v under violations", got, before)
	}
}
