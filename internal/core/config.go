// Package core implements the Hermes framework itself: the Gate Keeper and
// Rule Manager that together provide tight performance guarantees for TCAM
// control-plane actions (paper §3–§5, §7).
//
// An Agent wraps one switch. It carves the switch's TCAM into a small
// shadow slice and a large main slice, routes guaranteed insertions into
// the bounded shadow slice (bounding shift counts and therefore insertion
// latency), keeps the two slices semantically identical to one monolithic
// table via Algorithm 1 partitioning, and predictively migrates rules
// shadow→main in the background before the shadow table can overflow.
package core

import (
	"time"

	"hermes/internal/classifier"
	"hermes/internal/predict"
	"hermes/internal/rulecache"
)

// Predicate selects the rules that receive the performance guarantee
// (the match-predicate argument of CreateTCAMQoS, §7). A nil Predicate
// guards every rule.
type Predicate func(classifier.Rule) bool

// MigrationMode selects how the Rule Manager decides when to migrate.
type MigrationMode int

const (
	// MigrationPredictive uses a workload predictor plus corrector to
	// anticipate shadow-table growth (the Hermes default, §5.1).
	MigrationPredictive MigrationMode = iota
	// MigrationThreshold migrates when shadow occupancy crosses a fixed
	// fraction of capacity — the Hermes-SIMPLE baseline of §8.5.
	MigrationThreshold
)

// Config tunes one Hermes agent. The zero value is completed by
// (*Config).withDefaults; only Guarantee is mandatory.
type Config struct {
	// Guarantee is the requested per-insertion latency bound (e.g. 5ms).
	Guarantee time.Duration

	// Predicate selects guaranteed rules; nil guards all rules.
	Predicate Predicate

	// Predictor forecasts per-tick rule arrivals. Defaults to
	// CubicSpline(16), the paper's best performer.
	Predictor predict.Predictor

	// Corrector inflates predictions to absorb error. Defaults to
	// Slack{Factor: 1.0} (100% slack), the paper's default (§8.6).
	Corrector predict.Corrector

	// TickInterval is the Rule Manager's prediction/migration period.
	// Defaults to 10ms.
	TickInterval time.Duration

	// Mode selects predictive Hermes or Hermes-SIMPLE.
	Mode MigrationMode

	// Threshold is the occupancy fraction (0..1) that triggers migration
	// in MigrationThreshold mode. 0 means "migrate whenever non-empty".
	Threshold float64

	// ExpectedPartitions is r_p of Equation 2: the expected number of
	// shadow entries per inserted rule. Defaults to 1.5.
	ExpectedPartitions float64

	// MaxPartitions bounds the fragments a single rule may shatter into
	// before the Gate Keeper gives up and installs it directly into the
	// main table (footnote 5 in §4.2: pathological rules such as a
	// lowest-priority 0.0.0.0/0 would overlap everything). Defaults to 16.
	MaxPartitions int

	// DisableLowPriorityBypass turns off the §4.2 optimization that sends
	// lowest-priority rules straight to the main table. For ablations.
	DisableLowPriorityBypass bool

	// DisableMergeOptimization skips the Merge step of Algorithm 1
	// (line 7), installing raw fragments. For ablations.
	DisableMergeOptimization bool

	// NaiveMigration empties the shadow table *before* re-inserting
	// optimized rules into the main table instead of after, re-creating
	// the transient-miss window §5.2 warns about. For ablations; the
	// agent counts the exposed rule-seconds in Metrics.
	NaiveMigration bool

	// DisableRateLimit turns off the Gate Keeper's token bucket. For
	// ablations and for workloads that pre-shape their update rate.
	DisableRateLimit bool

	// AutoTuneSlack replaces the static Corrector with a
	// multiplicative-increase/decrease controller that adapts the slack
	// factor from observed violations — the self-tuning §8.6 proposes as
	// future work. The Corrector's Slack factor (if any) seeds the
	// controller.
	AutoTuneSlack bool

	// TrackLogical maintains a reference monolithic rule list inside the
	// agent so tests can verify two-table equivalence. Costs memory and
	// time; off by default.
	TrackLogical bool

	// LinearLookup reverts packet lookups to the full-scan reference path:
	// both TCAM slices scan every entry in order and the agent skips its
	// lock-free snapshot. Kept as the differential-testing oracle for the
	// trie-indexed default; off by default (indexed).
	LinearLookup bool

	// LookupShards, when > 1, splits the published lookup snapshot into
	// that many per-CPU shards (rules partitioned by destination-prefix
	// hash, a combining layer picking the first match across shards, see
	// classifier.ShardedRuleIndex). Bit-identical to the single-index
	// snapshot; 0 or 1 keeps the plain RuleIndex.
	LookupShards int

	// Cache, when non-nil, enables the flow-driven rule caching hierarchy
	// (DESIGN.md §16): the carved TCAM becomes the top tier of a two-tier
	// lookup pipeline backed by an unbounded switch-CPU software table,
	// with popularity-driven promotion/demotion between tiers and
	// dependency-safe eviction via cover rules. Capacity (the maximum
	// number of hardware-resident rules) must be positive.
	Cache *rulecache.Config

	// TrackHits enables per-rule hit-count accounting on the lookup fast
	// path without the full cache hierarchy: every lookup that resolves to
	// a rule bumps its zero-alloc sharded counter (see Agent.RuleHits).
	// Implied by Cache.
	TrackHits bool

	// MigrationInterrupt, when non-nil, is consulted at each Fig.-7
	// migration step; returning true cuts the migration off at that step,
	// exactly as a switch crash mid-migration would. The agent is marked
	// as needing Reconcile. A fault-injection seam (internal/faultinject);
	// nil in production. Hooks must be deterministic (scripted or seeded)
	// so fault schedules replay identically.
	MigrationInterrupt func(step MigrationStep, now time.Duration) bool

	// Observer, when non-nil, wires the agent into the obs subsystem:
	// per-class latency histograms, lifecycle trace events, and flight-
	// recorder captures on guarantee violations and reconcile repairs.
	// Because the Observer's instruments are owned by the caller, they
	// survive agent re-creation (the QoS re-carve path). Nil disables all
	// per-op observation beyond the always-on Metrics histograms.
	Observer *Observer
}

func (c Config) withDefaults() Config {
	if c.Predictor == nil {
		c.Predictor = predict.NewCubicSpline(16)
	}
	if c.Corrector == nil {
		c.Corrector = predict.Slack{Factor: 1.0}
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.ExpectedPartitions <= 0 {
		c.ExpectedPartitions = 1.5
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 16
	}
	return c
}

// InsertPath reports which route a flow-mod took through the Gate Keeper.
type InsertPath int

const (
	// PathShadow is the guaranteed path into the shadow table.
	PathShadow InsertPath = iota
	// PathBypass is the §4.2 lowest-priority append into the main table
	// (fast but formally unguaranteed; in practice it costs only the
	// floor latency).
	PathBypass
	// PathMain is the unguaranteed main-table path (predicate miss, rate
	// limit exceeded, shadow full, or excessive fragmentation).
	PathMain
	// PathRedundant means the rule was wholly subsumed by a
	// higher-priority main-table rule and nothing was installed (Fig. 5a).
	PathRedundant
	// PathSoft is the cached-mode path: the rule was installed into the
	// authoritative software tier (promotion into the hardware tier, if
	// any, is a background cache decision and not part of the result).
	PathSoft
)

func (p InsertPath) String() string {
	switch p {
	case PathShadow:
		return "shadow"
	case PathBypass:
		return "bypass"
	case PathMain:
		return "main"
	case PathRedundant:
		return "redundant"
	case PathSoft:
		return "soft"
	default:
		return "unknown"
	}
}

// Result describes the outcome of one control-plane action.
type Result struct {
	// Path is the route the action took.
	Path InsertPath
	// Latency is the modeled hardware service time of the action.
	Latency time.Duration
	// Completed is the virtual time at which the action finished,
	// including control-plane queueing.
	Completed time.Duration
	// Guaranteed reports whether the action was covered by the guarantee.
	Guaranteed bool
	// Violation reports a guaranteed action that exceeded the bound.
	Violation bool
	// Partitions is the number of shadow entries installed (0 for
	// redundant rules, 1 for unfragmented rules).
	Partitions int
}
