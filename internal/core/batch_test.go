package core

// Tests for the vectored entry points (core/batch.go): a differential
// replay proving the batched and per-op paths are result-identical on the
// same seeded schedule, an in-batch ordering check, the steady-state
// 0 allocs/op contract of the insert fast path, and the batched-ingest /
// parallel-lookup benchmarks behind BENCH_batch.json.

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

// newBatchTwin builds one agent of the batched-vs-per-op differential
// pair. The batched twin also runs with a sharded lookup snapshot so the
// differential covers Config.LookupShards at the agent level.
func newBatchTwin(t *testing.T, name string, shards int) *Agent {
	t.Helper()
	sw := tcam.NewSwitch(name, tcam.Pica8P3290)
	a, err := New(sw, Config{
		Guarantee:        5 * time.Millisecond,
		TrackLogical:     true,
		DisableRateLimit: true,
		LookupShards:     shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestBatchPerOpDifferential replays the same seeded schedule through a
// per-op agent and a batched agent (ApplyBatch, sharded snapshot) and
// requires identical per-op results, identical packet lookups after every
// batch, and identical final rule sets.
func TestBatchPerOpDifferential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		perOp := newBatchTwin(t, "twin-perop", 0)
		batched := newBatchTwin(t, "twin-batched", 4)
		rng := rand.New(rand.NewSource(seed))
		now := time.Duration(0)
		var live []classifier.RuleID
		nextID := classifier.RuleID(1)
		var out []BatchResult

		for round := 0; round < 50; round++ {
			now += time.Duration(rng.Intn(8)+1) * time.Millisecond
			n := rng.Intn(32) + 1
			ops := make([]BatchOp, 0, n)
			for k := 0; k < n; k++ {
				switch x := rng.Intn(10); {
				case x < 6:
					ops = append(ops, BatchOp{Kind: BatchInsert, Rule: classifier.Rule{
						ID:       nextID,
						Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
						Priority: int32(rng.Intn(50)),
						Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
					}})
					live = append(live, nextID)
					nextID++
				case x < 8 && len(live) > 0:
					i := rng.Intn(len(live))
					ops = append(ops, BatchOp{Kind: BatchDelete, Rule: classifier.Rule{ID: live[i]}})
					live = append(live[:i], live[i+1:]...)
				case x == 8 && len(live) > 0:
					ops = append(ops, BatchOp{Kind: BatchModify, Rule: classifier.Rule{
						ID:       live[rng.Intn(len(live))],
						Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
						Priority: int32(rng.Intn(50)),
						Action:   classifier.Action{Type: classifier.ActionDrop},
					}})
				default:
					// Known-bad ops: the error must land in the slot on both
					// routes (unknown delete, duplicate insert).
					if rng.Intn(2) == 0 || len(live) == 0 {
						ops = append(ops, BatchOp{Kind: BatchDelete, Rule: classifier.Rule{ID: 999999}})
					} else {
						ops = append(ops, BatchOp{Kind: BatchInsert, Rule: classifier.Rule{
							ID:    live[rng.Intn(len(live))],
							Match: classifier.DstMatch(classifier.NewPrefix(0x0A000000, 8)),
						}})
					}
				}
			}

			out = batched.ApplyBatch(now, ops, out)
			if len(out) != len(ops) {
				t.Fatalf("seed %d round %d: %d results for %d ops", seed, round, len(out), len(ops))
			}
			for i, op := range ops {
				var wantRes Result
				var wantErr error
				switch op.Kind {
				case BatchInsert:
					wantRes, wantErr = perOp.Insert(now, op.Rule)
				case BatchDelete:
					wantRes, wantErr = perOp.Delete(now, op.Rule.ID)
				case BatchModify:
					wantRes, wantErr = perOp.Modify(now, op.Rule)
				}
				got := out[i]
				if (got.Err == nil) != (wantErr == nil) ||
					(got.Err != nil && got.Err.Error() != wantErr.Error()) {
					t.Fatalf("seed %d round %d op %d: batched err %v, per-op err %v",
						seed, round, i, got.Err, wantErr)
				}
				if got.Res != wantRes {
					t.Fatalf("seed %d round %d op %d: batched %+v, per-op %+v",
						seed, round, i, got.Res, wantRes)
				}
			}

			// Occasionally run the Rule Manager on both twins.
			if rng.Intn(4) == 0 {
				done := batched.Tick(now)
				perOp.Tick(now)
				if done != 0 && rng.Intn(2) == 0 {
					now = done
					batched.Advance(now)
					perOp.Advance(now)
				}
			}

			// Probe packets: the batched (sharded) agent must answer
			// identically to the per-op (plain-index) agent.
			prng := rand.New(rand.NewSource(seed*1000 + int64(round)))
			logical := perOp.LogicalRules()
			for k := 0; k < 60; k++ {
				var dst uint32
				if len(logical) > 0 && prng.Intn(4) != 0 {
					p := logical[prng.Intn(len(logical))].Match.Dst
					dst = p.Addr | (prng.Uint32() & ^p.Mask())
				} else {
					dst = prng.Uint32()
				}
				got, gok := batched.Lookup(dst, 0)
				want, wok := perOp.Lookup(dst, 0)
				if gok != wok || got != want {
					t.Fatalf("seed %d round %d pkt %08x: batched %v,%v per-op %v,%v",
						seed, round, dst, got, gok, want, wok)
				}
			}
		}

		if err := batched.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: batched: %v", seed, err)
		}
		if err := perOp.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: per-op: %v", seed, err)
		}
		a, b := perOp.LogicalRules(), batched.LogicalRules()
		sort.Slice(a, func(i, j int) bool { return a[i].ID < a[j].ID })
		sort.Slice(b, func(i, j int) bool { return b[i].ID < b[j].ID })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: final rule sets diverged: %d vs %d rules", seed, len(a), len(b))
		}
	}
}

// TestApplyBatchInOrder proves ops inside one batch observe earlier ops'
// effects in submission order: insert→delete→reinsert of one rule ID all
// succeed, and a duplicate of a surviving insert fails in its slot.
func TestApplyBatchInOrder(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	r := dstRule(7, "10.1.0.0/16", 5, 1)
	out := a.ApplyBatch(0, []BatchOp{
		{Kind: BatchInsert, Rule: r},
		{Kind: BatchDelete, Rule: classifier.Rule{ID: 7}},
		{Kind: BatchInsert, Rule: r},
		{Kind: BatchInsert, Rule: r}, // duplicate of the surviving insert
	}, nil)
	if out[0].Err != nil || out[1].Err != nil || out[2].Err != nil {
		t.Fatalf("in-order ops failed: %+v", out)
	}
	if out[3].Err == nil {
		t.Fatal("duplicate insert in the same batch succeeded")
	}
	if occ := a.ShadowOccupancy() + a.MainOccupancy(); occ != 1 {
		t.Fatalf("occupancy = %d, want 1", occ)
	}
}

// batchBenchRules builds n guarded, pairwise non-overlapping rules (distinct
// /20 destination prefixes) so every insert takes the uncut fast path.
func batchBenchRules(n, gen int) []classifier.Rule {
	rules := make([]classifier.Rule, n)
	for i := range rules {
		rules[i] = classifier.Rule{
			ID:       classifier.RuleID(gen*n + i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12, 20)),
			Priority: 10,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
	}
	return rules
}

// TestInsertBatchZeroAllocSteadyState enforces the batch fast path's
// 0 allocs/op contract at runtime (hermes-vet enforces it statically):
// after pool and table warm-up, an InsertBatch of uncut rules performs no
// heap allocation at all.
func TestInsertBatchZeroAllocSteadyState(t *testing.T) {
	sw := tcam.NewSwitch("zeroalloc", tcam.Pica8P3290)
	// A long guarantee keeps intra-batch queueing (64 serialized ops at
	// one virtual instant) under the bound: a violation would trip the
	// flight recorder, which is allowed to allocate.
	a, err := New(sw, Config{
		Guarantee:                time.Second,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	rules := batchBenchRules(batch, 0)
	ids := make([]classifier.RuleID, batch)
	for i := range ids {
		ids[i] = rules[i].ID
	}
	var out, dout []BatchResult
	now := time.Duration(0)
	cycle := func() {
		now += time.Second
		out = a.InsertBatch(now, rules, out)
		for i := range out {
			if out[i].Err != nil {
				t.Fatalf("insert %d: %v", i, out[i].Err)
			}
			if out[i].Res.Path != PathShadow {
				t.Fatalf("insert %d took %v, want shadow fast path", i, out[i].Res.Path)
			}
		}
		dout = a.DeleteBatch(now, ids, dout)
		for i := range dout {
			if dout[i].Err != nil {
				t.Fatalf("delete %d: %v", i, dout[i].Err)
			}
		}
	}
	// Warm-up: freelist, table slices, and result buffers reach steady
	// state.
	for i := 0; i < 8; i++ {
		cycle()
	}
	// Mallocs is process-global, so a stray allocation from an unrelated
	// goroutine (GC assist, runtime timer) can pollute a single window.
	// The batch path's own allocations are a lower bound on every
	// measurement, so the minimum across cycles isolates them from that
	// noise: it is zero iff the path itself allocates nothing.
	var before, after runtime.MemStats
	min := ^uint64(0)
	for i := 0; i < 10; i++ {
		now += time.Second
		runtime.ReadMemStats(&before)
		out = a.InsertBatch(now, rules, out)
		runtime.ReadMemStats(&after)
		if got := after.Mallocs - before.Mallocs; got < min {
			min = got
		}
		dout = a.DeleteBatch(now, ids, dout)
	}
	if min != 0 {
		t.Fatalf("InsertBatch of %d rules performed at least %d allocations every cycle, want a 0-alloc steady state", batch, min)
	}
}

func newBenchAgent(b *testing.B, cfg Config) *Agent {
	b.Helper()
	if cfg.Guarantee == 0 {
		cfg.Guarantee = 5 * time.Millisecond
	}
	sw := tcam.NewSwitch("bench", tcam.Pica8P3290)
	a, err := New(sw, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAgentInsertPerOp is the per-op ingest baseline: one lock
// round-trip per rule.
func BenchmarkAgentInsertPerOp(b *testing.B) {
	a := newBenchAgent(b, Config{
		Guarantee:                time.Second,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	})
	const batch = 64
	rules := batchBenchRules(batch, 0)
	ids := make([]classifier.RuleID, batch)
	for i := range ids {
		ids[i] = rules[i].ID
	}
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		now += time.Second
		for i := range rules {
			if _, err := a.Insert(now, rules[i]); err != nil {
				b.Fatal(err)
			}
		}
		for _, id := range ids {
			if _, err := a.Delete(now, id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAgentInsertBatch is the vectored ingest path: one lock
// round-trip and one snapshot refresh per 64-rule batch, 0 allocs/op at
// steady state.
func BenchmarkAgentInsertBatch(b *testing.B) {
	a := newBenchAgent(b, Config{
		Guarantee:                time.Second,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	})
	const batch = 64
	rules := batchBenchRules(batch, 0)
	ids := make([]classifier.RuleID, batch)
	for i := range ids {
		ids[i] = rules[i].ID
	}
	var out, dout []BatchResult
	now := time.Duration(0)
	// Warm the freelist and table capacity out of the measured region.
	now += time.Second
	out = a.InsertBatch(now, rules, out)
	dout = a.DeleteBatch(now, ids, dout)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		now += time.Second
		out = a.InsertBatch(now, rules, out)
		dout = a.DeleteBatch(now, ids, dout)
	}
	_ = out
	_ = dout
}

// benchLookupAgent preloads an agent with rules and forces the lock-free
// snapshot into existence so the parallel benchmark measures the
// published-index path.
func benchLookupAgent(b *testing.B, shards, nrules int) (*Agent, []uint32) {
	a := newBenchAgent(b, Config{DisableRateLimit: true, LookupShards: shards})
	rules := make([]classifier.Rule, nrules)
	for i := range rules {
		rules[i] = classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12, 20)),
			Priority: int32(i%10 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
	}
	out := a.InsertBatch(0, rules, nil)
	for i := range out {
		if out[i].Err != nil {
			b.Fatalf("preload %d: %v", i, out[i].Err)
		}
	}
	addrs := make([]uint32, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range addrs {
		addrs[i] = uint32(rng.Intn(nrules)) << 12
	}
	// Publish the snapshot (past the rebuild hysteresis).
	for i := 0; i < 4*viewRebuildAfter; i++ {
		a.Lookup(addrs[i%len(addrs)], 0)
	}
	return a, addrs
}

// BenchmarkAgentLookupParallel measures packet-lookup scaling across
// GOMAXPROCS (run with -cpu 1,2,4,8) for the plain single-index snapshot
// and the sharded one.
func BenchmarkAgentLookupParallel(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 0},
		{"shards=4", 4},
		{"shards=8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			a, addrs := benchLookupAgent(b, bc.shards, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					a.Lookup(addrs[i&(len(addrs)-1)], 0)
					i++
				}
			})
		})
	}
}
