package core

// Tests for the flow-driven rule caching hierarchy (DESIGN.md §16): basic
// two-tier behavior, dependency-safe eviction via covers, policy-driven
// rebalancing, and — the load-bearing ones — differential equivalence
// against the single-table oracle under churn, crash-restarts, and
// interrupted migrations.

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/rulecache"
)

func newCachedAgent(t *testing.T, capacity int, policy rulecache.Policy) *Agent {
	t.Helper()
	// SampleStride 1 records every hit, so unit tests can assert exact
	// per-rule counts; the churn/differential tests build their own configs
	// and keep the default sampled stride.
	return newTestAgent(t, Config{
		DisableRateLimit: true,
		Cache:            &rulecache.Config{Capacity: capacity, Policy: policy, SampleStride: 1},
	})
}

func TestCachedBasic(t *testing.T) {
	a := newCachedAgent(t, 4, rulecache.PolicyLFU)
	if !a.Cached() {
		t.Fatal("Cached() must be true")
	}
	now := time.Duration(0)
	for i := 1; i <= 3; i++ {
		r := dstRule(classifier.RuleID(i), "10.0.0.0/8", int32(i), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<24, 8))
		res, err := a.Insert(now, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != PathSoft {
			t.Errorf("rule %d path = %v, want soft", i, res.Path)
		}
		if !res.Guaranteed {
			t.Errorf("rule %d not guaranteed", i)
		}
		now += time.Millisecond
	}
	if got := a.CacheResident(); got != 3 {
		t.Errorf("residents = %d, want 3 (capacity 4)", got)
	}
	if got := len(a.Rules()); got != 3 {
		t.Errorf("Rules() = %d entries, want 3", got)
	}
	// All three should answer from hardware.
	for i := 1; i <= 3; i++ {
		r, ok := a.Lookup(uint32(i)<<24|1, 0)
		if !ok || r.Action.Port != i {
			t.Errorf("lookup rule %d: got %v %v", i, r, ok)
		}
	}
	snap := a.CacheStats()
	if snap.HWHits != 3 || snap.SoftHits != 0 {
		t.Errorf("stats = hw %d soft %d, want 3/0", snap.HWHits, snap.SoftHits)
	}
	if a.RuleHits(1) != 1 {
		t.Errorf("RuleHits(1) = %d, want 1", a.RuleHits(1))
	}
	// Miss: no rule matches.
	if _, ok := a.Lookup(0xF0000001, 0); ok {
		t.Error("unexpected match")
	}
	if a.CacheStats().Misses != 1 {
		t.Errorf("misses = %d", a.CacheStats().Misses)
	}
	// Modify action in place.
	mod := dstRule(1, "10.0.0.0/8", 1, 99)
	mod.Match = classifier.DstMatch(classifier.NewPrefix(1<<24, 8))
	if _, err := a.Modify(now, mod); err != nil {
		t.Fatal(err)
	}
	if r, ok := a.Lookup(1<<24|1, 0); !ok || r.Action.Port != 99 {
		t.Errorf("post-modify lookup: %v %v", r, ok)
	}
	// Delete.
	if _, err := a.Delete(now, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(2<<24|1, 0); ok {
		t.Error("deleted rule still matches")
	}
	if got := a.CacheResident(); got != 2 {
		t.Errorf("residents after delete = %d, want 2", got)
	}
	// Duplicate / unknown errors.
	dup := dstRule(1, "10.0.0.0/8", 1, 1)
	if _, err := a.Insert(now, dup); err == nil {
		t.Error("duplicate insert must fail")
	}
	if _, err := a.Delete(now, 77); err == nil {
		t.Error("unknown delete must fail")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

// TestCachedEvictionCovers drives the ruleset past capacity so that
// software-only rules which beat residents must be shielded by covers, and
// verifies the two-tier pipeline still answers like the oracle.
func TestCachedEvictionCovers(t *testing.T) {
	a := newCachedAgent(t, 2, rulecache.PolicyLFU)
	now := time.Duration(0)
	// Two broad low-priority residents fill the cache.
	for i := 1; i <= 2; i++ {
		r := dstRule(classifier.RuleID(i), "10.0.0.0/8", 1, i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<24, 8))
		if _, err := a.Insert(now, r); err != nil {
			t.Fatal(err)
		}
		now += time.Millisecond
	}
	// A higher-priority narrow rule inside resident 1's region stays
	// software-only (capacity reached) and must be shielded.
	hot := classifier.Rule{
		ID:       3,
		Match:    classifier.DstMatch(classifier.NewPrefix(1<<24|0x00010000, 16)),
		Priority: 9,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 30},
	}
	if _, err := a.Insert(now, hot); err != nil {
		t.Fatal(err)
	}
	if got := a.CacheResident(); got != 2 {
		t.Fatalf("residents = %d, want 2", got)
	}
	snap := a.CacheStats()
	if snap.CoverInstalls == 0 {
		t.Fatalf("expected cover installs, got %+v", snap)
	}
	// A packet in the shielded region must punt to software and win with
	// the high-priority rule, not the resident underneath it.
	r, ok := a.Lookup(1<<24|0x00010005, 0)
	if !ok || r.ID != 3 {
		t.Fatalf("shielded lookup: got %v %v, want rule 3", r, ok)
	}
	if got := a.CacheStats().SoftHits; got != 1 {
		t.Errorf("soft hits = %d, want 1", got)
	}
	// Packets outside the shield still answer from hardware.
	if r, ok := a.Lookup(2<<24|1, 0); !ok || r.ID != 2 {
		t.Errorf("unshielded lookup: %v %v", r, ok)
	}
	// Deleting the shielded rule removes its covers.
	if _, err := a.Delete(now, 3); err != nil {
		t.Fatal(err)
	}
	after := a.CacheStats()
	if after.CoverRemovals != snap.CoverInstalls {
		t.Errorf("cover removals = %d, want %d", after.CoverRemovals, snap.CoverInstalls)
	}
	if r, ok := a.Lookup(1<<24|0x00010005, 0); !ok || r.ID != 1 {
		t.Errorf("post-delete lookup: %v %v, want rule 1", r, ok)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

// TestCachedRebalancePromotesHot checks that the periodic rebalance pass
// swaps cold residents for the rules the traffic actually hits.
func TestCachedRebalancePromotesHot(t *testing.T) {
	a := newCachedAgent(t, 2, rulecache.PolicyLFU)
	now := time.Duration(0)
	for i := 1; i <= 4; i++ {
		r := dstRule(classifier.RuleID(i), "10.0.0.0/8", 1, i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<24, 8))
		if _, err := a.Insert(now, r); err != nil {
			t.Fatal(err)
		}
		now += time.Millisecond
	}
	// Rules 1,2 are resident (first come). Hammer 3 and 4.
	for k := 0; k < 200; k++ {
		a.Lookup(3<<24|uint32(k), 0)
		a.Lookup(4<<24|uint32(k), 0)
	}
	before := a.CacheStats()
	if before.SoftHits == 0 {
		t.Fatal("expected soft hits while 3,4 are software-only")
	}
	now += 10 * time.Millisecond
	a.Rebalance(now)
	if got := a.CacheResident(); got != 2 {
		t.Fatalf("residents after rebalance = %d, want 2", got)
	}
	if a.CacheStats().Promotions < 4 { // 2 initial + 2 rebalance
		t.Errorf("promotions = %d, want ≥ 4", a.CacheStats().Promotions)
	}
	if a.CacheStats().Demotions < 2 {
		t.Errorf("demotions = %d, want ≥ 2", a.CacheStats().Demotions)
	}
	// Now 3,4 answer from hardware.
	mark := a.CacheStats().HWHits
	a.Lookup(3<<24|7, 0)
	a.Lookup(4<<24|7, 0)
	if got := a.CacheStats().HWHits - mark; got != 2 {
		t.Errorf("post-rebalance HW hits = %d, want 2", got)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

// runCachedSeq replays a fixed-seed churn workload (inserts, deletes,
// modifies, ticks, crash-restarts, interrupted migrations) on a cached
// agent and verifies after every step that the two-tier pipeline answers
// exactly like the reference monolithic table.
func runCachedSeq(t *testing.T, seed int64, policy rulecache.Policy, verbose bool) bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	a := newTestAgent(t, Config{
		DisableRateLimit: true,
		Cache:            &rulecache.Config{Capacity: 8, Policy: policy, MaxCoverParts: 4},
	})
	// Cut off roughly one migration in three at a random step, exactly as a
	// crash mid-migration would.
	interrupt := rand.New(rand.NewSource(seed + 1))
	var cut MigrationStep
	a.SetMigrationInterrupt(func(step MigrationStep, _ time.Duration) bool {
		return interrupt.Intn(12) == 0 && step == cut
	})
	now := time.Duration(0)
	live := []classifier.RuleID{}
	nextID := classifier.RuleID(1)

	check := func(op int) bool {
		rr := rand.New(rand.NewSource(seed*1000 + int64(op)))
		logical := a.LogicalRules()
		for k := 0; k < 150; k++ {
			var dst uint32
			if len(logical) > 0 && rr.Intn(4) != 0 {
				pick := logical[rr.Intn(len(logical))].Match.Dst
				dst = pick.Addr | (rr.Uint32() & ^pick.Mask())
			} else {
				dst = rr.Uint32()
			}
			want, wok := a.LogicalLookup(dst, 0)
			got, gok := a.Lookup(dst, 0)
			if wok != gok || (wok && (got.Action != want.Action || got.Priority != want.Priority)) {
				if verbose {
					t.Logf("op %d: pkt %08x got %v(%v) want %v(%v)", op, dst, got, gok, want, wok)
					t.Logf("residents=%d stats=%+v", a.CacheResident(), a.CacheStats())
					t.Logf("shadow: %v", a.shadow.Rules())
					t.Logf("main: %v", a.main.Rules())
					t.Logf("soft: %v", a.soft.Rules())
				}
				return false
			}
		}
		return true
	}

	for op := 0; op < 140; op++ {
		now += time.Duration(r.Intn(8)+1) * time.Millisecond
		switch x := r.Intn(20); {
		case x < 9: // insert
			rule := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(r.Uint32()&0xFFFF), uint8(16+r.Intn(17)))),
				Priority: int32(r.Intn(20)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}
			if _, err := a.Insert(now, rule); err != nil {
				t.Logf("seed %d op %d insert: %v", seed, op, err)
				return false
			}
			live = append(live, nextID)
			nextID++
		case x < 12 && len(live) > 0: // delete
			i := r.Intn(len(live))
			if _, err := a.Delete(now, live[i]); err != nil {
				t.Logf("seed %d op %d delete: %v", seed, op, err)
				return false
			}
			live = append(live[:i], live[i+1:]...)
		case x < 14 && len(live) > 0: // modify (action or priority)
			id := live[r.Intn(len(live))]
			orig, _, ok := a.soft.Get(id)
			if !ok {
				t.Logf("seed %d op %d: live rule %d missing from soft tier", seed, op, id)
				return false
			}
			mod := orig
			if r.Intn(2) == 0 {
				mod.Action = classifier.Action{Type: classifier.ActionForward, Port: int(id) + 1000}
			} else {
				mod.Priority = int32(r.Intn(20))
			}
			if _, err := a.Modify(now, mod); err != nil {
				t.Logf("seed %d op %d modify: %v", seed, op, err)
				return false
			}
		case x < 17: // tick: rebalance + maybe migration
			cut = MigrationStep(interrupt.Intn(4))
			a.Tick(now)
		case x < 18: // lookup burst to skew popularity
			for k := 0; k < 30; k++ {
				a.Lookup(0xC0A80000|r.Uint32()&0xFFFF, 0)
			}
		default: // crash-restart + reconcile
			a.CrashRestart(now)
			a.Reconcile(now)
			if err := a.CheckConsistency(); err != nil {
				t.Logf("seed %d op %d post-reconcile: %v", seed, op, err)
				return false
			}
		}
		// A cut migration marks the agent divergent; the controller's
		// protocol is to Reconcile before trusting lookups again.
		if a.NeedsReconcile() {
			a.Reconcile(now)
			if err := a.CheckConsistency(); err != nil {
				t.Logf("seed %d op %d reconcile after interrupt: %v", seed, op, err)
				return false
			}
		}
		if !check(op) {
			return false
		}
	}
	// Drain any in-flight migration, then final full check.
	now += time.Second
	a.Advance(now)
	a.Tick(now)
	if a.NeedsReconcile() {
		a.Reconcile(now)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Logf("seed %d final consistency: %v", seed, err)
		return false
	}
	return check(9999)
}

func TestCachedDifferentialChurn(t *testing.T) {
	policies := []rulecache.Policy{rulecache.PolicyLRU, rulecache.PolicyLFU, rulecache.PolicyCostAware}
	for seed := int64(0); seed < 30; seed++ {
		policy := policies[seed%3]
		if !runCachedSeq(t, seed, policy, false) {
			t.Logf("seed %d (%v) fails; replaying verbosely", seed, policy)
			runCachedSeq(t, seed, policy, true)
			t.FailNow()
		}
	}
}

// TestCachedBatchMatchesPerOp applies the same op sequence through the
// vectored entry points and the per-op ones and requires identical results
// and lookup behavior.
func TestCachedBatchMatchesPerOp(t *testing.T) {
	mk := func() *Agent {
		return newTestAgent(t, Config{
			DisableRateLimit: true,
			Cache:            &rulecache.Config{Capacity: 4, Policy: rulecache.PolicyLFU},
		})
	}
	perOp, batched := mk(), mk()
	rng := rand.New(rand.NewSource(11))
	var ops []BatchOp
	nextID := classifier.RuleID(1)
	for i := 0; i < 40; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			ops = append(ops, BatchOp{Kind: BatchInsert, Rule: classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xAC100000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(9)))),
				Priority: int32(rng.Intn(6)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}})
			nextID++
		case 2:
			if nextID > 1 {
				ops = append(ops, BatchOp{Kind: BatchDelete, Rule: classifier.Rule{ID: classifier.RuleID(rng.Intn(int(nextID)) + 1)}})
			}
		default:
			if nextID > 1 {
				id := classifier.RuleID(rng.Intn(int(nextID)) + 1)
				ops = append(ops, BatchOp{Kind: BatchModify, Rule: classifier.Rule{
					ID:       id,
					Match:    classifier.DstMatch(classifier.NewPrefix(0xAC100000|(rng.Uint32()&0xFFFF), 24)),
					Priority: int32(rng.Intn(6)),
					Action:   classifier.Action{Type: classifier.ActionDrop},
				}})
			}
		}
	}
	now := 5 * time.Millisecond
	var perRes []BatchResult
	for _, op := range ops {
		var res Result
		var err error
		switch op.Kind {
		case BatchInsert:
			res, err = perOp.Insert(now, op.Rule)
		case BatchDelete:
			res, err = perOp.Delete(now, op.Rule.ID)
		default:
			res, err = perOp.Modify(now, op.Rule)
		}
		perRes = append(perRes, BatchResult{Res: res, Err: err})
	}
	batchRes := batched.ApplyBatch(now, ops, nil)
	if len(batchRes) != len(perRes) {
		t.Fatalf("result count %d vs %d", len(batchRes), len(perRes))
	}
	for i := range perRes {
		if (perRes[i].Err == nil) != (batchRes[i].Err == nil) {
			t.Errorf("op %d: err %v vs %v", i, perRes[i].Err, batchRes[i].Err)
		}
		if perRes[i].Err == nil && perRes[i].Res.Path != batchRes[i].Res.Path {
			t.Errorf("op %d: path %v vs %v", i, perRes[i].Res.Path, batchRes[i].Res.Path)
		}
	}
	rr := rand.New(rand.NewSource(12))
	for k := 0; k < 400; k++ {
		dst := 0xAC100000 | rr.Uint32()&0xFFFFF
		g1, ok1 := perOp.Lookup(dst, 0)
		g2, ok2 := batched.Lookup(dst, 0)
		if ok1 != ok2 || (ok1 && g1.Action != g2.Action) {
			t.Fatalf("pkt %08x: per-op %v(%v) batch %v(%v)", dst, g1, ok1, g2, ok2)
		}
	}
	if err := batched.CheckConsistency(); err != nil {
		t.Errorf("batched consistency: %v", err)
	}
}

// TestTrackHitsOnly exercises the hit accounting satellite without the
// cache tier: the insert paths are untouched and lookups count hits.
func TestTrackHitsOnly(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, TrackHits: true})
	if a.Cached() {
		t.Fatal("TrackHits alone must not enable the cache tier")
	}
	now := time.Duration(0)
	for i := 1; i <= 3; i++ {
		r := dstRule(classifier.RuleID(i), "10.0.0.0/8", int32(i), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<24, 8))
		res, err := a.Insert(now, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathSoft {
			t.Errorf("rule %d took the soft path without a cache", i)
		}
		now += time.Millisecond
	}
	for k := 0; k < 5; k++ {
		a.Lookup(1<<24|uint32(k), 0)
	}
	a.Lookup(2<<24|1, 0)
	if got := a.RuleHits(1); got != 5 {
		t.Errorf("RuleHits(1) = %d, want 5", got)
	}
	if got := a.RuleHits(2); got != 1 {
		t.Errorf("RuleHits(2) = %d, want 1", got)
	}
	if got := a.RuleHits(3); got != 0 {
		t.Errorf("RuleHits(3) = %d, want 0", got)
	}
	// Fragment hits attribute to the original rule: force a partition by
	// adding an overlapping higher-priority main rule via migration.
	if _, err := a.Delete(now, 3); err != nil {
		t.Fatal(err)
	}
}

// FuzzCachedLookupEquivalence drives a cached agent with a fuzz-shaped op
// stream and cross-checks every lookup against the single-table oracle.
func FuzzCachedLookupEquivalence(f *testing.F) {
	// Boundary seeds: promotion fill, demotion churn, cover-heavy overlap.
	f.Add(int64(1), []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55})
	f.Add(int64(2), []byte{0xF0, 0xF1, 0xF2, 0x03, 0x04, 0x05, 0x06, 0x07, 0xFF})
	f.Add(int64(3), []byte{0x80, 0x81, 0x82, 0x83, 0x90, 0x91, 0x92, 0x93, 0xA0, 0xA1})
	f.Add(int64(4), []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90, 0xA0, 0xB0, 0xC0})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		if len(program) == 0 || len(program) > 256 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := newTestAgent(t, Config{
			DisableRateLimit: true,
			Cache: &rulecache.Config{
				Capacity: 1 + int(program[0]%6),
				Policy:   rulecache.Policy(program[0] % 3),
			},
		})
		now := time.Duration(0)
		nextID := classifier.RuleID(1)
		live := []classifier.RuleID{}
		for _, b := range program {
			now += time.Duration(b%7+1) * time.Millisecond
			switch b % 5 {
			case 0, 1: // insert
				r := classifier.Rule{
					ID:       nextID,
					Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|uint32(b)<<8, uint8(16+int(b%13)))),
					Priority: int32(b % 8),
					Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
				}
				if _, err := a.Insert(now, r); err == nil {
					live = append(live, nextID)
				}
				nextID++
			case 2: // delete
				if len(live) > 0 {
					i := int(b) % len(live)
					a.Delete(now, live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // tick (rebalance)
				a.Tick(now)
			default: // lookups to skew popularity
				for k := 0; k < int(b%16); k++ {
					a.Lookup(0xC0A80000|uint32(b)<<8|uint32(k), 0)
				}
			}
			if a.NeedsReconcile() {
				a.Reconcile(now)
			}
			// Cross-check a probe sample.
			for k := 0; k < 20; k++ {
				dst := 0xC0A80000 | rng.Uint32()&0xFFFF
				want, wok := a.LogicalLookup(dst, 0)
				got, gok := a.Lookup(dst, 0)
				if wok != gok || (wok && (got.Action != want.Action || got.Priority != want.Priority)) {
					t.Fatalf("pkt %08x: got %v(%v) want %v(%v)", dst, got, gok, want, wok)
				}
			}
		}
		if err := a.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}
