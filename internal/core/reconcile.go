package core

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// This file is the crash-recovery half of the robustness story: the agent's
// rules map (plus the partition map) is the *desired* state, the physical
// shadow/main slices are the *actual* state, and Reconcile is the repair
// loop that drives actual back to desired after a fault — a switch
// power-cycle that wiped or truncated the TCAM, a migration cut off at one
// of the four Fig.-7 steps, or an update engine that acked writes it never
// applied. Repairs preserve the §4.2 invariants (shadow fragments disjoint
// from every beating main rule, tie order by logical sequence), so after a
// Reconcile the carved pipeline answers exactly like the reference
// monolithic table again.

// ReconcileReport summarizes what one Reconcile pass found and repaired.
type ReconcileReport struct {
	// AbortedMigration reports that an in-flight background copy was
	// discarded (its snapshot could not survive the repair).
	AbortedMigration bool
	// StaleDeleted counts physical entries removed because no live rule
	// wanted them (orphans) or their content drifted from the desired rule.
	StaleDeleted int
	// MainReinstalled counts desired main-table entries that were missing
	// (e.g. wiped by a crash) and were written back.
	MainReinstalled int
	// ShadowRepaired counts shadow-resident rules whose physical
	// realization had to be rebuilt (missing fragments, or a partition that
	// no longer matches the current main table).
	ShadowRepaired int
	// Kept counts shadow-resident rules whose physical state already
	// matched the desired partition.
	Kept int
	// Unrepaired counts rules that could not be reinstalled (table
	// capacity); they remain tracked but uninstalled, exactly like a
	// table-full insertion on a real switch.
	Unrepaired int
}

// Clean reports that the pass found nothing to repair.
func (r ReconcileReport) Clean() bool {
	return !r.AbortedMigration && r.StaleDeleted == 0 && r.MainReinstalled == 0 &&
		r.ShadowRepaired == 0 && r.Unrepaired == 0
}

func (r ReconcileReport) String() string {
	return fmt.Sprintf("reconcile{aborted=%v stale=%d main=%d shadow=%d kept=%d unrepaired=%d}",
		r.AbortedMigration, r.StaleDeleted, r.MainReinstalled, r.ShadowRepaired, r.Kept, r.Unrepaired)
}

// NeedsReconcile reports whether a fault has marked the agent's view as
// possibly diverged from the physical tables.
func (a *Agent) NeedsReconcile() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.needsReconcile
}

// CrashRestart models the managed switch power-cycling under the agent:
// every physical entry vanishes and the control-plane queues empty, while
// the agent's desired state (rules, partitions, sequence numbers) survives
// in software. Call Reconcile afterwards to reinstall.
func (a *Agent) CrashRestart(now time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.migr != nil {
		// The background copy dies with the switch.
		a.migr = nil
		a.metrics.MigrationAborts++
	}
	a.sw.CrashRestart()
	a.mainIndex = classifier.Trie{}
	a.needsReconcile = true
	a.metrics.SwitchRestarts++
	a.o.event(now, obs.EvCrash, 0, 0, 0, 0)
}

// MarkDivergent flags the agent as needing reconciliation without saying
// why — used when an external fault (table truncation, dropped TCAM ops)
// may have desynchronized the physical tables.
func (a *Agent) MarkDivergent() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.needsReconcile = true
}

// TruncateShadow models a crash during a bulk shadow-table write: only the
// first n physical entries survive. The agent is marked divergent.
func (a *Agent) TruncateShadow(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shadow.Truncate(n)
	a.needsReconcile = true
}

// desiredMainEntries returns, keyed by physical entry ID, the entries the
// main table should hold: the original (or, under the fragment ablation,
// the fragments) of every main-resident rule.
func (a *Agent) desiredMainEntries() map[classifier.RuleID]*ruleState {
	out := make(map[classifier.RuleID]*ruleState)
	for id, st := range a.rules {
		if st.place != placeMain {
			continue
		}
		for _, pid := range st.partIDs {
			out[pid] = st
		}
		_ = id
	}
	return out
}

// desiredShadowEntries returns, keyed by physical entry ID, the fragment
// content the shadow table should hold for every shadow-resident rule.
func (a *Agent) desiredShadowEntries() map[classifier.RuleID]classifier.Rule {
	out := make(map[classifier.RuleID]classifier.Rule)
	for id, st := range a.rules {
		if st.place != placeShadow {
			continue
		}
		for _, pid := range st.partIDs {
			if frag, ok := a.fragFromPartition(id, pid); ok {
				out[pid] = frag
			}
		}
	}
	return out
}

// Reconcile diffs the agent's desired rule state against the physical
// shadow/main tables and repairs the difference: stale or orphaned entries
// are deleted, missing main entries are written back, and every
// shadow-resident rule is re-validated against the *current* main table —
// its fragments must be exactly the partition Algorithm 1 yields now, or
// the rule is freshly re-partitioned and reinstalled. The pass is
// deterministic (rules are visited in ID order) and leaves the agent with
// NeedsReconcile() == false.
func (a *Agent) Reconcile(now time.Duration) ReconcileReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	var rep ReconcileReport
	if a.migr != nil {
		// An in-flight background copy references rules whose physical
		// state this pass is about to rewrite; drop it and let the next
		// Tick restart migration from a consistent snapshot.
		a.migr = nil
		a.metrics.MigrationAborts++
		rep.AbortedMigration = true
	}

	// Phase 1: main table. Delete entries nobody wants (or whose content
	// drifted), then write back the missing ones in ID order.
	desiredMain := a.desiredMainEntries()
	for _, e := range a.main.Rules() {
		st, ok := desiredMain[e.ID]
		if ok {
			if want, wok := a.fragFromPartition(st.original.ID, e.ID); wok && e == want {
				continue
			}
		}
		if cost, present := a.main.Delete(e.ID); present {
			a.sw.Submit(now, cost)
			rep.StaleDeleted++
		}
	}
	mainIDs := make([]classifier.RuleID, 0, len(desiredMain))
	for pid := range desiredMain {
		mainIDs = append(mainIDs, pid)
	}
	sortRuleIDs(mainIDs)
	for _, pid := range mainIDs {
		if a.main.Contains(pid) {
			continue
		}
		st := desiredMain[pid]
		want, ok := a.fragFromPartition(st.original.ID, pid)
		if !ok {
			rep.Unrepaired++
			continue
		}
		cost, err := a.main.InsertRanked(want, st.seq)
		if err != nil {
			rep.Unrepaired++
			continue
		}
		a.sw.Submit(now, cost)
		rep.MainReinstalled++
	}

	// Phase 2: rebuild the overlap index from the repaired main table —
	// after a crash the old index may reference vanished entries.
	a.mainIndex = classifier.Trie{}
	for _, e := range a.main.Rules() {
		a.mainIndex.Insert(e)
	}

	// Phase 3: shadow table. Delete stale/orphaned physical entries, then
	// re-validate each shadow-resident rule against the current main table.
	desiredShadow := a.desiredShadowEntries()
	for _, e := range a.shadow.Rules() {
		if want, ok := desiredShadow[e.ID]; ok && e == want {
			continue
		}
		if cost, present := a.shadow.Delete(e.ID); present {
			a.sw.SubmitGuaranteed(now, cost)
			rep.StaleDeleted++
		}
	}
	var shadowIDs []classifier.RuleID
	for id, st := range a.rules {
		if st.place == placeShadow {
			shadowIDs = append(shadowIDs, id)
		}
	}
	sortRuleIDs(shadowIDs)
	for _, id := range shadowIDs {
		st := a.rules[id]
		if a.shadowRuleIntact(st) {
			rep.Kept++
			continue
		}
		a.reinstallShadowRule(now, st)
		if a.ruleInstalled(st) {
			rep.ShadowRepaired++
		} else {
			rep.Unrepaired++
		}
	}

	a.needsReconcile = false
	a.metrics.Reconciles++
	a.metrics.ReconcileStale += rep.StaleDeleted
	a.metrics.ReconcileRepaired += rep.MainReinstalled + rep.ShadowRepaired
	repaired := rep.MainReinstalled + rep.ShadowRepaired
	a.o.event(now, obs.EvReconcile, 0, 0, uint64(rep.StaleDeleted), uint64(repaired))
	if !rep.Clean() {
		// Flight recorder: freeze the events that led to the divergence.
		a.o.capture(now, "reconcile repair: %v", rep)
	}
	return rep
}

// shadowRuleIntact reports whether a shadow-resident rule's physical state
// is exactly what Algorithm 1 would install against the *current* main
// table: every fragment present with the right content, and the fragment
// match set equal to a fresh partition of the original. A beating main rule
// that vanished (under-coverage) or appeared (overlap) both fail the check.
func (a *Agent) shadowRuleIntact(st *ruleState) bool {
	part := a.partition(st.original, st.seq)
	if part.Overflow || len(part.Parts) > a.cfg.MaxPartitions {
		// The rule can no longer live in the shadow table at all.
		return false
	}
	if part.Redundant() {
		return len(st.partIDs) == 0
	}
	if len(st.partIDs) != len(part.Parts) {
		return false
	}
	// Compare fragment match multisets; priority and action are fixed by
	// the original, so matches identify fragments.
	want := make(map[classifier.Match]int, len(part.Parts))
	for _, p := range part.Parts {
		want[p.Match]++
	}
	for _, pid := range st.partIDs {
		frag, ok := a.fragFromPartition(st.original.ID, pid)
		if !ok {
			return false
		}
		physical, ok := a.shadow.Get(pid)
		if !ok || physical != frag {
			return false
		}
		if want[frag.Match] == 0 {
			return false
		}
		want[frag.Match]--
	}
	return true
}

// ruleInstalled reports whether a rule's desired physical entries are all
// present (an empty fragment set — a redundant rule — counts as installed).
func (a *Agent) ruleInstalled(st *ruleState) bool {
	switch st.place {
	case placeMain:
		for _, pid := range st.partIDs {
			if !a.main.Contains(pid) {
				return false
			}
		}
		return true
	default:
		for _, pid := range st.partIDs {
			if !a.shadow.Contains(pid) {
				return false
			}
		}
		return true
	}
}

// CheckConsistency verifies byte-equivalence between the agent's desired
// view and the physical tables: every desired entry installed with
// identical content and no extra physical entries in either slice. It
// returns nil when the views agree. Chaos harnesses call it after
// Reconcile; any error there is a recovery bug.
func (a *Agent) CheckConsistency() error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	desiredMain := a.desiredMainEntries()
	for _, e := range a.main.Rules() {
		st, ok := desiredMain[e.ID]
		if !ok {
			return fmt.Errorf("core: stale main entry %d (%v)", e.ID, e.Match)
		}
		want, wok := a.fragFromPartition(st.original.ID, e.ID)
		if !wok || e != want {
			return fmt.Errorf("core: main entry %d diverged: have %v want %v", e.ID, e, want)
		}
		delete(desiredMain, e.ID)
	}
	for pid := range desiredMain {
		return fmt.Errorf("core: desired main entry %d missing from hardware", pid)
	}
	desiredShadow := a.desiredShadowEntries()
	for _, e := range a.shadow.Rules() {
		want, ok := desiredShadow[e.ID]
		if !ok {
			return fmt.Errorf("core: stale shadow entry %d (%v)", e.ID, e.Match)
		}
		if e != want {
			return fmt.Errorf("core: shadow entry %d diverged: have %v want %v", e.ID, e, want)
		}
		delete(desiredShadow, e.ID)
	}
	for pid := range desiredShadow {
		return fmt.Errorf("core: desired shadow entry %d missing from hardware", pid)
	}
	return nil
}
