package core

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

func TestAgentAccessors(t *testing.T) {
	sw := tcam.NewSwitch("acc", tcam.Pica8P3290)
	a, err := New(sw, Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a.Switch() != sw {
		t.Error("Switch accessor")
	}
}

func TestInsertPathString(t *testing.T) {
	want := map[InsertPath]string{
		PathShadow: "shadow", PathBypass: "bypass",
		PathMain: "main", PathRedundant: "redundant",
		InsertPath(42): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

// TestNaiveMigrationWithFragments exercises fragFromPartition: the naive
// ablation combined with disabled merging must reconstruct fragments from
// the partition map after the shadow was wiped.
func TestNaiveMigrationWithFragments(t *testing.T) {
	a := newTestAgent(t, Config{
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
		DisableMergeOptimization: true,
		NaiveMigration:           true,
	})
	// Blocker in main (via migration), then a rule that fragments.
	if _, err := a.Insert(0, dstRule(1, "192.168.1.0/26", 50, 1)); err != nil {
		t.Fatal(err)
	}
	end := a.ForceMigration(time.Millisecond)
	a.Advance(end)
	res, err := a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("partitions = %d, want fragments", res.Partitions)
	}
	// Migrate the fragments naively: shadow wiped first, fragments
	// reconstructed from the mapping at completion.
	end2 := a.ForceMigration(end + 2*time.Millisecond)
	if end2 == 0 {
		t.Fatal("no migration")
	}
	a.Advance(end2)
	if a.ShadowOccupancy() != 0 {
		t.Errorf("shadow = %d", a.ShadowOccupancy())
	}
	// Semantics must survive: .5 hits the /26 (port 1), .200 the fragments
	// (port 2).
	addr5 := classifier.MustParsePrefix("192.168.1.5/32").Addr
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	if got, ok := a.Lookup(addr5, 0); !ok || got.Action.Port != 1 {
		t.Errorf("lookup .5 = %v, %v", got, ok)
	}
	if got, ok := a.Lookup(addr200, 0); !ok || got.Action.Port != 2 {
		t.Errorf("lookup .200 = %v, %v", got, ok)
	}
}

// TestDeleteDuringMigration removes a migrating rule mid-flight; the
// completion must skip it.
func TestDeleteDuringMigration(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	for i := 0; i < 10; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i+1), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8|0x0A000000, 28))
		a.Insert(0, r)
	}
	end := a.ForceMigration(time.Millisecond)
	if end == 0 {
		t.Fatal("no migration")
	}
	// Delete rule 5 while the copy is in flight.
	if _, err := a.Delete(end/2, 5); err != nil {
		t.Fatal(err)
	}
	a.Advance(end)
	if a.MainOccupancy() != 9 {
		t.Errorf("main occupancy = %d, want 9 (deleted rule skipped)", a.MainOccupancy())
	}
	addr := uint32(4)<<8 | 0x0A000000
	if _, ok := a.Lookup(addr, 0); ok {
		t.Error("deleted rule still resolvable")
	}
}

// TestInsertDuringMigrationRepartitioned verifies the post-migration
// re-partition: a rule inserted mid-migration that conflicts with a
// migrating higher-priority rule gets cut when the migration lands.
func TestInsertDuringMigrationRepartitioned(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	// High-priority rule that will migrate to main.
	a.Insert(0, dstRule(1, "192.168.1.0/26", 50, 1))
	end := a.ForceMigration(time.Millisecond)
	if end == 0 {
		t.Fatal("no migration")
	}
	// Mid-migration: overlapping lower-priority rule. At insert time the
	// main table is still empty, so no cut happens yet.
	res, err := a.Insert(end/2, dstRule(2, "192.168.1.0/24", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("mid-migration insert fragmented early: %+v", res)
	}
	a.Advance(end)
	// After the migration, the shadow rule must have been re-cut so the
	// main-table /26 wins on its region.
	addr5 := classifier.MustParsePrefix("192.168.1.5/32").Addr
	if got, ok := a.Lookup(addr5, 0); !ok || got.Action.Port != 1 {
		t.Errorf("lookup .5 = %v (ok=%v), want port 1 via main", got, ok)
	}
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	if got, ok := a.Lookup(addr200, 0); !ok || got.Action.Port != 2 {
		t.Errorf("lookup .200 = %v (ok=%v), want port 2 via shadow", got, ok)
	}
}

// TestMainTableFullFallback: when both shadow and main are exhausted the
// agent surfaces table-full semantics.
func TestMainTableFullFallback(t *testing.T) {
	prof := *tcam.Pica8P3290
	prof.Capacity = 64
	sw := tcam.NewSwitch("tiny", &prof)
	a, err := New(sw, Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true, DisableLowPriorityBypass: true})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	inserted, failed := 0, 0
	for i := 0; i < 200; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i%5+1), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16, 24))
		if _, err := a.Insert(now, r); err != nil {
			failed++
		} else {
			inserted++
		}
		now += time.Millisecond
		if end := a.Tick(now); end != 0 {
			a.Advance(end)
			now = end
		}
	}
	if failed == 0 {
		t.Error("tiny switch never reported table full")
	}
	if inserted < 32 {
		t.Errorf("only %d rules fit", inserted)
	}
}
