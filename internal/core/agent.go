package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
	"hermes/internal/predict"
	"hermes/internal/rulecache"
	"hermes/internal/tcam"
	"hermes/internal/tokenbucket"
)

// partIDBase is the first rule ID the agent mints for partition fragments.
// Controller-assigned rule IDs must stay below it.
const partIDBase classifier.RuleID = 1 << 40

// Agent errors.
var (
	// ErrGuaranteeInfeasible means the requested bound is below even a
	// shift-free insertion on this switch, so no shadow size can honor it.
	ErrGuaranteeInfeasible = errors.New("core: guarantee below the switch's floor latency")
	// ErrUnknownRule is returned for operations on rules the agent never
	// saw (or already deleted).
	ErrUnknownRule = errors.New("core: unknown rule")
	// ErrDuplicateRule is returned when inserting an ID that is live.
	ErrDuplicateRule = errors.New("core: duplicate rule id")
	// ErrReservedID is returned for controller rules in the agent's
	// internal partition-ID space.
	ErrReservedID = errors.New("core: rule id in reserved partition range")
)

type placement uint8

const (
	placeShadow placement = iota
	placeMain
)

// ruleState tracks where one controller-visible (original) rule currently
// lives and which physical entries realize it.
type ruleState struct {
	original classifier.Rule
	// seq is the rule's logical insertion sequence number; ties in
	// priority are broken by it (earlier wins), exactly as a monolithic
	// TCAM would order equal-priority entries.
	seq   uint64
	place placement
	// partIDs are the physical entry IDs in the shadow table realizing the
	// rule (== {original.ID} when not fragmented). For placeMain it is
	// always {original.ID}.
	partIDs []classifier.RuleID
}

// migration is an in-flight background migration (§5.2).
type migration struct {
	startedAt  time.Duration
	completeAt time.Duration
	// originals are the IDs snapshotted for this migration.
	originals []classifier.RuleID
	// naive reports the ablation mode where the shadow was emptied at
	// start instead of at completion.
	naive bool
}

// Agent is one switch's Hermes instance: Gate Keeper + Rule Manager
// (Fig. 3). It is safe for concurrent use: control-plane mutations
// serialize on a write lock (mirroring the single switch-CPU agent), while
// reads take a read lock and packet lookups additionally have a lock-free
// snapshot fast path (see view.go) so the data plane never waits on the
// control plane once the tables quiesce.
type Agent struct {
	// mu is the control-plane lock: mutators hold it exclusively, readers
	// shared. Fields below are protected by it unless noted.
	mu sync.RWMutex

	// view is the atomically published lookup snapshot; logicalGen counts
	// reference-table changes (the tcam tables carry their own generation
	// counters). Both are accessed without mu.
	view       atomic.Pointer[agentView]
	logicalGen atomic.Uint64
	stale      viewStaleness

	sw     *tcam.Switch
	shadow *tcam.Table
	main   *tcam.Table
	cfg    Config

	shadowSize int
	maxRate    float64 // Equation 2, rules/second
	bucket     *tokenbucket.Bucket

	mainIndex  classifier.Trie
	pmap       *classifier.PartitionMap
	rules      map[classifier.RuleID]*ruleState
	nextPartID classifier.RuleID
	nextSeq    uint64

	arrivals int // shadow entries installed since the last Tick
	migr     *migration
	lastTick time.Duration
	tuner    *autoTuner // non-nil when cfg.AutoTuneSlack

	// needsReconcile is set when a fault (crash/restart, interrupted
	// migration, lost TCAM update) may have diverged the physical tables
	// from the desired rule state; Reconcile clears it.
	needsReconcile bool

	metrics Metrics
	// o is the optional obs wiring (Config.Observer); nil costs one
	// pointer check per instrumented call site.
	o *Observer

	// logical is the reference monolithic table (insertion-ordered) kept
	// when cfg.TrackLogical is set; tests use it to verify equivalence.
	logical []classifier.Rule

	// stPool is a freelist of ruleState structs: deleteRule returns states
	// to it and the batched insert fast path reuses them (with their
	// partIDs capacity), so steady-state batch insert allocates nothing.
	// Safe because deleteRule is the single exit point from a.rules and no
	// caller retains a *ruleState past the deletion.
	stPool []*ruleState

	// overlapPrio/overlapPred implement the batch fast path's zero-alloc
	// overlap probe: the closure is allocated once here, and the priority
	// under test rides in overlapPrio (mutated under a.mu) instead of a
	// fresh capture per op.
	overlapPrio int32
	overlapPred func(classifier.Rule) bool

	// --- rule-cache hierarchy (DESIGN.md §16, cache.go) ---------------
	// soft is the authoritative software tier (non-nil iff Config.Cache
	// is set); cmgr is the cache/hit-stats manager (non-nil when Cache or
	// TrackHits). soft's pointer is written once in New and read lock-free
	// on the lookup fast path; its contents mutate only under a.mu.
	soft     *rulecache.SoftTable
	cmgr     *rulecache.Manager
	cacheCfg rulecache.Config
	// residentIndex tracks the hardware-resident original rules;
	// residentCount is its size (covers excluded from both).
	residentIndex classifier.Trie
	residentCount int
	// covers maps a software-only rule to the cover entries shielding it
	// in the main table; nextCoverID mints their IDs (≥ coverIDBase).
	covers      map[classifier.RuleID][]classifier.RuleID
	nextCoverID classifier.RuleID
	// promoting marks insertSeq calls made by the cache manager itself:
	// background promotions skip the token bucket and the guarantee
	// accounting (they are cache maintenance, not controller actions).
	promoting bool
}

// New creates a Hermes agent on the switch: sizes the shadow table from the
// requested guarantee (the largest occupancy whose worst-case insertion
// stays within the bound), carves the TCAM, and computes the admissible
// rate of Equation 2. The switch must be un-carved and empty.
func New(sw *tcam.Switch, cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	prof := sw.Profile()
	if cfg.Guarantee <= 0 {
		return nil, fmt.Errorf("core: non-positive guarantee %v", cfg.Guarantee)
	}
	size := prof.MaxShiftsWithin(cfg.Guarantee)
	if size == 0 {
		return nil, fmt.Errorf("%w: %v < floor %v on %s",
			ErrGuaranteeInfeasible, cfg.Guarantee, prof.FloorLatency, prof.Name)
	}
	if max := prof.Capacity / 2; size > max {
		size = max
	}
	shadow, main, err := sw.Carve(size)
	if err != nil {
		return nil, err
	}
	if cfg.LinearLookup {
		shadow.SetLinearLookup(true)
		main.SetLinearLookup(true)
	}
	a := &Agent{
		sw:         sw,
		shadow:     shadow,
		main:       main,
		cfg:        cfg,
		shadowSize: size,
		pmap:       classifier.NewPartitionMap(),
		rules:      make(map[classifier.RuleID]*ruleState),
		nextPartID: partIDBase,
		metrics:    newMetrics(),
		o:          cfg.Observer,
	}
	if a.o != nil {
		shadow.SetShiftHistogram(a.o.ShadowShifts)
		main.SetShiftHistogram(a.o.MainShifts)
	}
	// A main-table rule with priority ≥ the contender's would cut it
	// (every installed rule has an earlier seq, so equal priority means the
	// installed rule wins) — see insertBatched.
	a.overlapPred = func(existing classifier.Rule) bool {
		return existing.Priority >= a.overlapPrio
	}
	a.maxRate = a.computeMaxRate()
	if !cfg.DisableRateLimit {
		a.bucket = tokenbucket.New(a.maxRate, a.burstBudget())
	}
	if cfg.Cache != nil {
		cc := cfg.Cache.WithDefaults()
		if cc.Capacity <= 0 {
			return nil, fmt.Errorf("core: cache capacity must be positive, got %d", cc.Capacity)
		}
		a.cacheCfg = cc
		a.soft = rulecache.NewSoftTable(cc.Profile)
		a.cmgr = rulecache.NewManager(cc)
		a.covers = make(map[classifier.RuleID][]classifier.RuleID)
		a.nextCoverID = coverIDBase
	} else if cfg.TrackHits {
		a.cmgr = rulecache.NewManager(rulecache.Config{})
	}
	if cfg.AutoTuneSlack {
		seed := 1.0
		if s, ok := cfg.Corrector.(predict.Slack); ok && s.Factor > 0 {
			seed = s.Factor
		}
		a.tuner = newAutoTuner(seed)
	}
	return a, nil
}

// burstBudget sizes the token bucket's burst so that an admitted burst
// drains through the serial control-plane processor within roughly one
// guarantee period: B ≈ guarantee / typical-insert-cost. Larger bursts
// would be installed within the bound individually but complete late due
// to queueing, silently voiding the guarantee.
func (a *Agent) burstBudget() float64 {
	typical := a.sw.Profile().InsertLatency(a.shadowSize / 4)
	b := a.cfg.Guarantee.Seconds() / typical.Seconds()
	if b < 4 {
		b = 4
	}
	if max := float64(a.shadowSize) / 2; b > max {
		b = max
	}
	return b
}

// computeMaxRate evaluates Equation 2 — λ = S_ST / (r_p · t_m), with t_m
// estimated as the time to migrate a full shadow table at typical main
// occupancy (half full) using the cheaper of incremental and bulk
// strategies — and additionally caps λ at the control-plane processor's
// sustainable service rate at typical shadow occupancy. Equation 2 bounds
// how fast rules can *leave* the shadow table; the service-rate cap bounds
// how fast they can *enter* it without queueing past the guarantee.
func (a *Agent) computeMaxRate() float64 {
	prof := a.sw.Profile()
	s := a.shadowSize
	mainOcc := a.main.Capacity() / 2
	incremental := time.Duration(s) * prof.InsertLatency(mainOcc)
	bulk := time.Duration(mainOcc+s) * prof.BulkWriteLatency
	tm := incremental
	if bulk < tm {
		tm = bulk
	}
	eq2 := float64(s) / (a.cfg.ExpectedPartitions * tm.Seconds())
	service := 1.0 / (a.cfg.ExpectedPartitions * prof.InsertLatency(s/4).Seconds())
	if service < eq2 {
		return service
	}
	return eq2
}

// MaxRate returns the guaranteed-insertion rate (rules/second) the agent
// admits — the value CreateTCAMQoS reports to the operator (§7).
func (a *Agent) MaxRate() float64 { return a.maxRate }

// ShadowSize returns the carved shadow-table capacity.
func (a *Agent) ShadowSize() int { return a.shadowSize }

// OverheadFraction returns the TCAM fraction sacrificed for the guarantee —
// the quantity QoSOverheads reports and Figure 14 plots.
func (a *Agent) OverheadFraction() float64 {
	return float64(a.shadowSize) / float64(a.sw.Profile().Capacity)
}

// Guarantee returns the configured insertion bound.
func (a *Agent) Guarantee() time.Duration { return a.cfg.Guarantee }

// Switch returns the underlying switch (for lookups in tests and the
// simulator).
func (a *Agent) Switch() *tcam.Switch { return a.sw }

// Metrics returns a copy of the agent's counters. The histogram fields
// share state with the live metrics (cheap, read-only view); use
// Metrics().Snapshot() to carry them across a concurrency boundary.
func (a *Agent) Metrics() Metrics {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.metrics
}

// ShadowOccupancy reports the live shadow-table entry count.
func (a *Agent) ShadowOccupancy() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.shadow.Occupancy()
}

// MainOccupancy reports the live main-table entry count.
func (a *Agent) MainOccupancy() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.main.Occupancy()
}

// SetPredicate swaps the guarantee predicate in place (ModQoSMatch, §7).
func (a *Agent) SetPredicate(pred Predicate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg.Predicate = pred
}

// Migrating reports whether a background migration is in flight at now.
func (a *Agent) Migrating(now time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	return a.migr != nil
}

func (a *Agent) mintPartID() classifier.RuleID {
	id := a.nextPartID
	a.nextPartID++
	return id
}

// guarded reports whether the rule falls under the configured guarantee
// predicate.
func (a *Agent) guarded(r classifier.Rule) bool {
	return a.cfg.Predicate == nil || a.cfg.Predicate(r)
}

// Insert is the Gate Keeper's flow-mod insertion entry point.
func (a *Agent) Insert(now time.Duration, r classifier.Rule) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.soft != nil {
		return a.insertCached(now, r)
	}
	return a.insert(now, r)
}

// insert validates the rule, mints its tie-breaking sequence number, and
// routes it through the Gate Keeper (insertSeq). It owns the bookkeeping
// that must happen exactly once per controller-visible insert — the Inserts
// counter, the logical reference table, and the hit-stats record — so that
// insertSeq can also serve cache promotions, which re-install an existing
// rule under its original seq.
func (a *Agent) insert(now time.Duration, r classifier.Rule) (Result, error) {
	a.advance(now)
	if r.ID >= partIDBase {
		return Result{}, fmt.Errorf("%w: %d", ErrReservedID, r.ID)
	}
	if _, ok := a.rules[r.ID]; ok {
		return Result{}, fmt.Errorf("%w: %d", ErrDuplicateRule, r.ID)
	}
	a.metrics.Inserts++
	seq := a.nextSeq
	a.nextSeq++
	res, err := a.insertSeq(now, r, seq)
	if err != nil {
		return res, err
	}
	a.trackLogical(r)
	a.noteRuleAdded(r.ID)
	return res, nil
}

// insertSeq is the Gate Keeper's routing core: bypass, admission control,
// Algorithm 1 partitioning, and the shadow/main install paths, for a rule
// whose seq is already minted. Callers handle validation and per-insert
// bookkeeping.
func (a *Agent) insertSeq(now time.Duration, r classifier.Rule, seq uint64) (Result, error) {
	if !a.guarded(r) {
		return a.insertMain(now, r, seq)
	}

	// §4.2 optimization: a rule that is the lowest priority everywhere
	// appends to the main table shift-free, and cannot shadow anything.
	if !a.cfg.DisableLowPriorityBypass && a.isGloballyLowestPriority(r.Priority) {
		res, err := a.insertMainRawLane(now, r, seq, true)
		if err != nil {
			return res, err
		}
		res.Path = PathBypass
		res.Guaranteed = true // costs only the floor latency by construction
		a.metrics.Bypasses++
		a.o.recordBypass(res.Completed - now)
		a.o.event(now, obs.EvBypass, 0, uint64(r.ID), 0, uint64(res.Completed-now))
		a.observeGuaranteed(now, res)
		return res, nil
	}

	// Admission control (token bucket): overruns go to the main table.
	// Cache promotions bypass the bucket — they are background maintenance
	// and must not starve controller admissions.
	if a.bucket != nil && !a.promoting && !a.bucket.Allow(now, 1) {
		a.metrics.RateLimited++
		a.o.event(now, obs.EvDivertRate, 0, uint64(r.ID), uint64(a.bucket.Tokens(now)), 0)
		return a.insertMain(now, r, seq)
	}

	// Algorithm 1: partition against higher-priority main-table rules.
	part := a.partition(r, seq)
	if part.Overflow {
		// Footnote 5: partitioning abandoned — install into the main table.
		a.metrics.Oversized++
		a.o.event(now, obs.EvDivertSize, 0, uint64(r.ID), 0, 0)
		return a.insertMain(now, r, seq)
	}
	if part.Redundant() {
		a.rules[r.ID] = &ruleState{original: r, seq: seq, place: placeShadow, partIDs: nil}
		a.pmap.Record(part)
		a.metrics.Redundant++
		a.o.event(now, obs.EvRedundant, 0, uint64(r.ID), 0, 0)
		return Result{Path: PathRedundant, Completed: now, Guaranteed: true}, nil
	}
	if len(part.Parts) > a.cfg.MaxPartitions {
		// Footnote 5: pathological fragmentation — install the original
		// directly in the main table instead.
		a.metrics.Oversized++
		a.o.event(now, obs.EvDivertSize, 0, uint64(r.ID), uint64(len(part.Parts)), 0)
		return a.insertMain(now, r, seq)
	}
	if a.shadow.Free() < len(part.Parts) {
		// Shadow exhausted: fall back to the main table (§5.2 calls this a
		// potential performance violation).
		a.metrics.ShadowFull++
		a.o.event(now, obs.EvDivertFull, 0, uint64(r.ID), uint64(a.shadow.Free()), 0)
		return a.insertMain(now, r, seq)
	}

	// Guaranteed path: install the fragments in the shadow table.
	var total time.Duration
	completed := now
	ids := make([]classifier.RuleID, 0, len(part.Parts))
	for _, p := range part.Parts {
		cost, err := a.shadow.InsertRanked(p, seq)
		if err != nil {
			// Capacity was checked above; any failure here is a bug.
			panic(fmt.Sprintf("core: shadow insert: %v", err))
		}
		total += cost
		completed = a.sw.SubmitGuaranteed(now, cost)
		ids = append(ids, p.ID)
	}
	a.rules[r.ID] = &ruleState{original: r, seq: seq, place: placeShadow, partIDs: ids}
	a.pmap.Record(part)
	a.arrivals += len(part.Parts)
	a.metrics.ShadowInserts++
	a.metrics.PartitionsInstalled += len(part.Parts)
	if part.WasCut() {
		a.metrics.RulesCut++
	}

	res := Result{
		Path:       PathShadow,
		Latency:    total,
		Completed:  completed,
		Guaranteed: true,
		Partitions: len(part.Parts),
	}
	a.o.recordShadow(completed - now)
	a.o.event(now, obs.EvAdmit, 0, uint64(r.ID), uint64(len(part.Parts)), uint64(completed-now))
	a.observeGuaranteed(now, res)
	return res, nil
}

// partition runs Algorithm 1 for a rule with seq-aware tie-breaking: a
// main-table rule beats r when it has higher priority, or equal priority
// and an earlier insertion sequence (as in a monolithic TCAM).
func (a *Agent) partition(r classifier.Rule, seq uint64) classifier.Partition {
	wins := func(existing classifier.Rule) bool {
		return a.beats(existing, r.Priority, seq)
	}
	// The working-set cap is above MaxPartitions so that merging still has
	// a chance to bring a busy cut back under the limit, but pathological
	// rules bail out long before cutting against the whole table.
	return classifier.PartitionAgainst(r, &a.mainIndex, wins, a.mintPartID,
		!a.cfg.DisableMergeOptimization, 8*a.cfg.MaxPartitions)
}

// beats reports whether an installed rule would beat a (priority, seq)
// contender in a monolithic table.
func (a *Agent) beats(existing classifier.Rule, priority int32, seq uint64) bool {
	if existing.Priority != priority {
		return existing.Priority > priority
	}
	st, ok := a.rules[existing.ID]
	if !ok {
		return true // unknown provenance: cut conservatively
	}
	return st.seq < seq
}

// isGloballyLowestPriority reports whether priority is ≤ every installed
// entry's priority in both tables, the §4.2 bypass precondition. (Against
// the shadow table the comparison guards correctness: a bypassed main rule
// must not be shadowed by an overlapping lower-priority shadow entry.)
func (a *Agent) isGloballyLowestPriority(priority int32) bool {
	if _, shifts := a.main.InsertPosition(priority); shifts != 0 {
		return false
	}
	if _, shifts := a.shadow.InsertPosition(priority); shifts != 0 {
		return false
	}
	return true
}

// insertMain installs a rule on the unguaranteed main path and repairs any
// shadow rules the new main rule would be shadowed by.
func (a *Agent) insertMain(now time.Duration, r classifier.Rule, seq uint64) (Result, error) {
	res, err := a.insertMainRaw(now, r, seq)
	if err != nil {
		return res, err
	}
	a.metrics.MainInserts++
	a.metrics.observeLatency(res.Latency, false)
	a.o.recordMain(res.Latency)
	a.o.event(now, obs.EvMainInsert, 0, uint64(r.ID), 0, uint64(res.Latency))
	return res, nil
}

// insertMainRaw physically installs into the main table, updates the
// overlap index, and re-cuts lower-priority shadow rules that the new rule
// must win over (otherwise the shadow-first lookup would return them).
func (a *Agent) insertMainRaw(now time.Duration, r classifier.Rule, seq uint64) (Result, error) {
	return a.insertMainRawLane(now, r, seq, false)
}

// insertMainRawLane optionally uses the guaranteed control-plane lane (the
// §4.2 bypass is a guaranteed action even though it lands in the main
// table — it is shift-free by construction).
func (a *Agent) insertMainRawLane(now time.Duration, r classifier.Rule, seq uint64, guaranteed bool) (Result, error) {
	cost, err := a.main.InsertRanked(r, seq)
	if err != nil {
		return Result{}, err
	}
	var completed time.Duration
	if guaranteed {
		completed = a.sw.SubmitGuaranteed(now, cost)
	} else {
		completed = a.sw.Submit(now, cost)
	}
	a.mainIndex.Insert(r)
	a.rules[r.ID] = &ruleState{original: r, seq: seq, place: placeMain, partIDs: []classifier.RuleID{r.ID}}
	a.repairShadowAfterMainInsert(now, r)
	return Result{Path: PathMain, Latency: cost, Completed: completed}, nil
}

// repairShadowAfterMainInsert re-partitions shadow-resident originals that
// overlap a newly installed main rule with lower-or-equal priority; without
// the re-cut the shadow-first lookup would let them shadow the new rule.
func (a *Agent) repairShadowAfterMainInsert(now time.Duration, mainRule classifier.Rule) {
	// Collect candidates first (sorted for determinism) because the repair
	// may move rules between tables.
	var ids []classifier.RuleID
	for id, st := range a.rules {
		if st.place != placeShadow || id == mainRule.ID {
			continue
		}
		if !st.original.Match.Overlaps(mainRule.Match) {
			continue
		}
		if !a.beats(mainRule, st.original.Priority, st.seq) {
			continue // the shadow rule legitimately wins (priority or age)
		}
		ids = append(ids, id)
	}
	sortRuleIDs(ids)
	for _, id := range ids {
		if st, ok := a.rules[id]; ok && st.place == placeShadow {
			a.reinstallShadowRule(now, st)
		}
	}
}

func sortRuleIDs(ids []classifier.RuleID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// reinstallShadowRule deletes a shadow rule's current fragments and
// re-installs it freshly partitioned against the current main index. When
// the shadow table cannot hold the new fragments the rule is moved to the
// main table instead.
func (a *Agent) reinstallShadowRule(now time.Duration, st *ruleState) {
	for _, pid := range st.partIDs {
		if cost, ok := a.shadow.Delete(pid); ok {
			a.sw.SubmitGuaranteed(now, cost)
		}
	}
	a.pmap.Remove(st.original.ID)
	part := a.partition(st.original, st.seq)
	if !part.Overflow && part.Redundant() {
		st.partIDs = nil
		a.pmap.Record(part)
		return
	}
	if part.Overflow || len(part.Parts) > a.cfg.MaxPartitions || a.shadow.Free() < len(part.Parts) {
		// Out of shadow room: fall back to the main table.
		cost, err := a.main.InsertRanked(st.original, st.seq)
		if err == nil {
			a.sw.Submit(now, cost)
			a.mainIndex.Insert(st.original)
			st.place = placeMain
			st.partIDs = []classifier.RuleID{st.original.ID}
			a.repairShadowAfterMainInsert(now, st.original)
		}
		// A full main table leaves the rule uninstalled; the controller
		// sees table-full semantics exactly as on a real switch.
		return
	}
	ids := make([]classifier.RuleID, 0, len(part.Parts))
	for _, p := range part.Parts {
		cost, err := a.shadow.InsertRanked(p, st.seq)
		if err != nil {
			panic(fmt.Sprintf("core: shadow reinstall: %v", err))
		}
		a.sw.SubmitGuaranteed(now, cost)
		ids = append(ids, p.ID)
	}
	st.partIDs = ids
	a.pmap.Record(part)
	a.metrics.Repartitions++
}

// Delete removes a rule by its controller-visible ID (§4.1).
func (a *Agent) Delete(now time.Duration, id classifier.RuleID) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.soft != nil {
		return a.deleteCached(now, id)
	}
	return a.deleteRule(now, id)
}

func (a *Agent) deleteRule(now time.Duration, id classifier.RuleID) (Result, error) {
	a.advance(now)
	st, ok := a.rules[id]
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownRule, id)
	}
	a.metrics.Deletes++
	total, completed := a.removePhysical(now, st)
	delete(a.rules, id)
	a.recycleRuleState(st)
	a.untrackLogical(id)
	a.noteRuleRemoved(id)
	a.o.recordDelete(total)
	a.o.event(now, obs.EvDelete, 0, uint64(id), 0, uint64(total))
	return Result{Latency: total, Completed: completed, Guaranteed: true}, nil
}

// removePhysical deletes a rule's physical entries from the carved tables
// and repairs dependent shadow rules (the Fig. 6 un-merge), leaving the
// a.rules entry for the caller to drop. Shared by deleteRule and the cache
// manager's demotion/cover paths.
func (a *Agent) removePhysical(now time.Duration, st *ruleState) (time.Duration, time.Duration) {
	var total time.Duration
	completed := now
	id := st.original.ID
	switch st.place {
	case placeShadow:
		// Delete the rule or all of its partitions — never both exist.
		for _, pid := range st.partIDs {
			if cost, ok := a.shadow.Delete(pid); ok {
				total += cost
				completed = a.sw.SubmitGuaranteed(now, cost)
			}
		}
		a.pmap.Remove(id)
	case placeMain:
		cost, present := a.main.Delete(id)
		if present {
			total += cost
			completed = a.sw.Submit(now, cost)
		}
		a.mainIndex.Delete(st.original.Match.Dst, id)
		// Fig. 6: un-partition the shadow rules this main rule had cut.
		for _, dep := range a.pmap.DependentsOf(id) {
			depSt, ok := a.rules[dep]
			if !ok || depSt.place != placeShadow {
				continue
			}
			a.reinstallShadowRule(now, depSt)
		}
	}
	return total, completed
}

// Modify updates a live rule. Action-only changes apply in place at
// constant cost (§2.1); priority or match changes are converted into a
// delete of the original plus an insertion of the modified rule (§4.1).
func (a *Agent) Modify(now time.Duration, r classifier.Rule) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.soft != nil {
		return a.modifyCached(now, r)
	}
	return a.modifyLocked(now, r)
}

func (a *Agent) modifyLocked(now time.Duration, r classifier.Rule) (Result, error) {
	a.advance(now)
	st, ok := a.rules[r.ID]
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownRule, r.ID)
	}
	a.metrics.Modifies++
	a.o.event(now, obs.EvModify, 0, uint64(r.ID), 0, 0)
	if st.original.Priority == r.Priority && st.original.Match == r.Match {
		// Cheap in-place action rewrite on every physical entry.
		var total time.Duration
		completed := now
		tbl := a.shadow
		if st.place == placeMain {
			tbl = a.main
		}
		for _, pid := range st.partIDs {
			if cost, ok := tbl.ModifyAction(pid, r.Action); ok {
				total += cost
				completed = a.sw.Submit(now, cost)
			}
		}
		st.original.Action = r.Action
		if st.place == placeMain {
			// Keep the overlap index in sync.
			a.mainIndex.Delete(r.Match.Dst, r.ID)
			a.mainIndex.Insert(st.original)
		}
		a.retrackLogical(st.original)
		a.o.recordModify(total)
		return Result{Latency: total, Completed: completed, Guaranteed: true}, nil
	}
	// Priority/match change: delete + insert.
	if _, err := a.deleteRule(now, r.ID); err != nil {
		return Result{}, err
	}
	return a.insert(now, r)
}

// Lookup resolves a packet against the carved pipeline (shadow first, then
// main), as the switch data plane would; in cached mode a hardware miss or
// cover hit continues into the authoritative software tier (DESIGN.md §16).
// The fast path validates the published snapshot with atomic generation
// loads and runs without the agent lock; when the snapshot is stale (a
// control-plane write landed) it falls back to a read-locked indexed lookup
// on the live tables.
func (a *Agent) Lookup(dst, src uint32) (classifier.Rule, bool) {
	if v := a.view.Load(); v != nil &&
		v.shadowGen == a.shadow.Gen() && v.mainGen == a.main.Gen() &&
		v.softGen == a.softGen() {
		return v.lookup(dst, src)
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	//lint:ignore hotpathalloc snapshot rebuild is the amortized slow path, entered only after viewRebuildAfter stale reads at quiesced generations
	if v := a.freshView(); v != nil {
		return v.lookup(dst, src)
	}
	r, ok := a.sw.Lookup(dst, src)
	if a.soft == nil {
		a.recordPlainHit(r, ok)
		return r, ok
	}
	return a.finishCachedLookup(dst, src, r, ok)
}

// softGen returns the software tier's generation counter (0 when uncached).
// Lock-free: a.soft is written once in New.
func (a *Agent) softGen() uint64 {
	if a.soft == nil {
		return 0
	}
	return a.soft.Gen()
}

func (a *Agent) observeGuaranteed(now time.Duration, res Result) {
	if a.promoting {
		// Background cache promotions are maintenance, not controller
		// actions: they carry no guarantee to account or violate.
		return
	}
	lat := res.Completed - now
	a.metrics.observeLatency(lat, true)
	if lat > a.cfg.Guarantee {
		a.metrics.Violations++
		overrun := lat - a.cfg.Guarantee
		a.o.recordOverrun(overrun)
		a.o.event(now, obs.EvViolation, 0, 0, uint64(overrun), uint64(lat))
		// Flight recorder: freeze the events leading up to the violation.
		a.o.capture(now, "guarantee violation: latency %v > bound %v", lat, a.cfg.Guarantee)
	}
}

// --- logical reference table (testing aid) -------------------------------

func (a *Agent) trackLogical(r classifier.Rule) {
	if a.cfg.TrackLogical {
		a.logical = append(a.logical, r)
		a.logicalGen.Add(1)
	}
}

func (a *Agent) untrackLogical(id classifier.RuleID) {
	if !a.cfg.TrackLogical {
		return
	}
	for i, r := range a.logical {
		if r.ID == id {
			a.logical = append(a.logical[:i], a.logical[i+1:]...)
			a.logicalGen.Add(1)
			return
		}
	}
}

func (a *Agent) retrackLogical(r classifier.Rule) {
	if !a.cfg.TrackLogical {
		return
	}
	for i := range a.logical {
		if a.logical[i].ID == r.ID {
			a.logical[i] = r
			a.logicalGen.Add(1)
			return
		}
	}
}

// LogicalLookup resolves a packet against the reference monolithic table
// (highest priority wins, earlier insertion breaks ties). Only valid when
// cfg.TrackLogical is set. Like Lookup it has a lock-free snapshot fast
// path; the slow path is the read-locked linear reference scan.
func (a *Agent) LogicalLookup(dst, src uint32) (classifier.Rule, bool) {
	if v := a.view.Load(); v != nil && v.logical != nil &&
		v.logicalGen == a.logicalGen.Load() {
		return v.logical.Lookup(dst, src)
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	//lint:ignore hotpathalloc snapshot rebuild is the amortized slow path, entered only after viewRebuildAfter stale reads at quiesced generations
	if v := a.freshView(); v != nil && v.logical != nil {
		return v.logical.Lookup(dst, src)
	}
	var best classifier.Rule
	found := false
	for _, r := range a.logical {
		if !r.Match.MatchesPacket(dst, src) {
			continue
		}
		if !found || r.Priority > best.Priority {
			best, found = r, true
		}
	}
	return best, found
}

// LogicalRules returns a copy of the reference table (TrackLogical only).
func (a *Agent) LogicalRules() []classifier.Rule {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]classifier.Rule(nil), a.logical...)
}

// Rules returns the controller-visible rule set the agent currently holds
// — the original (unfragmented) rules, sorted by ID. This is the state a
// level-triggered reconciler diffs a desired set against: it reflects
// what the agent believes is installed, and the agent's own
// CheckConsistency/Reconcile pair keeps it faithful to the physical
// tables across crashes and truncations. In cached mode the authoritative
// set is the software tier (internal cover rules never appear).
func (a *Agent) Rules() []classifier.Rule {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.soft != nil {
		return a.soft.Rules()
	}
	out := make([]classifier.Rule, 0, len(a.rules))
	for _, st := range a.rules {
		out = append(out, st.original)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TracksLogical reports whether the agent maintains the reference
// monolithic table (Config.TrackLogical).
func (a *Agent) TracksLogical() bool { return a.cfg.TrackLogical }
