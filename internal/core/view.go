package core

import (
	"sort"
	"sync/atomic"

	"hermes/internal/classifier"
	"hermes/internal/rulecache"
)

// This file implements the agent's lock-free read path: an immutable
// snapshot of the carved pipeline (shadow index, main index, and — when
// TrackLogical is on — the reference monolithic table) published behind an
// atomic pointer. Packet lookups validate the snapshot with three atomic
// generation loads and, when it is current, never touch the agent lock at
// all; control-plane writers invalidate it implicitly just by mutating the
// tables (every tcam.Table mutation bumps its generation counter, including
// out-of-band ones like a crash harness wiping the switch directly).
//
// Snapshots are rebuilt lazily with hysteresis: a reader only pays the
// O(occupancy) rebuild after viewRebuildAfter consecutive lookups observe
// the same (changed) generations — i.e. the tables have quiesced. Under a
// write-heavy phase readers instead fall back to a read-locked indexed
// lookup on the live tables, which is already off the O(n) scan path.

// viewRebuildAfter is the number of consecutive stale read-path entries (at
// stable generations) after which a reader rebuilds the snapshot. Low
// enough that a quiesced table becomes lock-free almost immediately, high
// enough that insert/lookup alternation never rebuilds per packet.
const viewRebuildAfter = 4

// ruleLookup is what a published snapshot needs from an index: RuleIndex
// satisfies it directly, ShardedRuleIndex through its combining layer
// (Config.LookupShards picks which one freshView builds).
type ruleLookup interface {
	Lookup(dst, src uint32) (classifier.Rule, bool)
}

// agentView is one immutable snapshot of the agent's lookup state. All
// fields are written before the view is published and never after.
type agentView struct {
	shadowGen  uint64
	mainGen    uint64
	logicalGen uint64
	softGen    uint64
	shadow     ruleLookup
	main       ruleLookup
	// logical is non-nil only when cfg.TrackLogical is set.
	logical *classifier.RuleIndex
	// soft is the software-tier index (cached mode only); cache and hits
	// are set whenever hit tracking is on (Config.Cache or TrackHits).
	soft  ruleLookup
	cache *rulecache.Manager
	hits  map[classifier.RuleID]*rulecache.RuleStats
}

// lookup resolves a packet against the snapshot exactly as the carved
// pipeline would: shadow slice first, then main — and, in cached mode,
// finishes cover punts and hardware misses in the software tier.
func (v *agentView) lookup(dst, src uint32) (classifier.Rule, bool) {
	r, ok := v.shadow.Lookup(dst, src)
	if !ok {
		r, ok = v.main.Lookup(dst, src)
	}
	if v.soft == nil {
		if ok && v.hits != nil {
			if s := v.hits[r.ID]; s != nil {
				s.RecordHit(v.cache.EpochNow())
			}
		}
		return r, ok
	}
	if ok && r.ID < coverIDBase {
		// Off sample points (the common case) the hardware-tier hit touches
		// no shared state at all; sample points push the entry ID into the
		// manager's ring for the next tick's fold. Either way the stats map
		// stays off this path, keeping it within the <5% overhead budget.
		v.cache.SampleHW(dst, src, r.ID)
		return r, true
	}
	if sr, sok := v.soft.Lookup(dst, src); sok {
		if v.cache.SampleSoft(dst, src) {
			if s := v.hits[sr.ID]; s != nil {
				s.RecordHit(v.cache.EpochNow())
			}
		}
		return sr, true
	}
	v.cache.RecordMiss()
	return classifier.Rule{}, false
}

// viewStaleness tracks, with benign-racy atomics, how many consecutive
// read-path entries missed the snapshot while the table generations stayed
// put. Concurrent readers may slightly over- or under-count; the only
// consequence is a rebuild happening one read earlier or later.
type viewStaleness struct {
	shadowGen  atomic.Uint64
	mainGen    atomic.Uint64
	logicalGen atomic.Uint64
	softGen    atomic.Uint64
	streak     atomic.Uint32
}

// observe records one stale read at the given generations and returns the
// current streak length.
func (s *viewStaleness) observe(sg, mg, lg, fg uint64) int {
	if s.shadowGen.Load() != sg || s.mainGen.Load() != mg ||
		s.logicalGen.Load() != lg || s.softGen.Load() != fg {
		s.shadowGen.Store(sg)
		s.mainGen.Store(mg)
		s.logicalGen.Store(lg)
		s.softGen.Store(fg)
		s.streak.Store(1)
		return 1
	}
	return int(s.streak.Add(1))
}

// freshView returns a snapshot valid for the current table generations,
// rebuilding one if the hysteresis threshold has been reached, or nil when
// the caller should use the live (read-locked) tables instead. Must be
// called with at least the read lock held — the rebuild reads table
// contents, which only the lock makes stable.
func (a *Agent) freshView() *agentView {
	if a.cfg.LinearLookup {
		return nil
	}
	sg, mg, lg, fg := a.shadow.Gen(), a.main.Gen(), a.logicalGen.Load(), a.softGen()
	if v := a.view.Load(); v != nil && v.shadowGen == sg && v.mainGen == mg &&
		v.logicalGen == lg && v.softGen == fg {
		return v
	}
	if a.stale.observe(sg, mg, lg, fg) < viewRebuildAfter {
		return nil
	}
	v := a.buildView(sg, mg, lg, fg)
	a.view.Store(v)
	return v
}

// buildView constructs a fresh immutable snapshot for the given
// generations. Callers hold at least the read lock and publish the view
// themselves (write before Store, never after).
func (a *Agent) buildView(sg, mg, lg, fg uint64) *agentView {
	v := &agentView{
		shadowGen: sg,
		mainGen:   mg,
		softGen:   fg,
		shadow:    a.buildIndex(a.shadow.Rules()),
		main:      a.buildIndex(a.main.Rules()),
	}
	if a.cfg.TrackLogical {
		v.logicalGen = lg
		v.logical = classifier.NewRuleIndex(a.logicalFirstMatchOrder())
	}
	if a.cmgr != nil {
		v.cache = a.cmgr
		v.hits = a.buildHitMap()
	}
	if a.soft != nil {
		v.soft = a.buildIndex(a.soft.FirstMatchOrder())
	}
	return v
}

// buildIndex picks the snapshot index implementation: sharded when
// Config.LookupShards asks for parallel per-CPU shards, the plain
// RuleIndex otherwise.
func (a *Agent) buildIndex(rules []classifier.Rule) ruleLookup {
	if n := a.cfg.LookupShards; n > 1 {
		return classifier.NewShardedRuleIndex(rules, n)
	}
	return classifier.NewRuleIndex(rules)
}

// refreshViewLocked republishes the snapshot at the end of a batch — the
// amortized replacement for per-op rebuild hysteresis: one rebuild covers
// every op in the batch. It keeps the lazy economics of freshView: until a
// reader has forced a first snapshot into existence there is nothing to
// refresh (pure write workloads stay rebuild-free), and a view already at
// the current generations is left untouched. Requires a.mu held
// exclusively.
func (a *Agent) refreshViewLocked() {
	if a.cfg.LinearLookup {
		return
	}
	v := a.view.Load()
	if v == nil {
		return
	}
	sg, mg, lg, fg := a.shadow.Gen(), a.main.Gen(), a.logicalGen.Load(), a.softGen()
	if v.shadowGen == sg && v.mainGen == mg && v.logicalGen == lg && v.softGen == fg {
		return
	}
	a.view.Store(a.buildView(sg, mg, lg, fg))
}

// logicalFirstMatchOrder returns a copy of the reference monolithic table
// sorted into first-match order: priority descending, insertion order
// breaking ties (the stable sort preserves it).
func (a *Agent) logicalFirstMatchOrder() []classifier.Rule {
	rules := append([]classifier.Rule(nil), a.logical...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Priority > rules[j].Priority })
	return rules
}
