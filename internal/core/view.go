package core

import (
	"sort"
	"sync/atomic"

	"hermes/internal/classifier"
)

// This file implements the agent's lock-free read path: an immutable
// snapshot of the carved pipeline (shadow index, main index, and — when
// TrackLogical is on — the reference monolithic table) published behind an
// atomic pointer. Packet lookups validate the snapshot with three atomic
// generation loads and, when it is current, never touch the agent lock at
// all; control-plane writers invalidate it implicitly just by mutating the
// tables (every tcam.Table mutation bumps its generation counter, including
// out-of-band ones like a crash harness wiping the switch directly).
//
// Snapshots are rebuilt lazily with hysteresis: a reader only pays the
// O(occupancy) rebuild after viewRebuildAfter consecutive lookups observe
// the same (changed) generations — i.e. the tables have quiesced. Under a
// write-heavy phase readers instead fall back to a read-locked indexed
// lookup on the live tables, which is already off the O(n) scan path.

// viewRebuildAfter is the number of consecutive stale read-path entries (at
// stable generations) after which a reader rebuilds the snapshot. Low
// enough that a quiesced table becomes lock-free almost immediately, high
// enough that insert/lookup alternation never rebuilds per packet.
const viewRebuildAfter = 4

// ruleLookup is what a published snapshot needs from an index: RuleIndex
// satisfies it directly, ShardedRuleIndex through its combining layer
// (Config.LookupShards picks which one freshView builds).
type ruleLookup interface {
	Lookup(dst, src uint32) (classifier.Rule, bool)
}

// agentView is one immutable snapshot of the agent's lookup state. All
// fields are written before the view is published and never after.
type agentView struct {
	shadowGen  uint64
	mainGen    uint64
	logicalGen uint64
	shadow     ruleLookup
	main       ruleLookup
	// logical is non-nil only when cfg.TrackLogical is set.
	logical *classifier.RuleIndex
}

// lookup resolves a packet against the snapshot exactly as the carved
// pipeline would: shadow slice first, then main.
func (v *agentView) lookup(dst, src uint32) (classifier.Rule, bool) {
	if r, ok := v.shadow.Lookup(dst, src); ok {
		return r, true
	}
	return v.main.Lookup(dst, src)
}

// viewStaleness tracks, with benign-racy atomics, how many consecutive
// read-path entries missed the snapshot while the table generations stayed
// put. Concurrent readers may slightly over- or under-count; the only
// consequence is a rebuild happening one read earlier or later.
type viewStaleness struct {
	shadowGen  atomic.Uint64
	mainGen    atomic.Uint64
	logicalGen atomic.Uint64
	streak     atomic.Uint32
}

// observe records one stale read at the given generations and returns the
// current streak length.
func (s *viewStaleness) observe(sg, mg, lg uint64) int {
	if s.shadowGen.Load() != sg || s.mainGen.Load() != mg || s.logicalGen.Load() != lg {
		s.shadowGen.Store(sg)
		s.mainGen.Store(mg)
		s.logicalGen.Store(lg)
		s.streak.Store(1)
		return 1
	}
	return int(s.streak.Add(1))
}

// freshView returns a snapshot valid for the current table generations,
// rebuilding one if the hysteresis threshold has been reached, or nil when
// the caller should use the live (read-locked) tables instead. Must be
// called with at least the read lock held — the rebuild reads table
// contents, which only the lock makes stable.
func (a *Agent) freshView() *agentView {
	if a.cfg.LinearLookup {
		return nil
	}
	sg, mg, lg := a.shadow.Gen(), a.main.Gen(), a.logicalGen.Load()
	if v := a.view.Load(); v != nil && v.shadowGen == sg && v.mainGen == mg && v.logicalGen == lg {
		return v
	}
	if a.stale.observe(sg, mg, lg) < viewRebuildAfter {
		return nil
	}
	v := a.buildView(sg, mg, lg)
	a.view.Store(v)
	return v
}

// buildView constructs a fresh immutable snapshot for the given
// generations. Callers hold at least the read lock and publish the view
// themselves (write before Store, never after).
func (a *Agent) buildView(sg, mg, lg uint64) *agentView {
	v := &agentView{
		shadowGen: sg,
		mainGen:   mg,
		shadow:    a.buildIndex(a.shadow.Rules()),
		main:      a.buildIndex(a.main.Rules()),
	}
	if a.cfg.TrackLogical {
		v.logicalGen = lg
		v.logical = classifier.NewRuleIndex(a.logicalFirstMatchOrder())
	}
	return v
}

// buildIndex picks the snapshot index implementation: sharded when
// Config.LookupShards asks for parallel per-CPU shards, the plain
// RuleIndex otherwise.
func (a *Agent) buildIndex(rules []classifier.Rule) ruleLookup {
	if n := a.cfg.LookupShards; n > 1 {
		return classifier.NewShardedRuleIndex(rules, n)
	}
	return classifier.NewRuleIndex(rules)
}

// refreshViewLocked republishes the snapshot at the end of a batch — the
// amortized replacement for per-op rebuild hysteresis: one rebuild covers
// every op in the batch. It keeps the lazy economics of freshView: until a
// reader has forced a first snapshot into existence there is nothing to
// refresh (pure write workloads stay rebuild-free), and a view already at
// the current generations is left untouched. Requires a.mu held
// exclusively.
func (a *Agent) refreshViewLocked() {
	if a.cfg.LinearLookup {
		return
	}
	v := a.view.Load()
	if v == nil {
		return
	}
	sg, mg, lg := a.shadow.Gen(), a.main.Gen(), a.logicalGen.Load()
	if v.shadowGen == sg && v.mainGen == mg && v.logicalGen == lg {
		return
	}
	a.view.Store(a.buildView(sg, mg, lg))
}

// logicalFirstMatchOrder returns a copy of the reference monolithic table
// sorted into first-match order: priority descending, insertion order
// breaking ties (the stable sort preserves it).
func (a *Agent) logicalFirstMatchOrder() []classifier.Rule {
	rules := append([]classifier.Rule(nil), a.logical...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Priority > rules[j].Priority })
	return rules
}
