package core

import (
	"sort"
	"sync/atomic"

	"hermes/internal/classifier"
)

// This file implements the agent's lock-free read path: an immutable
// snapshot of the carved pipeline (shadow index, main index, and — when
// TrackLogical is on — the reference monolithic table) published behind an
// atomic pointer. Packet lookups validate the snapshot with three atomic
// generation loads and, when it is current, never touch the agent lock at
// all; control-plane writers invalidate it implicitly just by mutating the
// tables (every tcam.Table mutation bumps its generation counter, including
// out-of-band ones like a crash harness wiping the switch directly).
//
// Snapshots are rebuilt lazily with hysteresis: a reader only pays the
// O(occupancy) rebuild after viewRebuildAfter consecutive lookups observe
// the same (changed) generations — i.e. the tables have quiesced. Under a
// write-heavy phase readers instead fall back to a read-locked indexed
// lookup on the live tables, which is already off the O(n) scan path.

// viewRebuildAfter is the number of consecutive stale read-path entries (at
// stable generations) after which a reader rebuilds the snapshot. Low
// enough that a quiesced table becomes lock-free almost immediately, high
// enough that insert/lookup alternation never rebuilds per packet.
const viewRebuildAfter = 4

// agentView is one immutable snapshot of the agent's lookup state. All
// fields are written before the view is published and never after.
type agentView struct {
	shadowGen  uint64
	mainGen    uint64
	logicalGen uint64
	shadow     *classifier.RuleIndex
	main       *classifier.RuleIndex
	// logical is non-nil only when cfg.TrackLogical is set.
	logical *classifier.RuleIndex
}

// lookup resolves a packet against the snapshot exactly as the carved
// pipeline would: shadow slice first, then main.
func (v *agentView) lookup(dst, src uint32) (classifier.Rule, bool) {
	if r, ok := v.shadow.Lookup(dst, src); ok {
		return r, true
	}
	return v.main.Lookup(dst, src)
}

// viewStaleness tracks, with benign-racy atomics, how many consecutive
// read-path entries missed the snapshot while the table generations stayed
// put. Concurrent readers may slightly over- or under-count; the only
// consequence is a rebuild happening one read earlier or later.
type viewStaleness struct {
	shadowGen  atomic.Uint64
	mainGen    atomic.Uint64
	logicalGen atomic.Uint64
	streak     atomic.Uint32
}

// observe records one stale read at the given generations and returns the
// current streak length.
func (s *viewStaleness) observe(sg, mg, lg uint64) int {
	if s.shadowGen.Load() != sg || s.mainGen.Load() != mg || s.logicalGen.Load() != lg {
		s.shadowGen.Store(sg)
		s.mainGen.Store(mg)
		s.logicalGen.Store(lg)
		s.streak.Store(1)
		return 1
	}
	return int(s.streak.Add(1))
}

// freshView returns a snapshot valid for the current table generations,
// rebuilding one if the hysteresis threshold has been reached, or nil when
// the caller should use the live (read-locked) tables instead. Must be
// called with at least the read lock held — the rebuild reads table
// contents, which only the lock makes stable.
func (a *Agent) freshView() *agentView {
	if a.cfg.LinearLookup {
		return nil
	}
	sg, mg, lg := a.shadow.Gen(), a.main.Gen(), a.logicalGen.Load()
	if v := a.view.Load(); v != nil && v.shadowGen == sg && v.mainGen == mg && v.logicalGen == lg {
		return v
	}
	if a.stale.observe(sg, mg, lg) < viewRebuildAfter {
		return nil
	}
	v := &agentView{
		shadowGen: sg,
		mainGen:   mg,
		shadow:    classifier.NewRuleIndex(a.shadow.Rules()),
		main:      classifier.NewRuleIndex(a.main.Rules()),
	}
	if a.cfg.TrackLogical {
		v.logicalGen = lg
		v.logical = classifier.NewRuleIndex(a.logicalFirstMatchOrder())
	}
	a.view.Store(v)
	return v
}

// logicalFirstMatchOrder returns a copy of the reference monolithic table
// sorted into first-match order: priority descending, insertion order
// breaking ties (the stable sort preserves it).
func (a *Agent) logicalFirstMatchOrder() []classifier.Rule {
	rules := append([]classifier.Rule(nil), a.logical...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Priority > rules[j].Priority })
	return rules
}
