package core

import "hermes/internal/predict"

// Self-tuning slack — the future-work item §8.6 closes with ("we will
// explore learning techniques to enable Hermes to automatically tune
// itself"). Instead of a fixed slack factor chosen per deployment, the
// agent adapts it from observed outcomes with a multiplicative-increase /
// multiplicative-decrease controller:
//
//   - any guarantee violation or shadow-full diversion since the last tick
//     raises the slack sharply (prediction was too timid);
//   - a long streak of clean ticks decays it slowly (reclaiming the
//     migration bandwidth excess slack wastes).
//
// The controller is deliberately simple — the same class of mechanism as
// TCP's AIMD — so its behaviour is analyzable and its state is one float.

const (
	autoSlackMin      = 0.10 // never fully trust the predictor
	autoSlackMax      = 4.00 // 400%: beyond this, prediction is useless anyway
	autoSlackIncrease = 1.5  // multiplicative increase on violation
	autoSlackDecay    = 0.98 // per-clean-streak decay
	autoSlackStreak   = 20   // clean ticks before a decay step
)

// autoTuner adapts the slack factor from violation feedback.
type autoTuner struct {
	factor      float64
	cleanTicks  int
	lastBadness int // violations + shadow-full diversions at last tick
}

func newAutoTuner(initial float64) *autoTuner {
	if initial <= 0 {
		initial = 1.0
	}
	return &autoTuner{factor: initial}
}

// observe updates the controller with the agent's cumulative badness
// counter and returns the slack factor to use for the next interval.
func (t *autoTuner) observe(badness int) float64 {
	if badness > t.lastBadness {
		t.factor *= autoSlackIncrease
		if t.factor > autoSlackMax {
			t.factor = autoSlackMax
		}
		t.cleanTicks = 0
	} else {
		t.cleanTicks++
		if t.cleanTicks >= autoSlackStreak {
			t.factor *= autoSlackDecay
			if t.factor < autoSlackMin {
				t.factor = autoSlackMin
			}
			t.cleanTicks = 0
		}
	}
	t.lastBadness = badness
	return t.factor
}

// CurrentSlack reports the live slack factor: the configured corrector's
// static factor, or the auto-tuner's when cfg.AutoTuneSlack is set.
func (a *Agent) CurrentSlack() float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.tuner != nil {
		return a.tuner.factor
	}
	if s, ok := a.cfg.Corrector.(predict.Slack); ok {
		return s.Factor
	}
	return 0
}
