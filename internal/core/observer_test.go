package core

// Observability tests: the flight recorder must capture on guarantee
// violations and reconcile repairs, and — because obs never reads a clock —
// two chaos runs with the same seed must record byte-identical event
// sequences.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// chaosTrace replays a seeded chaos schedule (inserts, deletes, migrations,
// crash/restarts, truncations, migration interrupts) against an observed
// agent and returns its tracer.
func chaosTrace(t *testing.T, seed int64) *obs.Tracer {
	t.Helper()
	o := NewObserver(nil, 8192)
	r := rand.New(rand.NewSource(seed))
	a := newTestAgent(t, Config{DisableRateLimit: true, Observer: o})
	a.SetMigrationInterrupt(func(_ MigrationStep, _ time.Duration) bool {
		return r.Intn(8) == 0
	})
	now := time.Duration(0)
	var live []classifier.RuleID
	nextID := classifier.RuleID(1)
	for op := 0; op < 120; op++ {
		now += time.Duration(r.Intn(8)+1) * time.Millisecond
		switch x := r.Intn(12); {
		case x < 6:
			rule := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(r.Uint32()&0xFFFF), uint8(16+r.Intn(17)))),
				Priority: int32(r.Intn(50)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}
			if _, err := a.Insert(now, rule); err != nil {
				t.Fatalf("seed %d op %d insert: %v", seed, op, err)
			}
			live = append(live, nextID)
			nextID++
		case x < 8 && len(live) > 0:
			i := r.Intn(len(live))
			if _, err := a.Delete(now, live[i]); err != nil {
				t.Fatalf("seed %d op %d delete: %v", seed, op, err)
			}
			live = append(live[:i], live[i+1:]...)
		case x == 8:
			if end := a.ForceMigration(now); end != 0 && r.Intn(2) == 0 {
				now = end
				a.Advance(now)
			}
		case x == 9:
			a.CrashRestart(now)
		case x == 10:
			a.shadow.Truncate(r.Intn(4))
			a.MarkDivergent()
		default:
			if end := a.Tick(now); end != 0 {
				now = end
				a.Advance(now)
			}
		}
		if a.NeedsReconcile() {
			a.Reconcile(now)
		}
	}
	return o.Tracer
}

// TestChaosTraceDeterminism runs the same seeded chaos schedule twice and
// requires identical flight-recorder state: same event sequence, same
// capture reasons, same captured windows. This is the paper-level claim
// that observation never perturbs nor depends on real time.
func TestChaosTraceDeterminism(t *testing.T) {
	sawEvents, sawCaptures := false, false
	for seed := int64(0); seed < 10; seed++ {
		ta := chaosTrace(t, seed)
		tb := chaosTrace(t, seed)

		ea, eb := ta.Events(), tb.Events()
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("seed %d: event sequences diverge (%d vs %d events)", seed, len(ea), len(eb))
		}
		if len(ea) > 0 {
			sawEvents = true
		}

		ca, da := ta.Captures()
		cb, db := tb.Captures()
		if da != db || len(ca) != len(cb) {
			t.Fatalf("seed %d: capture counts diverge: %d(+%d dropped) vs %d(+%d dropped)",
				seed, len(ca), da, len(cb), db)
		}
		for i := range ca {
			if ca[i].Reason != cb[i].Reason || ca[i].At != cb[i].At {
				t.Fatalf("seed %d capture %d: %q@%v vs %q@%v",
					seed, i, ca[i].Reason, ca[i].At, cb[i].Reason, cb[i].At)
			}
			if !reflect.DeepEqual(ca[i].Events, cb[i].Events) {
				t.Fatalf("seed %d capture %d: event windows diverge", seed, i)
			}
		}
		if len(ca) > 0 {
			sawCaptures = true
		}
	}
	if !sawEvents {
		t.Fatal("no seed produced any trace events; the test is vacuous")
	}
	if !sawCaptures {
		t.Fatal("no seed produced a flight-recorder capture; the test is vacuous")
	}
}

// TestFlightRecorderCapturesReconcileRepair drives the crash → reconcile
// path and requires the flight recorder to have dumped a window whose
// reason names the repair and whose events include the crash itself.
func TestFlightRecorderCapturesReconcileRepair(t *testing.T) {
	o := NewObserver(nil, 256)
	cfg := Config{
		Observer:                 o,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	}
	b := newTestAgent(t, cfg)
	now := time.Duration(0)
	mustInsert(t, b, now, dstRule(1, "192.168.1.0/26", 50, 1))
	if end := b.ForceMigration(now + time.Millisecond); end != 0 {
		now = end
		b.Advance(now)
	}
	now += time.Millisecond
	mustInsert(t, b, now, dstRule(2, "192.168.1.0/24", 5, 2))
	now += time.Millisecond

	b.CrashRestart(now)
	now += time.Millisecond
	rep := b.Reconcile(now)
	if rep.Clean() {
		t.Fatalf("crash reconcile found nothing to repair: %v", rep)
	}

	caps, dropped := o.Tracer.Captures()
	if len(caps) == 0 {
		t.Fatal("no flight-recorder capture after reconcile repair")
	}
	if dropped != 0 {
		t.Fatalf("captures dropped unexpectedly: %d", dropped)
	}
	last := caps[len(caps)-1]
	if !strings.Contains(last.Reason, "reconcile repair") {
		t.Fatalf("capture reason = %q, want a reconcile repair", last.Reason)
	}
	var sawCrash, sawReconcile bool
	for _, ev := range last.Events {
		switch ev.Kind {
		case obs.EvCrash:
			sawCrash = true
		case obs.EvReconcile:
			sawReconcile = true
		}
	}
	if !sawCrash || !sawReconcile {
		t.Fatalf("captured window missing crash/reconcile events (crash=%v reconcile=%v):\n%v",
			sawCrash, sawReconcile, last.Events)
	}
}
