package core

import "time"

// Metrics are the agent's cumulative counters and latency samples. Latency
// samples are stored in milliseconds to match the units of the paper's
// figures.
type Metrics struct {
	// Inserts counts every controller-issued insertion.
	Inserts int
	// ShadowInserts counts insertions that took the guaranteed path.
	ShadowInserts int
	// MainInserts counts insertions that took the unguaranteed main path.
	MainInserts int
	// Bypasses counts §4.2 lowest-priority appends.
	Bypasses int
	// Redundant counts rules subsumed by the main table (Fig. 5a).
	Redundant int
	// RateLimited counts insertions diverted by the token bucket.
	RateLimited int
	// Oversized counts insertions diverted for exceeding MaxPartitions.
	Oversized int
	// ShadowFull counts insertions diverted because the shadow was full.
	ShadowFull int
	// Deletes and Modifies count the other flow-mod kinds.
	Deletes, Modifies int

	// PartitionsInstalled counts physical shadow entries created.
	PartitionsInstalled int
	// RulesCut counts rules Algorithm 1 actually fragmented.
	RulesCut int
	// Repartitions counts shadow rules re-cut after main-table changes.
	Repartitions int

	// Violations counts guaranteed insertions that exceeded the bound.
	Violations int

	// Migrations counts Rule Manager migrations; MigratedRules the rules
	// they moved; MigrationBusy the total background-copy time.
	Migrations    int
	MigratedRules int
	MigrationBusy time.Duration

	// ExposedRuleSeconds accumulates rule·seconds during which the naive
	// migration ablation left rules installed in neither table.
	ExposedRuleSeconds float64

	// MigrationAborts counts migrations cancelled before any physical step
	// (AbortMigration, or a fault at the copy/optimize steps);
	// MigrationInterrupts counts migrations cut off mid-apply (a fault at
	// the insert/empty steps), which leave partial state for Reconcile.
	MigrationAborts     int
	MigrationInterrupts int

	// SwitchRestarts counts modeled switch crash/power-cycles.
	SwitchRestarts int

	// Reconciles counts Reconcile passes; ReconcileStale the stale or
	// orphaned physical entries they deleted; ReconcileRepaired the rules
	// whose physical realization they rebuilt.
	Reconciles        int
	ReconcileStale    int
	ReconcileRepaired int

	// GuaranteedLatenciesMS are per-insertion latencies (ms) on the
	// guaranteed path; AllLatenciesMS includes the unguaranteed paths.
	GuaranteedLatenciesMS []float64
	AllLatenciesMS        []float64
}

// Snapshot returns a deep copy of the metrics: counters by value and the
// latency sample slices freshly allocated. Consumers that carry metrics
// across a concurrency boundary (the fleet aggregator, wire stats replies)
// must use it so they never alias the agent's live slices, which the agent
// keeps appending to.
func (m Metrics) Snapshot() Metrics {
	cp := m // counters and scalars copy by value
	cp.GuaranteedLatenciesMS = append([]float64(nil), m.GuaranteedLatenciesMS...)
	cp.AllLatenciesMS = append([]float64(nil), m.AllLatenciesMS...)
	return cp
}

// Clone is an alias for Snapshot.
func (m Metrics) Clone() Metrics { return m.Snapshot() }

// ViolationRate returns violations over guaranteed insertions.
func (m Metrics) ViolationRate() float64 {
	n := len(m.GuaranteedLatenciesMS)
	if n == 0 {
		return 0
	}
	return float64(m.Violations) / float64(n)
}

// MigrationsPerSecond normalizes the migration count over a run duration.
func (m Metrics) MigrationsPerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.Migrations) / elapsed.Seconds()
}
