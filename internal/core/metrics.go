package core

import (
	"time"

	"hermes/internal/obs"
)

// Metrics are the agent's cumulative counters and latency distributions.
// Latencies are held in fixed-footprint obs histograms (nanosecond units)
// instead of the old append-forever sample slices, so a long-running agent's
// metric state is bounded regardless of how many flow-mods it serves.
type Metrics struct {
	// Inserts counts every controller-issued insertion.
	Inserts int
	// ShadowInserts counts insertions that took the guaranteed path.
	ShadowInserts int
	// MainInserts counts insertions that took the unguaranteed main path.
	MainInserts int
	// Bypasses counts §4.2 lowest-priority appends.
	Bypasses int
	// Redundant counts rules subsumed by the main table (Fig. 5a).
	Redundant int
	// RateLimited counts insertions diverted by the token bucket.
	RateLimited int
	// Oversized counts insertions diverted for exceeding MaxPartitions.
	Oversized int
	// ShadowFull counts insertions diverted because the shadow was full.
	ShadowFull int
	// Deletes and Modifies count the other flow-mod kinds.
	Deletes, Modifies int

	// PartitionsInstalled counts physical shadow entries created.
	PartitionsInstalled int
	// RulesCut counts rules Algorithm 1 actually fragmented.
	RulesCut int
	// Repartitions counts shadow rules re-cut after main-table changes.
	Repartitions int

	// Violations counts guaranteed insertions that exceeded the bound.
	Violations int

	// Migrations counts Rule Manager migrations; MigratedRules the rules
	// they moved; MigrationBusy the total background-copy time.
	Migrations    int
	MigratedRules int
	MigrationBusy time.Duration

	// ExposedRuleSeconds accumulates rule·seconds during which the naive
	// migration ablation left rules installed in neither table.
	ExposedRuleSeconds float64

	// MigrationAborts counts migrations cancelled before any physical step
	// (AbortMigration, or a fault at the copy/optimize steps);
	// MigrationInterrupts counts migrations cut off mid-apply (a fault at
	// the insert/empty steps), which leave partial state for Reconcile.
	MigrationAborts     int
	MigrationInterrupts int

	// SwitchRestarts counts modeled switch crash/power-cycles.
	SwitchRestarts int

	// Reconciles counts Reconcile passes; ReconcileStale the stale or
	// orphaned physical entries they deleted; ReconcileRepaired the rules
	// whose physical realization they rebuilt.
	Reconciles        int
	ReconcileStale    int
	ReconcileRepaired int

	// GuaranteedLatency holds per-insertion latencies (ns) on the
	// guaranteed path; AllLatency includes the unguaranteed paths too.
	// The histograms are shared (by pointer) between copies of a Metrics
	// value: Agent.Metrics() hands out a cheap counter copy whose
	// histograms alias the live ones, Snapshot() deep-clones them.
	GuaranteedLatency *obs.Histogram
	AllLatency        *obs.Histogram
}

// newMetrics returns a Metrics with live histograms attached.
func newMetrics() Metrics {
	return Metrics{
		GuaranteedLatency: obs.NewHistogram(),
		AllLatency:        obs.NewHistogram(),
	}
}

// observeLatency records one operation latency, optionally under the
// guarantee. Both histograms are fixed-footprint and lock-free.
func (m *Metrics) observeLatency(lat time.Duration, guaranteed bool) {
	if m.AllLatency != nil {
		m.AllLatency.RecordDuration(lat)
	}
	if guaranteed && m.GuaranteedLatency != nil {
		m.GuaranteedLatency.RecordDuration(lat)
	}
}

// GuaranteedCount returns the number of guaranteed-path latency samples —
// the denominator of ViolationRate, previously len(GuaranteedLatenciesMS).
func (m Metrics) GuaranteedCount() int {
	if m.GuaranteedLatency == nil {
		return 0
	}
	return int(m.GuaranteedLatency.Count())
}

// GuaranteedQuantileMS returns the q-th quantile of guaranteed-path
// insertion latency in milliseconds (the unit of the paper's figures).
func (m Metrics) GuaranteedQuantileMS(q float64) float64 {
	if m.GuaranteedLatency == nil {
		return 0
	}
	return m.GuaranteedLatency.Quantile(q) / 1e6
}

// AllQuantileMS returns the q-th quantile of all-path latency in ms.
func (m Metrics) AllQuantileMS(q float64) float64 {
	if m.AllLatency == nil {
		return 0
	}
	return m.AllLatency.Quantile(q) / 1e6
}

// MaxGuaranteedMS returns the worst guaranteed-path latency seen, in ms.
func (m Metrics) MaxGuaranteedMS() float64 {
	if m.GuaranteedLatency == nil {
		return 0
	}
	return float64(m.GuaranteedLatency.Max()) / 1e6
}

// Snapshot returns a deep copy of the metrics: counters by value and the
// latency histograms freshly cloned. Consumers that carry metrics across a
// concurrency boundary (the fleet aggregator, wire stats replies) must use
// it so they never alias histograms the agent keeps recording into.
func (m Metrics) Snapshot() Metrics {
	cp := m // counters and scalars copy by value
	if m.GuaranteedLatency != nil {
		cp.GuaranteedLatency = m.GuaranteedLatency.Clone()
	}
	if m.AllLatency != nil {
		cp.AllLatency = m.AllLatency.Clone()
	}
	return cp
}

// Clone is an alias for Snapshot.
func (m Metrics) Clone() Metrics { return m.Snapshot() }

// ViolationRate returns violations over guaranteed insertions.
func (m Metrics) ViolationRate() float64 {
	n := m.GuaranteedCount()
	if n == 0 {
		return 0
	}
	return float64(m.Violations) / float64(n)
}

// MigrationsPerSecond normalizes the migration count over a run duration.
func (m Metrics) MigrationsPerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.Migrations) / elapsed.Seconds()
}
