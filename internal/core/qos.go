package core

import (
	"fmt"
	"time"

	"hermes/internal/tcam"
)

// This file implements the operator-facing abstractions of §7:
//
//	int    CreateTCAMQoS(SwitchID, perf-guarantee, match-predicate)
//	bool   DeleteQoS(ShadowID)
//	bool   ModQoSConfig(ShadowID, perf-guarantee)
//	bool   ModQoSMatch(ShadowID, match-predicate)
//	double QoSOverheads(SwitchID, perf-guarantee, match-predicate)
//
// A Registry plays the role of the Hermes control daemon: it owns the
// per-switch agents, hands out ShadowIDs (the paper's file descriptors),
// and lets operators interrogate the performance/overhead trade-off before
// committing TCAM space.

// ShadowID is the descriptor CreateTCAMQoS returns; it names one shadow
// configuration for later modification or deletion.
type ShadowID int

// QoSInfo summarizes one guarantee's configuration and cost.
type QoSInfo struct {
	ID         ShadowID
	SwitchName string
	Guarantee  time.Duration
	// MaxBurstRate is the admissible insertion rate of Equation 2,
	// returned to the controller for admission-control coordination.
	MaxBurstRate float64
	// ShadowEntries is the carved shadow size; OverheadFraction the TCAM
	// share it consumes.
	ShadowEntries    int
	OverheadFraction float64
}

// Registry manages Hermes agents across a fleet of switches.
type Registry struct {
	agents map[ShadowID]*Agent
	info   map[ShadowID]QoSInfo
	bySw   map[string]ShadowID
	nextID ShadowID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		agents: make(map[ShadowID]*Agent),
		info:   make(map[ShadowID]QoSInfo),
		bySw:   make(map[string]ShadowID),
	}
}

// CreateTCAMQoS configures a performance guarantee on the switch and
// returns its descriptor plus the configuration summary (including the max
// burst rate computed from Equation 2). One guarantee per switch: creating
// a second one for the same switch fails, mirroring the single
// shadow-slice-per-table hardware model of §6.
func (r *Registry) CreateTCAMQoS(sw *tcam.Switch, guarantee time.Duration, pred Predicate) (ShadowID, QoSInfo, error) {
	return r.CreateTCAMQoSWithConfig(sw, Config{Guarantee: guarantee, Predicate: pred})
}

// CreateTCAMQoSWithConfig is CreateTCAMQoS with full agent configuration.
func (r *Registry) CreateTCAMQoSWithConfig(sw *tcam.Switch, cfg Config) (ShadowID, QoSInfo, error) {
	if _, dup := r.bySw[sw.Name()]; dup {
		return 0, QoSInfo{}, fmt.Errorf("core: switch %s already has a QoS configuration", sw.Name())
	}
	agent, err := New(sw, cfg)
	if err != nil {
		return 0, QoSInfo{}, err
	}
	r.nextID++
	id := r.nextID
	info := QoSInfo{
		ID:               id,
		SwitchName:       sw.Name(),
		Guarantee:        cfg.Guarantee,
		MaxBurstRate:     agent.MaxRate(),
		ShadowEntries:    agent.ShadowSize(),
		OverheadFraction: agent.OverheadFraction(),
	}
	r.agents[id] = agent
	r.info[id] = info
	r.bySw[sw.Name()] = id
	return id, info, nil
}

// Agent returns the live agent behind a descriptor.
func (r *Registry) Agent(id ShadowID) (*Agent, bool) {
	a, ok := r.agents[id]
	return a, ok
}

// Info returns the configuration summary behind a descriptor.
func (r *Registry) Info(id ShadowID) (QoSInfo, bool) {
	i, ok := r.info[id]
	return i, ok
}

// DeleteQoS tears down a guarantee: the switch's TCAM reverts to a single
// monolithic table (installed rules are discarded, as slice reconfiguration
// does on hardware — operators drain traffic first). Reports success.
func (r *Registry) DeleteQoS(id ShadowID) bool {
	a, ok := r.agents[id]
	if !ok {
		return false
	}
	a.sw.Uncarve()
	delete(r.bySw, a.sw.Name())
	delete(r.agents, id)
	delete(r.info, id)
	return true
}

// ModQoSConfig re-sizes an existing guarantee. The shadow slice is
// re-carved for the new bound; rules are discarded as in DeleteQoS.
// Reports success.
func (r *Registry) ModQoSConfig(id ShadowID, guarantee time.Duration) bool {
	a, ok := r.agents[id]
	if !ok {
		return false
	}
	sw := a.sw
	cfg := a.cfg
	cfg.Guarantee = guarantee
	cfg.Predictor.Reset()
	sw.Uncarve()
	replacement, err := New(sw, cfg)
	if err != nil {
		// Restore the previous configuration on failure.
		sw.Uncarve()
		if prev, err2 := New(sw, a.cfg); err2 == nil {
			r.agents[id] = prev
		}
		return false
	}
	r.agents[id] = replacement
	info := r.info[id]
	info.Guarantee = guarantee
	info.MaxBurstRate = replacement.MaxRate()
	info.ShadowEntries = replacement.ShadowSize()
	info.OverheadFraction = replacement.OverheadFraction()
	r.info[id] = info
	return true
}

// ModQoSMatch swaps the guarantee predicate in place. Reports success.
func (r *Registry) ModQoSMatch(id ShadowID, pred Predicate) bool {
	a, ok := r.agents[id]
	if !ok {
		return false
	}
	a.SetPredicate(pred)
	return true
}

// QoSOverheads previews the TCAM fraction a guarantee would consume on a
// switch with the given profile, without configuring anything — the
// operator-facing trade-off explorer of §7 and the generator of Figure 14.
func QoSOverheads(profile *tcam.Profile, guarantee time.Duration) float64 {
	size := profile.MaxShiftsWithin(guarantee)
	if max := profile.Capacity / 2; size > max {
		size = max
	}
	return float64(size) / float64(profile.Capacity)
}
