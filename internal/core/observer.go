package core

import (
	"fmt"
	"time"

	"hermes/internal/obs"
)

// Observer wires one agent into the obs subsystem: per-class latency
// histograms, migration-step accounting, and the flow-mod lifecycle tracer
// whose flight recorder snapshots on guarantee violations and
// reconcile repairs. All fields are optional; a nil *Observer (the default)
// costs the agent one pointer comparison per call site, so instrumentation
// is always compiled in and enabled by configuration.
//
// Timestamps passed to the tracer are the agent's virtual `now`, so under
// internal/sim or a seeded faultinject schedule the recorded event sequence
// is deterministic.
type Observer struct {
	// Tracer receives one event per control-plane action. Optional.
	Tracer *obs.Tracer

	// Per-class operation latency (ns): the Gate Keeper's four insertion
	// outcomes plus deletes and modifies. Optional, each independently.
	ShadowNS *obs.Histogram // guaranteed shadow-path insertions
	BypassNS *obs.Histogram // §4.2 lowest-priority bypasses
	MainNS   *obs.Histogram // unguaranteed main-path insertions
	DeleteNS *obs.Histogram
	ModifyNS *obs.Histogram

	// ViolationOverrunNS records, for each guarantee violation, how far
	// past the deadline the insertion completed.
	ViolationOverrunNS *obs.Histogram

	// MigrationNS records each migration's background-copy duration;
	// MigrationRules the rules it moved. Together with the per-step trace
	// events they give the Fig.-7 step timings.
	MigrationNS    *obs.Histogram
	MigrationRules *obs.Histogram

	// ShadowShifts/MainShifts, when set, are attached to the carved TCAM
	// slices and record the entry-shift count of every physical insert —
	// the paper's core cost model (latency ∝ shifts).
	ShadowShifts *obs.Histogram
	MainShifts   *obs.Histogram
}

// NewObserver builds a fully populated Observer whose histograms are
// registered on reg under the hermes_agent_* namespace and whose tracer
// keeps the last ringSize events. reg may be nil (metrics stay live but
// unexposed); the tracer is always created.
func NewObserver(reg *obs.Registry, ringSize int) *Observer {
	lat := func(class string) *obs.Histogram {
		return reg.HistogramL("hermes_agent_op_latency_ns",
			obs.Labels("class", class), "ns", "per-operation control-plane latency by class")
	}
	return &Observer{
		Tracer:   obs.NewTracer(ringSize, 8),
		ShadowNS: lat("shadow"),
		BypassNS: lat("bypass"),
		MainNS:   lat("main"),
		DeleteNS: lat("delete"),
		ModifyNS: lat("modify"),
		ViolationOverrunNS: reg.Histogram("hermes_agent_violation_overrun_ns", "ns",
			"how far past the guarantee violating insertions completed"),
		MigrationNS: reg.Histogram("hermes_agent_migration_ns", "ns",
			"background-copy duration per Fig.-7 migration"),
		MigrationRules: reg.Histogram("hermes_agent_migration_rules", "",
			"rules moved per migration"),
		ShadowShifts: reg.HistogramL("hermes_tcam_shifts",
			obs.Labels("table", "shadow"), "", "entry shifts per physical TCAM write"),
		MainShifts: reg.HistogramL("hermes_tcam_shifts",
			obs.Labels("table", "main"), "", "entry shifts per physical TCAM write"),
	}
}

// event forwards one lifecycle event to the tracer. Nil-safe.
func (o *Observer) event(at time.Duration, kind obs.EventKind, step MigrationStep, rule uint64, a, b uint64) {
	if o == nil {
		return
	}
	o.Tracer.Record(at, kind, uint8(step), rule, a, b)
}

// latency records d into h when both the observer and the histogram exist.
// Callers must not dereference o to produce h (o may be nil); use the
// per-class helpers below instead.
func (o *Observer) latency(h *obs.Histogram, d time.Duration) {
	if o == nil || h == nil {
		return
	}
	h.RecordDuration(d)
}

// Per-class nil-safe latency recorders: each guards the observer pointer
// before touching its histogram field.
func (o *Observer) recordShadow(d time.Duration) {
	if o != nil {
		o.latency(o.ShadowNS, d)
	}
}
func (o *Observer) recordBypass(d time.Duration) {
	if o != nil {
		o.latency(o.BypassNS, d)
	}
}
func (o *Observer) recordMain(d time.Duration) {
	if o != nil {
		o.latency(o.MainNS, d)
	}
}
func (o *Observer) recordDelete(d time.Duration) {
	if o != nil {
		o.latency(o.DeleteNS, d)
	}
}
func (o *Observer) recordModify(d time.Duration) {
	if o != nil {
		o.latency(o.ModifyNS, d)
	}
}
func (o *Observer) recordOverrun(d time.Duration) {
	if o != nil {
		o.latency(o.ViolationOverrunNS, d)
	}
}
func (o *Observer) recordMigration(cost time.Duration, rules int) {
	if o == nil {
		return
	}
	o.latency(o.MigrationNS, cost)
	if o.MigrationRules != nil {
		o.MigrationRules.Record(uint64(rules))
	}
}

// capture snapshots the flight recorder. Nil-safe; allocation happens only
// when a tracer is attached, and triggers are rare by design.
func (o *Observer) capture(at time.Duration, format string, args ...interface{}) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.CaptureNow(at, fmt.Sprintf(format, args...))
}
