package core

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

func twoTablePipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline("sw1", tcam.Pica8P3290, []TableSpec{
		{
			Name: "acl", Capacity: 1024, Miss: MissGotoNext,
			Config: Config{Guarantee: time.Millisecond, DisableRateLimit: true},
		},
		{
			Name: "forwarding", Capacity: 4096, Miss: MissDrop,
			Config: Config{Guarantee: 10 * time.Millisecond, DisableRateLimit: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineConstruction(t *testing.T) {
	p := twoTablePipeline(t)
	if len(p.Tables()) != 2 {
		t.Fatalf("tables = %d", len(p.Tables()))
	}
	acl, ok := p.Table("acl")
	if !ok || !acl.Managed() {
		t.Fatal("acl table missing or unmanaged")
	}
	fwd, _ := p.Table("forwarding")
	// Independent guarantees: tighter guarantee means a smaller shadow.
	if acl.Agent.ShadowSize() >= fwd.Agent.ShadowSize() {
		t.Errorf("acl shadow %d not smaller than forwarding %d (1ms vs 10ms)",
			acl.Agent.ShadowSize(), fwd.Agent.ShadowSize())
	}
	if _, ok := p.Table("nope"); ok {
		t.Error("unknown table lookup succeeded")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline("p", tcam.Pica8P3290, nil); err == nil {
		t.Error("empty pipeline must fail")
	}
	if _, err := NewPipeline("p", tcam.Pica8P3290, []TableSpec{
		{Name: "bad", Capacity: 0},
	}); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := NewPipeline("p", tcam.Pica8P3290, []TableSpec{
		{Name: "bad", Capacity: 64, Config: Config{Guarantee: time.Nanosecond}},
	}); err == nil {
		t.Error("infeasible guarantee must fail")
	}
}

func TestPipelineUnmanagedTable(t *testing.T) {
	p, err := NewPipeline("sw1", tcam.Pica8P3290, []TableSpec{
		{Name: "plain", Capacity: 256, Miss: MissDrop}, // zero Guarantee: unmanaged
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := p.Table("plain")
	if tbl.Managed() || tbl.Raw == nil {
		t.Fatal("table should be unmanaged")
	}
	res, err := p.Insert(0, "plain", dstRule(1, "10.0.0.0/8", 5, 1))
	if err != nil || res.Path != PathMain {
		t.Errorf("unmanaged insert = %+v, %v", res, err)
	}
	if _, err := p.Delete(time.Millisecond, "plain", 1); err != nil {
		t.Errorf("unmanaged delete: %v", err)
	}
	if _, err := p.Delete(time.Millisecond, "plain", 99); err == nil {
		t.Error("unmanaged delete of absent rule must fail")
	}
}

func TestPipelineRouting(t *testing.T) {
	p := twoTablePipeline(t)
	if _, err := p.Insert(0, "nope", dstRule(1, "10.0.0.0/8", 5, 1)); err == nil {
		t.Error("insert into unknown table must fail")
	}
	if _, err := p.Delete(0, "nope", 1); err == nil {
		t.Error("delete from unknown table must fail")
	}
	res, err := p.Insert(0, "acl", dstRule(1, "10.0.0.0/8", 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed > time.Millisecond {
		t.Errorf("acl insert %v exceeds its 1ms guarantee", res.Completed)
	}
}

func TestPipelineLookupSemantics(t *testing.T) {
	p := twoTablePipeline(t)
	now := time.Duration(0)

	// ACL: drop traffic to 192.168.66.0/24, goto-next for a whitelisted
	// sub-block.
	drop := classifier.Rule{
		ID:       1,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("192.168.66.0/24")),
		Priority: 10,
		Action:   classifier.Action{Type: classifier.ActionDrop},
	}
	allow := classifier.Rule{
		ID:       2,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("192.168.66.128/25")),
		Priority: 20,
		Action:   classifier.Action{Type: classifier.ActionGotoNext},
	}
	for _, r := range []classifier.Rule{drop, allow} {
		if _, err := p.Insert(now, "acl", r); err != nil {
			t.Fatal(err)
		}
		now += time.Millisecond
	}
	// Forwarding: route the whitelisted block.
	fwd := classifier.Rule{
		ID:       3,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("192.168.66.128/25")),
		Priority: 5,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 7},
	}
	if _, err := p.Insert(now, "forwarding", fwd); err != nil {
		t.Fatal(err)
	}

	// Dropped: matches the ACL drop rule.
	if _, table, v := p.Lookup(classifier.MustParsePrefix("192.168.66.5/32").Addr, 0); v != VerdictDrop || table != "acl" {
		t.Errorf("blocked packet: table=%s verdict=%v", table, v)
	}
	// Whitelisted: goto-next in ACL, forwarded by the forwarding table.
	r, table, v := p.Lookup(classifier.MustParsePrefix("192.168.66.200/32").Addr, 0)
	if v != VerdictForward || table != "forwarding" || r.Action.Port != 7 {
		t.Errorf("whitelisted packet: rule=%v table=%s verdict=%v", r, table, v)
	}
	// ACL miss (goto-next) then forwarding miss (drop).
	if _, _, v := p.Lookup(classifier.MustParsePrefix("8.8.8.8/32").Addr, 0); v != VerdictDrop {
		t.Errorf("unknown packet verdict = %v, want drop", v)
	}
}

func TestPipelineMissController(t *testing.T) {
	p, err := NewPipeline("sw1", tcam.Pica8P3290, []TableSpec{
		{Name: "t0", Capacity: 128, Miss: MissController,
			Config: Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, table, v := p.Lookup(0x01020304, 0); v != VerdictController || table != "t0" {
		t.Errorf("miss verdict = %v at %s, want controller", v, table)
	}
}

func TestPipelineTick(t *testing.T) {
	p := twoTablePipeline(t)
	now := time.Duration(0)
	// Fill the ACL shadow enough that ticking matters; then tick and check
	// migration eventually empties it.
	acl, _ := p.Table("acl")
	for i := 0; i < 20; i++ {
		r := dstRule(classifier.RuleID(i+10), "10.0.0.0/8", int32(i+1), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8|0x0A000000, 28))
		if _, err := p.Insert(now, "acl", r); err != nil {
			t.Fatal(err)
		}
		now += time.Millisecond
	}
	if end := acl.Agent.ForceMigration(now); end != 0 {
		acl.Agent.Advance(end)
	}
	p.Tick(now + time.Second)
	if acl.Agent.ShadowOccupancy() != 0 {
		t.Errorf("acl shadow occupancy = %d after migration", acl.Agent.ShadowOccupancy())
	}
}
