package core

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// This file implements the agent's vectored entry points (DESIGN.md §15):
// a whole batch of ops applies under ONE control-plane lock acquisition
// with ONE advance() and ONE snapshot republish at batch end, replacing
// per-op lock round trips and per-op rebuild hysteresis. Inserts
// additionally take a zero-alloc fast path (insertBatched) when the Gate
// Keeper's decision needs no partitioning, with ruleState structs recycled
// through a per-agent freelist — the steady-state batch insert is
// 0 allocs/op, enforced by hermes-vet's hotpathalloc roots.

// BatchKind selects the operation of one BatchOp.
type BatchKind uint8

// Batch op kinds.
const (
	BatchInsert BatchKind = iota + 1
	BatchDelete
	BatchModify
)

// BatchOp is one operation inside a batch. Delete uses only Rule.ID.
type BatchOp struct {
	Kind BatchKind
	Rule classifier.Rule
}

// BatchResult is the outcome of one batch op: exactly what the per-op
// entry point would have returned.
type BatchResult struct {
	Res Result
	Err error
}

// InsertBatch inserts rules in order under one lock acquisition. out, when
// non-nil, is reset and reused as the result buffer (callers on the hot
// path pass a recycled slice so the batch allocates nothing at steady
// state); the returned slice has one entry per rule.
func (a *Agent) InsertBatch(now time.Duration, rules []classifier.Rule, out []BatchResult) []BatchResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:ignore hotpathalloc the virtual-clock advance allocates only when a migration tick fires, the amortized slow path
	a.advance(now)
	out = resetBatchResults(out, len(rules))
	for i := range rules {
		res, err := a.insertBatched(now, rules[i])
		out = appendBatchResult(out, res, err)
	}
	//lint:ignore hotpathalloc snapshot republish is the amortized once-per-batch slow path
	a.refreshViewLocked()
	return out
}

// DeleteBatch deletes rules by ID in order under one lock acquisition,
// with the same out-buffer contract as InsertBatch.
func (a *Agent) DeleteBatch(now time.Duration, ids []classifier.RuleID, out []BatchResult) []BatchResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:ignore hotpathalloc the virtual-clock advance allocates only when a migration tick fires, the amortized slow path
	a.advance(now)
	out = resetBatchResults(out, len(ids))
	for _, id := range ids {
		//lint:ignore hotpathalloc delete frees capacity; it is not the 0-alloc target path
		res, err := a.deleteOp(now, id)
		out = appendBatchResult(out, res, err)
	}
	//lint:ignore hotpathalloc snapshot republish is the amortized once-per-batch slow path
	a.refreshViewLocked()
	return out
}

// ApplyBatch applies a mixed batch in order under one lock acquisition,
// with the same out-buffer contract as InsertBatch. Per-op semantics are
// identical to calling Insert/Delete/Modify per op at the same virtual
// time: ops see each other's effects in order, each failure is reported in
// its slot without stopping the batch, and the published lookup snapshot
// is refreshed once at batch end.
func (a *Agent) ApplyBatch(now time.Duration, ops []BatchOp, out []BatchResult) []BatchResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:ignore hotpathalloc the virtual-clock advance allocates only when a migration tick fires, the amortized slow path
	a.advance(now)
	out = resetBatchResults(out, len(ops))
	for i := range ops {
		var res Result
		var err error
		switch ops[i].Kind {
		case BatchInsert:
			res, err = a.insertBatched(now, ops[i].Rule)
		case BatchDelete:
			//lint:ignore hotpathalloc delete frees capacity; it is not the 0-alloc target path
			res, err = a.deleteOp(now, ops[i].Rule.ID)
		case BatchModify:
			//lint:ignore hotpathalloc modify is delete+insert in the general case; not the 0-alloc target path
			res, err = a.modifyOp(now, ops[i].Rule)
		default:
			err = fmt.Errorf("core: unknown batch op kind %d", ops[i].Kind)
		}
		out = appendBatchResult(out, res, err)
	}
	//lint:ignore hotpathalloc snapshot republish is the amortized once-per-batch slow path
	a.refreshViewLocked()
	return out
}

// resetBatchResults prepares the caller's result buffer: reuse its capacity
// when it can hold n, otherwise grow once up front.
func resetBatchResults(out []BatchResult, n int) []BatchResult {
	if cap(out) >= n {
		return out[:0]
	}
	//lint:ignore hotpathalloc one up-front growth; callers reuse the returned buffer so steady state reallocates nothing
	return make([]BatchResult, 0, n)
}

func appendBatchResult(out []BatchResult, res Result, err error) []BatchResult {
	//lint:ignore hotpathalloc capacity was reserved by resetBatchResults; this append never grows at steady state
	return append(out, BatchResult{Res: res, Err: err})
}

// insertBatched is a.insert with a zero-alloc fast path. The fast path
// applies only when every Gate Keeper decision is already determined to be
// the plain shadow install of the uncut rule:
//
//   - the ID is valid and fresh (reserved/duplicate checks),
//   - the rule is guarded and not a §4.2 bypass candidate,
//   - no main-table rule overlapping it has priority ≥ its own — so
//     Algorithm 1 would leave it uncut (every installed rule has an
//     earlier seq, making equal priority a cut) — probed allocation-free
//     via Trie.OverlapsWhere with the agent's preallocated predicate,
//   - the shadow table has room for the single fragment,
//   - and the token bucket admits it.
//
// All checks before Allow are pure, and a false Allow at the same instant
// is repeatable, so delegating to the allocating slow path (a.insert, which
// re-runs the checks in its own order) is observationally identical: the
// same ops consume the same seqs and tokens in the same order on both
// routes. Once Allow succeeds the fast path is committed — every
// precondition for the uncut shadow install has been verified.
func (a *Agent) insertBatched(now time.Duration, r classifier.Rule) (Result, error) {
	if a.soft != nil {
		//lint:ignore hotpathalloc the cached path's software install is the guaranteed slow tier, not the 0-alloc target path
		return a.insertCached(now, r)
	}
	//lint:ignore hotpathalloc no-op after the batch-start advance at the same now; allocates only when a migration tick fires
	a.advance(now)
	if r.ID >= partIDBase {
		return Result{}, fmt.Errorf("%w: %d", ErrReservedID, r.ID)
	}
	if _, ok := a.rules[r.ID]; ok {
		return Result{}, fmt.Errorf("%w: %d", ErrDuplicateRule, r.ID)
	}
	if !a.guarded(r) ||
		(!a.cfg.DisableLowPriorityBypass && a.isGloballyLowestPriority(r.Priority)) {
		//lint:ignore hotpathalloc unguarded and bypass inserts take the general per-op path
		return a.insert(now, r)
	}
	a.overlapPrio = r.Priority
	if a.mainIndex.OverlapsWhere(r.Match, a.overlapPred) || a.shadow.Free() < 1 {
		// Would be cut by Algorithm 1 (or diverted shadow-full): the
		// general path owns partitioning and all divert bookkeeping.
		//lint:ignore hotpathalloc partitioned and diverted inserts take the general per-op path
		return a.insert(now, r)
	}
	if a.bucket != nil && !a.bucket.Allow(now, 1) {
		// Rate-limited: divert via the general path, which repeats the
		// (repeatable) Allow verdict and installs into the main table.
		//lint:ignore hotpathalloc rate-diverted inserts take the general per-op path
		return a.insert(now, r)
	}

	// Committed: uncut single-fragment shadow install, allocation-free.
	a.metrics.Inserts++
	seq := a.nextSeq
	a.nextSeq++
	//lint:ignore hotpathalloc ranked insert appends into table slices whose capacity is reused at steady state
	cost, err := a.shadow.InsertRanked(r, seq)
	if err != nil {
		// Free() ≥ 1 was checked above; any failure here is a bug.
		panic(fmt.Sprintf("core: shadow insert: %v", err))
	}
	completed := a.sw.SubmitGuaranteed(now, cost)
	st := a.takeRuleState()
	st.original = r
	st.seq = seq
	st.place = placeShadow
	//lint:ignore hotpathalloc recycled partIDs capacity absorbs the single-element append at steady state
	st.partIDs = append(st.partIDs[:0], r.ID)
	a.rules[r.ID] = st
	a.arrivals++
	a.metrics.ShadowInserts++
	a.metrics.PartitionsInstalled++

	res := Result{
		Path:       PathShadow,
		Latency:    cost,
		Completed:  completed,
		Guaranteed: true,
		Partitions: 1,
	}
	a.o.recordShadow(completed - now)
	a.o.event(now, obs.EvAdmit, 0, uint64(r.ID), 1, uint64(completed-now))
	//lint:ignore hotpathalloc the flight-recorder capture inside allocates only on a guarantee violation
	a.observeGuaranteed(now, res)
	//lint:ignore hotpathalloc the logical reference table is a testing aid, off in production configs
	a.trackLogical(r)
	a.noteRuleAdded(r.ID)
	return res, nil
}

// deleteOp / modifyOp dispatch a batch op to the cached or carved-pipeline
// implementation, mirroring the per-op entry points.
func (a *Agent) deleteOp(now time.Duration, id classifier.RuleID) (Result, error) {
	if a.soft != nil {
		return a.deleteCached(now, id)
	}
	return a.deleteRule(now, id)
}

func (a *Agent) modifyOp(now time.Duration, r classifier.Rule) (Result, error) {
	if a.soft != nil {
		return a.modifyCached(now, r)
	}
	return a.modifyLocked(now, r)
}

// takeRuleState pops a recycled ruleState (keeping its partIDs capacity)
// or allocates a fresh one during warm-up.
func (a *Agent) takeRuleState() *ruleState {
	if n := len(a.stPool); n > 0 {
		st := a.stPool[n-1]
		a.stPool[n-1] = nil
		a.stPool = a.stPool[:n-1]
		return st
	}
	//lint:ignore hotpathalloc pool warm-up; steady state pops from the freelist
	return &ruleState{}
}

// maxRuleStatePool bounds the freelist so a burst of deletes does not pin
// memory forever.
const maxRuleStatePool = 4096

// recycleRuleState returns a state removed from a.rules to the freelist.
func (a *Agent) recycleRuleState(st *ruleState) {
	if len(a.stPool) >= maxRuleStatePool {
		return
	}
	st.original = classifier.Rule{}
	st.seq = 0
	st.place = placeShadow
	st.partIDs = st.partIDs[:0]
	a.stPool = append(a.stPool, st)
}
