package core

// Tests for the indexed lookup fast path and the agent's concurrent read
// story: twin-agent differential runs (indexed vs. the LinearLookup oracle,
// including interrupted migrations and crash recovery), snapshot
// invalidation via the table generation counters, and a -race exercise of
// readers running against the control-plane mutators.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

// newTwin builds one agent of the differential pair.
func newTwin(t *testing.T, name string, linear bool, interruptSeed int64) *Agent {
	t.Helper()
	sw := tcam.NewSwitch(name, tcam.Pica8P3290)
	cfg := Config{
		Guarantee:        5 * time.Millisecond,
		TrackLogical:     true,
		DisableRateLimit: true,
		LinearLookup:     linear,
	}
	a, err := New(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if interruptSeed != 0 {
		// Deterministic interrupt schedule; both twins get the same seed so
		// their migrations are cut at identical step boundaries.
		irng := rand.New(rand.NewSource(interruptSeed))
		a.SetMigrationInterrupt(func(step MigrationStep, now time.Duration) bool {
			return irng.Intn(12) == 0
		})
	}
	return a
}

// TestIndexedLinearTwinAgents drives an indexed agent and a LinearLookup
// oracle agent through identical workloads — inserts, deletes, modifies,
// ticks, migrations interrupted mid-step, crash/restart/reconcile — and
// after every operation requires Lookup to return the identical rule (ID,
// match, priority, action — not merely the same action) on both.
func TestIndexedLinearTwinAgents(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		indexed := newTwin(t, "twin-indexed", false, seed+100)
		linear := newTwin(t, "twin-linear", true, seed+100)
		rng := rand.New(rand.NewSource(seed))
		now := time.Duration(0)
		var live []classifier.RuleID
		nextID := classifier.RuleID(1)

		apply := func(f func(a *Agent) error) {
			t.Helper()
			if err := f(indexed); err != nil {
				t.Fatalf("seed %d: indexed: %v", seed, err)
			}
			if err := f(linear); err != nil {
				t.Fatalf("seed %d: linear: %v", seed, err)
			}
		}
		probe := func(op int) {
			t.Helper()
			prng := rand.New(rand.NewSource(seed*1000 + int64(op)))
			logical := indexed.LogicalRules()
			for k := 0; k < 120; k++ {
				var dst uint32
				if len(logical) > 0 && prng.Intn(4) != 0 {
					p := logical[prng.Intn(len(logical))].Match.Dst
					dst = p.Addr | (prng.Uint32() & ^p.Mask())
				} else {
					dst = prng.Uint32()
				}
				got, gok := indexed.Lookup(dst, 0)
				want, wok := linear.Lookup(dst, 0)
				if gok != wok || got != want {
					t.Fatalf("seed %d op %d pkt %08x: indexed %v,%v linear %v,%v",
						seed, op, dst, got, gok, want, wok)
				}
				lg, lok := indexed.LogicalLookup(dst, 0)
				lw, lwok := linear.LogicalLookup(dst, 0)
				if lok != lwok || lg != lw {
					t.Fatalf("seed %d op %d pkt %08x: logical indexed %v,%v linear %v,%v",
						seed, op, dst, lg, lok, lw, lwok)
				}
			}
		}

		for op := 0; op < 90; op++ {
			now += time.Duration(rng.Intn(8)+1) * time.Millisecond
			switch x := rng.Intn(12); {
			case x < 6:
				r := classifier.Rule{
					ID:       nextID,
					Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
					Priority: int32(rng.Intn(50)),
					Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
				}
				apply(func(a *Agent) error { _, err := a.Insert(now, r); return err })
				live = append(live, nextID)
				nextID++
			case x < 7 && len(live) > 0:
				i := rng.Intn(len(live))
				apply(func(a *Agent) error { _, err := a.Delete(now, live[i]); return err })
				live = append(live[:i], live[i+1:]...)
			case x < 8 && len(live) > 0:
				id := live[rng.Intn(len(live))]
				mod := classifier.Rule{
					ID:       id,
					Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
					Priority: int32(rng.Intn(50)),
					Action:   classifier.Action{Type: classifier.ActionDrop},
				}
				apply(func(a *Agent) error { _, err := a.Modify(now, mod); return err })
			case x < 10:
				done := indexed.Tick(now)
				linear.Tick(now)
				if done != 0 && rng.Intn(2) == 0 {
					// Let the migration complete on both; probes below then
					// see post-migration state. Otherwise it stays in flight
					// and probes see the mid-migration state.
					now = done
					indexed.Advance(now)
					linear.Advance(now)
				}
			case x == 10:
				done := indexed.ForceMigration(now)
				linear.ForceMigration(now)
				if done != 0 && rng.Intn(2) == 0 {
					now = done
					indexed.Advance(now)
					linear.Advance(now)
				}
			default:
				apply(func(a *Agent) error {
					a.CrashRestart(now)
					a.Reconcile(now)
					return a.CheckConsistency()
				})
			}
			if indexed.NeedsReconcile() {
				apply(func(a *Agent) error { a.Reconcile(now); return a.CheckConsistency() })
			}
			probe(op)
		}
	}
}

// TestLookupSnapshotInvalidation proves the generation counters invalidate
// the lock-free snapshot even when the switch is mutated behind the agent's
// back (the chaos harness calls Switch().CrashRestart() directly).
func TestLookupSnapshotInvalidation(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	r := dstRule(1, "10.0.0.0/8", 5, 1)
	if _, err := a.Insert(0, r); err != nil {
		t.Fatal(err)
	}
	// Enough repeated lookups to pass the rebuild hysteresis and publish a
	// snapshot.
	for i := 0; i < 4*viewRebuildAfter; i++ {
		if got, ok := a.Lookup(0x0A000001, 0); !ok || got.ID != 1 {
			t.Fatalf("lookup %d: %v %v", i, got, ok)
		}
	}
	if a.view.Load() == nil {
		t.Fatal("snapshot never published despite stable generations")
	}
	// Out-of-band wipe: the agent is not told, but the table generations
	// move, so the stale snapshot must not be trusted.
	a.Switch().CrashRestart()
	if _, ok := a.Lookup(0x0A000001, 0); ok {
		t.Fatal("lookup served a stale snapshot after out-of-band wipe")
	}
}

// TestLinearLookupConfigUsesScanPath checks the oracle configuration never
// publishes a snapshot (reads go to the live scan path).
func TestLinearLookupConfigUsesScanPath(t *testing.T) {
	sw := tcam.NewSwitch("lin", tcam.Pica8P3290)
	a, err := New(sw, Config{Guarantee: 5 * time.Millisecond, LinearLookup: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(0, dstRule(1, "10.0.0.0/8", 5, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*viewRebuildAfter; i++ {
		if _, ok := a.Lookup(0x0A000001, 0); !ok {
			t.Fatal("lookup missed")
		}
	}
	if a.view.Load() != nil {
		t.Fatal("LinearLookup agent published a snapshot")
	}
}

// TestConcurrentReadersUnderMutation exercises every reader against the
// control-plane mutators for the race detector: lookups (fast and slow
// path), logical lookups, metrics, occupancies, consistency checks — all
// while rules churn, migrations run, and the switch crash-restarts.
func TestConcurrentReadersUnderMutation(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				dst := 0xC0A80000 | (rng.Uint32() & 0xFFFF)
				a.Lookup(dst, 0)
				a.LogicalLookup(dst, 0)
				switch rng.Intn(8) {
				case 0:
					a.Metrics()
				case 1:
					a.ShadowOccupancy()
					a.MainOccupancy()
				case 2:
					a.MigrationEndsAt()
					a.NeedsReconcile()
				case 3:
					a.CurrentSlack()
				}
			}
		}(int64(g))
	}

	rng := rand.New(rand.NewSource(99))
	now := time.Duration(0)
	var live []classifier.RuleID
	nextID := classifier.RuleID(1)
	for op := 0; op < 4000; op++ {
		now += time.Millisecond
		switch x := rng.Intn(12); {
		case x < 7:
			r := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
				Priority: int32(rng.Intn(50)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}
			if _, err := a.Insert(now, r); err != nil {
				t.Fatal(err)
			}
			live = append(live, nextID)
			nextID++
		case x < 9 && len(live) > 0:
			i := rng.Intn(len(live))
			if _, err := a.Delete(now, live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		case x < 10:
			a.Tick(now)
		case x == 10:
			if end := a.ForceMigration(now); end != 0 {
				now = end
				a.Advance(now)
			}
		default:
			a.CrashRestart(now)
			a.Reconcile(now)
		}
	}
	close(stop)
	wg.Wait()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
