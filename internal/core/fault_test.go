package core

// Crash-recovery tests: migrations interrupted at each of the four Fig.-7
// steps, switch power-cycles, truncated and silently-dropped TCAM writes —
// each followed by a Reconcile that must restore byte-equivalence between
// the agent's view and the physical tables, and lookup equivalence against
// the reference monolithic table.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

// assertEquivalent probes the carved pipeline against the reference
// monolithic table with 300 seeded packets (biased toward installed rules).
func assertEquivalent(t *testing.T, a *Agent, seed int64, label string) {
	t.Helper()
	rr := rand.New(rand.NewSource(seed))
	logical := a.LogicalRules()
	for k := 0; k < 300; k++ {
		var dst uint32
		if len(logical) > 0 && rr.Intn(4) != 0 {
			pick := logical[rr.Intn(len(logical))].Match.Dst
			dst = pick.Addr | (rr.Uint32() & ^pick.Mask())
		} else {
			dst = rr.Uint32()
		}
		want, wok := a.LogicalLookup(dst, 0)
		got, gok := a.Lookup(dst, 0)
		if wok != gok || (wok && got.Action != want.Action) {
			t.Fatalf("%s: pkt %08x: lookup %v(%v) want %v(%v)", label, dst, got, gok, want, wok)
		}
	}
}

func mustInsert(t *testing.T, a *Agent, now time.Duration, r classifier.Rule) Result {
	t.Helper()
	res, err := a.Insert(now, r)
	if err != nil {
		t.Fatalf("insert %v: %v", r, err)
	}
	return res
}

// seedMixedAgent builds an agent with rules in both tables: a blocker
// migrated to main, an overlapping lower-priority rule fragmented in the
// shadow table, plus disjoint unfragmented shadow rules.
func seedMixedAgent(t *testing.T, cfg Config) (*Agent, time.Duration) {
	t.Helper()
	cfg.DisableRateLimit = true
	cfg.DisableLowPriorityBypass = true
	a := newTestAgent(t, cfg)
	now := time.Duration(0)
	mustInsert(t, a, now, dstRule(1, "192.168.1.0/26", 50, 1))
	if end := a.ForceMigration(now + time.Millisecond); end != 0 {
		now = end
	}
	a.Advance(now)
	now += time.Millisecond
	// Overlaps the migrated blocker with lower priority: Algorithm 1 cuts it.
	res := mustInsert(t, a, now, dstRule(2, "192.168.1.0/24", 5, 2))
	if res.Partitions < 2 {
		t.Fatalf("rule 2 partitions = %d, want a cut rule", res.Partitions)
	}
	now += time.Millisecond
	mustInsert(t, a, now, dstRule(3, "10.0.0.0/8", 20, 3))
	now += time.Millisecond
	mustInsert(t, a, now, dstRule(4, "172.16.0.0/12", 30, 4))
	now += time.Millisecond
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("seed state inconsistent: %v", err)
	}
	return a, now
}

// TestMigrationInterruptAtEachStep cuts a migration off at every Fig.-7
// step, on both the merged and the fragment (ablation) paths, and verifies
// Reconcile restores table- and lookup-equivalence.
func TestMigrationInterruptAtEachStep(t *testing.T) {
	steps := []MigrationStep{StepCopy, StepOptimize, StepInsert, StepEmpty}
	for _, frag := range []bool{false, true} {
		for _, step := range steps {
			for trigger := 1; trigger <= 2; trigger++ {
				name := step.String()
				if frag {
					name = "fragments/" + name
				}
				if trigger > 1 {
					name += "/second-boundary"
				}
				t.Run(name, func(t *testing.T) {
					testInterruptAt(t, step, frag, trigger)
				})
			}
		}
	}
}

func testInterruptAt(t *testing.T, step MigrationStep, frag bool, trigger int) {
	a, now := seedMixedAgent(t, Config{DisableMergeOptimization: frag})
	// One-shot hook: fire on the trigger-th boundary check for the target
	// step, so the interruption also lands mid-way through the apply loop.
	hits := 0
	armed := true
	a.SetMigrationInterrupt(func(s MigrationStep, _ time.Duration) bool {
		if !armed || s != step {
			return false
		}
		hits++
		if hits == trigger {
			armed = false
			return true
		}
		return false
	})

	before := a.Metrics()
	end := a.ForceMigration(now)
	switch step {
	case StepCopy, StepOptimize:
		// Steps 1–2 run on the snapshot before anything physical happens:
		// the migration must abort cleanly and leave the tables untouched.
		if trigger > 1 {
			t.Skip("copy/optimize are single boundaries")
		}
		if end != 0 {
			t.Fatalf("migration started despite %v interrupt", step)
		}
		if got := a.Metrics().MigrationAborts - before.MigrationAborts; got != 1 {
			t.Fatalf("MigrationAborts delta = %d, want 1", got)
		}
		if a.NeedsReconcile() {
			t.Fatal("clean abort must not require reconcile")
		}
		if err := a.CheckConsistency(); err != nil {
			t.Fatalf("after clean abort: %v", err)
		}
	case StepInsert, StepEmpty:
		if end == 0 {
			t.Fatal("migration did not start")
		}
		now = end
		a.Advance(now) // applies steps 3–4 and hits the interrupt
		if got := a.Metrics().MigrationInterrupts - before.MigrationInterrupts; got != 1 {
			t.Fatalf("MigrationInterrupts delta = %d, want 1", got)
		}
		if !a.NeedsReconcile() {
			t.Fatal("interrupted apply must mark the agent for reconcile")
		}
	}
	a.SetMigrationInterrupt(nil)

	now += time.Millisecond
	a.Reconcile(now)
	if a.NeedsReconcile() {
		t.Fatal("Reconcile left NeedsReconcile set")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after reconcile: %v", err)
	}
	assertEquivalent(t, a, 42, "after reconcile")

	// The agent must keep working: more inserts, then a full migration.
	now += time.Millisecond
	mustInsert(t, a, now, dstRule(9, "192.168.2.0/24", 15, 9))
	if end := a.ForceMigration(now + time.Millisecond); end != 0 {
		now = end
		a.Advance(now)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after follow-up migration: %v", err)
	}
	assertEquivalent(t, a, 43, "after follow-up migration")
}

// TestCrashRestartReconcile power-cycles the switch mid-migration: every
// physical entry vanishes, and Reconcile must reinstall the agent's entire
// desired state from software.
func TestCrashRestartReconcile(t *testing.T) {
	run := func() (*Agent, ReconcileReport) {
		a, now := seedMixedAgent(t, Config{})
		end := a.ForceMigration(now)
		if end == 0 {
			t.Fatal("migration did not start")
		}
		// Crash strictly before the background copy completes.
		a.CrashRestart(now + (end-now)/2)
		if !a.NeedsReconcile() {
			t.Fatal("crash must mark the agent for reconcile")
		}
		if a.ShadowOccupancy() != 0 || a.MainOccupancy() != 0 {
			t.Fatalf("crash left entries: shadow=%d main=%d", a.ShadowOccupancy(), a.MainOccupancy())
		}
		if a.MigrationEndsAt() != 0 {
			t.Fatal("crash must kill the in-flight migration")
		}
		now = end + time.Millisecond
		rep := a.Reconcile(now)
		if err := a.CheckConsistency(); err != nil {
			t.Fatalf("after reconcile: %v", err)
		}
		return a, rep
	}
	a, rep := run()
	if rep.Clean() {
		t.Fatalf("reconcile after crash found nothing to repair: %v", rep)
	}
	if rep.MainReinstalled == 0 {
		t.Fatalf("no main entries reinstalled: %v", rep)
	}
	m := a.Metrics()
	if m.SwitchRestarts != 1 || m.Reconciles != 1 {
		t.Fatalf("restarts=%d reconciles=%d, want 1/1", m.SwitchRestarts, m.Reconciles)
	}
	assertEquivalent(t, a, 7, "after crash recovery")

	// Determinism: the identical scenario reproduces identical physical
	// tables and an identical report.
	b, rep2 := run()
	if rep != rep2 {
		t.Fatalf("reports differ across identical runs: %v vs %v", rep, rep2)
	}
	if !reflect.DeepEqual(a.main.Rules(), b.main.Rules()) {
		t.Fatal("main tables differ across identical runs")
	}
	if !reflect.DeepEqual(a.shadow.Rules(), b.shadow.Rules()) {
		t.Fatal("shadow tables differ across identical runs")
	}
}

// TestTruncateReconcile models a crash during a bulk TCAM write: the shadow
// slice keeps only a prefix of its entries, leaving some rules with half
// their fragments installed.
func TestTruncateReconcile(t *testing.T) {
	a, now := seedMixedAgent(t, Config{})
	a.shadow.Truncate(1)
	a.MarkDivergent()
	if err := a.CheckConsistency(); err == nil {
		t.Fatal("truncation not visible to CheckConsistency")
	}
	rep := a.Reconcile(now)
	if rep.Clean() {
		t.Fatalf("reconcile found nothing after truncation: %v", rep)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after reconcile: %v", err)
	}
	assertEquivalent(t, a, 11, "after truncate recovery")
}

// TestDroppedOpsReconcile models an update engine that acks writes it never
// applies: the agent's bookkeeping says installed, the hardware disagrees.
func TestDroppedOpsReconcile(t *testing.T) {
	a, now := seedMixedAgent(t, Config{})
	armed := true
	a.shadow.SetFaultHook(func(op tcam.Op, _ classifier.RuleID) tcam.OpFault {
		return tcam.OpFault{Drop: armed}
	})
	mustInsert(t, a, now, dstRule(5, "10.1.0.0/16", 40, 5))
	armed = false
	if a.shadow.DroppedOps() == 0 {
		t.Fatal("fault hook dropped nothing")
	}
	if err := a.CheckConsistency(); err == nil {
		t.Fatal("dropped write not visible to CheckConsistency")
	}
	a.MarkDivergent()
	rep := a.Reconcile(now + time.Millisecond)
	if rep.Clean() {
		t.Fatalf("reconcile found nothing after dropped ops: %v", rep)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after reconcile: %v", err)
	}
	assertEquivalent(t, a, 13, "after dropped-op recovery")
}

// TestUnmergeAfterCrashRecovery walks the Fig. 6 path on a recovered agent:
// after a crash + Reconcile re-cuts the shadow rule, deleting the main rule
// that caused the cut must un-merge the fragments back into one entry.
func TestUnmergeAfterCrashRecovery(t *testing.T) {
	a, now := seedMixedAgent(t, Config{})
	a.CrashRestart(now)
	now += time.Millisecond
	a.Reconcile(now)
	st := a.rules[2]
	if st == nil || st.place != placeShadow || len(st.partIDs) < 2 {
		t.Fatalf("rule 2 not re-cut after recovery: %+v", st)
	}
	// Fig. 6: deleting the blocker un-merges the dependent rule.
	now += time.Millisecond
	if _, err := a.Delete(now, 1); err != nil {
		t.Fatal(err)
	}
	st = a.rules[2]
	if st == nil || len(st.partIDs) != 1 {
		t.Fatalf("rule 2 not un-merged after blocker delete: %+v", st)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after un-merge: %v", err)
	}
	assertEquivalent(t, a, 17, "after un-merge")
}

// TestAbortMigration covers the clean-abort path: cancelling an in-flight
// copy leaves the tables exactly as they were.
func TestAbortMigration(t *testing.T) {
	a, now := seedMixedAgent(t, Config{})
	if a.AbortMigration(now) {
		t.Fatal("aborted a migration that was never started")
	}
	end := a.ForceMigration(now)
	if end == 0 {
		t.Fatal("migration did not start")
	}
	if !a.AbortMigration(now + (end-now)/2) {
		t.Fatal("abort mid-flight failed")
	}
	if a.MigrationEndsAt() != 0 {
		t.Fatal("abort left the migration in flight")
	}
	if a.NeedsReconcile() {
		t.Fatal("clean abort must not require reconcile")
	}
	a.Advance(end + time.Millisecond) // must be a no-op
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after abort: %v", err)
	}
	assertEquivalent(t, a, 19, "after abort")
	// The snapshot stayed in the shadow table; a fresh migration completes.
	if end = a.ForceMigration(end + 2*time.Millisecond); end == 0 {
		t.Fatal("re-migration did not start")
	}
	a.Advance(end)
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("after re-migration: %v", err)
	}
}

// TestEquivalenceFixedSeedsWithFaults replays the random workload of
// equivalence_test.go with seeded fault events mixed in (crash/restart,
// truncation, migration interrupts), reconciling after each fault and
// checking lookup equivalence after every operation.
func TestEquivalenceFixedSeedsWithFaults(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		runFaultSeq(t, seed)
	}
}

func runFaultSeq(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	a := newTestAgent(t, Config{DisableRateLimit: true})
	// Seeded migration interrupts: each boundary check has a 1-in-8 chance.
	a.SetMigrationInterrupt(func(_ MigrationStep, _ time.Duration) bool {
		return r.Intn(8) == 0
	})
	now := time.Duration(0)
	var live []classifier.RuleID
	nextID := classifier.RuleID(1)
	for op := 0; op < 100; op++ {
		now += time.Duration(r.Intn(8)+1) * time.Millisecond
		switch x := r.Intn(12); {
		case x < 6:
			rule := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(r.Uint32()&0xFFFF), uint8(16+r.Intn(17)))),
				Priority: int32(r.Intn(50)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}
			if _, err := a.Insert(now, rule); err != nil {
				t.Fatalf("seed %d op %d insert: %v", seed, op, err)
			}
			live = append(live, nextID)
			nextID++
		case x < 8 && len(live) > 0:
			i := r.Intn(len(live))
			if _, err := a.Delete(now, live[i]); err != nil {
				t.Fatalf("seed %d op %d delete: %v", seed, op, err)
			}
			live = append(live[:i], live[i+1:]...)
		case x == 8:
			if end := a.ForceMigration(now); end != 0 && r.Intn(2) == 0 {
				now = end
				a.Advance(now)
			}
		case x == 9:
			a.CrashRestart(now)
		case x == 10:
			a.shadow.Truncate(r.Intn(4))
			a.MarkDivergent()
		default:
			if end := a.Tick(now); end != 0 {
				now = end
				a.Advance(now)
			}
		}
		if a.NeedsReconcile() {
			a.Reconcile(now)
			if err := a.CheckConsistency(); err != nil {
				t.Fatalf("seed %d op %d: reconcile left divergence: %v", seed, op, err)
			}
		}
		if a.MigrationEndsAt() == 0 && !a.NeedsReconcile() {
			// Only quiesced states are expected to be equivalent.
			probeEquivalent(t, a, seed*1000+int64(op), seed, op)
		}
	}
}

func probeEquivalent(t *testing.T, a *Agent, probeSeed, seed int64, op int) {
	t.Helper()
	rr := rand.New(rand.NewSource(probeSeed))
	logical := a.LogicalRules()
	for k := 0; k < 120; k++ {
		var dst uint32
		if len(logical) > 0 && rr.Intn(4) != 0 {
			pick := logical[rr.Intn(len(logical))].Match.Dst
			dst = pick.Addr | (rr.Uint32() & ^pick.Mask())
		} else {
			dst = rr.Uint32()
		}
		want, wok := a.LogicalLookup(dst, 0)
		got, gok := a.Lookup(dst, 0)
		if wok != gok || (wok && got.Action != want.Action) {
			t.Fatalf("seed %d op %d pkt %08x: lookup %v(%v) want %v(%v)",
				seed, op, dst, got, gok, want, wok)
		}
	}
}
