package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

func newTestAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	sw := tcam.NewSwitch("test", tcam.Pica8P3290)
	if cfg.Guarantee == 0 {
		cfg.Guarantee = 5 * time.Millisecond
	}
	cfg.TrackLogical = true
	a, err := New(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func dstRule(id classifier.RuleID, dst string, prio int32, port int) classifier.Rule {
	return classifier.Rule{
		ID:       id,
		Match:    classifier.DstMatch(classifier.MustParsePrefix(dst)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: port},
	}
}

func TestNewAgentSizing(t *testing.T) {
	sw := tcam.NewSwitch("s", tcam.Pica8P3290)
	a, err := New(sw, Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a.ShadowSize() != tcam.Pica8P3290.MaxShiftsWithin(5*time.Millisecond) {
		t.Errorf("shadow size = %d", a.ShadowSize())
	}
	if a.OverheadFraction() >= 0.05 {
		t.Errorf("overhead = %.3f, want < 5%% for a 5ms guarantee (paper headline)", a.OverheadFraction())
	}
	if a.MaxRate() <= 0 {
		t.Error("max rate must be positive")
	}
	if a.Guarantee() != 5*time.Millisecond {
		t.Error("guarantee accessor")
	}
}

func TestNewAgentInfeasible(t *testing.T) {
	sw := tcam.NewSwitch("s", tcam.Pica8P3290)
	_, err := New(sw, Config{Guarantee: tcam.Pica8P3290.FloorLatency / 2})
	if !errors.Is(err, ErrGuaranteeInfeasible) {
		t.Errorf("err = %v, want ErrGuaranteeInfeasible", err)
	}
	if _, err := New(sw, Config{}); err == nil {
		t.Error("zero guarantee must fail")
	}
}

func TestInsertGuaranteeHolds(t *testing.T) {
	a := newTestAgent(t, Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	now := time.Duration(0)
	for i := 0; i < 60; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i%7), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16|0x0A000000, 24))
		res, err := a.Insert(now, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != PathShadow && res.Path != PathBypass {
			t.Fatalf("rule %d path = %v", i, res.Path)
		}
		if res.Completed-now > 5*time.Millisecond {
			t.Errorf("rule %d latency %v exceeds guarantee", i, res.Completed-now)
		}
		now += 10 * time.Millisecond // paced below MaxRate
	}
	m := a.Metrics()
	if m.Violations != 0 {
		t.Errorf("violations = %d", m.Violations)
	}
	if m.ShadowInserts+m.Bypasses != 60 {
		t.Errorf("guaranteed inserts = %d+%d", m.ShadowInserts, m.Bypasses)
	}
}

func TestLowPriorityBypass(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	// First rule: nothing installed anywhere, so it is globally lowest.
	res, err := a.Insert(0, dstRule(1, "10.0.0.0/8", 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathBypass {
		t.Errorf("first rule path = %v, want bypass", res.Path)
	}
	// Lower-priority rule also bypasses.
	res, _ = a.Insert(time.Millisecond, dstRule(2, "20.0.0.0/8", 3, 2))
	if res.Path != PathBypass {
		t.Errorf("lower-priority path = %v, want bypass", res.Path)
	}
	// Higher-priority rule cannot bypass.
	res, _ = a.Insert(2*time.Millisecond, dstRule(3, "30.0.0.0/8", 9, 3))
	if res.Path != PathShadow {
		t.Errorf("higher-priority path = %v, want shadow", res.Path)
	}
	if a.Metrics().Bypasses != 2 {
		t.Errorf("bypasses = %d", a.Metrics().Bypasses)
	}
}

func TestBypassDisabled(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	res, err := a.Insert(0, dstRule(1, "10.0.0.0/8", 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathShadow {
		t.Errorf("path = %v, want shadow with bypass disabled", res.Path)
	}
}

func TestPredicateRouting(t *testing.T) {
	onlyHighPrio := func(r classifier.Rule) bool { return r.Priority >= 100 }
	a := newTestAgent(t, Config{Predicate: onlyHighPrio, DisableRateLimit: true, DisableLowPriorityBypass: true})
	res, _ := a.Insert(0, dstRule(1, "10.0.0.0/8", 5, 1))
	if res.Path != PathMain || res.Guaranteed {
		t.Errorf("unguarded rule: path=%v guaranteed=%v", res.Path, res.Guaranteed)
	}
	res, _ = a.Insert(time.Millisecond, dstRule(2, "20.0.0.0/8", 150, 2))
	if res.Path != PathShadow || !res.Guaranteed {
		t.Errorf("guarded rule: path=%v guaranteed=%v", res.Path, res.Guaranteed)
	}
}

func TestRateLimiterDivertsToMain(t *testing.T) {
	a := newTestAgent(t, Config{DisableLowPriorityBypass: true})
	// Flood far above MaxRate at a single instant: after the burst budget
	// (== shadow size) is consumed, inserts divert to the main table.
	n := a.ShadowSize() + 50
	var mainPath int
	for i := 0; i < n; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12|0x0A000000, 28))
		res, err := a.Insert(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathMain {
			mainPath++
		}
	}
	if mainPath == 0 {
		t.Error("token bucket never diverted under a flood")
	}
	if a.Metrics().RateLimited == 0 {
		t.Error("RateLimited counter not incremented")
	}
}

func TestRedundantInsert(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	// Install a high-priority covering rule, migrate it into main, then
	// insert a subsumed lower-priority rule.
	if _, err := a.Insert(0, dstRule(1, "192.168.0.0/16", 100, 1)); err != nil {
		t.Fatal(err)
	}
	end := a.ForceMigration(time.Millisecond)
	if end == 0 {
		t.Fatal("migration did not start")
	}
	a.Advance(end)
	if a.MainOccupancy() != 1 {
		t.Fatalf("main occupancy = %d", a.MainOccupancy())
	}
	res, err := a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathRedundant {
		t.Errorf("path = %v, want redundant", res.Path)
	}
	if a.ShadowOccupancy() != 0 {
		t.Errorf("shadow occupancy = %d after redundant insert", a.ShadowOccupancy())
	}
	// The covering rule still answers lookups.
	addr := classifier.MustParsePrefix("192.168.1.5/32").Addr
	got, ok := a.Lookup(addr, 0)
	if !ok || got.ID != 1 {
		t.Errorf("lookup = %v, %v", got, ok)
	}
}

func TestPartitionOnInsertPaperExample(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	// Fig. 4: higher-priority /26 in main, then a lower-priority /24.
	if _, err := a.Insert(0, dstRule(1, "192.168.1.0/26", 10, 1)); err != nil {
		t.Fatal(err)
	}
	end := a.ForceMigration(time.Millisecond)
	a.Advance(end)

	res, err := a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathShadow || res.Partitions != 2 {
		t.Fatalf("res = %+v, want 2 shadow partitions", res)
	}
	// .5 must hit port 1 (main /26), .200 port 2 (shadow fragment).
	addr5 := classifier.MustParsePrefix("192.168.1.5/32").Addr
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	if got, _ := a.Lookup(addr5, 0); got.Action.Port != 1 {
		t.Errorf("lookup .5 port = %d, want 1", got.Action.Port)
	}
	if got, _ := a.Lookup(addr200, 0); got.Action.Port != 2 {
		t.Errorf("lookup .200 port = %d, want 2", got.Action.Port)
	}
}

func TestDeleteUnpartitions(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	a.Insert(0, dstRule(1, "192.168.1.0/26", 10, 1))
	end := a.ForceMigration(time.Millisecond)
	a.Advance(end)
	a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2))
	if a.ShadowOccupancy() != 2 {
		t.Fatalf("shadow occupancy = %d, want 2 fragments", a.ShadowOccupancy())
	}
	// Deleting the main-table /26 must restore the original /24 (Fig. 6).
	if _, err := a.Delete(end+2*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if a.ShadowOccupancy() != 1 {
		t.Errorf("shadow occupancy after unpartition = %d, want 1", a.ShadowOccupancy())
	}
	addr5 := classifier.MustParsePrefix("192.168.1.5/32").Addr
	got, ok := a.Lookup(addr5, 0)
	if !ok || got.Action.Port != 2 {
		t.Errorf("lookup .5 after delete = %v (ok=%v), want port 2", got, ok)
	}
}

func TestDeletePartitionedRuleRemovesAllFragments(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	a.Insert(0, dstRule(1, "192.168.1.0/26", 10, 1))
	end := a.ForceMigration(time.Millisecond)
	a.Advance(end)
	a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2))
	if _, err := a.Delete(end+2*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if a.ShadowOccupancy() != 0 {
		t.Errorf("fragments remain: %d", a.ShadowOccupancy())
	}
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	if _, ok := a.Lookup(addr200, 0); ok {
		t.Error("deleted rule still matches")
	}
}

func TestDeleteUnknown(t *testing.T) {
	a := newTestAgent(t, Config{})
	if _, err := a.Delete(0, 42); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("err = %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	if _, err := a.Insert(0, dstRule(partIDBase+1, "10.0.0.0/8", 1, 1)); !errors.Is(err, ErrReservedID) {
		t.Errorf("reserved id err = %v", err)
	}
	if _, err := a.Insert(0, dstRule(1, "10.0.0.0/8", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(0, dstRule(1, "10.0.0.0/8", 1, 1)); !errors.Is(err, ErrDuplicateRule) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestModifyActionInPlace(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	r := dstRule(1, "10.0.0.0/8", 50, 1)
	a.Insert(0, r)
	r.Action = classifier.Action{Type: classifier.ActionDrop}
	res, err := a.Modify(time.Millisecond, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency > tcam.Pica8P3290.ModifyLatency*2 {
		t.Errorf("action modify latency = %v, want ≈ constant", res.Latency)
	}
	got, ok := a.Lookup(classifier.MustParsePrefix("10.1.1.1/32").Addr, 0)
	if !ok || got.Action.Type != classifier.ActionDrop {
		t.Errorf("lookup after modify = %v", got)
	}
	if a.Metrics().Modifies != 1 {
		t.Error("Modifies counter")
	}
}

func TestModifyPriorityIsDeleteInsert(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true})
	r := dstRule(1, "10.0.0.0/8", 50, 1)
	a.Insert(0, r)
	inserts := a.Metrics().Inserts
	deletes := a.Metrics().Deletes
	r.Priority = 60
	if _, err := a.Modify(time.Millisecond, r); err != nil {
		t.Fatal(err)
	}
	m := a.Metrics()
	if m.Deletes != deletes+1 || m.Inserts != inserts+1 {
		t.Errorf("priority modify: deletes %d→%d inserts %d→%d", deletes, m.Deletes, inserts, m.Inserts)
	}
	got, ok := a.Lookup(classifier.MustParsePrefix("10.1.1.1/32").Addr, 0)
	if !ok || got.Priority != 60 {
		t.Errorf("rule after priority modify = %v", got)
	}
}

func TestModifyUnknown(t *testing.T) {
	a := newTestAgent(t, Config{})
	if _, err := a.Modify(0, dstRule(9, "10.0.0.0/8", 1, 1)); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("err = %v", err)
	}
}

func TestMigrationEmptiesShadow(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	for i := 0; i < 20; i++ {
		a.Insert(0, dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i), i))
	}
	if a.ShadowOccupancy() != 20 {
		t.Fatalf("shadow = %d", a.ShadowOccupancy())
	}
	end := a.ForceMigration(time.Millisecond)
	if end == 0 {
		t.Fatal("migration did not start")
	}
	if !a.Migrating(time.Millisecond) {
		t.Error("Migrating must report true mid-flight")
	}
	if got := a.MigrationEndsAt(); got != end {
		t.Errorf("MigrationEndsAt = %v, want %v", got, end)
	}
	a.Advance(end)
	if a.ShadowOccupancy() != 0 {
		t.Errorf("shadow after migration = %d", a.ShadowOccupancy())
	}
	if a.MainOccupancy() != 20 {
		t.Errorf("main after migration = %d", a.MainOccupancy())
	}
	m := a.Metrics()
	if m.Migrations != 1 || m.MigratedRules != 20 {
		t.Errorf("metrics = %+v", m)
	}
	// All rules still resolve.
	for i := 0; i < 20; i++ {
		// Every rule shares the 10/8 prefix: the highest priority (19) wins.
		got, ok := a.Lookup(classifier.MustParsePrefix("10.1.1.1/32").Addr, 0)
		if !ok || got.Priority != 19 {
			t.Fatalf("lookup = %v, %v", got, ok)
		}
	}
}

func TestMigrationCollapsesFragments(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	a.Insert(0, dstRule(1, "192.168.1.0/26", 10, 1))
	end := a.ForceMigration(time.Millisecond)
	a.Advance(end)
	a.Insert(end+time.Millisecond, dstRule(2, "192.168.1.0/24", 5, 2)) // 2 fragments
	if a.ShadowOccupancy() != 2 {
		t.Fatalf("fragments = %d", a.ShadowOccupancy())
	}
	end2 := a.ForceMigration(end + 2*time.Millisecond)
	a.Advance(end2)
	// The two fragments collapse into the single original in main.
	if a.MainOccupancy() != 2 {
		t.Errorf("main = %d, want 2 (covering rule + restored original)", a.MainOccupancy())
	}
	if a.ShadowOccupancy() != 0 {
		t.Errorf("shadow = %d", a.ShadowOccupancy())
	}
	// Semantics preserved: .5 → port 1, .200 → port 2.
	addr5 := classifier.MustParsePrefix("192.168.1.5/32").Addr
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	if got, _ := a.Lookup(addr5, 0); got.Action.Port != 1 {
		t.Errorf(".5 port = %d", got.Action.Port)
	}
	if got, _ := a.Lookup(addr200, 0); got.Action.Port != 2 {
		t.Errorf(".200 port = %d", got.Action.Port)
	}
}

func TestTickPredictiveMigration(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	now := time.Duration(0)
	id := classifier.RuleID(1)
	// Ramp arrivals so the spline predicts overflow before it happens.
	migrated := false
	perTick := 2
	for tick := 0; tick < 60 && !migrated; tick++ {
		for i := 0; i < perTick; i++ {
			r := dstRule(id, "10.0.0.0/8", int32(id%97), int(id))
			r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(id)<<8|0x0A000000, 28))
			if _, err := a.Insert(now, r); err != nil {
				t.Fatal(err)
			}
			id++
		}
		perTick += 2
		now += 10 * time.Millisecond
		if end := a.Tick(now); end != 0 {
			migrated = true
			a.Advance(end)
		}
		if a.ShadowOccupancy() >= a.ShadowSize() {
			t.Fatalf("shadow overflowed before prediction fired (occ=%d)", a.ShadowOccupancy())
		}
	}
	if !migrated {
		t.Fatal("predictive tick never migrated")
	}
}

func TestTickThresholdMode(t *testing.T) {
	a := newTestAgent(t, Config{
		DisableRateLimit: true, DisableLowPriorityBypass: true,
		Mode: MigrationThreshold, Threshold: 0.5,
	})
	now := time.Duration(0)
	// Fill to just under half: no migration.
	half := a.ShadowSize() / 2
	for i := 0; i < half-1; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i%97), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8|0x0A000000, 28))
		a.Insert(now, r)
	}
	if end := a.Tick(now + time.Millisecond); end != 0 {
		t.Fatal("threshold migration fired below threshold")
	}
	// Cross the threshold.
	for i := 0; i < 3; i++ {
		r := dstRule(classifier.RuleID(half+10+i), "10.0.0.0/8", 1, i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(0x14000000|uint32(i)<<8, 28))
		a.Insert(now+2*time.Millisecond, r)
	}
	end := a.Tick(now + 3*time.Millisecond)
	if end == 0 {
		t.Fatal("threshold migration did not fire at threshold")
	}
	a.Advance(end)
	if a.ShadowOccupancy() != 0 {
		t.Error("shadow not emptied")
	}
}

// verifyEquivalence samples packets and compares the two-table lookup with
// the logical monolithic reference — the paper's core correctness
// guarantee (§4).
func verifyEquivalence(t *testing.T, a *Agent, r *rand.Rand, samples int) {
	t.Helper()
	logical := a.LogicalRules()
	for k := 0; k < samples; k++ {
		var dst uint32
		if len(logical) > 0 && r.Intn(4) != 0 {
			pick := logical[r.Intn(len(logical))].Match.Dst
			dst = pick.Addr | (r.Uint32() & ^pick.Mask())
		} else {
			dst = r.Uint32()
		}
		want, wok := a.LogicalLookup(dst, 0)
		got, gok := a.Lookup(dst, 0)
		if wok != gok {
			t.Fatalf("pkt %08x: found=%v want %v", dst, gok, wok)
		}
		if wok && got.Action != want.Action {
			t.Fatalf("pkt %08x: action %v, want %v", dst, got.Action, want.Action)
		}
	}
}

// TestEquivalenceUnderRandomWorkload drives the agent with a random mix of
// inserts, deletes, modifications, ticks and migrations, continuously
// checking that the carved pipeline behaves exactly like one monolithic
// table.
func TestEquivalenceUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newTestAgent(t, Config{DisableRateLimit: true})
		now := time.Duration(0)
		live := []classifier.RuleID{}
		nextID := classifier.RuleID(1)
		for op := 0; op < 120; op++ {
			now += time.Duration(r.Intn(8)+1) * time.Millisecond
			switch x := r.Intn(10); {
			case x < 6: // insert
				rule := classifier.Rule{
					ID:       nextID,
					Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(r.Uint32()&0xFFFF), uint8(16+r.Intn(17)))),
					Priority: int32(r.Intn(50)),
					Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
				}
				if _, err := a.Insert(now, rule); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				live = append(live, nextID)
				nextID++
			case x < 8 && len(live) > 0: // delete
				i := r.Intn(len(live))
				if _, err := a.Delete(now, live[i]); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case x == 8: // tick (may trigger predictive migration)
				if end := a.Tick(now); end != 0 && r.Intn(2) == 0 {
					now = end
					a.Advance(now)
				}
			default: // force migration
				if end := a.ForceMigration(now); end != 0 && r.Intn(2) == 0 {
					now = end
					a.Advance(now)
				}
			}
			verifyEquivalence(t, a, r, 25)
		}
		// Drain any in-flight migration and re-verify.
		if end := a.MigrationEndsAt(); end != 0 {
			a.Advance(end)
		}
		verifyEquivalence(t, a, r, 200)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNaiveMigrationExposesRules(t *testing.T) {
	a := newTestAgent(t, Config{
		DisableRateLimit: true, DisableLowPriorityBypass: true, NaiveMigration: true,
	})
	for i := 0; i < 10; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i+1), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8|0x0A000000, 28))
		a.Insert(0, r)
	}
	end := a.ForceMigration(time.Millisecond)
	if end == 0 {
		t.Fatal("no migration")
	}
	// Mid-flight the rules are installed nowhere: the transient-miss
	// window §5.2's atomic ordering avoids.
	if a.ShadowOccupancy() != 0 {
		t.Error("naive migration must empty shadow at start")
	}
	if a.MainOccupancy() != 0 {
		t.Error("main must not be populated before completion")
	}
	a.Advance(end)
	if a.MainOccupancy() != 10 {
		t.Errorf("main after naive migration = %d", a.MainOccupancy())
	}
	if a.Metrics().ExposedRuleSeconds <= 0 {
		t.Error("ExposedRuleSeconds not accounted")
	}
}

func TestSafeMigrationNeverExposesRules(t *testing.T) {
	a := newTestAgent(t, Config{DisableRateLimit: true, DisableLowPriorityBypass: true})
	for i := 0; i < 10; i++ {
		r := dstRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i+1), i)
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<8|0x0A000000, 28))
		a.Insert(0, r)
	}
	end := a.ForceMigration(time.Millisecond)
	// Mid-flight every rule still resolves (it is still in the shadow).
	for i := 0; i < 10; i++ {
		addr := uint32(i)<<8 | 0x0A000000
		if _, ok := a.Lookup(addr, 0); !ok {
			t.Fatalf("rule %d unreachable mid-migration", i)
		}
	}
	a.Advance(end)
	if a.Metrics().ExposedRuleSeconds != 0 {
		t.Error("safe migration must not expose rules")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := newMetrics()
	m.Violations = 2
	for _, ms := range []float64{1, 2, 3, 4} {
		m.observeLatency(time.Duration(ms*1e6), true)
	}
	if got := m.ViolationRate(); got != 0.5 {
		t.Errorf("ViolationRate = %v", got)
	}
	if got := m.GuaranteedCount(); got != 4 {
		t.Errorf("GuaranteedCount = %v", got)
	}
	if got := m.GuaranteedQuantileMS(1); got < 3.8 || got > 4.2 {
		t.Errorf("GuaranteedQuantileMS(1) = %v, want ≈4", got)
	}
	snap := m.Snapshot()
	m.observeLatency(time.Millisecond, true)
	if snap.GuaranteedCount() != 4 || m.GuaranteedCount() != 5 {
		t.Error("Snapshot must deep-copy the histograms")
	}
	if got := (Metrics{}).ViolationRate(); got != 0 {
		t.Errorf("empty ViolationRate = %v", got)
	}
	m.Migrations = 10
	if got := m.MigrationsPerSecond(2 * time.Second); got != 5 {
		t.Errorf("MigrationsPerSecond = %v", got)
	}
	if got := m.MigrationsPerSecond(0); got != 0 {
		t.Errorf("MigrationsPerSecond(0) = %v", got)
	}
}
