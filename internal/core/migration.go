package core

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// This file implements the Rule Manager (paper §5): the periodic prediction
// tick, the migration trigger, and the four-step migration workflow of
// Fig. 7 (copy → optimize → insert into main → empty shadow).
//
// Migration runs in the background through the ASIC SDK's bulk interface
// and does not occupy the control-plane processor that services guaranteed
// insertions; its cost manifests as the window during which the snapshotted
// shadow entries still occupy shadow capacity.

// MigrationStep names one of the four Fig.-7 migration steps. Fault
// injection interrupts a migration at a step boundary; the recovery path
// (Reconcile) must restore the §4.2 invariants from whatever partial state
// the interruption left behind.
type MigrationStep uint8

// The four Fig.-7 steps.
const (
	// StepCopy is step 1: snapshot the shadow table for the background copy.
	StepCopy MigrationStep = iota
	// StepOptimize is step 2: merge fragments back into their originals.
	StepOptimize
	// StepInsert is step 3: write the optimized rules into the main table.
	StepInsert
	// StepEmpty is step 4: remove the migrated copies from the shadow table.
	StepEmpty
)

func (s MigrationStep) String() string {
	switch s {
	case StepCopy:
		return "copy"
	case StepOptimize:
		return "optimize"
	case StepInsert:
		return "insert"
	case StepEmpty:
		return "empty"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// interruptAt consults the fault hook for a step boundary.
func (a *Agent) interruptAt(step MigrationStep, now time.Duration) bool {
	return a.cfg.MigrationInterrupt != nil && a.cfg.MigrationInterrupt(step, now)
}

// SetMigrationInterrupt installs (or, with nil, removes) the migration
// fault hook after construction. Fault-injection harnesses only.
func (a *Agent) SetMigrationInterrupt(h func(step MigrationStep, now time.Duration) bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg.MigrationInterrupt = h
}

// AbortMigration cancels an in-flight migration before its background copy
// completes. Nothing physical has happened yet (steps 3–4 apply at
// completion), so the abort is clean: the snapshotted rules simply stay in
// the shadow table and the next Tick may start over. Reports whether a
// migration was actually aborted.
func (a *Agent) AbortMigration(now time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.migr == nil || now >= a.migr.completeAt {
		// Nothing in flight (or the copy already finished; let Advance
		// apply it rather than discarding completed work).
		return false
	}
	a.migr = nil
	a.metrics.MigrationAborts++
	a.o.event(now, obs.EvMigAbort, StepCopy, 0, 0, 0)
	return true
}

// Tick drives the Rule Manager once per cfg.TickInterval: it feeds the
// predictor with the arrivals of the closing interval and, when the
// (corrected) forecast indicates the shadow table would overflow before the
// next tick, starts a migration. It returns the completion time of a
// migration started by this call, or zero.
func (a *Agent) Tick(now time.Duration) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	a.lastTick = now

	occ := a.shadow.Occupancy()
	var migrate bool
	switch a.cfg.Mode {
	case MigrationThreshold:
		// Hermes-SIMPLE (§8.5): occupancy crossing a fixed threshold.
		migrate = float64(occ) >= a.cfg.Threshold*float64(a.shadowSize) && occ > 0
	default:
		// Predictive Hermes (§5.1): forecast next-interval arrivals,
		// inflate with the corrector (or the self-tuning controller), and
		// migrate pre-emptively if the shadow would overflow.
		a.cfg.Predictor.Observe(float64(a.arrivals))
		predicted := a.cfg.Predictor.Predict()
		if a.tuner != nil {
			factor := a.tuner.observe(a.metrics.Violations + a.metrics.ShadowFull)
			predicted *= 1 + factor
		} else {
			predicted = a.cfg.Corrector.Correct(predicted)
		}
		migrate = float64(occ)+predicted >= float64(a.shadowSize) && occ > 0
	}
	a.arrivals = 0

	if a.soft != nil {
		// Cached mode: every tick is also a cache-manager rebalance pass
		// (promotion/demotion under the configured policy, cover hygiene).
		a.rebalanceLocked(now)
	}

	if !migrate || a.migr != nil {
		return 0
	}
	return a.startMigration(now)
}

// ForceMigration starts a migration immediately regardless of prediction
// (used by ModQoSConfig and by tests). Returns the completion time, or zero
// if there was nothing to migrate or one is already running.
func (a *Agent) ForceMigration(now time.Duration) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	if a.migr != nil || a.shadow.Occupancy() == 0 {
		return 0
	}
	return a.startMigration(now)
}

// startMigration snapshots the shadow table and kicks off the background
// copy. Steps 1–2 of Fig. 7 (copy and optimize) happen logically here; the
// physical writes complete at the returned time, when Advance applies steps
// 3–4.
func (a *Agent) startMigration(now time.Duration) time.Duration {
	var originals []classifier.RuleID
	entries := 0
	for id, st := range a.rules {
		if st.place == placeShadow {
			originals = append(originals, id)
			entries += len(st.partIDs)
		}
	}
	if len(originals) == 0 {
		return 0
	}
	sortRuleIDs(originals)

	// A crash while the snapshot is taken (step 1) loses the copy before
	// anything physical happened: the migration simply never starts.
	if a.interruptAt(StepCopy, now) {
		a.metrics.MigrationAborts++
		a.o.event(now, obs.EvMigAbort, StepCopy, 0, uint64(len(originals)), 0)
		return 0
	}
	a.o.event(now, obs.EvMigStep, StepCopy, 0, uint64(len(originals)), uint64(entries))

	// Optimize (step 2): rules migrate as their un-fragmented originals —
	// inside a single table the TCAM disambiguates overlaps by priority,
	// so fragments collapse back to one entry each. The ablation flag
	// keeps fragments instead.
	migrated := len(originals)
	if a.cfg.DisableMergeOptimization {
		migrated = entries
	}

	// A crash during the optimize pass (step 2) likewise aborts cleanly:
	// merging runs on the snapshot, off the live tables.
	if a.interruptAt(StepOptimize, now) {
		a.metrics.MigrationAborts++
		a.o.event(now, obs.EvMigAbort, StepOptimize, 0, uint64(migrated), 0)
		return 0
	}
	a.o.event(now, obs.EvMigStep, StepOptimize, 0, uint64(migrated), 0)

	// Choose the cheaper strategy: per-rule incremental inserts versus a
	// bulk rewrite of the merged main table.
	prof := a.sw.Profile()
	mainOcc := a.main.Occupancy()
	incremental := time.Duration(0)
	for i := 0; i < migrated; i++ {
		// Pessimistic: each insert shifts half the (growing) main table.
		incremental += prof.InsertLatency((mainOcc + i) / 2)
	}
	bulk := time.Duration(mainOcc+migrated) * prof.BulkWriteLatency
	cost := incremental
	if bulk < cost {
		cost = bulk
	}

	m := &migration{
		startedAt:  now,
		completeAt: now + cost,
		originals:  originals,
		naive:      a.cfg.NaiveMigration,
	}
	if m.naive {
		// Ablation: empty the shadow *first* (violating the step ordering
		// §5.2 prescribes) and account the window during which the rules
		// exist in neither table.
		for _, id := range originals {
			st := a.rules[id]
			for _, pid := range st.partIDs {
				if c, ok := a.shadow.Delete(pid); ok {
					a.sw.Submit(now, c)
				}
			}
		}
		a.metrics.ExposedRuleSeconds += float64(len(originals)) * cost.Seconds()
	}
	a.migr = m
	a.metrics.Migrations++
	a.metrics.MigratedRules += migrated
	a.metrics.MigrationBusy += cost
	a.o.recordMigration(cost, migrated)
	return m.completeAt
}

// Advance applies any migration whose background copy has finished by now.
// Every public mutator calls (the unexported) advance, and the simulator
// also schedules an explicit call at the completion time.
func (a *Agent) Advance(now time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
}

func (a *Agent) advance(now time.Duration) {
	if a.migr == nil || now < a.migr.completeAt {
		return
	}
	m := a.migr
	a.migr = nil
	done := m.completeAt

	// Step 3: write the optimized rules into the main table. Rules deleted
	// while the copy was in flight are skipped. A fault hook may cut the
	// apply off at a step boundary, modeling a crash mid-migration; the
	// partial state it leaves (rules moved so far, orphaned shadow copies)
	// is exactly what Reconcile repairs.
	interrupted := false
	interruptedAt := StepInsert
	var migrated []classifier.Rule
	for _, id := range m.originals {
		if a.interruptAt(StepInsert, done) {
			// Crash before this rule's main-table write: it and every
			// later original stay in the shadow table.
			interrupted = true
			break
		}
		st, ok := a.rules[id]
		if !ok || st.place != placeShadow {
			continue
		}
		if a.cfg.DisableMergeOptimization {
			// Fragments move as-is.
			moved := make([]classifier.RuleID, 0, len(st.partIDs))
			for _, pid := range st.partIDs {
				frag, ok := a.shadow.Get(pid)
				if !ok && m.naive {
					frag, ok = a.fragFromPartition(id, pid)
				}
				if !ok {
					continue
				}
				if _, err := a.main.InsertRanked(frag, st.seq); err != nil {
					continue // main full: fragment stays in shadow
				}
				a.mainIndex.Insert(frag)
				migrated = append(migrated, frag)
				moved = append(moved, pid)
			}
			st.place = placeMain
			st.partIDs = moved
			if !m.naive {
				if a.interruptAt(StepEmpty, done) {
					// Crash between the main writes and the shadow erase:
					// every moved fragment is orphaned in the shadow slice
					// until Reconcile deletes the stale copies.
					interrupted = true
					interruptedAt = StepEmpty
					break
				}
				for _, pid := range moved {
					a.shadow.Delete(pid)
				}
			}
			continue
		}
		// Merged path: install the original, drop the fragments.
		if _, err := a.main.InsertRanked(st.original, st.seq); err != nil {
			continue // main full: leave the rule in the shadow table
		}
		a.mainIndex.Insert(st.original)
		migrated = append(migrated, st.original)
		stale := st.partIDs
		a.pmap.Remove(id)
		st.place = placeMain
		st.partIDs = []classifier.RuleID{id}
		if !m.naive {
			if a.interruptAt(StepEmpty, done) {
				// Crash between the main write and the shadow erase: the
				// fragments are orphaned in the shadow slice until
				// Reconcile deletes the stale copies.
				interrupted = true
				interruptedAt = StepEmpty
				break
			}
			for _, pid := range stale {
				a.shadow.Delete(pid)
			}
		}
	}
	if interrupted {
		a.metrics.MigrationInterrupts++
		a.needsReconcile = true
		a.o.event(done, obs.EvMigInterrupt, interruptedAt, 0, uint64(len(migrated)), 0)
		return
	}
	a.o.event(done, obs.EvMigStep, StepInsert, 0, uint64(len(migrated)), uint64(done-m.startedAt))
	a.o.event(done, obs.EvMigStep, StepEmpty, 0, uint64(len(migrated)), 0)
	a.o.event(done, obs.EvMigDone, 0, 0, uint64(len(migrated)), uint64(done-m.startedAt))

	// Step 4 happened per-rule above (the shadow copies were removed only
	// after their main-table counterparts were written).
	//
	// Finally, re-partition the rules that arrived in the shadow table
	// while the migration ran: they were cut against the pre-migration
	// main table and may now be shadowed-over by freshly migrated
	// higher-priority rules. The insert-time invariant means only the
	// rules migrated in *this* round can break a remaining shadow rule,
	// so only they need checking — not the whole main index.
	if len(migrated) == 0 {
		return
	}
	var remaining []classifier.RuleID
	for id, st := range a.rules {
		if st.place == placeShadow {
			remaining = append(remaining, id)
		}
	}
	sortRuleIDs(remaining)
	for _, id := range remaining {
		st := a.rules[id]
		if a.shadowRuleCompatibleWith(st, migrated) {
			continue
		}
		a.reinstallShadowRule(done, st)
	}
}

// fragFromPartition reconstructs a fragment rule from the partition map
// when the naive-migration ablation already wiped the shadow copy.
func (a *Agent) fragFromPartition(original, pid classifier.RuleID) (classifier.Rule, bool) {
	p, ok := a.pmap.Lookup(original)
	if !ok {
		if st, ok2 := a.rules[original]; ok2 && st.original.ID == pid {
			return st.original, true
		}
		return classifier.Rule{}, false
	}
	for _, f := range p.Parts {
		if f.ID == pid {
			return f, true
		}
	}
	return classifier.Rule{}, false
}

// shadowRuleCompatibleWith reports whether a shadow rule's fragments stay
// disjoint from every listed (newly migrated) main rule that would beat it.
func (a *Agent) shadowRuleCompatibleWith(st *ruleState, added []classifier.Rule) bool {
	frags := a.shadowFragments(st)
	for _, mr := range added {
		if mr.ID == st.original.ID {
			continue
		}
		if !mr.Match.Overlaps(st.original.Match) {
			continue
		}
		if !a.beats(mr, st.original.Priority, st.seq) {
			continue
		}
		for _, fm := range frags {
			if fm.Overlaps(mr.Match) {
				return false
			}
		}
	}
	return true
}

// shadowFragments returns the match regions of a shadow rule's physical
// fragments without scanning the shadow table: cut rules keep their
// fragment set in the partition map, uncut rules are their original match.
func (a *Agent) shadowFragments(st *ruleState) []classifier.Match {
	if p, ok := a.pmap.Lookup(st.original.ID); ok {
		out := make([]classifier.Match, 0, len(p.Parts))
		for _, f := range p.Parts {
			out = append(out, f.Match)
		}
		return out
	}
	return []classifier.Match{st.original.Match}
}

// MigrationEndsAt reports the completion time of the in-flight migration
// (zero when idle).
func (a *Agent) MigrationEndsAt() time.Duration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.migr == nil {
		return 0
	}
	return a.migr.completeAt
}
