package core

// Deterministic long-run equivalence check: replays fixed-seed random
// workloads (insert/delete/tick/migrate) and verifies after every operation
// that the carved shadow+main pipeline answers exactly like the reference
// monolithic table. Complements the time-seeded quick.Check variant with
// reproducible coverage.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
)

func TestEquivalenceFixedSeeds(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		if !runSeq(t, seed, false) {
			t.Logf("seed %d fails; replaying verbosely", seed)
			runSeq(t, seed, true)
			t.FailNow()
		}
	}
}

func runSeq(t *testing.T, seed int64, verbose bool) bool {
	r := rand.New(rand.NewSource(seed))
	a := newTestAgent(t, Config{DisableRateLimit: true})
	now := time.Duration(0)
	live := []classifier.RuleID{}
	nextID := classifier.RuleID(1)
	log := func(format string, args ...interface{}) {
		if verbose {
			t.Logf(format, args...)
		}
	}
	check := func(op int) bool {
		rr := rand.New(rand.NewSource(seed*1000 + int64(op)))
		logical := a.LogicalRules()
		for k := 0; k < 300; k++ {
			var dst uint32
			if len(logical) > 0 && rr.Intn(4) != 0 {
				pick := logical[rr.Intn(len(logical))].Match.Dst
				dst = pick.Addr | (rr.Uint32() & ^pick.Mask())
			} else {
				dst = rr.Uint32()
			}
			want, wok := a.LogicalLookup(dst, 0)
			got, gok := a.Lookup(dst, 0)
			if wok != gok || (wok && got.Action != want.Action) {
				if verbose {
					t.Logf("op %d: pkt %08x got %v(%v) want %v(%v)", op, dst, got, gok, want, wok)
					t.Logf("shadow rules: %v", a.shadow.Rules())
					t.Logf("main rules: %v", a.main.Rules())
					t.Logf("logical: %v", logical)
					for id, st := range a.rules {
						t.Logf("state[%d]: seq=%d place=%d parts=%v", id, st.seq, st.place, st.partIDs)
					}
				}
				return false
			}
		}
		return true
	}
	for op := 0; op < 120; op++ {
		now += time.Duration(r.Intn(8)+1) * time.Millisecond
		switch x := r.Intn(10); {
		case x < 6:
			rule := classifier.Rule{
				ID:       nextID,
				Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(r.Uint32()&0xFFFF), uint8(16+r.Intn(17)))),
				Priority: int32(r.Intn(50)),
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(nextID)},
			}
			res, err := a.Insert(now, rule)
			if err != nil {
				t.Logf("insert: %v", err)
				return false
			}
			log("op %d t=%v INSERT %v -> %v", op, now, rule, res.Path)
			live = append(live, nextID)
			nextID++
		case x < 8 && len(live) > 0:
			i := r.Intn(len(live))
			if _, err := a.Delete(now, live[i]); err != nil {
				t.Logf("delete: %v", err)
				return false
			}
			log("op %d t=%v DELETE %d", op, now, live[i])
			live = append(live[:i], live[i+1:]...)
		case x == 8:
			if end := a.Tick(now); end != 0 && r.Intn(2) == 0 {
				now = end
				a.Advance(now)
				log("op %d t=%v TICK->MIGRATE done", op, now)
			} else {
				log("op %d t=%v TICK", op, now)
			}
		default:
			if end := a.ForceMigration(now); end != 0 && r.Intn(2) == 0 {
				now = end
				a.Advance(now)
				log("op %d t=%v MIGRATE done", op, now)
			} else {
				log("op %d t=%v MIGRATE started (in flight)", op, now)
			}
		}
		if !check(op) {
			if !verbose {
				fmt.Printf("seed %d fails at op %d\n", seed, op)
			}
			return false
		}
	}
	return true
}
