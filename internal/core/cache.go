package core

import (
	"fmt"
	"sort"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
	"hermes/internal/rulecache"
)

// This file wires the flow-driven rule caching hierarchy (internal/rulecache,
// DESIGN.md §16) into the agent. In cached mode (Config.Cache) the carved
// TCAM becomes the top tier of a two-tier pipeline:
//
//   - The software tier (a.soft) is authoritative: every controller rule
//     lives there with its (priority, seq) tie-break metadata, so a software
//     lookup alone always yields the single-table-oracle answer.
//   - The hardware tier holds the popular subset ("residents", installed
//     through the regular Gate Keeper paths) plus *cover* entries: rules at
//     a software-only rule's (priority, seq) spanning exactly its match,
//     whose ActionGotoNext punts matching packets to the software tier.
//
// Safety invariant (the eviction-safety argument): a hardware-tier answer
// with a real rule (ID < coverIDBase) is trusted iff every software-only
// rule h that overlaps-and-beats some resident is shielded by covers
// spanning h's whole match at h's (priority, seq). Then a real hardware
// winner r beat every cover that matched the packet, hence beats every
// shielded software-only rule matching it; an unshielded software-only rule
// beats no resident it overlaps, so r beats it too — r is the global
// winner. Covers that outlive their need are semantically harmless (the
// punt just re-resolves in the authoritative tier), which lets cover
// cleanup run lazily in the rebalance pass instead of on every mutation.
//
// classifier.CoverFor guarantees a cover set's union is exactly the shielded
// rule's match regardless of the dependency set, so an existing cover set
// never needs widening when the resident set changes.

// coverIDBase is the first rule ID minted for cover entries. It sits above
// partIDBase so fragment IDs (minted from 1<<40 upward) and controller IDs
// can never collide with it: a physical entry with ID ≥ coverIDBase is a
// cover, everything below is a real rule or fragment.
const coverIDBase classifier.RuleID = 1 << 41

// noteRuleAdded / noteRuleRemoved keep the per-rule hit-stats records in
// step with the controller-visible rule set (TrackHits and cached modes).
func (a *Agent) noteRuleAdded(id classifier.RuleID) {
	if a.cmgr != nil {
		//lint:ignore hotpathalloc first-sight stats record; amortized over the rule's lifetime and nil-guarded off when hit tracking is disabled
		a.cmgr.Ensure(id)
	}
}

func (a *Agent) noteRuleRemoved(id classifier.RuleID) {
	if a.cmgr != nil {
		a.cmgr.Forget(id)
	}
}

// recordPlainHit feeds the per-rule hit counter on the uncached read slow
// path (TrackHits without a cache tier). Fragment hits are attributed to
// their original rule.
func (a *Agent) recordPlainHit(r classifier.Rule, ok bool) {
	if !ok || a.cmgr == nil {
		return
	}
	id := r.ID
	if o, isFrag := a.pmap.OriginalOf(id); isFrag {
		id = o
	}
	if s := a.cmgr.Stats(id); s != nil {
		s.RecordHit(a.cmgr.EpochNow())
	}
}

// finishCachedLookup completes a cached-mode lookup from the hardware
// tier's verdict on the read slow path (read lock held): real hits return
// directly, cover hits and misses continue into the software tier.
func (a *Agent) finishCachedLookup(dst, src uint32, r classifier.Rule, ok bool) (classifier.Rule, bool) {
	if ok && r.ID < coverIDBase {
		a.cmgr.SampleHW(dst, src, r.ID)
		return r, true
	}
	if sr, sok := a.soft.Lookup(dst, src); sok {
		if a.cmgr.SampleSoft(dst, src) {
			if s := a.cmgr.Stats(sr.ID); s != nil {
				s.RecordHit(a.cmgr.EpochNow())
			}
		}
		return sr, true
	}
	a.cmgr.RecordMiss()
	return classifier.Rule{}, false
}

// buildHitMap maps every physical entry ID (and, in cached mode, every
// software rule ID) to its original rule's stats record, so the published
// snapshot can attribute hits without per-lookup indirection. Requires at
// least the read lock.
func (a *Agent) buildHitMap() map[classifier.RuleID]*rulecache.RuleStats {
	m := make(map[classifier.RuleID]*rulecache.RuleStats,
		a.shadow.Occupancy()+a.main.Occupancy())
	add := func(entryID classifier.RuleID) {
		if entryID >= coverIDBase {
			return // cover punts are attributed to the soft winner instead
		}
		orig := entryID
		if o, isFrag := a.pmap.OriginalOf(entryID); isFrag {
			orig = o
		}
		if s := a.cmgr.Stats(orig); s != nil {
			m[entryID] = s
		}
	}
	for _, e := range a.shadow.Rules() {
		add(e.ID)
	}
	for _, e := range a.main.Rules() {
		add(e.ID)
	}
	if a.soft != nil {
		for _, r := range a.soft.Rules() {
			if s := a.cmgr.Stats(r.ID); s != nil {
				m[r.ID] = s
			}
		}
	}
	return m
}

// --- cached-mode mutation paths ------------------------------------------

// insertCached installs a rule into the authoritative software tier and
// lets the cache manager decide its hardware fate: promote immediately
// while capacity lasts, otherwise shield it with covers if any resident it
// beats would mask it. The returned Result reflects the software install —
// the guaranteed, constant-cost action the controller observed.
func (a *Agent) insertCached(now time.Duration, r classifier.Rule) (Result, error) {
	a.advance(now)
	if r.ID >= partIDBase {
		return Result{}, fmt.Errorf("%w: %d", ErrReservedID, r.ID)
	}
	if a.soft.Contains(r.ID) {
		return Result{}, fmt.Errorf("%w: %d", ErrDuplicateRule, r.ID)
	}
	a.metrics.Inserts++
	seq := a.nextSeq
	a.nextSeq++
	cost := a.soft.Insert(r, seq)
	a.cmgr.Ensure(r.ID)
	a.cmgr.RecordSetup(cost)
	a.trackLogical(r)

	// Promotion re-installs the rule's ID into the hardware tier, which is
	// only safe against physically consistent tables: while a fault has the
	// agent marked for Reconcile, the rule stays software-only (covers use
	// fresh never-reused IDs, so shielding stays safe even then).
	if a.residentCount < a.cacheCfg.Capacity && !a.needsReconcile {
		if a.promoteLocked(now, r.ID) != nil {
			a.ensureCoversFor(now, r, seq)
		}
	} else {
		a.ensureCoversFor(now, r, seq)
	}

	res := Result{
		Path:       PathSoft,
		Latency:    cost,
		Completed:  now + cost,
		Guaranteed: true,
	}
	a.o.event(now, obs.EvAdmit, 0, uint64(r.ID), 0, uint64(cost))
	a.observeGuaranteed(now, res)
	return res, nil
}

// deleteCached removes a rule from both tiers.
func (a *Agent) deleteCached(now time.Duration, id classifier.RuleID) (Result, error) {
	a.advance(now)
	if !a.soft.Contains(id) {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownRule, id)
	}
	a.metrics.Deletes++
	var total time.Duration
	completed := now
	if st, resident := a.rules[id]; resident {
		dst := st.original.Match.Dst
		t, c := a.removePhysical(now, st)
		total += t
		if c > completed {
			completed = c
		}
		delete(a.rules, id)
		a.recycleRuleState(st)
		a.residentIndex.Delete(dst, id)
		a.residentCount--
	}
	// Covers shielding this rule are now pointless; covers *of other rules*
	// that this rule's residency necessitated are cleaned up lazily by the
	// next rebalance (stale covers are semantically harmless).
	a.removeCoversFor(now, id)
	cost, _ := a.soft.Delete(id)
	total += cost
	if now+cost > completed {
		completed = now + cost
	}
	a.cmgr.Forget(id)
	a.untrackLogical(id)
	a.o.recordDelete(total)
	a.o.event(now, obs.EvDelete, 0, uint64(id), 0, uint64(total))
	return Result{Latency: total, Completed: completed, Guaranteed: true}, nil
}

// modifyCached updates a live rule in cached mode: action-only changes
// rewrite both tiers in place (covers are unaffected — their action is
// always the punt); priority or match changes become delete + insert.
func (a *Agent) modifyCached(now time.Duration, r classifier.Rule) (Result, error) {
	a.advance(now)
	old, _, ok := a.soft.Get(r.ID)
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownRule, r.ID)
	}
	a.metrics.Modifies++
	a.o.event(now, obs.EvModify, 0, uint64(r.ID), 0, 0)
	if old.Priority == r.Priority && old.Match == r.Match {
		total, _ := a.soft.UpdateAction(r.ID, r.Action)
		completed := now + total
		if st, resident := a.rules[r.ID]; resident {
			tbl := a.shadow
			if st.place == placeMain {
				tbl = a.main
			}
			for _, pid := range st.partIDs {
				if cost, ok2 := tbl.ModifyAction(pid, r.Action); ok2 {
					total += cost
					completed = a.sw.Submit(now, cost)
				}
			}
			st.original.Action = r.Action
			if st.place == placeMain {
				// Keep the overlap index in sync.
				a.mainIndex.Delete(r.Match.Dst, r.ID)
				a.mainIndex.Insert(st.original)
			}
			a.residentIndex.Update(r.Match.Dst, st.original)
		}
		upd := old
		upd.Action = r.Action
		a.retrackLogical(upd)
		a.o.recordModify(total)
		return Result{Latency: total, Completed: completed, Guaranteed: true}, nil
	}
	// Priority/match change: delete + insert.
	if _, err := a.deleteCached(now, r.ID); err != nil {
		return Result{}, err
	}
	return a.insertCached(now, r)
}

// --- promotion / demotion ------------------------------------------------

// promoteLocked installs a software rule into the hardware tier through the
// regular Gate Keeper routing (bypass/shadow/main/redundant), under its
// original seq so tie-breaking is preserved. Requires a.mu held
// exclusively.
func (a *Agent) promoteLocked(now time.Duration, id classifier.RuleID) error {
	r, seq, ok := a.soft.Get(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRule, id)
	}
	if _, resident := a.rules[id]; resident {
		return nil
	}
	// The rule's own covers become redundant the moment it is resident —
	// drop them first so it does not partition against them.
	a.removeCoversFor(now, id)
	a.promoting = true
	_, err := a.insertSeq(now, r, seq)
	a.promoting = false
	if err != nil {
		// Hardware full: restore the shield and report.
		a.ensureCoversFor(now, r, seq)
		return err
	}
	a.residentIndex.Insert(r)
	a.residentCount++
	a.cmgr.NotePromotion()
	// Software-only rules that beat the new resident now need shielding.
	a.shieldSoftOnlyOverlapping(now, r.Match)
	return nil
}

// demoteLocked evicts a resident rule from the hardware tier (it stays
// authoritative in the software tier) and shields it with covers if it
// still beats some resident. Requires a.mu held exclusively.
func (a *Agent) demoteLocked(now time.Duration, id classifier.RuleID) {
	st, resident := a.rules[id]
	if !resident {
		return
	}
	r, seq, ok := a.soft.Get(id)
	if !ok {
		return // not a controller rule; never demote covers this way
	}
	dst := st.original.Match.Dst
	a.removePhysical(now, st)
	delete(a.rules, id)
	a.recycleRuleState(st)
	a.residentIndex.Delete(dst, id)
	a.residentCount--
	a.cmgr.NoteDemotion()
	a.ensureCoversFor(now, r, seq)
}

// --- cover maintenance ---------------------------------------------------

// coversNeeded reports whether software-only rule h (at seq) overlaps and
// beats at least one hardware-resident rule — the condition under which an
// unshielded h would be masked by the hardware tier.
func (a *Agent) coversNeeded(h classifier.Rule, seq uint64) bool {
	return a.residentIndex.OverlapsWhere(h.Match, func(res classifier.Rule) bool {
		return !a.beats(res, h.Priority, seq)
	})
}

// ensureCoversFor shields a software-only rule with cover entries when it
// needs them and has none. An existing cover set always spans the rule's
// whole match (CoverFor's invariant), so it never needs widening.
func (a *Agent) ensureCoversFor(now time.Duration, h classifier.Rule, seq uint64) {
	if _, resident := a.rules[h.ID]; resident {
		return
	}
	if len(a.covers[h.ID]) > 0 {
		return
	}
	if !a.coversNeeded(h, seq) {
		return
	}
	a.installCovers(now, h, seq)
}

// shieldSoftOnlyOverlapping ensures covers for every software-only rule
// overlapping m (called after a new resident appears inside m).
func (a *Agent) shieldSoftOnlyOverlapping(now time.Duration, m classifier.Match) {
	over := a.soft.Overlapping(m)
	sort.Slice(over, func(i, j int) bool { return over[i].ID < over[j].ID })
	for _, h := range over {
		if _, resident := a.rules[h.ID]; resident {
			continue
		}
		if _, seq, ok := a.soft.Get(h.ID); ok {
			a.ensureCoversFor(now, h, seq)
		}
	}
}

// installCovers writes h's cover entries into the main table: pieces from
// classifier.CoverFor aligned to the beaten residents (capped at
// MaxCoverParts, falling back to one exact-match cover), each at h's
// (priority, seq) with the punt action. If the main table cannot hold the
// covers, the beaten residents are demoted instead — with them gone, h no
// longer needs a shield at all.
func (a *Agent) installCovers(now time.Duration, h classifier.Rule, seq uint64) {
	var deps []classifier.Rule
	for _, res := range a.residentIndex.Overlapping(h.Match) {
		if !a.beats(res, h.Priority, seq) {
			deps = append(deps, res)
		}
	}
	regions := classifier.CoverFor(h, deps)
	if len(regions) > a.cacheCfg.MaxCoverParts {
		regions = []classifier.Match{h.Match}
	}
	installed := make([]classifier.RuleID, 0, len(regions))
	for _, m := range regions {
		cid := a.nextCoverID
		cover := classifier.Rule{
			ID:       cid,
			Match:    m,
			Priority: h.Priority,
			Action:   classifier.Action{Type: classifier.ActionGotoNext},
		}
		cost, err := a.main.InsertRanked(cover, seq)
		if err != nil {
			// Main table full. Unwind the partial shield, then make the
			// shield unnecessary by demoting every resident h beats. The
			// recursion terminates: each demotion strictly shrinks the
			// resident set.
			a.removeCoverEntries(now, installed)
			a.cmgr.NoteCoverRemovals(len(installed))
			for _, d := range deps {
				a.demoteLocked(now, d.ID)
			}
			return
		}
		a.nextCoverID++
		a.sw.Submit(now, cost)
		a.mainIndex.Insert(cover)
		a.rules[cid] = &ruleState{original: cover, seq: seq, place: placeMain, partIDs: []classifier.RuleID{cid}}
		// Shadow rules the cover beats must be re-cut against it, exactly
		// as for any main-table insert, or shadow-first lookup would let
		// them mask the punt.
		a.repairShadowAfterMainInsert(now, cover)
		installed = append(installed, cid)
	}
	a.covers[h.ID] = installed
	a.cmgr.NoteCoverInstalls(len(installed))
}

// removeCoversFor drops the cover entries shielding a rule.
func (a *Agent) removeCoversFor(now time.Duration, owner classifier.RuleID) {
	ids := a.covers[owner]
	if len(ids) == 0 {
		return
	}
	a.removeCoverEntries(now, ids)
	a.cmgr.NoteCoverRemovals(len(ids))
	delete(a.covers, owner)
}

func (a *Agent) removeCoverEntries(now time.Duration, ids []classifier.RuleID) {
	for _, cid := range ids {
		st, ok := a.rules[cid]
		if !ok {
			continue
		}
		a.removePhysical(now, st)
		delete(a.rules, cid)
		a.recycleRuleState(st)
	}
}

// --- rebalance -----------------------------------------------------------

// rebalanceLocked is the cache manager's periodic pass (driven by Tick):
// advance the recency epoch, rank every rule under the configured policy,
// demote residents that fell out of the top Capacity, promote the rules
// that rose into it (bounded by MaxMovesPerRebalance), and run cover
// hygiene — install shields that became necessary, drop ones that no
// longer are. Requires a.mu held exclusively.
func (a *Agent) rebalanceLocked(now time.Duration) {
	if a.needsReconcile {
		// Promotions re-install existing IDs into hardware, unsafe while
		// the physical tables may have diverged (orphans from a cut
		// migration). The pass after Reconcile catches up.
		return
	}
	epoch := a.cmgr.AdvanceEpoch()
	a.cmgr.FoldSamples(epoch, a.originalOf)
	rules := a.soft.Rules() // ID order: deterministic ranking input

	type cand struct {
		id    classifier.RuleID
		score float64
	}
	cands := make([]cand, 0, len(rules))
	for _, r := range rules {
		slots := 1
		if st, resident := a.rules[r.ID]; resident {
			if n := len(st.partIDs); n > 0 {
				slots = n
			}
		} else if n := len(a.covers[r.ID]); n > 0 {
			slots = n
		}
		cands = append(cands, cand{id: r.ID, score: a.cmgr.Score(a.cmgr.Stats(r.ID), slots)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	capacity := a.cacheCfg.Capacity
	want := make(map[classifier.RuleID]bool, capacity)
	for i := 0; i < len(cands) && i < capacity; i++ {
		want[cands[i].id] = true
	}

	moves := 0
	// Demotions first (they free capacity), in ID order for determinism.
	for _, r := range rules {
		if moves >= a.cacheCfg.MaxMovesPerRebalance {
			break
		}
		if _, resident := a.rules[r.ID]; resident && !want[r.ID] {
			a.demoteLocked(now, r.ID)
			moves++
		}
	}
	// Promotions in score order, best first.
	for _, c := range cands {
		if moves >= a.cacheCfg.MaxMovesPerRebalance || !want[c.id] {
			break // cands is sorted: past the capacity cut, nothing is wanted
		}
		if _, resident := a.rules[c.id]; resident {
			continue
		}
		if a.residentCount >= capacity {
			break
		}
		a.promoteLocked(now, c.id)
		moves++ // failed promotions still consumed hardware work
	}

	// Cover hygiene: resident-set changes (including plain deletes since
	// the last pass) may have stranded stale covers or left new
	// software-only winners unshielded.
	for _, r := range rules {
		if _, resident := a.rules[r.ID]; resident {
			continue
		}
		_, seq, ok := a.soft.Get(r.ID)
		if !ok {
			continue // deleted during this pass
		}
		needed := a.coversNeeded(r, seq)
		if needed && len(a.covers[r.ID]) == 0 {
			a.installCovers(now, r, seq)
		} else if !needed && len(a.covers[r.ID]) > 0 {
			a.removeCoversFor(now, r.ID)
		}
	}
	a.refreshViewLocked()
}

// --- public surface ------------------------------------------------------

// Cached reports whether the agent runs the two-tier caching hierarchy.
func (a *Agent) Cached() bool { return a.soft != nil }

// CacheStats returns the caching hierarchy's aggregate metrics (the zero
// Snapshot when neither Config.Cache nor Config.TrackHits is set).
func (a *Agent) CacheStats() rulecache.Snapshot {
	if a.cmgr == nil {
		return rulecache.Snapshot{}
	}
	return a.cmgr.Snapshot()
}

// CacheResident reports how many controller rules are currently resident
// in the hardware tier (cached mode; 0 otherwise).
func (a *Agent) CacheResident() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.residentCount
}

// originalOf maps a physical entry ID (which may be a partition fragment)
// to its original rule ID, for sample-ring folds.
func (a *Agent) originalOf(id classifier.RuleID) classifier.RuleID {
	if o, isFrag := a.pmap.OriginalOf(id); isFrag {
		return o
	}
	return id
}

// RuleHits returns the recorded hit count for a rule (Config.TrackHits or
// cached mode; 0 otherwise). In cached mode it folds pending hardware-tier
// samples first, so it takes the exclusive lock.
func (a *Agent) RuleHits(id classifier.RuleID) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cmgr == nil {
		return 0
	}
	a.cmgr.FoldSamples(a.cmgr.EpochNow(), a.originalOf)
	if s := a.cmgr.Stats(id); s != nil {
		return s.Hits()
	}
	return 0
}

// Rebalance runs one promotion/demotion pass immediately (cached mode;
// normally driven by Tick). Exposed for tests and experiments that step
// virtual time themselves.
func (a *Agent) Rebalance(now time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	if a.soft != nil {
		a.rebalanceLocked(now)
	}
}

// RegisterCacheMetrics exposes the hierarchy's hermes_cache_* metrics on an
// obs registry (no-op when hit tracking is disabled).
func (a *Agent) RegisterCacheMetrics(reg *obs.Registry) {
	if a.cmgr != nil {
		a.cmgr.Register(reg)
	}
}
