package core

import (
	"testing"
	"time"
)

func testScheduler(t *testing.T) *EventScheduler {
	t.Helper()
	s, err := NewEventScheduler(DefaultEventBudgets(1000))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEventSchedulerAdmitsWithinBudget(t *testing.T) {
	s := testScheduler(t)
	done, ok := s.Admit(0, EventFlowMod)
	if !ok || done != 200*time.Microsecond {
		t.Fatalf("admit = %v, %v", done, ok)
	}
	// Second event queues behind the first on the shared CPU.
	done2, ok := s.Admit(0, EventPacketIn)
	if !ok || done2 != 300*time.Microsecond {
		t.Fatalf("queued admit = %v, %v", done2, ok)
	}
}

func TestEventSchedulerPolicesFloods(t *testing.T) {
	s := testScheduler(t)
	// A packet-in flood: budget is 50 burst + 500/s. In one instant only
	// the burst passes.
	admitted := 0
	for i := 0; i < 1000; i++ {
		if _, ok := s.Admit(0, EventPacketIn); ok {
			admitted++
		}
	}
	if admitted != 50 {
		t.Errorf("flood admitted %d, want burst 50", admitted)
	}
	// Flow-mods are unaffected by the packet-in flood's rejections.
	if _, ok := s.Admit(0, EventFlowMod); !ok {
		t.Error("flow-mod starved by packet-in flood")
	}
	stats := s.Stats()
	var pktIn ClassStats
	for _, cs := range stats {
		if cs.Class == EventPacketIn {
			pktIn = cs
		}
	}
	if pktIn.Admitted != 50 || pktIn.Rejected != 950 {
		t.Errorf("packet-in stats = %+v", pktIn)
	}
	if pktIn.CPUBusy != 50*100*time.Microsecond {
		t.Errorf("packet-in busy = %v", pktIn.CPUBusy)
	}
}

func TestEventSchedulerRefills(t *testing.T) {
	s := testScheduler(t)
	for i := 0; i < 50; i++ {
		s.Admit(0, EventPacketIn)
	}
	if _, ok := s.Admit(0, EventPacketIn); ok {
		t.Fatal("budget not exhausted")
	}
	// 100ms later, 50 tokens (500/s) accrued.
	if _, ok := s.Admit(100*time.Millisecond, EventPacketIn); !ok {
		t.Error("budget did not refill")
	}
}

func TestEventSchedulerUnknownClass(t *testing.T) {
	s := testScheduler(t)
	if _, ok := s.Admit(0, EventClass("mystery")); ok {
		t.Error("unknown class admitted")
	}
	found := false
	for _, cs := range s.Stats() {
		if cs.Class == "mystery" && cs.Rejected == 1 {
			found = true
		}
	}
	if !found {
		t.Error("unknown-class rejection not accounted")
	}
}

func TestEventSchedulerValidation(t *testing.T) {
	if _, err := NewEventScheduler(nil); err == nil {
		t.Error("empty budgets accepted")
	}
	if _, err := NewEventScheduler(map[EventClass]ClassBudget{
		EventStats: {Rate: 0, Cost: time.Millisecond},
	}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewEventScheduler(map[EventClass]ClassBudget{
		EventStats: {Rate: 10, Cost: 0},
	}); err == nil {
		t.Error("zero cost accepted")
	}
}

// TestEventSchedulerGuaranteePreserved is the §10 point: a stats+packet-in
// storm cannot delay admitted flow-mods beyond their own queue.
func TestEventSchedulerGuaranteePreserved(t *testing.T) {
	s := testScheduler(t)
	now := time.Duration(0)
	var worst time.Duration
	for i := 0; i < 200; i++ {
		// Background noise each millisecond.
		s.Admit(now, EventPacketIn)
		s.Admit(now, EventStats)
		done, ok := s.Admit(now, EventFlowMod)
		if !ok {
			t.Fatalf("flow-mod %d rejected", i)
		}
		if lat := done - now; lat > worst {
			worst = lat
		}
		now += time.Millisecond
	}
	// Worst case: one stats poll (2ms) plus a packet-in in front of the
	// flow-mod — bounded, not storm-dependent.
	if worst > 5*time.Millisecond {
		t.Errorf("flow-mod worst latency %v under noise", worst)
	}
}
