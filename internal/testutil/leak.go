// Package testutil holds shared test helpers; the flagship is the
// goroutine-leak checker applied to every test that spawns workers,
// readers or servers. Fleet workers, ofwire read loops and agent servers
// all promise "goroutines joined on Close" — this makes that promise a
// test failure instead of a code comment.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines alive at call time and registers
// a cleanup that fails the test if extra goroutines survive it. Call it
// first thing in the test so the cleanup runs after every other cleanup
// (t.Cleanup is LIFO) — i.e. after servers, clients and fleets have been
// closed.
//
// Teardown is asynchronous (connection handlers observe a closed socket,
// tickers observe a closed channel), so the check retries inside a grace
// window before declaring a leak.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := interestingGoroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) outlived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// leakedSince returns the stacks of interesting goroutines that were not
// alive at snapshot time.
func leakedSince(before map[string]string) []string {
	var leaked []string
	for id, stack := range interestingGoroutines() {
		if _, ok := before[id]; !ok {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}

// interestingGoroutines dumps every goroutine and filters out the runtime
// and testing machinery, keyed by the stable "goroutine N" header so a
// goroutine is identified across snapshots even as its stack moves.
func interestingGoroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || boringGoroutine(g) {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		// "goroutine 42 [chan receive]:" → key on the stable id part.
		id, _, _ := strings.Cut(header, "[")
		out[strings.TrimSpace(id)] = g
	}
	return out
}

// boringGoroutine reports goroutines owned by the runtime or the testing
// framework, which come and go outside the test's control.
func boringGoroutine(stack string) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*M).Run(",
		"testing.runFuzzing(",
		"testing.(*F).Fuzz(",
		"runtime.goexit0(",
		"runtime.gc",
		"runtime.MHeap",
		"signal.signal_recv",
		"created by runtime.",
		"runtime/pprof.",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
