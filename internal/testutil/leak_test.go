package testutil

import (
	"testing"
	"time"
)

func TestLeakDetection(t *testing.T) {
	before := interestingGoroutines()

	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := leakedSince(before)
	if len(leaked) != 1 {
		t.Fatalf("leakedSince reported %d goroutines, want 1:\n%v", len(leaked), leaked)
	}

	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for len(leakedSince(before)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine still reported leaked after it exited")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestVerifyNoLeaksCleanTest(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
