package controller

import (
	"testing"
	"time"
)

func pathUpdate(flow int, addSw, removeSw []string, firstID int) PathUpdate {
	u := PathUpdate{FlowID: flow}
	id := firstID
	for _, sw := range addSw {
		u.Adds = append(u.Adds, upd(sw, id))
		id++
	}
	for _, sw := range removeSw {
		u.Removes = append(u.Removes, upd(sw, id))
		id++
	}
	return u
}

func TestPlanTwoPhaseSafety(t *testing.T) {
	p := NewPacer()
	for _, sw := range []string{"s1", "s2", "s3"} {
		p.Register(sw, SwitchLimit{Rate: 200, Burst: 4})
	}
	updates := []PathUpdate{
		pathUpdate(1, []string{"s1", "s2"}, []string{"s3"}, 100),
		pathUpdate(2, []string{"s2", "s3"}, []string{"s1"}, 200),
		pathUpdate(3, []string{"s1", "s2", "s3"}, []string{"s2"}, 300),
	}
	guarantee := 5 * time.Millisecond
	plan, err := p.PlanTwoPhase(0, updates, guarantee)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plan.AddSends) != 7 || len(plan.RemoveSends) != 3 {
		t.Fatalf("sends = %d adds, %d removes", len(plan.AddSends), len(plan.RemoveSends))
	}
	// The flip sits the guarantee after the last add transmission.
	lastAdd := plan.AddSends[len(plan.AddSends)-1].At
	if plan.FlipAt != lastAdd+guarantee {
		t.Errorf("flip = %v, want %v", plan.FlipAt, lastAdd+guarantee)
	}
	if plan.Done < plan.FlipAt {
		t.Error("done before flip")
	}
	if got := plan.Switches(); len(got) != 3 || got[0] != "s1" {
		t.Errorf("switches = %v", got)
	}
	by := RulesBySwitch(plan.AddSends)
	total := 0
	for _, rules := range by {
		total += len(rules)
	}
	if total != 7 {
		t.Errorf("RulesBySwitch lost rules: %d", total)
	}
}

func TestPlanTwoPhaseUnregistered(t *testing.T) {
	p := NewPacer()
	p.Register("s1", SwitchLimit{Rate: 100, Burst: 1})
	if _, err := p.PlanTwoPhase(0, []PathUpdate{
		pathUpdate(1, []string{"ghost"}, nil, 1),
	}, time.Millisecond); err == nil {
		t.Error("unregistered add switch accepted")
	}
	if _, err := p.PlanTwoPhase(0, []PathUpdate{
		pathUpdate(1, []string{"s1"}, []string{"ghost"}, 1),
	}, time.Millisecond); err == nil {
		t.Error("unregistered remove switch accepted")
	}
}

func TestPlanTwoPhasePacingStretchesFlip(t *testing.T) {
	p := NewPacer()
	p.Register("slow", SwitchLimit{Rate: 10, Burst: 1}) // 100ms between sends
	var u PathUpdate
	for i := 0; i < 5; i++ {
		u.Adds = append(u.Adds, upd("slow", i+1))
	}
	plan, err := p.PlanTwoPhase(0, []PathUpdate{u}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 4 paced sends after the burst: flip at 400ms + 5ms.
	if plan.FlipAt != 405*time.Millisecond {
		t.Errorf("flip = %v, want 405ms", plan.FlipAt)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsUnsafePlans(t *testing.T) {
	bad := &PhasePlan{
		AddSends: []Send{{At: 10 * time.Millisecond, Switch: "s1"}},
		FlipAt:   5 * time.Millisecond,
	}
	if bad.Validate() == nil {
		t.Error("late add accepted")
	}
	bad = &PhasePlan{
		FlipAt:      5 * time.Millisecond,
		RemoveSends: []Send{{At: time.Millisecond, Switch: "s1"}},
	}
	if bad.Validate() == nil {
		t.Error("early remove accepted")
	}
}
