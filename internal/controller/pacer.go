// Package controller implements the controller-side half of the §7
// contract: CreateTCAMQoS returns a maximum burst rate per switch, and a
// controller that wants its insertions guaranteed must not exceed it. The
// Pacer turns batches of pending flow-mods into a per-switch send schedule
// that respects each switch's advertised rate and burst budget, and
// estimates when a network-wide update will complete — the quantity
// consistent-update planners (e.g. the B4/SWAN-style TE programs the paper
// motivates with) need to sequence dependent stages.
package controller

import (
	"fmt"
	"sort"
	"time"

	"hermes/internal/classifier"
)

// SwitchLimit is one switch's advertised admission contract (from
// core.QoSInfo / the ofwire QoS reply).
type SwitchLimit struct {
	// Rate is the sustainable insertion rate in rules/second.
	Rate float64
	// Burst is the number of back-to-back insertions the switch absorbs
	// without pacing.
	Burst float64
}

// Update is one pending flow-mod addressed to a switch.
type Update struct {
	Switch string
	Rule   classifier.Rule
}

// Send is one scheduled transmission.
type Send struct {
	At     time.Duration
	Switch string
	Rule   classifier.Rule
}

// Pacer schedules controller→switch flow-mods under per-switch limits.
// The zero value is unusable; create one with NewPacer. Pacer is
// deterministic and purely computational (no I/O), so plans can be unit
// tested and replayed.
type Pacer struct {
	limits map[string]SwitchLimit
	// tokens/lastSend persist across Plan calls so consecutive plans
	// share each switch's budget.
	tokens map[string]float64
	last   map[string]time.Duration
}

// NewPacer returns an empty pacer.
func NewPacer() *Pacer {
	return &Pacer{
		limits: make(map[string]SwitchLimit),
		tokens: make(map[string]float64),
		last:   make(map[string]time.Duration),
	}
}

// Register records a switch's advertised limit (buckets start full). It
// panics on a non-positive rate, which indicates the caller skipped QoS
// negotiation.
func (p *Pacer) Register(name string, limit SwitchLimit) {
	if limit.Rate <= 0 {
		panic(fmt.Sprintf("controller: switch %q rate %v", name, limit.Rate))
	}
	if limit.Burst < 1 {
		limit.Burst = 1
	}
	p.limits[name] = limit
	p.tokens[name] = limit.Burst
	p.last[name] = 0
}

// Registered reports whether a switch has a limit on file.
func (p *Pacer) Registered(name string) bool {
	_, ok := p.limits[name]
	return ok
}

// Plan schedules the updates for transmission at or after now. Updates to
// the same switch are paced at its advertised rate once its burst budget
// is spent; updates to different switches are independent. The returned
// sends are ordered by time (ties by switch then rule ID), and the second
// result is the completion estimate (the latest send time).
//
// Plan returns an error if any update addresses an unregistered switch —
// sending unpaced traffic to a guaranteed switch silently voids its
// guarantee, so the mistake must be loud.
func (p *Pacer) Plan(now time.Duration, updates []Update) ([]Send, time.Duration, error) {
	perSwitch := make(map[string][]Update)
	for _, u := range updates {
		if !p.Registered(u.Switch) {
			return nil, 0, fmt.Errorf("controller: switch %q has no registered limit", u.Switch)
		}
		perSwitch[u.Switch] = append(perSwitch[u.Switch], u)
	}
	names := make([]string, 0, len(perSwitch))
	for n := range perSwitch {
		names = append(names, n)
	}
	sort.Strings(names)

	var sends []Send
	end := now
	for _, name := range names {
		limit := p.limits[name]
		// Refill this switch's bucket for the time elapsed since its last
		// send.
		tokens := p.tokens[name] + (now-p.last[name]).Seconds()*limit.Rate
		if tokens > limit.Burst {
			tokens = limit.Burst
		}
		at := now
		interval := time.Duration(float64(time.Second) / limit.Rate)
		for _, u := range perSwitch[name] {
			if tokens >= 1 {
				tokens--
			} else {
				at += interval
			}
			sends = append(sends, Send{At: at, Switch: name, Rule: u.Rule})
			if at > end {
				end = at
			}
		}
		p.tokens[name] = tokens
		p.last[name] = at
	}
	sort.Slice(sends, func(i, j int) bool {
		if sends[i].At != sends[j].At {
			return sends[i].At < sends[j].At
		}
		if sends[i].Switch != sends[j].Switch {
			return sends[i].Switch < sends[j].Switch
		}
		return sends[i].Rule.ID < sends[j].Rule.ID
	})
	return sends, end, nil
}

// EstimateCompletion reports when a batch of the given sizes would finish
// without committing any budget — the dry-run operators use to decide
// whether a reconfiguration fits a maintenance window.
func (p *Pacer) EstimateCompletion(now time.Duration, batch map[string]int) (time.Duration, error) {
	end := now
	for name, n := range batch {
		limit, ok := p.limits[name]
		if !ok {
			return 0, fmt.Errorf("controller: switch %q has no registered limit", name)
		}
		tokens := p.tokens[name] + (now-p.last[name]).Seconds()*limit.Rate
		if tokens > limit.Burst {
			tokens = limit.Burst
		}
		paced := float64(n) - tokens
		if paced < 0 {
			paced = 0
		}
		at := now + time.Duration(paced/limit.Rate*float64(time.Second))
		if at > end {
			end = at
		}
	}
	return end, nil
}
