package controller

import (
	"fmt"
	"sort"
	"time"

	"hermes/internal/classifier"
)

// This file implements a two-phase consistent network update on top of the
// Pacer — the workflow the TE programs motivating the paper (B4, SWAN,
// zUpdate) run continuously: install the new path's rules everywhere
// (add-before-remove), wait for the slowest switch, flip traffic, then
// retire the old rules. Hermes's per-insertion guarantees are what make
// phase one's completion time *predictable*; the planner surfaces exactly
// that predictability.

// PathUpdate describes moving one flow from an old rule set to a new one.
type PathUpdate struct {
	// FlowID identifies the flow for reporting.
	FlowID int
	// Adds are the new path's rules, keyed by switch.
	Adds []Update
	// Removes are the old path's rules to retire after the flip.
	Removes []Update
}

// PhasePlan is the schedule for one update round.
type PhasePlan struct {
	// AddSends is the paced phase-one schedule.
	AddSends []Send
	// FlipAt is when every add has been transmitted and, per the switches'
	// guarantees, installed: traffic may flip to the new paths.
	FlipAt time.Duration
	// RemoveSends is the paced phase-two schedule (starting at FlipAt).
	RemoveSends []Send
	// Done is when the last removal has been transmitted.
	Done time.Duration
}

// PlanTwoPhase schedules a consistent update round: all adds are paced
// first; the flip point adds each switch's installation guarantee on top
// of the last transmission so that every new rule is live in TCAM before
// any old rule disappears; removals are paced after the flip.
//
// guarantee is the per-insertion bound negotiated with the switches
// (CreateTCAMQoS); it is added once after the final send because sends to
// one switch are paced at its admitted rate, under which installations
// complete within the bound of their own arrival.
func (p *Pacer) PlanTwoPhase(now time.Duration, updates []PathUpdate, guarantee time.Duration) (*PhasePlan, error) {
	var adds, removes []Update
	for _, u := range updates {
		adds = append(adds, u.Adds...)
		removes = append(removes, u.Removes...)
	}
	addSends, addEnd, err := p.Plan(now, adds)
	if err != nil {
		return nil, fmt.Errorf("controller: two-phase adds: %w", err)
	}
	flip := addEnd + guarantee
	removeSends, removeEnd, err := p.Plan(flip, removes)
	if err != nil {
		return nil, fmt.Errorf("controller: two-phase removes: %w", err)
	}
	return &PhasePlan{
		AddSends:    addSends,
		FlipAt:      flip,
		RemoveSends: removeSends,
		Done:        removeEnd,
	}, nil
}

// Validate checks the plan's two safety properties: (i) every add is
// transmitted strictly before the flip, and (ii) no remove is transmitted
// before the flip. It returns nil for a safe plan.
func (pl *PhasePlan) Validate() error {
	for _, s := range pl.AddSends {
		if s.At >= pl.FlipAt {
			return fmt.Errorf("controller: add of rule %d at %v not before flip %v",
				s.Rule.ID, s.At, pl.FlipAt)
		}
	}
	for _, s := range pl.RemoveSends {
		if s.At < pl.FlipAt {
			return fmt.Errorf("controller: remove of rule %d at %v before flip %v",
				s.Rule.ID, s.At, pl.FlipAt)
		}
	}
	return nil
}

// Switches returns the distinct switches a plan touches, sorted.
func (pl *PhasePlan) Switches() []string {
	set := map[string]bool{}
	for _, s := range pl.AddSends {
		set[s.Switch] = true
	}
	for _, s := range pl.RemoveSends {
		set[s.Switch] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RulesBySwitch splits a rule list across switches for batch transmission.
func RulesBySwitch(sends []Send) map[string][]classifier.Rule {
	out := make(map[string][]classifier.Rule)
	for _, s := range sends {
		out[s.Switch] = append(out[s.Switch], s.Rule)
	}
	return out
}
