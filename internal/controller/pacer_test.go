package controller

import (
	"testing"
	"time"

	"hermes/internal/classifier"
)

func upd(sw string, id int) Update {
	return Update{Switch: sw, Rule: classifier.Rule{
		ID:       classifier.RuleID(id),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(id)<<8, 24)),
		Priority: int32(id),
	}}
}

func TestPlanRespectsRate(t *testing.T) {
	p := NewPacer()
	p.Register("s1", SwitchLimit{Rate: 100, Burst: 5})
	var updates []Update
	for i := 0; i < 25; i++ {
		updates = append(updates, upd("s1", i+1))
	}
	sends, end, err := p.Plan(0, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sends) != 25 {
		t.Fatalf("sends = %d", len(sends))
	}
	// First 5 ride the burst at t=0; the remaining 20 pace at 100/s.
	for i := 0; i < 5; i++ {
		if sends[i].At != 0 {
			t.Errorf("burst send %d at %v", i, sends[i].At)
		}
	}
	wantEnd := time.Duration(20) * (time.Second / 100)
	if end != wantEnd {
		t.Errorf("end = %v, want %v", end, wantEnd)
	}
	// No 10ms window may carry more than ~2 sends after the burst (100/s
	// => 1 per 10ms).
	counts := map[int]int{}
	for _, s := range sends[5:] {
		counts[int(s.At/(10*time.Millisecond))]++
	}
	for w, c := range counts {
		if c > 2 {
			t.Errorf("window %d carries %d paced sends", w, c)
		}
	}
}

func TestPlanIndependentSwitches(t *testing.T) {
	p := NewPacer()
	p.Register("a", SwitchLimit{Rate: 10, Burst: 1})
	p.Register("b", SwitchLimit{Rate: 1000, Burst: 100})
	updates := []Update{upd("a", 1), upd("a", 2), upd("b", 3), upd("b", 4)}
	sends, end, err := p.Plan(0, updates)
	if err != nil {
		t.Fatal(err)
	}
	// Switch b's sends all land at t=0 (inside its burst); switch a pays
	// one 100ms pacing gap.
	var aMax, bMax time.Duration
	for _, s := range sends {
		if s.Switch == "a" && s.At > aMax {
			aMax = s.At
		}
		if s.Switch == "b" && s.At > bMax {
			bMax = s.At
		}
	}
	if bMax != 0 {
		t.Errorf("switch b paced unnecessarily: %v", bMax)
	}
	if aMax != 100*time.Millisecond {
		t.Errorf("switch a pacing = %v, want 100ms", aMax)
	}
	if end != aMax {
		t.Errorf("end = %v", end)
	}
}

func TestPlanBudgetPersistsAcrossCalls(t *testing.T) {
	p := NewPacer()
	p.Register("s1", SwitchLimit{Rate: 100, Burst: 4})
	// First plan drains the burst.
	if _, _, err := p.Plan(0, []Update{upd("s1", 1), upd("s1", 2), upd("s1", 3), upd("s1", 4)}); err != nil {
		t.Fatal(err)
	}
	// Immediately planning more must pace from the start.
	sends, _, err := p.Plan(0, []Update{upd("s1", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if sends[0].At == 0 {
		t.Error("burst not depleted across plans")
	}
	// After a second of idling the bucket refills.
	sends, _, err = p.Plan(time.Second, []Update{upd("s1", 6)})
	if err != nil {
		t.Fatal(err)
	}
	if sends[0].At != time.Second {
		t.Errorf("refilled send at %v", sends[0].At)
	}
}

func TestPlanUnregisteredSwitch(t *testing.T) {
	p := NewPacer()
	if _, _, err := p.Plan(0, []Update{upd("ghost", 1)}); err == nil {
		t.Error("unregistered switch accepted")
	}
	if p.Registered("ghost") {
		t.Error("Registered on unknown switch")
	}
}

func TestRegisterValidation(t *testing.T) {
	p := NewPacer()
	defer func() {
		if recover() == nil {
			t.Error("zero rate must panic")
		}
	}()
	p.Register("bad", SwitchLimit{Rate: 0})
}

func TestEstimateCompletion(t *testing.T) {
	p := NewPacer()
	p.Register("a", SwitchLimit{Rate: 100, Burst: 10})
	p.Register("b", SwitchLimit{Rate: 1000, Burst: 10})
	end, err := p.EstimateCompletion(0, map[string]int{"a": 110, "b": 110})
	if err != nil {
		t.Fatal(err)
	}
	// a: 100 paced rules at 100/s = 1s (b finishes in 0.1s).
	if end != time.Second {
		t.Errorf("estimate = %v, want 1s", end)
	}
	// Estimates do not consume budget.
	end2, _ := p.EstimateCompletion(0, map[string]int{"a": 110})
	if end2 != time.Second {
		t.Errorf("second estimate = %v (budget consumed?)", end2)
	}
	if _, err := p.EstimateCompletion(0, map[string]int{"nope": 1}); err == nil {
		t.Error("unregistered estimate accepted")
	}
}

// TestPlanMatchesAgentContract wires the pacer to a real agent's
// advertised numbers and confirms a paced plan yields zero violations.
func TestPlanDeterminism(t *testing.T) {
	mk := func() ([]Send, time.Duration) {
		p := NewPacer()
		p.Register("s1", SwitchLimit{Rate: 200, Burst: 8})
		p.Register("s2", SwitchLimit{Rate: 50, Burst: 2})
		var updates []Update
		for i := 0; i < 30; i++ {
			sw := "s1"
			if i%3 == 0 {
				sw = "s2"
			}
			updates = append(updates, upd(sw, i+1))
		}
		sends, end, err := p.Plan(0, updates)
		if err != nil {
			t.Fatal(err)
		}
		return sends, end
	}
	a, endA := mk()
	b, endB := mk()
	if endA != endB || len(a) != len(b) {
		t.Fatal("plans differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("send %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
