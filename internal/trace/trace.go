// Package trace persists and replays workload artifacts — microbenchmark
// rule streams, flow-level job traces, and BGP update streams — as
// versioned JSON. Saved traces make experiments repeatable across machines
// and let users capture a generated workload once and sweep systems over
// the identical input (the same discipline the paper's replayed datasets
// provide).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/classifier"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

// Kind tags the payload type of an envelope.
type Kind string

// Trace kinds.
const (
	KindRuleStream Kind = "rule-stream"
	KindJobs       Kind = "jobs"
	KindBGP        Kind = "bgp-updates"
)

// version is the envelope schema version.
const version = 1

// envelope is the on-disk frame.
type envelope struct {
	Version int             `json:"version"`
	Kind    Kind            `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

func save(w io.Writer, kind Kind, payload interface{}) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("trace: encode payload: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Version: version, Kind: kind, Payload: raw})
}

func load(r io.Reader, kind Kind, payload interface{}) error {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("trace: decode envelope: %w", err)
	}
	if env.Version != version {
		return fmt.Errorf("trace: unsupported version %d (want %d)", env.Version, version)
	}
	if env.Kind != kind {
		return fmt.Errorf("trace: kind mismatch: file holds %q, expected %q", env.Kind, kind)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("trace: decode payload: %w", err)
	}
	return nil
}

// --- rule streams -----------------------------------------------------------

// timedRuleJSON is the stable wire form of one timed insertion.
type timedRuleJSON struct {
	AtNS     int64  `json:"at_ns"`
	ID       uint64 `json:"id"`
	Dst      string `json:"dst"`
	Src      string `json:"src,omitempty"`
	Priority int32  `json:"priority"`
	Action   uint8  `json:"action"`
	Port     int    `json:"port"`
}

// SaveRuleStream writes a microbenchmark rule stream.
func SaveRuleStream(w io.Writer, stream []workload.TimedRule) error {
	out := make([]timedRuleJSON, 0, len(stream))
	for _, tr := range stream {
		j := timedRuleJSON{
			AtNS:     int64(tr.At),
			ID:       uint64(tr.Rule.ID),
			Dst:      tr.Rule.Match.Dst.String(),
			Priority: tr.Rule.Priority,
			Action:   uint8(tr.Rule.Action.Type),
			Port:     tr.Rule.Action.Port,
		}
		if tr.Rule.Match.Src.Len > 0 {
			j.Src = tr.Rule.Match.Src.String()
		}
		out = append(out, j)
	}
	return save(w, KindRuleStream, out)
}

// LoadRuleStream reads a rule stream saved by SaveRuleStream.
func LoadRuleStream(r io.Reader) ([]workload.TimedRule, error) {
	var in []timedRuleJSON
	if err := load(r, KindRuleStream, &in); err != nil {
		return nil, err
	}
	out := make([]workload.TimedRule, 0, len(in))
	for i, j := range in {
		dst, err := classifier.ParsePrefix(j.Dst)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", i, err)
		}
		src := classifier.Prefix{}
		if j.Src != "" {
			src, err = classifier.ParsePrefix(j.Src)
			if err != nil {
				return nil, fmt.Errorf("trace: entry %d: %w", i, err)
			}
		}
		out = append(out, workload.TimedRule{
			At: durationNS(j.AtNS),
			Rule: classifier.Rule{
				ID:       classifier.RuleID(j.ID),
				Match:    classifier.Match{Dst: dst, Src: src},
				Priority: j.Priority,
				Action:   classifier.Action{Type: classifier.ActionType(j.Action), Port: j.Port},
			},
		})
	}
	return out, nil
}

// --- job traces --------------------------------------------------------------

type flowJSON struct {
	Src     int64   `json:"src"`
	Dst     int64   `json:"dst"`
	Bytes   float64 `json:"bytes"`
	DelayNS int64   `json:"delay_ns,omitempty"`
}

type jobJSON struct {
	ID        int        `json:"id"`
	ArrivalNS int64      `json:"arrival_ns"`
	Flows     []flowJSON `json:"flows"`
}

// SaveJobs writes a flow-level job trace. Node IDs are topology-relative:
// a loaded trace is only meaningful on the topology it was generated for.
func SaveJobs(w io.Writer, jobs []workload.Job) error {
	out := make([]jobJSON, 0, len(jobs))
	for _, j := range jobs {
		jj := jobJSON{ID: j.ID, ArrivalNS: int64(j.Arrival)}
		for _, f := range j.Flows {
			jj.Flows = append(jj.Flows, flowJSON{
				Src: int64(f.Src), Dst: int64(f.Dst), Bytes: f.Bytes, DelayNS: int64(f.StartDelay),
			})
		}
		out = append(out, jj)
	}
	return save(w, KindJobs, out)
}

// LoadJobs reads a job trace saved by SaveJobs.
func LoadJobs(r io.Reader) ([]workload.Job, error) {
	var in []jobJSON
	if err := load(r, KindJobs, &in); err != nil {
		return nil, err
	}
	out := make([]workload.Job, 0, len(in))
	for _, jj := range in {
		j := workload.Job{ID: jj.ID, Arrival: durationNS(jj.ArrivalNS)}
		for _, f := range jj.Flows {
			j.Flows = append(j.Flows, workload.FlowSpec{
				Src: topo.NodeID(f.Src), Dst: topo.NodeID(f.Dst),
				Bytes: f.Bytes, StartDelay: durationNS(f.DelayNS),
			})
		}
		out = append(out, j)
	}
	return out, nil
}

// --- BGP update streams --------------------------------------------------------

type bgpUpdateJSON struct {
	AtNS      int64    `json:"at_ns"`
	Peer      string   `json:"peer"`
	Withdraw  bool     `json:"withdraw,omitempty"`
	Prefix    string   `json:"prefix"`
	NextHop   uint32   `json:"next_hop,omitempty"`
	LocalPref uint32   `json:"local_pref,omitempty"`
	ASPath    []uint32 `json:"as_path,omitempty"`
	Origin    uint8    `json:"origin,omitempty"`
	MED       uint32   `json:"med,omitempty"`
	RouterID  uint32   `json:"router_id,omitempty"`
}

// SaveBGP writes a BGP update stream.
func SaveBGP(w io.Writer, updates []bgp.Update) error {
	out := make([]bgpUpdateJSON, 0, len(updates))
	for _, u := range updates {
		j := bgpUpdateJSON{AtNS: int64(u.At), Peer: u.Peer, Withdraw: u.Withdraw}
		if u.Withdraw {
			j.Prefix = u.Prefix.String()
		} else {
			j.Prefix = u.Route.Prefix.String()
			j.NextHop = u.Route.NextHop
			j.LocalPref = u.Route.LocalPref
			j.ASPath = u.Route.ASPath
			j.Origin = uint8(u.Route.Origin)
			j.MED = u.Route.MED
			j.RouterID = u.Route.RouterID
		}
		out = append(out, j)
	}
	return save(w, KindBGP, out)
}

// LoadBGP reads a BGP update stream saved by SaveBGP.
func LoadBGP(r io.Reader) ([]bgp.Update, error) {
	var in []bgpUpdateJSON
	if err := load(r, KindBGP, &in); err != nil {
		return nil, err
	}
	out := make([]bgp.Update, 0, len(in))
	for i, j := range in {
		p, err := classifier.ParsePrefix(j.Prefix)
		if err != nil {
			return nil, fmt.Errorf("trace: update %d: %w", i, err)
		}
		u := bgp.Update{At: durationNS(j.AtNS), Peer: j.Peer, Withdraw: j.Withdraw}
		if j.Withdraw {
			u.Prefix = p
		} else {
			u.Route = bgp.Route{
				Prefix:    p,
				Peer:      j.Peer,
				NextHop:   j.NextHop,
				LocalPref: j.LocalPref,
				ASPath:    j.ASPath,
				Origin:    bgp.Origin(j.Origin),
				MED:       j.MED,
				RouterID:  j.RouterID,
			}
		}
		out = append(out, u)
	}
	return out, nil
}

func durationNS(ns int64) time.Duration { return time.Duration(ns) }
