package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hermes/internal/bgp"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

func TestRuleStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stream := workload.MicroBench(rng, workload.MicroBenchConfig{
		Rules: 200, RatePerSec: 500, OverlapFrac: 0.5, MaxPriority: 64,
	})
	var buf bytes.Buffer
	if err := SaveRuleStream(&buf, stream); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRuleStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stream) {
		t.Fatalf("len = %d, want %d", len(got), len(stream))
	}
	for i := range stream {
		if got[i].At != stream[i].At || got[i].Rule != stream[i].Rule {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], stream[i])
		}
	}
}

func TestJobsRoundTrip(t *testing.T) {
	jobs := []workload.Job{
		{ID: 0, Arrival: time.Second, Flows: []workload.FlowSpec{
			{Src: topo.NodeID(3), Dst: topo.NodeID(7), Bytes: 1e6},
			{Src: topo.NodeID(4), Dst: topo.NodeID(8), Bytes: 2e6, StartDelay: time.Millisecond},
		}},
		{ID: 1, Arrival: 2 * time.Second, Flows: []workload.FlowSpec{
			{Src: topo.NodeID(1), Dst: topo.NodeID(2), Bytes: 5e9},
		}},
	}
	var buf bytes.Buffer
	if err := SaveJobs(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range jobs {
		if got[i].ID != jobs[i].ID || got[i].Arrival != jobs[i].Arrival {
			t.Fatalf("job %d header mismatch", i)
		}
		for k := range jobs[i].Flows {
			if got[i].Flows[k] != jobs[i].Flows[k] {
				t.Fatalf("job %d flow %d mismatch", i, k)
			}
		}
	}
}

func TestBGPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	updates := bgp.GenerateTrace(rng, bgp.TraceConfig{
		Duration: 3 * time.Second, Peers: 4, Prefixes: 200,
		BaseRate: 100, BurstRate: 1200, BurstProb: 0.3,
		BurstLen: time.Second, WithdrawFrac: 0.3,
	})
	var buf bytes.Buffer
	if err := SaveBGP(&buf, updates); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBGP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(updates) {
		t.Fatalf("len = %d, want %d", len(got), len(updates))
	}
	for i := range updates {
		a, b := updates[i], got[i]
		if a.At != b.At || a.Peer != b.Peer || a.Withdraw != b.Withdraw {
			t.Fatalf("update %d header mismatch", i)
		}
		if a.Withdraw {
			if a.Prefix != b.Prefix {
				t.Fatalf("update %d prefix mismatch", i)
			}
			continue
		}
		if a.Route.Prefix != b.Route.Prefix || a.Route.NextHop != b.Route.NextHop ||
			a.Route.LocalPref != b.Route.LocalPref || a.Route.Origin != b.Route.Origin ||
			a.Route.MED != b.Route.MED || a.Route.RouterID != b.Route.RouterID {
			t.Fatalf("update %d route mismatch:\n%+v\n%+v", i, a.Route, b.Route)
		}
		if len(a.Route.ASPath) != len(b.Route.ASPath) {
			t.Fatalf("update %d AS path mismatch", i)
		}
	}
	// Replaying both streams through routers yields identical FIBs.
	r1, r2 := bgp.NewRouter("a"), bgp.NewRouter("b")
	ops1, ops2 := 0, 0
	for i := range updates {
		ops1 += len(r1.Process(updates[i]))
		ops2 += len(r2.Process(got[i]))
	}
	if ops1 != ops2 || r1.FIBSize() != r2.FIBSize() {
		t.Errorf("replay diverged: %d/%d ops, FIB %d/%d", ops1, ops2, r1.FIBSize(), r2.FIBSize())
	}
}

func TestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveJobs(&buf, []workload.Job{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRuleStream(&buf); err == nil || !strings.Contains(err.Error(), "kind mismatch") {
		t.Errorf("kind mismatch not detected: %v", err)
	}
}

func TestCorruptInputs(t *testing.T) {
	cases := []string{
		"",          // empty
		"{not json", // malformed
		`{"version":99,"kind":"jobs","payload":[]}`,                            // bad version
		`{"version":1,"kind":"rule-stream","payload":"x"}`,                     // payload type mismatch
		`{"version":1,"kind":"rule-stream","payload":[{"dst":"999.1.1.1/8"}]}`, // bad prefix
	}
	for i, c := range cases {
		if _, err := LoadRuleStream(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	if _, err := LoadBGP(strings.NewReader(`{"version":1,"kind":"bgp-updates","payload":[{"prefix":"zz"}]}`)); err == nil {
		t.Error("bad BGP prefix accepted")
	}
}
