package netsim

import (
	"testing"
	"time"

	"hermes/internal/stats"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

// hotspotJobs builds a workload that congests inter-pod links: bursts of
// flows from pod-0 hosts to pod-1 hosts that all share the deterministic
// shortest path until TE spreads them.
func hotspotJobs(g *topo.Graph, n int, bytes float64) []workload.Job {
	hosts := g.Hosts()
	jobs := make([]workload.Job, 0, n)
	for i := 0; i < n; i++ {
		src := hosts[i%4]                // pod 0
		dst := hosts[len(hosts)/2+(i%4)] // a later pod
		if src == dst {
			dst = hosts[len(hosts)-1]
		}
		jobs = append(jobs, workload.Job{
			ID:      i,
			Arrival: time.Duration(i) * time.Millisecond,
			Flows:   []workload.FlowSpec{{Src: src, Dst: dst, Bytes: bytes}},
		})
	}
	return jobs
}

func runSim(t *testing.T, kind InstallerKind, jobs []workload.Job) *Metrics {
	t.Helper()
	g := topo.FatTree(4, 1e9, 10*time.Microsecond) // 16 hosts, 1 Gbps links
	sim := New(Config{
		Graph:        g,
		Profile:      tcam.Pica8P3290,
		Kind:         kind,
		PrefillRules: 300, // realistic steady-state occupancy (Table 1)
		Seed:         1,
	})
	m := sim.Run(jobs)
	return m
}

func TestZeroLatencyCompletesAllFlows(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 20, 50e6)
	m := runSim(t, InstallZero, jobs)
	if len(m.JCTs) != 20 {
		t.Fatalf("completed %d jobs, want 20", len(m.JCTs))
	}
	if len(m.FCTs) != 20 {
		t.Fatalf("completed %d flows, want 20", len(m.FCTs))
	}
	for id, fct := range m.FCTs {
		if fct <= 0 {
			t.Errorf("flow %d FCT = %v", id, fct)
		}
	}
	if m.InstallErrors != 0 {
		t.Errorf("install errors = %d", m.InstallErrors)
	}
}

func TestCongestionTriggersTEMoves(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 24, 200e6)
	m := runSim(t, InstallZero, jobs)
	if m.Moves == 0 {
		t.Fatal("TE never moved a flow despite the hotspot")
	}
	if len(m.RITms) == 0 {
		t.Fatal("no rule installations recorded")
	}
}

func TestTEImprovesOverNoTE(t *testing.T) {
	// With TE disabled (threshold > 1 means nothing is ever congested),
	// the hotspot serializes flows; with TE they spread over alternate
	// paths and finish sooner in aggregate.
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 24, 200e6)

	noTE := New(Config{Graph: g, Profile: tcam.Pica8P3290, Kind: InstallZero, CongestionThreshold: 10, Seed: 1})
	mNo := noTE.Run(jobs)
	withTE := New(Config{Graph: topo.FatTree(4, 1e9, 10*time.Microsecond), Profile: tcam.Pica8P3290, Kind: InstallZero, Seed: 1})
	mTE := withTE.Run(jobs)

	meanNo := stats.Summarize(jctValues(mNo)).Mean()
	meanTE := stats.Summarize(jctValues(mTE)).Mean()
	if meanTE >= meanNo {
		t.Errorf("TE mean JCT %.3fs not better than no-TE %.3fs", meanTE, meanNo)
	}
}

func jctValues(m *Metrics) []float64 {
	out := make([]float64, 0, len(m.JCTs))
	for _, v := range m.JCTs {
		out = append(out, v)
	}
	return out
}

func TestControlLatencyInflatesJCT(t *testing.T) {
	// The §2.2 experiment in miniature: realistic TCAM latency vs an
	// idealized switch on the same workload — median JCT must inflate.
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 48, 25e6) // short flows: ~200ms transfers

	ideal := runSim(t, InstallZero, jobs)
	real := runSim(t, InstallDirect, jobs)

	if real.Moves == 0 || ideal.Moves == 0 {
		t.Skip("workload did not trigger TE on both runs")
	}
	medIdeal := stats.Summarize(jctValues(ideal)).Median()
	medReal := stats.Summarize(jctValues(real)).Median()
	if medReal <= medIdeal {
		t.Errorf("realistic switch median JCT %.3f not above ideal %.3f", medReal, medIdeal)
	}
	// Rule installations must actually cost time on the real switch.
	if stats.Summarize(real.RITms).Mean() <= stats.Summarize(ideal.RITms).Mean() {
		t.Error("Direct RIT not above ZeroLatency RIT")
	}
}

func TestHermesBoundsRIT(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 24, 200e6)
	m := runSim(t, InstallHermes, jobs)
	if len(m.RITms) == 0 {
		t.Skip("no rule installs")
	}
	sum := stats.Summarize(m.RITms)
	if sum.P95() > 5.0 {
		t.Errorf("Hermes p95 RIT = %.2fms exceeds 5ms guarantee", sum.P95())
	}
	// Direct on the same workload must be visibly slower at the tail.
	d := runSim(t, InstallDirect, jobs)
	if len(d.RITms) > 0 && stats.Summarize(d.RITms).P95() <= sum.P95() {
		t.Error("Direct p95 RIT not above Hermes")
	}
}

func TestESPRESAndTangoRun(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 24, 200e6)
	for _, kind := range []InstallerKind{InstallESPRES, InstallTango} {
		m := runSim(t, kind, jobs)
		if len(m.JCTs) != 24 {
			t.Errorf("%v: %d jobs completed", kind, len(m.JCTs))
		}
	}
}

func TestInstallerKindString(t *testing.T) {
	for _, k := range []InstallerKind{InstallZero, InstallDirect, InstallESPRES, InstallTango, InstallHermes} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if InstallerKind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 16, 100e6)
	m1 := runSim(t, InstallDirect, jobs)
	m2 := runSim(t, InstallDirect, jobs)
	if len(m1.JCTs) != len(m2.JCTs) || m1.Moves != m2.Moves {
		t.Fatal("runs not deterministic")
	}
	for id, v := range m1.JCTs {
		if m2.JCTs[id] != v {
			t.Fatalf("JCT for job %d differs: %v vs %v", id, v, m2.JCTs[id])
		}
	}
}

func TestISPWorkloadRuns(t *testing.T) {
	g := topo.Abilene()
	hosts := g.Hosts()
	var jobs []workload.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, workload.Job{
			ID:      i,
			Arrival: time.Duration(i*20) * time.Millisecond,
			Flows: []workload.FlowSpec{{
				Src: hosts[i%len(hosts)], Dst: hosts[(i+3)%len(hosts)], Bytes: 100e6,
			}},
		})
	}
	sim := New(Config{Graph: g, Profile: tcam.Dell8132F, Kind: InstallHermes, Seed: 2})
	m := sim.Run(jobs)
	if len(m.JCTs) != 30 {
		t.Fatalf("completed %d jobs", len(m.JCTs))
	}
	// Per-switch Hermes agents exist for every Abilene PoP.
	if got := len(sim.Agents()); got != 11 {
		t.Errorf("agents = %d, want 11", got)
	}
}
