package netsim

import (
	"math"
	"testing"
	"time"

	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

// TestMaxMinTextbookScenario checks the allocator against the classic
// hand-computed example: two links L1 (10 B/s) and L2 (4 B/s); flow f1
// crosses L1 only, f2 crosses L1+L2, f3 crosses L2 only. Max-min fairness
// gives f2 = f3 = 2 (L2 bottleneck, fair share 4/2) and f1 = 8 (L1's
// remainder).
func TestMaxMinTextbookScenario(t *testing.T) {
	g := topo.NewGraph()
	hA := g.AddNode("A", topo.KindHost)
	hB := g.AddNode("B", topo.KindHost)
	hC := g.AddNode("C", topo.KindHost)
	hD := g.AddNode("D", topo.KindHost)
	s1 := g.AddNode("S1", topo.KindSwitch)
	s2 := g.AddNode("S2", topo.KindSwitch)

	big := 1e12
	g.AddLink(hA, s1, big, time.Microsecond)
	g.AddLink(hB, s2, big, time.Microsecond)
	g.AddLink(hD, s2, big, time.Microsecond)
	g.AddLink(s1, s2, 80, time.Microsecond) // L1: 10 bytes/s
	g.AddLink(s2, hC, 32, time.Microsecond) // L2: 4 bytes/s

	sim := New(Config{Graph: g, Profile: tcam.Pica8P3290, Kind: InstallZero, Seed: 1})
	sim.startFlow(0, 0, workload.FlowSpec{Src: hA, Dst: hB, Bytes: 1e9}) // f1: L1
	sim.startFlow(0, 1, workload.FlowSpec{Src: hA, Dst: hC, Bytes: 1e9}) // f2: L1+L2
	sim.startFlow(0, 2, workload.FlowSpec{Src: hD, Dst: hC, Bytes: 1e9}) // f3: L2

	want := map[int]float64{0: 8, 1: 2, 2: 2}
	for id, rate := range want {
		got := sim.flows[id].rate
		if math.Abs(got-rate) > 1e-6 {
			t.Errorf("flow %d rate = %v, want %v", id, got, rate)
		}
	}
}

// TestMaxMinInvariants drives a congested run and asserts the fairness
// invariants hold at every reallocation: no link over capacity, no starved
// active flow.
func TestMaxMinInvariants(t *testing.T) {
	g := topo.FatTree(4, 1e9, 10*time.Microsecond)
	jobs := hotspotJobs(g, 24, 100e6)
	sim := New(Config{Graph: g, Profile: tcam.Pica8P3290, Kind: InstallZero, Seed: 3})

	// Run step by step, checking after each event.
	for _, job := range jobs {
		job := job
		for i := range job.Flows {
			fl := job.Flows[i]
			jobID := job.ID
			at := job.Arrival
			sim.engine.Schedule(at, func(now time.Duration) { sim.startFlow(now, jobID, fl) })
		}
		sim.jobFlowsLeft[job.ID] = len(job.Flows)
		sim.jobArrival[job.ID] = job.Arrival
	}
	checks := 0
	for sim.engine.Step() {
		for lid, flows := range sim.byLink {
			var sum float64
			for _, f := range flows {
				if !f.completed {
					sum += f.rate
				}
			}
			cap := sim.g.Links[lid].CapacityBps / 8
			if sum > cap*1.0001 {
				t.Fatalf("link %d oversubscribed: %v > %v", lid, sum, cap)
			}
		}
		for id, f := range sim.active {
			if !f.completed && f.rate <= 0 {
				t.Fatalf("active flow %d starved", id)
			}
		}
		checks++
		if checks > 500 {
			break
		}
	}
	if checks < 50 {
		t.Fatalf("only %d events checked", checks)
	}
}
