// Package netsim is the Varys flow-level network simulator of §8.1.1,
// re-implemented in Go: a discrete-event, flow-level simulator with
// max-min fair bandwidth sharing, per-switch TCAM control-plane latency
// models, and the proactive traffic-engineering SDNApp [Das et al.,
// HotCloud'13] that periodically moves flows off congested links.
//
// The SDNApp is proactive: flows start immediately on pre-installed
// default (min-hop) routes, so there is no packet-in startup latency; the
// control plane only acts when the TE application reconfigures paths. A
// reconfiguration installs per-flow rules on every switch of the new path,
// and the flow switches over only when the slowest switch finishes — slow
// TCAM actions therefore prolong congestion, inflating FCT and JCT exactly
// as §2.2 describes.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/baseline"
	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/sim"
	"hermes/internal/tcam"
	"hermes/internal/topo"
	"hermes/internal/workload"
)

// InstallerKind selects the per-switch rule installation strategy.
type InstallerKind int

// Installer strategies.
const (
	// InstallZero is the idealized zero-control-latency switch.
	InstallZero InstallerKind = iota
	// InstallDirect is an unmodified switch.
	InstallDirect
	// InstallESPRES reorders update batches.
	InstallESPRES
	// InstallTango reorders and rewrites update batches.
	InstallTango
	// InstallHermes runs a Hermes agent on every switch.
	InstallHermes
)

func (k InstallerKind) String() string {
	switch k {
	case InstallZero:
		return "ZeroLatency"
	case InstallDirect:
		return "Direct"
	case InstallESPRES:
		return "ESPRES"
	case InstallTango:
		return "Tango"
	case InstallHermes:
		return "Hermes"
	default:
		return fmt.Sprintf("installer(%d)", int(k))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Graph is the topology; flows run between its host nodes.
	Graph *topo.Graph
	// Profile is the switch model used by every switch.
	Profile *tcam.Profile
	// Kind selects the installation strategy.
	Kind InstallerKind
	// HermesConfig configures per-switch agents for InstallHermes; its
	// Guarantee defaults to 5ms.
	HermesConfig core.Config
	// TEInterval is the traffic-engineering period (default 100ms).
	TEInterval time.Duration
	// CongestionThreshold is the link-utilization fraction above which the
	// TE app tries to move flows away (default 0.9).
	CongestionThreshold float64
	// KPaths is the number of alternative paths considered (default 4).
	KPaths int
	// MaxMovesPerCycle bounds reconfigurations per TE cycle (default 64).
	MaxMovesPerCycle int
	// PrefillRules loads this many disjoint background rules into every
	// switch before the run, modeling a production switch's steady-state
	// occupancy — the dimension Table 1 shows dominates insertion latency.
	PrefillRules int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.TEInterval <= 0 {
		c.TEInterval = 100 * time.Millisecond
	}
	if c.CongestionThreshold <= 0 {
		c.CongestionThreshold = 0.9
	}
	if c.KPaths <= 0 {
		c.KPaths = 4
	}
	if c.MaxMovesPerCycle <= 0 {
		c.MaxMovesPerCycle = 64
	}
	if c.HermesConfig.Guarantee <= 0 {
		c.HermesConfig.Guarantee = 5 * time.Millisecond
	}
	// The TE SDNApp is a cooperating controller: CreateTCAMQoS tells it the
	// admissible burst rate (§7) and its reconfiguration batches respect
	// it, so per-switch agents run without the defensive token bucket. The
	// BGP experiments, whose update source cannot be paced, keep it on.
	c.HermesConfig.DisableRateLimit = true
	return c
}

// flow is one in-flight transfer.
type flow struct {
	id        int
	job       int
	src, dst  topo.NodeID
	remaining float64 // bytes
	rate      float64 // bytes/sec, set by the max-min allocator
	path      topo.Path
	started   time.Duration
	lastSet   time.Duration // when remaining was last advanced
	completed bool
	moving    bool // a path change is in flight
	newPath   topo.Path
	moveRules []pendingRule // rules installed for the in-flight move
	liveRules []pendingRule // rules backing the current path
	activeIdx int           // position in Simulator.active
	frozen    bool          // scratch flag for the max-min allocator
}

type pendingRule struct {
	sw topo.NodeID
	id classifier.RuleID
}

// Metrics aggregates a run's outcomes.
type Metrics struct {
	// RITms are per-rule installation times in milliseconds across all
	// switches (completion minus issue, including control-plane queueing).
	RITms []float64
	// FCTs maps flow ID to its completion time in seconds.
	FCTs map[int]float64
	// JCTs maps job ID to its completion time in seconds.
	JCTs map[int]float64
	// JobBytes maps job ID to its total bytes (for the short/long split).
	JobBytes map[int]float64
	// FlowJob maps flow ID to its job ID.
	FlowJob map[int]int
	// Moves counts TE path reconfigurations; MoveLatencies the time from
	// decision to switchover in ms.
	Moves           int
	MoveLatenciesMS []float64
	// InstallErrors counts rules rejected by full tables.
	InstallErrors int
}

// Simulator runs one configuration over one job trace.
type Simulator struct {
	cfg     Config
	g       *topo.Graph
	engine  *sim.Engine
	rng     *rand.Rand
	flows   map[int]*flow
	active  []*flow
	byLink  [][]*flow // indexed by LinkID
	install map[topo.NodeID]baseline.Installer
	agents  []*core.Agent
	hostIP  map[topo.NodeID]uint32

	jobFlowsLeft map[int]int
	jobArrival   map[int]time.Duration

	nextRuleID classifier.RuleID
	metrics    Metrics

	// pathCache memoizes k-shortest paths per (src,dst); topology is
	// static, and Yen's algorithm is far too expensive to run per TE
	// candidate per cycle.
	pathCache map[[2]topo.NodeID][]topo.Path

	// Allocator scratch (indexed by LinkID) and the epoch that invalidates
	// the outstanding next-completion event.
	linkResidual []float64
	linkCount    []int
	allocEpoch   uint64
}

// New builds a simulator for the config.
func New(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	s := &Simulator{
		cfg:          cfg,
		g:            cfg.Graph,
		engine:       sim.New(),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		flows:        make(map[int]*flow),
		byLink:       make([][]*flow, len(cfg.Graph.Links)),
		install:      make(map[topo.NodeID]baseline.Installer),
		hostIP:       make(map[topo.NodeID]uint32),
		jobFlowsLeft: make(map[int]int),
		jobArrival:   make(map[int]time.Duration),
		nextRuleID:   1,
		pathCache:    make(map[[2]topo.NodeID][]topo.Path),
		linkResidual: make([]float64, len(cfg.Graph.Links)),
		linkCount:    make([]int, len(cfg.Graph.Links)),
	}
	s.metrics.FCTs = make(map[int]float64)
	s.metrics.JCTs = make(map[int]float64)
	s.metrics.JobBytes = make(map[int]float64)
	s.metrics.FlowJob = make(map[int]int)
	for i, h := range cfg.Graph.Hosts() {
		s.hostIP[h] = 0x0A000000 | uint32(i+1) // 10.0.0.0/8 host space
	}
	for _, sw := range cfg.Graph.Switches() {
		inst := s.newInstaller(fmt.Sprintf("sw%d", sw))
		if cfg.PrefillRules > 0 {
			inst.Prefill(backgroundRules(cfg.PrefillRules))
		}
		s.install[sw] = inst
	}
	return s
}

// backgroundRules builds disjoint low-priority filler rules in a dedicated
// address range (172.16/12) that never collides with host traffic.
func backgroundRules(n int) []classifier.Rule {
	out := make([]classifier.Rule, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, classifier.Rule{
			ID:       classifier.RuleID(1<<30 + i),
			Match:    classifier.DstMatch(classifier.NewPrefix(0xAC100000|uint32(i)<<8, 24)),
			Priority: 1,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		})
	}
	return out
}

func (s *Simulator) newInstaller(name string) baseline.Installer {
	hw := tcam.NewSwitch(name, s.cfg.Profile)
	switch s.cfg.Kind {
	case InstallZero:
		return baseline.NewZeroLatency(s.cfg.Profile)
	case InstallDirect:
		return baseline.NewDirect(hw)
	case InstallESPRES:
		return baseline.NewESPRES(hw)
	case InstallTango:
		return baseline.NewTango(hw)
	case InstallHermes:
		agent, err := core.New(hw, s.cfg.HermesConfig)
		if err != nil {
			panic(fmt.Sprintf("netsim: hermes agent: %v", err))
		}
		s.agents = append(s.agents, agent)
		return baseline.NewHermes(agent)
	default:
		panic(fmt.Sprintf("netsim: unknown installer kind %d", s.cfg.Kind))
	}
}

// Agents returns the per-switch Hermes agents (InstallHermes only).
func (s *Simulator) Agents() []*core.Agent { return s.agents }

// Run replays the job trace until every flow completes and returns the
// collected metrics.
func (s *Simulator) Run(jobs []workload.Job) *Metrics {
	for _, job := range jobs {
		job := job
		s.jobFlowsLeft[job.ID] = len(job.Flows)
		s.jobArrival[job.ID] = job.Arrival
		s.metrics.JobBytes[job.ID] = job.TotalBytes()
		for i := range job.Flows {
			fl := job.Flows[i]
			at := job.Arrival + fl.StartDelay
			jobID := job.ID
			s.engine.Schedule(at, func(now time.Duration) {
				s.startFlow(now, jobID, fl)
			})
		}
	}
	// TE application tick.
	s.engine.Schedule(s.cfg.TEInterval, s.teTick)
	s.engine.Run(0)
	return &s.metrics
}

// paths returns the cached k-shortest paths between two hosts.
func (s *Simulator) paths(src, dst topo.NodeID) []topo.Path {
	key := [2]topo.NodeID{src, dst}
	if p, ok := s.pathCache[key]; ok {
		return p
	}
	p := s.g.KShortestPaths(src, dst, s.cfg.KPaths)
	s.pathCache[key] = p
	return p
}

func (s *Simulator) startFlow(now time.Duration, jobID int, spec workload.FlowSpec) {
	all := s.paths(spec.Src, spec.Dst)
	if len(all) == 0 {
		panic(fmt.Sprintf("netsim: no path %d->%d", spec.Src, spec.Dst))
	}
	path := all[0]
	f := &flow{
		id:        len(s.flows),
		job:       jobID,
		src:       spec.Src,
		dst:       spec.Dst,
		remaining: spec.Bytes,
		path:      path,
		started:   now,
		lastSet:   now,
	}
	s.flows[f.id] = f
	f.activeIdx = len(s.active)
	s.active = append(s.active, f)
	s.metrics.FlowJob[f.id] = jobID
	s.attach(f, f.path)
	s.reallocate(now)
}

func (s *Simulator) attach(f *flow, p topo.Path) {
	for _, l := range p.Links {
		s.byLink[l] = append(s.byLink[l], f)
	}
}

func (s *Simulator) detach(f *flow, p topo.Path) {
	for _, l := range p.Links {
		flows := s.byLink[l]
		for i, g := range flows {
			if g == f {
				flows[i] = flows[len(flows)-1]
				s.byLink[l] = flows[:len(flows)-1]
				break
			}
		}
	}
}

// advanceProgress charges elapsed transfer at the current rates before any
// rate change.
func (s *Simulator) advanceProgress(now time.Duration) {
	for _, f := range s.active {
		dt := (now - f.lastSet).Seconds()
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastSet = now
	}
}

// reallocate recomputes max-min fair rates (progressive filling) and
// schedules the single next-completion event. All scratch state lives in
// pre-allocated per-link slices; per-flow completion events are avoided
// entirely (an epoch counter invalidates the outstanding one), which keeps
// the event queue O(1) per reallocation instead of O(active flows).
func (s *Simulator) reallocate(now time.Duration) {
	s.advanceProgress(now)

	unfrozen := 0
	var touched []topo.LinkID
	for _, f := range s.active {
		f.frozen = false
		f.rate = 0
		unfrozen++
		for _, l := range f.path.Links {
			if s.linkCount[l] == 0 {
				touched = append(touched, l)
				s.linkResidual[l] = s.g.Links[l].CapacityBps / 8 // bytes/sec
			}
			s.linkCount[l]++
		}
	}
	for unfrozen > 0 {
		// Find the bottleneck link: minimal fair share.
		var bottleneck topo.LinkID = -1
		share := 0.0
		for _, lid := range touched {
			n := s.linkCount[lid]
			if n <= 0 {
				continue
			}
			fs := s.linkResidual[lid] / float64(n)
			if bottleneck == -1 || fs < share {
				bottleneck, share = lid, fs
			}
		}
		if bottleneck == -1 {
			// Flows with no constrained link (cannot happen: every path
			// has links) — give them effectively unconstrained rate.
			for _, f := range s.active {
				if !f.frozen {
					f.rate = 1e12
					f.frozen = true
				}
			}
			break
		}
		// Freeze every unfrozen flow on the bottleneck at the fair share.
		for _, f := range s.byLink[bottleneck] {
			if f.frozen || f.completed {
				continue
			}
			f.rate = share
			f.frozen = true
			unfrozen--
			// Release this flow's claim on its other links.
			for _, l := range f.path.Links {
				if l != bottleneck {
					s.linkResidual[l] -= share
					s.linkCount[l]--
				}
			}
		}
		s.linkCount[bottleneck] = 0
	}
	// Reset scratch for the next call.
	for _, lid := range touched {
		s.linkCount[lid] = 0
		s.linkResidual[lid] = 0
	}

	s.scheduleNextCompletion(now)
}

// scheduleNextCompletion arms one event for the earliest-finishing active
// flow; any state change bumps the epoch and re-arms.
func (s *Simulator) scheduleNextCompletion(now time.Duration) {
	s.allocEpoch++
	var next *flow
	var bestETA float64
	for _, f := range s.active {
		if f.rate <= 0 {
			continue
		}
		eta := f.remaining / f.rate
		if next == nil || eta < bestETA {
			next, bestETA = f, eta
		}
	}
	if next == nil {
		return
	}
	epoch := s.allocEpoch
	fl := next
	at := now + time.Duration(bestETA*float64(time.Second))
	s.engine.Schedule(at, func(t time.Duration) {
		if s.allocEpoch == epoch && !fl.completed {
			s.completeFlow(t, fl)
		}
	})
}

func (s *Simulator) completeFlow(now time.Duration, f *flow) {
	s.advanceProgress(now)
	f.completed = true
	f.remaining = 0
	f.rate = 0
	s.detach(f, f.path)
	if f.moving {
		// The pending move is moot; its rules are cleaned when the
		// switchover event fires.
		f.moving = false
	}
	s.retireRules(now, &f.liveRules)
	// Swap-remove from the active list.
	last := len(s.active) - 1
	s.active[f.activeIdx] = s.active[last]
	s.active[f.activeIdx].activeIdx = f.activeIdx
	s.active = s.active[:last]
	s.metrics.FCTs[f.id] = (now - f.started).Seconds()
	s.jobFlowsLeft[f.job]--
	if s.jobFlowsLeft[f.job] == 0 {
		s.metrics.JCTs[f.job] = (now - s.jobArrival[f.job]).Seconds()
	}
	s.reallocate(now)
}
