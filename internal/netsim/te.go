package netsim

import (
	"sort"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/topo"
)

// This file implements the proactive traffic-engineering SDNApp (§8.1.1):
// every TEInterval it measures link utilization, picks flows on congested
// links, and moves them to the least-loaded alternative path. Each move
// installs per-flow rules on every switch of the new path through that
// switch's Installer; the flow switches over when the slowest switch
// finishes, so control-plane latency directly extends the time the flow
// spends on the congested path.

func (s *Simulator) teTick(now time.Duration) {
	s.advanceProgress(now)

	// Give periodic strategies CPU time (Hermes Rule Manager ticks).
	ticked := make([]topo.NodeID, 0, len(s.install))
	for sw := range s.install {
		ticked = append(ticked, sw)
	}
	sort.Slice(ticked, func(i, j int) bool { return ticked[i] < ticked[j] })
	for _, sw := range ticked {
		s.install[sw].Tick(now)
	}

	moves := s.planMoves()
	if len(moves) > 0 {
		s.executeMoves(now, moves)
	}

	if len(s.active) > 0 || s.engine.Pending() > 0 {
		s.engine.Schedule(now+s.cfg.TEInterval, s.teTick)
	}
}

type move struct {
	f       *flow
	newPath topo.Path
}

// linkUtilization returns current utilization fractions.
func (s *Simulator) linkUtilization() map[topo.LinkID]float64 {
	util := make(map[topo.LinkID]float64)
	for lid, flows := range s.byLink {
		var sum float64
		for _, f := range flows {
			if !f.completed {
				sum += f.rate
			}
		}
		if sum > 0 {
			util[topo.LinkID(lid)] = sum / (s.g.Links[lid].CapacityBps / 8)
		}
	}
	return util
}

// planMoves selects flows on congested links and better paths for them.
func (s *Simulator) planMoves() []move {
	util := s.linkUtilization()
	var congested []topo.LinkID
	for lid, u := range util {
		if u >= s.cfg.CongestionThreshold {
			congested = append(congested, lid)
		}
	}
	if len(congested) == 0 {
		return nil
	}
	sort.Slice(congested, func(i, j int) bool {
		if util[congested[i]] != util[congested[j]] {
			return util[congested[i]] > util[congested[j]]
		}
		return congested[i] < congested[j]
	})

	var moves []move
	seen := make(map[int]bool)
	for _, lid := range congested {
		if len(moves) >= s.cfg.MaxMovesPerCycle {
			break
		}
		// Largest flows first: moving elephants relieves the link fastest.
		var candidates []*flow
		for _, f := range s.byLink[lid] {
			if !f.completed && !f.moving && !seen[f.id] {
				candidates = append(candidates, f)
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].remaining != candidates[j].remaining {
				return candidates[i].remaining > candidates[j].remaining
			}
			return candidates[i].id < candidates[j].id
		})
		for _, f := range candidates {
			if len(moves) >= s.cfg.MaxMovesPerCycle {
				break
			}
			alt, ok := s.bestAlternative(f, util)
			if !ok {
				continue
			}
			seen[f.id] = true
			moves = append(moves, move{f: f, newPath: alt})
			// Account the planned shift so subsequent picks see it.
			for _, l := range f.path.Links {
				util[l] -= f.rate / (s.g.Links[l].CapacityBps / 8)
			}
			for _, l := range alt.Links {
				util[l] += f.rate / (s.g.Links[l].CapacityBps / 8)
			}
		}
	}
	return moves
}

// bestAlternative returns the alternative path minimizing the maximum
// utilization along it, if it improves on the current path.
func (s *Simulator) bestAlternative(f *flow, util map[topo.LinkID]float64) (topo.Path, bool) {
	paths := s.paths(f.src, f.dst)
	if len(paths) <= 1 {
		return topo.Path{}, false
	}
	flowShare := func(l topo.LinkID) float64 { return f.rate / (s.g.Links[l].CapacityBps / 8) }
	maxUtil := func(p topo.Path, withFlow bool) float64 {
		m := 0.0
		for _, l := range p.Links {
			u := util[l]
			if withFlow {
				u += flowShare(l)
			}
			if u > m {
				m = u
			}
		}
		return m
	}
	current := maxUtil(f.path, false)
	best := f.path
	bestScore := current
	for _, p := range paths {
		if p.Equal(f.path) {
			continue
		}
		// Utilization the path would see with this flow on it, minus the
		// flow's own contribution on shared links (approximated by adding
		// the share everywhere; conservative).
		score := maxUtil(p, true)
		if score < bestScore-0.05 { // hysteresis: only clearly better paths
			best, bestScore = p, score
		}
	}
	if best.Equal(f.path) {
		return topo.Path{}, false
	}
	return best, true
}

// executeMoves batches the per-switch rule insertions for this TE cycle
// and schedules each flow's switchover at its slowest rule completion.
func (s *Simulator) executeMoves(now time.Duration, moves []move) {
	// Group rules by switch so reordering strategies (ESPRES/Tango) get a
	// batch to optimize.
	perSwitch := make(map[topo.NodeID][]classifier.Rule)
	ruleOwner := make(map[classifier.RuleID]*flow)
	for _, mv := range moves {
		f := mv.f
		f.moving = true
		f.newPath = mv.newPath
		f.moveRules = f.moveRules[:0]
		for _, sw := range mv.newPath.SwitchNodes(s.g) {
			r := classifier.Rule{
				ID:       s.nextRuleID,
				Match:    classifier.Match{Dst: classifier.NewPrefix(s.hostIP[f.dst], 32), Src: classifier.NewPrefix(s.hostIP[f.src], 32)},
				Priority: 100, // flow rules override default routes
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(sw) % 48},
			}
			s.nextRuleID++
			perSwitch[sw] = append(perSwitch[sw], r)
			ruleOwner[r.ID] = f
			f.moveRules = append(f.moveRules, pendingRule{sw: sw, id: r.ID})
		}
	}

	completion := make(map[int]time.Duration) // flow id -> switchover time
	switches := make([]topo.NodeID, 0, len(perSwitch))
	for sw := range perSwitch {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, sw := range switches {
		results := s.install[sw].InsertBatch(now, perSwitch[sw])
		for _, res := range results {
			if res.Err != nil {
				s.metrics.InstallErrors++
				continue
			}
			s.metrics.RITms = append(s.metrics.RITms, (res.Completed-now).Seconds()*1e3)
			f := ruleOwner[res.ID]
			if f == nil {
				continue
			}
			if res.Completed > completion[f.id] {
				completion[f.id] = res.Completed
			}
		}
	}

	for _, mv := range moves {
		f := mv.f
		at, ok := completion[f.id]
		if !ok {
			at = now
		}
		s.metrics.Moves++
		s.metrics.MoveLatenciesMS = append(s.metrics.MoveLatenciesMS, (at-now).Seconds()*1e3)
		fl := f
		s.engine.Schedule(at, func(t time.Duration) {
			s.switchover(t, fl)
		})
	}
}

// switchover moves the flow onto its new path and retires the old rules.
func (s *Simulator) switchover(now time.Duration, f *flow) {
	if !f.moving || f.completed {
		s.cleanupMoveRules(now, f)
		return
	}
	s.advanceProgress(now)
	s.detach(f, f.path)
	f.path = f.newPath
	f.moving = false
	s.attach(f, f.path)
	// Retire the previous path's per-flow rules and promote the new ones.
	s.retireRules(now, &f.liveRules)
	f.liveRules = append(f.liveRules[:0], f.moveRules...)
	f.moveRules = f.moveRules[:0]
	s.reallocate(now)
}

// retireRules deletes a rule set from its switches and empties the slice.
func (s *Simulator) retireRules(now time.Duration, rules *[]pendingRule) {
	for _, pr := range *rules {
		s.install[pr.sw].Delete(now, pr.id)
	}
	*rules = (*rules)[:0]
}

// cleanupMoveRules deletes rules installed for a move that no longer
// matters (flow finished before switchover).
func (s *Simulator) cleanupMoveRules(now time.Duration, f *flow) {
	for _, pr := range f.moveRules {
		s.install[pr.sw].Delete(now, pr.id)
	}
	f.moveRules = f.moveRules[:0]
}
