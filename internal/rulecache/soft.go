package rulecache

import (
	"sort"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
)

// SoftTable is the switch-CPU software tier: the authoritative store of
// every controller rule, indexed for both point lookups (by rule ID) and
// packet lookups (trie over dst prefixes, like the TCAM index). Unlike the
// hardware tier it is unbounded; what it charges instead is latency — every
// operation returns its virtual-time cost from the table's SoftProfile.
//
// Mutations are the caller's (the agent's) responsibility to serialize;
// Lookup and Gen are safe only against a quiescent table, which is why the
// agent reads it either under its lock or through the published snapshot.
type SoftTable struct {
	profile SoftProfile
	byID    map[classifier.RuleID]softEntry
	trie    classifier.Trie
	gen     atomic.Uint64
}

type softEntry struct {
	rule classifier.Rule
	seq  uint64
}

// NewSoftTable builds an empty software table with the given latency
// profile (zero fields take defaults).
func NewSoftTable(p SoftProfile) *SoftTable {
	return &SoftTable{
		profile: p.withDefaults(),
		byID:    make(map[classifier.RuleID]softEntry),
	}
}

// Profile returns the table's latency model.
func (t *SoftTable) Profile() SoftProfile { return t.profile }

// Gen returns the table's generation counter; it advances on every
// mutation, so snapshot readers can detect staleness the same way they do
// for the TCAM tables.
func (t *SoftTable) Gen() uint64 { return t.gen.Load() }

// Len returns the number of rules in the table.
func (t *SoftTable) Len() int { return len(t.byID) }

// Contains reports whether the rule is present.
func (t *SoftTable) Contains(id classifier.RuleID) bool {
	_, ok := t.byID[id]
	return ok
}

// Get returns the stored rule and its first-match sequence number.
func (t *SoftTable) Get(id classifier.RuleID) (classifier.Rule, uint64, bool) {
	e, ok := t.byID[id]
	return e.rule, e.seq, ok
}

// Insert stores the rule with its tie-breaking sequence number, replacing
// any previous entry with the same ID, and returns the virtual cost.
func (t *SoftTable) Insert(r classifier.Rule, seq uint64) time.Duration {
	if old, ok := t.byID[r.ID]; ok {
		t.trie.Delete(old.rule.Match.Dst, r.ID)
	}
	t.byID[r.ID] = softEntry{rule: r, seq: seq}
	t.trie.Insert(r)
	t.gen.Add(1)
	return t.profile.Insert
}

// Delete removes the rule; ok is false if it was not present.
func (t *SoftTable) Delete(id classifier.RuleID) (time.Duration, bool) {
	e, ok := t.byID[id]
	if !ok {
		return 0, false
	}
	t.trie.Delete(e.rule.Match.Dst, id)
	delete(t.byID, id)
	t.gen.Add(1)
	return t.profile.Delete, true
}

// UpdateAction rewrites the rule's action in place (match and priority
// unchanged), the software half of an action-only FlowMod.
func (t *SoftTable) UpdateAction(id classifier.RuleID, action classifier.Action) (time.Duration, bool) {
	e, ok := t.byID[id]
	if !ok {
		return 0, false
	}
	e.rule.Action = action
	t.byID[id] = e
	t.trie.Update(e.rule.Match.Dst, e.rule)
	t.gen.Add(1)
	return t.profile.Modify, true
}

// Lookup finds the winning rule for the packet under first-match semantics:
// highest priority wins, earlier seq breaks ties — identical to the
// monolithic single-table oracle. It allocates nothing.
func (t *SoftTable) Lookup(dst, src uint32) (classifier.Rule, bool) {
	var (
		best    classifier.Rule
		bestSeq uint64
		found   bool
	)
	it := t.trie.MatchCandidates(dst)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if !r.Match.Src.MatchesAddr(src) {
			continue
		}
		seq := t.byID[r.ID].seq
		if !found || r.Priority > best.Priority ||
			(r.Priority == best.Priority && seq < bestSeq) {
			best, bestSeq, found = r, seq, true
		}
	}
	return best, found
}

// Overlapping returns the rules whose match regions overlap m.
func (t *SoftTable) Overlapping(m classifier.Match) []classifier.Rule {
	return t.trie.Overlapping(m)
}

// Rules returns every rule sorted by ID — the shape Agent.Rules reports.
func (t *SoftTable) Rules() []classifier.Rule {
	out := make([]classifier.Rule, 0, len(t.byID))
	for _, e := range t.byID {
		out = append(out, e.rule)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FirstMatchOrder returns every rule in first-match order (priority
// descending, seq ascending) — the order classifier.NewRuleIndex expects,
// used to build the snapshot's software-tier index.
func (t *SoftTable) FirstMatchOrder() []classifier.Rule {
	type ranked struct {
		r   classifier.Rule
		seq uint64
	}
	tmp := make([]ranked, 0, len(t.byID))
	for _, e := range t.byID {
		tmp = append(tmp, ranked{r: e.rule, seq: e.seq})
	}
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].r.Priority != tmp[j].r.Priority {
			return tmp[i].r.Priority > tmp[j].r.Priority
		}
		return tmp[i].seq < tmp[j].seq
	})
	out := make([]classifier.Rule, len(tmp))
	for i, e := range tmp {
		out[i] = e.r
	}
	return out
}
