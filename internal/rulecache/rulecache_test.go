package rulecache

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
)

func mkRule(id classifier.RuleID, cidr string, prio int32) classifier.Rule {
	return classifier.Rule{
		ID:       id,
		Match:    classifier.DstMatch(classifier.MustParsePrefix(cidr)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"lru", PolicyLRU, false},
		{"LFU", PolicyLFU, false},
		{"cost", PolicyCostAware, false},
		{"cost-aware", PolicyCostAware, false},
		{" costaware ", PolicyCostAware, false},
		{"mru", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParsePolicy(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCostAware} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v: got %v, %v", p, back, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Capacity: 4}.WithDefaults()
	if c.Profile != DefaultSoftProfile {
		t.Errorf("zero profile should default: got %+v", c.Profile)
	}
	if c.MaxMovesPerRebalance != 64 || c.MaxCoverParts != 8 {
		t.Errorf("defaults: got moves=%d parts=%d", c.MaxMovesPerRebalance, c.MaxCoverParts)
	}
	custom := Config{Capacity: 4, Profile: SoftProfile{Lookup: time.Millisecond}}.WithDefaults()
	if custom.Profile.Lookup != time.Millisecond {
		t.Errorf("explicit Lookup overwritten: %v", custom.Profile.Lookup)
	}
	if custom.Profile.Insert != DefaultSoftProfile.Insert {
		t.Errorf("unset Insert not defaulted: %v", custom.Profile.Insert)
	}
}

// TestSoftTableOracle cross-checks SoftTable.Lookup against a brute-force
// first-match scan over the same rule set through random churn.
func TestSoftTableOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := NewSoftTable(SoftProfile{})

	type entry struct {
		r   classifier.Rule
		seq uint64
	}
	oracle := map[classifier.RuleID]entry{}
	var seq uint64

	lookupOracle := func(dst, src uint32) (classifier.Rule, bool) {
		var (
			best    classifier.Rule
			bestSeq uint64
			found   bool
		)
		for _, e := range oracle {
			if !e.r.Match.MatchesPacket(dst, src) {
				continue
			}
			if !found || e.r.Priority > best.Priority ||
				(e.r.Priority == best.Priority && e.seq < bestSeq) {
				best, bestSeq, found = e.r, e.seq, true
			}
		}
		return best, found
	}

	randRule := func(id classifier.RuleID) classifier.Rule {
		plen := uint8(rng.Intn(17) + 8)
		addr := uint32(0x0a000000) | uint32(rng.Intn(1<<16))<<8
		return classifier.Rule{
			ID:       id,
			Match:    classifier.DstMatch(classifier.NewPrefix(addr, plen)),
			Priority: rng.Int31n(5),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(oracle) == 0: // insert
			id := classifier.RuleID(rng.Intn(60))
			if _, dup := oracle[id]; dup {
				break
			}
			r := randRule(id)
			seq++
			st.Insert(r, seq)
			oracle[id] = entry{r: r, seq: seq}
		case op < 7: // delete
			for id := range oracle {
				if _, ok := st.Delete(id); !ok {
					t.Fatalf("step %d: Delete(%d) missing", step, id)
				}
				delete(oracle, id)
				break
			}
		default: // modify action
			for id, e := range oracle {
				act := classifier.Action{Type: classifier.ActionDrop}
				if _, ok := st.UpdateAction(id, act); !ok {
					t.Fatalf("step %d: UpdateAction(%d) missing", step, id)
				}
				e.r.Action = act
				oracle[id] = e
				break
			}
		}

		if st.Len() != len(oracle) {
			t.Fatalf("step %d: Len = %d, oracle %d", step, st.Len(), len(oracle))
		}
		for probe := 0; probe < 5; probe++ {
			dst := uint32(0x0a000000) | uint32(rng.Intn(1<<24))
			got, gok := st.Lookup(dst, 0)
			want, wok := lookupOracle(dst, 0)
			if gok != wok || (gok && got != want) {
				t.Fatalf("step %d dst %08x: soft (%v,%v) oracle (%v,%v)",
					step, dst, got, gok, want, wok)
			}
		}
	}
}

func TestSoftTableLookupAllocs(t *testing.T) {
	st := NewSoftTable(SoftProfile{})
	for i := 0; i < 64; i++ {
		st.Insert(mkRule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i%4)), uint64(i+1))
	}
	allocs := testing.AllocsPerRun(200, func() {
		st.Lookup(0x0a010203, 0)
	})
	if allocs != 0 {
		t.Errorf("SoftTable.Lookup allocates %.1f/op, want 0", allocs)
	}
}

func TestRecordHitAllocs(t *testing.T) {
	m := NewManager(Config{Capacity: 4})
	m.AdvanceEpoch()
	s := m.Ensure(1)
	allocs := testing.AllocsPerRun(200, func() {
		s.RecordHit(m.EpochNow())
		m.SampleHW(0x0a000001, 0, 1)
		m.SampleSoft(0x0a000002, 0)
		m.RecordMiss()
	})
	if allocs != 0 {
		t.Errorf("hit recording allocates %.1f/op, want 0", allocs)
	}
	foldAllocs := testing.AllocsPerRun(20, func() {
		m.FoldSamples(m.EpochNow(), nil)
	})
	if foldAllocs != 0 {
		t.Errorf("FoldSamples allocates %.1f/op, want 0", foldAllocs)
	}
	if s.Hits() == 0 || s.LastEpoch() == 0 {
		t.Errorf("stats not recorded: hits=%d epoch=%d", s.Hits(), s.LastEpoch())
	}
}

func TestSoftTableFirstMatchOrder(t *testing.T) {
	st := NewSoftTable(SoftProfile{})
	st.Insert(mkRule(1, "10.0.0.0/8", 1), 10)
	st.Insert(mkRule(2, "10.1.0.0/16", 5), 11)
	st.Insert(mkRule(3, "10.2.0.0/16", 5), 9) // same prio as 2, earlier seq
	got := st.FirstMatchOrder()
	wantIDs := []classifier.RuleID{3, 2, 1}
	if len(got) != len(wantIDs) {
		t.Fatalf("len = %d, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Errorf("pos %d: got rule %d, want %d", i, got[i].ID, id)
		}
	}
}

func TestManagerScore(t *testing.T) {
	hot := &RuleStats{}
	cold := &RuleStats{}
	for i := 0; i < 100; i++ {
		hot.RecordHit(uint64(i + 1))
	}
	cold.RecordHit(200) // one recent hit

	lfu := NewManager(Config{Capacity: 4, Policy: PolicyLFU})
	if lfu.Score(hot, 1) <= lfu.Score(cold, 1) {
		t.Error("LFU should prefer the frequently hit rule")
	}
	lru := NewManager(Config{Capacity: 4, Policy: PolicyLRU})
	if lru.Score(cold, 1) <= lru.Score(hot, 1) {
		t.Error("LRU should prefer the recently hit rule")
	}
	cost := NewManager(Config{Capacity: 4, Policy: PolicyCostAware})
	if cost.Score(hot, 1) <= cost.Score(hot, 4) {
		t.Error("cost-aware should discount rules occupying more slots")
	}
	if cost.Score(nil, 1) != 0 {
		t.Error("nil stats must score 0")
	}
}

func TestSnapshotRatios(t *testing.T) {
	m := NewManager(Config{Capacity: 4, SampleStride: 1}) // exact counting
	for i := 0; i < 9; i++ {
		m.SampleHW(uint32(i), 0, 1)
	}
	m.SampleSoft(0x0a000001, 0)
	snap := m.Snapshot()
	if snap.Lookups() != 10 {
		t.Fatalf("Lookups = %d, want 10", snap.Lookups())
	}
	if got := snap.HitRatio(); got != 0.9 {
		t.Errorf("HitRatio = %v, want 0.9", got)
	}
	if (Snapshot{}).HitRatio() != 0 {
		t.Error("empty snapshot HitRatio must be 0")
	}
	// Quantiles are derived from the exact tier counters: with a 0.9 HW-hit
	// fraction the p50 is the HW-tier latency and the p99 the (strictly
	// larger) software-tier latency.
	if snap.LookupP50 != DefaultSoftProfile.HWLookup {
		t.Errorf("LookupP50 = %v, want %v", snap.LookupP50, DefaultSoftProfile.HWLookup)
	}
	if want := DefaultSoftProfile.HWLookup + DefaultSoftProfile.Lookup; snap.LookupP99 != want {
		t.Errorf("LookupP99 = %v, want %v", snap.LookupP99, want)
	}
}

func TestSampleStride(t *testing.T) {
	if got := (Config{Capacity: 4, SampleStride: 5}).WithDefaults().SampleStride; got != 8 {
		t.Errorf("SampleStride 5 rounds to %d, want 8", got)
	}
	if got := (Config{Capacity: 4}).WithDefaults().SampleStride; got != 8 {
		t.Errorf("default SampleStride = %d, want 8", got)
	}

	// Exact mode: every lookup is a sample point, and a fold credits every
	// sampled hit to the rule's stats record.
	exact := NewManager(Config{Capacity: 4, SampleStride: 1})
	s := exact.Ensure(1)
	for i := 0; i < 10; i++ {
		exact.SampleHW(0x0a000001, 0, 1)
	}
	if got := exact.Snapshot().HWHits; got != 10 {
		t.Errorf("stride 1: HWHits = %d, want 10", got)
	}
	exact.FoldSamples(exact.AdvanceEpoch(), nil)
	if s.Hits() != 10 {
		t.Errorf("stride 1: folded Hits = %d, want 10", s.Hits())
	}
	// A second fold must not double-count.
	exact.FoldSamples(exact.AdvanceEpoch(), nil)
	if s.Hits() != 10 {
		t.Errorf("re-fold changed Hits to %d, want 10", s.Hits())
	}

	// Sampled mode: across many distinct flows roughly 1 in stride lookups
	// is a sample point, and HWHits reports the scaled estimate. The hash
	// is deterministic, so these counts are stable run to run.
	sampled := NewManager(Config{Capacity: 4, SampleStride: 8})
	ss := sampled.Ensure(1)
	for i := 0; i < 4096; i++ {
		sampled.SampleHW(uint32(0x0a000000+i), uint32(i), 1)
	}
	sampled.FoldSamples(sampled.AdvanceEpoch(), nil)
	points := ss.Hits()
	if points < 256 || points > 1024 {
		t.Errorf("stride 8: %d sample points over 4096 flows, want ≈512", points)
	}
	if got := sampled.Snapshot().HWHits; got != points*8 {
		t.Errorf("stride 8: HWHits = %d, want scaled %d", got, points*8)
	}

	// The sampled flow-subset rotates with the epoch: a single flow must be
	// observed in some epochs and skipped in others.
	rot := NewManager(Config{Capacity: 4, SampleStride: 8})
	rs := rot.Ensure(7)
	for e := 0; e < 256; e++ {
		rot.SampleHW(0x0a000001, 7, 7)
		rot.AdvanceEpoch()
	}
	rot.FoldSamples(rot.EpochNow(), nil)
	if seen := rs.Hits(); seen < 4 || seen > 128 {
		t.Errorf("epoch rotation: flow sampled in %d/256 epochs, want ≈32", seen)
	}

	// An originalOf mapping redirects fragment IDs to their original rule.
	frag := NewManager(Config{Capacity: 4, SampleStride: 1})
	fs := frag.Ensure(3)
	frag.SampleHW(0x0a000001, 0, 1000)
	frag.FoldSamples(frag.AdvanceEpoch(), func(classifier.RuleID) classifier.RuleID { return 3 })
	if fs.Hits() != 1 {
		t.Errorf("originalOf fold: Hits = %d, want 1", fs.Hits())
	}
}
