package rulecache

import (
	"math/bits"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// RuleStats is the per-rule popularity record: a hit counter plus the epoch
// of the most recent hit. Both fields are updated lock-free from the agent's
// snapshot read path (RecordHit) and read by the Manager's rebalance pass
// under the agent lock. Plain atomics suffice — in cached mode RecordHit is
// only reached on sample points (1 in SampleStride lookups), so write-side
// contention is already strided down.
type RuleStats struct {
	hits      atomic.Uint64
	lastEpoch atomic.Uint64
}

// RecordHit counts one (possibly sampled) packet hit against the rule in
// the given epoch. It is safe for concurrent use and allocates nothing — it
// sits on the lookup fast path.
func (s *RuleStats) RecordHit(epoch uint64) {
	s.hits.Add(1)
	s.lastEpoch.Store(epoch)
}

// Hits returns the recorded hit count (sampled: multiply by the config's
// SampleStride for an unbiased estimate of true hits; rankings don't care).
func (s *RuleStats) Hits() uint64 { return s.hits.Load() }

// LastEpoch returns the epoch of the most recent hit (0 = never hit).
func (s *RuleStats) LastEpoch() uint64 { return s.lastEpoch.Load() }

// Manager owns the cache-policy state: per-rule stats, the recency epoch,
// and the hierarchy's aggregate counters. The stats map is mutated only
// under the agent's lock; the counters are lock-free and fed from the
// snapshot read path.
//
// The hardware-tier fast path is write-free off sample points: whether a
// lookup updates any shared state at all is decided by a pure hash of the
// packet header mixed with the recency epoch (samplePoint), so the common
// case pays a few ALU ops and one read-mostly atomic load — no atomic
// read-modify-write. The sampled-flow subset rotates every epoch (the agent
// advances the epoch each tick), so no flow is permanently invisible to the
// popularity stats; over many ticks every flow is observed in an expected
// 1-in-SampleStride fraction of its hits.
//
// Sample points themselves are also kept off the stats map: a sampled
// hardware hit pushes its entry ID into a fixed lock-free ring (one
// fetch-add plus one prefetch-friendly store), and the agent folds the ring
// into the per-rule stats map under its lock once per tick (FoldSamples).
// The stats map walk — the expensive, cache-hostile part — thus runs a few
// thousand times per tick instead of once per lookup. The software tier and
// the miss path already pay a full second lookup, so their aggregate
// counters stay exact and their per-rule stats are recorded directly.
// Lookup latency quantiles need no histogram: the modeled per-tier
// latencies are constants, so the quantiles are fully determined by the
// tier counters and are derived arithmetically in Snapshot.
type Manager struct {
	cfg   Config
	epoch atomic.Uint64
	stats map[classifier.RuleID]*RuleStats

	// Pre-computed virtual lookup latencies in nanoseconds.
	hwNS, softNS uint64
	// missPenalty is the cost-aware policy's miss-to-hit latency ratio.
	missPenalty float64
	// sampleMask = SampleStride−1; sampleShift = log₂ SampleStride, used to
	// scale sampled counts back into estimates.
	sampleMask  uint64
	sampleShift uint

	// ring buffers sampled hardware-tier hits (physical entry IDs) between
	// folds; ringHead counts sampled hardware hits ever (the slot for
	// sample i is i mod ring size), doubling as the sampled hw-hit counter.
	// ringFolded is the prefix already folded; agent lock. Writers race
	// folds benignly: a late store is read stale or as zero and that one
	// sample is misattributed or dropped — acceptable for sampled stats.
	ring       [sampleRingSize]atomic.Uint64
	ringHead   atomic.Uint64
	ringFolded uint64

	// softHits and misses are exact; the sampled hw-hit count is ringHead.
	softHits, misses             obs.Counter
	promotions, demotions        obs.Counter
	coverInstalls, coverRemovals obs.Counter
	setupLat                     *obs.Histogram
}

// sampleRingSize is the hardware-tier sample ring length: 4096 slots cover
// SampleStride × 4096 lookups between folds before the oldest samples are
// overwritten (lossy by design — they are samples).
const sampleRingSize = 1 << 12

// NewManager builds a manager for the given cache config (defaults
// applied). It is also used with a zero Capacity for hit-tracking-only
// agents (Config.TrackHits) that have no software tier.
func NewManager(cfg Config) *Manager {
	cfg = cfg.WithDefaults()
	m := &Manager{
		cfg:         cfg,
		stats:       make(map[classifier.RuleID]*RuleStats),
		hwNS:        uint64(cfg.Profile.HWLookup.Nanoseconds()),
		softNS:      uint64((cfg.Profile.HWLookup + cfg.Profile.Lookup).Nanoseconds()),
		sampleMask:  uint64(cfg.SampleStride - 1),
		sampleShift: uint(bits.TrailingZeros64(uint64(cfg.SampleStride))),
		setupLat:    obs.NewHistogram(),
	}
	m.missPenalty = float64(m.softNS) / float64(m.hwNS)
	return m
}

// Config returns the manager's (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// EpochNow returns the current recency epoch.
func (m *Manager) EpochNow() uint64 { return m.epoch.Load() }

// AdvanceEpoch starts a new recency epoch (called once per agent tick) and
// returns the new value.
func (m *Manager) AdvanceEpoch() uint64 { return m.epoch.Add(1) }

// Ensure returns the rule's stats record, creating it on first sight.
// Caller must hold the agent's exclusive lock.
func (m *Manager) Ensure(id classifier.RuleID) *RuleStats {
	if s, ok := m.stats[id]; ok {
		return s
	}
	s := &RuleStats{}
	m.stats[id] = s
	return s
}

// Forget drops the rule's stats record. Caller must hold the agent's
// exclusive lock.
func (m *Manager) Forget(id classifier.RuleID) { delete(m.stats, id) }

// Stats returns the rule's stats record, or nil if untracked. Safe under
// the agent's read lock.
func (m *Manager) Stats(id classifier.RuleID) *RuleStats { return m.stats[id] }

// Tracked returns how many rules have stats records.
func (m *Manager) Tracked() int { return len(m.stats) }

// samplePoint decides, from the packet header and the current recency
// epoch alone, whether this lookup is a popularity sample point. The hash
// (a splitmix64-style finalizer) is a pure function, so sampling is fully
// deterministic and replayable; mixing in the epoch rotates the sampled
// flow-subset every agent tick. Zero-alloc, hot path.
func (m *Manager) samplePoint(dst, src uint32) bool {
	if m.sampleMask == 0 {
		return true
	}
	h := (uint64(dst)<<32 | uint64(src)) + m.epoch.Load()*0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h&m.sampleMask == 0
}

// SampleHW handles a hardware-tier hit: off sample points it touches no
// shared state at all (the common case — a few ALU ops and one read-mostly
// atomic load); on sample points it pushes the matched entry's ID into the
// sample ring for the next FoldSamples pass. Zero-alloc, hot path.
func (m *Manager) SampleHW(dst, src uint32, id classifier.RuleID) {
	if !m.samplePoint(dst, src) {
		return
	}
	i := m.ringHead.Add(1) - 1
	m.ring[i%sampleRingSize].Store(uint64(id))
}

// FoldSamples drains the sample ring into the per-rule stats map, crediting
// every sampled hit to the given epoch (recency granularity is therefore
// the fold cadence — one agent tick — which is exactly the epoch
// granularity anyway). originalOf maps physical entry IDs (which may be
// partition fragments) to their original rule; nil means identity. IDs
// without a stats record (rule deleted since the sample) and zero slots
// (never written) are skipped. Caller must hold the agent's exclusive lock.
func (m *Manager) FoldSamples(epoch uint64, originalOf func(classifier.RuleID) classifier.RuleID) {
	head := m.ringHead.Load()
	start := m.ringFolded
	if head-start > sampleRingSize {
		start = head - sampleRingSize // older samples were overwritten
	}
	for i := start; i < head; i++ {
		id := classifier.RuleID(m.ring[i%sampleRingSize].Load())
		if id == 0 {
			continue
		}
		if originalOf != nil {
			id = originalOf(id)
		}
		if s := m.stats[id]; s != nil {
			s.RecordHit(epoch)
		}
	}
	m.ringFolded = head
}

// SampleSoft counts a software-tier hit — the packet missed the TCAM (or
// hit a cover) and was resolved by the software table, paying both tiers'
// latencies — and reports whether the caller should record per-rule
// popularity, using the same sampling rate as the hardware tier so the two
// tiers' stats stay comparable. The aggregate count is exact: this path
// already paid for a full software lookup. Zero-alloc.
func (m *Manager) SampleSoft(dst, src uint32) bool {
	m.softHits.Inc()
	return m.samplePoint(dst, src)
}

// RecordMiss counts a lookup no rule matched; it still walked both tiers.
// Exact. Zero-alloc.
func (m *Manager) RecordMiss() { m.misses.Inc() }

// RecordSetup records one rule-setup (insert) virtual latency.
func (m *Manager) RecordSetup(d time.Duration) { m.setupLat.RecordDuration(d) }

// NotePromotion / NoteDemotion / NoteCovers count tier moves and cover-rule
// churn, driven by the agent under its lock.
func (m *Manager) NotePromotion()          { m.promotions.Inc() }
func (m *Manager) NoteDemotion()           { m.demotions.Inc() }
func (m *Manager) NoteCoverInstalls(n int) { m.coverInstalls.Add(uint64(n)) }
func (m *Manager) NoteCoverRemovals(n int) { m.coverRemovals.Add(uint64(n)) }

// Score ranks a rule for residency under the configured policy: higher
// scores deserve hardware slots. slots is the number of hardware entries
// the rule occupies (or would occupy), ≥ 1; only the cost-aware policy
// uses it. Ties are broken by the caller (rule ID) so rankings are
// deterministic.
func (m *Manager) Score(s *RuleStats, slots int) float64 {
	if s == nil {
		return 0
	}
	switch m.cfg.Policy {
	case PolicyLFU:
		return float64(s.Hits())
	case PolicyCostAware:
		if slots < 1 {
			slots = 1
		}
		return float64(s.Hits()) * m.missPenalty / float64(slots)
	default: // PolicyLRU
		return float64(s.LastEpoch())
	}
}

// Snapshot is a point-in-time copy of the hierarchy's aggregate metrics.
// HWHits is a sampled estimate (sampled count × SampleStride, exact at
// stride 1); SoftHits and Misses are exact.
type Snapshot struct {
	HWHits, SoftHits, Misses     uint64
	Promotions, Demotions        uint64
	CoverInstalls, CoverRemovals uint64
	Epoch                        uint64
	Tracked                      int

	LookupP50, LookupP99 time.Duration
	SetupP50, SetupP99   time.Duration
}

// Lookups is the total number of lookups the hierarchy served.
func (s Snapshot) Lookups() uint64 { return s.HWHits + s.SoftHits + s.Misses }

// HitRatio is the fraction of lookups answered entirely by the hardware
// tier.
func (s Snapshot) HitRatio() float64 {
	total := s.Lookups()
	if total == 0 {
		return 0
	}
	return float64(s.HWHits) / float64(total)
}

// lookupQuantile derives the q-quantile of the modeled two-tier lookup
// latency. The per-tier latencies are deterministic constants, so the
// distribution is two-valued and fully determined by the exact tier
// counters: the quantile is the HW latency while the quantile point falls
// inside the hardware-hit fraction, the software latency beyond it.
func (m *Manager) lookupQuantile(q float64) time.Duration {
	hw := m.ringHead.Load() << m.sampleShift
	total := hw + m.softHits.Value() + m.misses.Value()
	if total == 0 {
		return 0
	}
	if float64(hw) >= q*float64(total) {
		return time.Duration(m.hwNS)
	}
	return time.Duration(m.softNS)
}

// Snapshot returns the current aggregate metrics.
func (m *Manager) Snapshot() Snapshot {
	return Snapshot{
		HWHits:        m.ringHead.Load() << m.sampleShift,
		SoftHits:      m.softHits.Value(),
		Misses:        m.misses.Value(),
		Promotions:    m.promotions.Value(),
		Demotions:     m.demotions.Value(),
		CoverInstalls: m.coverInstalls.Value(),
		CoverRemovals: m.coverRemovals.Value(),
		Epoch:         m.epoch.Load(),
		Tracked:       len(m.stats),
		LookupP50:     m.lookupQuantile(0.50),
		LookupP99:     m.lookupQuantile(0.99),
		SetupP50:      m.setupLat.QuantileDuration(0.50),
		SetupP99:      m.setupLat.QuantileDuration(0.99),
	}
}

// Register exposes the hierarchy's metrics on an obs registry under the
// hermes_cache_* namespace, /metrics-ready.
func (m *Manager) Register(reg *obs.Registry) {
	reg.CounterFunc("hermes_cache_hw_hits_total", "", "lookups answered by the hardware (TCAM) tier (sampled estimate)", func() uint64 {
		return m.ringHead.Load() << m.sampleShift
	})
	reg.CounterFunc("hermes_cache_soft_hits_total", "", "lookups resolved by the software tier", m.softHits.Value)
	reg.CounterFunc("hermes_cache_misses_total", "", "lookups no rule matched", m.misses.Value)
	reg.CounterFunc("hermes_cache_promotions_total", "", "rules promoted into the hardware tier", m.promotions.Value)
	reg.CounterFunc("hermes_cache_demotions_total", "", "rules demoted to the software tier", m.demotions.Value)
	reg.CounterFunc("hermes_cache_cover_installs_total", "", "cover rules installed for dependency-safe eviction", m.coverInstalls.Value)
	reg.CounterFunc("hermes_cache_cover_removals_total", "", "cover rules removed", m.coverRemovals.Value)
	reg.GaugeFunc("hermes_cache_hit_ratio", "", "fraction of lookups answered by the hardware tier", func() float64 {
		return m.Snapshot().HitRatio()
	})
	reg.GaugeFunc("hermes_cache_lookup_p50_ns", "", "modeled two-tier lookup latency p50 (derived from tier counters)", func() float64 {
		return float64(m.lookupQuantile(0.50))
	})
	reg.GaugeFunc("hermes_cache_lookup_p99_ns", "", "modeled two-tier lookup latency p99 (derived from tier counters)", func() float64 {
		return float64(m.lookupQuantile(0.99))
	})
	reg.RegisterHistogram("hermes_cache_setup_latency_ns", "", "ns", "virtual rule-setup latency through the cached path", m.setupLat)
}
