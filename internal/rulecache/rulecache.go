// Package rulecache implements the flow-driven rule caching hierarchy
// (FDRC, DESIGN.md §16): it turns the TCAM into the top tier of a two-tier
// lookup hierarchy, backed by an unbounded switch-CPU software table with
// its own latency profile.
//
// The software tier (SoftTable) is *authoritative*: it holds every rule the
// controller installed, with the (priority, seq) metadata that decides
// first-match ties. The hardware tier caches the popular subset. A cache
// Manager tracks per-rule hit counts with zero-alloc sharded counters fed
// from the agent's lock-free snapshot read path and, once per agent tick,
// re-ranks rules under a pluggable policy — LRU (recency epochs), LFU (hit
// counts), or FDRC-style cost-aware scoring (hit rate × miss penalty per
// hardware slot) — promoting the winners into the TCAM and demoting the
// rest. Eviction is dependency-safe: the agent shields every demoted rule
// that still beats a resident with cover rules (classifier.CoverFor) whose
// action punts matching packets to the software tier, so hardware-tier
// semantics stay bit-identical to the single-table oracle.
//
// Everything here is virtual-time only (profile costs are constants, hits
// are counted against an epoch the agent advances), so the package sits on
// the determinism lint's analyzed path like sim/tcam/classifier.
package rulecache

import (
	"fmt"
	"strings"
	"time"
)

// Policy selects how the Manager scores rules when deciding which ones
// deserve a hardware slot.
type Policy uint8

const (
	// PolicyLRU ranks by recency: the epoch of the rule's last hit.
	PolicyLRU Policy = iota
	// PolicyLFU ranks by frequency: total hit count.
	PolicyLFU
	// PolicyCostAware is the FDRC-style score: hit count × the software
	// tier's miss penalty, amortized over the hardware slots the rule
	// would occupy (fragments + covers). Rules that are cheap to cache
	// and expensive to miss win.
	PolicyCostAware
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicyCostAware:
		return "cost"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps the CLI spellings ("lru", "lfu", "cost"/"cost-aware")
// onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "lru":
		return PolicyLRU, nil
	case "lfu":
		return PolicyLFU, nil
	case "cost", "cost-aware", "costaware":
		return PolicyCostAware, nil
	default:
		return 0, fmt.Errorf("rulecache: unknown policy %q (want lru, lfu, or cost)", s)
	}
}

// SoftProfile is the virtual-time latency model of the switch-CPU software
// table, following the FPGA/software flow-table measurements cited in
// PAPERS.md: software lookups cost tens of microseconds against the TCAM's
// single-digit ones, while software updates are far cheaper than TCAM slot
// moves. All costs are deterministic constants so cached experiments stay
// replayable.
type SoftProfile struct {
	Insert   time.Duration // install a rule into the software table
	Delete   time.Duration // remove a rule
	Modify   time.Duration // rewrite a rule's action in place
	Lookup   time.Duration // full software-tier lookup (the miss penalty)
	HWLookup time.Duration // hardware-tier TCAM lookup (the hit cost)
}

// DefaultSoftProfile is used wherever a profile field is left zero.
var DefaultSoftProfile = SoftProfile{
	Insert:   2 * time.Microsecond,
	Delete:   1 * time.Microsecond,
	Modify:   1 * time.Microsecond,
	Lookup:   25 * time.Microsecond,
	HWLookup: 1 * time.Microsecond,
}

func (p SoftProfile) withDefaults() SoftProfile {
	if p.Insert <= 0 {
		p.Insert = DefaultSoftProfile.Insert
	}
	if p.Delete <= 0 {
		p.Delete = DefaultSoftProfile.Delete
	}
	if p.Modify <= 0 {
		p.Modify = DefaultSoftProfile.Modify
	}
	if p.Lookup <= 0 {
		p.Lookup = DefaultSoftProfile.Lookup
	}
	if p.HWLookup <= 0 {
		p.HWLookup = DefaultSoftProfile.HWLookup
	}
	return p
}

// Config tunes the caching hierarchy.
type Config struct {
	// Capacity is the maximum number of controller rules resident in the
	// hardware tier (counted as original rules, not TCAM entries — a
	// partitioned resident may occupy several slots). Required, > 0.
	Capacity int
	// Policy picks the promotion/demotion ranking. Default PolicyLRU.
	Policy Policy
	// Profile is the software tier's latency model; zero fields take
	// DefaultSoftProfile values.
	Profile SoftProfile
	// MaxMovesPerRebalance bounds how many promotions plus demotions a
	// single rebalance pass may perform, so a tick never turns into an
	// unbounded TCAM rewrite. Default 64.
	MaxMovesPerRebalance int
	// MaxCoverParts caps how many cover pieces shield one evicted rule;
	// beyond it the agent falls back to a single cover spanning the whole
	// match. Default 8.
	MaxCoverParts int
	// SampleStride records popularity on one lookup in SampleStride,
	// selected by a deterministic hash of the packet header and the recency
	// epoch (so the sampled flow-subset rotates every tick). Off sample
	// points the hardware-tier hit path touches no shared state, keeping
	// the cached lookup within its overhead budget; hardware-hit counts are
	// reported as sampled count × stride. Rounded up to a power of two;
	// 1 records every hit exactly. Default 8.
	SampleStride int
}

// WithDefaults returns the config with defaults applied.
func (c Config) WithDefaults() Config {
	c.Profile = c.Profile.withDefaults()
	if c.MaxMovesPerRebalance <= 0 {
		c.MaxMovesPerRebalance = 64
	}
	if c.MaxCoverParts <= 0 {
		c.MaxCoverParts = 8
	}
	if c.SampleStride <= 0 {
		c.SampleStride = 8
	}
	for c.SampleStride&(c.SampleStride-1) != 0 {
		c.SampleStride++ // round up to a power of two
	}
	return c
}
