package verify

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

func lookupList(rules []classifier.Rule) Lookup {
	return func(dst, src uint32) (classifier.Rule, bool) {
		var best classifier.Rule
		found := false
		for _, r := range rules {
			if !r.Match.MatchesPacket(dst, src) {
				continue
			}
			if !found || r.Priority > best.Priority {
				best, found = r, true
			}
		}
		return best, found
	}
}

func TestBoundaries(t *testing.T) {
	ps := []classifier.Prefix{
		classifier.MustParsePrefix("10.0.0.0/8"),
		classifier.MustParsePrefix("10.0.0.0/16"),
		classifier.MustParsePrefix("0.0.0.0/0"), // end wraps: contributes only 0
	}
	b := boundaries(ps)
	want := map[uint32]bool{
		0:          true,
		0x0A000000: true, // 10.0.0.0
		0x0A010000: true, // end of /16
		0x0B000000: true, // end of /8
	}
	if len(b) != len(want) {
		t.Fatalf("boundaries = %v", b)
	}
	for _, v := range b {
		if !want[v] {
			t.Errorf("unexpected boundary %08x", v)
		}
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Error("boundaries not sorted")
		}
	}
}

func TestEquivalentAgreesOnIdenticalClassifiers(t *testing.T) {
	rules := []classifier.Rule{
		{ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")), Priority: 10,
			Action: classifier.Action{Type: classifier.ActionForward, Port: 1}},
		{ID: 2, Match: classifier.DstMatch(classifier.MustParsePrefix("10.1.0.0/16")), Priority: 20,
			Action: classifier.Action{Type: classifier.ActionDrop}},
	}
	if ce := Equivalent(lookupList(rules), lookupList(rules), rules); ce != nil {
		t.Errorf("identical classifiers disagree: %v", ce)
	}
}

func TestEquivalentFindsActionDifference(t *testing.T) {
	rules := []classifier.Rule{
		{ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")), Priority: 10,
			Action: classifier.Action{Type: classifier.ActionForward, Port: 1}},
	}
	altered := []classifier.Rule{rules[0]}
	altered[0].Action.Port = 9
	ce := Equivalent(lookupList(rules), lookupList(altered), rules)
	if ce == nil {
		t.Fatal("missed an action difference")
	}
	if ce.Difference == "" || ce.String() == "" {
		t.Error("empty counterexample rendering")
	}
}

func TestEquivalentFindsCoverageDifference(t *testing.T) {
	rules := []classifier.Rule{
		{ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")), Priority: 10,
			Action: classifier.Action{Type: classifier.ActionForward, Port: 1}},
		{ID: 2, Match: classifier.DstMatch(classifier.MustParsePrefix("172.16.0.0/12")), Priority: 10,
			Action: classifier.Action{Type: classifier.ActionForward, Port: 2}},
	}
	// B is missing the second rule: the checker must find a packet in
	// 172.16/12 where they disagree.
	ce := Equivalent(lookupList(rules), lookupList(rules[:1]), rules)
	if ce == nil {
		t.Fatal("missed a coverage difference")
	}
	if !rules[1].Match.MatchesPacket(ce.Dst, ce.Src) {
		t.Errorf("counterexample %v not in the missing rule's region", ce)
	}
}

// TestEquivalentCatchesSubtleFragmentBug plants the exact bug class §4
// warns about: a fragment set that misses one sliver of the original
// rule's region.
func TestEquivalentCatchesSubtleFragmentBug(t *testing.T) {
	orig := classifier.Rule{
		ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("192.168.1.0/24")),
		Priority: 5, Action: classifier.Action{Type: classifier.ActionForward, Port: 2},
	}
	blocker := classifier.Rule{
		ID: 2, Match: classifier.DstMatch(classifier.MustParsePrefix("192.168.1.0/26")),
		Priority: 50, Action: classifier.Action{Type: classifier.ActionForward, Port: 1},
	}
	// Correct fragments: /24 minus /26 = {.64/26, .128/25}. The buggy set
	// drops the .64/26 sliver.
	buggy := []classifier.Rule{
		blocker,
		{ID: 3, Match: classifier.DstMatch(classifier.MustParsePrefix("192.168.1.128/25")),
			Priority: 5, Action: orig.Action},
	}
	reference := []classifier.Rule{blocker, orig}
	ce := Equivalent(lookupList(buggy), lookupList(reference), reference)
	if ce == nil {
		t.Fatal("missed the dropped fragment")
	}
	sliver := classifier.MustParsePrefix("192.168.1.64/26")
	if !sliver.MatchesAddr(ce.Dst) {
		t.Errorf("counterexample %08x outside the missing sliver", ce.Dst)
	}
}

func TestAgentExactEquivalence(t *testing.T) {
	sw := tcam.NewSwitch("v", tcam.Pica8P3290)
	agent, err := core.New(sw, core.Config{
		Guarantee: 5 * time.Millisecond, DisableRateLimit: true, TrackLogical: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	now := time.Duration(0)
	for i := 0; i < 120; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(0xC0A80000|(rng.Uint32()&0xFFFF), uint8(16+rng.Intn(17)))),
			Priority: int32(rng.Intn(50)),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i},
		}
		if _, err := agent.Insert(now, r); err != nil {
			t.Fatal(err)
		}
		now += 2 * time.Millisecond
		if i%20 == 19 {
			if end := agent.ForceMigration(now); end != 0 {
				agent.Advance(end)
				now = end
			}
		}
	}
	ce, err := Agent(agent)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("agent pipeline diverges from monolithic reference: %v", ce)
	}
}

func TestAgentRequiresTracking(t *testing.T) {
	sw := tcam.NewSwitch("v2", tcam.Pica8P3290)
	agent, err := core.New(sw, core.Config{Guarantee: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Agent(agent); err == nil {
		t.Error("verification without TrackLogical must error")
	}
}
