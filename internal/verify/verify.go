// Package verify provides *exact* equivalence checking between packet
// classifiers — in particular between a Hermes-carved shadow/main pipeline
// and the monolithic table it must be indistinguishable from (§4's
// correctness guarantee).
//
// Rather than sampling packets, the checker decomposes header space into
// the rectangles induced by the rule set's prefix boundaries: within any
// rectangle [dᵢ, dᵢ₊₁) × [sⱼ, sⱼ₊₁), where the d and s are the start and
// one-past-end addresses of every destination and source prefix in play,
// membership of every prefix — and therefore the result of every
// classifier built from those rules — is constant. Probing one
// representative per rectangle is thus a complete proof of equivalence,
// at O(n²) probes for n rules instead of 2⁶⁴ packets.
package verify

import (
	"fmt"
	"sort"

	"hermes/internal/classifier"
	"hermes/internal/core"
)

// Lookup is a packet classification function: it returns the matching rule
// (if any) for a (dst, src) address pair.
type Lookup func(dst, src uint32) (classifier.Rule, bool)

// Counterexample is a packet on which two classifiers disagree.
type Counterexample struct {
	Dst, Src   uint32
	ARule      classifier.Rule
	BRule      classifier.Rule
	AOK, BOK   bool
	Difference string
}

func (c *Counterexample) String() string {
	return fmt.Sprintf("packet dst=%08x src=%08x: %s (A=%v,%v B=%v,%v)",
		c.Dst, c.Src, c.Difference, c.ARule, c.AOK, c.BRule, c.BOK)
}

// boundaries returns the sorted, deduplicated probe points for one
// dimension: the start address of every prefix plus the first address past
// its end (when it does not wrap), plus 0.
func boundaries(prefixes []classifier.Prefix) []uint32 {
	set := map[uint32]bool{0: true}
	for _, p := range prefixes {
		set[p.Addr] = true
		size := uint64(1) << (32 - p.Len)
		end := uint64(p.Addr) + size
		if end < 1<<32 {
			set[uint32(end)] = true
		}
	}
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equivalent exhaustively compares two classifiers over the region
// decomposition induced by rules. Equivalence means: for every packet,
// both find a match or neither does, and when both match, the actions
// agree (rule identity may differ — Hermes installs fragments with fresh
// IDs but identical actions).
//
// It returns nil when the classifiers are provably equivalent, or the
// first counterexample found.
func Equivalent(a, b Lookup, rules []classifier.Rule) *Counterexample {
	dsts := make([]classifier.Prefix, 0, len(rules))
	srcs := make([]classifier.Prefix, 0, len(rules))
	for _, r := range rules {
		dsts = append(dsts, r.Match.Dst)
		srcs = append(srcs, r.Match.Src)
	}
	for _, dst := range boundaries(dsts) {
		for _, src := range boundaries(srcs) {
			ra, aok := a(dst, src)
			rb, bok := b(dst, src)
			switch {
			case aok != bok:
				return &Counterexample{
					Dst: dst, Src: src, ARule: ra, BRule: rb, AOK: aok, BOK: bok,
					Difference: "one classifier matches, the other does not",
				}
			case aok && ra.Action != rb.Action:
				return &Counterexample{
					Dst: dst, Src: src, ARule: ra, BRule: rb, AOK: aok, BOK: bok,
					Difference: fmt.Sprintf("actions differ: %v vs %v", ra.Action, rb.Action),
				}
			}
		}
	}
	return nil
}

// Agent proves a Hermes agent's two-table pipeline equivalent to its
// logical reference table. The agent must have been created with
// Config.TrackLogical; otherwise an error is returned because there is no
// reference to check against.
func Agent(a *core.Agent) (*Counterexample, error) {
	if !a.TracksLogical() {
		return nil, fmt.Errorf("verify: agent was not created with Config.TrackLogical")
	}
	ce := Equivalent(
		func(dst, src uint32) (classifier.Rule, bool) { return a.Lookup(dst, src) },
		func(dst, src uint32) (classifier.Rule, bool) { return a.LogicalLookup(dst, src) },
		a.LogicalRules(),
	)
	return ce, nil
}
