package intent

import (
	"fmt"
	"testing"

	"hermes/internal/classifier"
)

// routeMod2 partitions rules across two switches by ID parity.
func routeMod2(id classifier.RuleID) string {
	return fmt.Sprintf("sw-%d", uint64(id)%2)
}

func rule(id int, port int) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(id),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(id)<<12|0x0A000000, 28)),
		Priority: int32(id%10 + 1),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: port},
	}
}

// TestStoreGenerationsAndPartitions: effective mutations bump the
// generation, no-ops do not, and Desired returns the right partition
// sorted by ID with the covering generation.
func TestStoreGenerationsAndPartitions(t *testing.T) {
	s := NewStore(routeMod2)
	if s.Generation() != 0 || s.Len() != 0 {
		t.Fatal("fresh store not empty at generation 0")
	}
	for i := 1; i <= 6; i++ {
		if gen := s.Set(rule(i, 1)); gen != uint64(i) {
			t.Fatalf("set %d: generation %d, want %d", i, gen, i)
		}
	}
	// Identical Set is a no-op.
	if gen := s.Set(rule(3, 1)); gen != 6 {
		t.Fatalf("no-op set bumped generation to %d", gen)
	}
	// Changed Set bumps.
	if gen := s.Set(rule(3, 9)); gen != 7 {
		t.Fatalf("modify set: generation %d, want 7", gen)
	}
	// Absent Delete is a no-op.
	if gen := s.Delete(99); gen != 7 {
		t.Fatalf("no-op delete bumped generation to %d", gen)
	}
	if gen := s.Delete(4); gen != 8 {
		t.Fatalf("delete: generation %d, want 8", gen)
	}

	odd, gen := s.Desired("sw-1")
	if gen != 8 {
		t.Fatalf("Desired generation %d, want 8", gen)
	}
	wantOdd := []classifier.RuleID{1, 3, 5}
	if len(odd) != len(wantOdd) {
		t.Fatalf("sw-1 partition has %d rules, want %d", len(odd), len(wantOdd))
	}
	for i, r := range odd {
		if r.ID != wantOdd[i] {
			t.Fatalf("sw-1 partition[%d] = rule %d, want %d (sorted)", i, r.ID, wantOdd[i])
		}
	}
	if odd[1].Action.Port != 9 {
		t.Fatalf("modified rule 3 not reflected: port %d", odd[1].Action.Port)
	}
	even, _ := s.Desired("sw-0")
	if len(even) != 2 { // 2, 6 remain; 4 deleted
		t.Fatalf("sw-0 partition has %d rules, want 2", len(even))
	}
	if s.Len() != 5 {
		t.Fatalf("store holds %d rules, want 5", s.Len())
	}
	if s.SwitchOf(3) != "sw-1" {
		t.Fatalf("SwitchOf(3) = %q", s.SwitchOf(3))
	}
	if none, _ := s.Desired("no-such-switch"); len(none) != 0 {
		t.Fatalf("unknown switch partition has %d rules", len(none))
	}
}

// TestStoreSubscribe: subscribers see one callback per effective mutation
// with the owning switch and the new generation; no-ops stay silent.
func TestStoreSubscribe(t *testing.T) {
	s := NewStore(routeMod2)
	type note struct {
		sw  string
		gen uint64
	}
	var got []note
	s.Subscribe(func(sw string, gen uint64) { got = append(got, note{sw, gen}) })

	s.Set(rule(1, 1))  // sw-1, gen 1
	s.Set(rule(2, 1))  // sw-0, gen 2
	s.Set(rule(1, 1))  // no-op
	s.Set(rule(1, 5))  // sw-1, gen 3
	s.Delete(7)        // no-op
	s.Delete(2)        // sw-0, gen 4
	want := []note{{"sw-1", 1}, {"sw-0", 2}, {"sw-1", 3}, {"sw-0", 4}}
	if len(got) != len(want) {
		t.Fatalf("got %d notifications, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notification %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
