package intent

import (
	"testing"
	"time"
)

// TestLeaseLifecycle: acquisition, renewal, contention, TTL expiry
// takeover, and release.
func TestLeaseLifecycle(t *testing.T) {
	l := NewLeaseTable(100 * time.Millisecond)
	if l.TTL() != 100*time.Millisecond {
		t.Fatalf("TTL = %v", l.TTL())
	}
	now := 10 * time.Millisecond

	ok, took := l.TryAcquire(0, "ctrl-a", now)
	if !ok || !took {
		t.Fatalf("first acquire = %v,%v, want granted takeover", ok, took)
	}
	if who, live := l.Holder(0, now); !live || who != "ctrl-a" {
		t.Fatalf("holder = %q,%v", who, live)
	}
	// A peer is refused while the lease is live.
	if ok, _ := l.TryAcquire(0, "ctrl-b", now+50*time.Millisecond); ok {
		t.Fatal("live lease handed to a peer")
	}
	// Renewal extends, and is not a takeover.
	if ok, took := l.TryAcquire(0, "ctrl-a", now+90*time.Millisecond); !ok || took {
		t.Fatalf("renewal = %v,%v, want granted non-takeover", ok, took)
	}
	// The renewal pushed expiry to now+90+100: still held at now+150.
	if ok, _ := l.TryAcquire(0, "ctrl-b", now+150*time.Millisecond); ok {
		t.Fatal("renewed lease expired early")
	}
	// Past the renewed TTL the peer takes over.
	ok, took = l.TryAcquire(0, "ctrl-b", now+191*time.Millisecond)
	if !ok || !took {
		t.Fatalf("expired takeover = %v,%v", ok, took)
	}
	if who, live := l.Holder(0, now+195*time.Millisecond); !live || who != "ctrl-b" {
		t.Fatalf("post-takeover holder = %q,%v", who, live)
	}
	// Release frees immediately for anyone.
	l.Release(0, "ctrl-a") // not the holder: no-op
	if _, live := l.Holder(0, now+195*time.Millisecond); !live {
		t.Fatal("non-holder release freed the lease")
	}
	l.Release(0, "ctrl-b")
	if ok, took := l.TryAcquire(0, "ctrl-a", now+196*time.Millisecond); !ok || !took {
		t.Fatalf("acquire after release = %v,%v", ok, took)
	}
	if l.Transfers() != 3 {
		t.Fatalf("transfers = %d, want 3", l.Transfers())
	}
	// Shards are independent.
	if ok, _ := l.TryAcquire(1, "ctrl-b", now); !ok {
		t.Fatal("other shard not independently acquirable")
	}
}
