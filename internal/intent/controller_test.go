package intent

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// fakeTarget is an in-memory switch set with scriptable readiness and
// failures — the unit-test stand-in for the fleet behind the Target seam.
type fakeTarget struct {
	mu         sync.Mutex
	rules      map[string]map[classifier.RuleID]classifier.Rule
	unready    map[string]bool
	observeErr map[string]error
	applyErr   map[string]error
	applies    int
	observes   int
}

func newFakeTarget(switches ...string) *fakeTarget {
	ft := &fakeTarget{
		rules:      make(map[string]map[classifier.RuleID]classifier.Rule),
		unready:    make(map[string]bool),
		observeErr: make(map[string]error),
		applyErr:   make(map[string]error),
	}
	for _, sw := range switches {
		ft.rules[sw] = make(map[classifier.RuleID]classifier.Rule)
	}
	return ft
}

func (ft *fakeTarget) Ready(sw string) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return !ft.unready[sw]
}

func (ft *fakeTarget) Observe(sw string) ([]classifier.Rule, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.observes++
	if err := ft.observeErr[sw]; err != nil {
		return nil, err
	}
	out := make([]classifier.Rule, 0, len(ft.rules[sw]))
	for _, r := range ft.rules[sw] {
		out = append(out, r)
	}
	return out, nil
}

func (ft *fakeTarget) Apply(sw string, op Op) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if err := ft.applyErr[sw]; err != nil {
		return err
	}
	ft.applies++
	switch op.Kind {
	case OpInsert, OpModify:
		ft.rules[sw][op.Rule.ID] = op.Rule
	case OpDelete:
		delete(ft.rules[sw], op.Rule.ID)
	}
	return nil
}

func (ft *fakeTarget) set(sw string, rules ...classifier.Rule) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	m := make(map[classifier.RuleID]classifier.Rule, len(rules))
	for _, r := range rules {
		m[r.ID] = r
	}
	ft.rules[sw] = m
}

func (ft *fakeTarget) snapshot(sw string) map[classifier.RuleID]classifier.Rule {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := make(map[classifier.RuleID]classifier.Rule, len(ft.rules[sw]))
	for id, r := range ft.rules[sw] {
		out[id] = r
	}
	return out
}

// matches asserts the target's rules equal the store's partition.
func matches(t *testing.T, s *Store, ft *fakeTarget, sw string) {
	t.Helper()
	desired, _ := s.Desired(sw)
	got := ft.snapshot(sw)
	if len(got) != len(desired) {
		t.Fatalf("%s holds %d rules, want %d", sw, len(got), len(desired))
	}
	for _, r := range desired {
		if got[r.ID] != r {
			t.Fatalf("%s rule %d = %+v, want %+v", sw, r.ID, got[r.ID], r)
		}
	}
}

const (
	swEven = "sw-0"
	swOdd  = "sw-1"
)

// driven builds a single driven controller over a fresh store, fake
// target, and virtual clock.
func driven(t *testing.T, mutate func(*Config)) (*Store, *fakeTarget, *Controller, *VirtualClock, *Trace) {
	t.Helper()
	s := NewStore(routeMod2)
	ft := newFakeTarget(swEven, swOdd)
	clk := NewVirtualClock()
	tr := NewTrace()
	cfg := Config{
		Switches: []string{swEven, swOdd},
		Shards:   2,
		Store:    s,
		Target:   ft,
		Now:      clk.Now,
		After:    clk.After,
		Trace:    tr,
		RateLimit: RateLimit{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond,
			Multiplier: 2, Jitter: 0.2},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ft, c, clk, tr
}

// TestControllerConvergesOnUpdate: store mutations trigger reconciles
// through the subscription; a burst of updates to one switch coalesces
// into one reconcile applying the whole diff.
func TestControllerConvergesOnUpdate(t *testing.T) {
	s, ft, c, _, tr := driven(t, nil)
	// Pre-existing junk on the switch must be deleted by the first pass.
	ft.set(swOdd, rule(99, 1))
	for i := 1; i <= 8; i++ {
		s.Set(rule(i, 1))
	}
	n := c.RunUntilQuiesced()
	// 8 updates across 2 switches → at most 2 reconciles each (a key
	// re-added mid-processing reconciles once more), not 8.
	if n > 4 {
		t.Fatalf("%d reconciles for a coalesced burst, want <= 4", n)
	}
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)
	if ft.snapshot(swOdd)[99] != (classifier.Rule{}) {
		t.Fatal("stale rule 99 survived reconciliation")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after quiesce", c.Pending())
	}
	gen, ok := c.ConvergedGeneration(swOdd)
	if !ok || gen != s.Generation() {
		t.Fatalf("converged generation = %d,%v, want %d", gen, ok, s.Generation())
	}
	var converges int
	for _, r := range tr.Records() {
		if r.Kind == TraceConverge {
			converges++
		}
	}
	if converges != n {
		t.Fatalf("trace has %d converges for %d reconciles", converges, n)
	}

	// A later modify + delete converges incrementally.
	s.Set(rule(2, 7))
	s.Delete(5)
	c.RunUntilQuiesced()
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)
}

// TestControllerUnreadyRequeues: an unready switch (open breaker)
// requeues with growing backoff instead of erroring, and converges once
// ready; success resets the backoff schedule.
func TestControllerUnreadyRequeues(t *testing.T) {
	s, ft, c, clk, tr := driven(t, nil)
	ft.mu.Lock()
	ft.unready[swOdd] = true
	ft.mu.Unlock()
	s.Set(rule(1, 1)) // routes to sw-1

	for i := 0; i < 3; i++ {
		if n := c.Step(); i == 0 && n != 1 {
			t.Fatalf("first step ran %d reconciles, want 1", n)
		}
		// Key is waiting out its backoff: nothing ready until the clock
		// advances.
		if n := c.Step(); n != 0 {
			t.Fatalf("step %d reconciled %d while backoff pending", i, n)
		}
		next, ok := clk.NextTimer()
		if !ok {
			t.Fatalf("no requeue timer pending after attempt %d", i+1)
		}
		clk.AdvanceTo(next)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d while unready", c.Pending())
	}
	var delays []time.Duration
	for _, r := range tr.Records() {
		if r.Kind == TraceRequeue {
			delays = append(delays, r.Lag)
		}
	}
	if len(delays) < 3 {
		t.Fatalf("only %d requeues traced", len(delays))
	}
	if delays[2] <= delays[0] {
		t.Fatalf("backoff not growing: %v", delays)
	}

	ft.mu.Lock()
	ft.unready[swOdd] = false
	ft.mu.Unlock()
	c.RunUntilQuiesced()
	matches(t, s, ft, swOdd)
	if c.Pending() != 0 {
		t.Fatal("still pending after convergence")
	}
	// Success forgot the backoff: shard queue reports zero requeues.
	if n := c.shards[c.byShard[swOdd]].q.Requeues(swOdd); n != 0 {
		t.Fatalf("requeues not reset after convergence: %d", n)
	}
}

// TestControllerTransientVsPermanent: transient observe/apply errors
// requeue and eventually converge; a permanent error halts the key and
// later triggers are ignored.
func TestControllerTransientVsPermanent(t *testing.T) {
	errTransient := errors.New("transient wire fault")
	errPermanent := errors.New("fleet closed")
	s, ft, c, clk, tr := driven(t, func(cfg *Config) {
		cfg.Permanent = func(err error) bool { return errors.Is(err, errPermanent) }
	})

	// Transient observe failure, then a transient apply failure.
	ft.mu.Lock()
	ft.observeErr[swOdd] = errTransient
	ft.mu.Unlock()
	s.Set(rule(1, 1))
	c.Step()
	ft.mu.Lock()
	ft.observeErr[swOdd] = nil
	ft.applyErr[swOdd] = errTransient
	ft.mu.Unlock()
	next, _ := clk.NextTimer()
	clk.AdvanceTo(next)
	c.Step()
	ft.mu.Lock()
	ft.applyErr[swOdd] = nil
	ft.mu.Unlock()
	next, _ = clk.NextTimer()
	clk.AdvanceTo(next)
	c.RunUntilQuiesced()
	matches(t, s, ft, swOdd)
	if _, halted := c.Halted(swOdd); halted {
		t.Fatal("transient errors halted the key")
	}

	// Permanent failure halts.
	ft.mu.Lock()
	ft.observeErr[swEven] = errPermanent
	ft.mu.Unlock()
	s.Set(rule(2, 1)) // routes to sw-0
	c.RunUntilQuiesced()
	err, halted := c.Halted(swEven)
	if !halted || !errors.Is(err, errPermanent) {
		t.Fatalf("Halted = %v,%v, want the permanent error", err, halted)
	}
	if _, ok := clk.NextTimer(); ok {
		t.Fatal("permanent failure left a requeue timer pending")
	}
	// Later triggers on a halted key are dropped.
	c.MarkDirty(swEven, DirtyFault)
	if n := c.Step(); n != 0 {
		t.Fatalf("halted key reconciled %d times", n)
	}
	var halts int
	for _, r := range tr.Records() {
		if r.Kind == TraceHalt && r.Switch == swEven {
			halts++
		}
	}
	if halts != 1 {
		t.Fatalf("trace has %d halts, want 1", halts)
	}
}

// TestControllerLeaseFailover: two replicas share the store, target,
// lease table, and clock. While A steps it owns the shards; when A stops
// (crash) and the TTL lapses, B takes the shards over and converges the
// backlog.
func TestControllerLeaseFailover(t *testing.T) {
	s := NewStore(routeMod2)
	ft := newFakeTarget(swEven, swOdd)
	clk := NewVirtualClock()
	leases := NewLeaseTable(200 * time.Millisecond)
	tr := NewTrace()
	mk := func(id string) *Controller {
		c, err := New(Config{
			Switches: []string{swEven, swOdd},
			Shards:   2,
			ID:       id,
			Store:    s,
			Target:   ft,
			Now:      clk.Now,
			After:    clk.After,
			Leases:   leases,
			Trace:    tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk("ctrl-a"), mk("ctrl-b")

	s.Set(rule(1, 1))
	s.Set(rule(2, 1))
	a.RunUntilQuiesced()
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)
	// B holds no lease: its queued keys stay put.
	if n := b.RunUntilQuiesced(); n != 0 {
		t.Fatalf("non-leader reconciled %d keys", n)
	}
	if who, _ := leases.Holder(0, clk.Now()); who != "ctrl-a" {
		t.Fatalf("shard 0 holder = %q", who)
	}

	// A crashes (stops stepping). New desired state accumulates.
	s.Set(rule(3, 9))
	s.Set(rule(4, 9))
	if n := b.RunUntilQuiesced(); n != 0 {
		t.Fatal("B drained while A's lease was live")
	}
	// Past the TTL, B takes over and converges the backlog.
	clk.Advance(250 * time.Millisecond)
	if n := b.RunUntilQuiesced(); n == 0 {
		t.Fatal("B never took over after lease expiry")
	}
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)
	if who, _ := leases.Holder(0, clk.Now()); who != "ctrl-b" {
		t.Fatalf("post-failover shard 0 holder = %q", who)
	}
	var handoffs int
	for _, r := range tr.Records() {
		if r.Kind == TraceLease && r.Who == "ctrl-b" {
			handoffs++
		}
	}
	if handoffs != 2 { // both shards
		t.Fatalf("trace shows %d takeovers by B, want 2", handoffs)
	}
	if leases.Transfers() != 4 { // A takes 2, B takes 2
		t.Fatalf("lease transfers = %d, want 4", leases.Transfers())
	}
}

// scenario runs one fixed chaos-flavored script against a fresh driven
// controller and returns the trace digest.
func scenario(t *testing.T, seed int64) uint64 {
	t.Helper()
	var digest uint64
	s, ft, c, clk, tr := driven(t, func(cfg *Config) { cfg.Seed = seed })
	ft.mu.Lock()
	ft.unready[swEven] = true
	ft.mu.Unlock()
	for i := 1; i <= 10; i++ {
		s.Set(rule(i, i))
	}
	c.Step()
	clk.Advance(15 * time.Millisecond)
	c.Step()
	s.Delete(3)
	s.Set(rule(4, 40))
	ft.mu.Lock()
	ft.unready[swEven] = false
	ft.mu.Unlock()
	c.MarkDirty(swEven, DirtyReconnect)
	for {
		c.RunUntilQuiesced()
		next, ok := clk.NextTimer()
		if !ok {
			break
		}
		clk.AdvanceTo(next)
	}
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)
	digest = tr.Digest()
	return digest
}

// TestControllerTraceDigestDeterministic: the same scripted run yields
// byte-identical traces; a different jitter seed yields a different
// schedule and so a different digest.
func TestControllerTraceDigestDeterministic(t *testing.T) {
	a, b := scenario(t, 7), scenario(t, 7)
	if a != b {
		t.Fatalf("same-seed digests differ: %x vs %x", a, b)
	}
	if c := scenario(t, 8); c == a {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestControllerGoroutineMode: Run drains queues on worker goroutines
// with real timers, the resync tick repairs drift the controller was
// never told about, and Close joins everything.
func TestControllerGoroutineMode(t *testing.T) {
	s := NewStore(routeMod2)
	ft := newFakeTarget(swEven, swOdd)
	var tick atomic.Int64
	reg := obs.NewRegistry()
	c, err := New(Config{
		Switches: []string{swEven, swOdd},
		Shards:   2,
		Store:    s,
		Target:   ft,
		Now:      func() time.Duration { return time.Duration(tick.Add(1)) },
		Resync:   20 * time.Millisecond,
		Obs:      reg,
		RateLimit: RateLimit{Base: time.Millisecond, Max: 10 * time.Millisecond,
			Multiplier: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	defer c.Close()

	for i := 1; i <= 20; i++ {
		s.Set(rule(i, 1))
	}
	waitConverged := func(what string) {
		t.Helper()
		for i := 0; ; i++ {
			genE, okE := c.ConvergedGeneration(swEven)
			genO, okO := c.ConvergedGeneration(swOdd)
			if okE && okO && genE == s.Generation() && genO == s.Generation() &&
				c.Pending() == 0 {
				return
			}
			if i > 1000 {
				t.Fatalf("%s: never converged (pending %d)", what, c.Pending())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitConverged("initial load")
	matches(t, s, ft, swEven)
	matches(t, s, ft, swOdd)

	// Drift injected behind the controller's back: only the periodic
	// resync tick can notice.
	ft.set(swOdd, rule(99, 9))
	for i := 0; ; i++ {
		got := ft.snapshot(swOdd)
		if _, stale := got[99]; !stale {
			desired, _ := s.Desired(swOdd)
			if len(got) == len(desired) {
				break
			}
		}
		if i > 1000 {
			t.Fatal("resync never repaired injected drift")
		}
		time.Sleep(5 * time.Millisecond)
	}
	matches(t, s, ft, swOdd)
	if c.converges.Value() == 0 {
		t.Fatal("converges counter never incremented")
	}
	if c.lag.Count() == 0 {
		t.Fatal("lag histogram never recorded")
	}
}
