package intent

import (
	"sort"
	"sync"

	"hermes/internal/classifier"
)

// Store is the versioned desired-rule-set store: the single source of
// truth for what the network should look like. Every effective mutation
// bumps a fleet-wide generation number, and rules are partitioned per
// switch by the injected route function (production wires fleet.Route in,
// so the store's partitions match the fleet's consistent routing).
// Subscribers are notified with the affected switch after each mutation —
// the desired-update trigger feeding reconcile queues.
type Store struct {
	route func(classifier.RuleID) string

	mu       sync.RWMutex
	gen      uint64
	rules    map[classifier.RuleID]classifier.Rule
	bySwitch map[string]map[classifier.RuleID]classifier.Rule
	subs     []func(switchID string, gen uint64)
}

// NewStore builds an empty store over the given rule→switch route
// function.
func NewStore(route func(classifier.RuleID) string) *Store {
	return &Store{
		route:    route,
		rules:    make(map[classifier.RuleID]classifier.Rule),
		bySwitch: make(map[string]map[classifier.RuleID]classifier.Rule),
	}
}

// Subscribe registers a mutation observer. It fires once per effective
// Set/Delete with the affected switch and the new generation, after the
// store reflects the change. Callbacks run on the mutating goroutine:
// keep them fast (enqueue and return) and never call back into the store.
func (s *Store) Subscribe(fn func(switchID string, gen uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// Set inserts or replaces one desired rule, returning the generation that
// now covers it. Setting a rule to its current value is a no-op and does
// not bump the generation.
func (s *Store) Set(r classifier.Rule) uint64 {
	sw := s.route(r.ID)
	s.mu.Lock()
	if cur, ok := s.rules[r.ID]; ok && cur == r {
		gen := s.gen
		s.mu.Unlock()
		return gen
	}
	s.gen++
	gen := s.gen
	s.rules[r.ID] = r
	part := s.bySwitch[sw]
	if part == nil {
		part = make(map[classifier.RuleID]classifier.Rule)
		s.bySwitch[sw] = part
	}
	part[r.ID] = r
	subs := s.subs
	s.mu.Unlock()
	for _, fn := range subs {
		fn(sw, gen)
	}
	return gen
}

// Delete removes one desired rule, returning the resulting generation.
// Deleting an absent rule is a no-op.
func (s *Store) Delete(id classifier.RuleID) uint64 {
	sw := s.route(id)
	s.mu.Lock()
	if _, ok := s.rules[id]; !ok {
		gen := s.gen
		s.mu.Unlock()
		return gen
	}
	s.gen++
	gen := s.gen
	delete(s.rules, id)
	delete(s.bySwitch[sw], id)
	subs := s.subs
	s.mu.Unlock()
	for _, fn := range subs {
		fn(sw, gen)
	}
	return gen
}

// Desired returns the switch's desired partition, sorted by rule ID, and
// the store generation the snapshot reflects.
func (s *Store) Desired(switchID string) ([]classifier.Rule, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	part := s.bySwitch[switchID]
	out := make([]classifier.Rule, 0, len(part))
	for _, r := range part {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, s.gen
}

// Generation returns the current store generation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Len returns the number of desired rules fleet-wide.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rules)
}

// SwitchOf reports the switch a rule routes to.
func (s *Store) SwitchOf(id classifier.RuleID) string { return s.route(id) }
