// Package intent is the declarative control plane over the fleet: a
// versioned desired-rule-set store plus per-switch level-triggered
// reconcile loops, the layer that turns "make the network look like
// this" into the minimal flow-mod plans the imperative fleet API
// executes (the controller half of the paper's Fig. 2, made
// self-healing).
//
// The store holds the controller's desired rules, generation-numbered
// and partitioned per switch by an injected route function. Each switch
// has a key in a deduplicating workqueue; every trigger — a desired-set
// update, a switch reconnect, an injected fault, the periodic resync
// tick — collapses into the same pending key, and the reconcile step is
// level-triggered: it diffs the full desired partition against the rules
// the switch actually holds and applies the minimal insert/modify/delete
// plan, so missed or coalesced triggers can never strand drift. Failures
// requeue with rate-limited exponential backoff; an unready switch (open
// circuit) requeues rather than erroring; only a permanent error (closed
// fleet) halts a key. Shards hash switches across independent queues,
// and an optional lease table hands shards between controller replicas
// for failover.
//
// Determinism contract: the package never reads the wall clock or global
// randomness — time comes from an injected Now func, delayed requeues go
// through an injected timer seam (time.AfterFunc in production, a
// VirtualClock in harnesses), and backoff jitter is hash-derived. All
// switch I/O crosses the Target interface, so the deterministic-lint
// call-graph chase stops at the seam: production adapters wrap the
// fleet, harness targets wrap in-process agents, and the same reconcile
// code runs under both.
package intent

import (
	"sort"

	"hermes/internal/classifier"
)

// OpKind names one mutation in a reconcile plan.
type OpKind uint8

// The plan mutation kinds, in the order a plan applies them.
const (
	// OpDelete removes a rule the switch holds but the store does not.
	OpDelete OpKind = iota + 1
	// OpModify rewrites a rule whose observed body drifted from desired.
	OpModify
	// OpInsert installs a rule the store holds but the switch does not.
	OpInsert
)

func (k OpKind) String() string {
	switch k {
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	case OpInsert:
		return "insert"
	default:
		return "unknown"
	}
}

// Op is one planned mutation. For deletes only Rule.ID is meaningful.
type Op struct {
	Kind OpKind
	Rule classifier.Rule
}

// Target is the switch-facing seam the reconciler drives. Implementations
// wrap the fleet (production), a fake (unit tests), or in-process agents
// (the deterministic convergence harness). Methods must be safe for
// concurrent use when the controller runs in goroutine mode.
type Target interface {
	// Ready reports whether the switch can take requests now — false for
	// an open circuit breaker. An unready switch requeues with backoff
	// instead of counting as a reconcile failure.
	Ready(switchID string) bool
	// Observe returns the rule set the switch currently holds.
	Observe(switchID string) ([]classifier.Rule, error)
	// Apply performs one mutation on the switch.
	Apply(switchID string, op Op) error
}

// Diff computes the minimal plan driving observed to desired: deletes
// for extras, modifies for drift, inserts for gaps — deletes first (so a
// near-full TCAM frees entries before taking new ones), each group in
// ascending rule-ID order so identical states always yield the identical
// plan. Inputs need not be sorted; they are not mutated.
func Diff(desired, observed []classifier.Rule) []Op {
	want := make(map[classifier.RuleID]classifier.Rule, len(desired))
	for _, r := range desired {
		want[r.ID] = r
	}
	var dels, mods, ins []Op
	have := make(map[classifier.RuleID]bool, len(observed))
	for _, r := range observed {
		have[r.ID] = true
		w, ok := want[r.ID]
		switch {
		case !ok:
			dels = append(dels, Op{Kind: OpDelete, Rule: classifier.Rule{ID: r.ID}})
		case w != r:
			mods = append(mods, Op{Kind: OpModify, Rule: w})
		}
	}
	for _, r := range desired {
		if !have[r.ID] {
			ins = append(ins, Op{Kind: OpInsert, Rule: r})
		}
	}
	byID := func(ops []Op) {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Rule.ID < ops[j].Rule.ID })
	}
	byID(dels)
	byID(mods)
	byID(ins)
	plan := make([]Op, 0, len(dels)+len(mods)+len(ins))
	plan = append(plan, dels...)
	plan = append(plan, mods...)
	plan = append(plan, ins...)
	return plan
}

// fnv64a hashes a string with FNV-1a; used for shard assignment and
// hash-derived backoff jitter.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 finalizes a word SplitMix64-style; composed with fnv64a it gives
// the stateless per-(key, attempt) jitter fractions.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
