package intent

import (
	"fmt"

	"hermes/internal/obs"
)

// registerObs exposes the controller on its obs registry: per-shard queue
// depth and requeue counters as scrape-time closures over state the
// queues already maintain, plus live convergence instruments (counter and
// lag histogram) the reconcile step records into. Labels carry the
// controller ID (and shard where it applies) so multi-replica deployments
// stay distinguishable on one /metrics page.
func (c *Controller) registerObs() {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	ctrl := obs.Labels("controller", c.cfg.ID)
	c.converges = reg.CounterL("hermes_intent_converges_total", ctrl,
		"reconciles that drove a switch to zero diff")
	c.lag = reg.HistogramL("hermes_intent_convergence_lag_ns", ctrl, "ns",
		"time from a switch's first dirty mark to its convergence")
	reg.GaugeFunc("hermes_intent_pending_switches", ctrl,
		"switches marked dirty and not yet reconverged",
		func() float64 { return float64(c.Pending()) })
	reg.CounterFunc("hermes_intent_generation", ctrl,
		"current desired-state store generation",
		func() uint64 { return c.cfg.Store.Generation() })
	for _, s := range c.shards {
		s := s
		lbl := obs.Labels("controller", c.cfg.ID, "shard", fmt.Sprintf("%d", s.idx))
		reg.GaugeFunc("hermes_intent_queue_depth", lbl,
			"reconcile keys ready in the shard's workqueue",
			func() float64 { return float64(s.q.Len()) })
		reg.CounterFunc("hermes_intent_requeues_total", lbl,
			"rate-limited requeues after failed or not-ready reconciles",
			func() uint64 { _, rq := s.q.Stats(); return rq })
		reg.CounterFunc("hermes_intent_triggers_total", lbl,
			"dirty marks delivered to the shard's queue (pre-dedup)",
			func() uint64 { adds, _ := s.q.Stats(); return adds })
	}
}
