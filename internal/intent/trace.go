package intent

import (
	"container/heap"
	"sync"
	"time"
)

// RecordKind names one reconciler trace event.
type RecordKind uint8

// The trace event kinds.
const (
	// TraceDirty: a trigger marked the switch pending.
	TraceDirty RecordKind = iota + 1
	// TraceRequeue: a reconcile failed (or found the switch unready) and
	// the key was requeued with backoff. Aux is the attempt number, Lag
	// the chosen delay.
	TraceRequeue
	// TraceConverge: a reconcile drove the switch to zero diff. Gen is
	// the covered store generation, Aux the plan size, Lag the time from
	// first dirty mark to convergence.
	TraceConverge
	// TraceLease: the controller took the shard named by Aux.
	TraceLease
	// TraceHalt: a permanent error stopped the key. Aux is the attempt.
	TraceHalt
)

func (k RecordKind) String() string {
	switch k {
	case TraceDirty:
		return "dirty"
	case TraceRequeue:
		return "requeue"
	case TraceConverge:
		return "converge"
	case TraceLease:
		return "lease"
	case TraceHalt:
		return "halt"
	default:
		return "unknown"
	}
}

// Record is one reconciler trace event on the controller's clock.
type Record struct {
	At     time.Duration
	Kind   RecordKind
	Switch string
	Who    string // controller identity
	Gen    uint64
	Aux    uint64
	Lag    time.Duration
}

// Trace accumulates reconciler events. Its Digest folds every field of
// every record into one value, so two runs converged "the same way" —
// same triggers, same requeues, same lease handoffs, same instants —
// exactly when their digests match. That is the reproducibility check the
// chaos experiment gates on.
type Trace struct {
	mu   sync.Mutex
	recs []Record
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(r Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, r)
	t.mu.Unlock()
}

// Records returns a copy of the accumulated events in append order.
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.recs...)
}

// Len returns the number of accumulated events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Digest folds the full trace into one FNV-1a value: identical digests ⇔
// byte-identical event sequences.
func (t *Trace) Digest() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	str := func(s string) {
		word(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	for _, r := range t.recs {
		word(uint64(r.At))
		word(uint64(r.Kind))
		str(r.Switch)
		str(r.Who)
		word(r.Gen)
		word(r.Aux)
		word(uint64(r.Lag))
	}
	return h
}

// VirtualClock is a deterministic single-goroutine time source for driven
// controllers: Now reads virtual time, After schedules callbacks on it,
// and AdvanceTo fires due callbacks in (time, schedule-order) sequence.
// It is intentionally NOT safe for concurrent use — the whole point is
// that a harness owning the only goroutine replays identically.
type VirtualClock struct {
	now    time.Duration
	timers vtimerHeap
	seq    uint64
}

// NewVirtualClock starts at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// After schedules fn to run when virtual time reaches now+d.
func (c *VirtualClock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.seq++
	heap.Push(&c.timers, vtimer{at: c.now + d, seq: c.seq, fn: fn})
}

// NextTimer reports the earliest pending callback's due time.
func (c *VirtualClock) NextTimer() (time.Duration, bool) {
	if len(c.timers) == 0 {
		return 0, false
	}
	return c.timers[0].at, true
}

// AdvanceTo moves virtual time forward to t, firing every callback due on
// the way in deterministic order. Callbacks may schedule further
// callbacks; those due at or before t fire in the same sweep. Time never
// moves backward.
func (c *VirtualClock) AdvanceTo(t time.Duration) {
	for len(c.timers) > 0 && c.timers[0].at <= t {
		tm := heap.Pop(&c.timers).(vtimer)
		if tm.at > c.now {
			c.now = tm.at
		}
		tm.fn()
	}
	if t > c.now {
		c.now = t
	}
}

// Advance moves virtual time forward by d.
func (c *VirtualClock) Advance(d time.Duration) { c.AdvanceTo(c.now + d) }

type vtimer struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type vtimerHeap []vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *vtimerHeap) Push(x any)        { *h = append(*h, x.(vtimer)) }
func (h *vtimerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
