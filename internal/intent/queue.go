package intent

import (
	"sync"
	"time"
)

// RateLimit shapes the per-key requeue backoff: exponential growth from
// Base to Max with hash-derived jitter, so a key that keeps failing backs
// off harder while the schedule stays a pure function of (seed, key,
// attempt) — no RNG state, identical on replay regardless of goroutine
// interleaving.
type RateLimit struct {
	// Base is the first requeue delay. Defaults to 5ms.
	Base time.Duration
	// Max caps the backoff growth. Defaults to 1s.
	Max time.Duration
	// Multiplier is the exponential growth factor. Defaults to 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// the delay is scaled by 1 - Jitter/2 + Jitter*frac where frac is
	// hash-derived. Defaults to 0.2.
	Jitter float64
}

func (r RateLimit) withDefaults() RateLimit {
	if r.Base <= 0 {
		r.Base = 5 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = time.Second
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	if r.Jitter < 0 || r.Jitter > 1 {
		r.Jitter = 0.2
	}
	return r
}

// delayFor computes the backoff before attempt n (1-based) of key — a
// pure function, so concurrent queues with the same seed replay the same
// schedule.
func (r RateLimit) delayFor(seed int64, key string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(r.Base)
	for i := 1; i < attempt && d < float64(r.Max); i++ {
		d *= r.Multiplier
	}
	if max := float64(r.Max); d > max {
		d = max
	}
	if j := r.Jitter; j > 0 {
		frac := float64(mix64(uint64(seed)^fnv64a(key)^uint64(attempt))%1024) / 1024
		d *= 1 - j/2 + j*frac
	}
	return time.Duration(d)
}

// Queue is a keyed, deduplicating work queue with rate-limited requeues —
// the level-triggered scheduling core of the reconciler. Any number of
// Add calls for a key collapse into at most one pending item; adding a
// key that is currently being processed defers it until Done, so a
// reconcile never races itself on the same switch. Delayed re-adds go
// through the injected timer seam, which is what lets a virtual-time
// harness drive the same queue code the production controller runs.
type Queue struct {
	limit RateLimit
	seed  int64
	after func(time.Duration, func())

	mu         sync.Mutex
	ready      []string // FIFO of keys awaiting Get
	dirty      map[string]bool
	processing map[string]bool
	requeues   map[string]int
	adds       uint64
	requeued   uint64

	signal chan struct{} // capacity 1: "ready may be non-empty"
}

// newQueue builds a queue over the timer seam. after must eventually run
// its callback once the delay elapses (time.AfterFunc semantics).
func newQueue(limit RateLimit, seed int64, after func(time.Duration, func())) *Queue {
	return &Queue{
		limit:      limit.withDefaults(),
		seed:       seed,
		after:      after,
		dirty:      make(map[string]bool),
		processing: make(map[string]bool),
		requeues:   make(map[string]int),
		signal:     make(chan struct{}, 1),
	}
}

// Add marks the key pending. Duplicate adds coalesce; an add while the
// key is processing re-queues it when Done runs.
func (q *Queue) Add(key string) {
	q.mu.Lock()
	q.adds++
	if q.dirty[key] {
		q.mu.Unlock()
		return
	}
	q.dirty[key] = true
	if q.processing[key] {
		q.mu.Unlock()
		return
	}
	q.ready = append(q.ready, key)
	q.mu.Unlock()
	q.poke()
}

// AddAfter marks the key pending once d elapses.
func (q *Queue) AddAfter(key string, d time.Duration) {
	if d <= 0 {
		q.Add(key)
		return
	}
	q.after(d, func() { q.Add(key) })
}

// AddRateLimited requeues the key after its next backoff delay,
// incrementing the per-key attempt count, and returns the chosen delay.
func (q *Queue) AddRateLimited(key string) time.Duration {
	q.mu.Lock()
	q.requeues[key]++
	n := q.requeues[key]
	q.requeued++
	q.mu.Unlock()
	d := q.limit.delayFor(q.seed, key, n)
	q.AddAfter(key, d)
	return d
}

// Forget resets the key's backoff — called after a successful reconcile
// so the next failure starts the schedule over.
func (q *Queue) Forget(key string) {
	q.mu.Lock()
	delete(q.requeues, key)
	q.mu.Unlock()
}

// Requeues returns the key's current consecutive-failure count.
func (q *Queue) Requeues(key string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.requeues[key]
}

// TryGet pops the oldest pending key, marking it processing. It never
// blocks; ok is false when nothing is pending.
func (q *Queue) TryGet() (key string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ready) == 0 {
		return "", false
	}
	key = q.ready[0]
	q.ready = q.ready[1:]
	delete(q.dirty, key)
	q.processing[key] = true
	return key, true
}

// Done releases a key TryGet handed out. If the key was re-added while
// processing, it goes back on the ready list.
func (q *Queue) Done(key string) {
	q.mu.Lock()
	delete(q.processing, key)
	requeue := q.dirty[key]
	if requeue {
		q.ready = append(q.ready, key)
	}
	q.mu.Unlock()
	if requeue {
		q.poke()
	}
}

// Len returns the number of keys awaiting TryGet.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready)
}

// Stats returns the lifetime add and rate-limited-requeue counts.
func (q *Queue) Stats() (adds, requeued uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.adds, q.requeued
}

// Signal returns a channel that receives after Adds that may have made
// the queue non-empty — the wake-up a goroutine-mode worker blocks on.
func (q *Queue) Signal() <-chan struct{} { return q.signal }

// poke wakes one Signal waiter without blocking.
func (q *Queue) poke() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}
