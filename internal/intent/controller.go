package intent

import (
	"errors"
	"sync"
	"time"

	"hermes/internal/obs"
)

// DirtyReason names the trigger that marked a switch pending. All reasons
// funnel into the same queue key — the reconcile step is level-triggered
// and does not care why it runs, but traces and operators do.
type DirtyReason uint8

// The unified trigger sources.
const (
	// DirtyUpdate: the desired set changed (store generation bump).
	DirtyUpdate DirtyReason = iota + 1
	// DirtyReconnect: the switch's control channel reconnected — it may
	// have restarted with empty tables.
	DirtyReconnect
	// DirtyFault: an injected or detected fault touched the switch.
	DirtyFault
	// DirtyResync: the periodic full-resync tick.
	DirtyResync
)

func (r DirtyReason) String() string {
	switch r {
	case DirtyUpdate:
		return "update"
	case DirtyReconnect:
		return "reconnect"
	case DirtyFault:
		return "fault"
	case DirtyResync:
		return "resync"
	default:
		return "unknown"
	}
}

// Config assembles a Controller. Store, Target, Switches, and Now are
// required; everything else has workable defaults.
type Config struct {
	// Switches is the managed switch set; each gets a reconcile key.
	Switches []string
	// Shards spreads switches across independent queues (and leases) by
	// hash. Defaults to 1.
	Shards int
	// ID is this controller replica's identity for leases and traces.
	// Defaults to "ctrl".
	ID string
	// Store holds the desired state. The controller subscribes to it: an
	// effective Set/Delete marks the owning switch dirty.
	Store *Store
	// Target is the switch-facing seam the reconcile step drives.
	Target Target
	// Now is the controller's clock — virtual in harnesses, a process
	// monotonic offset in production. Required; the package never reads
	// the wall clock itself.
	Now func() time.Duration
	// After schedules delayed requeues. Defaults to time.AfterFunc.
	// Harnesses inject VirtualClock.After so backoff elapses in virtual
	// time.
	After func(time.Duration, func())
	// Resync, when > 0, marks every switch dirty at this period in
	// goroutine mode (Run). Driven controllers resync by calling
	// MarkAll(DirtyResync) from their harness schedule instead.
	Resync time.Duration
	// RateLimit shapes the per-switch requeue backoff.
	RateLimit RateLimit
	// Seed feeds the hash-derived backoff jitter. Defaults to 1.
	Seed int64
	// Leases, when non-nil, gates each shard on holding its lease, for
	// multi-replica failover. Replicas share the table and the Store.
	Leases *LeaseTable
	// Trace, when non-nil, records every trigger, requeue, convergence,
	// and lease handoff.
	Trace *Trace
	// Obs, when non-nil, exposes queue depths, requeue/convergence
	// counters, and the convergence-lag histogram.
	Obs *obs.Registry
	// Permanent classifies errors that must halt a key instead of
	// requeueing it (a closed fleet). Nil treats every error as
	// transient.
	Permanent func(error) bool
}

// ErrConfig is returned by New for an unusable configuration.
var ErrConfig = errors.New("intent: invalid controller config")

type shard struct {
	idx int
	q   *Queue
}

// Controller runs the per-switch level-triggered reconcile loops: one
// queue key per switch, sharded across queues, drained either by an
// owning goroutine per shard (Run) or synchronously by a harness (Step /
// RunUntilQuiesced) — the same reconcile step either way.
type Controller struct {
	cfg     Config
	shards  []*shard
	byShard map[string]int

	mu         sync.Mutex
	dirtySince map[string]time.Duration
	converged  map[string]uint64
	halted     map[string]error

	converges *obs.Counter
	lag       *obs.Histogram

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
	running  bool
}

// New validates the config and builds a controller. The controller
// subscribes to the store; callers then trigger the first reconciles with
// MarkAll (or individual MarkDirty calls) and either Run goroutines or
// drive Step from a harness.
func New(cfg Config) (*Controller, error) {
	if cfg.Store == nil || cfg.Target == nil || cfg.Now == nil || len(cfg.Switches) == 0 {
		return nil, ErrConfig
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ID == "" {
		cfg.ID = "ctrl"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.After == nil {
		cfg.After = func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
	}
	cfg.RateLimit = cfg.RateLimit.withDefaults()
	c := &Controller{
		cfg:        cfg,
		byShard:    make(map[string]int, len(cfg.Switches)),
		dirtySince: make(map[string]time.Duration),
		converged:  make(map[string]uint64),
		halted:     make(map[string]error),
		stop:       make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shard{
			idx: i,
			q:   newQueue(cfg.RateLimit, cfg.Seed, cfg.After),
		})
	}
	for _, sw := range cfg.Switches {
		if _, dup := c.byShard[sw]; dup {
			return nil, ErrConfig
		}
		c.byShard[sw] = int(fnv64a(sw) % uint64(cfg.Shards))
	}
	cfg.Store.Subscribe(func(sw string, _ uint64) { c.MarkDirty(sw, DirtyUpdate) })
	c.registerObs()
	return c, nil
}

// MarkDirty queues the switch for reconciliation. Unknown switches are
// ignored (the store may route rules to switches another controller
// owns); halted switches stay halted.
func (c *Controller) MarkDirty(sw string, why DirtyReason) {
	si, ok := c.byShard[sw]
	if !ok {
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	if _, dead := c.halted[sw]; dead {
		c.mu.Unlock()
		return
	}
	if _, pending := c.dirtySince[sw]; !pending {
		c.dirtySince[sw] = now
	}
	c.mu.Unlock()
	c.cfg.Trace.add(Record{At: now, Kind: TraceDirty, Switch: sw, Who: c.cfg.ID,
		Gen: c.cfg.Store.Generation(), Aux: uint64(why)})
	c.shards[si].q.Add(sw)
}

// MarkAll queues every managed switch — the resync trigger.
func (c *Controller) MarkAll(why DirtyReason) {
	for _, sw := range c.cfg.Switches {
		c.MarkDirty(sw, why)
	}
}

// Step drains every currently-ready key once across all shards the
// controller holds (or can take) a lease for, running reconciles inline
// on the caller's goroutine. It returns the number of reconcile attempts.
// This is the driven mode: a deterministic harness alternates Step with
// advancing its virtual clock.
func (c *Controller) Step() int {
	n := 0
	for _, s := range c.shards {
		if !c.ownShard(s) {
			continue
		}
		for {
			key, ok := s.q.TryGet()
			if !ok {
				break
			}
			c.reconcile(s, key)
			s.q.Done(key)
			n++
		}
	}
	return n
}

// RunUntilQuiesced calls Step until no key is ready, returning the total
// reconcile attempts. Keys requeued with backoff are not ready until the
// harness advances its clock past their delay, so this terminates.
func (c *Controller) RunUntilQuiesced() int {
	total := 0
	for {
		n := c.Step()
		if n == 0 {
			return total
		}
		total += n
	}
}

// ownShard takes or renews the shard's lease, tracing handoffs. Without a
// lease table the controller owns every shard.
func (c *Controller) ownShard(s *shard) bool {
	if c.cfg.Leases == nil {
		return true
	}
	now := c.cfg.Now()
	ok, took := c.cfg.Leases.TryAcquire(s.idx, c.cfg.ID, now)
	if took {
		c.cfg.Trace.add(Record{At: now, Kind: TraceLease, Who: c.cfg.ID, Aux: uint64(s.idx)})
	}
	return ok
}

// reconcile is the level-triggered step for one switch: observe, diff
// against desired, apply the minimal plan. Failures and unready switches
// requeue with backoff; permanent errors halt the key.
func (c *Controller) reconcile(s *shard, sw string) {
	now := c.cfg.Now()
	if !c.cfg.Target.Ready(sw) {
		c.requeue(s, sw, now)
		return
	}
	desired, gen := c.cfg.Store.Desired(sw)
	observed, err := c.cfg.Target.Observe(sw)
	if err != nil {
		c.fail(s, sw, now, err)
		return
	}
	plan := Diff(desired, observed)
	for _, op := range plan {
		if err := c.cfg.Target.Apply(sw, op); err != nil {
			c.fail(s, sw, now, err)
			return
		}
	}
	end := c.cfg.Now()
	c.mu.Lock()
	since, wasDirty := c.dirtySince[sw]
	delete(c.dirtySince, sw)
	c.converged[sw] = gen
	c.mu.Unlock()
	s.q.Forget(sw)
	var lag time.Duration
	if wasDirty {
		lag = end - since
	}
	if c.converges != nil {
		c.converges.Inc()
		c.lag.RecordDuration(lag)
	}
	c.cfg.Trace.add(Record{At: end, Kind: TraceConverge, Switch: sw, Who: c.cfg.ID,
		Gen: gen, Aux: uint64(len(plan)), Lag: lag})
}

// fail routes one reconcile error: requeue when transient, halt when the
// config classifies it permanent.
func (c *Controller) fail(s *shard, sw string, now time.Duration, err error) {
	if c.cfg.Permanent != nil && c.cfg.Permanent(err) {
		attempt := s.q.Requeues(sw)
		c.mu.Lock()
		c.halted[sw] = err
		delete(c.dirtySince, sw)
		c.mu.Unlock()
		c.cfg.Trace.add(Record{At: now, Kind: TraceHalt, Switch: sw, Who: c.cfg.ID,
			Aux: uint64(attempt)})
		return
	}
	c.requeue(s, sw, now)
}

func (c *Controller) requeue(s *shard, sw string, now time.Duration) {
	d := s.q.AddRateLimited(sw)
	c.cfg.Trace.add(Record{At: now, Kind: TraceRequeue, Switch: sw, Who: c.cfg.ID,
		Aux: uint64(s.q.Requeues(sw)), Lag: d})
}

// ConvergedGeneration reports the store generation the switch's last
// successful reconcile covered.
func (c *Controller) ConvergedGeneration(sw string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen, ok := c.converged[sw]
	return gen, ok
}

// Halted reports the permanent error that stopped the switch's key, if
// any.
func (c *Controller) Halted(sw string) (error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err, ok := c.halted[sw]
	return err, ok
}

// Pending reports how many switches are marked dirty and not yet
// converged (including those waiting out a backoff delay).
func (c *Controller) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirtySince)
}

// Run starts goroutine mode: one worker per shard draining its queue on
// signals, plus a resync ticker when configured. Close stops everything.
// Run and Step must not be mixed on the same controller.
func (c *Controller) Run() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	c.mu.Unlock()
	for _, s := range c.shards {
		c.wg.Add(1)
		go c.worker(s)
	}
	if c.cfg.Resync > 0 {
		c.wg.Add(1)
		go c.resyncLoop()
	}
}

func (c *Controller) worker(s *shard) {
	defer c.wg.Done()
	for {
		c.drain(s)
		select {
		case <-c.stop:
			return
		case <-s.q.Signal():
		}
	}
}

// drain processes ready keys until the queue empties or the shard's lease
// is lost. Without the lease the items stay queued; a retry poke after
// the TTL re-attempts acquisition so a takeover needs no fresh trigger.
func (c *Controller) drain(s *shard) {
	for {
		if !c.ownShard(s) {
			if c.cfg.Leases != nil && s.q.Len() > 0 {
				c.cfg.After(c.cfg.Leases.TTL(), s.q.poke)
			}
			return
		}
		key, ok := s.q.TryGet()
		if !ok {
			return
		}
		c.reconcile(s, key)
		s.q.Done(key)
		select {
		case <-c.stop:
			return
		default:
		}
	}
}

func (c *Controller) resyncLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Resync)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.MarkAll(DirtyResync)
		}
	}
}

// Close stops goroutine mode and waits for the workers. Safe to call
// repeatedly, and a no-op for driven controllers.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}
