package intent

import (
	"sync"
	"time"
)

// LeaseTable coordinates shard ownership across controller replicas: a
// shard's queue is only drained by the replica currently holding its
// lease, and a replica that stops renewing (crashed, partitioned away)
// loses the shard to whichever peer asks next after the TTL — leader
// handoff without external coordination, on the controllers' shared
// clock. In-memory by design: replicas in one process share the table
// directly, and the deterministic harness drives failover by advancing
// virtual time past the TTL.
type LeaseTable struct {
	ttl time.Duration

	mu        sync.Mutex
	holders   map[int]*leaseEntry
	transfers uint64
}

type leaseEntry struct {
	who     string
	expires time.Duration
}

// NewLeaseTable builds a table whose leases last ttl past their most
// recent renewal. ttl must be positive.
func NewLeaseTable(ttl time.Duration) *LeaseTable {
	if ttl <= 0 {
		ttl = 500 * time.Millisecond
	}
	return &LeaseTable{ttl: ttl, holders: make(map[int]*leaseEntry)}
}

// TTL returns the lease duration.
func (l *LeaseTable) TTL() time.Duration { return l.ttl }

// TryAcquire attempts to take or renew the shard's lease for who at now.
// ok reports whether who holds the lease after the call; took reports
// whether this call changed the holder (first acquisition or takeover of
// an expired lease) — the transition a trace records as a handoff.
func (l *LeaseTable) TryAcquire(shard int, who string, now time.Duration) (ok, took bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.holders[shard]
	switch {
	case e == nil:
		l.holders[shard] = &leaseEntry{who: who, expires: now + l.ttl}
		l.transfers++
		return true, true
	case e.who == who:
		e.expires = now + l.ttl
		return true, false
	case now >= e.expires:
		e.who = who
		e.expires = now + l.ttl
		l.transfers++
		return true, true
	default:
		return false, false
	}
}

// Release gives the shard's lease up if who holds it, letting a peer take
// over immediately instead of waiting out the TTL.
func (l *LeaseTable) Release(shard int, who string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.holders[shard]; e != nil && e.who == who {
		delete(l.holders, shard)
	}
}

// Holder reports the shard's current holder, if its lease is live at now.
func (l *LeaseTable) Holder(shard int, now time.Duration) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.holders[shard]
	if e == nil || now >= e.expires {
		return "", false
	}
	return e.who, true
}

// Transfers returns how many times any shard changed holders.
func (l *LeaseTable) Transfers() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transfers
}
