package intent

import (
	"testing"
	"time"
)

// TestQueueDedupAndProcessing: duplicate adds collapse; an add during
// processing defers exactly one re-queue to Done.
func TestQueueDedupAndProcessing(t *testing.T) {
	clk := NewVirtualClock()
	q := newQueue(RateLimit{}, 1, clk.After)

	q.Add("a")
	q.Add("a")
	q.Add("b")
	q.Add("a")
	if q.Len() != 2 {
		t.Fatalf("queue depth %d after deduped adds, want 2", q.Len())
	}
	k, ok := q.TryGet()
	if !ok || k != "a" {
		t.Fatalf("TryGet = %q,%v, want a (FIFO)", k, ok)
	}
	// Re-adds while a is processing defer, not duplicate.
	q.Add("a")
	q.Add("a")
	if q.Len() != 1 { // only b
		t.Fatalf("depth %d while a processing, want 1", q.Len())
	}
	q.Done("a")
	if q.Len() != 2 { // b then a again
		t.Fatalf("depth %d after Done with deferred add, want 2", q.Len())
	}
	if k, _ := q.TryGet(); k != "b" {
		t.Fatalf("second TryGet = %q, want b", k)
	}
	q.Done("b")
	if k, _ := q.TryGet(); k != "a" {
		t.Fatalf("third TryGet = %q, want deferred a", k)
	}
	q.Done("a")
	if _, ok := q.TryGet(); ok {
		t.Fatal("queue not empty after all Dones")
	}
	if adds, _ := q.Stats(); adds != 6 {
		t.Fatalf("adds counter = %d, want 6 (pre-dedup)", adds)
	}
}

// TestQueueRateLimitedBackoff: requeues grow the per-key delay
// exponentially up to the cap, delays elapse on the injected clock, and
// Forget resets the schedule.
func TestQueueRateLimitedBackoff(t *testing.T) {
	clk := NewVirtualClock()
	lim := RateLimit{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 0}
	q := newQueue(lim, 1, clk.After)

	want := []time.Duration{10, 20, 40, 80, 80} // ms, capped
	for i, w := range want {
		d := q.AddRateLimited("k")
		if d != w*time.Millisecond {
			t.Fatalf("requeue %d delay = %v, want %v", i+1, d, w*time.Millisecond)
		}
		if _, ok := q.TryGet(); ok {
			t.Fatalf("requeue %d ready before its delay elapsed", i+1)
		}
		clk.Advance(d)
		k, ok := q.TryGet()
		if !ok || k != "k" {
			t.Fatalf("requeue %d not ready after delay: %q,%v", i+1, k, ok)
		}
		q.Done("k")
	}
	if n := q.Requeues("k"); n != len(want) {
		t.Fatalf("requeue count = %d, want %d", n, len(want))
	}
	q.Forget("k")
	if d := q.AddRateLimited("k"); d != 10*time.Millisecond {
		t.Fatalf("post-Forget delay = %v, want base", d)
	}
	if _, rq := q.Stats(); rq != uint64(len(want)+1) {
		t.Fatalf("requeued counter = %d, want %d", rq, len(want)+1)
	}
}

// TestRateLimitJitterDeterministic: delayFor is a pure function of
// (seed, key, attempt) — stable across calls, spread across keys, and
// bounded by the jitter window.
func TestRateLimitJitterDeterministic(t *testing.T) {
	lim := RateLimit{Base: 10 * time.Millisecond, Max: time.Second,
		Multiplier: 2, Jitter: 0.5}.withDefaults()
	seen := map[time.Duration]int{}
	for _, key := range []string{"sw-0", "sw-1", "sw-2", "sw-3", "sw-4", "sw-5"} {
		for attempt := 1; attempt <= 4; attempt++ {
			a := lim.delayFor(7, key, attempt)
			if b := lim.delayFor(7, key, attempt); a != b {
				t.Fatalf("delayFor(%q,%d) unstable: %v vs %v", key, attempt, a, b)
			}
			base := float64(10*time.Millisecond) * float64(int(1)<<(attempt-1))
			lo := time.Duration(base * 0.75)
			hi := time.Duration(base * 1.25)
			if a < lo || a > hi {
				t.Fatalf("delayFor(%q,%d) = %v outside [%v,%v]", key, attempt, a, lo, hi)
			}
			seen[a]++
		}
	}
	if len(seen) < 12 {
		t.Fatalf("only %d distinct delays across 24 (key,attempt) pairs; jitter not spreading", len(seen))
	}
	if a, b := lim.delayFor(7, "sw-0", 1), lim.delayFor(8, "sw-0", 1); a == b {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestVirtualClockOrdering: callbacks fire in (due-time, schedule-order)
// sequence, nested scheduling lands in the same sweep, and time is
// monotone.
func TestVirtualClockOrdering(t *testing.T) {
	clk := NewVirtualClock()
	var fired []string
	clk.After(30*time.Millisecond, func() { fired = append(fired, "c") })
	clk.After(10*time.Millisecond, func() {
		fired = append(fired, "a")
		// Nested: due before the sweep target, must fire in this sweep.
		clk.After(5*time.Millisecond, func() { fired = append(fired, "a2") })
	})
	clk.After(10*time.Millisecond, func() { fired = append(fired, "b") }) // same instant, later seq
	if at, ok := clk.NextTimer(); !ok || at != 10*time.Millisecond {
		t.Fatalf("NextTimer = %v,%v", at, ok)
	}
	clk.AdvanceTo(20 * time.Millisecond)
	if clk.Now() != 20*time.Millisecond {
		t.Fatalf("Now = %v after AdvanceTo(20ms)", clk.Now())
	}
	clk.Advance(10 * time.Millisecond)
	want := []string{"a", "b", "a2", "c"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
