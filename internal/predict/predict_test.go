package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Predict() != 0 {
		t.Error("empty EWMA must predict 0")
	}
	for i := 0; i < 50; i++ {
		e.Observe(100)
	}
	if math.Abs(e.Predict()-100) > 1e-6 {
		t.Errorf("EWMA on constant series = %v, want 100", e.Predict())
	}
	e.Reset()
	if e.Predict() != 0 {
		t.Error("Reset EWMA must predict 0")
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0)
	e.Observe(100)
	if got := e.Predict(); got != 50 {
		t.Errorf("EWMA(0.5) after 0,100 = %v, want 50", got)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) must panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestCubicSplineLinearTrend(t *testing.T) {
	// A spline through a perfectly linear series extrapolates the line.
	c := NewCubicSpline(8)
	for i := 0; i < 8; i++ {
		c.Observe(float64(10 * i))
	}
	got := c.Predict()
	if math.Abs(got-80) > 1e-6 {
		t.Errorf("spline on linear series = %v, want 80", got)
	}
}

func TestCubicSplineQuadraticTrend(t *testing.T) {
	// On an accelerating series the spline must predict above linear
	// extrapolation — this anticipation is why the paper prefers it.
	c := NewCubicSpline(8)
	var last, prev float64
	for i := 0; i < 8; i++ {
		v := float64(i * i)
		prev, last = last, v
		c.Observe(v)
	}
	linear := 2*last - prev
	if got := c.Predict(); got <= linear {
		t.Errorf("spline on quadratic series = %v, want > linear %v", got, linear)
	}
}

func TestCubicSplineSmallHistory(t *testing.T) {
	c := NewCubicSpline(8)
	if c.Predict() != 0 {
		t.Error("empty spline must predict 0")
	}
	c.Observe(5)
	if c.Predict() != 5 {
		t.Error("1-point spline must persist")
	}
	c.Observe(7)
	if c.Predict() != 9 {
		t.Errorf("2-point spline = %v, want linear 9", c.Predict())
	}
	c.Reset()
	if c.Predict() != 0 {
		t.Error("Reset spline must predict 0")
	}
}

func TestCubicSplineNonNegative(t *testing.T) {
	c := NewCubicSpline(8)
	for _, v := range []float64{100, 80, 60, 40, 20, 0} {
		c.Observe(v)
	}
	if got := c.Predict(); got < 0 {
		t.Errorf("prediction %v must be clamped to 0", got)
	}
}

func TestARMAConstantSeries(t *testing.T) {
	a := NewARMA(2, 32)
	if a.Predict() != 0 {
		t.Error("empty ARMA must predict 0")
	}
	for i := 0; i < 40; i++ {
		a.Observe(50)
	}
	if got := a.Predict(); math.Abs(got-50) > 1 {
		t.Errorf("ARMA on constant series = %v, want ≈50", got)
	}
}

func TestARMATrackLinearTrend(t *testing.T) {
	a := NewARMA(2, 32)
	for i := 0; i < 40; i++ {
		a.Observe(float64(3 * i))
	}
	// Next value would be 120.
	if got := a.Predict(); math.Abs(got-120) > 6 {
		t.Errorf("ARMA on linear series = %v, want ≈120", got)
	}
}

func TestARMAReset(t *testing.T) {
	a := NewARMA(1, 8)
	a.Observe(10)
	a.Predict()
	a.Observe(20)
	a.Reset()
	if a.Predict() != 0 {
		t.Error("Reset ARMA must predict 0")
	}
}

func TestPredictorsNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		preds := []Predictor{NewEWMA(0.3), NewCubicSpline(12), NewARMA(2, 24)}
		for i := 0; i < 60; i++ {
			v := math.Abs(r.NormFloat64() * 100)
			for _, p := range preds {
				p.Observe(v)
				if p.Predict() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSplineBeatsEWMAOnRamp encodes the paper's empirical finding (§8.6):
// on workloads with strong trends, spline prediction has lower error than
// EWMA.
func TestSplineBeatsEWMAOnRamp(t *testing.T) {
	spline := NewCubicSpline(12)
	ewma := NewEWMA(0.3)
	var errSpline, errEWMA float64
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i) * 10 // steady ramp: 0, 10, 20, ...
	}
	for i, v := range series {
		if i > 12 {
			errSpline += math.Abs(spline.Predict() - v)
			errEWMA += math.Abs(ewma.Predict() - v)
		}
		spline.Observe(v)
		ewma.Observe(v)
	}
	if errSpline >= errEWMA {
		t.Errorf("spline error %v not below EWMA error %v on ramp", errSpline, errEWMA)
	}
}

func TestCorrectors(t *testing.T) {
	if got := (Slack{Factor: 0.4}).Correct(1000); got != 1400 {
		t.Errorf("Slack(40%%) = %v, want 1400 (the paper's own example)", got)
	}
	if got := (Deadzone{Delta: 100}).Correct(1000); got != 1100 {
		t.Errorf("Deadzone(100) = %v, want 1100 (the paper's own example)", got)
	}
	if got := (Identity{}).Correct(7); got != 7 {
		t.Errorf("Identity = %v", got)
	}
	for _, c := range []Corrector{Slack{0.4}, Deadzone{100}, Identity{}} {
		if c.Name() == "" {
			t.Error("corrector name empty")
		}
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"EWMA", "CubicSpline", "ARMA"} {
		p, err := NewByName(name)
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewByName("bogus"); err == nil {
		t.Error("NewByName must reject unknown names")
	}
}
