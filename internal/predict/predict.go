// Package predict implements the workload-prediction algorithms Hermes's
// Rule Manager uses to decide when to migrate rules out of the shadow table
// (paper §5.1): Exponentially Weighted Moving Average, natural Cubic Spline
// extrapolation, and an AutoRegressive Moving Average model — plus the two
// control-theoretic correctors (Slack and Deadzone) that compensate for
// prediction error.
//
// A Predictor consumes a time series of per-interval rule-arrival counts
// via Observe and produces the expected count for the next interval via
// Predict. Predictions are never negative.
package predict

import "fmt"

// Predictor forecasts the next value of a time series.
type Predictor interface {
	// Observe feeds the value measured for the most recent interval.
	Observe(v float64)
	// Predict returns the forecast for the next interval. Predictors with
	// no observations yet return 0.
	Predict() float64
	// Name identifies the algorithm for reports.
	Name() string
	// Reset clears history.
	Reset()
}

// Corrector inflates a prediction to absorb forecast error (§5.1).
type Corrector interface {
	Correct(pred float64) float64
	Name() string
}

// --- EWMA ---------------------------------------------------------------

// EWMA is an exponentially weighted moving average predictor [Lucas &
// Saccucci 1990].
type EWMA struct {
	// Alpha is the smoothing weight of the newest observation, in (0, 1].
	Alpha float64

	value float64
	seen  bool
}

// NewEWMA returns an EWMA predictor with the given smoothing factor. It
// panics when alpha is out of (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("predict: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements Predictor.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.value, e.seen = v, true
		return
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
}

// Predict implements Predictor.
func (e *EWMA) Predict() float64 { return clampNonNeg(e.value) }

// Name implements Predictor.
func (e *EWMA) Name() string { return "EWMA" }

// Reset implements Predictor.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }

// --- Cubic spline --------------------------------------------------------

// CubicSpline fits a cubic spline with not-a-knot boundary conditions
// through the most recent Window observations (at integer abscissae) and
// extrapolates one step ahead using the final polynomial segment
// [de Boor 1978]. Not-a-knot (rather than natural) boundaries matter here:
// a natural spline forces zero curvature at the last knot, which collapses
// one-step extrapolation to a straight line and loses exactly the
// trend-anticipation the paper relies on (§5.1, §8.6: Cubic Spline + Slack
// was the most effective configuration).
type CubicSpline struct {
	// Window is the number of trailing observations used for the fit.
	Window int

	history []float64
}

// NewCubicSpline returns a spline predictor over the given window; windows
// below 4 are raised to 4 (a cubic needs at least that many knots to be
// meaningfully constrained).
func NewCubicSpline(window int) *CubicSpline {
	if window < 4 {
		window = 4
	}
	return &CubicSpline{Window: window}
}

// Observe implements Predictor.
func (c *CubicSpline) Observe(v float64) {
	c.history = append(c.history, v)
	if len(c.history) > c.Window {
		c.history = c.history[len(c.history)-c.Window:]
	}
}

// Predict implements Predictor.
func (c *CubicSpline) Predict() float64 {
	n := len(c.history)
	switch n {
	case 0:
		return 0
	case 1:
		return clampNonNeg(c.history[0])
	case 2:
		// Linear extrapolation from the last two points.
		return clampNonNeg(2*c.history[n-1] - c.history[n-2])
	case 3:
		// Quadratic (second-difference) extrapolation.
		return clampNonNeg(3*c.history[2] - 3*c.history[1] + c.history[0])
	}
	m := notAKnotSecondDerivs(c.history)
	// Evaluate the last segment's cubic at x = n (one past the last knot
	// at n-1). With h = 1 the segment between knots n-2 and n-1 is:
	//   S(x) = y1 + b·t + c·t² + d·t³, t = x - (n-2)
	// where the coefficients derive from the second derivatives m.
	y0, y1 := c.history[n-2], c.history[n-1]
	m0, m1 := m[n-2], m[n-1]
	b := (y1 - y0) - (2*m0+m1)/6
	cc := m0 / 2
	d := (m1 - m0) / 6
	t := 2.0 // x = n is two units past knot n-2
	val := y0 + b*t + cc*t*t + d*t*t*t
	return clampNonNeg(val)
}

// Name implements Predictor.
func (c *CubicSpline) Name() string { return "CubicSpline" }

// Reset implements Predictor.
func (c *CubicSpline) Reset() { c.history = c.history[:0] }

// notAKnotSecondDerivs solves for the second derivatives M of a cubic
// spline through y at unit-spaced knots with not-a-knot boundary
// conditions. The system is
//
//	M[i-1] + 4 M[i] + M[i+1] = 6 (y[i-1] - 2y[i] + y[i+1])   i = 1..n-2
//	M[0] - 2 M[1] + M[2] = 0                                 (not-a-knot)
//	M[n-3] - 2 M[n-2] + M[n-1] = 0                           (not-a-knot)
//
// which is solved by dense Gaussian elimination; windows are small (≤ a few
// dozen knots) so the cubic cost is irrelevant.
func notAKnotSecondDerivs(y []float64) []float64 {
	n := len(y)
	if n < 4 {
		return make([]float64, n)
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	a[0][0], a[0][1], a[0][2] = 1, -2, 1
	for i := 1; i <= n-2; i++ {
		a[i][i-1], a[i][i], a[i][i+1] = 1, 4, 1
		a[i][n] = 6 * (y[i-1] - 2*y[i] + y[i+1])
	}
	a[n-1][n-3], a[n-1][n-2], a[n-1][n-1] = 1, -2, 1
	m, ok := solveGauss(a, n)
	if !ok {
		return make([]float64, n)
	}
	return m
}

// --- ARMA ----------------------------------------------------------------

// ARMA is an ARMA(p, 1) predictor [Whittle 1951]: the autoregressive
// coefficients are re-fit by ordinary least squares over a sliding window
// each time a prediction is requested, and a single moving-average term
// corrects with the latest forecast residual.
type ARMA struct {
	// P is the autoregressive order.
	P int
	// Window is the number of trailing observations used for the fit.
	Window int

	history  []float64
	lastPred float64
	lastErr  float64
	theta    float64
	havePred bool
}

// NewARMA returns an ARMA(p,1) predictor fit over the given window.
func NewARMA(p, window int) *ARMA {
	if p < 1 {
		p = 1
	}
	if window < 4*p {
		window = 4 * p
	}
	return &ARMA{P: p, Window: window, theta: 0.5}
}

// Observe implements Predictor.
func (a *ARMA) Observe(v float64) {
	if a.havePred {
		a.lastErr = v - a.lastPred
	}
	a.history = append(a.history, v)
	if len(a.history) > a.Window {
		a.history = a.history[len(a.history)-a.Window:]
	}
}

// Predict implements Predictor.
func (a *ARMA) Predict() float64 {
	n := len(a.history)
	if n == 0 {
		return 0
	}
	if n <= a.P+1 {
		a.lastPred = a.history[n-1]
		a.havePred = true
		return clampNonNeg(a.lastPred)
	}
	phi := fitAR(a.history, a.P)
	pred := phi[0] // intercept
	for i := 1; i <= a.P; i++ {
		pred += phi[i] * a.history[n-i]
	}
	pred += a.theta * a.lastErr
	a.lastPred = pred
	a.havePred = true
	return clampNonNeg(pred)
}

// Name implements Predictor.
func (a *ARMA) Name() string { return "ARMA" }

// Reset implements Predictor.
func (a *ARMA) Reset() {
	a.history = a.history[:0]
	a.lastPred, a.lastErr = 0, 0
	a.havePred = false
}

// fitAR fits y_t = c + Σ φ_i y_{t-i} by ordinary least squares and returns
// [c, φ_1..φ_p]. Falls back to a persistence model when the normal
// equations are singular.
func fitAR(y []float64, p int) []float64 {
	n := len(y)
	rows := n - p
	dim := p + 1
	// Normal equations: (XᵀX) β = Xᵀy with X = [1, y_{t-1}, ..., y_{t-p}].
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim+1) // augmented with Xᵀy
	}
	for t := p; t < n; t++ {
		row := make([]float64, dim)
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = y[t-i]
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xtx[i][dim] += row[i] * y[t]
		}
	}
	beta, ok := solveGauss(xtx, dim)
	if !ok || rows < dim {
		// Persistence fallback: predict the last value.
		beta = make([]float64, dim)
		beta[1] = 1
	}
	return beta
}

// solveGauss solves the augmented system in place with partial pivoting.
func solveGauss(a [][]float64, dim int) ([]float64, bool) {
	for col := 0; col < dim; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < dim; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-9 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= dim; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	out := make([]float64, dim)
	for i := 0; i < dim; i++ {
		out[i] = a[i][dim] / a[i][i]
	}
	return out, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// --- Correctors -----------------------------------------------------------

// Slack inflates predictions by a constant factor: a 40% slack turns a
// prediction of 1000 rules into 1400 (§5.1). The paper's default Hermes
// configuration is Cubic Spline with 100% slack (§8.6).
type Slack struct {
	// Factor is the inflation fraction (0.4 = 40%).
	Factor float64
}

// Correct implements Corrector.
func (s Slack) Correct(pred float64) float64 { return pred * (1 + s.Factor) }

// Name implements Corrector.
func (s Slack) Name() string { return fmt.Sprintf("Slack(%.0f%%)", s.Factor*100) }

// Deadzone inflates predictions by a constant count: a deadzone of 100
// turns a prediction of 1000 rules into 1100 (§5.1).
type Deadzone struct {
	// Delta is the constant additive headroom in rules.
	Delta float64
}

// Correct implements Corrector.
func (d Deadzone) Correct(pred float64) float64 { return pred + d.Delta }

// Name implements Corrector.
func (d Deadzone) Name() string { return fmt.Sprintf("Deadzone(%.0f)", d.Delta) }

// Identity applies no correction; used for ablations.
type Identity struct{}

// Correct implements Corrector.
func (Identity) Correct(pred float64) float64 { return pred }

// Name implements Corrector.
func (Identity) Name() string { return "Identity" }

// NewByName constructs a predictor from its report name; the experiment
// harness uses it to sweep algorithms.
func NewByName(name string) (Predictor, error) {
	switch name {
	case "EWMA":
		return NewEWMA(0.3), nil
	case "CubicSpline":
		return NewCubicSpline(16), nil
	case "ARMA":
		return NewARMA(2, 32), nil
	default:
		return nil, fmt.Errorf("predict: unknown predictor %q", name)
	}
}
