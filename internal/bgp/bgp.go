// Package bgp implements the BGP substrate the paper uses to evaluate
// Hermes on traditional networks (§2.3, §8.4): update messages, per-peer
// Adj-RIB-In tables, the standard best-path selection procedure, and the
// Loc-RIB → FIB diff that converts BGP churn into the TCAM operations a
// router actually performs. As the paper notes, many RIB updates never
// percolate to the FIB; only FIB-visible changes reach the TCAM.
//
// Because the BGPStream captures the paper replays are not redistributable,
// the package also synthesizes BGPStream-shaped update traces: a calm
// Poisson base rate punctuated by bursts (session resets and route leaks)
// that push the instantaneous rate beyond 1000 updates/second, matching the
// tail behaviour §2.3 reports.
package bgp

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/classifier"
)

// Origin is the BGP origin attribute, ordered IGP < EGP < Incomplete for
// best-path comparison.
type Origin uint8

// Origin values.
const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

// Route is one path to a prefix as learned from a peer.
type Route struct {
	Prefix    classifier.Prefix
	Peer      string
	NextHop   uint32
	LocalPref uint32
	ASPath    []uint32
	Origin    Origin
	MED       uint32
	RouterID  uint32
}

// better reports whether r should be preferred over o by the standard
// decision process: highest LocalPref, shortest AS path, lowest origin,
// lowest MED, lowest router ID.
func (r Route) better(o Route) bool {
	if r.LocalPref != o.LocalPref {
		return r.LocalPref > o.LocalPref
	}
	if len(r.ASPath) != len(o.ASPath) {
		return len(r.ASPath) < len(o.ASPath)
	}
	if r.Origin != o.Origin {
		return r.Origin < o.Origin
	}
	if r.MED != o.MED {
		return r.MED < o.MED
	}
	return r.RouterID < o.RouterID
}

// Update is one BGP message: an announcement carrying a Route, or a
// withdrawal of a prefix from a peer.
type Update struct {
	At       time.Duration
	Peer     string
	Withdraw bool
	Route    Route             // valid when !Withdraw
	Prefix   classifier.Prefix // valid when Withdraw
}

// FIBOpType classifies a forwarding-table change.
type FIBOpType uint8

// FIB operation kinds.
const (
	// FIBInsert installs a new prefix.
	FIBInsert FIBOpType = iota
	// FIBDelete removes a prefix.
	FIBDelete
	// FIBModify changes the next hop of an installed prefix — the cheap,
	// constant-time TCAM action (§2.1).
	FIBModify
)

func (t FIBOpType) String() string {
	switch t {
	case FIBInsert:
		return "insert"
	case FIBDelete:
		return "delete"
	case FIBModify:
		return "modify"
	default:
		return fmt.Sprintf("fibop(%d)", uint8(t))
	}
}

// FIBOp is one forwarding-table change produced by best-path selection.
type FIBOp struct {
	At      time.Duration
	Type    FIBOpType
	Prefix  classifier.Prefix
	NextHop uint32
}

// Rule converts the FIB entry into the TCAM rule a router installs:
// longest-prefix match encoded as priority == prefix length, the standard
// LPM-in-TCAM encoding. Rule IDs are derived from the prefix so that
// insert/delete/modify of the same prefix address the same entry.
func (op FIBOp) Rule() classifier.Rule {
	return classifier.Rule{
		ID:       PrefixRuleID(op.Prefix),
		Match:    classifier.DstMatch(op.Prefix),
		Priority: int32(op.Prefix.Len),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(op.NextHop % 64)},
	}
}

// PrefixRuleID derives a stable rule ID from a prefix. The result is below
// the Hermes agent's reserved partition-ID space.
func PrefixRuleID(p classifier.Prefix) classifier.RuleID {
	return classifier.RuleID(uint64(p.Addr)<<6 | uint64(p.Len))
}

// Router is one BGP speaker: per-peer Adj-RIB-In plus the Loc-RIB of
// current best routes. Process applies updates and emits the FIB delta.
type Router struct {
	name  string
	adjIn map[string]map[classifier.Prefix]Route
	loc   map[classifier.Prefix]Route
}

// NewRouter returns an empty router.
func NewRouter(name string) *Router {
	return &Router{
		name:  name,
		adjIn: make(map[string]map[classifier.Prefix]Route),
		loc:   make(map[classifier.Prefix]Route),
	}
}

// Name returns the router name.
func (r *Router) Name() string { return r.name }

// FIBSize reports the number of installed best routes.
func (r *Router) FIBSize() int { return len(r.loc) }

// Process applies one update and returns the resulting FIB operations
// (possibly none: updates that do not change the best path never reach the
// forwarding plane).
func (r *Router) Process(u Update) []FIBOp {
	prefix := u.Prefix
	if !u.Withdraw {
		prefix = u.Route.Prefix
	}
	peerTable := r.adjIn[u.Peer]
	if peerTable == nil {
		peerTable = make(map[classifier.Prefix]Route)
		r.adjIn[u.Peer] = peerTable
	}
	if u.Withdraw {
		if _, had := peerTable[prefix]; !had {
			return nil // idempotent withdraw
		}
		delete(peerTable, prefix)
	} else {
		peerTable[prefix] = u.Route
	}

	// Re-run best-path selection for this prefix.
	var best Route
	found := false
	for _, table := range r.adjIn {
		if route, ok := table[prefix]; ok {
			if !found || route.better(best) {
				best, found = route, true
			}
		}
	}
	old, had := r.loc[prefix]
	switch {
	case found && !had:
		r.loc[prefix] = best
		return []FIBOp{{At: u.At, Type: FIBInsert, Prefix: prefix, NextHop: best.NextHop}}
	case !found && had:
		delete(r.loc, prefix)
		return []FIBOp{{At: u.At, Type: FIBDelete, Prefix: prefix, NextHop: old.NextHop}}
	case found && had && best.NextHop != old.NextHop:
		r.loc[prefix] = best
		return []FIBOp{{At: u.At, Type: FIBModify, Prefix: prefix, NextHop: best.NextHop}}
	case found && had:
		r.loc[prefix] = best // attribute-only change; no FIB impact
	}
	return nil
}

// TraceConfig shapes a synthetic BGPStream-like update trace.
type TraceConfig struct {
	// Duration of the trace.
	Duration time.Duration
	// Peers is the number of BGP sessions.
	Peers int
	// Prefixes is the size of the advertised prefix pool.
	Prefixes int
	// BaseRate is the calm-period update rate (updates/second).
	BaseRate float64
	// BurstRate is the rate during burst episodes; §2.3 observes tails
	// beyond 1000 updates/second.
	BurstRate float64
	// BurstProb is the per-second probability that a burst starts.
	BurstProb float64
	// BurstLen is the mean burst duration.
	BurstLen time.Duration
	// WithdrawFrac is the fraction of updates that are withdrawals.
	WithdrawFrac float64
}

// RouterProfile names one of the four vantage points the paper replays and
// its trace shape.
type RouterProfile struct {
	Name string
	Cfg  TraceConfig
}

// Profiles returns the four representative routers of §8.1.3 with
// BGPStream-shaped trace parameters (busier IXP collectors burst harder).
func Profiles() []RouterProfile {
	base := TraceConfig{
		Duration: 60 * time.Second, Peers: 8, Prefixes: 4000,
		BaseRate: 30, BurstRate: 1500, BurstProb: 0.05,
		BurstLen: 2 * time.Second, WithdrawFrac: 0.3,
	}
	equinix := base
	equinix.BaseRate, equinix.BurstRate, equinix.Peers = 60, 2500, 16
	telx := base
	telx.BaseRate, telx.BurstRate = 45, 2000
	nwax := base
	nwax.BaseRate, nwax.BurstRate = 20, 1200
	oregon := base
	oregon.BaseRate, oregon.BurstRate, oregon.Peers = 35, 1600, 12
	return []RouterProfile{
		{Name: "Equinix-Chicago", Cfg: equinix},
		{Name: "TELXATL-Atlanta", Cfg: telx},
		{Name: "NWAX-Portland", Cfg: nwax},
		{Name: "UnivOregon", Cfg: oregon},
	}
}

// GenerateTrace synthesizes an update stream per the config. It is
// deterministic given rng.
func GenerateTrace(rng *rand.Rand, cfg TraceConfig) []Update {
	if cfg.Peers <= 0 || cfg.Prefixes <= 0 || cfg.BaseRate <= 0 {
		return nil
	}
	prefixes := makePrefixPool(rng, cfg.Prefixes)
	peers := make([]string, cfg.Peers)
	for i := range peers {
		peers[i] = fmt.Sprintf("peer%d", i)
	}
	var out []Update
	now := 0.0
	end := cfg.Duration.Seconds()
	// Pre-place burst episodes (session resets, route leaks): on average
	// BurstProb per second, but at least one per trace so every capture
	// exhibits the >1000 upd/s tail §2.3 reports.
	nBursts := int(cfg.BurstProb * end)
	if nBursts < 1 && cfg.BurstRate > cfg.BaseRate {
		nBursts = 1
	}
	type window struct{ start, stop float64 }
	bursts := make([]window, 0, nBursts)
	for i := 0; i < nBursts; i++ {
		length := 0.5*cfg.BurstLen.Seconds() + rng.ExpFloat64()*0.5*cfg.BurstLen.Seconds()
		span := end - length
		if span < 0 {
			span = 0
		}
		start := rng.Float64() * span
		bursts = append(bursts, window{start, start + length})
	}
	inBurst := func(t float64) bool {
		for _, w := range bursts {
			if t >= w.start && t < w.stop {
				return true
			}
		}
		return false
	}
	for now < end {
		rate := cfg.BaseRate
		if inBurst(now) {
			rate = cfg.BurstRate
		}
		now += rng.ExpFloat64() / rate
		if now >= end {
			break
		}
		at := time.Duration(now * float64(time.Second))
		peer := peers[rng.Intn(len(peers))]
		prefix := prefixes[rng.Intn(len(prefixes))]
		if rng.Float64() < cfg.WithdrawFrac {
			out = append(out, Update{At: at, Peer: peer, Withdraw: true, Prefix: prefix})
			continue
		}
		out = append(out, Update{At: at, Peer: peer, Route: Route{
			Prefix:    prefix,
			Peer:      peer,
			NextHop:   rng.Uint32(),
			LocalPref: uint32(100 + rng.Intn(3)*10),
			ASPath:    makeASPath(rng),
			Origin:    Origin(rng.Intn(3)),
			MED:       uint32(rng.Intn(100)),
			RouterID:  rng.Uint32(),
		}})
	}
	return out
}

func makePrefixPool(rng *rand.Rand, n int) []classifier.Prefix {
	seen := make(map[classifier.Prefix]bool, n)
	out := make([]classifier.Prefix, 0, n)
	// Realistic FIB length mix: mostly /24s and /16-/22s, some shorter.
	lengths := []uint8{24, 24, 24, 24, 22, 20, 19, 18, 16, 16, 12, 8}
	for len(out) < n {
		plen := lengths[rng.Intn(len(lengths))]
		p := classifier.NewPrefix(rng.Uint32(), plen)
		if p.Addr == 0 || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

func makeASPath(rng *rand.Rand) []uint32 {
	n := 1 + rng.Intn(6)
	path := make([]uint32, n)
	for i := range path {
		path[i] = uint32(1000 + rng.Intn(64000))
	}
	return path
}
