package bgp

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
)

func pfx(s string) classifier.Prefix { return classifier.MustParsePrefix(s) }

func announce(at time.Duration, peer string, p classifier.Prefix, nh uint32, lp uint32, pathLen int) Update {
	path := make([]uint32, pathLen)
	for i := range path {
		path[i] = uint32(100 + i)
	}
	return Update{At: at, Peer: peer, Route: Route{
		Prefix: p, Peer: peer, NextHop: nh, LocalPref: lp, ASPath: path, RouterID: 1,
	}}
}

func TestAnnounceInstallsFIB(t *testing.T) {
	r := NewRouter("r1")
	ops := r.Process(announce(0, "p1", pfx("10.0.0.0/8"), 0xAA, 100, 3))
	if len(ops) != 1 || ops[0].Type != FIBInsert || ops[0].NextHop != 0xAA {
		t.Fatalf("ops = %v", ops)
	}
	if r.FIBSize() != 1 {
		t.Errorf("FIB size = %d", r.FIBSize())
	}
}

func TestBestPathLocalPref(t *testing.T) {
	r := NewRouter("r1")
	r.Process(announce(0, "p1", pfx("10.0.0.0/8"), 0xAA, 100, 3))
	// Higher LocalPref wins despite a longer AS path.
	ops := r.Process(announce(1, "p2", pfx("10.0.0.0/8"), 0xBB, 200, 6))
	if len(ops) != 1 || ops[0].Type != FIBModify || ops[0].NextHop != 0xBB {
		t.Fatalf("ops = %v", ops)
	}
}

func TestBestPathASPathLength(t *testing.T) {
	r := NewRouter("r1")
	r.Process(announce(0, "p1", pfx("10.0.0.0/8"), 0xAA, 100, 5))
	ops := r.Process(announce(1, "p2", pfx("10.0.0.0/8"), 0xBB, 100, 2))
	if len(ops) != 1 || ops[0].NextHop != 0xBB {
		t.Fatalf("shorter AS path must win: %v", ops)
	}
	// A losing route produces no FIB op.
	ops = r.Process(announce(2, "p3", pfx("10.0.0.0/8"), 0xCC, 100, 9))
	if len(ops) != 0 {
		t.Fatalf("losing route leaked to FIB: %v", ops)
	}
}

func TestBestPathTieBreakers(t *testing.T) {
	a := Route{LocalPref: 100, ASPath: []uint32{1}, Origin: OriginIGP, MED: 5, RouterID: 10}
	b := Route{LocalPref: 100, ASPath: []uint32{1}, Origin: OriginEGP, MED: 1, RouterID: 1}
	if !a.better(b) {
		t.Error("lower origin must beat lower MED")
	}
	c := b
	c.Origin = OriginIGP
	if !c.better(a) {
		t.Error("lower MED must win when origin ties")
	}
	d := a
	d.RouterID = 2
	if !d.better(a) {
		t.Error("lower router ID must break final tie")
	}
}

func TestWithdrawDeletesAndFallsBack(t *testing.T) {
	r := NewRouter("r1")
	r.Process(announce(0, "p1", pfx("10.0.0.0/8"), 0xAA, 200, 3))
	r.Process(announce(1, "p2", pfx("10.0.0.0/8"), 0xBB, 100, 3))
	// Withdraw the best route: falls back to p2's route (Modify).
	ops := r.Process(Update{At: 2, Peer: "p1", Withdraw: true, Prefix: pfx("10.0.0.0/8")})
	if len(ops) != 1 || ops[0].Type != FIBModify || ops[0].NextHop != 0xBB {
		t.Fatalf("fallback ops = %v", ops)
	}
	// Withdraw the last route: Delete.
	ops = r.Process(Update{At: 3, Peer: "p2", Withdraw: true, Prefix: pfx("10.0.0.0/8")})
	if len(ops) != 1 || ops[0].Type != FIBDelete {
		t.Fatalf("delete ops = %v", ops)
	}
	if r.FIBSize() != 0 {
		t.Error("FIB not empty")
	}
	// Idempotent withdraw.
	if ops := r.Process(Update{At: 4, Peer: "p2", Withdraw: true, Prefix: pfx("10.0.0.0/8")}); len(ops) != 0 {
		t.Errorf("re-withdraw ops = %v", ops)
	}
}

func TestAttributeOnlyChangeNoFIBOp(t *testing.T) {
	r := NewRouter("r1")
	r.Process(announce(0, "p1", pfx("10.0.0.0/8"), 0xAA, 100, 3))
	// Same next hop, different MED: RIB changes, FIB does not.
	u := announce(1, "p1", pfx("10.0.0.0/8"), 0xAA, 100, 3)
	u.Route.MED = 42
	if ops := r.Process(u); len(ops) != 0 {
		t.Errorf("attribute-only change leaked: %v", ops)
	}
}

func TestFIBOpRule(t *testing.T) {
	op := FIBOp{Type: FIBInsert, Prefix: pfx("192.168.0.0/16"), NextHop: 7}
	r := op.Rule()
	if r.Priority != 16 {
		t.Errorf("LPM priority = %d, want prefix length", r.Priority)
	}
	if r.Match.Dst != op.Prefix {
		t.Error("rule match mismatch")
	}
	// Longer prefixes get higher priority (LPM).
	op2 := FIBOp{Prefix: pfx("192.168.1.0/24")}
	if op2.Rule().Priority <= r.Priority {
		t.Error("longer prefix must out-prioritize shorter")
	}
	// Stable IDs per prefix, distinct across prefixes.
	if PrefixRuleID(op.Prefix) != PrefixRuleID(pfx("192.168.0.0/16")) {
		t.Error("IDs not stable")
	}
	if PrefixRuleID(op.Prefix) == PrefixRuleID(op2.Prefix) {
		t.Error("ID collision")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := TraceConfig{
		Duration: 30 * time.Second, Peers: 8, Prefixes: 1000,
		BaseRate: 50, BurstRate: 2000, BurstProb: 0.1,
		BurstLen: time.Second, WithdrawFrac: 0.3,
	}
	trace := GenerateTrace(rng, cfg)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	var prev time.Duration
	withdraws := 0
	for _, u := range trace {
		if u.At < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = u.At
		if u.Withdraw {
			withdraws++
		}
	}
	frac := float64(withdraws) / float64(len(trace))
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("withdraw fraction = %.2f, want ≈0.3", frac)
	}
	// The paper's §2.3 observation: the tail rate exceeds 1000 upd/s.
	// Measure per-100ms windows.
	counts := map[int]int{}
	for _, u := range trace {
		counts[int(u.At/(100*time.Millisecond))]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak*10 < 1000 {
		t.Errorf("peak rate = %d upd/s, want >1000 (bursts missing)", peak*10)
	}
	// And the median rate stays low.
	if avg := float64(len(trace)) / 30; avg > 500 {
		t.Errorf("average rate = %.0f, suspiciously high", avg)
	}
}

func TestGenerateTraceEmptyConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if tr := GenerateTrace(rng, TraceConfig{}); tr != nil {
		t.Error("zero config must return nil")
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles, want the paper's 4 routers", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Cfg.BaseRate <= 0 || p.Cfg.BurstRate < 1000 {
			t.Errorf("%s: burst rate %v must exceed 1000 upd/s", p.Name, p.Cfg.BurstRate)
		}
		names[p.Name] = true
	}
	if len(names) != 4 {
		t.Error("duplicate profile names")
	}
}

// TestRouterFIBConsistency replays a random trace and checks the FIB ops
// form a consistent sequence: no double-insert, no delete/modify of absent
// prefixes, and the final FIB matches an independently computed best-route
// set.
func TestRouterFIBConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := TraceConfig{
		Duration: 20 * time.Second, Peers: 5, Prefixes: 300,
		BaseRate: 200, BurstRate: 1500, BurstProb: 0.1,
		BurstLen: time.Second, WithdrawFrac: 0.4,
	}
	trace := GenerateTrace(rng, cfg)
	r := NewRouter("r1")
	installed := map[classifier.Prefix]bool{}
	for _, u := range trace {
		for _, op := range r.Process(u) {
			switch op.Type {
			case FIBInsert:
				if installed[op.Prefix] {
					t.Fatalf("double insert of %v", op.Prefix)
				}
				installed[op.Prefix] = true
			case FIBDelete:
				if !installed[op.Prefix] {
					t.Fatalf("delete of absent %v", op.Prefix)
				}
				delete(installed, op.Prefix)
			case FIBModify:
				if !installed[op.Prefix] {
					t.Fatalf("modify of absent %v", op.Prefix)
				}
			}
		}
	}
	if len(installed) != r.FIBSize() {
		t.Errorf("op-tracked FIB %d entries, router reports %d", len(installed), r.FIBSize())
	}
}
