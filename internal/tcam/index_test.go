package tcam

import (
	"math/rand"
	"testing"

	"hermes/internal/classifier"
)

// randTableRule makes a rule whose destination prefix is drawn from a small
// pool of bases so nesting and priority ties are frequent.
func randTableRule(rng *rand.Rand, id classifier.RuleID) classifier.Rule {
	plen := uint8(rng.Intn(33))
	var src classifier.Prefix
	if rng.Intn(4) == 0 {
		src = classifier.NewPrefix(rng.Uint32(), uint8(8*rng.Intn(4)))
	}
	return classifier.Rule{
		ID:       id,
		Match:    classifier.Match{Dst: classifier.NewPrefix(rng.Uint32(), plen), Src: src},
		Priority: int32(rng.Intn(6)),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
	}
}

// probeAddr biases half the probes inside an installed rule's region so
// lookups actually hit.
func probeAddr(rng *rand.Rand, rules []classifier.Rule) (dst, src uint32) {
	dst, src = rng.Uint32(), rng.Uint32()
	if len(rules) > 0 && rng.Intn(2) == 0 {
		p := rules[rng.Intn(len(rules))].Match.Dst
		dst = p.Addr | (rng.Uint32() & ^p.Mask())
	}
	return dst, src
}

// checkLookupAgreement compares the indexed and linear paths on many
// packets, requiring the identical rule (not merely the same action).
func checkLookupAgreement(t *testing.T, tab *Table, rng *rand.Rand, probes int) {
	t.Helper()
	rules := tab.Rules()
	for i := 0; i < probes; i++ {
		dst, src := probeAddr(rng, rules)
		want, wok := tab.LookupLinear(dst, src)
		got, gok := tab.LookupIndexed(dst, src)
		if wok != gok || got != want {
			t.Fatalf("lookup(%08x,%08x): indexed %v,%v linear %v,%v (occ %d)",
				dst, src, got, gok, want, wok, tab.Occupancy())
		}
	}
}

// TestTableLookupDifferential drives a table through random mutation
// sequences — inserts with ranked ties, deletes, all three modify flavors,
// truncates, resets and dropped (faulted) operations — and checks after
// every step that the trie-indexed lookup returns bit-for-bit the rule the
// linear oracle returns.
func TestTableLookupDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable("diff", 512, Pica8P3290)
		var installed []classifier.RuleID
		nextID := classifier.RuleID(1)
		drop := false
		tab.SetFaultHook(func(Op, classifier.RuleID) OpFault { return OpFault{Drop: drop} })
		for step := 0; step < 400; step++ {
			drop = rng.Intn(10) == 0
			switch op := rng.Intn(20); {
			case op < 10: // insert
				r := randTableRule(rng, nextID)
				nextID++
				var err error
				if rng.Intn(2) == 0 {
					_, err = tab.Insert(r)
				} else {
					_, err = tab.InsertRanked(r, uint64(rng.Intn(8)))
				}
				if err == nil && !drop {
					installed = append(installed, r.ID)
				}
			case op < 14 && len(installed) > 0: // delete
				i := rng.Intn(len(installed))
				tab.Delete(installed[i])
				if !drop {
					installed = append(installed[:i], installed[i+1:]...)
				}
			case op < 16 && len(installed) > 0: // modify action / priority
				id := installed[rng.Intn(len(installed))]
				if rng.Intn(2) == 0 {
					tab.ModifyAction(id, classifier.Action{Type: classifier.ActionDrop})
				} else {
					tab.ModifyPriority(id, int32(rng.Intn(6)))
				}
			case op < 18 && len(installed) > 0: // modify match (moves trie key)
				id := installed[rng.Intn(len(installed))]
				m := classifier.Match{Dst: classifier.NewPrefix(rng.Uint32(), uint8(rng.Intn(33)))}
				tab.ModifyMatch(id, m)
			case op == 18: // crash truncation
				n := rng.Intn(tab.Occupancy() + 1)
				tab.Truncate(n)
				installed = installed[:0]
				for _, r := range tab.Rules() {
					installed = append(installed, r.ID)
				}
			default: // reset or wipe
				if rng.Intn(2) == 0 {
					tab.Reset()
				} else {
					tab.Wipe()
				}
				installed = installed[:0]
			}
			checkLookupAgreement(t, tab, rng, 30)
		}
	}
}

// TestTableGetIndexed checks the ID-indexed Get/Contains/Delete agree with
// a scan of Rules() after heavy churn, including priority rewrites that
// relocate slots.
func TestTableGetIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := NewTable("get", 256, Pica8P3290)
	for id := classifier.RuleID(1); id <= 200; id++ {
		if _, err := tab.Insert(randTableRule(rng, id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		id := classifier.RuleID(1 + rng.Intn(200))
		if rng.Intn(3) == 0 {
			tab.ModifyPriority(id, int32(rng.Intn(6)))
		}
		want := classifier.Rule{}
		wok := false
		for _, r := range tab.Rules() {
			if r.ID == id {
				want, wok = r, true
				break
			}
		}
		got, gok := tab.Get(id)
		if gok != wok || got != want {
			t.Fatalf("Get(%d) = %v,%v want %v,%v", id, got, gok, want, wok)
		}
		if tab.Contains(id) != wok {
			t.Fatalf("Contains(%d) = %v want %v", id, !wok, wok)
		}
	}
	// Delete everything via the index; table must drain completely.
	for id := classifier.RuleID(1); id <= 200; id++ {
		if _, ok := tab.Delete(id); !ok {
			t.Fatalf("Delete(%d) missed", id)
		}
	}
	if tab.Occupancy() != 0 {
		t.Fatalf("occupancy %d after draining", tab.Occupancy())
	}
	if _, ok := tab.LookupIndexed(rng.Uint32(), 0); ok {
		t.Fatal("drained table still matches")
	}
}

// TestModifyPriorityRepositions pins the semantics: the rule moves to its
// new first-match position, ties resolve as if freshly inserted, and the
// cost scales with the shift distance.
func TestModifyPriorityRepositions(t *testing.T) {
	tab := NewTable("prio", 16, Pica8P3290)
	mk := func(id classifier.RuleID, prio int32) classifier.Rule {
		return classifier.Rule{
			ID:       id,
			Match:    classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")),
			Priority: prio,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
		}
	}
	for i := classifier.RuleID(1); i <= 4; i++ {
		if _, err := tab.InsertRanked(mk(i, int32(10-i)), 5); err != nil {
			t.Fatal(err)
		}
	}
	// Raise rule 4 (currently last) above everything.
	if _, ok := tab.ModifyPriority(4, 99); !ok {
		t.Fatal("ModifyPriority missed")
	}
	if got, _ := tab.Lookup(0x0A000001, 0); got.ID != 4 {
		t.Fatalf("first match %d, want 4", got.ID)
	}
	if got := tab.Rules()[0]; got.ID != 4 || got.Priority != 99 {
		t.Fatalf("slot 0 = %+v", got)
	}
	// Drop it to the shared priority of rule 2 with the same rank: it must
	// land below rule 2 (fresh-insert tie semantics).
	if _, ok := tab.ModifyPriority(4, 8); !ok {
		t.Fatal("ModifyPriority missed")
	}
	order := tab.Rules()
	if order[0].ID != 1 || order[1].ID != 2 || order[2].ID != 4 || order[3].ID != 3 {
		t.Fatalf("order after demote: %v", []classifier.RuleID{order[0].ID, order[1].ID, order[2].ID, order[3].ID})
	}
	if _, ok := tab.ModifyPriority(99, 1); ok {
		t.Fatal("ModifyPriority of absent ID succeeded")
	}
}

// TestTableGen checks the generation counter: every state change bumps it,
// reads and dropped (faulted) operations leave it alone.
func TestTableGen(t *testing.T) {
	tab := NewTable("gen", 8, Pica8P3290)
	r := classifier.Rule{ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8")), Priority: 1}
	g := tab.Gen()
	if _, err := tab.Insert(r); err != nil {
		t.Fatal(err)
	}
	if tab.Gen() == g {
		t.Fatal("Insert did not bump gen")
	}
	g = tab.Gen()
	tab.Lookup(0x0A000001, 0)
	tab.Get(1)
	tab.Rules()
	if tab.Gen() != g {
		t.Fatal("reads bumped gen")
	}
	tab.SetFaultHook(func(Op, classifier.RuleID) OpFault { return OpFault{Drop: true} })
	if _, err := tab.Insert(classifier.Rule{ID: 2, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if tab.Gen() != g {
		t.Fatal("dropped insert bumped gen")
	}
	tab.SetFaultHook(nil)
	tab.Wipe()
	if tab.Gen() == g {
		t.Fatal("Wipe did not bump gen")
	}
}

// TestLookupIndexedZeroAllocs enforces the zero-allocation fast path at
// paper-scale occupancy.
func TestLookupIndexedZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := fillTable(t, rng, 2048, randTableRule)
	allocs := testing.AllocsPerRun(200, func() {
		tab.LookupIndexed(0x0A0B0C0D, 0xC0A80101)
	})
	if allocs != 0 {
		t.Fatalf("LookupIndexed allocates %.1f/op, want 0", allocs)
	}
}

// TestResetKeepsMapCapacity checks Reset does not reallocate bookkeeping:
// after a Reset, refilling to the same occupancy must not grow allocations
// step over step (the map and slices are recycled in place).
func TestResetKeepsMapCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := fillTable(t, rng, 512, randTableRule)
	tab.Reset()
	if tab.Occupancy() != 0 {
		t.Fatalf("occupancy %d after Reset", tab.Occupancy())
	}
	allocs := testing.AllocsPerRun(20, func() {
		tab.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Reset of empty table allocates %.1f/op, want 0", allocs)
	}
}

// FuzzTableLookupEquivalence feeds arbitrary byte strings interpreted as a
// mutation script plus packet probes, asserting indexed == linear on the
// exact rule at every probe.
func FuzzTableLookupEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0x20, 0x03, 0x99}, uint32(0x0A000001), uint32(0))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252}, uint32(0xC0A80101), uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, script []byte, dst, src uint32) {
		tab := NewTable("fuzz", 128, Pica8P3290)
		nextID := classifier.RuleID(1)
		var ids []classifier.RuleID
		for i := 0; i+4 < len(script); i += 5 {
			op, a, b, c, d := script[i], script[i+1], script[i+2], script[i+3], script[i+4]
			addr := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
			switch op % 6 {
			case 0, 1:
				r := classifier.Rule{
					ID:       nextID,
					Match:    classifier.Match{Dst: classifier.NewPrefix(addr, uint8(op)%33)},
					Priority: int32(a % 5),
				}
				if _, err := tab.InsertRanked(r, uint64(b%4)); err == nil {
					ids = append(ids, nextID)
				}
				nextID++
			case 2:
				if len(ids) > 0 {
					tab.Delete(ids[int(a)%len(ids)])
				}
			case 3:
				if len(ids) > 0 {
					tab.ModifyPriority(ids[int(a)%len(ids)], int32(b%5))
				}
			case 4:
				if len(ids) > 0 {
					m := classifier.Match{Dst: classifier.NewPrefix(addr, uint8(b)%33)}
					tab.ModifyMatch(ids[int(a)%len(ids)], m)
				}
			case 5:
				tab.Truncate(int(a) % (tab.Occupancy() + 1))
			}
			// Probe with the fuzzed packet and with the script-derived
			// address so installed regions get hit.
			for _, pkt := range [...][2]uint32{{dst, src}, {addr, src}} {
				want, wok := tab.LookupLinear(pkt[0], pkt[1])
				got, gok := tab.LookupIndexed(pkt[0], pkt[1])
				if wok != gok || got != want {
					t.Fatalf("lookup(%08x,%08x): indexed %v,%v linear %v,%v",
						pkt[0], pkt[1], got, gok, want, wok)
				}
			}
		}
	})
}

// fillTable installs exactly occ rules drawn from gen.
func fillTable(tb testing.TB, rng *rand.Rand, occ int,
	gen func(*rand.Rand, classifier.RuleID) classifier.Rule) *Table {
	tb.Helper()
	tab := NewTable("bench", occ, Pica8P3290)
	for id := classifier.RuleID(1); tab.Occupancy() < occ; id++ {
		if _, err := tab.Insert(gen(rng, id)); err != nil {
			tb.Fatal(err)
		}
	}
	return tab
}

// benchRule mirrors the paper-scale tables (BGP study §8.4, CacheFlow-style
// FIBs): destination prefixes /16–/30 weighted toward /24, occasional
// source qualifiers, a handful of priority bands. Unlike randTableRule it
// has no catch-all (/0) entries — production rule tables don't either.
func benchRule(rng *rand.Rand, id classifier.RuleID) classifier.Rule {
	plen := uint8(24)
	switch rng.Intn(4) {
	case 0:
		plen = uint8(16 + rng.Intn(8))
	case 1:
		plen = uint8(25 + rng.Intn(6))
	}
	var src classifier.Prefix
	if rng.Intn(8) == 0 {
		src = classifier.NewPrefix(rng.Uint32(), 16)
	}
	return classifier.Rule{
		ID:       id,
		Match:    classifier.Match{Dst: classifier.NewPrefix(rng.Uint32(), plen), Src: src},
		Priority: int32(rng.Intn(6)),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
	}
}

func benchLookup(b *testing.B, occ int, linear bool) {
	rng := rand.New(rand.NewSource(77))
	tab := fillTable(b, rng, occ, benchRule)
	tab.SetLinearLookup(linear)
	pkts := make([][2]uint32, 1024)
	rules := tab.Rules()
	for i := range pkts {
		pkts[i][0], pkts[i][1] = probeAddr(rng, rules)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i&1023]
		tab.Lookup(p[0], p[1])
	}
}

func BenchmarkTableLookup(b *testing.B) {
	for _, occ := range []int{64, 512, 2048} {
		b.Run(fmtOcc("linear", occ), func(b *testing.B) { benchLookup(b, occ, true) })
		b.Run(fmtOcc("indexed", occ), func(b *testing.B) { benchLookup(b, occ, false) })
	}
}

func fmtOcc(path string, occ int) string {
	return path + "/occ=" + itoa(occ)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkTableReset guards the clear-in-place Reset: resetting a full
// table must not allocate (the old implementation reallocated the presence
// map every call). The refill runs under a stopped timer so only Reset's
// own cost and allocations are measured.
func BenchmarkTableReset(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	seed := fillTable(b, rng, 16, benchRule)
	rules := seed.Rules()
	// A pool of tables amortizes the stopped-timer refill so the measured
	// loop is (almost) pure Reset.
	const pool = 256
	tabs := make([]*Table, pool)
	refill := func() {
		for i, tab := range tabs {
			if tab == nil {
				tab = NewTable("reset", 16, Pica8P3290)
				tabs[i] = tab
			}
			for _, r := range rules {
				if _, err := tab.InsertRanked(r, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	refill()
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == pool {
			b.StopTimer()
			refill()
			b.StartTimer()
			next = 0
		}
		tabs[next].Reset()
		next++
	}
}
