package tcam

import (
	"testing"
	"time"

	"hermes/internal/classifier"
)

func TestSwitchAccessors(t *testing.T) {
	sw := NewSwitch("sw9", Dell8132F)
	if sw.Name() != "sw9" {
		t.Error("Name")
	}
	if sw.Profile() != Dell8132F {
		t.Error("Profile")
	}
	if len(sw.Slices()) != 1 {
		t.Error("Slices before carve")
	}
	sw.Carve(100)
	if len(sw.Slices()) != 2 {
		t.Error("Slices after carve")
	}
}

func TestSubmitGuaranteedLaneIsolation(t *testing.T) {
	sw := NewSwitch("sw", Pica8P3290)
	// A long best-effort op occupies the best-effort lane...
	beDone := sw.Submit(0, 50*time.Millisecond)
	if beDone != 50*time.Millisecond {
		t.Fatalf("beDone = %v", beDone)
	}
	// ...but a guaranteed op issued right after does not queue behind it.
	gDone := sw.SubmitGuaranteed(time.Millisecond, 2*time.Millisecond)
	if gDone != 3*time.Millisecond {
		t.Errorf("guaranteed completion = %v, want 3ms (no queueing)", gDone)
	}
	// Guaranteed ops queue behind each other.
	g2 := sw.SubmitGuaranteed(time.Millisecond, 2*time.Millisecond)
	if g2 != 5*time.Millisecond {
		t.Errorf("second guaranteed completion = %v, want 5ms", g2)
	}
	// Best-effort work yields to the guaranteed lane.
	be2 := sw.Submit(51*time.Millisecond, time.Millisecond)
	if be2 != 52*time.Millisecond {
		t.Errorf("be2 = %v", be2)
	}
	sw3 := NewSwitch("sw3", Pica8P3290)
	sw3.SubmitGuaranteed(0, 10*time.Millisecond)
	if got := sw3.Submit(0, time.Millisecond); got != 11*time.Millisecond {
		t.Errorf("best-effort did not yield to guaranteed lane: %v", got)
	}
}

func TestTableAccessorsAndCosts(t *testing.T) {
	tb := NewTable("t9", 128, HP5406zl)
	if tb.Name() != "t9" || tb.Profile() != HP5406zl {
		t.Error("accessors")
	}
	// Empty table: any priority inserts at position 0 with 0 shifts.
	pos, shifts := tb.InsertPosition(5)
	if pos != 0 || shifts != 0 {
		t.Errorf("empty InsertPosition = %d, %d", pos, shifts)
	}
	if got := tb.InsertCost(5); got != HP5406zl.FloorLatency {
		t.Errorf("empty InsertCost = %v", got)
	}
	tb.Insert(classifier.Rule{ID: 1, Priority: 10})
	tb.Insert(classifier.Rule{ID: 2, Priority: 20})
	// Inserting at priority 15 lands between them, shifting one entry.
	pos, shifts = tb.InsertPosition(15)
	if pos != 1 || shifts != 1 {
		t.Errorf("InsertPosition(15) = %d, %d", pos, shifts)
	}
	if got := tb.InsertCost(15); got != HP5406zl.InsertLatency(1) {
		t.Errorf("InsertCost(15) = %v", got)
	}
}

func TestNewTablePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(0) must panic")
		}
	}()
	NewTable("bad", 0, Pica8P3290)
}

func TestProfileValidateErrors(t *testing.T) {
	good := *Pica8P3290
	cases := map[string]func(*Profile){
		"capacity":    func(p *Profile) { p.Capacity = 0 },
		"empty cal":   func(p *Profile) { p.Calibration = nil },
		"unsorted":    func(p *Profile) { p.Calibration = []CalPoint{{100, 10}, {50, 20}} },
		"bad point":   func(p *Profile) { p.Calibration = []CalPoint{{50, 0}} },
		"neg occ":     func(p *Profile) { p.Calibration = []CalPoint{{-1, 10}} },
		"zero floor":  func(p *Profile) { p.FloorLatency = 0 },
		"zero delete": func(p *Profile) { p.DeleteLatency = 0 },
		"zero modify": func(p *Profile) { p.ModifyLatency = 0 },
		"zero bulk":   func(p *Profile) { p.BulkWriteLatency = 0 },
	}
	for name, mutate := range cases {
		p := good
		p.Calibration = append([]CalPoint(nil), good.Calibration...)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad profile", name)
		}
	}
}

func TestSinglePointProfileExtrapolation(t *testing.T) {
	p := &Profile{
		Name: "single", Capacity: 100,
		Calibration:      []CalPoint{{Occupancy: 50, UpdatesPerSec: 1000}},
		FloorLatency:     100 * time.Microsecond,
		BulkWriteLatency: 10 * time.Microsecond,
		DeleteLatency:    100 * time.Microsecond,
		ModifyLatency:    100 * time.Microsecond,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Beyond the single point, latency extrapolates proportionally.
	l50 := p.InsertLatency(50)
	l100 := p.InsertLatency(100)
	if l100 <= l50 {
		t.Errorf("single-point extrapolation: L(100)=%v not above L(50)=%v", l100, l50)
	}
}
