package tcam

import (
	"fmt"
	"time"

	"hermes/internal/classifier"
)

// Switch models one SDN switch: a TCAM carved into one or more slices plus
// a serial control-plane processor. Control-plane actions (flow-mods) queue
// at the switch agent and are serviced one at a time, so a burst of updates
// experiences queueing delay on top of per-operation hardware latency —
// exactly the effect that inflates rule installation time in the paper's
// measurements.
type Switch struct {
	name    string
	profile *Profile
	slices  []*Table
	// busyUntil is the virtual time at which the control-plane processor
	// frees up for best-effort work; guaranteedUntil tracks the
	// high-priority lane used by Hermes's guaranteed operations, which
	// best-effort work must also yield to.
	busyUntil       time.Duration
	guaranteedUntil time.Duration
}

// NewSwitch creates a switch with a single monolithic table of the
// profile's full capacity.
func NewSwitch(name string, profile *Profile) *Switch {
	return &Switch{
		name:    name,
		profile: profile,
		slices:  []*Table{NewTable(name+"/table0", profile.Capacity, profile)},
	}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Profile returns the switch's performance profile.
func (s *Switch) Profile() *Profile { return s.profile }

// Slices returns the lookup-ordered TCAM slices. Callers must not mutate
// the returned slice header; the tables themselves are the live objects.
func (s *Switch) Slices() []*Table { return s.slices }

// Table returns the single table of an un-carved switch. It panics if the
// switch has been carved, which indicates the caller should use Shadow/Main.
func (s *Switch) Table() *Table {
	if len(s.slices) != 1 {
		panic(fmt.Sprintf("tcam: switch %s is carved into %d slices", s.name, len(s.slices)))
	}
	return s.slices[0]
}

// Carve splits the switch's TCAM into a shadow slice of shadowSize entries
// and a main slice holding the remaining capacity, mirroring the TCAM
// carving/slicing facilities of commodity ASICs (§6). Both slices share the
// profile; lookups consult the shadow slice first (its table-miss behaviour
// is "goto next table"). Carving discards installed entries, as
// reconfiguring slice layouts does on real hardware, so it is done at
// configuration time.
func (s *Switch) Carve(shadowSize int) (shadow, main *Table, err error) {
	if shadowSize <= 0 || shadowSize >= s.profile.Capacity {
		return nil, nil, fmt.Errorf("tcam: shadow size %d out of range (capacity %d)",
			shadowSize, s.profile.Capacity)
	}
	shadow = NewTable(s.name+"/shadow", shadowSize, s.profile)
	main = NewTable(s.name+"/main", s.profile.Capacity-shadowSize, s.profile)
	s.slices = []*Table{shadow, main}
	return shadow, main, nil
}

// Uncarve restores a single monolithic table, discarding entries.
func (s *Switch) Uncarve() *Table {
	t := NewTable(s.name+"/table0", s.profile.Capacity, s.profile)
	s.slices = []*Table{t}
	return t
}

// Lookup performs the pipeline lookup: slices are consulted in order and
// the first slice with a matching rule processes the packet (§3: shadow
// first, main on shadow miss).
func (s *Switch) Lookup(dst, src uint32) (classifier.Rule, bool) {
	for _, t := range s.slices {
		if r, ok := t.Lookup(dst, src); ok {
			return r, true
		}
	}
	return classifier.Rule{}, false
}

// Submit models the serial control-plane processor: a best-effort
// operation of the given hardware cost arriving at time now starts when
// the processor is free (yielding to any queued guaranteed work) and
// completes cost later. It returns the completion time and advances the
// processor clock.
func (s *Switch) Submit(now, cost time.Duration) (completion time.Duration) {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	if s.guaranteedUntil > start {
		start = s.guaranteedUntil
	}
	completion = start + cost
	s.busyUntil = completion
	return completion
}

// SubmitGuaranteed schedules an operation on the high-priority lane that
// Hermes's Gate Keeper uses for guaranteed shadow-table actions: it queues
// only behind other guaranteed operations, never behind best-effort
// main-table work. TCAM update primitives are microsecond-granular at the
// SDK level, so the agent can interleave its guaranteed writes ahead of
// queued best-effort ones (§6).
func (s *Switch) SubmitGuaranteed(now, cost time.Duration) (completion time.Duration) {
	start := now
	if s.guaranteedUntil > start {
		start = s.guaranteedUntil
	}
	completion = start + cost
	s.guaranteedUntil = completion
	return completion
}

// BusyUntil reports when the best-effort lane frees up.
func (s *Switch) BusyUntil() time.Duration { return s.busyUntil }

// ResetClock clears the control-plane queue state (for reusing a switch
// across experiment repetitions).
func (s *Switch) ResetClock() {
	s.busyUntil = 0
	s.guaranteedUntil = 0
}

// CrashRestart models a switch power-cycle: every slice loses its entries
// (the slice layout itself is preserved — carving is a boot-time config)
// and the control-plane queues empty. The agent's desired state survives
// in software; core.(*Agent).Reconcile re-installs it.
func (s *Switch) CrashRestart() {
	for _, t := range s.slices {
		t.Wipe()
	}
	s.busyUntil = 0
	s.guaranteedUntil = 0
}
