package tcam

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
)

// Common table errors.
var (
	// ErrTableFull is returned when an insertion would exceed capacity.
	ErrTableFull = errors.New("tcam: table full")
	// ErrDuplicateID is returned when a rule ID is already present.
	ErrDuplicateID = errors.New("tcam: duplicate rule id")
)

// Op identifies one TCAM mutation class for the fault-injection hook.
type Op uint8

// TCAM operation classes.
const (
	// OpInsert covers Insert and InsertRanked.
	OpInsert Op = iota
	// OpDelete covers Delete.
	OpDelete
	// OpModify covers ModifyAction, ModifyMatch and ModifyPriority.
	OpModify
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// OpFault is a fault hook's verdict for one TCAM operation. Extra is added
// to the modeled hardware latency (a slow op); Drop makes the hardware ack
// the operation without applying it — the lost-update failure mode of a
// crashing update engine. Dropped operations report success to the caller,
// so the agent's view and the physical table silently diverge; that
// divergence is exactly what core.(*Agent).Reconcile repairs.
type OpFault struct {
	Extra time.Duration
	Drop  bool
}

// OpFaultHook inspects one TCAM operation and returns the fault to apply.
// The zero OpFault means "run normally". Hooks must be deterministic
// (scripted or seeded) so fault schedules replay identically.
type OpFaultHook func(op Op, id classifier.RuleID) OpFault

// entryMeta is the per-rule bookkeeping record: the sort key the entry is
// physically placed by. slotOf recovers the entry's slot from it with one
// binary search instead of a table scan, and the indexed lookup uses
// (Priority, rank, ord) to rank trie candidates exactly as the physical
// order would.
type entryMeta struct {
	priority int32
	// rank breaks priority ties: lower rank sits higher (see Table.ranks).
	rank uint64
	// ord is a per-table monotonic arrival stamp. Within an equal
	// (priority, rank) group physical order equals ascending ord, because
	// insertions always place new equals below existing ones. It makes the
	// indexed candidate ranking a total order identical to slot order.
	ord uint64
}

// Table is one TCAM slice: a priority-ordered entry list with the shift-cost
// insertion behaviour of real TCAMs. Entries are kept in descending priority
// order; among equal priorities the earlier-inserted rule sits higher, which
// yields first-match semantics identical to hardware.
//
// Every mutating operation returns the modeled hardware latency so callers
// (the Hermes agent, the simulator) can account for control-plane time.
//
// Alongside the physical entry list the table maintains two indexes: meta
// (ID → sort key) so Get/Delete/Modify* locate a slot without scanning, and
// a destination-prefix trie so Lookup only visits the entries whose Dst can
// match the packet. SetLinearLookup(true) reverts Lookup to the full scan —
// kept as the differential-testing oracle, never as the production path.
type Table struct {
	name     string
	capacity int
	profile  *Profile
	entries  []classifier.Rule
	// ranks break priority ties: lower rank sits higher, mirroring the
	// earlier-inserted-wins order of a monolithic TCAM. Plain Insert
	// auto-assigns increasing ranks; the Hermes agent passes its logical
	// sequence numbers so migrated rules regain their original standing.
	ranks    []uint64
	nextRank uint64

	// meta maps installed rule IDs to their placement key; it replaces the
	// old presence set and makes rule bookkeeping O(log n) instead of O(n).
	meta    map[classifier.RuleID]entryMeta
	nextOrd uint64
	// index holds exactly the installed entries keyed by destination
	// prefix; the indexed Lookup walks the packet's ≤33-node trie path.
	index classifier.Trie
	// linear reverts Lookup to the full-scan oracle.
	linear bool

	// gen counts state changes. It is atomic so lock-free readers (the
	// agent's snapshot path) can cheaply validate a cached view even when
	// harnesses mutate the table behind the agent's back (CrashRestart).
	gen atomic.Uint64

	// fault, when non-nil, is consulted before every mutation (the
	// fault-injection seam used by internal/faultinject).
	fault OpFaultHook

	// Counters for the overhead experiments.
	totalShifts  int
	totalInserts int
	totalDeletes int
	totalMods    int
	droppedOps   int

	// shiftHist, when non-nil, receives the entry-shift count of every
	// ranked insert and priority modify (the obs wiring; recording is
	// lock-free and allocation-free).
	shiftHist *obs.Histogram
}

// SetShiftHistogram attaches (or, with nil, detaches) an obs histogram
// that records the per-operation shift counts — the quantity the paper's
// latency model is built on, since insertion latency is linear in shifts.
func (t *Table) SetShiftHistogram(h *obs.Histogram) { t.shiftHist = h }

// SetFaultHook installs (or, with nil, removes) the per-operation fault
// hook. Intended for fault-injection harnesses only.
func (t *Table) SetFaultHook(h OpFaultHook) { t.fault = h }

// DroppedOps reports how many operations the fault hook silently dropped.
func (t *Table) DroppedOps() int { return t.droppedOps }

// faultFor consults the hook for one operation.
func (t *Table) faultFor(op Op, id classifier.RuleID) OpFault {
	if t.fault == nil {
		return OpFault{}
	}
	return t.fault(op, id)
}

// NewTable creates an empty table. Capacity may be smaller than the
// profile's full capacity when the table is a carved slice.
func NewTable(name string, capacity int, profile *Profile) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("tcam: table %q capacity %d", name, capacity))
	}
	return &Table{
		name:     name,
		capacity: capacity,
		profile:  profile,
		meta:     make(map[classifier.RuleID]entryMeta),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Capacity returns the number of entries the slice can hold.
func (t *Table) Capacity() int { return t.capacity }

// Occupancy returns the number of installed entries.
func (t *Table) Occupancy() int { return len(t.entries) }

// Free returns the remaining entry slots.
func (t *Table) Free() int { return t.capacity - len(t.entries) }

// Profile returns the switch profile backing the latency model.
func (t *Table) Profile() *Profile { return t.profile }

// Gen returns the table's state-change generation. Any mutation — including
// out-of-band ones like Wipe from a crash harness — bumps it, so a reader
// holding a derived snapshot can detect staleness with one atomic load.
func (t *Table) Gen() uint64 { return t.gen.Load() }

// SetLinearLookup selects the full-scan lookup path (true) or the trie-
// indexed one (false, the default). The linear path exists as the
// differential-testing oracle.
func (t *Table) SetLinearLookup(v bool) { t.linear = v }

// Contains reports whether a rule ID is installed.
func (t *Table) Contains(id classifier.RuleID) bool {
	_, ok := t.meta[id]
	return ok
}

// Rules returns the installed rules in TCAM order (highest priority first).
// The returned slice is a copy.
func (t *Table) Rules() []classifier.Rule {
	return append([]classifier.Rule(nil), t.entries...)
}

// InsertPosition returns the index at which a rule with the given priority
// would be placed by a plain Insert (below all equal priorities), and the
// number of entries that insertion would shift.
func (t *Table) InsertPosition(priority int32) (pos, shifts int) {
	return t.insertPositionRanked(priority, ^uint64(0))
}

// insertPositionRanked places by (priority desc, rank asc). Among equal
// (priority, rank) the new entry lands below existing ones — the invariant
// entryMeta.ord depends on.
func (t *Table) insertPositionRanked(priority int32, rank uint64) (pos, shifts int) {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		e := t.entries[mid]
		if e.Priority > priority || (e.Priority == priority && t.ranks[mid] <= rank) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, len(t.entries) - lo
}

// slotOf locates an installed rule's slot: binary-search to the start of
// its (priority, rank) group, then walk the (almost always tiny) group.
// Returns -1 if the ID is not installed.
func (t *Table) slotOf(id classifier.RuleID) int {
	m, ok := t.meta[id]
	if !ok {
		return -1
	}
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		e := t.entries[mid]
		if e.Priority > m.priority || (e.Priority == m.priority && t.ranks[mid] < m.rank) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(t.entries); i++ {
		if t.entries[i].ID == id {
			return i
		}
		if t.entries[i].Priority != m.priority || t.ranks[i] != m.rank {
			break
		}
	}
	return -1
}

// InsertCost returns the latency an insertion of the given priority would
// incur right now, without performing it.
func (t *Table) InsertCost(priority int32) time.Duration {
	_, shifts := t.InsertPosition(priority)
	return t.profile.InsertLatency(shifts)
}

// Insert installs a rule, returning the modeled latency. Inserting the
// lowest-priority rule appends without shifting and costs only the floor
// latency — the fast path Hermes's §4.2 optimization exploits. Priority
// ties place the new rule below existing equals (earlier wins).
func (t *Table) Insert(r classifier.Rule) (time.Duration, error) {
	rank := t.nextRank
	t.nextRank++
	return t.InsertRanked(r, rank)
}

// InsertRanked installs a rule at an explicit tie rank: among equal
// priorities, lower ranks sit higher. Hermes uses its logical insertion
// sequence as the rank so that rules migrated into the main table recover
// their original tie order relative to rules already there.
func (t *Table) InsertRanked(r classifier.Rule, rank uint64) (time.Duration, error) {
	if len(t.entries) >= t.capacity {
		return 0, fmt.Errorf("%w: %s at %d entries", ErrTableFull, t.name, t.capacity)
	}
	if _, dup := t.meta[r.ID]; dup {
		return 0, fmt.Errorf("%w: %d in %s", ErrDuplicateID, r.ID, t.name)
	}
	if rank >= t.nextRank {
		t.nextRank = rank + 1
	}
	pos, shifts := t.insertPositionRanked(r.Priority, rank)
	f := t.faultFor(OpInsert, r.ID)
	if f.Drop {
		// Lost update: the hardware acks but the entry never lands.
		t.droppedOps++
		return t.profile.InsertLatency(shifts) + f.Extra, nil
	}
	t.entries = append(t.entries, classifier.Rule{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = r
	t.ranks = append(t.ranks, 0)
	copy(t.ranks[pos+1:], t.ranks[pos:])
	t.ranks[pos] = rank
	t.meta[r.ID] = entryMeta{priority: r.Priority, rank: rank, ord: t.nextOrd}
	t.nextOrd++
	t.index.Insert(r)
	t.totalShifts += shifts
	t.totalInserts++
	if t.shiftHist != nil {
		t.shiftHist.Record(uint64(shifts))
	}
	t.gen.Add(1)
	return t.profile.InsertLatency(shifts) + f.Extra, nil
}

// Delete removes a rule by ID, returning the (constant) latency and whether
// the rule was present. Deletion never shifts entries: real TCAMs simply
// invalidate the slot (§2.1, "deletion is a simple and fast operation").
func (t *Table) Delete(id classifier.RuleID) (time.Duration, bool) {
	i := t.slotOf(id)
	if i < 0 {
		return 0, false
	}
	f := t.faultFor(OpDelete, id)
	if f.Drop {
		// Lost delete: the entry stays installed despite the ack.
		t.droppedOps++
		return t.profile.DeleteLatency + f.Extra, true
	}
	t.index.Delete(t.entries[i].Match.Dst, id)
	t.entries = append(t.entries[:i], t.entries[i+1:]...)
	t.ranks = append(t.ranks[:i], t.ranks[i+1:]...)
	delete(t.meta, id)
	t.totalDeletes++
	t.gen.Add(1)
	return t.profile.DeleteLatency + f.Extra, true
}

// ModifyAction rewrites a rule's action in place — constant time, no
// reordering (§2.1, "modifications, surprisingly, can be constant").
func (t *Table) ModifyAction(id classifier.RuleID, a classifier.Action) (time.Duration, bool) {
	i := t.slotOf(id)
	if i < 0 {
		return 0, false
	}
	f := t.faultFor(OpModify, id)
	if f.Drop {
		t.droppedOps++
		return t.profile.ModifyLatency + f.Extra, true
	}
	t.entries[i].Action = a
	t.index.Update(t.entries[i].Match.Dst, t.entries[i])
	t.totalMods++
	t.gen.Add(1)
	return t.profile.ModifyLatency + f.Extra, true
}

// ModifyMatch rewrites a rule's match in place — constant-time slot
// bookkeeping via the ID index (the slot, priority and tie rank are
// unchanged, so the entry does not move).
func (t *Table) ModifyMatch(id classifier.RuleID, m classifier.Match) (time.Duration, bool) {
	i := t.slotOf(id)
	if i < 0 {
		return 0, false
	}
	oldDst := t.entries[i].Match.Dst
	t.entries[i].Match = m
	if oldDst == m.Dst {
		t.index.Update(m.Dst, t.entries[i])
	} else {
		t.index.Delete(oldDst, id)
		t.index.Insert(t.entries[i])
	}
	t.totalMods++
	t.gen.Add(1)
	return t.profile.ModifyLatency, true
}

// ModifyPriority moves a rule to a new priority, keeping its tie rank. The
// hardware cost is the shift distance between the old and new slots, as if
// the update engine slid the intervening entries by one. The repositioned
// entry lands below existing (priority, rank) equals, like a fresh insert.
func (t *Table) ModifyPriority(id classifier.RuleID, priority int32) (time.Duration, bool) {
	i := t.slotOf(id)
	if i < 0 {
		return 0, false
	}
	f := t.faultFor(OpModify, id)
	if f.Drop {
		t.droppedOps++
		return t.profile.ModifyLatency + f.Extra, true
	}
	r := t.entries[i]
	m := t.meta[id]
	r.Priority = priority
	// Remove, then re-place by the new key.
	t.entries = append(t.entries[:i], t.entries[i+1:]...)
	t.ranks = append(t.ranks[:i], t.ranks[i+1:]...)
	pos, _ := t.insertPositionRanked(priority, m.rank)
	t.entries = append(t.entries, classifier.Rule{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = r
	t.ranks = append(t.ranks, 0)
	copy(t.ranks[pos+1:], t.ranks[pos:])
	t.ranks[pos] = m.rank
	t.meta[id] = entryMeta{priority: priority, rank: m.rank, ord: t.nextOrd}
	t.nextOrd++
	t.index.Update(r.Match.Dst, r)
	shifts := pos - i
	if shifts < 0 {
		shifts = -shifts
	}
	t.totalShifts += shifts
	t.totalMods++
	if t.shiftHist != nil {
		t.shiftHist.Record(uint64(shifts))
	}
	t.gen.Add(1)
	return t.profile.InsertLatency(shifts) + f.Extra, true
}

// Get returns the installed rule with the given ID — an indexed slot
// recovery, not a scan.
func (t *Table) Get(id classifier.RuleID) (classifier.Rule, bool) {
	i := t.slotOf(id)
	if i < 0 {
		return classifier.Rule{}, false
	}
	return t.entries[i], true
}

// Lookup returns the first (highest-priority, earliest-inserted) rule
// matching the packet, mirroring hardware first-match semantics. The
// default path descends the destination-prefix trie and ranks the on-path
// candidates; SetLinearLookup(true) selects the full-scan oracle instead.
// Both return bit-for-bit the same rule.
func (t *Table) Lookup(dst, src uint32) (classifier.Rule, bool) {
	if t.linear {
		return t.LookupLinear(dst, src)
	}
	return t.LookupIndexed(dst, src)
}

// LookupLinear is the scan-every-entry reference lookup, kept as the
// differential-testing oracle for LookupIndexed.
func (t *Table) LookupLinear(dst, src uint32) (classifier.Rule, bool) {
	for _, e := range t.entries {
		if e.Match.MatchesPacket(dst, src) {
			return e, true
		}
	}
	return classifier.Rule{}, false
}

// LookupIndexed walks the ≤33 trie nodes on the packet's destination path —
// exactly the entries whose Dst can match — and picks the winner by
// (priority desc, rank asc, ord asc), which is precisely physical slot
// order. Zero allocations.
func (t *Table) LookupIndexed(dst, src uint32) (classifier.Rule, bool) {
	var best classifier.Rule
	found := false
	for it := t.index.MatchCandidates(dst); ; {
		r, ok := it.Next()
		if !ok {
			break
		}
		if !r.Match.Src.MatchesAddr(src) {
			continue
		}
		if !found || r.Priority > best.Priority {
			best, found = r, true
			continue
		}
		if r.Priority == best.Priority {
			// Tie: fall back to the placement key (rank, then arrival).
			rm, bm := t.meta[r.ID], t.meta[best.ID]
			if rm.rank < bm.rank || (rm.rank == bm.rank && rm.ord < bm.ord) {
				best = r
			}
		}
	}
	return best, found
}

// Reset empties the table. Used by the Rule Manager's "empty shadow table"
// migration step; bulk invalidation is a cheap constant-time TCAM
// operation per entry. The bookkeeping map is cleared in place rather than
// reallocated — migration-heavy runs reset tables constantly.
func (t *Table) Reset() time.Duration {
	n := len(t.entries)
	t.clearState()
	return time.Duration(n) * t.profile.DeleteLatency
}

// Wipe models a switch crash/power-cycle: every entry vanishes instantly,
// with no modeled latency and no operation counters (the control plane
// never issued these deletions — the hardware simply lost its state).
func (t *Table) Wipe() {
	t.clearState()
}

func (t *Table) clearState() {
	t.entries = t.entries[:0]
	t.ranks = t.ranks[:0]
	clear(t.meta)
	t.index.Clear()
	t.gen.Add(1)
}

// Truncate models a crash mid-bulk-write: only the first n entries (in
// TCAM order) survive; the tail vanishes as in Wipe. A negative or
// oversized n is a no-op.
func (t *Table) Truncate(n int) {
	if n < 0 || n >= len(t.entries) {
		return
	}
	for _, e := range t.entries[n:] {
		delete(t.meta, e.ID)
		t.index.Delete(e.Match.Dst, e.ID)
	}
	t.entries = t.entries[:n]
	t.ranks = t.ranks[:n]
	t.gen.Add(1)
}

// Stats reports cumulative operation counters.
func (t *Table) Stats() TableStats {
	return TableStats{
		Inserts: t.totalInserts,
		Deletes: t.totalDeletes,
		Mods:    t.totalMods,
		Shifts:  t.totalShifts,
	}
}

// TableStats are cumulative per-table operation counters.
type TableStats struct {
	Inserts, Deletes, Mods, Shifts int
}
