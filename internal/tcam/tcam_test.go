package tcam

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/classifier"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("Pica8 P-3290"); !ok || p != Pica8P3290 {
		t.Error("ProfileByName Pica8")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName must fail on unknown name")
	}
}

// TestCalibrationReproducesTable1 checks that the latency model evaluated
// at the calibration occupancies reproduces the paper's Table 1 update
// rates exactly (the model is interpolated through those points).
func TestCalibrationReproducesTable1(t *testing.T) {
	table1 := map[string]map[int]float64{
		"Pica8 P-3290": {50: 1266, 200: 114, 1000: 23, 2000: 12},
		"Dell 8132F":   {50: 970, 250: 494, 500: 42, 750: 29},
	}
	for name, points := range table1 {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		for occ, want := range points {
			got := p.UpdatesPerSec(occ)
			if math.Abs(got-want)/want > 0.01 {
				t.Errorf("%s at occupancy %d: %.1f updates/s, want %.1f", name, occ, got, want)
			}
		}
	}
}

func TestInsertLatencyMonotone(t *testing.T) {
	for _, p := range Profiles() {
		prev := time.Duration(0)
		for shifts := 0; shifts <= p.Capacity; shifts += 13 {
			l := p.InsertLatency(shifts)
			if l < prev {
				t.Errorf("%s: latency not monotone at %d shifts (%v < %v)", p.Name, shifts, l, prev)
			}
			if l < p.FloorLatency {
				t.Errorf("%s: latency below floor at %d shifts", p.Name, shifts)
			}
			prev = l
		}
	}
}

func TestInsertLatencyExtrapolation(t *testing.T) {
	p := Pica8P3290
	last := p.Calibration[len(p.Calibration)-1]
	lLast := p.InsertLatency(last.Occupancy)
	lBeyond := p.InsertLatency(last.Occupancy + 500)
	if lBeyond <= lLast {
		t.Errorf("extrapolated latency %v not greater than last calibrated %v", lBeyond, lLast)
	}
}

func TestMaxShiftsWithin(t *testing.T) {
	p := Pica8P3290
	for _, bound := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		n := p.MaxShiftsWithin(bound)
		if n <= 0 {
			t.Fatalf("MaxShiftsWithin(%v) = %d", bound, n)
		}
		if got := p.InsertLatency(n); got > bound {
			t.Errorf("InsertLatency(%d) = %v exceeds bound %v", n, got, bound)
		}
		if got := p.InsertLatency(n + 1); got <= bound {
			t.Errorf("InsertLatency(%d+1) = %v within bound %v: n not maximal", n, got, bound)
		}
	}
	// 5ms on the Pica8 should allow on the order of 100+ entries, and the
	// resulting shadow overhead should be under 5% of the TCAM (the
	// headline claim of the paper).
	n := p.MaxShiftsWithin(5 * time.Millisecond)
	overhead := float64(n) / float64(p.Capacity)
	if overhead >= 0.05 {
		t.Errorf("5ms shadow overhead on Pica8 = %.1f%%, want <5%%", overhead*100)
	}
	if n < 50 {
		t.Errorf("5ms shadow size = %d, implausibly small", n)
	}
	// A bound below the floor admits nothing.
	if got := p.MaxShiftsWithin(p.FloorLatency / 2); got != 0 {
		t.Errorf("sub-floor bound: MaxShiftsWithin = %d, want 0", got)
	}
}

func rule(id classifier.RuleID, dst string, prio int32) classifier.Rule {
	return classifier.Rule{
		ID:       id,
		Match:    classifier.DstMatch(classifier.MustParsePrefix(dst)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id)},
	}
}

func TestTableInsertOrdering(t *testing.T) {
	tb := NewTable("t", 100, Pica8P3290)
	mustInsert := func(r classifier.Rule) time.Duration {
		d, err := tb.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%v): %v", r, err)
		}
		return d
	}
	mustInsert(rule(1, "10.0.0.0/8", 10))
	mustInsert(rule(2, "20.0.0.0/8", 30))
	mustInsert(rule(3, "30.0.0.0/8", 20))
	mustInsert(rule(4, "40.0.0.0/8", 20)) // ties go below rule 3

	got := tb.Rules()
	wantOrder := []classifier.RuleID{2, 3, 4, 1}
	for i, id := range wantOrder {
		if got[i].ID != id {
			t.Fatalf("order = %v, want %v", got, wantOrder)
		}
	}
}

func TestTableInsertShiftCost(t *testing.T) {
	tb := NewTable("t", 1000, Pica8P3290)
	// Fill with 200 rules of priority 100.
	for i := 0; i < 200; i++ {
		if _, err := tb.Insert(rule(classifier.RuleID(i+1), "10.0.0.0/8", 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Appending the lowest-priority rule costs only the floor.
	low, err := tb.Insert(rule(1000, "20.0.0.0/8", 1))
	if err != nil {
		t.Fatal(err)
	}
	if low != Pica8P3290.FloorLatency {
		t.Errorf("lowest-priority insert cost %v, want floor %v", low, Pica8P3290.FloorLatency)
	}
	// Inserting at the top shifts all 201 entries.
	top, err := tb.Insert(rule(1001, "30.0.0.0/8", 1000))
	if err != nil {
		t.Fatal(err)
	}
	want := Pica8P3290.InsertLatency(201)
	if top != want {
		t.Errorf("top insert cost %v, want %v", top, want)
	}
	if top < 20*low {
		t.Errorf("top insert (%v) should dwarf floor insert (%v)", top, low)
	}
}

func TestTableCapacityAndDuplicates(t *testing.T) {
	tb := NewTable("t", 2, Pica8P3290)
	if _, err := tb.Insert(rule(1, "10.0.0.0/8", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(rule(1, "10.0.0.0/8", 1)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if _, err := tb.Insert(rule(2, "20.0.0.0/8", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(rule(3, "30.0.0.0/8", 1)); !errors.Is(err, ErrTableFull) {
		t.Errorf("overflow insert err = %v", err)
	}
	if tb.Free() != 0 || tb.Occupancy() != 2 || tb.Capacity() != 2 {
		t.Error("occupancy accounting")
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewTable("t", 10, Dell8132F)
	tb.Insert(rule(1, "10.0.0.0/8", 5))
	tb.Insert(rule(2, "20.0.0.0/8", 3))
	d, ok := tb.Delete(1)
	if !ok || d != Dell8132F.DeleteLatency {
		t.Errorf("Delete = %v, %v", d, ok)
	}
	if tb.Contains(1) || !tb.Contains(2) {
		t.Error("delete bookkeeping")
	}
	if _, ok := tb.Delete(1); ok {
		t.Error("double delete succeeded")
	}
	if _, ok := tb.Get(1); ok {
		t.Error("Get after delete")
	}
}

func TestTableModify(t *testing.T) {
	tb := NewTable("t", 10, HP5406zl)
	tb.Insert(rule(1, "10.0.0.0/8", 5))
	d, ok := tb.ModifyAction(1, classifier.Action{Type: classifier.ActionDrop})
	if !ok || d != HP5406zl.ModifyLatency {
		t.Errorf("ModifyAction = %v, %v", d, ok)
	}
	if r, _ := tb.Get(1); r.Action.Type != classifier.ActionDrop {
		t.Error("action not modified")
	}
	newMatch := classifier.DstMatch(classifier.MustParsePrefix("99.0.0.0/8"))
	if _, ok := tb.ModifyMatch(1, newMatch); !ok {
		t.Error("ModifyMatch failed")
	}
	if r, _ := tb.Get(1); r.Match != newMatch {
		t.Error("match not modified")
	}
	if _, ok := tb.ModifyAction(42, classifier.Action{}); ok {
		t.Error("modify of absent rule succeeded")
	}
	if _, ok := tb.ModifyMatch(42, newMatch); ok {
		t.Error("modify match of absent rule succeeded")
	}
}

func TestTableLookupFirstMatch(t *testing.T) {
	tb := NewTable("t", 10, Pica8P3290)
	tb.Insert(rule(1, "192.168.1.0/24", 10)) // lower priority, inserted first
	tb.Insert(rule(2, "192.168.1.0/26", 20)) // higher priority
	addr := classifier.MustParsePrefix("192.168.1.5/32").Addr
	r, ok := tb.Lookup(addr, 0)
	if !ok || r.ID != 2 {
		t.Errorf("Lookup = %v, want rule 2", r)
	}
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	r, ok = tb.Lookup(addr200, 0)
	if !ok || r.ID != 1 {
		t.Errorf("Lookup .200 = %v, want rule 1", r)
	}
	if _, ok := tb.Lookup(0x01010101, 0); ok {
		t.Error("lookup of unmatched address succeeded")
	}
}

func TestTableReset(t *testing.T) {
	tb := NewTable("t", 10, Pica8P3290)
	for i := 0; i < 5; i++ {
		tb.Insert(rule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i)))
	}
	cost := tb.Reset()
	if cost != 5*Pica8P3290.DeleteLatency {
		t.Errorf("Reset cost = %v", cost)
	}
	if tb.Occupancy() != 0 || tb.Contains(1) {
		t.Error("Reset did not empty table")
	}
}

func TestTableStats(t *testing.T) {
	tb := NewTable("t", 10, Pica8P3290)
	tb.Insert(rule(1, "10.0.0.0/8", 1))
	tb.Insert(rule(2, "20.0.0.0/8", 2)) // shifts rule 1
	tb.Delete(1)
	tb.ModifyAction(2, classifier.Action{Type: classifier.ActionDrop})
	s := tb.Stats()
	if s.Inserts != 2 || s.Deletes != 1 || s.Mods != 1 || s.Shifts != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

// TestTableOrderInvariant property: after any sequence of inserts/deletes
// the entry list is sorted by descending priority with stable ties.
func TestTableOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable("t", 64, Pica8P3290)
		var ids []classifier.RuleID
		for op := 0; op < 100; op++ {
			if r.Intn(3) != 0 || len(ids) == 0 {
				id := classifier.RuleID(op + 1)
				_, err := tb.Insert(rule(id, "10.0.0.0/8", int32(r.Intn(10))))
				if err == nil {
					ids = append(ids, id)
				}
			} else {
				i := r.Intn(len(ids))
				tb.Delete(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			}
			rules := tb.Rules()
			for i := 1; i < len(rules); i++ {
				if rules[i-1].Priority < rules[i].Priority {
					return false
				}
			}
			if len(rules) != len(ids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSwitchCarveAndLookup(t *testing.T) {
	sw := NewSwitch("s1", Pica8P3290)
	if sw.Table() == nil {
		t.Fatal("monolithic table missing")
	}
	shadow, main, err := sw.Carve(128)
	if err != nil {
		t.Fatal(err)
	}
	if shadow.Capacity() != 128 || main.Capacity() != Pica8P3290.Capacity-128 {
		t.Errorf("capacities = %d, %d", shadow.Capacity(), main.Capacity())
	}
	// Shadow-first lookup.
	main.Insert(rule(1, "192.168.1.0/24", 10))
	shadow.Insert(rule(2, "192.168.1.0/26", 5)) // lower priority but shadow wins on its region
	addr := classifier.MustParsePrefix("192.168.1.5/32").Addr
	r, ok := sw.Lookup(addr, 0)
	if !ok || r.ID != 2 {
		t.Errorf("shadow-first lookup = %v, want rule 2", r)
	}
	addr200 := classifier.MustParsePrefix("192.168.1.200/32").Addr
	r, ok = sw.Lookup(addr200, 0)
	if !ok || r.ID != 1 {
		t.Errorf("fallthrough lookup = %v, want rule 1", r)
	}
	// Carve bounds.
	if _, _, err := sw.Carve(0); err == nil {
		t.Error("Carve(0) must fail")
	}
	if _, _, err := sw.Carve(Pica8P3290.Capacity); err == nil {
		t.Error("Carve(full capacity) must fail")
	}
	// Table() panics on a carved switch.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Table() on carved switch must panic")
			}
		}()
		sw.Table()
	}()
	// Uncarve restores a monolithic table.
	tb := sw.Uncarve()
	if tb.Capacity() != Pica8P3290.Capacity {
		t.Error("Uncarve capacity")
	}
}

func TestSwitchSubmitQueueing(t *testing.T) {
	sw := NewSwitch("s1", Pica8P3290)
	c1 := sw.Submit(0, 10*time.Millisecond)
	if c1 != 10*time.Millisecond {
		t.Errorf("c1 = %v", c1)
	}
	// Second op arrives while the first is in service.
	c2 := sw.Submit(time.Millisecond, 5*time.Millisecond)
	if c2 != 15*time.Millisecond {
		t.Errorf("c2 = %v, want 15ms (queued)", c2)
	}
	// Third op arrives after the queue drains.
	c3 := sw.Submit(time.Second, time.Millisecond)
	if c3 != time.Second+time.Millisecond {
		t.Errorf("c3 = %v", c3)
	}
	if sw.BusyUntil() != c3 {
		t.Errorf("BusyUntil = %v", sw.BusyUntil())
	}
	sw.ResetClock()
	if sw.BusyUntil() != 0 {
		t.Error("ResetClock")
	}
}
