// Package tcam models TCAM-based switch flow tables with the empirically
// observed control-plane performance of commodity SDN switches.
//
// The model follows the measurements the paper builds on (§2.1, Table 1,
// [Kuźniar et al., PAM'15], [He et al., SOSR'15]):
//
//   - a TCAM stores entries as a priority-ordered list; inserting an entry
//     at position i must shift every entry below it, and the insertion
//     latency is proportional to the number of shifted entries;
//   - rule deletion is a fast, constant-time operation independent of
//     priority;
//   - rule modification (match or action) is constant time; modifying a
//     rule's priority is equivalent to delete + insert;
//   - absolute speeds differ per switch, so each switch is described by a
//     Profile calibrated against published update-rate measurements.
//
// Profiles map a shift count to an insertion latency via monotone piecewise
// linear interpolation over calibration points taken directly from Table 1
// of the paper. Reproducing Table 1 is therefore a check that the
// calibration code is faithful, and every downstream experiment inherits
// the measured latency *shape* that Hermes exploits.
package tcam

import (
	"fmt"
	"sort"
	"time"
)

// CalPoint is one calibration measurement: inserting a (priority-bearing)
// rule into a table holding Occupancy entries proceeds at UpdatesPerSec
// updates per second, i.e. costs 1/UpdatesPerSec seconds.
type CalPoint struct {
	Occupancy     int
	UpdatesPerSec float64
}

// Profile describes the control-plane performance of one switch model.
type Profile struct {
	// Name identifies the switch (e.g. "Pica8 P-3290").
	Name string
	// ASIC names the switching silicon, for reporting parity with Table 1.
	ASIC string
	// Capacity is the number of TCAM entries in the (monolithic) table.
	Capacity int
	// Calibration holds the measured (occupancy, updates/s) points, in
	// ascending occupancy order. The benchmark behind these numbers
	// inserts at the top of the table, so occupancy == shifts.
	Calibration []CalPoint
	// FloorLatency is the fixed per-operation overhead (driver + firmware
	// round trip) that applies even to shift-free insertions such as
	// appending the lowest-priority rule.
	FloorLatency time.Duration
	// BulkWriteLatency is the per-entry cost of a bulk table rewrite
	// issued directly through the ASIC SDK, as Hermes's on-switch Rule
	// Manager does during migration (§5.2, §6). Bulk writes lay entries
	// down in final order, so no shifting occurs and the per-entry cost is
	// far below FloorLatency, which includes the OpenFlow-agent round
	// trip.
	BulkWriteLatency time.Duration
	// DeleteLatency is the constant rule-deletion cost.
	DeleteLatency time.Duration
	// ModifyLatency is the constant cost of modifying a rule's match or
	// action without changing its priority.
	ModifyLatency time.Duration
}

// Validate checks internal consistency; profile authors call it in tests.
func (p *Profile) Validate() error {
	if p.Capacity <= 0 {
		return fmt.Errorf("tcam: profile %q: capacity %d", p.Name, p.Capacity)
	}
	if len(p.Calibration) == 0 {
		return fmt.Errorf("tcam: profile %q: no calibration points", p.Name)
	}
	if !sort.SliceIsSorted(p.Calibration, func(i, j int) bool {
		return p.Calibration[i].Occupancy < p.Calibration[j].Occupancy
	}) {
		return fmt.Errorf("tcam: profile %q: calibration not sorted", p.Name)
	}
	for _, c := range p.Calibration {
		if c.UpdatesPerSec <= 0 || c.Occupancy < 0 {
			return fmt.Errorf("tcam: profile %q: bad calibration point %+v", p.Name, c)
		}
	}
	if p.FloorLatency <= 0 || p.DeleteLatency <= 0 || p.ModifyLatency <= 0 || p.BulkWriteLatency <= 0 {
		return fmt.Errorf("tcam: profile %q: non-positive latency constant", p.Name)
	}
	return nil
}

// InsertLatency returns the modeled latency of an insertion that shifts the
// given number of entries. Between calibration points the latency is
// linearly interpolated; beyond the last point it is linearly extrapolated
// using the final segment's slope; below the first point it falls off
// linearly toward FloorLatency at zero shifts.
func (p *Profile) InsertLatency(shifts int) time.Duration {
	if shifts <= 0 {
		return p.FloorLatency
	}
	cal := p.Calibration
	lat := func(i int) float64 { return 1.0 / cal[i].UpdatesPerSec } // seconds
	x := float64(shifts)

	first := cal[0]
	if shifts <= first.Occupancy {
		// Interpolate between (0, floor) and the first point.
		f := p.FloorLatency.Seconds()
		l := f + (lat(0)-f)*x/float64(first.Occupancy)
		return clampFloor(secondsToDuration(l), p.FloorLatency)
	}
	for i := 1; i < len(cal); i++ {
		if shifts <= cal[i].Occupancy {
			x0, x1 := float64(cal[i-1].Occupancy), float64(cal[i].Occupancy)
			y0, y1 := lat(i-1), lat(i)
			l := y0 + (y1-y0)*(x-x0)/(x1-x0)
			return clampFloor(secondsToDuration(l), p.FloorLatency)
		}
	}
	// Extrapolate past the last point.
	n := len(cal)
	if n == 1 {
		l := lat(0) * x / float64(cal[0].Occupancy)
		return clampFloor(secondsToDuration(l), p.FloorLatency)
	}
	x0, x1 := float64(cal[n-2].Occupancy), float64(cal[n-1].Occupancy)
	y0, y1 := lat(n-2), lat(n-1)
	slope := (y1 - y0) / (x1 - x0)
	l := y1 + slope*(x-x1)
	return clampFloor(secondsToDuration(l), p.FloorLatency)
}

// UpdatesPerSec is the inverse view of InsertLatency: the sustainable
// update rate when every insertion shifts the given number of entries.
// It reproduces Table 1 when evaluated at the calibration occupancies.
func (p *Profile) UpdatesPerSec(shifts int) float64 {
	l := p.InsertLatency(shifts).Seconds()
	if l <= 0 {
		return 0
	}
	return 1 / l
}

// MaxShiftsWithin returns the largest shift count whose insertion latency
// stays within bound — the sizing function for Hermes shadow tables: a
// shadow table of this capacity guarantees insertions complete within
// bound. Returns 0 when even a shift-free insert exceeds the bound.
func (p *Profile) MaxShiftsWithin(bound time.Duration) int {
	if p.InsertLatency(0) > bound {
		return 0
	}
	lo, hi := 0, p.Capacity
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.InsertLatency(mid) <= bound {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func clampFloor(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}

// The three switch models the paper's simulator includes (§8.1.1). Pica8
// and Dell calibration points are Table 1 verbatim. The HP 5406zl is not in
// Table 1; its points are set between the other two switches per the
// paper's statement that the remaining switches behave qualitatively
// similarly (§2.2), with the slower floor reported for it by He et al.
var (
	// Pica8P3290 models the Pica8 P-3290 (Firebolt-3, 108 KB TCAM).
	Pica8P3290 = &Profile{
		Name:     "Pica8 P-3290",
		ASIC:     "Firebolt-3 108KB",
		Capacity: 4096,
		Calibration: []CalPoint{
			{Occupancy: 50, UpdatesPerSec: 1266},
			{Occupancy: 200, UpdatesPerSec: 114},
			{Occupancy: 1000, UpdatesPerSec: 23},
			{Occupancy: 2000, UpdatesPerSec: 12},
		},
		FloorLatency:     200 * time.Microsecond,
		BulkWriteLatency: 20 * time.Microsecond,
		DeleteLatency:    300 * time.Microsecond,
		ModifyLatency:    400 * time.Microsecond,
	}

	// Dell8132F models the Dell PowerConnect 8132F (Trident+, 54 KB TCAM).
	Dell8132F = &Profile{
		Name:     "Dell 8132F",
		ASIC:     "Trident+ 54KB",
		Capacity: 2048,
		Calibration: []CalPoint{
			{Occupancy: 50, UpdatesPerSec: 970},
			{Occupancy: 250, UpdatesPerSec: 494},
			{Occupancy: 500, UpdatesPerSec: 42},
			{Occupancy: 750, UpdatesPerSec: 29},
		},
		FloorLatency:     250 * time.Microsecond,
		BulkWriteLatency: 25 * time.Microsecond,
		DeleteLatency:    350 * time.Microsecond,
		ModifyLatency:    450 * time.Microsecond,
	}

	// HP5406zl models the HP 5406zl (ProVision ASIC).
	HP5406zl = &Profile{
		Name:     "HP 5406zl",
		ASIC:     "ProVision",
		Capacity: 3072,
		Calibration: []CalPoint{
			{Occupancy: 50, UpdatesPerSec: 600},
			{Occupancy: 250, UpdatesPerSec: 180},
			{Occupancy: 1000, UpdatesPerSec: 28},
			{Occupancy: 1500, UpdatesPerSec: 16},
		},
		FloorLatency:     300 * time.Microsecond,
		BulkWriteLatency: 30 * time.Microsecond,
		DeleteLatency:    400 * time.Microsecond,
		ModifyLatency:    500 * time.Microsecond,
	}
)

// Profiles returns the built-in switch profiles in a stable order.
func Profiles() []*Profile {
	return []*Profile{Pica8P3290, Dell8132F, HP5406zl}
}

// ProfileByName looks up a built-in profile; the boolean reports success.
func ProfileByName(name string) (*Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}
