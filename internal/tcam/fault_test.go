package tcam

import (
	"testing"
	"time"

	"hermes/internal/classifier"
)

func faultRule(id int, prio int32) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(id),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(id)<<8, 24)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: id},
	}
}

func TestWipeLosesEntriesWithoutCounters(t *testing.T) {
	tab := NewTable("t", 16, Pica8P3290)
	for i := 1; i <= 5; i++ {
		if _, err := tab.Insert(faultRule(i, int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := tab.Stats()
	tab.Wipe()
	if tab.Occupancy() != 0 {
		t.Fatalf("occupancy after wipe = %d", tab.Occupancy())
	}
	if tab.Contains(3) {
		t.Error("wiped table still contains rule 3")
	}
	if got := tab.Stats(); got.Deletes != before.Deletes {
		t.Errorf("wipe counted %d deletes; a crash issues none", got.Deletes-before.Deletes)
	}
	// The table is still usable after the crash.
	if _, err := tab.Insert(faultRule(9, 1)); err != nil {
		t.Fatalf("insert after wipe: %v", err)
	}
}

func TestTruncateKeepsTCAMPrefix(t *testing.T) {
	tab := NewTable("t", 16, Pica8P3290)
	// Priorities 5,4,3,2,1 → TCAM order is 5 first.
	for i := 1; i <= 5; i++ {
		if _, err := tab.Insert(faultRule(i, int32(6-i))); err != nil {
			t.Fatal(err)
		}
	}
	tab.Truncate(2)
	if tab.Occupancy() != 2 {
		t.Fatalf("occupancy after truncate = %d, want 2", tab.Occupancy())
	}
	rules := tab.Rules()
	if rules[0].ID != 1 || rules[1].ID != 2 {
		t.Fatalf("surviving rules = %v, want the two highest-priority entries", rules)
	}
	if tab.Contains(5) {
		t.Error("truncated tail entry still reported present")
	}
	// Out-of-range truncations are no-ops.
	tab.Truncate(-1)
	tab.Truncate(100)
	if tab.Occupancy() != 2 {
		t.Fatalf("no-op truncate changed occupancy to %d", tab.Occupancy())
	}
}

func TestFaultHookDropsAndSlowsOps(t *testing.T) {
	tab := NewTable("t", 16, Pica8P3290)
	var script []OpFault
	tab.SetFaultHook(func(op Op, id classifier.RuleID) OpFault {
		if len(script) == 0 {
			return OpFault{}
		}
		f := script[0]
		script = script[1:]
		return f
	})

	// Dropped insert: acked (no error, sane latency) but never lands.
	script = []OpFault{{Drop: true}}
	cost, err := tab.Insert(faultRule(1, 1))
	if err != nil || cost <= 0 {
		t.Fatalf("dropped insert: cost=%v err=%v", cost, err)
	}
	if tab.Contains(1) || tab.Occupancy() != 0 {
		t.Fatal("dropped insert landed anyway")
	}
	if tab.DroppedOps() != 1 {
		t.Fatalf("DroppedOps = %d, want 1", tab.DroppedOps())
	}

	// Slow insert: lands, with the extra latency surfaced.
	script = []OpFault{{Extra: 3 * time.Millisecond}}
	base := tab.InsertCost(1)
	cost, err = tab.Insert(faultRule(2, 1))
	if err != nil || !tab.Contains(2) {
		t.Fatalf("slow insert: err=%v present=%v", err, tab.Contains(2))
	}
	if cost != base+3*time.Millisecond {
		t.Fatalf("slow insert cost = %v, want %v", cost, base+3*time.Millisecond)
	}

	// Dropped delete: acked as present but the entry survives.
	script = []OpFault{{Drop: true}}
	if _, ok := tab.Delete(2); !ok {
		t.Fatal("dropped delete reported absent")
	}
	if !tab.Contains(2) {
		t.Fatal("dropped delete removed the entry")
	}

	// Dropped modify: acked but the action is unchanged.
	script = []OpFault{{Drop: true}}
	if _, ok := tab.ModifyAction(2, classifier.Action{Type: classifier.ActionDrop}); !ok {
		t.Fatal("dropped modify reported absent")
	}
	if r, _ := tab.Get(2); r.Action.Type == classifier.ActionDrop {
		t.Fatal("dropped modify applied anyway")
	}

	// Hook removed: back to normal.
	tab.SetFaultHook(nil)
	if _, ok := tab.Delete(2); !ok || tab.Contains(2) {
		t.Fatal("delete after hook removal did not apply")
	}
}

func TestSwitchCrashRestartWipesSlices(t *testing.T) {
	sw := NewSwitch("s", Pica8P3290)
	shadow, main, err := sw.Carve(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shadow.Insert(faultRule(1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := main.Insert(faultRule(2, 4)); err != nil {
		t.Fatal(err)
	}
	sw.Submit(0, time.Millisecond)
	sw.CrashRestart()
	if shadow.Occupancy() != 0 || main.Occupancy() != 0 {
		t.Fatalf("occupancies after crash = %d/%d", shadow.Occupancy(), main.Occupancy())
	}
	if sw.BusyUntil() != 0 {
		t.Errorf("control-plane queue survived the crash: %v", sw.BusyUntil())
	}
	if _, ok := sw.Lookup(1<<8, 0); ok {
		t.Error("lookup matched on a crashed switch")
	}
	// Slice layout survives: the shadow slice still fronts the pipeline.
	if len(sw.Slices()) != 2 {
		t.Fatalf("slices after crash = %d", len(sw.Slices()))
	}
}
