// Package stats provides the small statistical toolkit used throughout the
// Hermes reproduction: empirical CDFs, quantiles, running summaries, time
// series, and plain-text table rendering for the benchmark harness.
//
// All functions operate on float64 samples. Durations are converted to
// milliseconds at the call sites so that printed tables match the units used
// in the paper's figures.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
)

// Summary holds the order statistics of a sample set. The zero value is
// empty; add samples with Add or build one from a slice with Summarize.
type Summary struct {
	values []float64
	sorted bool
	sum    float64
}

// Summarize builds a Summary from the given samples. The input slice is
// copied, so the caller may reuse it.
func Summarize(samples []float64) *Summary {
	s := &Summary{values: append([]float64(nil), samples...)}
	for _, v := range s.values {
		s.sum += v
	}
	return s
}

// Add appends one sample.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// N reports the number of samples.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest sample, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[0]
}

// Max returns the largest sample, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	if len(s.values) == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.values)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. Quantile(0.5) is the median.
func (s *Summary) Quantile(q float64) float64 {
	s.ensureSorted()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median is shorthand for Quantile(0.5).
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// P95 is shorthand for Quantile(0.95).
func (s *Summary) P95() float64 { return s.Quantile(0.95) }

// P99 is shorthand for Quantile(0.99).
func (s *Summary) P99() float64 { return s.Quantile(0.99) }

// Values returns the samples in ascending order. The returned slice is owned
// by the Summary and must not be modified.
func (s *Summary) Values() []float64 {
	s.ensureSorted()
	return s.values
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// CDF is an empirical cumulative distribution function over a sample set.
type CDF struct {
	sum *Summary
}

// NewCDF builds an empirical CDF from the samples.
func NewCDF(samples []float64) *CDF { return &CDF{sum: Summarize(samples)} }

// At returns P[X <= x].
func (c *CDF) At(x float64) float64 {
	vals := c.sum.Values()
	if len(vals) == 0 {
		return 0
	}
	// Index of first value > x.
	idx := sort.SearchFloat64s(vals, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(vals))
}

// Inverse returns the value at cumulative probability q, i.e. the q-quantile.
func (c *CDF) Inverse(q float64) float64 { return c.sum.Quantile(q) }

// Points samples the CDF at n evenly spaced probabilities in (0, 1] and
// returns (value, probability) pairs suitable for plotting a CDF curve like
// the paper's figures.
func (c *CDF) Points(n int) []Point {
	if n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		pts = append(pts, Point{X: c.sum.Quantile(q), Y: q})
	}
	return pts
}

// N reports the number of samples underlying the CDF.
func (c *CDF) N() int { return c.sum.N() }

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points (a single line in a figure).
type Series struct {
	Name   string
	Points []Point
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Table is a simple fixed-column text table used by the experiment harness
// to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells. Cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.Rows = append(t.Rows, []string{fmt.Sprintf(format, args...)})
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			s += fmt.Sprintf("%-*s", w, c)
			if i < len(cells)-1 {
				s += "  "
			}
		}
		return s + "\n"
	}
	if len(t.Headers) > 0 {
		out += line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		for i := 0; i < total-2; i++ {
			out += "-"
		}
		out += "\n"
	}
	for _, row := range t.Rows {
		out += line(row)
	}
	return out
}

// WriteCSV emits the table as CSV (headers first when present); useful for
// feeding the benchmark harness's tables into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCDFs renders several named CDFs side by side: for each of a fixed set
// of quantiles it prints each series' value. This is the textual analogue of
// the paper's CDF figures.
func RenderCDFs(title string, unit string, series map[string][]float64) string {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	tab := &Table{Title: title, Headers: append([]string{"quantile"}, names...)}
	quantiles := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}
	sums := make(map[string]*Summary, len(series))
	for n, v := range series {
		sums[n] = Summarize(v)
	}
	for _, q := range quantiles {
		row := []string{fmt.Sprintf("p%02.0f", q*100)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.3f%s", sums[n].Quantile(q), unit))
		}
		tab.AddRow(row...)
	}
	return tab.String()
}
