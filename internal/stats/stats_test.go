package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummaryBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 2) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if !almostEq(s.Min(), 1) || !almostEq(s.Max(), 3) {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Median(), 2) {
		t.Errorf("Median = %v", s.Median())
	}
	s.Add(4)
	if s.N() != 4 || !almostEq(s.Mean(), 2.5) {
		t.Errorf("after Add: N=%d Mean=%v", s.N(), s.Mean())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Error("empty summary must report zeros")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if !almostEq(s.Quantile(0.5), 5) {
		t.Errorf("Quantile(0.5) = %v", s.Quantile(0.5))
	}
	if !almostEq(s.Quantile(0), 0) || !almostEq(s.Quantile(1), 10) {
		t.Error("extreme quantiles")
	}
	if !almostEq(s.Quantile(-1), 0) || !almostEq(s.Quantile(2), 10) {
		t.Error("out-of-range quantiles must clamp")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
		}
		s := Summarize(vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return almostEq(s.Quantile(0), sorted[0]) && almostEq(s.Quantile(1), sorted[n-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Stddev(), 2) {
		t.Errorf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if !almostEq(c.At(0), 0) {
		t.Errorf("At(0) = %v", c.At(0))
	}
	if !almostEq(c.At(2), 0.5) {
		t.Errorf("At(2) = %v", c.At(2))
	}
	if !almostEq(c.At(10), 1) {
		t.Errorf("At(10) = %v", c.At(10))
	}
	if !almostEq(c.At(2.5), 0.5) {
		t.Errorf("At(2.5) = %v", c.At(2.5))
	}
	if !almostEq(c.Inverse(1), 4) {
		t.Errorf("Inverse(1) = %v", c.Inverse(1))
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	pts := c.Points(4)
	if len(pts) != 4 || !almostEq(pts[3].Y, 1) || !almostEq(pts[3].X, 4) {
		t.Errorf("Points = %v", pts)
	}
	if c.Points(0) != nil {
		t.Error("Points(0) must be nil")
	}
	empty := NewCDF(nil)
	if empty.At(5) != 0 {
		t.Error("empty CDF At must be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Append(1, 2)
	s.Append(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Errorf("Series = %v", s)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4", "extra")
	tab.AddRowf("fmt %d", 42)
	out := tab.String()
	for _, want := range []string{"T\n", "a", "bb", "333", "extra", "fmt 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Headers and separator present.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestRenderCDFs(t *testing.T) {
	out := RenderCDFs("fig", "ms", map[string][]float64{
		"hermes": {1, 2, 3},
		"pica8":  {10, 20, 30},
	})
	for _, want := range []string{"fig", "hermes", "pica8", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderCDFs missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("1", "two, with comma")
	tab.AddRow("3", "4")
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,\"two, with comma\"\n3,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
