package obs

import (
	"sync/atomic"
	"unsafe"
)

// shard is one cache line of counter state. The pad keeps neighbouring
// shards on distinct cache lines so concurrent writers don't false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

const numShards = 8

// shardHint derives a stable per-goroutine shard index without runtime
// support: the address of a live local variable sits on the calling
// goroutine's stack, and distinct goroutines have distinct stacks. The
// low bits below the cache-line size are discarded.
//
//go:nosplit
func shardHint(p unsafe.Pointer) int {
	return int(uintptr(p)>>6) & (numShards - 1)
}

// Counter is a monotonically increasing, lock-free sharded counter.
// Add/Inc never allocate and scale across cores; Value folds the shards.
type Counter struct {
	shards [numShards]shard
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter. Deltas are expected to be non-negative;
// the counter is monotone by contract, not by enforcement.
func (c *Counter) Add(delta uint64) {
	var anchor byte
	c.shards[shardHint(unsafe.Pointer(&anchor))].v.Add(delta)
}

// Value returns the current total across all shards. Concurrent Adds may
// or may not be included; the result is always a sum of committed deltas.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a lock-free instantaneous value (occupancy, queue depth,
// breaker state). Unlike Counter it is last-write-wins, so it is a single
// atomic rather than sharded.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
