package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket scheme (DESIGN.md §11): log-linear, HDR-style. Each
// power-of-two octave is split into 2^subBits linear sub-buckets, so the
// relative width of any bucket is at most 1/2^subBits ≈ 3.1%. Values below
// 2^subBits land in exact unit-width buckets. With 64-bit values this gives
// a fixed footprint of (65-subBits)*2^subBits = 1920 buckets (~15 KiB) —
// no resizing, no allocation, ever.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32 linear sub-buckets per octave
	histNumBuckets = (65 - histSubBits) * histSubBuckets
)

// bucketIndex maps a value to its bucket. Values < 32 are exact; above
// that, the bucket is (octave, top-5-bits-below-the-leading-bit).
func bucketIndex(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits          // octave above the exact region
	sub := int(v>>uint(exp)) & (histSubBuckets - 1) // next subBits bits
	return (exp+1)*histSubBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i;
// bucketHigh the largest.
func bucketLow(i int) uint64 {
	if i < histSubBuckets {
		return uint64(i)
	}
	exp := i/histSubBuckets - 1
	sub := uint64(i % histSubBuckets)
	return (histSubBuckets + sub) << uint(exp)
}

func bucketHigh(i int) uint64 {
	if i < histSubBuckets {
		return uint64(i)
	}
	exp := i/histSubBuckets - 1
	return bucketLow(i) + (uint64(1)<<uint(exp) - 1)
}

// Histogram is a fixed-footprint latency histogram. Record is lock-free,
// wait-free and allocation-free; Quantile/Snapshot/Merge are read-side
// operations that tolerate concurrent recording (they observe some
// linearization of the concurrent Records, which is all a statistic needs).
//
// Values are recorded in nanoseconds by RecordDuration; Record takes raw
// uint64 units for non-latency uses (e.g. TCAM shift counts per insert).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // math.MaxUint64 when empty
	max     atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram. The zero value needs its min
// sentinel initialised, so always construct through here (or Reset).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// Record adds one observation of v. Zero allocations, no locks.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration records d in nanoseconds. Negative durations (clock
// anomalies under virtual time never produce them, but wall offsets can)
// clamp to zero rather than corrupting the high octaves.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) with
// relative error bounded by the bucket width, ≈3%. Within the located
// bucket the estimate interpolates linearly, and the result is clamped to
// the observed [Min, Max] range (so Quantile(0) == Min and Quantile(1) ==
// Max exactly, even when the extremes share a bucket with other samples).
// Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return quantileScan(q, n, func(i int) uint64 { return h.buckets[i].Load() },
		h.min.Load(), h.max.Load())
}

// quantileScan locates the q-th quantile over log-linear buckets read
// through load. It is shared by the live Histogram and HistogramSnapshot;
// n must be > 0 and minV/maxV are the observed extremes used for edge
// clamping.
func quantileScan(q float64, n uint64, load func(int) uint64, minV, maxV uint64) float64 {
	if q <= 0 {
		return float64(minV)
	}
	if q >= 1 {
		return float64(maxV)
	}
	// Rank in [1, n]: same convention as stats.Summary's order statistics —
	// q=0 is the minimum, q=1 the maximum.
	rank := q * float64(n-1)
	lo := uint64(rank) + 1 // observations at-or-below the target
	frac := rank - float64(uint64(rank))

	res := float64(maxV)
	var cum uint64
scan:
	for i := 0; i < histNumBuckets; i++ {
		c := load(i)
		if c == 0 {
			continue
		}
		cum += c
		if cum >= lo {
			low, high := float64(bucketLow(i)), float64(bucketHigh(i))
			if cum == lo && frac > 0 && cum < n {
				// Target sits between this bucket's last observation and the
				// next non-empty bucket's first; interpolate across the gap.
				for j := i + 1; j < histNumBuckets; j++ {
					if load(j) != 0 {
						high = float64(bucketLow(j))
						break
					}
				}
				res = low + frac*(high-low)
				break scan
			}
			if low == high {
				res = low
				break scan
			}
			// Spread the bucket's c observations uniformly across its range.
			into := float64(lo-(cum-c)) - 1 + frac
			res = low + (high-low)*into/float64(c)
			break scan
		}
	}
	// Bucket interpolation knows positions only to bucket precision; the
	// recorded extremes are exact, so never report outside them. This is
	// what keeps single-bucket and single-sample histograms honest: the
	// estimate cannot stray below Min or above Max.
	if res < float64(minV) {
		res = float64(minV)
	}
	if res > float64(maxV) {
		res = float64(maxV)
	}
	return res
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge folds other into h. Both may be concurrently recorded into; the
// result is some consistent interleaving.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if other.count.Load() != 0 {
		for {
			om, cur := other.min.Load(), h.min.Load()
			if om >= cur || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
		for {
			om, cur := other.max.Load(), h.max.Load()
			if om <= cur || h.max.CompareAndSwap(cur, om) {
				break
			}
		}
	}
}

// Clone returns an independent copy of h's current contents.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxUint64)
	h.max.Store(0)
}

// HistogramBucket is one non-empty bucket in a snapshot: the bucket's
// upper bound (inclusive) and its cumulative count.
type HistogramBucket struct {
	UpperBound uint64
	CumCount   uint64
}

// SnapshotBuckets returns the non-empty buckets in ascending order with
// cumulative counts — the shape Prometheus exposition wants. Allocates;
// exposition-path only.
func (h *Histogram) SnapshotBuckets() []HistogramBucket {
	var out []HistogramBucket
	var cum uint64
	for i := 0; i < histNumBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, HistogramBucket{UpperBound: bucketHigh(i), CumCount: cum})
	}
	return out
}
