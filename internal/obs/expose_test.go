package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hermes/internal/testutil"
)

// parsePromText is a minimal parser for the Prometheus text exposition
// format: it validates line shapes and returns sample name → value.
// Unparseable lines fail the test.
func parsePromText(t *testing.T, r io.Reader) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value — labels may contain spaces inside quotes,
		// but the value is always the last space-separated field.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unbalanced label braces in %q", line)
			}
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hermes_test_ops_total", "ops processed")
	g := r.Gauge("hermes_test_depth", "queue depth")
	h := r.Histogram("hermes_test_latency_ns", "ns", "op latency")
	r.CounterL("hermes_test_labeled_total", Labels("class", "guaranteed"), "labeled")
	r.GaugeFunc("hermes_test_fn", Labels("sw", "s1"), "scrape-time fn", func() float64 { return 2.5 })

	c.Add(3)
	g.Set(-4)
	for i := 1; i <= 100; i++ {
		h.Record(uint64(i) * 1000)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples, types := parsePromText(t, strings.NewReader(text))

	if samples["hermes_test_ops_total"] != 3 {
		t.Errorf("counter sample = %v, want 3", samples["hermes_test_ops_total"])
	}
	if samples["hermes_test_depth"] != -4 {
		t.Errorf("gauge sample = %v, want -4", samples["hermes_test_depth"])
	}
	if samples[`hermes_test_fn{sw="s1"}`] != 2.5 {
		t.Errorf("gauge-func sample = %v, want 2.5", samples[`hermes_test_fn{sw="s1"}`])
	}
	if samples["hermes_test_latency_ns_count"] != 100 {
		t.Errorf("histogram count = %v, want 100", samples["hermes_test_latency_ns_count"])
	}
	// ns unit scales _sum to seconds: sum = 1000*(1+..+100) ns = 5.05e-3 s.
	if got := samples["hermes_test_latency_ns_sum"]; got < 5.04e-3 || got > 5.06e-3 {
		t.Errorf("histogram sum = %v, want ≈5.05e-3 s", got)
	}
	if samples[`hermes_test_latency_ns_bucket{le="+Inf"}`] != 100 {
		t.Errorf("+Inf bucket = %v, want 100", samples[`hermes_test_latency_ns_bucket{le="+Inf"}`])
	}
	for name, want := range map[string]string{
		"hermes_test_ops_total":     "counter",
		"hermes_test_depth":         "gauge",
		"hermes_test_latency_ns":    "histogram",
		"hermes_test_labeled_total": "counter",
		"hermes_test_fn":            "gauge",
	} {
		if types[name] != want {
			t.Errorf("TYPE of %s = %q, want %q", name, types[name], want)
		}
	}

	// Cumulative bucket counts must be non-decreasing in bound order.
	var prevBound, prevCum float64 = -1, 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `hermes_test_latency_ns_bucket{le="`) ||
			strings.Contains(line, "+Inf") {
			continue
		}
		var bound, cum float64
		if _, err := fmt.Sscanf(line, `hermes_test_latency_ns_bucket{le="%g"} %g`, &bound, &cum); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if bound <= prevBound || cum < prevCum {
			t.Fatalf("buckets not cumulative/ordered at %q", line)
		}
		prevBound, prevCum = bound, cum
	}

	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := WritePrometheus(&sb2, r); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestRegistryIdempotentAndNilSafe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hermes_idem_total", "x")
	b := r.Counter("hermes_idem_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instance")
	}
	h1 := r.Histogram("hermes_idem_ns", "ns", "x")
	h2 := r.Histogram("hermes_idem_ns", "ns", "x")
	if h1 != h2 {
		t.Fatal("re-registering the same histogram must return the same instance")
	}
	// Distinct label sets are distinct series.
	l1 := r.CounterL("hermes_idem_l", Labels("k", "a"), "x")
	l2 := r.CounterL("hermes_idem_l", Labels("k", "b"), "x")
	if l1 == l2 {
		t.Fatal("different label sets must be different series")
	}

	var nilReg *Registry
	nc := nilReg.Counter("whatever", "x")
	nc.Inc() // must not panic
	ng := nilReg.Gauge("whatever", "x")
	ng.Set(1)
	nh := nilReg.Histogram("whatever", "ns", "x")
	nh.Record(1)
	if nc.Value() != 1 || ng.Value() != 1 || nh.Count() != 1 {
		t.Fatal("nil-registry instruments must still record")
	}
}

func TestLabelsRendering(t *testing.T) {
	if got := Labels("b", "2", "a", "1"); got != `a="1",b="2"` {
		t.Fatalf("Labels not sorted: %q", got)
	}
	if got := Labels("k", "a\"b\\c\nd"); got != `k="a\"b\\c\nd"` {
		t.Fatalf("Labels not escaped: %q", got)
	}
}

// TestMuxEndpoints spins up the exposition server, scrapes every endpoint,
// and verifies no goroutines leak after shutdown.
func TestMuxEndpoints(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)

	r := NewRegistry()
	r.Counter("hermes_mux_total", "x").Add(7)
	r.Histogram("hermes_mux_ns", "ns", "x").Record(12345)
	tr := NewTracer(32, 4)
	tr.Record(1000, EvAdmit, 0, 1, 2, 3)
	tr.CaptureNow(2000, "test trigger")

	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	metrics := string(get("/metrics"))
	if !strings.Contains(metrics, "hermes_mux_total 7") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "hermes_mux_ns_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}

	var vars []jsonMetric
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if len(vars) != 2 {
		t.Fatalf("/debug/vars has %d metrics, want 2", len(vars))
	}

	var trace struct {
		Recorded uint64 `json:"recorded"`
		Captures []struct {
			Reason string `json:"reason"`
		} `json:"captures"`
	}
	if err := json.Unmarshal(get("/debug/trace"), &trace); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if trace.Recorded != 1 || len(trace.Captures) != 1 || trace.Captures[0].Reason != "test trigger" {
		t.Fatalf("/debug/trace content wrong: %+v", trace)
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}
