package obs

import (
	"math"
	"time"
)

// HistogramSnapshot is an immutable point-in-time copy of a Histogram.
// Snapshots exist so aggregation (merging per-worker or per-class latency
// into one distribution, or diffing a run's start and end states) happens
// on frozen data instead of racing the scrape path: take a snapshot per
// source, then Merge/Sub/Quantile freely with no atomics and no torn
// reads. The loadgen verdict engine is the primary consumer.
type HistogramSnapshot struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [histNumBuckets]uint64
}

// Snapshot copies h's current contents. The count is derived from the
// bucket copies (not the live count word) so the snapshot is always
// self-consistent even when taken mid-Record: every quantile scan
// terminates inside the copied buckets.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		s.count += c
	}
	if s.count == 0 {
		return s
	}
	s.sum = h.sum.Load()
	s.min = h.min.Load()
	s.max = h.max.Load()
	// A racing Record may have bumped a bucket before publishing min/max;
	// normalize the sentinel and bound the extremes by the copied buckets.
	if s.min == math.MaxUint64 {
		s.min = s.firstBucketLow()
	}
	if s.max == 0 {
		s.max = s.lastBucketHigh()
	}
	return s
}

func (s *HistogramSnapshot) firstBucketLow() uint64 {
	for i := 0; i < histNumBuckets; i++ {
		if s.buckets[i] != 0 {
			return bucketLow(i)
		}
	}
	return 0
}

func (s *HistogramSnapshot) lastBucketHigh() uint64 {
	for i := histNumBuckets - 1; i >= 0; i-- {
		if s.buckets[i] != 0 {
			return bucketHigh(i)
		}
	}
	return 0
}

// Count returns the number of observations in the snapshot.
func (s *HistogramSnapshot) Count() uint64 { return s.count }

// Sum returns the sum of observed values.
func (s *HistogramSnapshot) Sum() uint64 { return s.sum }

// Min returns the smallest observed value, or 0 when empty.
func (s *HistogramSnapshot) Min() uint64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observed value, or 0 when empty.
func (s *HistogramSnapshot) Max() uint64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile estimates the q-th quantile with the same convention and error
// bound as Histogram.Quantile. Empty snapshots return 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	return quantileScan(q, s.count, func(i int) uint64 { return s.buckets[i] }, s.min, s.max)
}

// QuantileDuration is Quantile for nanosecond-valued snapshots.
func (s *HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// Merge folds other into s. Merging an empty snapshot (from either side)
// is exact: the sentinel-free extremes of the non-empty side survive, so
// fleets where some workers never recorded aggregate correctly.
func (s *HistogramSnapshot) Merge(other *HistogramSnapshot) {
	if other == nil || other.count == 0 {
		return
	}
	if s.count == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	for i := range s.buckets {
		s.buckets[i] += other.buckets[i]
	}
	s.count += other.count
	s.sum += other.sum
}

// Clone returns an independent copy.
func (s *HistogramSnapshot) Clone() *HistogramSnapshot {
	c := *s
	return &c
}

// Sub returns the interval distribution between prev (earlier) and s
// (later) of the same grow-only histogram: exactly the observations
// recorded after prev was taken. A nil prev acts as an empty baseline.
// Counts saturate at zero, so a Reset between the snapshots degrades to an
// empty or partial interval instead of underflowing.
//
// The interval's extremes are known exactly when prev is empty (the
// interval is everything); otherwise they are bounded to bucket precision,
// tightened by the overall extremes where those constrain the interval.
func (s *HistogramSnapshot) Sub(prev *HistogramSnapshot) *HistogramSnapshot {
	d := &HistogramSnapshot{}
	if prev == nil || prev.count == 0 {
		*d = *s
		return d
	}
	first, last := -1, -1
	for i := range s.buckets {
		if s.buckets[i] <= prev.buckets[i] {
			continue
		}
		c := s.buckets[i] - prev.buckets[i]
		d.buckets[i] = c
		d.count += c
		if first < 0 {
			first = i
		}
		last = i
	}
	if d.count == 0 {
		return d
	}
	if s.sum > prev.sum {
		d.sum = s.sum - prev.sum
	}
	// True interval extremes lie inside the first/last delta buckets. The
	// overall min is ≤ every interval value and the overall max ≥, so they
	// tighten the bucket bounds where they overlap.
	d.min = bucketLow(first)
	if s.min > d.min {
		d.min = s.min
	}
	d.max = bucketHigh(last)
	if s.max < d.max {
		d.max = s.max
	}
	if d.min > d.max {
		d.min = d.max
	}
	return d
}
