package obs

import (
	"sort"
	"sync"
)

// metricKind discriminates what a registry entry holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered series: a name, optional pre-rendered label
// pairs (already in `k="v",...` form), and exactly one live source.
type metric struct {
	name   string
	labels string // rendered label body, "" when unlabeled
	help   string
	kind   metricKind
	unit   string // histogram unit suffix hint: "ns" scales sums to seconds

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

func (m *metric) key() string { return m.name + "{" + m.labels + "}" }

// Registry owns a set of named metrics and renders them deterministically
// (sorted by name, then label set). Registration is idempotent: registering
// the same name+labels again returns the existing instrument, so packages
// can register from constructors without coordinating.
//
// A nil *Registry is safe everywhere: registration methods return live,
// unregistered instruments (recording into them is cheap and invisible),
// so instrumented code never branches on "is obs enabled".
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) add(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := m.key()
	if prev, ok := r.metrics[k]; ok {
		return prev
	}
	r.metrics[k] = m
	r.order = append(r.order, k)
	sort.Strings(r.order)
	return m
}

// Labels renders a label set body deterministically (sorted keys). Values
// are escaped per the Prometheus text format.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := ""
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return out
}

func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL registers a counter with a rendered label body (see Labels).
func (r *Registry) CounterL(name, labels, help string) *Counter {
	c := &Counter{}
	if r == nil {
		return c
	}
	m := r.add(&metric{name: name, labels: labels, help: help, kind: kindCounter, counter: c})
	return m.counter
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, "", help)
}

// GaugeL registers a gauge with a rendered label body.
func (r *Registry) GaugeL(name, labels, help string) *Gauge {
	g := &Gauge{}
	if r == nil {
		return g
	}
	m := r.add(&metric{name: name, labels: labels, help: help, kind: kindGauge, gauge: g})
	return m.gauge
}

// Histogram registers (or finds) an unlabeled histogram. unit should be
// "ns" for nanosecond-valued histograms (sums render as seconds in the
// Prometheus exposition) or "" for dimensionless ones.
func (r *Registry) Histogram(name, unit, help string) *Histogram {
	return r.HistogramL(name, "", unit, help)
}

// HistogramL registers a histogram with a rendered label body.
func (r *Registry) HistogramL(name, labels, unit, help string) *Histogram {
	h := NewHistogram()
	if r == nil {
		return h
	}
	m := r.add(&metric{name: name, labels: labels, help: help, kind: kindHistogram, unit: unit, hist: h})
	return m.hist
}

// RegisterHistogram publishes an externally owned histogram (e.g. one
// embedded in core.Metrics) under name. Idempotent on name+labels; if the
// name is taken the existing registration wins and h is not exposed.
func (r *Registry) RegisterHistogram(name, labels, unit, help string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.add(&metric{name: name, labels: labels, help: help, kind: kindHistogram, unit: unit, hist: h})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for sources that already maintain their own counters.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.add(&metric{name: name, labels: labels, help: help, kind: kindCounterFunc, cfn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.add(&metric{name: name, labels: labels, help: help, kind: kindGaugeFunc, gfn: fn})
}

// gather returns the registered metrics in deterministic order.
func (r *Registry) gather() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.metrics[k])
	}
	return out
}

// Validate metric/label name characters loosely at registration time in
// tests via this helper (exposition never escapes metric names).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
